// Engine semantics: determinism, stop conditions, metrics, deadlock probe,
// branch sampling.
#include <gtest/gtest.h>

#include "gdp/algos/algorithm.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/rng/scripted.hpp"
#include "gdp/sim/engine.hpp"
#include "gdp/sim/schedulers/basic.hpp"

namespace gdp::sim {
namespace {

TEST(Engine, SameSeedSameRun) {
  const auto algo = algos::make_algorithm("lr1");
  const auto t = graph::fig1a();
  auto run_once = [&](std::uint64_t seed) {
    RandomUniform sched;
    rng::Rng rng(seed);
    EngineConfig cfg;
    cfg.max_steps = 20'000;
    cfg.record_trace = true;
    return run(*algo, t, sched, rng, cfg);
  };
  const auto a = run_once(42);
  const auto b = run_once(42);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  EXPECT_EQ(a.total_meals, b.total_meals);
  EXPECT_TRUE(a.final_state == b.final_state);
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    ASSERT_EQ(a.trace[i].phil, b.trace[i].phil);
    ASSERT_EQ(a.trace[i].event.kind, b.trace[i].event.kind);
  }
  const auto c = run_once(43);
  EXPECT_FALSE(a.final_state == c.final_state);  // overwhelmingly likely
}

TEST(Engine, StopAfterMeals) {
  const auto algo = algos::make_algorithm("gdp1");
  const auto t = graph::classic_ring(5);
  RandomUniform sched;
  rng::Rng rng(1);
  EngineConfig cfg;
  cfg.max_steps = 1'000'000;
  cfg.stop_after_meals = 10;
  const auto r = run(*algo, t, sched, rng, cfg);
  EXPECT_EQ(r.total_meals, 10u);
  EXPECT_LT(r.steps, cfg.max_steps);
}

TEST(Engine, StopWhenAllAte) {
  const auto algo = algos::make_algorithm("gdp2c");
  const auto t = graph::classic_ring(4);
  RandomUniform sched;
  rng::Rng rng(2);
  EngineConfig cfg;
  cfg.max_steps = 1'000'000;
  cfg.stop_when_all_ate = true;
  const auto r = run(*algo, t, sched, rng, cfg);
  EXPECT_TRUE(r.everyone_ate());
  EXPECT_LT(r.steps, cfg.max_steps);
}

TEST(Engine, MealAccounting) {
  const auto algo = algos::make_algorithm("gdp1");
  const auto t = graph::classic_ring(4);
  RandomUniform sched;
  rng::Rng rng(3);
  EngineConfig cfg;
  cfg.max_steps = 50'000;
  cfg.record_trace = true;
  const auto r = run(*algo, t, sched, rng, cfg);
  std::uint64_t meals_in_trace = 0;
  std::vector<std::uint64_t> per_phil(4, 0);
  for (const auto& e : r.trace) {
    if (e.event.kind == EventKind::kTookSecond) {
      ++meals_in_trace;
      ++per_phil[static_cast<std::size_t>(e.phil)];
    }
  }
  EXPECT_EQ(r.total_meals, meals_in_trace);
  EXPECT_EQ(r.meals_of, per_phil);
  EXPECT_NE(r.first_meal_step, kNever);
  for (PhilId p = 0; p < 4; ++p) {
    if (r.meals_of[static_cast<std::size_t>(p)] > 0) {
      EXPECT_NE(r.first_meal_of[static_cast<std::size_t>(p)], kNever);
    }
  }
}

TEST(Engine, RoundRobinGapIsBounded) {
  const auto algo = algos::make_algorithm("lr1");
  const auto t = graph::classic_ring(6);
  RoundRobin sched;
  rng::Rng rng(4);
  EngineConfig cfg;
  cfg.max_steps = 12'000;
  const auto r = run(*algo, t, sched, rng, cfg);
  EXPECT_LE(r.max_sched_gap, 6u);
}

TEST(Engine, LongestWaitingIsMaximallyFair) {
  const auto algo = algos::make_algorithm("gdp1");
  const auto t = graph::fig1a();
  LongestWaiting sched;
  rng::Rng rng(5);
  EngineConfig cfg;
  cfg.max_steps = 12'000;
  const auto r = run(*algo, t, sched, rng, cfg);
  EXPECT_LE(r.max_sched_gap, static_cast<std::uint64_t>(t.num_phils()));
}

TEST(Engine, HungerTracksUnfinishedSpans) {
  // A starving run must report large max hunger even without a meal end.
  const auto algo = algos::make_algorithm("ticket");
  RandomUniform sched;
  sim::RunResult dead;
  bool found = false;
  for (std::uint64_t seed = 0; seed < 50 && !found; ++seed) {
    rng::Rng rng(seed);
    EngineConfig cfg;
    cfg.max_steps = 30'000;
    dead = run(*algo, graph::fig1a(), sched, rng, cfg);
    found = dead.deadlocked;
  }
  ASSERT_TRUE(found);
  EXPECT_GT(dead.max_hunger(), 0u);
}

TEST(Engine, DeadlockNotReportedForLiveAlgorithms) {
  for (const char* name : {"lr1", "gdp1", "gdp2c", "ordered", "arbiter"}) {
    const auto algo = algos::make_algorithm(name);
    RandomUniform sched;
    rng::Rng rng(6);
    EngineConfig cfg;
    cfg.max_steps = 30'000;
    const auto r = run(*algo, graph::fig1a(), sched, rng, cfg);
    EXPECT_FALSE(r.deadlocked) << name;
  }
}

TEST(SampleBranch, RespectsForcedSides) {
  const auto algo = algos::make_algorithm("lr1");
  const auto t = graph::classic_ring(3);
  auto s = algo->initial_state(t);
  s = algo->step(t, s, 0)[0].next;  // wake
  const auto branches = algo->step(t, s, 0);
  ASSERT_EQ(branches.size(), 2u);
  rng::ScriptedRng scripted(1);
  scripted.force_side(Side::kRight);
  const auto& chosen = sample_branch(branches, scripted);
  EXPECT_EQ(chosen.event.side, Side::kRight);
  EXPECT_FALSE(scripted.fell_through());
}

TEST(SampleBranch, RespectsForcedRenumber) {
  const auto algo = algos::make_algorithm("gdp1", algos::AlgoConfig{.m = 5});
  const auto t = graph::classic_ring(3);
  auto s = algo->initial_state(t);
  s = algo->step(t, s, 0)[0].next;  // wake
  s = algo->step(t, s, 0)[0].next;  // choose (tie -> right)
  s = algo->step(t, s, 0)[0].next;  // take first
  const auto branches = algo->step(t, s, 0);
  ASSERT_EQ(branches.size(), 5u);
  rng::ScriptedRng scripted(1);
  scripted.force_int(4);
  const auto& chosen = sample_branch(branches, scripted);
  EXPECT_EQ(chosen.event.value, 4);
}

TEST(SampleBranch, SingleBranchSkipsRng) {
  const auto algo = algos::make_algorithm("gdp1");
  const auto t = graph::classic_ring(3);
  const auto s = algo->initial_state(t);
  const auto branches = algo->step(t, s, 0);  // hungry wake: deterministic
  ASSERT_EQ(branches.size(), 1u);
  rng::Rng rng(1);
  (void)sample_branch(branches, rng);
  EXPECT_EQ(rng.draw_count(), 0u);
}

TEST(Engine, InvariantCheckingCatchesNothingOnHealthyRuns) {
  for (const char* name : {"lr1", "lr2", "gdp1", "gdp2", "gdp2c"}) {
    const auto algo = algos::make_algorithm(name);
    RandomUniform sched;
    rng::Rng rng(7);
    EngineConfig cfg;
    cfg.max_steps = 15'000;
    cfg.check_invariants = true;
    const auto r = run(*algo, graph::theta(1, 2, 2), sched, rng, cfg);
    EXPECT_TRUE(r.invariant_violation.empty()) << name << ": " << r.invariant_violation;
  }
}

}  // namespace
}  // namespace gdp::sim
