// LR2/GDP2 request-list and guest-book behaviour through whole runs, and
// the machine-checked Table 4 erratum (gdp2 vs gdp2c).
#include <gtest/gtest.h>

#include "gdp/algos/algorithm.hpp"
#include "gdp/common/check.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/sim/engine.hpp"
#include "gdp/sim/schedulers/basic.hpp"

namespace gdp::algos {
namespace {

using sim::EventKind;
using sim::Phase;

TEST(Requests, RegisteredWhileHungryClearedAfterEating) {
  const auto lr2 = make_algorithm("lr2");
  const auto t = graph::classic_ring(3);
  auto s = lr2->initial_state(t);

  // Wake P0 and register.
  s = lr2->step(t, s, 0)[0].next;
  EXPECT_EQ(s.phil(0).phase, Phase::kRegister);
  s = lr2->step(t, s, 0)[0].next;
  const int slot_left = t.slot_at(0, Side::kLeft);
  const int slot_right = t.slot_at(0, Side::kRight);
  EXPECT_TRUE(s.fork(t.left_of(0)).requested_by_slot(slot_left));
  EXPECT_TRUE(s.fork(t.right_of(0)).requested_by_slot(slot_right));

  // Drive P0 to a full meal: choose, take, take, finish.
  for (int i = 0; i < 8 && s.phil(0).phase != Phase::kThinking; ++i) {
    s = lr2->step(t, s, 0)[0].next;
  }
  EXPECT_EQ(s.phil(0).phase, Phase::kThinking);
  EXPECT_FALSE(s.fork(t.left_of(0)).requested_by_slot(slot_left));
  EXPECT_FALSE(s.fork(t.right_of(0)).requested_by_slot(slot_right));
  // Guest books signed on both forks.
  EXPECT_EQ(s.fork(t.left_of(0)).use_rank[static_cast<std::size_t>(slot_left)], 1);
  EXPECT_EQ(s.fork(t.right_of(0)).use_rank[static_cast<std::size_t>(slot_right)], 1);
}

TEST(Courtesy, RepeatEaterYieldsToWaiter) {
  // Two philosophers sharing both forks (parallel pair): after P0 eats once
  // while P1 requests, P0's next first-fork take must be blocked by Cond
  // until P1 has eaten.
  const auto lr2 = make_algorithm("lr2");
  const auto t = graph::parallel_arcs(2);
  auto s = lr2->initial_state(t);

  // Wake + register both.
  for (PhilId p : {0, 1}) {
    s = lr2->step(t, s, p)[0].next;
    s = lr2->step(t, s, p)[0].next;
  }
  // P0 eats a full meal.
  for (int i = 0; i < 8 && s.phil(0).phase != Phase::kThinking; ++i) {
    s = lr2->step(t, s, 0)[0].next;
  }
  ASSERT_EQ(s.phil(0).phase, Phase::kThinking);

  // P0 hungry again: wake, register, choose — then the take must busy-wait
  // on Cond even though the fork is free (P1 still requesting, never ate).
  s = lr2->step(t, s, 0)[0].next;  // -> register
  s = lr2->step(t, s, 0)[0].next;  // -> choose
  s = lr2->step(t, s, 0)[0].next;  // draw (first branch)
  ASSERT_EQ(s.phil(0).phase, Phase::kCommit);
  const auto blocked = lr2->step(t, s, 0);
  ASSERT_EQ(blocked.size(), 1u);
  EXPECT_EQ(blocked[0].event.kind, EventKind::kBlockedFirst);

  // P1 can proceed: Cond holds for the never-fed philosopher.
  // (its committed fork is free: both forks are free right now)
  auto s1 = s;
  s1 = lr2->step(t, s1, 1)[0].next;  // draw
  const auto take = lr2->step(t, s1, 1);
  EXPECT_EQ(take[0].event.kind, EventKind::kTookFirst);
}

TEST(Erratum, LiteralGdp2SecondTakeSkipsCond) {
  // Construct the bypass directly: P1 ate (signed books), P0 is requesting
  // and has never eaten. P1 re-acquires via first fork g (unshared path on
  // a ring: g's Cond can hold) and then takes shared fork f as SECOND —
  // the literal Table 4 allows it; the corrected gdp2c refuses.
  const auto t = graph::classic_ring(3);  // P1 = {f1, f2}; shares f1 with P0
  for (const char* name : {"gdp2", "gdp2c"}) {
    const auto algo = make_algorithm(name);
    auto s = algo->initial_state(t);
    // Books: P1 has used f1, P0 never; P0 requests f1.
    sim::mark_used(s, t, 1, 1);
    s.fork(1).requests |= (std::uint64_t{1} << t.slot_of(1, 0));
    // P1 holds f2 (its first fork) and is about to try f1 as second.
    s.fork(2).holder = 1;
    s.phil(1).phase = Phase::kTrySecond;
    s.phil(1).committed = t.side_of(1, 2);

    const auto branches = algo->step(t, s, 1);
    ASSERT_EQ(branches.size(), 1u);
    if (std::string(name) == "gdp2") {
      EXPECT_EQ(branches[0].event.kind, EventKind::kTookSecond)
          << "literal Table 4 bypasses Cond on the second take";
    } else {
      EXPECT_EQ(branches[0].event.kind, EventKind::kFailedSecond)
          << "gdp2c applies Cond to both takes";
    }
  }
}

TEST(Books, DegreeCapEnforced) {
  const auto lr2 = make_algorithm("lr2");
  EXPECT_THROW(lr2->initial_state(graph::star(65)), PreconditionError);
  EXPECT_NO_THROW(lr2->initial_state(graph::star(64)));
}

TEST(Books, LongRunsKeepRanksValid) {
  for (const char* name : {"lr2", "gdp2", "gdp2c"}) {
    const auto algo = make_algorithm(name);
    const auto t = graph::fig1a();
    sim::RandomUniform sched;
    rng::Rng rng(555);
    sim::EngineConfig cfg;
    cfg.max_steps = 40'000;
    cfg.check_invariants = true;
    const auto result = sim::run(*algo, t, sched, rng, cfg);
    EXPECT_TRUE(result.invariant_violation.empty()) << name << ": " << result.invariant_violation;
    EXPECT_GT(result.total_meals, 0u);
  }
}

TEST(Books, CourtesyNarrowsMealGapOnRing) {
  // Under fair random scheduling, gdp2c's courtesy should not *hurt* overall
  // progress much while keeping every philosopher fed.
  const auto t = graph::classic_ring(6);
  for (const char* name : {"gdp1", "gdp2c"}) {
    const auto algo = make_algorithm(name);
    sim::RandomUniform sched;
    rng::Rng rng(2024);
    sim::EngineConfig cfg;
    cfg.max_steps = 150'000;
    const auto result = sim::run(*algo, t, sched, rng, cfg);
    EXPECT_TRUE(result.everyone_ate()) << name;
  }
}

}  // namespace
}  // namespace gdp::algos
