// Structural queries and the executable Theorem 1/2 premises.
#include <gtest/gtest.h>

#include "gdp/graph/algorithms.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/rng/rng.hpp"

namespace gdp::graph {
namespace {

Topology path_graph(int forks) {
  Topology::Builder b("path");
  b.add_forks(forks);
  for (int i = 0; i + 1 < forks; ++i) b.add_phil(i, i + 1);
  return std::move(b).build();
}

Topology two_triangles() {
  // Two disjoint triangles: 6 forks, 6 phils, 2 components.
  Topology::Builder b("two-triangles");
  b.add_forks(6);
  for (int base : {0, 3}) {
    b.add_phil(base, base + 1);
    b.add_phil(base + 1, base + 2);
    b.add_phil(base + 2, base);
  }
  return std::move(b).build();
}

TEST(Components, ConnectedGraphsHaveOne) {
  EXPECT_TRUE(is_connected(classic_ring(6)));
  EXPECT_TRUE(is_connected(fig1a()));
  EXPECT_TRUE(is_connected(path_graph(4)));
}

TEST(Components, DisjointTrianglesHaveTwo) {
  const Topology t = two_triangles();
  EXPECT_FALSE(is_connected(t));
  const auto comp = connected_components(t);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[0], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
}

TEST(Cyclomatic, CountsIndependentCycles) {
  EXPECT_EQ(cyclomatic_number(path_graph(5)), 0);
  EXPECT_EQ(cyclomatic_number(classic_ring(5)), 1);
  EXPECT_EQ(cyclomatic_number(parallel_arcs(3)), 2);
  EXPECT_EQ(cyclomatic_number(fig1a()), 4);
  EXPECT_EQ(cyclomatic_number(two_triangles()), 2);
}

TEST(FindCycle, ForestHasNone) {
  EXPECT_FALSE(find_cycle(path_graph(6)).has_value());
  EXPECT_FALSE(find_cycle(star(4)).has_value());
}

TEST(FindCycle, RingCycleIsFullLength) {
  const auto cycle = find_cycle(classic_ring(7));
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->length(), 7);
  EXPECT_EQ(cycle->forks.size(), cycle->phils.size());
}

TEST(FindCycle, ParallelArcsGiveTwoCycle) {
  const auto cycle = find_cycle(parallel_arcs(2));
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->length(), 2);
}

TEST(FindCycle, CycleEdgesAreIncident) {
  for (const Topology& t : {fig1a(), ring_with_chord(5), theta(2, 2, 3)}) {
    const auto cycle = find_cycle(t);
    ASSERT_TRUE(cycle.has_value()) << t.name();
    const int len = cycle->length();
    for (int i = 0; i < len; ++i) {
      const PhilId p = cycle->phils[static_cast<std::size_t>(i)];
      const ForkId a = cycle->forks[static_cast<std::size_t>(i)];
      const ForkId b = cycle->forks[static_cast<std::size_t>((i + 1) % len)];
      EXPECT_TRUE((t.left_of(p) == a && t.right_of(p) == b) ||
                  (t.left_of(p) == b && t.right_of(p) == a))
          << t.name() << " position " << i;
    }
  }
}

TEST(EdgeDisjointPaths, KnownValues) {
  EXPECT_EQ(edge_disjoint_paths(classic_ring(5), 0, 2), 2);
  EXPECT_EQ(edge_disjoint_paths(parallel_arcs(4), 0, 1), 4);
  EXPECT_EQ(edge_disjoint_paths(path_graph(4), 0, 3), 1);
  EXPECT_EQ(edge_disjoint_paths(theta(1, 2, 3), 0, 1), 3);
  EXPECT_EQ(edge_disjoint_paths(star(5), 1, 2), 1);
}

TEST(Thm1Premise, HoldsExactlyWhenRingNodeHasExtraArc) {
  EXPECT_FALSE(thm1_premise(classic_ring(6)).has_value());
  EXPECT_FALSE(thm1_premise(path_graph(5)).has_value());
  EXPECT_TRUE(thm1_premise(ring_with_chord(5)).has_value());
  EXPECT_TRUE(thm1_premise(ring_with_pendant(4)).has_value());
  EXPECT_TRUE(thm1_premise(fig1a()).has_value());
  EXPECT_TRUE(thm1_premise(parallel_arcs(3)).has_value());
}

TEST(Thm1Premise, WitnessIsACycleThroughHighDegreeNode) {
  const Topology t = ring_with_pendant(4);
  const auto witness = thm1_premise(t);
  ASSERT_TRUE(witness.has_value());
  bool has_high_degree = false;
  for (ForkId f : witness->forks) has_high_degree |= t.degree(f) >= 3;
  EXPECT_TRUE(has_high_degree);
}

TEST(Thm2Premise, NeedsThreePaths) {
  EXPECT_FALSE(thm2_premise(classic_ring(6)).has_value());
  // A pendant arc adds no second path between ring nodes: Thm1 territory
  // only (this is why the paper needed the separate Theorem 2 analysis).
  EXPECT_FALSE(thm2_premise(ring_with_pendant(4)).has_value());
}

TEST(Thm2Premise, ChordGivesThreePaths) {
  // In ring_with_chord the two chord endpoints ARE joined by three
  // edge-disjoint paths (two ring halves + the chord), so the premise
  // holds. Verify against edge_disjoint_paths directly.
  const Topology t = ring_with_chord(6);
  EXPECT_EQ(edge_disjoint_paths(t, 0, 3), 3);
  EXPECT_TRUE(thm2_premise(t).has_value());
}

TEST(Thm2Premise, HoldsOnThetaAndFig1a) {
  EXPECT_TRUE(thm2_premise(theta(1, 2, 2)).has_value());
  EXPECT_TRUE(thm2_premise(parallel_arcs(3)).has_value());
  EXPECT_TRUE(thm2_premise(fig1a()).has_value());
  const auto hubs = thm2_premise(theta(2, 3, 4));
  ASSERT_TRUE(hubs.has_value());
  EXPECT_EQ(hubs->first, 0);
  EXPECT_EQ(hubs->second, 1);
}

TEST(DegreeHistogram, Counts) {
  const auto h = degree_histogram(star(4));
  // star(4): 4 leaves of degree 1, center of degree 4.
  ASSERT_EQ(h.size(), 5u);
  EXPECT_EQ(h[1], 4);
  EXPECT_EQ(h[4], 1);
}

TEST(Thm2ImpliesThm1, OnAllInTreeFamilies) {
  // A theta graph contains a ring (two of the paths) with a degree-3 node:
  // the Thm2 premise implies the Thm1 premise. Spot-check families.
  rng::Rng rng(7);
  std::vector<Topology> graphs;
  graphs.push_back(theta(1, 1, 1));
  graphs.push_back(theta(2, 1, 3));
  graphs.push_back(fig1a());
  graphs.push_back(ring_with_chord(8));
  graphs.push_back(random_multigraph(5, 9, rng));
  for (const Topology& t : graphs) {
    if (thm2_premise(t).has_value()) {
      EXPECT_TRUE(thm1_premise(t).has_value()) << t.name();
    }
  }
}

}  // namespace
}  // namespace gdp::graph
