// Per-step semantics of the paper's algorithms (Tables 1-4) and the
// cross-algorithm contract: probabilities sum to 1, invariants preserved,
// progress under fair scheduling.
#include <gtest/gtest.h>

#include <numeric>

#include "gdp/algos/algorithm.hpp"
#include "gdp/common/check.hpp"
#include "gdp/algos/gdp1.hpp"
#include "gdp/algos/lr1.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/sim/engine.hpp"
#include "gdp/sim/schedulers/basic.hpp"

namespace gdp::algos {
namespace {

using sim::Branch;
using sim::EventKind;
using sim::Phase;
using sim::SimState;

/// Drives p through `steps` scheduled atomic steps, always sampling the
/// branch chosen by `pick` (default: first).
SimState drive(const Algorithm& algo, const graph::Topology& t, SimState s, PhilId p, int steps,
               int pick = 0) {
  for (int i = 0; i < steps; ++i) {
    auto branches = algo.step(t, s, p);
    s = branches[static_cast<std::size_t>(std::min<int>(pick, static_cast<int>(branches.size()) - 1))]
            .next;
  }
  return s;
}

TEST(Lr1Semantics, DrawIsFairByDefault) {
  Lr1 lr1;
  const auto t = graph::classic_ring(3);
  SimState s = lr1.initial_state(t);
  s = drive(lr1, t, s, 0, 1);  // wake
  EXPECT_EQ(s.phil(0).phase, Phase::kChoose);
  const auto branches = lr1.step(t, s, 0);
  ASSERT_EQ(branches.size(), 2u);
  EXPECT_DOUBLE_EQ(branches[0].prob, 0.5);
  EXPECT_DOUBLE_EQ(branches[1].prob, 0.5);
  EXPECT_EQ(branches[0].event.kind, EventKind::kChose);
}

TEST(Lr1Semantics, BiasedDrawDropsZeroBranch) {
  Lr1 lr1(AlgoConfig{.p_left = 1.0});
  const auto t = graph::classic_ring(3);
  SimState s = lr1.initial_state(t);
  s = drive(lr1, t, s, 0, 1);
  const auto branches = lr1.step(t, s, 0);
  ASSERT_EQ(branches.size(), 1u);
  EXPECT_EQ(branches[0].event.side, Side::kLeft);
}

TEST(Lr1Semantics, BusyWaitOnTakenFirstFork) {
  Lr1 lr1(AlgoConfig{.p_left = 1.0});  // always pick left
  const auto t = graph::classic_ring(3);
  SimState s = lr1.initial_state(t);
  // P0 wakes, commits to left fork (f0) and takes it.
  s = drive(lr1, t, s, 0, 3);
  EXPECT_EQ(s.fork(0).holder, 0);
  EXPECT_EQ(s.phil(0).phase, Phase::kTrySecond);
  // P2's left fork is f2; wake P2, commit left, take f2.
  s = drive(lr1, t, s, 2, 3);
  EXPECT_EQ(s.fork(2).holder, 2);
  // P2 tries its second fork f0 — taken: release f2, back to choosing.
  auto branches = lr1.step(t, s, 2);
  ASSERT_EQ(branches.size(), 1u);
  EXPECT_EQ(branches[0].event.kind, EventKind::kFailedSecond);
  s = branches[0].next;
  EXPECT_TRUE(s.fork(2).free());
  EXPECT_EQ(s.phil(2).phase, Phase::kChoose);
  // Re-commit left (f2, free): take it; P0 still holds f0; now make P1
  // hold f1 so P2->f0 busy-wait can be observed... simpler: P2 commits to
  // f2 again and P0 never released f0, so P2 cycles. Instead observe the
  // busy-wait on P1 whose left f1 is free but make it taken first:
  s = drive(lr1, t, s, 1, 2);  // P1 wakes, commits f1
  EXPECT_EQ(s.phil(1).phase, Phase::kCommit);
  SimState blocked = s;
  blocked.fork(1).holder = 0;  // f1 grabbed (P0 holds f0 and f1 = eats soon)
  blocked.phil(0).phase = Phase::kEating;
  auto wait = lr1.step(t, blocked, 1);
  ASSERT_EQ(wait.size(), 1u);
  EXPECT_EQ(wait[0].event.kind, EventKind::kBlockedFirst);
  EXPECT_TRUE(wait[0].next == blocked);  // pure self-loop
}

TEST(Lr1Semantics, EatingReleasesBothAndThinks) {
  Lr1 lr1(AlgoConfig{.p_left = 1.0});
  const auto t = graph::classic_ring(3);
  SimState s = lr1.initial_state(t);
  s = drive(lr1, t, s, 0, 4);  // wake, choose, take f0, take f1 -> eating
  EXPECT_EQ(s.phil(0).phase, Phase::kEating);
  EXPECT_EQ(s.fork(0).holder, 0);
  EXPECT_EQ(s.fork(1).holder, 0);
  s = drive(lr1, t, s, 0, 1);
  EXPECT_EQ(s.phil(0).phase, Phase::kThinking);
  EXPECT_TRUE(s.fork(0).free());
  EXPECT_TRUE(s.fork(1).free());
}

TEST(Gdp1Semantics, ChoosesHigherNrTiesRight) {
  Gdp1 gdp1;
  const auto t = graph::classic_ring(3);
  SimState s = gdp1.initial_state(t);
  // All nr equal (0): tie -> right (Table 3's else branch).
  EXPECT_EQ(Gdp1::choose_first(t, s, 0), Side::kRight);
  s.fork(0).nr = 3;  // P0's left
  EXPECT_EQ(Gdp1::choose_first(t, s, 0), Side::kLeft);
  s.fork(1).nr = 5;  // P0's right now higher
  EXPECT_EQ(Gdp1::choose_first(t, s, 0), Side::kRight);
}

TEST(Gdp1Semantics, RenumberBranchesUniformOverM) {
  Gdp1 gdp1(AlgoConfig{.m = 7});
  const auto t = graph::classic_ring(3);
  SimState s = gdp1.initial_state(t);
  s = drive(gdp1, t, s, 0, 3);  // wake, choose (tie->right f1), take f1
  EXPECT_EQ(s.phil(0).phase, Phase::kRenumber);
  const auto branches = gdp1.step(t, s, 0);
  ASSERT_EQ(branches.size(), 7u);  // nr equal: m-way uniform renumber
  double total = 0.0;
  for (const Branch& b : branches) {
    EXPECT_DOUBLE_EQ(b.prob, 1.0 / 7);
    EXPECT_EQ(b.event.kind, EventKind::kRenumbered);
    EXPECT_EQ(b.next.fork(1).nr, b.event.value);
    total += b.prob;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Gdp1Semantics, NoRenumberWhenDistinct) {
  Gdp1 gdp1;
  const auto t = graph::classic_ring(3);
  SimState s = gdp1.initial_state(t);
  s.fork(1).nr = 2;  // P0 right higher -> first
  s = drive(gdp1, t, s, 0, 3);
  EXPECT_EQ(s.phil(0).phase, Phase::kRenumber);
  const auto branches = gdp1.step(t, s, 0);
  ASSERT_EQ(branches.size(), 1u);
  EXPECT_EQ(branches[0].event.kind, EventKind::kNrDistinct);
}

TEST(Gdp1Semantics, RenumberMayCollideAgain) {
  // Table 3 has no retry: one of the m outcomes equals the other fork's nr.
  Gdp1 gdp1(AlgoConfig{.m = 4});
  const auto t = graph::classic_ring(4);
  SimState s = gdp1.initial_state(t);
  s.fork(0).nr = 2;
  s.fork(1).nr = 2;  // P0's forks tie at 2 -> first = right (f1)
  s = drive(gdp1, t, s, 0, 3);
  const auto branches = gdp1.step(t, s, 0);
  ASSERT_EQ(branches.size(), 4u);
  bool collision_possible = false;
  for (const Branch& b : branches) collision_possible |= b.next.fork(1).nr == 2;
  EXPECT_TRUE(collision_possible);
}

TEST(Validation, GdpRejectsSmallM) {
  EXPECT_THROW(make_algorithm("gdp1", AlgoConfig{.m = 2})->initial_state(graph::classic_ring(4)),
               PreconditionError);
  EXPECT_NO_THROW(
      make_algorithm("gdp1", AlgoConfig{.m = 4})->initial_state(graph::classic_ring(4)));
}

TEST(Factory, KnowsAllNames) {
  for (const std::string& name : algorithm_names()) {
    EXPECT_EQ(make_algorithm(name)->name(), name);
  }
  EXPECT_THROW(make_algorithm("nope"), PreconditionError);
}

TEST(Factory, SymmetryAndDistributionFlags) {
  EXPECT_TRUE(make_algorithm("lr1")->symmetric());
  EXPECT_TRUE(make_algorithm("gdp2")->symmetric());
  EXPECT_FALSE(make_algorithm("ordered")->symmetric());
  EXPECT_FALSE(make_algorithm("colored")->symmetric());
  EXPECT_TRUE(make_algorithm("ordered")->fully_distributed());
  EXPECT_FALSE(make_algorithm("arbiter")->fully_distributed());
  EXPECT_FALSE(make_algorithm("ticket")->fully_distributed());
}

TEST(ThinkModes, CoinModeBranches) {
  Lr1 lr1(AlgoConfig{.think = ThinkMode::kCoin, .think_coin = 0.25});
  const auto t = graph::classic_ring(3);
  const SimState s = lr1.initial_state(t);
  const auto branches = lr1.step(t, s, 0);
  ASSERT_EQ(branches.size(), 2u);
  EXPECT_DOUBLE_EQ(branches[0].prob, 0.25);
  EXPECT_EQ(branches[0].event.kind, EventKind::kStartTrying);
  EXPECT_DOUBLE_EQ(branches[1].prob, 0.75);
  EXPECT_EQ(branches[1].event.kind, EventKind::kStillThinking);
}

// --- Cross-algorithm contract, parameterized over (algorithm, topology). ---

struct ContractCase {
  std::string algo;
  int topo;
};

graph::Topology contract_topology(int index) {
  switch (index) {
    case 0: return graph::classic_ring(4);
    case 1: return graph::classic_ring(6);
    case 2: return graph::fig1a();
    case 3: return graph::parallel_arcs(3);
    case 4: return graph::ring_with_pendant(3);
    case 5: return graph::theta(1, 2, 2);
    default: return graph::star(5);
  }
}

class AlgorithmContract : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(AlgorithmContract, BranchProbabilitiesSumToOne) {
  const auto [name, topo_idx] = GetParam();
  const auto t = contract_topology(topo_idx);
  const auto algo = make_algorithm(name);
  if (name == "colored") return;  // validated separately (even ring only)
  rng::Rng rng(404);
  sim::RandomUniform sched;
  sim::EngineConfig cfg;
  cfg.max_steps = 300;
  // Sample states along a run; at each, audit every philosopher's branches.
  SimState s = algo->initial_state(t);
  for (int step = 0; step < 200; ++step) {
    for (PhilId p = 0; p < t.num_phils(); ++p) {
      const auto branches = algo->step(t, s, p);
      ASSERT_FALSE(branches.empty());
      const double total = std::accumulate(
          branches.begin(), branches.end(), 0.0,
          [](double acc, const Branch& b) { return acc + b.prob; });
      ASSERT_NEAR(total, 1.0, 1e-9) << name << " @" << t.name() << " phil " << p;
      for (const Branch& b : branches) ASSERT_GT(b.prob, 0.0);
    }
    const PhilId p = rng.uniform_int(0, t.num_phils() - 1);
    s = sim::sample_branch(algo->step(t, s, p), rng).next;
  }
}

TEST_P(AlgorithmContract, InvariantsHoldAndFairRunsProgress) {
  const auto [name, topo_idx] = GetParam();
  const auto t = contract_topology(topo_idx);
  if (name == "colored") return;
  const auto algo = make_algorithm(name);
  sim::LongestWaiting sched;
  rng::Rng rng(777 + topo_idx);
  sim::EngineConfig cfg;
  cfg.max_steps = 60'000;
  cfg.check_invariants = true;
  const auto result = sim::run(*algo, t, sched, rng, cfg);
  EXPECT_TRUE(result.invariant_violation.empty()) << result.invariant_violation;
  if (name == "ticket" && topo_idx >= 2) {
    // Ticket may deadlock off the classic ring — that is experiment E9's
    // point; other algorithms must progress.
    return;
  }
  EXPECT_GT(result.total_meals, 0u) << name << " on " << t.name();
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, AlgorithmContract,
    ::testing::Combine(::testing::Values("lr1", "lr2", "gdp1", "gdp2", "gdp2c", "ordered",
                                         "arbiter", "ticket"),
                       ::testing::Range(0, 7)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_t" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace gdp::algos
