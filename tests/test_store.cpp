// gdp::mdp::store — the chunked, spillable, checkpointable model store.
//
// The load-bearing suite is the checkpoint/resume determinism matrix: on
// ring / ring-with-chord / parallel-arcs under lr2 and gdp2, at threads
// {1, 2, hw}, explore-to-cap → save_checkpoint → load_checkpoint → resume
// must produce the SAME chunking-independent fingerprint as the one-shot
// run — a capped run is a checkpoint, never a dead end.
//
// The chunk-native verdict matrix is the other load-bearing suite: the
// par:: / quant:: kernels instantiated over ChunkedModel must match the
// materialized path bit for bit (and never materialize — the
// "store.materializations" counter is pinned at 0 across the verdict and
// resume paths).
//
// Set GDP_TEST_FORCE_SPILL=1 to run every store built here with spill
// enabled (tiny chunks, file-backed reads); the CI store-spill job does
// this under ASan so mapping lifetimes and chunk seams get sanitized.
// GDP_TEST_CHUNK_STATES / GDP_TEST_MAX_RESIDENT_CHUNKS additionally shrink
// the chunks and bound the resident set (the CI bounded-resident pass).
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "gdp/common/check.hpp"
#include "gdp/algos/algorithm.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/mdp/store/store.hpp"
#include "gdp/obs/obs.hpp"

namespace gdp::mdp::store {
namespace {

bool force_spill() {
  const char* v = std::getenv("GDP_TEST_FORCE_SPILL");
  return v != nullptr && *v != '\0' && std::string(v) != "0";
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

/// Metric recording on for one scope (counter pins need obs enabled; the
/// suite normally runs without GDP_OBS).
class ScopedObs {
 public:
  ScopedObs() : prev_(obs::enabled()) { obs::set_enabled(true); }
  ~ScopedObs() { obs::set_enabled(prev_); }

 private:
  bool prev_;
};

obs::Counter& materializations_counter() {
  return obs::Registry::global().counter("store.materializations");
}

/// A fresh per-test scratch directory under gtest's temp root, removed on
/// destruction (checkpoints and spilled chunks are same-machine throwaways).
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("gdp_store_" + tag + "_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);  // best-effort cleanup
  }
  std::string path(const std::string& name) const { return (dir_ / name).string(); }
  std::string dir() const { return dir_.string(); }

 private:
  std::filesystem::path dir_;
};

/// Store options for this suite: small chunks so even the small matrix
/// models cross several chunk seams, spill forced via the env knob.
/// GDP_TEST_CHUNK_STATES and GDP_TEST_MAX_RESIDENT_CHUNKS override the
/// chunk size and residency budget suite-wide — the CI bounded-resident
/// spill pass uses them to run every store test under a tight LRU budget.
StoreOptions suite_options(const ScratchDir& scratch, std::size_t chunk_states = 1'024) {
  StoreOptions options;
  options.chunk_states = env_size("GDP_TEST_CHUNK_STATES", chunk_states);
  options.spill = force_spill();
  options.dir = scratch.dir();
  options.max_resident_chunks = env_size("GDP_TEST_MAX_RESIDENT_CHUNKS", 0);
  return options;
}

std::vector<int> thread_counts() {
  std::vector<int> counts = {1, 2};
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 2) counts.push_back(hw);
  return counts;
}

/// Element-wise equality of a chunked model against a contiguous Model —
/// every read-API observation, not just the fingerprint.
void expect_matches_model(const ChunkedModel& chunked, const Model& model) {
  ASSERT_EQ(chunked.num_states(), model.num_states());
  ASSERT_EQ(chunked.num_phils(), model.num_phils());
  EXPECT_EQ(chunked.truncated(), model.truncated());
  EXPECT_EQ(chunked.initial(), model.initial());
  for (StateId s = 0; s < model.num_states(); ++s) {
    ASSERT_EQ(chunked.eaters(s), model.eaters(s)) << "state " << s;
    ASSERT_EQ(chunked.frontier(s), model.frontier(s)) << "state " << s;
    for (int p = 0; p < model.num_phils(); ++p) {
      const auto [cb, ce] = chunked.row(s, p);
      const auto [mb, me] = model.row(s, p);
      ASSERT_EQ(ce - cb, me - mb) << "row (" << s << ", " << p << ")";
      for (std::ptrdiff_t i = 0; i < ce - cb; ++i) {
        ASSERT_EQ(cb[i].next, mb[i].next) << "row (" << s << ", " << p << ")[" << i << "]";
        ASSERT_EQ(cb[i].prob, mb[i].prob) << "row (" << s << ", " << p << ")[" << i << "]";
      }
    }
  }
}

// --- the checkpoint/resume determinism matrix -----------------------------

struct Combo {
  const char* algo;
  graph::Topology topology;
  std::size_t small_cap;  // the mid-run checkpoint cap (must truncate)
  std::size_t final_cap;  // the one-shot cap (uncapped where tractable)
};

// ring and parallel finish uncapped (complete models: 19k / 169k / 17k /
// 6.5k states); ring_with_chord(4) runs past 5M states uncapped, so both
// the one-shot and the resumed run stop at the same 30k-state level cap —
// pinning that cap-composition itself is deterministic.
std::vector<Combo> matrix() {
  return {
      {"lr2", graph::classic_ring(3), 2'000, 2'000'000},
      {"lr2", graph::ring_with_chord(4), 2'000, 30'000},
      {"lr2", graph::parallel_arcs(3), 2'000, 2'000'000},
      {"gdp2", graph::classic_ring(3), 2'000, 2'000'000},
      {"gdp2", graph::ring_with_chord(4), 2'000, 30'000},
      {"gdp2", graph::parallel_arcs(3), 1'000, 2'000'000},
  };
}

TEST(Store, CheckpointResumeComposesWithOneShot) {
  const ScratchDir scratch("resume");
  for (const Combo& combo : matrix()) {
    const auto algo = algos::make_algorithm(combo.algo);
    std::uint64_t pinned_fp = 0;
    bool have_pin = false;
    for (int threads : thread_counts()) {
      SCOPED_TRACE(std::string(combo.algo) + " on " + combo.topology.name() +
                   " at threads=" + std::to_string(threads));
      par::CheckOptions final_opts;
      final_opts.threads = threads;
      final_opts.max_states = combo.final_cap;

      const ChunkedModel one_shot =
          explore(*algo, combo.topology, suite_options(scratch), final_opts);

      par::CheckOptions capped_opts = final_opts;
      capped_opts.max_states = combo.small_cap;
      const ChunkedModel capped =
          explore(*algo, combo.topology, suite_options(scratch), capped_opts);
      ASSERT_TRUE(capped.truncated());
      ASSERT_GE(capped.num_states(), combo.small_cap);

      // Round-trip through the checkpoint file: the loaded model is the
      // saved model (same chunking-independent fingerprint).
      const std::string path = scratch.path("ckpt.gdpstore");
      capped.save_checkpoint(path);
      const ChunkedModel loaded = ChunkedModel::load_checkpoint(*algo, combo.topology, path);
      ASSERT_EQ(loaded.fingerprint(), capped.fingerprint());
      ASSERT_EQ(loaded.num_states(), capped.num_states());
      ASSERT_TRUE(loaded.truncated());

      // Resume from the loaded checkpoint: composes bit-identically with
      // the one-shot run, at this and every other thread count.
      const ChunkedModel resumed =
          resume(*algo, combo.topology, loaded, suite_options(scratch), final_opts);
      EXPECT_EQ(resumed.num_states(), one_shot.num_states());
      EXPECT_EQ(resumed.truncated(), one_shot.truncated());
      EXPECT_EQ(resumed.fingerprint(), one_shot.fingerprint());

      if (!have_pin) {
        pinned_fp = one_shot.fingerprint();
        have_pin = true;
      } else {
        EXPECT_EQ(one_shot.fingerprint(), pinned_fp) << "thread-count dependence";
      }
    }
  }
}

TEST(Store, FingerprintIsChunkingIndependent) {
  const ScratchDir scratch("chunking");
  const auto algo = algos::make_algorithm("lr2");
  const auto t = graph::classic_ring(3);
  const ChunkedModel base = explore(*algo, t, suite_options(scratch, 64));
  const Model model = base.materialize();
  std::uint64_t fp = 0;
  for (std::size_t chunk_states : {std::size_t{64}, std::size_t{1'000}, std::size_t{1} << 15}) {
    // suite_options may override the size (GDP_TEST_CHUNK_STATES); geometry
    // expectations use whatever size actually applied.
    const StoreOptions options = suite_options(scratch, chunk_states);
    const ChunkedModel rechunked =
        ChunkedModel::from_model(model, base.codec(), base.keys(), options);
    EXPECT_EQ(rechunked.num_chunks(),
              (model.num_states() + options.chunk_states - 1) / options.chunk_states);
    if (fp == 0) fp = rechunked.fingerprint();
    EXPECT_EQ(rechunked.fingerprint(), fp) << "chunk_states=" << chunk_states;
  }
  EXPECT_EQ(base.fingerprint(), fp);
}

// --- spill -----------------------------------------------------------------

TEST(Store, SpillPreservesEveryObservation) {
  const ScratchDir scratch("spill");
  const auto algo = algos::make_algorithm("gdp2");
  const auto t = graph::parallel_arcs(3);

  StoreOptions resident_opts;
  resident_opts.chunk_states = 256;  // 6.5k states -> ~26 chunks, many seams
  ChunkedModel chunked = explore(*algo, t, resident_opts);
  const Model model = chunked.materialize();
  const std::uint64_t fp_resident = chunked.fingerprint();
  ASSERT_GT(chunked.resident_bytes(), 0u);
  ASSERT_EQ(chunked.spilled_bytes(), 0u);

  // Spill every chunk: heap copies dropped, reads now fault pages in from
  // the chunk files — and nothing observable changes.
  StoreOptions spill_opts = resident_opts;
  spill_opts.dir = scratch.dir();
  ChunkedModel spilled = ChunkedModel::from_model(model, chunked.codec(), chunked.keys(),
                                                  spill_opts);
  spilled.spill();
  EXPECT_EQ(spilled.resident_bytes(), 0u);
  EXPECT_GT(spilled.spilled_bytes(), 0u);
  for (std::size_t i = 0; i < spilled.num_chunks(); ++i) {
    EXPECT_TRUE(spilled.chunk(i).spilled()) << "chunk " << i;
  }
  EXPECT_EQ(spilled.fingerprint(), fp_resident);
  expect_matches_model(spilled, model);

  // Keys survive the spill too (the resume path reads them from chunks).
  const std::vector<PackedKey> keys = spilled.keys();
  ASSERT_EQ(keys.size(), model.num_states());
  for (StateId s = 0; s < model.num_states(); ++s) {
    ASSERT_EQ(spilled.key(s), keys[s]) << "state " << s;
  }
}

TEST(Store, SpillAtConstructionMatchesExplicitSpill) {
  const ScratchDir scratch("spill_ctor");
  const auto algo = algos::make_algorithm("lr2");
  const auto t = graph::parallel_arcs(3);
  StoreOptions options;
  options.chunk_states = 512;
  options.spill = true;
  options.dir = scratch.dir();
  const ChunkedModel spilled = explore(*algo, t, options);
  EXPECT_EQ(spilled.resident_bytes(), 0u);
  EXPECT_GT(spilled.spilled_bytes(), 0u);

  const ChunkedModel resident = explore(*algo, t, StoreOptions{});
  EXPECT_EQ(spilled.fingerprint(), resident.fingerprint());
  expect_matches_model(spilled, resident.materialize());
}

// --- corruption refusal ----------------------------------------------------

TEST(Store, CorruptedCheckpointIsRefused) {
  const ScratchDir scratch("corrupt");
  const auto algo = algos::make_algorithm("lr2");
  const auto t = graph::classic_ring(3);
  const ChunkedModel model = explore(*algo, t, suite_options(scratch, 512));
  const std::string path = scratch.path("ckpt.gdpstore");
  model.save_checkpoint(path);

  // Pristine file loads.
  EXPECT_EQ(ChunkedModel::load_checkpoint(*algo, t, path).fingerprint(), model.fingerprint());

  // One flipped byte deep in a chunk payload: the chunk fingerprint check
  // turns silent corruption into a refusal.
  const auto size = std::filesystem::file_size(path);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(static_cast<std::streamoff>(size - 9));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<std::streamoff>(size - 9));
    f.write(&byte, 1);
  }
  EXPECT_THROW(ChunkedModel::load_checkpoint(*algo, t, path), PreconditionError);

  // A truncated file is refused before any payload is trusted.
  model.save_checkpoint(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW(ChunkedModel::load_checkpoint(*algo, t, path), PreconditionError);

  // A checkpoint for one instance does not load as another.
  model.save_checkpoint(path);
  EXPECT_THROW(ChunkedModel::load_checkpoint(*algo, graph::classic_ring(4), path),
               PreconditionError);
}

// --- analysis bridges ------------------------------------------------------

TEST(Store, AnalysesMatchContiguousPathOnCompleteModels) {
  const ScratchDir scratch("analysis");
  const auto algo = algos::make_algorithm("lr2");
  const auto t = graph::parallel_arcs(3);
  ChunkedModel chunked = explore(*algo, t, suite_options(scratch, 512));
  if (force_spill()) chunked.spill();
  const Model model = chunked.materialize();
  ASSERT_FALSE(model.truncated());

  const auto reach_store = reachable_states(chunked);
  const auto reach_direct = par::reachable_states(model);
  EXPECT_EQ(reach_store, reach_direct);

  const auto mecs_store = maximal_end_components(chunked);
  const auto mecs_direct = par::maximal_end_components(model);
  ASSERT_EQ(mecs_store.size(), mecs_direct.size());
  for (std::size_t i = 0; i < mecs_store.size(); ++i) {
    EXPECT_EQ(mecs_store[i].states, mecs_direct[i].states) << "MEC " << i;
    EXPECT_EQ(mecs_store[i].phil_mask, mecs_direct[i].phil_mask) << "MEC " << i;
  }

  const auto fair_store = check_fair_progress(chunked);
  const auto fair_direct = par::check_fair_progress(model);
  EXPECT_EQ(fair_store.verdict, fair_direct.verdict);
  EXPECT_EQ(fair_store.num_mecs, fair_direct.num_mecs);
  EXPECT_EQ(fair_store.num_fair_mecs, fair_direct.num_fair_mecs);
  EXPECT_EQ(fair_store.witness_size, fair_direct.witness_size);
  EXPECT_EQ(fair_store.witness_state, fair_direct.witness_state);
  // Theorem 2 on three parallel arcs: LR2 progress fails — through chunks too.
  EXPECT_EQ(fair_store.verdict, Verdict::kProgressFails);

  const auto quant_store = analyze(chunked);
  const auto quant_direct = quant::analyze(model);
  EXPECT_EQ(quant_store.certainty, quant_direct.certainty);
  EXPECT_EQ(quant_store.p_min, quant_direct.p_min);
  EXPECT_EQ(quant_store.p_max, quant_direct.p_max);
  EXPECT_EQ(quant_store.p_trap, quant_direct.p_trap);
  EXPECT_EQ(quant_store.e_min, quant_direct.e_min);
  EXPECT_EQ(quant_store.e_max, quant_direct.e_max);
  EXPECT_EQ(quant_store.sweeps, quant_direct.sweeps);
}

TEST(Store, TruncatedModelsKeepRefusalSemantics) {
  const ScratchDir scratch("truncated");
  const auto algo = algos::make_algorithm("gdp2");
  const auto t = graph::classic_ring(3);
  par::CheckOptions capped;
  capped.max_states = 2'000;
  const ChunkedModel chunked = explore(*algo, t, suite_options(scratch, 512), capped);
  ASSERT_TRUE(chunked.truncated());
  const Model model = chunked.materialize();

  // The bridge inherits the engines' truncation semantics exactly: same
  // verdict as the contiguous path, and quant can never certify.
  const auto fair_store = check_fair_progress(chunked);
  const auto fair_direct = par::check_fair_progress(model);
  EXPECT_EQ(fair_store.verdict, fair_direct.verdict);
  EXPECT_EQ(fair_store.witness_size, fair_direct.witness_size);

  const auto quant_store = analyze(chunked);
  EXPECT_EQ(quant_store.certainty, quant::Certainty::kTruncated);
  EXPECT_EQ(quant_store.p_min, quant::analyze(model).p_min);
}

// --- chunk-native verdicts -------------------------------------------------

struct VerdictCombo {
  const char* algo;
  graph::Topology topology;
  std::size_t cap;  // exploration cap; the chord instances truncate at it
};

// Complete instances (ring/parallel) pin byte-identical verdicts and
// intervals against the materialized path; the chord instances truncate at
// the cap and pin the refusal semantics instead — both through the same
// chunk-native kernels, at every thread count.
std::vector<VerdictCombo> verdict_matrix() {
  return {
      {"lr2", graph::classic_ring(3), 2'000'000},
      {"lr2", graph::ring_with_chord(4), 10'000},
      {"lr2", graph::parallel_arcs(3), 2'000'000},
      {"gdp2", graph::classic_ring(3), 30'000},
      {"gdp2", graph::ring_with_chord(4), 10'000},
      {"gdp2", graph::parallel_arcs(3), 2'000'000},
  };
}

TEST(Store, ChunkNativeVerdictsMatchMaterializedPath) {
  const ScopedObs obs_on;
  const ScratchDir scratch("verdicts");
  for (const VerdictCombo& combo : verdict_matrix()) {
    const auto algo = algos::make_algorithm(combo.algo);
    for (int threads : thread_counts()) {
      SCOPED_TRACE(std::string(combo.algo) + " on " + combo.topology.name() +
                   " at threads=" + std::to_string(threads));
      par::CheckOptions opts;
      opts.threads = threads;
      opts.max_states = combo.cap;

      ChunkedModel chunked = explore(*algo, combo.topology, suite_options(scratch, 512), opts);
      if (force_spill()) chunked.spill();
      // The materialized reference comes FIRST, so the counter snapshot
      // below proves the chunk-native calls never materialize on their own.
      const Model model = chunked.materialize();
      const std::uint64_t mats_before = materializations_counter().value();

      const auto fair_store = check_fair_progress(chunked, ~std::uint64_t{0}, opts);
      const auto fair_direct = par::check_fair_progress(model, ~std::uint64_t{0}, opts);
      EXPECT_EQ(fair_store.verdict, fair_direct.verdict);
      EXPECT_EQ(fair_store.num_mecs, fair_direct.num_mecs);
      EXPECT_EQ(fair_store.num_fair_mecs, fair_direct.num_fair_mecs);
      EXPECT_EQ(fair_store.witness_size, fair_direct.witness_size);
      EXPECT_EQ(fair_store.witness_state, fair_direct.witness_state);

      quant::QuantOptions qopts;
      qopts.threads = threads;
      const auto quant_store = analyze(chunked, ~std::uint64_t{0}, qopts);
      const auto quant_direct = quant::analyze(model, ~std::uint64_t{0}, qopts);
      EXPECT_EQ(quant_store.certainty, quant_direct.certainty);
      EXPECT_EQ(quant_store.p_min, quant_direct.p_min);
      EXPECT_EQ(quant_store.p_max, quant_direct.p_max);
      EXPECT_EQ(quant_store.p_trap, quant_direct.p_trap);
      EXPECT_EQ(quant_store.e_min, quant_direct.e_min);
      EXPECT_EQ(quant_store.e_max, quant_direct.e_max);
      EXPECT_EQ(quant_store.sweeps, quant_direct.sweeps);
      if (chunked.truncated()) {
        EXPECT_EQ(quant_store.certainty, quant::Certainty::kTruncated);
      }

      EXPECT_EQ(materializations_counter().value(), mats_before)
          << "the chunk-native verdict path must not materialize";
    }
  }
}

TEST(Store, ResumeDoesNotMaterialize) {
  const ScopedObs obs_on;
  const ScratchDir scratch("resume_native");
  const auto algo = algos::make_algorithm("lr2");
  const auto t = graph::classic_ring(3);

  par::CheckOptions capped;
  capped.max_states = 2'000;
  const ChunkedModel checkpoint = explore(*algo, t, suite_options(scratch, 512), capped);
  ASSERT_TRUE(checkpoint.truncated());
  const std::string path = scratch.path("ckpt.gdpstore");
  checkpoint.save_checkpoint(path);
  const ChunkedModel loaded = ChunkedModel::load_checkpoint(*algo, t, path);

  const ChunkedModel one_shot = explore(*algo, t, suite_options(scratch, 512));
  const std::uint64_t mats_before = materializations_counter().value();
  const ChunkedModel resumed = resume(*algo, t, loaded, suite_options(scratch, 512));
  EXPECT_EQ(materializations_counter().value(), mats_before)
      << "resume must seed the explorer from chunk reads, not a materialized model";
  EXPECT_EQ(resumed.fingerprint(), one_shot.fingerprint());
  EXPECT_FALSE(resumed.truncated());
}

// --- bounded residency -----------------------------------------------------

TEST(Store, BoundedResidencyCapsResidentSetWithoutChangingVerdicts) {
  const ScopedObs obs_on;
  const ScratchDir scratch("residency");
  const auto algo = algos::make_algorithm("gdp2");
  const auto t = graph::parallel_arcs(3);
  const std::size_t budget = 2;

  StoreOptions bounded_opts;
  bounded_opts.chunk_states = 256;  // 6.5k states -> ~26 chunks, real paging
  bounded_opts.spill = true;
  bounded_opts.dir = scratch.dir();
  bounded_opts.max_resident_chunks = budget;
  ChunkedModel bounded = explore(*algo, t, bounded_opts);
  ASSERT_GT(bounded.num_chunks(), budget * 2);
  // Spilled under a budget: everything starts cold.
  EXPECT_EQ(bounded.resident_bytes(), 0u);

  obs::Counter& faults = obs::Registry::global().counter("store.chunk_faults", obs::Plane::kTiming);
  obs::Counter& evictions =
      obs::Registry::global().counter("store.chunk_evictions", obs::Plane::kTiming);
  const std::uint64_t faults_before = faults.value();
  const std::uint64_t evictions_before = evictions.value();

  const auto fair_bounded = check_fair_progress(bounded);
  const auto quant_bounded = analyze(bounded);

  // A full sweep over ~26 chunks through a 2-chunk window must page.
  EXPECT_GT(faults.value(), faults_before);
  EXPECT_GT(evictions.value(), evictions_before);

  // The hot set never exceeded the budget (in chunks, so in bytes too).
  std::size_t max_chunk_bytes = 0;
  for (std::size_t i = 0; i < bounded.num_chunks(); ++i) {
    max_chunk_bytes = std::max(max_chunk_bytes, bounded.chunk(i).payload_bytes());
  }
  EXPECT_LE(bounded.peak_resident_bytes(), budget * max_chunk_bytes);
  EXPECT_LE(bounded.resident_bytes(), budget * max_chunk_bytes);

  // Eviction is invisible to the verdicts: same results as unbounded.
  StoreOptions unbounded_opts = bounded_opts;
  unbounded_opts.max_resident_chunks = 0;
  const ChunkedModel unbounded = explore(*algo, t, unbounded_opts);
  const auto fair_ref = check_fair_progress(unbounded);
  EXPECT_EQ(fair_bounded.verdict, fair_ref.verdict);
  EXPECT_EQ(fair_bounded.num_mecs, fair_ref.num_mecs);
  EXPECT_EQ(fair_bounded.witness_size, fair_ref.witness_size);
  const auto quant_ref = analyze(unbounded);
  EXPECT_EQ(quant_bounded.certainty, quant_ref.certainty);
  EXPECT_EQ(quant_bounded.p_min, quant_ref.p_min);
  EXPECT_EQ(quant_bounded.p_max, quant_ref.p_max);
  EXPECT_EQ(quant_bounded.e_min, quant_ref.e_min);
  EXPECT_EQ(quant_bounded.e_max, quant_ref.e_max);
}

// --- chunk geometry --------------------------------------------------------

TEST(Store, ChunkSeamsCoverEveryState) {
  const ScratchDir scratch("seams");
  const auto algo = algos::make_algorithm("gdp2");
  const auto t = graph::parallel_arcs(3);
  const std::size_t chunk_states = env_size("GDP_TEST_CHUNK_STATES", 64);
  const ChunkedModel chunked = explore(*algo, t, suite_options(scratch, chunk_states));
  const Model model = chunked.materialize();

  ASSERT_EQ(chunked.num_chunks(),
            (chunked.num_states() + chunk_states - 1) / chunk_states);
  std::size_t covered = 0;
  for (std::size_t i = 0; i < chunked.num_chunks(); ++i) {
    const Chunk& c = chunked.chunk(i);
    EXPECT_EQ(c.first(), static_cast<StateId>(i * chunk_states)) << "chunk " << i;
    EXPECT_LE(c.count(), chunk_states) << "chunk " << i;
    EXPECT_EQ(c.num_phils(), chunked.num_phils()) << "chunk " << i;
    EXPECT_EQ(c.key_words(), chunked.codec().key_words()) << "chunk " << i;
    covered += c.count();
  }
  EXPECT_EQ(covered, chunked.num_states());
  expect_matches_model(chunked, model);
}

}  // namespace
}  // namespace gdp::mdp::store
