// gdp::obs — the two-plane observability registry.
//
// The load-bearing suite is the bit-identity matrix: on ring /
// ring-with-chord / parallel-arcs under lr2 and gdp2, at threads {1, 2, hw},
// a full explore → verdict → quant pipeline must leave the deterministic
// plane (counters, gauges, histograms — and their fingerprint) IDENTICAL at
// every thread count, and turning obs on must not perturb the model or the
// verdicts. The timing plane (spans, steal counts) is explicitly excluded
// from that contract.
//
// The parallel hammer test exists for the TSan job: every registry surface
// (lookup, add, set_max, record, record_span, snapshot) exercised
// concurrently.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "gdp/algos/algorithm.hpp"
#include "gdp/common/pool.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/mdp/par/par.hpp"
#include "gdp/mdp/quant/quant.hpp"
#include "gdp/mdp/store/store.hpp"
#include "gdp/obs/obs.hpp"
#include "gdp/obs/timeline.hpp"

namespace gdp::obs {
namespace {

/// Every test runs with obs on and a zeroed registry; the registry is
/// process-global, so tests must not assume absent keys, only values.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    Registry::global().reset();
  }
  void TearDown() override {
    Registry::global().reset();
    set_enabled(false);
  }
};

std::uint64_t metric(const std::vector<MetricValue>& values, const std::string& name) {
  for (const auto& m : values) {
    if (m.name == name) return m.value;
  }
  return 0;
}

bool has_metric(const std::vector<MetricValue>& values, const std::string& name) {
  for (const auto& m : values) {
    if (m.name == name) return true;
  }
  return false;
}

std::vector<int> thread_counts() {
  std::vector<int> counts = {1, 2};
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 2) counts.push_back(hw);
  return counts;
}

// --- Primitives. -----------------------------------------------------------

TEST_F(ObsTest, CounterAccumulatesAndResets) {
  Counter& c = Registry::global().counter("test.counter");
  c.increment();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, CounterIsNoopWhenDisabled) {
  Counter& c = Registry::global().counter("test.disabled_counter");
  set_enabled(false);
  c.add(7);
  EXPECT_EQ(c.value(), 0u);
  set_enabled(true);
  c.add(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST_F(ObsTest, CounterStripesSumAcrossThreads) {
  Counter& c = Registry::global().counter("test.striped_counter");
  constexpr std::size_t kTasks = 1'000;
  common::parallel_for(kTasks, /*threads=*/4, [&](std::uint32_t) { c.add(3); });
  EXPECT_EQ(c.value(), 3u * kTasks);
}

TEST_F(ObsTest, GaugeSetMaxIsARunningMax) {
  Gauge& g = Registry::global().gauge("test.gauge");
  g.set_max(10);
  g.set_max(4);
  EXPECT_EQ(g.value(), 10u);
  common::parallel_for(100, /*threads=*/4, [&](std::uint32_t id) { g.set_max(id); });
  EXPECT_EQ(g.value(), 99u);
}

TEST_F(ObsTest, HistogramBucketsByBitWidth) {
  Histogram& h = Registry::global().histogram("test.hist");
  h.record(0);  // bucket 0
  h.record(1);  // bit_width 1
  h.record(5);  // bit_width 3
  h.record(5);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 11u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(3), 2u);
  EXPECT_EQ(h.bucket(2), 0u);
}

TEST_F(ObsTest, RegistryReferencesAreStableAcrossReset) {
  Counter& before = Registry::global().counter("test.stable");
  before.add(5);
  Registry::global().reset();
  EXPECT_EQ(before.value(), 0u);  // zeroed in place, not replaced
  before.add(2);
  Counter& after = Registry::global().counter("test.stable");
  EXPECT_EQ(&before, &after);
  EXPECT_EQ(after.value(), 2u);
}

// --- Plane separation. ------------------------------------------------------

TEST_F(ObsTest, TimingCountersLiveInTheTimingPlane) {
  Registry::global().counter("test.det_plane").add(1);
  Registry::global().counter("test.timing_plane", Plane::kTiming).add(1);
  const Snapshot snap = Registry::global().snapshot();
  EXPECT_TRUE(has_metric(snap.counters, "test.det_plane"));
  EXPECT_FALSE(has_metric(snap.counters, "test.timing_plane"));
  EXPECT_TRUE(has_metric(snap.timing_counters, "test.timing_plane"));
  EXPECT_FALSE(has_metric(snap.timing_counters, "test.det_plane"));
}

TEST_F(ObsTest, FingerprintIgnoresTheTimingPlane) {
  Registry::global().counter("test.det_plane").add(123);
  const std::uint64_t base = deterministic_fingerprint(Registry::global().snapshot());

  Registry::global().counter("test.timing_plane", Plane::kTiming).add(99);
  Registry::global().record_span("test.span", 1'234'567);
  EXPECT_EQ(deterministic_fingerprint(Registry::global().snapshot()), base);

  Registry::global().counter("test.det_plane").add(1);
  EXPECT_NE(deterministic_fingerprint(Registry::global().snapshot()), base);
}

TEST_F(ObsTest, SpanRecordsOnceAndFreezesSeconds) {
  {
    Span span("test.span_once");
    span.stop();
    const double frozen = span.seconds();
    EXPECT_GE(frozen, 0.0);
    EXPECT_EQ(span.seconds(), frozen);  // frozen after stop
    span.stop();                        // idempotent — no second record
  }
  const Snapshot snap = Registry::global().snapshot();
  bool found = false;
  for (const auto& s : snap.spans) {
    if (s.name != "test.span_once") continue;
    found = true;
    EXPECT_EQ(s.count, 1u);
  }
  EXPECT_TRUE(found);
}

TEST_F(ObsTest, SpanMinMaxTrackExtrema) {
  Registry::global().record_span("test.span_extrema", 42);
  Registry::global().record_span("test.span_extrema", 5);
  Registry::global().record_span("test.span_extrema", 17);
  const Snapshot snap = Registry::global().snapshot();
  bool found = false;
  for (const auto& s : snap.spans) {
    if (s.name != "test.span_extrema") continue;
    found = true;
    EXPECT_EQ(s.count, 3u);
    EXPECT_EQ(s.total_ns, 64u);
    EXPECT_EQ(s.min_ns, 5u);
    EXPECT_EQ(s.max_ns, 42u);
  }
  EXPECT_TRUE(found);
}

TEST_F(ObsTest, SpanReadsNoClockWhenDisabled) {
  set_enabled(false);
  Span span("test.span_disabled");
  span.stop();
  EXPECT_EQ(span.seconds(), 0.0);
  set_enabled(true);
  const Snapshot snap = Registry::global().snapshot();
  for (const auto& s : snap.spans) EXPECT_NE(s.name, "test.span_disabled");
}

// --- The JSON report. -------------------------------------------------------

TEST_F(ObsTest, ReportJsonCarriesSchemaVersionAndPlanes) {
  Registry::global().counter("test.report_counter").add(7);
  Registry::global().gauge("test.report_gauge").set(11);
  Registry::global().histogram("test.report_hist").record(5);
  Registry::global().counter("test.report_steals", Plane::kTiming).add(3);
  Registry::global().gauge("test.report_tgauge", Plane::kTiming).set(5);
  Registry::global().histogram("test.report_thist", Plane::kTiming).record(9);
  Registry::global().record_span("test.report_span", 42);

  const std::string json = report_json(Registry::global().snapshot(), "unit",
                                       {{"key", "value"}});
  EXPECT_NE(json.find("\"gdp_obs_schema\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"key\": \"value\""), std::string::npos);
  EXPECT_NE(json.find("\"test.report_counter\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"test.report_gauge\": 11"), std::string::npos);
  EXPECT_NE(json.find("\"test.report_steals\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"test.report_tgauge\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"test.report_thist\""), std::string::npos);
  EXPECT_NE(json.find("\"test.report_span\""), std::string::npos);
  // Schema 2: a recorded span carries its extrema.
  EXPECT_NE(json.find("\"min_ns\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"max_ns\": 42"), std::string::npos);
  // The two planes are separate objects, deterministic first.
  const auto det = json.find("\"deterministic\"");
  const auto timing = json.find("\"timing\"");
  ASSERT_NE(det, std::string::npos);
  ASSERT_NE(timing, std::string::npos);
  EXPECT_LT(det, timing);
  EXPECT_LT(json.find("\"test.report_counter\""), timing);
  EXPECT_GT(json.find("\"test.report_steals\""), timing);
  EXPECT_GT(json.find("\"test.report_tgauge\""), timing);
}

TEST_F(ObsTest, ReportJsonOmitsExtremaOnEmptySpans) {
  // reset() zeroes aggregates in place, so the key survives with count 0 —
  // an empty aggregate must not invent sentinel extrema.
  Registry::global().record_span("test.empty_span", 7);
  Registry::global().reset();
  const std::string json = report_json(Registry::global().snapshot(), "unit", {});
  EXPECT_NE(json.find("\"test.empty_span\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 0"), std::string::npos);
  EXPECT_EQ(json.find("\"min_ns\""), std::string::npos);
  EXPECT_EQ(json.find("\"max_ns\""), std::string::npos);
}

TEST_F(ObsTest, ReportJsonEscapesMetaStrings) {
  const std::string json =
      report_json(Snapshot{}, "esc", {{"path", "a\\b"}, {"quote", "x\"y"}, {"nl", "p\nq"}});
  EXPECT_NE(json.find("a\\\\b"), std::string::npos);
  EXPECT_NE(json.find("x\\\"y"), std::string::npos);
  EXPECT_NE(json.find("p\\nq"), std::string::npos);
}

TEST_F(ObsTest, WriteReportRoundTrips) {
  Registry::global().counter("test.roundtrip").add(17);
  const std::string path = std::filesystem::path(::testing::TempDir()) /
                           ("gdp_obs_report_" + std::to_string(::getpid()) + ".json");
  ASSERT_TRUE(write_report(path, "roundtrip", {{"k", "v"}}));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), report_json(Registry::global().snapshot(), "roundtrip", {{"k", "v"}}));
  std::filesystem::remove(path);
}

TEST_F(ObsTest, WriteReportFailsCleanlyOnBadPath) {
  EXPECT_FALSE(write_report("/nonexistent_dir_gdp_obs/report.json", "nope"));
}

// --- Exact pins on hand-built work. ----------------------------------------

/// 3-state model, 3 philosophers: P0 drives s0 -> s1 -> s2 (eating); P1 and
/// P2 busy-wait everywhere. Small enough that every store counter is
/// computable by hand.
mdp::Model three_state_model() {
  std::vector<std::uint64_t> offsets{0};
  std::vector<mdp::Outcome> outcomes;
  auto row = [&](std::initializer_list<mdp::Outcome> os) {
    for (const mdp::Outcome& o : os) outcomes.push_back(o);
    offsets.push_back(outcomes.size());
  };
  for (mdp::StateId s = 0; s < 3; ++s) {
    row({{1.0f, std::min<mdp::StateId>(s + 1, 2)}});  // P0: advance (s2 absorbs)
    row({{1.0f, s}});                                 // P1: busy-wait
    row({{1.0f, s}});                                 // P2: busy-wait
  }
  return mdp::Model::build(3, std::move(offsets), std::move(outcomes), {0, 0, 0b001},
                           {false, false, false}, false);
}

TEST_F(ObsTest, StoreCountersPinnedOnThreeStateModel) {
  const mdp::Model model = three_state_model();
  // from_model needs a codec whose shape matches the model's philosopher
  // count; any real 3-phil codec will do — the keys only ride along.
  const auto key_algo = algos::make_algorithm("lr1");
  const auto key_topo = graph::classic_ring(3);
  const mdp::KeyCodec codec(*key_algo, key_topo);
  const std::vector<mdp::PackedKey> keys(3, codec.encode(key_algo->initial_state(key_topo)));
  mdp::store::StoreOptions options;
  options.chunk_states = 2;  // 3 states -> chunks of 2 + 1
  auto chunked = mdp::store::ChunkedModel::from_model(model, codec, keys, options);
  Snapshot snap = Registry::global().snapshot();
  EXPECT_EQ(metric(snap.counters, "store.chunks_written"), 2u);
  EXPECT_EQ(metric(snap.counters, "store.chunks_spilled"), 0u);
  EXPECT_EQ(metric(snap.counters, "store.materializations"), 0u);
  const std::uint64_t payload_bytes = metric(snap.counters, "store.chunk_bytes");
  EXPECT_GT(payload_bytes, 0u);

  // A full spill writes exactly the chunk payloads once; a second spill()
  // is a no-op (already spilled chunks are skipped, not re-counted).
  const std::string dir = std::filesystem::path(::testing::TempDir()) /
                          ("gdp_obs_spill_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  mdp::store::StoreOptions spill_options = options;
  spill_options.spill = true;
  spill_options.dir = dir;
  auto spilled = mdp::store::ChunkedModel::from_model(model, codec, keys, spill_options);
  snap = Registry::global().snapshot();
  EXPECT_EQ(metric(snap.counters, "store.chunks_written"), 4u);
  EXPECT_EQ(metric(snap.counters, "store.chunks_spilled"), 2u);
  EXPECT_EQ(metric(snap.counters, "store.spill_bytes"), payload_bytes);
  spilled.spill();  // idempotent
  snap = Registry::global().snapshot();
  EXPECT_EQ(metric(snap.counters, "store.chunks_spilled"), 2u);

  (void)spilled.materialize();
  snap = Registry::global().snapshot();
  EXPECT_EQ(metric(snap.counters, "store.materializations"), 1u);
  std::filesystem::remove_all(dir);
}

TEST_F(ObsTest, QuantCountersMatchAnalyzeStats) {
  const mdp::Model model = three_state_model();
  const mdp::quant::QuantResult r = mdp::quant::analyze(model);
  const auto& s = r.stats;
  EXPECT_EQ(s.p_max_sweeps + s.p_min_sweeps + s.e_min_sweeps + s.e_max_sweeps + s.p_trap_sweeps,
            r.sweeps);
  const Snapshot snap = Registry::global().snapshot();
  EXPECT_EQ(metric(snap.counters, "quant.analyses"), 1u);
  EXPECT_EQ(metric(snap.counters, "quant.sweeps"), r.sweeps);
  EXPECT_EQ(metric(snap.counters, "quant.stalled_phases"), s.stalled_phases);
}

TEST_F(ObsTest, ExploreCountersMatchTheModel) {
  const auto algo = algos::make_algorithm("lr2");
  const auto t = graph::classic_ring(3);
  const mdp::Model model = mdp::par::explore(*algo, t);
  std::size_t edges = 0;
  for (mdp::StateId s = 0; s < model.num_states(); ++s) {
    for (int p = 0; p < model.num_phils(); ++p) {
      const auto [b, e] = model.row(s, p);
      edges += static_cast<std::size_t>(e - b);
    }
  }
  const Snapshot snap = Registry::global().snapshot();
  EXPECT_EQ(metric(snap.counters, "explore.states"), model.num_states());
  EXPECT_EQ(metric(snap.counters, "explore.edges"), edges);
  EXPECT_EQ(metric(snap.counters, "explore.truncations"), 0u);
  bool found = false;
  for (const auto& h : snap.histograms) {
    if (h.name != "explore.level_states") continue;
    found = true;
    EXPECT_EQ(h.sum, model.num_states());
    EXPECT_EQ(h.count, metric(snap.counters, "explore.levels"));
  }
  EXPECT_TRUE(found);
}

// --- The load-bearing matrix: bit-identity at every thread count. -----------

struct MatrixCase {
  const char* algo;
  graph::Topology t;
};

std::vector<MatrixCase> matrix_cases() {
  std::vector<MatrixCase> cases;
  for (const char* algo : {"lr2", "gdp2"}) {
    cases.push_back({algo, graph::classic_ring(3)});
    cases.push_back({algo, graph::ring_with_chord(3)});
    cases.push_back({algo, graph::parallel_arcs(3)});
  }
  return cases;
}

TEST_F(ObsTest, DeterministicPlaneBitIdenticalAcrossThreadCounts) {
  for (const MatrixCase& c : matrix_cases()) {
    SCOPED_TRACE(std::string(c.algo) + "/" + c.t.name());
    const auto algo = algos::make_algorithm(c.algo);
    std::uint64_t reference = 0;
    bool have_reference = false;
    for (const int threads : thread_counts()) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      Registry::global().reset();
      mdp::par::CheckOptions opts;
      opts.threads = threads;
      const auto model = mdp::par::explore(*algo, c.t, opts);
      (void)mdp::par::check_fair_progress(model, ~std::uint64_t{0}, opts);
      mdp::quant::QuantOptions qopts;
      qopts.threads = threads;
      (void)mdp::quant::analyze(model, ~std::uint64_t{0}, qopts);
      const std::uint64_t fp = deterministic_fingerprint(Registry::global().snapshot());
      if (!have_reference) {
        reference = fp;
        have_reference = true;
      } else {
        EXPECT_EQ(fp, reference);
      }
    }
  }
}

TEST_F(ObsTest, ObsDoesNotPerturbModelsOrVerdicts) {
  const auto algo = algos::make_algorithm("gdp2");
  const auto t = graph::parallel_arcs(3);
  auto run = [&]() {
    const auto chunked = mdp::store::explore(*algo, t);
    const auto model = chunked.materialize();
    const auto verdict = mdp::par::check_fair_progress(model);
    const auto q = mdp::quant::analyze(model);
    return std::tuple(chunked.fingerprint(), verdict.verdict, q.sweeps, q.p_min.lower,
                      q.p_min.upper);
  };
  const auto with_obs = run();
  set_enabled(false);
  const auto without_obs = run();
  set_enabled(true);
  EXPECT_EQ(with_obs, without_obs);
}

// --- The timeline plane (gdp/obs/timeline.hpp). -----------------------------

/// Timeline tests run with BOTH planes on and zeroed rings; the rings are
/// process-global like the registry, so tests assert deltas from a reset,
/// never absolute track counts.
class TimelineTest : public ObsTest {
 protected:
  void SetUp() override {
    ObsTest::SetUp();
    timeline::reset();
    timeline::set_enabled(true);
  }
  void TearDown() override {
    timeline::set_enabled(false);
    timeline::reset();
    ObsTest::TearDown();
  }
};

TEST_F(TimelineTest, OffMeansZeroEvents) {
  timeline::set_enabled(false);
  timeline::begin_slice("test.off");
  timeline::end_slice("test.off");
  timeline::instant("test.off_instant");
  timeline::counter_sample("test.off_counter", 1.0);
  { timeline::ScopedSlice slice("test.off_scoped"); }
  const timeline::Stats stats = timeline::stats();
  EXPECT_EQ(stats.events, 0u);
  EXPECT_EQ(stats.dropped_events, 0u);
}

TEST_F(TimelineTest, TimedSpanFeedsBothPlanesIndependently) {
  // Timeline off, obs on: the aggregate span still records.
  timeline::set_enabled(false);
  { TimedSpan span("test.both_planes"); }
  EXPECT_EQ(timeline::stats().events, 0u);
  Snapshot snap = Registry::global().snapshot();
  bool found = false;
  for (const auto& s : snap.spans) {
    if (s.name == "test.both_planes") {
      found = true;
      EXPECT_EQ(s.count, 1u);
    }
  }
  EXPECT_TRUE(found);

  // Timeline on, obs off: the slice still records.
  timeline::set_enabled(true);
  set_enabled(false);
  { TimedSpan span("test.both_planes"); }
  set_enabled(true);
  const timeline::Stats stats = timeline::stats();
  EXPECT_EQ(stats.begins, 1u);
  EXPECT_EQ(stats.ends, 1u);
}

TEST_F(TimelineTest, BalancedBeginsEndsAndMonotoneTimestampsPerTrack) {
  common::parallel_for(64, /*threads=*/4, [&](std::uint32_t id) {
    timeline::ScopedSlice outer("test.outer");
    {
      timeline::ScopedSlice inner("test.inner");
      timeline::instant("test.tick");
    }
    timeline::counter_sample("test.progress", static_cast<double>(id));
  });
  // The pool's own instrumentation (pool.worker slices, pool.tasks_run
  // samples) shares the rings, so tally this test's events by name.
  std::uint64_t outer_begins = 0, outer_ends = 0, inner_begins = 0, inner_ends = 0;
  std::uint64_t ticks = 0, samples = 0;
  for (const timeline::TrackEvents& track : timeline::snapshot_tracks()) {
    EXPECT_EQ(track.dropped_events, 0u);
    for (const timeline::Event& e : track.events) {
      const std::string name = e.name;
      if (name == "test.outer") (e.kind == timeline::EventKind::kBegin ? outer_begins
                                                                       : outer_ends)++;
      if (name == "test.inner") (e.kind == timeline::EventKind::kBegin ? inner_begins
                                                                       : inner_ends)++;
      if (name == "test.tick") ++ticks;
      if (name == "test.progress") ++samples;
    }
  }
  EXPECT_EQ(outer_begins, 64u);
  EXPECT_EQ(outer_ends, 64u);
  EXPECT_EQ(inner_begins, 64u);
  EXPECT_EQ(inner_ends, 64u);
  EXPECT_EQ(ticks, 64u);
  EXPECT_EQ(samples, 64u);

  for (const timeline::TrackEvents& track : timeline::snapshot_tracks()) {
    std::uint64_t last_ts = 0;
    std::int64_t depth = 0;
    for (const timeline::Event& e : track.events) {
      EXPECT_GE(e.ts_ns, last_ts);  // one writer, one monotone clock
      last_ts = e.ts_ns;
      if (e.kind == timeline::EventKind::kBegin) ++depth;
      if (e.kind == timeline::EventKind::kEnd) --depth;
      EXPECT_GE(depth, 0);  // an end never precedes its begin
    }
    EXPECT_EQ(depth, 0);  // every slice closed on its own track
  }
}

TEST_F(TimelineTest, TraceJsonIsWellFormedAndRoundTripsThroughWriteTrace) {
  {
    timeline::ScopedSlice slice("test.trace_slice");
    timeline::instant("test.trace_instant");
    timeline::counter_sample("test.trace_counter", 3.5);
  }
  const std::string json = timeline::trace_json("unit \"quoted\"");
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\": \"0\""), std::string::npos);
  EXPECT_NE(json.find("\"unit \\\"quoted\\\"\""), std::string::npos);  // escaped meta
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
  EXPECT_NE(json.find("\"s\": \"t\""), std::string::npos);           // thread-scoped instant
  EXPECT_NE(json.find("\"args\": {\"value\": 3.5}"), std::string::npos);
  EXPECT_EQ(json.substr(json.size() - 4), "]\n}\n");

  const std::string path = std::filesystem::path(::testing::TempDir()) /
                           ("gdp_obs_trace_" + std::to_string(::getpid()) + ".json");
  ASSERT_TRUE(timeline::write_trace(path, "unit \"quoted\""));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), json);  // no events in between — identical drain
  std::filesystem::remove(path);
}

TEST_F(TimelineTest, OverflowDropsNewEventsAndKeepsOldOnesIntact) {
  // One thread past capacity: the ring must keep its first kRingCapacity
  // events untouched and count the overflow — never overwrite, never grow.
  constexpr std::uint64_t kOverflow = 500;
  for (std::uint64_t i = 0; i < timeline::kRingCapacity + kOverflow; ++i) {
    timeline::instant("test.flood");
  }
  const timeline::Stats stats = timeline::stats();
  EXPECT_EQ(stats.events, timeline::kRingCapacity);
  EXPECT_EQ(stats.dropped_events, kOverflow);

  bool found = false;
  for (const timeline::TrackEvents& track : timeline::snapshot_tracks()) {
    if (track.events.empty()) continue;
    found = true;
    EXPECT_EQ(track.events.size(), std::size_t{timeline::kRingCapacity});
    EXPECT_EQ(track.dropped_events, kOverflow);
    EXPECT_STREQ(track.events.front().name, "test.flood");
    EXPECT_STREQ(track.events.back().name, "test.flood");
    EXPECT_EQ(track.events.front().kind, timeline::EventKind::kInstant);
  }
  EXPECT_TRUE(found);
}

TEST_F(TimelineTest, TimelineDoesNotPerturbResultsAtAnyThreadCount) {
  const auto algo = algos::make_algorithm("gdp2");
  const auto t = graph::parallel_arcs(3);
  for (const int threads : thread_counts()) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    auto run = [&]() {
      Registry::global().reset();
      mdp::par::CheckOptions opts;
      opts.threads = threads;
      const auto chunked = mdp::store::explore(*algo, t, {}, opts);
      const auto model = chunked.materialize();
      const auto verdict = mdp::par::check_fair_progress(model, ~std::uint64_t{0}, opts);
      mdp::quant::QuantOptions qopts;
      qopts.threads = threads;
      const auto q = mdp::quant::analyze(model, ~std::uint64_t{0}, qopts);
      return std::tuple(chunked.fingerprint(), model.num_states(), model.num_rows(),
                        verdict.verdict, q.sweeps, q.p_min.lower, q.p_min.upper,
                        deterministic_fingerprint(Registry::global().snapshot()));
    };
    timeline::set_enabled(true);
    const auto with_timeline = run();
    timeline::set_enabled(false);
    const auto without_timeline = run();
    timeline::set_enabled(true);
    EXPECT_EQ(with_timeline, without_timeline);
  }
}

// --- Concurrency hammer (the TSan target). ----------------------------------

TEST_F(ObsTest, RegistryHammeredFromManyThreads) {
  constexpr std::size_t kTasks = 2'000;
  common::parallel_for(kTasks, /*threads=*/8, [&](std::uint32_t id) {
    // Lookups race with lookups of the same and other names, increments
    // race with snapshots — every surface the engine touches concurrently.
    Registry::global().counter("hammer.counter").increment();
    Registry::global().counter("hammer.counter_" + std::to_string(id % 7)).add(id);
    Registry::global().counter("hammer.timing", Plane::kTiming).increment();
    Registry::global().gauge("hammer.gauge").set_max(id);
    Registry::global().histogram("hammer.hist").record(id);
    Registry::global().record_span("hammer.span", id);
    if (id % 64 == 0) (void)Registry::global().snapshot();
  });
  const Snapshot snap = Registry::global().snapshot();
  EXPECT_EQ(metric(snap.counters, "hammer.counter"), kTasks);
  EXPECT_EQ(metric(snap.timing_counters, "hammer.timing"), kTasks);
  std::uint64_t striped = 0;
  for (int k = 0; k < 7; ++k) {
    striped += metric(snap.counters, "hammer.counter_" + std::to_string(k));
  }
  EXPECT_EQ(striped, kTasks * (kTasks - 1) / 2);
  bool found = false;
  for (const auto& s : snap.spans) {
    if (s.name != "hammer.span") continue;
    found = true;
    EXPECT_EQ(s.count, kTasks);
  }
  EXPECT_TRUE(found);
}

TEST_F(TimelineTest, TimelineHammeredByWritersUnderALiveReader) {
  // Seven writers flood their rings while worker 0 concurrently drains
  // them the way the heartbeat sampler and write_trace do — the rings'
  // release/acquire publication is the surface TSan checks here.
  constexpr unsigned kWriters = 7;
  constexpr int kRounds = 500;
  std::atomic<unsigned> writers_done{0};
  common::run_workers(kWriters + 1, [&](unsigned worker) {
    if (worker == 0) {
      while (writers_done.load(std::memory_order_acquire) < kWriters) {
        (void)timeline::trace_json("hammer");
        (void)timeline::stats();
        (void)timeline::snapshot_tracks();
      }
      return;
    }
    for (int i = 0; i < kRounds; ++i) {
      timeline::ScopedSlice slice("hammer.slice");
      timeline::instant("hammer.instant");
      timeline::counter_sample("hammer.progress", static_cast<double>(i));
    }
    writers_done.fetch_add(1, std::memory_order_release);
  });
  const timeline::Stats stats = timeline::stats();
  const std::uint64_t expected = static_cast<std::uint64_t>(kWriters) * kRounds;
  EXPECT_GE(stats.begins + stats.dropped_events, expected);
  EXPECT_EQ(stats.begins, stats.ends);  // 2k events/writer fit a 32k ring — no drops

  EXPECT_EQ(stats.instants + stats.counters + stats.begins + stats.ends, stats.events);
}

}  // namespace
}  // namespace gdp::obs
