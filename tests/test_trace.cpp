// Trace rendering and the exact replay of the paper's §3 example
// (States 1 -> 6 on the 6-philosopher / 3-fork system).
#include <gtest/gtest.h>

#include "gdp/algos/algorithm.hpp"
#include "gdp/common/check.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/rng/scripted.hpp"
#include "gdp/sim/engine.hpp"
#include "gdp/trace/ascii.hpp"
#include "gdp/trace/replay.hpp"

namespace gdp::trace {
namespace {

using sim::EngineConfig;
using sim::Phase;

TEST(ScriptScheduler, PlaysBackThenRoundRobins) {
  ScriptScheduler sched({3, 1, 4});
  const auto t = graph::classic_ring(5);
  sched.reset(t);
  sim::RunView view;
  std::vector<std::uint64_t> zeros(5, 0);
  view.steps_of = &zeros;
  view.last_scheduled = &zeros;
  rng::Rng rng(1);
  sim::SimState dummy;
  EXPECT_EQ(sched.pick(t, dummy, view, rng), 3);
  EXPECT_EQ(sched.pick(t, dummy, view, rng), 1);
  EXPECT_EQ(sched.pick(t, dummy, view, rng), 4);
  EXPECT_TRUE(sched.exhausted());
  EXPECT_EQ(sched.pick(t, dummy, view, rng), 0);  // round-robin from here
  EXPECT_EQ(sched.pick(t, dummy, view, rng), 1);
}

TEST(ScriptScheduler, RejectsForeignIds) {
  ScriptScheduler sched({9});
  const auto t = graph::classic_ring(3);
  sched.reset(t);
  sim::RunView view;
  std::vector<std::uint64_t> zeros(3, 0);
  view.steps_of = &zeros;
  view.last_scheduled = &zeros;
  rng::Rng rng(1);
  sim::SimState dummy;
  EXPECT_THROW(sched.pick(t, dummy, view, rng), PreconditionError);
}

TEST(RenderState, ShowsArrowsAndPhases) {
  const auto algo = algos::make_algorithm("lr1");
  const auto t = graph::fig1a();
  auto s = algo->initial_state(t);
  s.fork(0).holder = 2;
  s.phil(2).phase = Phase::kTrySecond;
  s.phil(2).committed = t.side_of(2, 0);
  s.phil(3).phase = Phase::kCommit;
  s.phil(3).committed = t.side_of(3, 0);
  const std::string out = render_state(t, s);
  EXPECT_NE(out.find("<==P2"), std::string::npos);          // filled arrow
  EXPECT_NE(out.find("P3 (committed)"), std::string::npos); // empty arrow
  EXPECT_NE(out.find("TrySecond"), std::string::npos);
}

TEST(RenderTrace, TruncatesLongTraces) {
  std::vector<sim::TraceEntry> trace(500);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    trace[i].step = i;
    trace[i].phil = 0;
  }
  const std::string out = render_trace(graph::fig1a(), trace, 10);
  EXPECT_NE(out.find("490 more"), std::string::npos);
}

// The paper's §3 example, step for step. Roles in our ids (see
// trap_fig1a.hpp): A=P2 holds a=f0, B=P0 committed to b=f1, C=P1 committed
// to c=f2; partners P3/P4/P5 take over after one rotation.
TEST(PaperReplay, StatesOneThroughSix) {
  const auto t = graph::fig1a();
  const auto lr1 = algos::make_algorithm("lr1");

  ScriptScheduler sched({
      0, 1, 2, 3, 4, 5,  // wake everyone
      2, 2,              // P2 draws f0 (right) and takes it     -> State 1
      0, 1,              // P0 commits f1, P1 commits f2         (State 1 cont.)
      3,                 // P3 stubbornly commits to held f0     -> State 2
      0,                 // P0 takes f1
      4,                 // P4 commits to held f1                -> State 3
      1,                 // P1 takes f2                          -> State 4
      2,                 // P2 fails on f2, releases f0
      5,                 // P5 commits to held f2                -> State 5
      1,                 // P1 fails on f1, releases f2
      3,                 // P3 takes f0
      0,                 // P0 fails on f0, releases f1          -> State 6
  });

  rng::ScriptedRng rng(1);
  // Draw order: P2, P0, P1, P3, P4, P5.
  rng.force_side(Side::kRight);  // P2 -> f0
  rng.force_side(Side::kRight);  // P0 -> f1
  rng.force_side(Side::kRight);  // P1 -> f2
  rng.force_side(Side::kLeft);   // P3 -> f0
  rng.force_side(Side::kLeft);   // P4 -> f1
  rng.force_side(Side::kLeft);   // P5 -> f2

  EngineConfig cfg;
  cfg.max_steps = 19;  // exactly the scripted schedule
  cfg.record_trace = true;
  cfg.check_invariants = true;
  const auto result = run(*lr1, t, sched, rng, cfg);

  EXPECT_TRUE(result.invariant_violation.empty()) << result.invariant_violation;
  EXPECT_EQ(result.total_meals, 0u);  // nobody ate across the whole round
  EXPECT_FALSE(rng.fell_through());   // every draw was the scripted one

  // State 6 is State 1 with the partner philosophers in the roles:
  // P3 holds f0, P4 committed to f1, P5 committed to f2, P0-P2 re-choosing.
  const auto& s = result.final_state;
  EXPECT_EQ(s.fork(0).holder, 3);
  EXPECT_TRUE(s.fork(1).free());
  EXPECT_TRUE(s.fork(2).free());
  EXPECT_EQ(s.phil(3).phase, Phase::kTrySecond);
  EXPECT_EQ(s.phil(4).phase, Phase::kCommit);
  EXPECT_EQ(t.fork_of(4, s.phil(4).committed), 1);
  EXPECT_EQ(s.phil(5).phase, Phase::kCommit);
  EXPECT_EQ(t.fork_of(5, s.phil(5).committed), 2);
  for (PhilId p : {0, 1, 2}) EXPECT_EQ(s.phil(p).phase, Phase::kChoose) << p;
}

TEST(PaperReplay, IntermediateStatesMatchTheNarrative) {
  // Re-run the script, checking the checkpoints the paper draws.
  const auto t = graph::fig1a();
  const auto lr1 = algos::make_algorithm("lr1");
  std::vector<PhilId> order{0, 1, 2, 3, 4, 5, 2, 2, 0, 1, 3, 0, 4, 1, 2, 5, 1, 3, 0};
  rng::ScriptedRng rng(1);
  for (Side side : {Side::kRight, Side::kRight, Side::kRight, Side::kLeft, Side::kLeft,
                    Side::kLeft}) {
    rng.force_side(side);
  }

  auto s = lr1->initial_state(t);
  std::size_t at = 0;
  auto step_through = [&](std::size_t count, auto&& check) {
    for (; at < count; ++at) {
      const auto branches = lr1->step(t, s, order[at]);
      s = sim::sample_branch(branches, rng).next;
    }
    check();
  };

  // After wake + P2's draw/take + P0/P1 commits: the paper's State 1.
  step_through(10, [&] {
    EXPECT_EQ(s.fork(0).holder, 2);
    EXPECT_EQ(s.phil(0).phase, Phase::kCommit);
    EXPECT_EQ(s.phil(1).phase, Phase::kCommit);
  });
  // State 2: P3 committed to the fork taken by P2.
  step_through(11, [&] {
    EXPECT_EQ(s.phil(3).phase, Phase::kCommit);
    EXPECT_EQ(t.fork_of(3, s.phil(3).committed), 0);
  });
  // State 4: P0 holds f1, P1 holds f2 (both as first forks).
  step_through(14, [&] {
    EXPECT_EQ(s.fork(1).holder, 0);
    EXPECT_EQ(s.fork(2).holder, 1);
  });
}

}  // namespace
}  // namespace gdp::trace
