// The parallel model-checking engine's core contract: gdp::mdp::par
// produces BIT-IDENTICAL results to the sequential engine — same Model
// (state numbering, CSR offsets, outcome bytes, eater masks, frontier
// flags), same StateIndex, same end components, same verdicts — for every
// thread count, including oversubscribed pools with stealing in play.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "gdp/algos/algorithm.hpp"
#include "gdp/common/check.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/mdp/par/par.hpp"

namespace gdp::mdp {
namespace {

std::vector<int> thread_counts() {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::vector<int> counts{1, 2, 4};
  if (hw > 4) counts.push_back(hw);
  return counts;
}

/// Field-by-field model equality through the public API; float payloads
/// compared via memcmp so NaN or signed-zero drift would also be caught.
void expect_models_bit_identical(const Model& seq, const Model& par_model, int threads) {
  SCOPED_TRACE("threads=" + std::to_string(threads));
  ASSERT_EQ(seq.num_states(), par_model.num_states());
  ASSERT_EQ(seq.num_phils(), par_model.num_phils());
  EXPECT_EQ(seq.truncated(), par_model.truncated());
  for (StateId s = 0; s < seq.num_states(); ++s) {
    ASSERT_EQ(seq.eaters(s), par_model.eaters(s)) << "state " << s;
    ASSERT_EQ(seq.frontier(s), par_model.frontier(s)) << "state " << s;
    for (int p = 0; p < seq.num_phils(); ++p) {
      const auto [sb, se] = seq.row(s, p);
      const auto [pb, pe] = par_model.row(s, p);
      ASSERT_EQ(se - sb, pe - pb) << "row (" << s << ", " << p << ")";
      for (const Outcome *so = sb, *po = pb; so != se; ++so, ++po) {
        ASSERT_EQ(so->next, po->next) << "row (" << s << ", " << p << ")";
        ASSERT_EQ(std::memcmp(&so->prob, &po->prob, sizeof(float)), 0)
            << "row (" << s << ", " << p << ") prob " << so->prob << " vs " << po->prob;
      }
    }
  }
}

void expect_mecs_identical(const std::vector<EndComponent>& seq,
                           const std::vector<EndComponent>& par_mecs) {
  ASSERT_EQ(seq.size(), par_mecs.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].states, par_mecs[i].states) << "component " << i;
    EXPECT_EQ(seq[i].phil_mask, par_mecs[i].phil_mask) << "component " << i;
  }
}

void expect_results_identical(const FairProgressResult& seq, const FairProgressResult& par_r) {
  EXPECT_EQ(seq.verdict, par_r.verdict);
  EXPECT_EQ(seq.avoid_set, par_r.avoid_set);
  EXPECT_EQ(seq.num_states, par_r.num_states);
  EXPECT_EQ(seq.num_mecs, par_r.num_mecs);
  EXPECT_EQ(seq.num_fair_mecs, par_r.num_fair_mecs);
  EXPECT_EQ(seq.witness_size, par_r.witness_size);
  EXPECT_EQ(seq.witness_state.has_value(), par_r.witness_state.has_value());
  if (seq.witness_state) EXPECT_EQ(*seq.witness_state, *par_r.witness_state);
}

/// The full-pipeline equivalence check for one (algorithm, topology, cap).
void expect_par_equals_seq(const std::string& algo_name, const graph::Topology& t,
                           std::size_t max_states = 2'000'000) {
  SCOPED_TRACE(algo_name + " on " + t.name());
  const auto algo = algos::make_algorithm(algo_name);

  StateIndex seq_index;
  const Model seq = explore_indexed(*algo, t, max_states, seq_index);
  const auto seq_mecs = maximal_end_components(seq);
  const auto seq_progress = check_fair_progress(seq);

  for (const int threads : thread_counts()) {
    par::CheckOptions opts;
    opts.threads = threads;
    opts.max_states = max_states;
    // Force the parallel MEC machinery on even for the small test models
    // (the production default hands tiny fragments to the sequential path).
    opts.seq_mec_threshold = 1;
    opts.seq_scc_region = 32;

    StateIndex par_index;
    const Model par_model = par::explore_indexed(*algo, t, par_index, opts);
    expect_models_bit_identical(seq, par_model, threads);

    ASSERT_EQ(seq_index.size(), par_index.size());
    // gdp-lint: allow(unordered-iteration) — pure membership check; every key is
    // looked up independently, no result bit depends on hash order
    for (const auto& [key, id] : seq_index) {
      const auto it = par_index.find(key);
      ASSERT_NE(it, par_index.end());
      EXPECT_EQ(it->second, id);
    }

    expect_mecs_identical(seq_mecs, par::maximal_end_components(par_model, ~std::uint64_t{0}, opts));
    expect_results_identical(seq_progress, par::check_fair_progress(par_model, ~std::uint64_t{0}, opts));
    for (PhilId v = 0; v < t.num_phils(); ++v) {
      expect_results_identical(check_lockout_freedom(seq, v),
                               par::check_lockout_freedom(par_model, v, opts));
    }
  }
}

/// Lighter variant for six-figure-state models (the full sweep would take
/// minutes on small CI machines): one parallel run against one sequential
/// run, model compared bit for bit, one MEC + verdict comparison.
void expect_par_equals_seq_light(const std::string& algo_name, const graph::Topology& t,
                                 bool compare_mecs = true) {
  SCOPED_TRACE(algo_name + " on " + t.name());
  const auto algo = algos::make_algorithm(algo_name);
  const Model seq = explore(*algo, t);

  par::CheckOptions opts;
  opts.threads = 4;
  opts.seq_mec_threshold = 1;
  opts.seq_scc_region = 4'096;
  const Model par_model = par::explore(*algo, t, opts);
  expect_models_bit_identical(seq, par_model, opts.threads);
  if (compare_mecs) {
    expect_mecs_identical(maximal_end_components(seq),
                          par::maximal_end_components(par_model, ~std::uint64_t{0}, opts));
    expect_results_identical(check_fair_progress(seq),
                             par::check_fair_progress(par_model, ~std::uint64_t{0}, opts));
  }
}

// --- Topologies x algorithms x thread counts. ---

TEST(ParExplore, Lr1Ring3) { expect_par_equals_seq("lr1", graph::classic_ring(3)); }
TEST(ParExplore, Lr1Ring4) { expect_par_equals_seq("lr1", graph::classic_ring(4)); }
TEST(ParExplore, Lr1RingWithPendant) {
  expect_par_equals_seq("lr1", graph::ring_with_pendant(3));
}
TEST(ParExplore, Lr2ParallelArcs3) { expect_par_equals_seq("lr2", graph::parallel_arcs(3)); }
TEST(ParExplore, Gdp1Ring3) { expect_par_equals_seq("gdp1", graph::classic_ring(3)); }
TEST(ParExplore, Gdp1ParallelArcs3) {
  expect_par_equals_seq("gdp1", graph::parallel_arcs(3), 3'000'000);
}
TEST(ParExplore, TicketBaselineFig1a) { expect_par_equals_seq("ticket", graph::fig1a()); }

// Six-figure state spaces: the renumbering must stay canonical even when
// the frontier is stolen back and forth for hundreds of thousands of
// expansions (gdp2's guest books, lr2 on a 4-ring).
TEST(ParExplore, Gdp2Ring3Large) { expect_par_equals_seq_light("gdp2", graph::classic_ring(3)); }
TEST(ParExplore, Lr2Ring4Large) {
  expect_par_equals_seq_light("lr2", graph::classic_ring(4), /*compare_mecs=*/false);
}

// The trap graph: LR1's model has a reachable fair EC (Theorem 1 premise),
// so the equivalence must also hold through a kProgressFails verdict.
TEST(ParExplore, Lr1Fig1aVerdictFails) {
  const auto algo = algos::make_algorithm("lr1");
  const auto seq = check_fair_progress(*algo, graph::fig1a());
  par::CheckOptions opts;
  opts.threads = 4;
  opts.seq_mec_threshold = 1;
  opts.seq_scc_region = 4'096;
  const auto par_r = par::check_fair_progress(*algo, graph::fig1a(), opts);
  EXPECT_EQ(par_r.verdict, Verdict::kProgressFails);
  expect_results_identical(seq, par_r);
}

// Truncated exploration: the cap applies at BFS level boundaries, so a
// capped model is a pure function of (algorithm, topology, cap) — both
// explorers run the same level-synchronous engine and stay bit-identical,
// including the frontier flags and the truncated() bit, with no sequential
// fallback anywhere.
TEST(ParExplore, CappedLevelSyncBitIdentical) {
  expect_par_equals_seq("lr1", graph::fig1a(), 500);
}
TEST(ParExplore, CappedLevelSyncMidBfs) {
  expect_par_equals_seq("gdp1", graph::classic_ring(3), 5'000);
  expect_par_equals_seq("ticket", graph::fig1a(), 2'000);
  expect_par_equals_seq("lr2", graph::parallel_arcs(3), 9'999);
}

// The exact capped state counts, pinned as literals: the historical
// explorer checked the cap only at its loop top, so a single expansion
// could overshoot max_states by up to n * branches states and the capped
// count depended on traversal order. Level-synchronous truncation stops at
// a level boundary instead — the count may exceed the cap by at most one
// level's discoveries, every state below num_expanded is fully expanded,
// the frontier is exactly the id tail, and mdp::explore and par::explore
// agree on the number at every thread count.
TEST(ParExplore, CappedStateCountsPinnedAcrossPaths) {
  struct Case {
    const char* algo;
    graph::Topology t;
    std::size_t cap;
    std::size_t states;    // total states in the capped model
    std::size_t expanded;  // states with materialized rows (the id prefix)
  };
  const Case cases[] = {{"lr1", graph::fig1a(), 500, 1'065, 393},
                        {"gdp1", graph::classic_ring(3), 5'000, 5'815, 4'249},
                        {"lr2", graph::parallel_arcs(3), 9'999, 10'520, 9'242}};
  const int hw = std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  for (const Case& c : cases) {
    SCOPED_TRACE(std::string(c.algo) + " on " + c.t.name() + " cap " + std::to_string(c.cap));
    const auto algo = algos::make_algorithm(c.algo);
    const Model seq = explore(*algo, c.t, c.cap);
    ASSERT_TRUE(seq.truncated());
    EXPECT_GE(seq.num_states(), c.cap);  // the cap is a floor for truncation, never mid-level
    EXPECT_EQ(seq.num_states(), c.states);
    // The unexpanded frontier is the contiguous id tail.
    for (StateId s = 0; s < seq.num_states(); ++s) {
      ASSERT_EQ(seq.frontier(s), s >= c.expanded) << "state " << s;
    }
    for (const int threads : {1, 2, hw}) {
      par::CheckOptions opts;
      opts.threads = threads;
      opts.max_states = c.cap;
      const Model par_model = par::explore(*algo, c.t, opts);
      EXPECT_EQ(par_model.num_states(), c.states) << "threads=" << threads;
      expect_models_bit_identical(seq, par_model, threads);
    }
  }
}

// --- Epilogue pins: the renumbering/assembly and reachable-state sweeps
// run on the pool, so cap-truncated and subset-mask results are re-checked
// byte-for-byte against the sequential engine at every thread count. ---

TEST(ParExplore, EpilogueTruncationPinsAcrossThreadCounts) {
  struct Case {
    const char* algo;
    graph::Topology t;
    std::size_t cap;
  };
  const Case cases[] = {{"gdp2", graph::classic_ring(3), 20'000},
                        {"lr2", graph::parallel_arcs(4), 12'000},
                        {"gdp1", graph::ring_with_pendant(3), 8'000}};
  const int hw = std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  for (const Case& c : cases) {
    SCOPED_TRACE(std::string(c.algo) + " on " + c.t.name() + " cap " + std::to_string(c.cap));
    const auto algo = algos::make_algorithm(c.algo);
    StateIndex seq_index;
    const Model seq = explore_indexed(*algo, c.t, c.cap, seq_index);
    ASSERT_TRUE(seq.truncated());
    for (const int threads : {1, 2, hw}) {
      par::CheckOptions opts;
      opts.threads = threads;
      opts.max_states = c.cap;
      StateIndex par_index;
      const Model par_model = par::explore_indexed(*algo, c.t, par_index, opts);
      expect_models_bit_identical(seq, par_model, threads);
      ASSERT_EQ(seq_index.size(), par_index.size());
      // gdp-lint: allow(unordered-iteration) — membership check only; order-free
      for (const auto& [key, id] : seq_index) {
        const auto it = par_index.find(key);
        ASSERT_NE(it, par_index.end());
        EXPECT_EQ(it->second, id);
      }
    }
  }
}

TEST(ParExplore, EpilogueSubsetMaskPinsAcrossThreadCounts) {
  const auto t = graph::ring_with_pendant(3);
  const auto algo = algos::make_algorithm("lr1");
  const Model seq = explore(*algo, t);
  const int hw = std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  for (const int threads : {1, 2, hw}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    par::CheckOptions opts;
    opts.threads = threads;
    opts.seq_mec_threshold = 1;  // force the parallel MEC + reachable sweep
    opts.seq_scc_region = 64;
    const Model par_model = par::explore(*algo, t, opts);
    expect_models_bit_identical(seq, par_model, threads);
    for (const std::uint64_t mask : {std::uint64_t{0b0111}, std::uint64_t{0b1000},
                                     ~std::uint64_t{0}}) {
      expect_results_identical(check_fair_progress(seq, mask),
                               par::check_fair_progress(par_model, mask, opts));
    }
  }
}

TEST(ParExplore, ParallelReachableSweepMatchesSequential) {
  // Directly pin par::reachable_states (used by every parallel verdict)
  // against the sequential sweep, with the thresholds forced low enough
  // that the level-synchronous BFS actually fans out.
  const auto algo = algos::make_algorithm("gdp2");
  const Model model = explore(*algo, graph::classic_ring(3));
  const auto seq = reachable_states(model);
  for (const int threads : {2, 4}) {
    par::CheckOptions opts;
    opts.threads = threads;
    opts.seq_mec_threshold = 1;
    EXPECT_EQ(par::reachable_states(model, opts), seq) << "threads=" << threads;
  }
}

TEST(ParExplore, SubsetMasksAgree) {
  const auto algo = algos::make_algorithm("lr1");
  const Model seq = explore(*algo, graph::ring_with_pendant(3));
  par::CheckOptions opts;
  opts.threads = 4;
  opts.seq_mec_threshold = 1;
  opts.seq_scc_region = 256;
  const Model par_model = par::explore(*algo, graph::ring_with_pendant(3), opts);
  // Progress wrt the ring philosophers H = {P0..P2} fails (Theorem 1);
  // global progress is certified — both through the parallel pipeline.
  expect_results_identical(check_fair_progress(seq, 0b0111),
                           par::check_fair_progress(par_model, 0b0111, opts));
  expect_results_identical(check_fair_progress(seq),
                           par::check_fair_progress(par_model, ~std::uint64_t{0}, opts));
  EXPECT_EQ(par::check_fair_progress(par_model, 0b0111, opts).verdict, Verdict::kProgressFails);
  EXPECT_EQ(par::check_fair_progress(par_model, ~std::uint64_t{0}, opts).verdict,
            Verdict::kProgressCertain);
}

TEST(ParExplore, RequiresHungryMode) {
  const auto algo = algos::make_algorithm(
      "lr1", algos::AlgoConfig{.think = algos::ThinkMode::kCoin, .think_coin = 0.5});
  par::CheckOptions opts;
  opts.threads = 2;
  EXPECT_THROW(par::explore(*algo, graph::classic_ring(3), opts), PreconditionError);
}

TEST(ParExplore, DefaultOptionsUseSequentialFallbacksOnTinyModels) {
  // Default thresholds: a few-hundred-state model routes through the
  // sequential MEC path; the result must of course still be identical.
  const auto algo = algos::make_algorithm("lr1");
  const Model seq = explore(*algo, graph::classic_ring(3));
  par::CheckOptions opts;
  opts.threads = 4;
  const Model par_model = par::explore(*algo, graph::classic_ring(3), opts);
  expect_models_bit_identical(seq, par_model, 4);
  expect_mecs_identical(maximal_end_components(seq),
                        par::maximal_end_components(par_model, ~std::uint64_t{0}, opts));
}

}  // namespace
}  // namespace gdp::mdp
