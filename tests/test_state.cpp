// SimState semantics: test-and-set, guest-book ranks, Cond, encoding,
// invariants.
#include <gtest/gtest.h>

#include "gdp/common/check.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/sim/state.hpp"

namespace gdp::sim {
namespace {

SimState blank(const graph::Topology& t, bool books = false) {
  SimState s;
  s.forks.assign(static_cast<std::size_t>(t.num_forks()), ForkState{});
  s.phils.assign(static_cast<std::size_t>(t.num_phils()), PhilState{});
  if (books) {
    for (ForkId f = 0; f < t.num_forks(); ++f) {
      s.fork(f).use_rank.assign(static_cast<std::size_t>(t.degree(f)), 0);
    }
  }
  return s;
}

TEST(TryTake, AtomicSemantics) {
  const auto t = graph::classic_ring(3);
  SimState s = blank(t);
  EXPECT_TRUE(try_take(s, 0, 1));
  EXPECT_EQ(s.fork(0).holder, 1);
  EXPECT_FALSE(try_take(s, 0, 2));  // taken: test-and-set fails
  EXPECT_EQ(s.fork(0).holder, 1);
  release(s, 0, 1);
  EXPECT_TRUE(s.fork(0).free());
  EXPECT_TRUE(try_take(s, 0, 2));
}

TEST(MarkUsed, RanksStayDenseAndOrdered) {
  const auto t = graph::parallel_arcs(3);  // fork 0 shared by P0,P1,P2
  SimState s = blank(t, /*books=*/true);

  mark_used(s, t, 0, 0);  // P0 uses first
  mark_used(s, t, 0, 2);  // then P2
  const auto& rank = s.fork(0).use_rank;
  EXPECT_EQ(rank[0], 1);  // P0 oldest user
  EXPECT_EQ(rank[1], 0);  // P1 never used
  EXPECT_EQ(rank[2], 2);  // P2 most recent

  mark_used(s, t, 0, 0);  // P0 again: now most recent
  EXPECT_EQ(s.fork(0).use_rank[0], 2);
  EXPECT_EQ(s.fork(0).use_rank[2], 1);

  mark_used(s, t, 0, 1);
  EXPECT_EQ(s.fork(0).use_rank[1], 3);
  EXPECT_TRUE(check_invariants(s, t).empty());
}

TEST(Cond, VacuousWithoutOtherRequests) {
  const auto t = graph::parallel_arcs(2);
  SimState s = blank(t, true);
  EXPECT_TRUE(cond_holds(s, t, 0, 0));
  // Own request doesn't block.
  s.fork(0).requests = 0b01;  // slot 0 = P0
  EXPECT_TRUE(cond_holds(s, t, 0, 0));
}

TEST(Cond, YieldsToHungrierRequester) {
  const auto t = graph::parallel_arcs(2);
  SimState s = blank(t, true);
  s.fork(0).requests = 0b11;  // both request

  // Nobody has eaten: ties allowed, both may proceed (TAS breaks the tie).
  EXPECT_TRUE(cond_holds(s, t, 0, 0));
  EXPECT_TRUE(cond_holds(s, t, 0, 1));

  // P0 eats: now P0 must yield to P1, but not vice versa.
  mark_used(s, t, 0, 0);
  EXPECT_FALSE(cond_holds(s, t, 0, 0));
  EXPECT_TRUE(cond_holds(s, t, 0, 1));

  // P1 eats after: P0 allowed again, P1 must yield.
  mark_used(s, t, 0, 1);
  EXPECT_TRUE(cond_holds(s, t, 0, 0));
  EXPECT_FALSE(cond_holds(s, t, 0, 1));
}

TEST(Cond, NonRequestersDoNotBlock) {
  const auto t = graph::parallel_arcs(3);
  SimState s = blank(t, true);
  mark_used(s, t, 0, 0);  // P0 ate; P1, P2 never
  s.fork(0).requests = 0b001;  // only P0 requests
  EXPECT_TRUE(cond_holds(s, t, 0, 0));  // others not requesting
  s.fork(0).requests = 0b011;  // P1 requests too
  EXPECT_FALSE(cond_holds(s, t, 0, 0));
  EXPECT_TRUE(cond_holds(s, t, 0, 1));
}

TEST(Encode, DistinctStatesDistinctBytes) {
  const auto t = graph::classic_ring(3);
  SimState a = blank(t);
  SimState b = blank(t);
  std::vector<std::uint8_t> ea, eb;
  a.encode(ea);
  b.encode(eb);
  EXPECT_EQ(ea, eb);

  b.phil(1).phase = Phase::kChoose;
  b.encode(eb);
  EXPECT_NE(ea, eb);

  b = a;
  b.fork(2).nr = 7;
  b.encode(eb);
  EXPECT_NE(ea, eb);

  b = a;
  b.fork(0).holder = 0;
  b.encode(eb);
  EXPECT_NE(ea, eb);

  b = a;
  b.aux.push_back(5);
  b.encode(eb);
  EXPECT_NE(ea, eb);
}

TEST(Encode, GuestBookAtDegreeCap64RoundTripsTheSizeByte) {
  // star(64): the center fork carries a 64-slot guest book — the
  // books-enabled degree cap. The single size byte must hold it exactly.
  const auto t = graph::star(64);
  SimState s = blank(t, /*books=*/true);
  for (PhilId p = 0; p < t.num_phils(); ++p) mark_used(s, t, 0, p);
  std::vector<std::uint8_t> bytes;
  s.encode(bytes);
  // ... size byte (64) followed by 64 dense ranks, inside the fork-0 block.
  EXPECT_EQ(bytes[11], 64u);
  EXPECT_TRUE(check_invariants(s, t).empty());
}

TEST(Encode, RefusesRankVectorsBeyondTheSizeByte) {
  // Regression: >255 rank slots used to truncate the size byte and alias
  // distinct states; encode must refuse instead. Unreachable through the
  // algorithms (books cap degree at 64) — build the state by hand.
  const auto t = graph::classic_ring(3);
  SimState s = blank(t);
  s.fork(0).use_rank.assign(300, 0);
  std::vector<std::uint8_t> bytes;
  EXPECT_THROW(s.encode(bytes), PreconditionError);
}

TEST(Queries, EatingAndTrying) {
  const auto t = graph::classic_ring(3);
  SimState s = blank(t);
  EXPECT_FALSE(someone_eating(s));
  EXPECT_FALSE(someone_trying(s));
  EXPECT_EQ(eater_mask(s), 0u);

  s.phil(1).phase = Phase::kCommit;
  EXPECT_TRUE(someone_trying(s));
  EXPECT_TRUE(is_trying(s, 1));
  EXPECT_FALSE(is_trying(s, 0));

  s.phil(2).phase = Phase::kEating;
  EXPECT_TRUE(someone_eating(s));
  EXPECT_EQ(eater_mask(s), 0b100u);
  EXPECT_FALSE(is_trying(s, 2));
}

TEST(Invariants, CatchCorruptStates) {
  const auto t = graph::classic_ring(3);
  SimState s = blank(t);
  EXPECT_TRUE(check_invariants(s, t).empty());

  // Eating without forks.
  SimState bad = s;
  bad.phil(0).phase = Phase::kEating;
  EXPECT_FALSE(check_invariants(bad, t).empty());

  // Fork held by a non-adjacent philosopher.
  bad = s;
  bad.fork(0).holder = 1;  // P1's forks are 1 and 2
  EXPECT_FALSE(check_invariants(bad, t).empty());

  // Holding while merely committed.
  bad = s;
  bad.fork(0).holder = 0;
  bad.phil(0).phase = Phase::kCommit;
  EXPECT_FALSE(check_invariants(bad, t).empty());

  // Correct holding state passes.
  SimState good = s;
  good.fork(0).holder = 0;
  good.phil(0).phase = Phase::kTrySecond;
  good.phil(0).committed = Side::kLeft;
  EXPECT_TRUE(check_invariants(good, t).empty());
}

TEST(Invariants, RankDensityChecked) {
  const auto t = graph::parallel_arcs(2);
  SimState s = blank(t, true);
  s.fork(0).use_rank = {2, 0};  // rank 2 with no rank 1: not dense
  EXPECT_FALSE(check_invariants(s, t).empty());
  s.fork(0).use_rank = {1, 2};
  EXPECT_TRUE(check_invariants(s, t).empty());
}

TEST(ForksHeld, CountsBothSides) {
  const auto t = graph::classic_ring(3);
  SimState s = blank(t);
  EXPECT_EQ(forks_held(s, t, 0), 0);
  s.fork(0).holder = 0;
  EXPECT_EQ(forks_held(s, t, 0), 1);
  s.fork(1).holder = 0;
  EXPECT_EQ(forks_held(s, t, 0), 2);
}

TEST(ToString, MentionsHoldersAndPhases) {
  const auto t = graph::classic_ring(3);
  SimState s = blank(t);
  s.fork(0).holder = 0;
  s.phil(0).phase = Phase::kTrySecond;
  const std::string repr = to_string(s, t);
  EXPECT_NE(repr.find("f0:P0"), std::string::npos);
  EXPECT_NE(repr.find("TrySecond"), std::string::npos);
}

}  // namespace
}  // namespace gdp::sim
