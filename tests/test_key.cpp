// Property tests for the packed fixed-width state-key codec
// (gdp/mdp/key.hpp): encode/decode round-trips over randomized reachable
// states, injectivity against the reference byte encoding, exact layout
// widths for the topology families the benches run, and the degree-cap
// regression for the guest-book fields.
#include <gtest/gtest.h>

#include <bit>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "gdp/algos/algorithm.hpp"
#include "gdp/common/check.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/mdp/key.hpp"
#include "gdp/rng/rng.hpp"
#include "gdp/sim/engine.hpp"
#include "gdp/sim/schedulers/basic.hpp"
#include "gdp/sim/state.hpp"
#include "state_recorder.hpp"

namespace gdp::mdp {
namespace {

/// Collects distinct reachable configurations by driving the live engine
/// with seeded Rng streams under benign and adversarial schedulers.
std::vector<sim::SimState> reachable_sample(const algos::Algorithm& algo,
                                            const graph::Topology& t, std::uint64_t seed_base,
                                            int runs = 6, std::uint64_t steps = 4'000) {
  std::vector<sim::SimState> all;
  std::set<std::vector<std::uint8_t>> seen;
  std::vector<std::uint8_t> bytes;
  for (int run = 0; run < runs; ++run) {
    sim::RandomUniform uniform;
    sim::LongestWaiting longest;
    sim::Scheduler& inner = (run % 2 == 0) ? static_cast<sim::Scheduler&>(uniform)
                                           : static_cast<sim::Scheduler&>(longest);
    testutil::StateRecorder collector(inner);
    rng::Rng rng(seed_base + static_cast<std::uint64_t>(run));
    sim::EngineConfig cfg;
    cfg.max_steps = steps;
    (void)sim::run(algo, t, collector, rng, cfg);
    for (const sim::SimState& s : collector.states()) {
      s.encode(bytes);
      if (seen.insert(bytes).second) all.push_back(s);
    }
  }
  return all;
}

// --- Round-trip + injectivity over topologies x algorithms. ---

void expect_round_trip_and_injective(const std::string& algo_name, const graph::Topology& t,
                                     std::uint64_t seed_base) {
  SCOPED_TRACE(algo_name + " on " + t.name());
  const auto algo = algos::make_algorithm(algo_name);
  const KeyCodec codec(*algo, t);
  ASSERT_TRUE(codec.valid());

  const auto states = reachable_sample(*algo, t, seed_base);
  ASSERT_GT(states.size(), 20u) << "sample too small to mean anything";

  // Injectivity through a map of decoded states: distinct SimStates must
  // produce distinct PackedKeys, and each stored key must decode back to
  // exactly the SimState that produced it.
  std::map<std::vector<std::uint8_t>, sim::SimState> decoded_by_words;
  for (const sim::SimState& state : states) {
    PackedKey key;
    codec.encode(state, key);
    ASSERT_EQ(key.words(), codec.key_words());

    const sim::SimState decoded = codec.decode(key);
    ASSERT_EQ(decoded, state) << "decode is not the inverse of encode";
    // Re-encoding the decoded state reproduces the key bit for bit.
    ASSERT_TRUE(codec.encode(decoded) == key);

    const std::vector<std::uint8_t> words(
        reinterpret_cast<const std::uint8_t*>(key.data()),
        reinterpret_cast<const std::uint8_t*>(key.data() + key.words()));
    const auto [it, inserted] = decoded_by_words.emplace(words, decoded);
    if (!inserted) {
      ASSERT_EQ(it->second, state) << "two distinct states packed to the same key";
    }
  }
  EXPECT_EQ(decoded_by_words.size(), states.size());
}

TEST(KeyCodec, RoundTripRing) {
  expect_round_trip_and_injective("lr1", graph::classic_ring(3), 100);
  expect_round_trip_and_injective("lr2", graph::classic_ring(4), 200);
  expect_round_trip_and_injective("gdp1", graph::classic_ring(5), 300);
  expect_round_trip_and_injective("gdp2", graph::classic_ring(3), 400);
}

TEST(KeyCodec, RoundTripChordAndPendant) {
  expect_round_trip_and_injective("lr1", graph::ring_with_chord(4), 500);
  expect_round_trip_and_injective("lr2", graph::ring_with_chord(5), 600);
  expect_round_trip_and_injective("gdp1", graph::ring_with_pendant(3), 700);
  expect_round_trip_and_injective("gdp2", graph::ring_with_chord(4), 800);
}

TEST(KeyCodec, RoundTripSharedForkFamilies) {
  // parallel_arcs / star / fig1a: a fork shared by many philosophers — the
  // closest the two-fork Topology API gets to a hyperedge, and the families
  // where the guest-book fields dominate the layout.
  expect_round_trip_and_injective("lr2", graph::parallel_arcs(4), 900);
  expect_round_trip_and_injective("gdp2", graph::parallel_arcs(3), 1'000);
  expect_round_trip_and_injective("lr2", graph::star(5), 1'100);
  expect_round_trip_and_injective("lr1", graph::fig1a(), 1'200);
}

TEST(KeyCodec, RoundTripBaselinesWithAuxWords) {
  expect_round_trip_and_injective("arbiter", graph::classic_ring(3), 1'300);
  expect_round_trip_and_injective("ticket", graph::classic_ring(4), 1'400);
  expect_round_trip_and_injective("ordered", graph::ring_with_chord(4), 1'500);
}

// --- Layout-width pins: the exact bit budget per family. ---

TEST(KeyCodec, LayoutWidthsRing) {
  // ring(n) with lr1: no books, no numbers, no aux — per fork just the
  // holder field, per philosopher phase + side.
  struct Case {
    int n;
    unsigned holder_bits;
    std::size_t key_bits;
  };
  // holder stores [0, n] (0 = free): bit_width(n) bits.
  for (const Case c : {Case{3, 2, 3 * 2 + 3 * 4},      // 18 bits
                       Case{5, 3, 5 * 3 + 5 * 4},      // 35 bits
                       Case{64, 7, 64 * 7 + 64 * 4}}) {  // 704 bits
    const auto t = graph::classic_ring(c.n);
    const KeyCodec codec(*algos::make_algorithm("lr1"), t);
    SCOPED_TRACE(t.name());
    EXPECT_FALSE(codec.books());
    EXPECT_FALSE(codec.numbers());
    EXPECT_EQ(codec.aux_words(), 0);
    EXPECT_EQ(codec.holder_bits(), c.holder_bits);
    EXPECT_EQ(codec.nr_bits(), 0u);
    EXPECT_EQ(codec.key_bits(), c.key_bits);
    EXPECT_EQ(codec.key_words(), (c.key_bits + 63) / 64);
  }

  // gdp2 on the same rings adds nr (bit_width(m), m = k) and the books:
  // per fork degree 2 -> 2 request bits + 2 ranks x 2 bits.
  for (const int n : {3, 5, 64}) {
    const auto t = graph::classic_ring(n);
    const KeyCodec codec(*algos::make_algorithm("gdp2"), t);
    SCOPED_TRACE(t.name());
    EXPECT_TRUE(codec.books());
    EXPECT_TRUE(codec.numbers());
    const auto nu = static_cast<unsigned>(n);
    const unsigned holder = std::bit_width(nu);
    const unsigned nr = std::bit_width(nu);  // m = num_forks = n on a ring
    EXPECT_EQ(codec.holder_bits(), holder);
    EXPECT_EQ(codec.nr_bits(), nr);
    EXPECT_EQ(codec.rank_bits(0), 2u);
    EXPECT_EQ(codec.request_bits(0), 2u);
    EXPECT_EQ(codec.key_bits(),
              static_cast<std::size_t>(n) * (holder + nr + 2 + 2 * 2) +
                  static_cast<std::size_t>(n) * 4);
  }
}

TEST(KeyCodec, LayoutWidthsChord) {
  // ring_with_chord(k): k + 1 philosophers over k forks; forks 0 and k/2
  // have degree 3 (the Theorem 1 premise), the rest degree 2.
  for (const int k : {4, 6, 64}) {
    const auto t = graph::ring_with_chord(k);
    const KeyCodec codec(*algos::make_algorithm("lr2"), t);
    SCOPED_TRACE(t.name());
    const auto phils = static_cast<unsigned>(k + 1);
    const unsigned holder = std::bit_width(phils);
    std::size_t fork_bits = 0;
    for (ForkId f = 0; f < t.num_forks(); ++f) {
      const auto deg = static_cast<unsigned>(t.degree(f));
      EXPECT_EQ(codec.request_bits(f), deg);
      EXPECT_EQ(codec.rank_bits(f), static_cast<unsigned>(std::bit_width(deg)));
      fork_bits += holder + deg + deg * static_cast<unsigned>(std::bit_width(deg));
    }
    EXPECT_EQ(codec.key_bits(), fork_bits + phils * 4);
  }
}

TEST(KeyCodec, LayoutWidthsSharedFork) {
  // star(n): the center fork is shared by all n philosophers, leaves have
  // degree 1 — the widest books layout the degree cap admits at n = 64.
  for (const int n : {3, 5, 64}) {
    const auto t = graph::star(n);
    const KeyCodec codec(*algos::make_algorithm("lr2"), t);
    SCOPED_TRACE(t.name());
    const auto nu = static_cast<unsigned>(n);
    const unsigned holder = std::bit_width(nu);
    const unsigned center_rank = std::bit_width(nu);
    // center: holder + n request bits + n ranks; each leaf: holder + 1 + 1.
    const std::size_t expect_bits = (holder + nu + nu * center_rank) +
                                    nu * (holder + 1 + 1) + nu * 4;
    EXPECT_EQ(codec.request_bits(0), nu);
    EXPECT_EQ(codec.rank_bits(0), center_rank);
    EXPECT_EQ(codec.key_bits(), expect_bits);
  }
}

// --- The memory claim the refactor was for. ---

TEST(KeyCodec, PackedKeysAtLeastHalveLr2Parallel4Keys) {
  const auto t = graph::parallel_arcs(4);
  const KeyCodec codec(*algos::make_algorithm("lr2"), t);
  // Legacy: 2 forks x (12 + 4 ranks) + 4 phils x 4 = 48 bytes (plus the
  // byte-vector's own heap block and capacity). Packed: one 8-byte word.
  EXPECT_EQ(codec.legacy_key_bytes(), 48u);
  EXPECT_EQ(codec.key_bytes(), 8u);
  EXPECT_GE(codec.legacy_key_bytes(), 2 * codec.key_bytes());
}

TEST(KeyCodec, InlineBufferCoversTheBenchFamilies) {
  // The families the benches model-check stay within the inline words — no
  // per-key heap allocation on those hot paths.
  for (const auto& [algo, t] : std::vector<std::pair<std::string, graph::Topology>>{
           {"lr2", graph::parallel_arcs(4)},
           {"gdp2", graph::classic_ring(5)},
           {"lr1", graph::fig1a()},
           {"gdp1", graph::theta(1, 1, 2)}}) {
    const KeyCodec codec(*algos::make_algorithm(algo), t);
    EXPECT_LE(codec.key_words(), PackedKey::kInlineWords) << algo << " on " << t.name();
  }
}

// --- Degree-cap regression (the legacy encode size byte). ---

TEST(KeyCodec, BooksAtTheDegreeCap64) {
  // star(64): center fork degree 64 — the books-enabled cap. The guest
  // book must survive a full round of uses through both encodings.
  const auto t = graph::star(64);
  const auto lr2 = algos::make_algorithm("lr2");
  const KeyCodec codec(*lr2, t);

  sim::SimState state = lr2->initial_state(t);
  for (PhilId p = 0; p < t.num_phils(); ++p) {
    sim::mark_used(state, t, 0, p);
    state.fork(0).requests |= std::uint64_t{1} << t.slot_of(0, p);
  }
  // Every rank distinct, all 64 request bits set: the widest center field.
  PackedKey key;
  codec.encode(state, key);
  EXPECT_EQ(codec.decode(key), state);

  std::vector<std::uint8_t> legacy;
  state.encode(legacy);  // size byte 64: fine
  EXPECT_EQ(legacy.size(), codec.legacy_key_bytes());
}

// (The legacy-encode size-byte regression lives in test_state.cpp, next to
// the other SimState::encode tests.)

TEST(KeyCodec, RefusesOutOfContractFields) {
  const auto t = graph::classic_ring(3);
  const auto lr1 = algos::make_algorithm("lr1");
  const KeyCodec codec(*lr1, t);

  // A scratch word has no field in the layout: encode must refuse rather
  // than alias.
  sim::SimState state = lr1->initial_state(t);
  state.phil(0).scratch = 1;
  PackedKey key;
  EXPECT_THROW(codec.encode(state, key), PreconditionError);

  // Aux words outside [-1, n-1] are outside the init_aux contract.
  const auto ticket = algos::make_algorithm("ticket");
  const KeyCodec ticket_codec(*ticket, t);
  sim::SimState boxed = ticket->initial_state(t);
  boxed.aux[0] = t.num_phils();
  EXPECT_THROW(ticket_codec.encode(boxed, key), PreconditionError);

  // Decoding a key of the wrong width is refused, as is an unset codec.
  EXPECT_THROW(codec.decode(PackedKey(codec.key_words() + 1)), PreconditionError);
  EXPECT_THROW(KeyCodec().decode(PackedKey(1)), PreconditionError);
}

TEST(KeyCodec, RefusesNumberingRangeBeyond16Bits) {
  // nr_max_ is 16-bit storage: an effective m > 65535 would truncate,
  // shrink nr_bits_, and intern DISTINCT states as one key (silent
  // collisions). Building a codec for such a configuration must refuse —
  // both effective_m's own range guard and the codec's defense-in-depth
  // check throw, and either way the layout is never constructed.
  const auto t = graph::classic_ring(3);
  algos::AlgoConfig config;
  config.m = 70'000;  // > 0xffff, >= num_forks so validate() accepts it
  const auto gdp1 = algos::make_algorithm("gdp1", config);
  EXPECT_THROW(KeyCodec(*gdp1, t), PreconditionError);

  // The boundary value still fits: 0xffff must stay representable.
  algos::AlgoConfig edge;
  edge.m = 0xffff;
  const auto gdp1_edge = algos::make_algorithm("gdp1", edge);
  const KeyCodec codec_edge(*gdp1_edge, t);
  EXPECT_EQ(codec_edge.nr_bits(), 16u);
}

TEST(PackedKey, ValueSemanticsAcrossTheHeapBoundary) {
  // Inline (1 word) and heap (> kInlineWords) keys: copy, move, equality.
  PackedKey small(1);
  small.data()[0] = 0xdeadbeefULL;
  PackedKey small2 = small;
  EXPECT_TRUE(small == small2);
  small2.data()[0] ^= 1;
  EXPECT_FALSE(small == small2);

  PackedKey big(PackedKey::kInlineWords + 2);
  for (std::size_t i = 0; i < big.words(); ++i) big.data()[i] = 0x1111ULL * (i + 1);
  PackedKey big2 = big;
  EXPECT_TRUE(big == big2);
  const PackedKey big3 = std::move(big2);
  EXPECT_TRUE(big == big3);
  EXPECT_FALSE(big == small);

  // Distinct widths never compare equal, even when the prefix matches.
  PackedKey two(2);
  two.data()[0] = small.data()[0];
  EXPECT_FALSE(two == small);

  // Assignment across the inline/heap boundary in both directions.
  PackedKey k = big;
  k = small;
  EXPECT_TRUE(k == small);
  k = big;
  EXPECT_TRUE(k == big);
}

}  // namespace
}  // namespace gdp::mdp
