// Guarded-choice layer: rendezvous counting, pairing consistency, liveness.
#include <gtest/gtest.h>

#include <numeric>

#include "gdp/common/check.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/pi/guarded_choice.hpp"

namespace gdp::pi {
namespace {

ChoiceResult run_on(const graph::Topology& t, std::uint64_t syncs, std::uint64_t seed = 1) {
  ChoiceConfig cfg;
  cfg.seed = seed;
  cfg.target_syncs = syncs;
  cfg.max_duration = std::chrono::milliseconds(20'000);
  return run_guarded_choice(t, cfg);
}

TEST(GuardedChoice, ReachesTargetOnRing) {
  const auto r = run_on(graph::classic_ring(4), 2'000);
  EXPECT_GE(r.total_syncs, 2'000u);
  EXPECT_EQ(r.violations, 0u);
  EXPECT_GT(r.syncs_per_second, 0.0);
}

TEST(GuardedChoice, ChannelTotalsMatchRendezvousCount) {
  const auto r = run_on(graph::fig1a(), 3'000);
  const std::uint64_t on_channels =
      std::accumulate(r.syncs_on.begin(), r.syncs_on.end(), std::uint64_t{0});
  // Every rendezvous the matcher counted is attributed to exactly one
  // channel; late claims may add a few participations beyond the target.
  EXPECT_EQ(on_channels, r.total_syncs);
  EXPECT_EQ(r.violations, 0u);
}

TEST(GuardedChoice, ParticipationsAreTwoPerRendezvous) {
  const auto r = run_on(graph::classic_ring(6), 2'000, 7);
  const std::uint64_t participations =
      std::accumulate(r.syncs_of.begin(), r.syncs_of.end(), std::uint64_t{0});
  // matcher + offer owner each count one participation.
  EXPECT_GE(participations, r.total_syncs);
  EXPECT_LE(participations, 2 * r.total_syncs + static_cast<std::uint64_t>(r.syncs_of.size()));
}

TEST(GuardedChoice, SharedChannelTopologiesWork) {
  // The generalized case: channels shared by many agents.
  for (const auto& t : {graph::parallel_arcs(4), graph::star(6), graph::fig1a()}) {
    const auto r = run_on(t, 1'500, 11);
    EXPECT_GE(r.total_syncs, 1'500u) << t.name();
    EXPECT_EQ(r.violations, 0u) << t.name();
  }
}

TEST(GuardedChoice, NobodyStarvesOnModerateRuns) {
  const auto r = run_on(graph::classic_ring(4), 4'000, 3);
  EXPECT_TRUE(r.everyone_synced());
}

TEST(GuardedChoice, RejectsZeroTarget) {
  ChoiceConfig cfg;
  cfg.target_syncs = 0;
  EXPECT_THROW(run_guarded_choice(graph::classic_ring(4), cfg), PreconditionError);
}

TEST(GuardedChoice, DeterministicConfigValidation) {
  ChoiceConfig cfg;
  cfg.target_syncs = 10;
  cfg.m = 1;  // < number of channels
  EXPECT_THROW(run_guarded_choice(graph::classic_ring(4), cfg), PreconditionError);
}

}  // namespace
}  // namespace gdp::pi
