// The quantitative checker's contract: sound certified intervals on
// hand-computed MDPs, interval-iteration bracket invariants, bit-identical
// results at every thread count, refusal to certify truncated models, and
// agreement with the qualitative fair-EC verdicts and the uniform-chain
// numbers on the paper's instances.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "gdp/algos/algorithm.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/mdp/chain_analysis.hpp"
#include "gdp/mdp/fair_progress.hpp"
#include "gdp/mdp/par/par.hpp"
#include "gdp/mdp/quant/quant.hpp"

namespace gdp::mdp::quant {
namespace {

constexpr double kInfD = std::numeric_limits<double>::infinity();

/// Hand-built MDP helper: rows in (state-major, philosopher-major) order;
/// rows[s * num_phils + p] lists that action's (prob, next) outcomes.
Model hand_model(int num_phils, const std::vector<std::vector<Outcome>>& rows,
                 std::vector<std::uint64_t> eaters, std::vector<bool> frontier = {},
                 bool truncated = false) {
  std::vector<std::uint64_t> offsets{0};
  std::vector<Outcome> outcomes;
  for (const auto& row : rows) {
    for (const Outcome& o : row) outcomes.push_back(o);
    offsets.push_back(outcomes.size());
  }
  if (frontier.empty()) frontier.assign(eaters.size(), false);
  return Model::build(num_phils, std::move(offsets), std::move(outcomes), std::move(eaters),
                      std::move(frontier), truncated);
}

void expect_point(const Interval& iv, double value, double eps = 1e-6) {
  EXPECT_LE(iv.width(), eps);
  EXPECT_TRUE(iv.contains(value, 1e-9)) << "[" << iv.lower << ", " << iv.upper << "] vs " << value;
}

// --- Hand-computed models. -------------------------------------------------

// Two philosophers, two states: s0 -> meal via P0, P1 busy-waits. The
// {s0, P1} self-loop is an avoiding MEC but not a fair one, so progress is
// certain; one productive step feeds P0 from anywhere.
TEST(QuantHand, CertainTwoState) {
  const Model m = hand_model(2,
                             {{{1.0f, 1}},          // s0, P0: eat
                              {{1.0f, 0}},          // s0, P1: busy-wait
                              {{1.0f, 1}},          // s1, P0
                              {{1.0f, 1}}},         // s1, P1
                             {0, 0b01});
  const QuantResult r = analyze(m);
  EXPECT_EQ(r.certainty, Certainty::kCertified);
  EXPECT_TRUE(r.progress_certain());
  expect_point(r.p_min, 1.0);
  expect_point(r.p_max, 1.0);
  expect_point(r.p_trap, 0.0);
  expect_point(r.e_min, 1.0);
  expect_point(r.e_max, 1.0);
  EXPECT_EQ(r.num_avoid_mecs, 1u);       // {s0} through P1's self-loop
  EXPECT_EQ(r.num_fair_avoid_mecs, 0u);  // P0 has no action inside it
  EXPECT_FALSE(r.fair_trap_reachable);
}

// s2 is a fair trap (both philosophers loop inside): scheduling P1 from s0
// reaches it surely, so the fair-adversary minimum is 0 even though the
// maximum is 1.
TEST(QuantHand, FairTrapThreeState) {
  const Model m = hand_model(2,
                             {{{1.0f, 1}},   // s0, P0: eat
                              {{1.0f, 2}},   // s0, P1: into the trap
                              {{1.0f, 1}},   // s1, P0
                              {{1.0f, 1}},   // s1, P1
                              {{1.0f, 2}},   // s2, P0: loop
                              {{1.0f, 2}}},  // s2, P1: loop
                             {0, 0b01, 0});
  const QuantResult r = analyze(m);
  EXPECT_EQ(r.certainty, Certainty::kCertified);
  EXPECT_FALSE(r.progress_certain());
  EXPECT_TRUE(r.fair_trap_reachable);
  EXPECT_EQ(r.num_fair_avoid_mecs, 1u);
  expect_point(r.p_min, 0.0);
  expect_point(r.p_max, 1.0);
  expect_point(r.p_trap, 1.0);
  expect_point(r.e_min, 1.0);
  EXPECT_EQ(r.e_max.lower, kInfD);  // certified infinite
  EXPECT_EQ(r.e_max.upper, kInfD);
  // The qualitative checker must agree.
  EXPECT_EQ(check_fair_progress(m).verdict, Verdict::kProgressFails);
}

// Geometric meal: P0's action eats with probability 1/2 and retries
// otherwise, so every expected-time notion is exactly 2; dwell on P1's
// self-loop is unproductive and does not change the worst case.
TEST(QuantHand, GeometricLoop) {
  const Model m = hand_model(2,
                             {{{0.5f, 1}, {0.5f, 0}},  // s0, P0: coin
                              {{1.0f, 0}},             // s0, P1: busy-wait
                              {{1.0f, 1}},             // s1, P0
                              {{1.0f, 1}}},            // s1, P1
                             {0, 0b01});
  const QuantResult r = analyze(m);
  EXPECT_EQ(r.certainty, Certainty::kCertified);
  expect_point(r.p_min, 1.0);
  expect_point(r.p_max, 1.0);
  expect_point(r.e_min, 2.0);
  expect_point(r.e_max, 2.0);
}

// A coin that can land in an absorbing non-eating dead end: every
// probability is exactly 1/2 and no scheduler reaches the meal surely, so
// both expected times are certified infinite.
TEST(QuantHand, HalfTrapHalfMeal) {
  const Model m = hand_model(2,
                             {{{0.5f, 1}, {0.5f, 2}},  // s0, P0: coin between meal and trap
                              {{1.0f, 0}},             // s0, P1: busy-wait
                              {{1.0f, 1}},             // s1, P0
                              {{1.0f, 1}},             // s1, P1
                              {{1.0f, 2}},             // s2, P0: loop
                              {{1.0f, 2}}},            // s2, P1: loop
                             {0, 0b01, 0});
  const QuantResult r = analyze(m);
  EXPECT_EQ(r.certainty, Certainty::kCertified);
  expect_point(r.p_min, 0.5);
  expect_point(r.p_max, 0.5);
  expect_point(r.p_trap, 0.5);
  EXPECT_EQ(r.e_min.lower, kInfD);  // Pmax < 1: no scheduler eats surely
  EXPECT_EQ(r.e_max.lower, kInfD);
}

// Lockout-style subset target: only P1's meals count. P0 eats and loops
// back; a fair adversary can starve P1 forever only if some fair avoiding
// MEC exists — here P1 always gets its meal once scheduled.
TEST(QuantHand, SubsetTargetMask) {
  const Model m = hand_model(2,
                             {{{1.0f, 1}},   // s0, P0: P0 eats
                              {{1.0f, 2}},   // s0, P1: P1 eats
                              {{1.0f, 0}},   // s1, P0: back to start
                              {{1.0f, 2}},   // s1, P1
                              {{1.0f, 2}},   // s2, P0
                              {{1.0f, 2}}},  // s2, P1
                             {0, 0b01, 0b10});
  const QuantResult whole = analyze(m, ~std::uint64_t{0});
  expect_point(whole.p_min, 1.0);
  // Target = P1 only: s1 (P0 eating) is an ordinary state of the fragment.
  const QuantResult p1 = analyze(m, 0b10);
  EXPECT_EQ(p1.certainty, Certainty::kCertified);
  expect_point(p1.p_min, 1.0);
  expect_point(p1.p_max, 1.0);
}

// --- Truncated-model refusal. ----------------------------------------------

TEST(QuantTruncated, NeverClaimsCertainty) {
  const auto algo = algos::make_algorithm("lr1");
  QuantOptions opts;
  opts.max_states = 500;
  const QuantResult r = analyze(*algo, graph::fig1a(), opts);
  EXPECT_EQ(r.certainty, Certainty::kTruncated);
  EXPECT_FALSE(r.progress_certain());
  // Sound but unknowing: probability bounds straddle, time upper bounds
  // are infinite unless the lower bound already certifies infinity.
  EXPECT_LE(r.p_min.lower, r.p_min.upper);
  EXPECT_EQ(r.e_min.upper, kInfD);
  EXPECT_EQ(r.e_max.upper, kInfD);
}

TEST(QuantTruncated, HandBuiltFrontierStraddles) {
  // s0 steps into an unexplored frontier state: nothing can be certified.
  const Model m = hand_model(1, {{{1.0f, 1}}, {}}, {0, 0}, {false, true}, true);
  const QuantResult r = analyze(m);
  EXPECT_EQ(r.certainty, Certainty::kTruncated);
  EXPECT_EQ(r.p_min.lower, 0.0);
  EXPECT_EQ(r.p_min.upper, 1.0);
  EXPECT_EQ(r.p_max.lower, 0.0);
  EXPECT_EQ(r.p_max.upper, 1.0);
  EXPECT_FALSE(r.progress_certain());
}

// --- Bracket invariants. ---------------------------------------------------

// Interval iteration must bracket from both sides: a coarser epsilon stops
// earlier, so its probability interval contains every finer one (the lower
// bound only rises, the upper only falls), and upper >= lower throughout.
TEST(QuantBrackets, EpsilonNesting) {
  const auto algo = algos::make_algorithm("lr1");
  const Model m = par::explore(*algo, graph::parallel_arcs(3));
  QuantResult prev;
  bool have_prev = false;
  for (const double eps : {1e-2, 1e-4, 1e-6}) {
    QuantOptions opts;
    opts.epsilon = eps;
    const QuantResult r = analyze(m, ~std::uint64_t{0}, opts);
    for (const Interval* iv : {&r.p_min, &r.p_max, &r.p_trap, &r.e_min, &r.e_max}) {
      EXPECT_GE(iv->upper, iv->lower);
    }
    if (have_prev) {
      EXPECT_GE(r.p_min.lower + 1e-12, prev.p_min.lower);
      EXPECT_LE(r.p_min.upper - 1e-12, prev.p_min.upper);
      EXPECT_GE(r.p_max.lower + 1e-12, prev.p_max.lower);
      EXPECT_LE(r.p_max.upper - 1e-12, prev.p_max.upper);
      EXPECT_GE(r.p_trap.lower + 1e-12, prev.p_trap.lower);
      EXPECT_LE(r.p_trap.upper - 1e-12, prev.p_trap.upper);
    }
    prev = r;
    have_prev = true;
  }
  EXPECT_LE(prev.p_min.width(), 1e-6);
  EXPECT_LE(prev.p_max.width(), 1e-6);
}

// --- Thread-count determinism. ---------------------------------------------

std::vector<int> quant_thread_counts() {
  const int hw = std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  std::vector<int> counts{1, 2};
  if (hw > 2) counts.push_back(hw);
  return counts;
}

void expect_identical_intervals(const QuantResult& a, const QuantResult& b) {
  EXPECT_EQ(a.p_min, b.p_min);
  EXPECT_EQ(a.p_max, b.p_max);
  EXPECT_EQ(a.p_trap, b.p_trap);
  EXPECT_EQ(a.e_min, b.e_min);
  EXPECT_EQ(a.e_max, b.e_max);
  EXPECT_EQ(a.certainty, b.certainty);
  EXPECT_EQ(a.sweeps, b.sweeps);
  EXPECT_EQ(a.num_quotient_nodes, b.num_quotient_nodes);
}

TEST(QuantDeterminism, BitIdenticalAcrossThreadCounts) {
  struct Case {
    const char* algo;
    graph::Topology t;
  };
  const Case cases[] = {{"lr1", graph::classic_ring(3)},
                        {"lr1", graph::parallel_arcs(3)},
                        {"gdp1", graph::classic_ring(3)}};
  for (const Case& c : cases) {
    SCOPED_TRACE(std::string(c.algo) + " on " + c.t.name());
    const auto algo = algos::make_algorithm(c.algo);
    const Model m = par::explore(*algo, c.t);
    QuantResult base;
    bool have_base = false;
    for (const int threads : quant_thread_counts()) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      QuantOptions opts;
      opts.threads = threads;
      opts.seq_sweep_threshold = 1;  // force the pool even on small models
      opts.seq_mec_threshold = 1;
      opts.seq_scc_region = 32;
      const QuantResult r = analyze(m, ~std::uint64_t{0}, opts);
      if (have_base) {
        expect_identical_intervals(base, r);
      } else {
        base = r;
        have_base = true;
      }
    }
  }
}

// The multi-target entry point shares the reachability sweep and the
// full-model MEC/quotient pieces across targets; every per-target result
// must still match the single-target call bit for bit — including the
// sweep counters, which would drift if any shared piece leaked
// target-dependent state.
TEST(QuantMultiTarget, BitIdenticalToSingleTargetCalls) {
  struct Case {
    const char* algo;
    graph::Topology t;
  };
  const Case cases[] = {{"lr1", graph::classic_ring(3)},
                        {"lr1", graph::parallel_arcs(3)},
                        {"gdp1", graph::classic_ring(3)}};
  for (const Case& c : cases) {
    SCOPED_TRACE(std::string(c.algo) + " on " + c.t.name());
    const auto algo = algos::make_algorithm(c.algo);
    const Model m = par::explore(*algo, c.t);

    // All singleton masks (per-philosopher lockout freedom) plus the union
    // target and a repeat — repeats must not perturb the shared state.
    std::vector<std::uint64_t> targets;
    for (int p = 0; p < c.t.num_phils(); ++p) targets.push_back(std::uint64_t{1} << p);
    targets.push_back(~std::uint64_t{0});
    targets.push_back(std::uint64_t{1});

    for (const int threads : quant_thread_counts()) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      QuantOptions opts;
      opts.threads = threads;
      opts.seq_sweep_threshold = 1;  // force the pool even on small models
      opts.seq_mec_threshold = 1;
      opts.seq_scc_region = 32;
      const std::vector<QuantResult> multi = analyze(m, targets, opts);
      ASSERT_EQ(multi.size(), targets.size());
      for (std::size_t i = 0; i < targets.size(); ++i) {
        SCOPED_TRACE("target mask " + std::to_string(targets[i]));
        const QuantResult single = analyze(m, targets[i], opts);
        EXPECT_EQ(multi[i].target_set, targets[i]);
        expect_identical_intervals(single, multi[i]);
        EXPECT_EQ(single.num_avoid_mecs, multi[i].num_avoid_mecs);
        EXPECT_EQ(single.num_fair_avoid_mecs, multi[i].num_fair_avoid_mecs);
        EXPECT_EQ(single.fair_trap_reachable, multi[i].fair_trap_reachable);
      }
    }
  }
}

// --- The acceptance matrix: every (algorithm x topology) instance the
// parallel-engine suite pins, quantified. kProgressCertain instances must
// certify Pmin = 1; kProgressFails instances must certify the gap
// (Pmin < 1 or a positive trap probability); intervals are certified to
// width <= 1e-6 and identical at threads {1, 2, hw}. ---

void expect_quant_matches_verdict(const std::string& algo_name, const graph::Topology& t) {
  SCOPED_TRACE(algo_name + " on " + t.name());
  const auto algo = algos::make_algorithm(algo_name);
  const Model m = par::explore(*algo, t);
  ASSERT_FALSE(m.truncated());
  const FairProgressResult verdict = par::check_fair_progress(m);

  const int hw = std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  QuantResult base;
  bool have_base = false;
  for (const int threads : {1, 2, hw}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    QuantOptions opts;
    opts.threads = threads;
    const QuantResult r = analyze(m, ~std::uint64_t{0}, opts);
    ASSERT_EQ(r.certainty, Certainty::kCertified);
    EXPECT_LE(r.p_min.width(), 1e-6);
    EXPECT_LE(r.p_max.width(), 1e-6);
    EXPECT_LE(r.p_trap.width(), 1e-6);
    if (verdict.verdict == Verdict::kProgressCertain) {
      EXPECT_TRUE(r.progress_certain());
      EXPECT_GE(r.p_min.lower, 1.0 - 1e-6);
      EXPECT_EQ(r.p_trap.upper, 0.0);
      EXPECT_TRUE(r.e_max.finite()) << "certified progress must bound the worst case";
      EXPECT_GE(r.e_max.lower + 1e-6, r.e_min.upper - 1e-6);
    } else {
      ASSERT_EQ(verdict.verdict, Verdict::kProgressFails);
      EXPECT_TRUE(r.p_min.upper < 1.0 || r.p_trap.lower > 0.0)
          << "a failing verdict must be quantitatively visible";
      EXPECT_EQ(r.e_max.lower, kInfD);
    }
    if (have_base) {
      expect_identical_intervals(base, r);
    } else {
      base = r;
      have_base = true;
    }
  }
}

TEST(QuantMatrix, Lr1Ring3) { expect_quant_matches_verdict("lr1", graph::classic_ring(3)); }
TEST(QuantMatrix, Lr1Ring4) { expect_quant_matches_verdict("lr1", graph::classic_ring(4)); }
TEST(QuantMatrix, Lr1RingWithPendant) {
  expect_quant_matches_verdict("lr1", graph::ring_with_pendant(3));
}
TEST(QuantMatrix, Lr1Fig1a) { expect_quant_matches_verdict("lr1", graph::fig1a()); }
TEST(QuantMatrix, Lr2ParallelArcs3) { expect_quant_matches_verdict("lr2", graph::parallel_arcs(3)); }
TEST(QuantMatrix, Gdp1Ring3) { expect_quant_matches_verdict("gdp1", graph::classic_ring(3)); }
TEST(QuantMatrix, Gdp1ParallelArcs3) {
  expect_quant_matches_verdict("gdp1", graph::parallel_arcs(3));
}
TEST(QuantMatrix, TicketFig1a) { expect_quant_matches_verdict("ticket", graph::fig1a()); }
TEST(QuantMatrix, Gdp2Ring3) { expect_quant_matches_verdict("gdp2", graph::classic_ring(3)); }
TEST(QuantMatrix, Lr2Ring4) { expect_quant_matches_verdict("lr2", graph::classic_ring(4)); }

// --- Consistency with the uniform-chain analysis (the satellite bugnet):
// the uniform scheduler is one fair adversary, so its reach probability
// must lie inside [Pmin, Pmax], and the qualitative verdict must match the
// quantitative certificate on every instance of the cross-check matrix. ---

void expect_chain_inside_bounds(const std::string& algo_name, const graph::Topology& t,
                                std::size_t max_states) {
  SCOPED_TRACE(algo_name + " on " + t.name());
  const auto algo = algos::make_algorithm(algo_name);
  par::CheckOptions copts;
  copts.max_states = max_states;
  const Model m = par::explore(*algo, t, copts);

  QuantOptions opts;
  opts.max_states = max_states;
  const QuantResult r = analyze(m, ~std::uint64_t{0}, opts);
  if (m.truncated()) {
    // The refusal side of the satellite: an incomplete model never claims.
    EXPECT_EQ(r.certainty, Certainty::kTruncated);
    EXPECT_FALSE(r.progress_certain());
    return;
  }
  ASSERT_EQ(r.certainty, Certainty::kCertified);

  const ChainAnalysis chain = analyze_uniform_chain(m);
  EXPECT_GE(chain.p_reach, r.p_min.lower - 1e-5);
  EXPECT_LE(chain.p_reach, r.p_max.upper + 1e-5);
  if (chain.expected_converged) {
    // Every counted uniform step is also counted by e_min.
    EXPECT_GE(chain.expected_steps, r.e_min.lower - 1e-5);
  }

  const FairProgressResult verdict = par::check_fair_progress(m);
  if (verdict.verdict == Verdict::kProgressCertain) {
    EXPECT_TRUE(r.progress_certain());
  } else {
    EXPECT_TRUE(r.p_min.upper < 1.0 || r.p_trap.lower > 0.0);
  }
}

TEST(QuantChainCrossCheck, RingChordParallelStar) {
  const graph::Topology topologies[] = {graph::classic_ring(3), graph::ring_with_chord(4),
                                        graph::parallel_arcs(3), graph::star(3)};
  const char* algorithms[] = {"lr1", "lr2", "gdp1", "gdp2"};
  for (const auto& t : topologies) {
    for (const char* algo : algorithms) {
      // Everything but lr1 explodes past 2M states on the chord topology; a
      // tight cap keeps the matrix fast and those cells exercise the
      // truncation-refusal path instead (lr1/chord stays the complete
      // chord representative).
      const bool heavy = t.num_phils() > 4 && std::string(algo) != "lr1";
      expect_chain_inside_bounds(algo, t, heavy ? 300'000 : 2'000'000);
    }
  }
}

}  // namespace
}  // namespace gdp::mdp::quant
