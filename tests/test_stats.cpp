// Statistics kit: online moments, intervals, fairness index, histogram,
// table and CSV rendering.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "gdp/common/check.hpp"
#include "gdp/common/strings.hpp"
#include "gdp/stats/ci.hpp"
#include "gdp/stats/csv.hpp"
#include "gdp/stats/histogram.hpp"
#include "gdp/stats/jain.hpp"
#include "gdp/stats/online.hpp"
#include "gdp/stats/table.hpp"

namespace gdp::stats {
namespace {

TEST(Online, MomentsMatchClosedForm) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Online, EmptyIsSafe) {
  OnlineStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sem(), 0.0);
}

TEST(Online, SingleSampleHasZeroSpread) {
  OnlineStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sem(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Online, AllEqualSamplesHaveZeroVariance) {
  OnlineStats s;
  for (int i = 0; i < 100; ++i) s.add(-7.25);
  EXPECT_DOUBLE_EQ(s.mean(), -7.25);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), s.max());
}

TEST(Online, MergeWithEmptyIsIdentity) {
  OnlineStats a, empty;
  a.add(1.0);
  a.add(2.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
  OnlineStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
  EXPECT_DOUBLE_EQ(b.min(), 1.0);
  EXPECT_DOUBLE_EQ(b.max(), 2.0);
}

TEST(Online, MergeEqualsConcatenation) {
  OnlineStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Wilson, CoversTrueProportion) {
  const auto ci = wilson(50, 100);
  EXPECT_TRUE(ci.contains(0.5));
  EXPECT_GT(ci.low, 0.39);
  EXPECT_LT(ci.high, 0.61);
}

TEST(Wilson, EdgeCases) {
  EXPECT_DOUBLE_EQ(wilson(0, 0).low, 0.0);
  EXPECT_DOUBLE_EQ(wilson(0, 0).high, 1.0);
  const auto none = wilson(0, 50);
  EXPECT_DOUBLE_EQ(none.low, 0.0);
  EXPECT_LT(none.high, 0.12);
  const auto all = wilson(50, 50);
  EXPECT_GT(all.low, 0.88);
  EXPECT_DOUBLE_EQ(all.high, 1.0);
}

TEST(Wilson, SingleTrialStaysInUnitInterval) {
  for (const auto ci : {wilson(0, 1), wilson(1, 1)}) {
    EXPECT_GE(ci.low, 0.0);
    EXPECT_LE(ci.high, 1.0);
    EXPECT_LE(ci.low, ci.high);
  }
  EXPECT_TRUE(wilson(0, 1).contains(0.0));
  EXPECT_TRUE(wilson(1, 1).contains(1.0));
  // One observation says very little: the interval must stay wide.
  EXPECT_GT(wilson(1, 1).high - wilson(1, 1).low, 0.5);
}

TEST(Normal, IntervalShapes) {
  const auto ci = normal(10.0, 2.0);
  EXPECT_DOUBLE_EQ(ci.low, 10.0 - 1.96 * 2.0);
  EXPECT_DOUBLE_EQ(ci.high, 10.0 + 1.96 * 2.0);
  EXPECT_TRUE(ci.contains(10.0));
  // Zero sem (0 or 1 samples upstream) degenerates to a point.
  const auto point = normal(4.0, 0.0);
  EXPECT_DOUBLE_EQ(point.low, 4.0);
  EXPECT_DOUBLE_EQ(point.high, 4.0);
  EXPECT_TRUE(point.contains(4.0));
  EXPECT_FALSE(point.contains(4.0001));
}

TEST(Wilson, TightensWithSamples) {
  const auto small = wilson(10, 20);
  const auto large = wilson(1000, 2000);
  EXPECT_LT(large.high - large.low, small.high - small.low);
}

TEST(Jain, KnownValues) {
  EXPECT_DOUBLE_EQ(jain_index({5, 5, 5, 5}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({10, 0, 0, 0}), 0.25);
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({0, 0}), 1.0);
  EXPECT_NEAR(jain_index({1, 2, 3}), 36.0 / (3 * 14.0), 1e-12);
}

TEST(HistogramTest, QuantilesInterpolate) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 10.0);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 10.0);
  EXPECT_NEAR(h.quantile(1.0), 100.0, 10.0);
  EXPECT_LE(h.quantile(0.25), h.quantile(0.75));
}

TEST(HistogramTest, EmptyHistogramIsSafe) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.count(), 0u);
  for (double q : {0.0, 0.5, 1.0}) EXPECT_DOUBLE_EQ(h.quantile(q), 0.0);  // lo
  EXPECT_EQ(h.render(), "(empty histogram)\n");
}

TEST(HistogramTest, SingleSampleQuantilesStayInItsBucket) {
  Histogram h(0.0, 10.0, 5);
  h.add(7.0);  // bucket [6, 8)
  EXPECT_EQ(h.count(), 1u);
  for (double q : {0.01, 0.5, 1.0}) {
    EXPECT_GE(h.quantile(q), 6.0);
    EXPECT_LE(h.quantile(q), 8.0);
  }
}

TEST(HistogramTest, AllEqualSamplesConcentrateInOneBucket) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 50; ++i) h.add(42.0);
  EXPECT_EQ(h.bucket_count(4), 50u);  // [40, 50)
  EXPECT_GE(h.quantile(0.5), 40.0);
  EXPECT_LE(h.quantile(0.99), 50.0);
  // quantile(0) sits at the bucket's left edge, quantile(1) at its right.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 40.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 50.0);
}

TEST(HistogramTest, SingleBucketCoversEverything) {
  Histogram h(0.0, 1.0, 1);
  h.add(0.2);
  h.add(0.9);
  h.add(123.0);  // clamped
  EXPECT_EQ(h.bucket_count(0), 3u);
  EXPECT_GE(h.quantile(0.5), 0.0);
  EXPECT_LE(h.quantile(0.5), 1.0);
}

TEST(HistogramTest, ClampsOutliers) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(1e9);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(4), 1u);
}

TEST(HistogramTest, RenderShowsBars) {
  Histogram h(0.0, 10.0, 5);
  for (int i = 0; i < 20; ++i) h.add(3.0);
  const std::string out = h.render();
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_THROW(Histogram(1.0, 1.0, 3), PreconditionError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), PreconditionError);
}

TEST(TableTest, AlignsColumns) {
  Table table({"algo", "meals"});
  table.add_row({"lr1", "120"});
  table.add_row({"gdp1-long-name", "7"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| algo"), std::string::npos);
  EXPECT_NE(out.find("gdp1-long-name"), std::string::npos);
  // All lines equally wide.
  std::size_t width = out.find('\n');
  for (std::size_t at = 0; at < out.size();) {
    const std::size_t next = out.find('\n', at);
    if (next == std::string::npos) break;
    EXPECT_EQ(next - at, width);
    at = next + 1;
  }
}

TEST(TableTest, ShortRowsPadded) {
  Table table({"a", "b", "c"});
  table.add_row({"1"});
  table.add_rule();
  table.add_row({"1", "2", "3"});
  EXPECT_NE(table.render().find("| 1 |"), std::string::npos);
}

TEST(Csv, EscapesAndWrites) {
  const std::string path = "/tmp/gdp_test_stats.csv";
  {
    CsvWriter csv(path, {"name", "value"});
    csv.add_row({std::vector<std::string>{"plain", "1"}});
    csv.add_row({std::vector<std::string>{"has,comma", "quote\"inside"}});
    csv.add_row(std::vector<double>{1.5, 2.25}, 2);
  }
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("name,value"), std::string::npos);
  EXPECT_NE(all.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(all.find("\"quote\"\"inside\""), std::string::npos);
  EXPECT_NE(all.find("1.50,2.25"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Csv, EscapeIsSharedAndRfc4180Shaped) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("has,comma"), "\"has,comma\"");
  EXPECT_EQ(csv_escape("quote\"inside"), "\"quote\"\"inside\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(Csv, RejectsWrongArity) {
  const std::string path = "/tmp/gdp_test_stats2.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.add_row({std::vector<std::string>{"only-one"}}), PreconditionError);
  std::remove(path.c_str());
}

TEST(Strings, Helpers) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(pad("x", 3), "x  ");
  EXPECT_EQ(pad("x", -3), "  x");
  EXPECT_EQ(phil_name(4), "P4");
  EXPECT_EQ(fork_name(0), "f0");
  EXPECT_EQ(percent(0.2503), "25.0%");
}

}  // namespace
}  // namespace gdp::stats
