// Real-thread runtime: mutual exclusion under hardware concurrency, stop
// conditions, algorithm coverage.
#include <gtest/gtest.h>

#include "gdp/common/check.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/runtime/atomic_fork.hpp"
#include "gdp/runtime/runtime.hpp"
#include "gdp/runtime/shared_books.hpp"

namespace gdp::runtime {
namespace {

TEST(AtomicFork, TestAndSetSemantics) {
  AtomicFork fork;
  EXPECT_TRUE(fork.is_free());
  EXPECT_TRUE(fork.try_take(3));
  EXPECT_FALSE(fork.try_take(4));
  EXPECT_EQ(fork.holder(), 3);
  fork.release(3);
  EXPECT_TRUE(fork.try_take(4));
  fork.release(4);
}

TEST(AtomicFork, NrReadableByAnyoneWritableByHolder) {
  AtomicFork fork;
  EXPECT_EQ(fork.nr(), 0);
  ASSERT_TRUE(fork.try_take(1));
  fork.set_nr(1, 42);
  EXPECT_EQ(fork.nr(), 42);
  fork.release(1);
  EXPECT_EQ(fork.nr(), 42);  // nr persists across holders
}

TEST(ForkBooks, CondFollowsGuestBook) {
  ForkBooks books(3);
  books.insert_request(0);
  books.insert_request(1);
  EXPECT_TRUE(books.cond_holds(0));
  EXPECT_TRUE(books.cond_holds(1));
  books.mark_used(0);
  EXPECT_FALSE(books.cond_holds(0));  // 1 requests and used less recently
  EXPECT_TRUE(books.cond_holds(1));
  books.mark_used(1);
  EXPECT_TRUE(books.cond_holds(0));
  EXPECT_FALSE(books.cond_holds(1));
  // Once 0 deregisters, nothing blocks 1 (Cond only heeds *requesters*).
  books.remove_request(0);
  EXPECT_TRUE(books.cond_holds(1));
}

class RuntimeAlgorithms : public ::testing::TestWithParam<std::string> {};

TEST_P(RuntimeAlgorithms, MealsAndMutualExclusionOnFig1a) {
  RuntimeConfig cfg;
  cfg.algorithm = GetParam();
  cfg.target_meals = 2'000;
  cfg.duration = std::chrono::milliseconds(5'000);  // safety net
  const auto r = run_threads(graph::fig1a(), cfg);
  EXPECT_EQ(r.exclusion_violations, 0u);
  EXPECT_GE(r.total_meals, 2'000u);
  EXPECT_GT(r.meals_per_second, 0.0);
}

TEST_P(RuntimeAlgorithms, RingRunsClean) {
  RuntimeConfig cfg;
  cfg.algorithm = GetParam();
  cfg.target_meals = 1'000;
  cfg.duration = std::chrono::milliseconds(5'000);
  const auto r = run_threads(graph::classic_ring(4), cfg);
  EXPECT_EQ(r.exclusion_violations, 0u);
  EXPECT_GE(r.total_meals, 1'000u);
}

INSTANTIATE_TEST_SUITE_P(All, RuntimeAlgorithms,
                         ::testing::Values("lr1", "lr2", "gdp1", "gdp2", "gdp2c", "ordered",
                                           "ticket"),
                         [](const auto& info) { return info.param; });

TEST(Runtime, CourteousVariantFeedsEveryone) {
  // Duration-based stop: every thread gets wall-clock time to run (a meal
  // target alone can be hit before late-starting threads join the table).
  RuntimeConfig cfg;
  cfg.algorithm = "gdp2c";
  cfg.duration = std::chrono::milliseconds(400);
  const auto r = run_threads(graph::classic_ring(6), cfg);
  EXPECT_TRUE(r.everyone_ate());
  EXPECT_EQ(r.exclusion_violations, 0u);
}

TEST(Runtime, DurationStopWorks) {
  RuntimeConfig cfg;
  cfg.algorithm = "gdp1";
  cfg.duration = std::chrono::milliseconds(100);
  const auto r = run_threads(graph::classic_ring(4), cfg);
  EXPECT_GT(r.total_meals, 0u);
  EXPECT_LT(r.elapsed_seconds, 3.0);
}

TEST(Runtime, LatencyPercentilesOrdered) {
  RuntimeConfig cfg;
  cfg.algorithm = "gdp1";
  cfg.target_meals = 2'000;
  cfg.duration = std::chrono::milliseconds(5'000);
  const auto r = run_threads(graph::fig1b(), cfg);
  EXPECT_LE(r.hunger_p50_ns, r.hunger_p99_ns);
  EXPECT_LE(r.hunger_p99_ns, r.hunger_max_ns);
}

TEST(Runtime, RejectsBadConfigs) {
  RuntimeConfig cfg;
  cfg.algorithm = "colored";  // simulation-only baseline
  cfg.target_meals = 10;
  EXPECT_THROW(run_threads(graph::classic_ring(4), cfg), PreconditionError);

  RuntimeConfig none;
  none.algorithm = "gdp1";
  EXPECT_THROW(run_threads(graph::classic_ring(4), none), PreconditionError);  // no stop

  RuntimeConfig bad_m;
  bad_m.algorithm = "gdp1";
  bad_m.target_meals = 10;
  bad_m.m = 2;  // < k
  EXPECT_THROW(run_threads(graph::classic_ring(4), bad_m), PreconditionError);
}

TEST(Runtime, ContentionWorkloadStillExclusive) {
  RuntimeConfig cfg;
  cfg.algorithm = "gdp1";
  cfg.target_meals = 1'000;
  cfg.duration = std::chrono::milliseconds(8'000);
  cfg.eat_work = 200;
  cfg.think_work = 50;
  const auto r = run_threads(graph::parallel_arcs(6), cfg);
  EXPECT_EQ(r.exclusion_violations, 0u);
  EXPECT_GE(r.total_meals, 1'000u);
}

}  // namespace
}  // namespace gdp::runtime
