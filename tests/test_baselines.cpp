// The §1 baselines: where they work, where the generalized setting breaks
// them (experiment E9's backing tests).
#include <gtest/gtest.h>

#include <algorithm>

#include "gdp/algos/algorithm.hpp"
#include "gdp/common/check.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/sim/engine.hpp"
#include "gdp/sim/schedulers/basic.hpp"

namespace gdp::algos {
namespace {

sim::RunResult fair_run(const std::string& name, const graph::Topology& t, std::uint64_t seed,
                        std::uint64_t steps = 60'000) {
  const auto algo = make_algorithm(name);
  sim::LongestWaiting sched;
  rng::Rng rng(seed);
  sim::EngineConfig cfg;
  cfg.max_steps = steps;
  cfg.check_invariants = true;
  return sim::run(*algo, t, sched, rng, cfg);
}

TEST(Ordered, ProgressesOnEveryTopology) {
  for (const auto& t : {graph::classic_ring(5), graph::fig1a(), graph::parallel_arcs(4),
                        graph::ring_with_chord(6), graph::star(6)}) {
    const auto r = fair_run("ordered", t, 1);
    EXPECT_FALSE(r.deadlocked) << t.name();
    EXPECT_GT(r.total_meals, 0u) << t.name();
    EXPECT_TRUE(r.invariant_violation.empty()) << r.invariant_violation;
  }
}

TEST(Ordered, HoldsAndWaitsInsteadOfReleasing) {
  // The ordered baseline never emits kFailedSecond (it waits).
  const auto algo = make_algorithm("ordered");
  const auto t = graph::fig1a();
  sim::RandomUniform sched;
  rng::Rng rng(3);
  sim::EngineConfig cfg;
  cfg.max_steps = 20'000;
  cfg.record_trace = true;
  const auto r = sim::run(*algo, t, sched, rng, cfg);
  for (const auto& e : r.trace) {
    EXPECT_NE(e.event.kind, sim::EventKind::kFailedSecond);
  }
}

TEST(Colored, RequiresCanonicalEvenRing) {
  const auto colored = make_algorithm("colored");
  EXPECT_THROW(colored->initial_state(graph::classic_ring(5)), PreconditionError);  // odd
  EXPECT_THROW(colored->initial_state(graph::fig1a()), PreconditionError);          // not a ring
  EXPECT_NO_THROW(colored->initial_state(graph::classic_ring(6)));
}

TEST(Colored, AlternationPreventsDeadlockOnEvenRings) {
  for (int n : {4, 6, 8, 10}) {
    const auto r = fair_run("colored", graph::classic_ring(n), 17);
    EXPECT_FALSE(r.deadlocked) << "ring(" << n << ")";
    EXPECT_GT(r.total_meals, 0u);
    EXPECT_TRUE(r.everyone_ate());
  }
}

TEST(Arbiter, FifoReservationsAreLockoutFreeInPractice) {
  const auto r = fair_run("arbiter", graph::fig1a(), 23, 80'000);
  EXPECT_TRUE(r.everyone_ate());
  EXPECT_TRUE(r.invariant_violation.empty()) << r.invariant_violation;
  // FIFO reservations keep the meal spread tight.
  const auto [lo, hi] = std::minmax_element(r.meals_of.begin(), r.meals_of.end());
  EXPECT_LT(static_cast<double>(*hi), 3.0 * static_cast<double>(*lo + 1));
}

TEST(Ticket, SafeOnTheClassicRing) {
  for (int n : {3, 5, 8}) {
    const auto r = fair_run("ticket", graph::classic_ring(n), 7);
    EXPECT_FALSE(r.deadlocked) << "ring(" << n << ")";
    EXPECT_GT(r.total_meals, 0u);
  }
}

TEST(Ticket, DeadlocksOnTheGeneralizedTriangle) {
  // n-1 = 5 tickets cannot prevent the 3-philosopher circular wait on
  // fig1a's doubled triangle; with enough runs the deadlock manifests.
  bool deadlocked = false;
  for (std::uint64_t seed = 0; seed < 30 && !deadlocked; ++seed) {
    const auto algo = make_algorithm("ticket");
    sim::RandomUniform sched;
    rng::Rng rng(seed);
    sim::EngineConfig cfg;
    cfg.max_steps = 40'000;
    const auto r = sim::run(*algo, graph::fig1a(), sched, rng, cfg);
    deadlocked = r.deadlocked;
  }
  EXPECT_TRUE(deadlocked) << "ticket baseline should deadlock off the classic ring";
}

TEST(Ticket, DeadlockStateIsCircularWait) {
  // When it deadlocks, every ticketed philosopher holds its left fork and
  // waits for a right fork held by another ticketed philosopher.
  sim::RunResult dead;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const auto algo = make_algorithm("ticket");
    sim::RandomUniform sched;
    rng::Rng rng(seed);
    sim::EngineConfig cfg;
    cfg.max_steps = 40'000;
    dead = sim::run(*algo, graph::fig1a(), sched, rng, cfg);
    if (dead.deadlocked) break;
  }
  ASSERT_TRUE(dead.deadlocked);
  const auto& s = dead.final_state;
  int holders = 0;
  for (ForkId f = 0; f < 3; ++f) holders += !s.fork(f).free();
  EXPECT_EQ(holders, 3);  // all three forks held, nobody can get a second
}

TEST(Baselines, OrderedMatchesGdp1PostConvergenceThroughput) {
  // §4 reduces converged GDP1 to hierarchical allocation; their fair-run
  // throughputs on a ring should be within 3x of each other.
  const auto ring = graph::classic_ring(6);
  const auto ordered = fair_run("ordered", ring, 5, 100'000);
  const auto gdp1 = fair_run("gdp1", ring, 5, 100'000);
  EXPECT_GT(ordered.total_meals, 0u);
  EXPECT_GT(gdp1.total_meals, 0u);
  const double ratio = static_cast<double>(ordered.total_meals) /
                       static_cast<double>(std::max<std::uint64_t>(gdp1.total_meals, 1));
  EXPECT_GT(ratio, 1.0 / 3.0);
  EXPECT_LT(ratio, 3.0);
}

}  // namespace
}  // namespace gdp::algos
