// Adversary synthesis: the model checker's fair-EC witnesses, played back
// as live schedulers, must actually trap the algorithms the theorems say
// they trap — and must not exist where progress is certified.
#include <gtest/gtest.h>

#include "gdp/algos/algorithm.hpp"
#include "gdp/common/check.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/mdp/fair_progress.hpp"
#include "gdp/mdp/witness.hpp"
#include "gdp/sim/engine.hpp"

namespace gdp::mdp {
namespace {

/// Finds the first reachable fair EC of the non-eating fragment.
std::optional<EndComponent> fair_witness(const Model& model) {
  const auto mecs = maximal_end_components(model);
  const auto reached = reachable_states(model);
  for (const EndComponent& mec : mecs) {
    if (!mec.fair(model.num_phils())) continue;
    for (StateId s : mec.states) {
      if (reached[s]) return mec;
    }
  }
  return std::nullopt;
}

TEST(Witness, SynthesizedAdversaryTrapsLr1OnParallel3) {
  const auto t = graph::parallel_arcs(3);
  const auto lr1 = algos::make_algorithm("lr1");
  StateIndex index;
  const Model model = explore_indexed(*lr1, t, 1'000'000, index);
  const auto ec = fair_witness(model);
  ASSERT_TRUE(ec.has_value());

  int trapped = 0;
  for (int trial = 0; trial < 20; ++trial) {
    WitnessScheduler sched(model, index, *ec);
    rng::Rng rng(static_cast<std::uint64_t>(500 + trial));
    sim::EngineConfig cfg;
    cfg.max_steps = 30'000;
    const auto r = sim::run(*lr1, t, sched, rng, cfg);
    if (sched.entered_component()) {
      // From the moment the run enters the EC, nobody ever eats; meals can
      // only have happened before entry.
      EXPECT_GT(sched.steps_inside(), 10'000u);
      ++trapped;
    }
  }
  // The attractor reaches the EC with positive probability; across 20
  // trials, entering at least a few times is overwhelmingly likely.
  EXPECT_GT(trapped, 2);
}

TEST(Witness, TrappedRunsStopEatingPermanently) {
  const auto t = graph::parallel_arcs(3);
  const auto lr1 = algos::make_algorithm("lr1");
  StateIndex index;
  const Model model = explore_indexed(*lr1, t, 1'000'000, index);
  const auto ec = fair_witness(model);
  ASSERT_TRUE(ec.has_value());

  for (int trial = 0; trial < 10; ++trial) {
    WitnessScheduler sched(model, index, *ec);
    rng::Rng rng(static_cast<std::uint64_t>(900 + trial));
    sim::EngineConfig cfg;
    cfg.max_steps = 20'000;
    cfg.record_trace = true;
    const auto r = sim::run(*lr1, t, sched, rng, cfg);
    if (!sched.entered_component()) continue;
    // Locate the last meal: it must precede the long in-component suffix.
    std::uint64_t last_meal = 0;
    for (const auto& e : r.trace) {
      if (e.event.kind == sim::EventKind::kTookSecond) last_meal = e.step;
    }
    EXPECT_LT(last_meal + sched.steps_inside(), r.steps + 1);
  }
}

TEST(Witness, FairRotationInsideTheComponent) {
  const auto t = graph::parallel_arcs(3);
  const auto lr1 = algos::make_algorithm("lr1");
  StateIndex index;
  const Model model = explore_indexed(*lr1, t, 1'000'000, index);
  const auto ec = fair_witness(model);
  ASSERT_TRUE(ec.has_value());

  WitnessScheduler sched(model, index, *ec);
  rng::Rng rng(123);
  sim::EngineConfig cfg;
  cfg.max_steps = 40'000;
  const auto r = sim::run(*lr1, t, sched, rng, cfg);
  if (sched.entered_component()) {
    // Every philosopher keeps acting (the witness is a *fair* EC).
    EXPECT_LT(r.max_sched_gap, 1'000u);
  }
}

TEST(Witness, NoFairWitnessWhereProgressCertified) {
  for (const char* name : {"gdp1", "gdp2c"}) {
    const auto algo = algos::make_algorithm(name);
    const auto t = graph::parallel_arcs(3);
    const Model model = explore(*algo, t, 1'000'000);
    EXPECT_FALSE(fair_witness(model).has_value()) << name;
  }
}

TEST(Witness, ExplorerIndexRoundTrips) {
  const auto t = graph::classic_ring(3);
  const auto lr1 = algos::make_algorithm("lr1");
  StateIndex index;
  const Model model = explore_indexed(*lr1, t, 1'000'000, index);
  EXPECT_EQ(index.size(), model.num_states());
  // The initial state's packed encoding maps to id 0, and the stored key
  // decodes back to the initial configuration.
  const auto it = index.find(lr1->initial_state(t));
  ASSERT_NE(it, index.end());
  EXPECT_EQ(it->second, model.initial());
  EXPECT_EQ(index.codec().decode(it->first), lr1->initial_state(t));
}

TEST(Witness, RejectsEmptyComponent) {
  const auto t = graph::classic_ring(3);
  const auto lr1 = algos::make_algorithm("lr1");
  StateIndex index;
  const Model model = explore_indexed(*lr1, t, 1'000'000, index);
  EXPECT_THROW(WitnessScheduler(model, index, EndComponent{}), PreconditionError);
}

}  // namespace
}  // namespace gdp::mdp
