// Differential testing: the sampling engine against the exact MDP, and the
// packed state-key codec against the legacy byte encoding.
//
// On systems small enough to explore completely, every configuration a
// Monte-Carlo run visits must be a state the model checker enumerated —
// the two executions of the same step relation (sampled vs exhaustive)
// cannot disagree on reachability. And per the paper's deadlock-freedom
// claim (GDP and LR never hold-and-wait), no lr2/gdp1 campaign may ever
// report a deadlock under any scheduler.
//
// The codec guard: gdp::mdp::KeyCodec drops fields its layout proves
// constant, so it could in principle alias states the old byte-vector
// SimState::encode distinguishes. Cross-checking both encodings on every
// state live runs visit pins the packed keys to the reference encoding —
// equal bytes iff equal packed key, and decode() inverts exactly.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "gdp/exp/runner.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/mdp/key.hpp"
#include "gdp/mdp/par/par.hpp"
#include "gdp/rng/rng.hpp"
#include "gdp/sim/engine.hpp"
#include "gdp/sim/schedulers/basic.hpp"
#include "state_recorder.hpp"

namespace gdp {
namespace {

using testutil::StateRecorder;

void expect_visits_subset_of_model(const std::string& algo_name, const graph::Topology& t) {
  SCOPED_TRACE(algo_name + " on " + t.name());
  const auto algo = algos::make_algorithm(algo_name);

  // The reference model comes from the parallel explorer — the campaign's
  // sampled visits are checked against the same Model object the parallel
  // verdicts certify (bit-identical to the sequential one by contract).
  mdp::StateIndex index;
  const mdp::Model model = mdp::par::explore_indexed(*algo, t, index);
  ASSERT_FALSE(model.truncated()) << "model must be complete for the subset check";

  std::size_t visited_total = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sim::RandomUniform inner;
    StateRecorder recorder(inner);
    rng::Rng rng(seed);
    sim::EngineConfig cfg;
    cfg.max_steps = 4'000;
    const auto r = sim::run(*algo, t, recorder, rng, cfg);

    for (const sim::SimState& state : recorder.states()) {
      ASSERT_TRUE(index.count(state))
          << "engine visited a state the exhaustive exploration never reached";
    }
    EXPECT_TRUE(index.count(r.final_state));
    visited_total += recorder.visited().size();
  }
  // Sanity: the runs actually moved through a nontrivial state set.
  EXPECT_GT(visited_total, 10u);
}

TEST(Differential, EngineVisitsAreReachableInModel) {
  expect_visits_subset_of_model("gdp1", graph::classic_ring(3));
  expect_visits_subset_of_model("gdp1", graph::parallel_arcs(3));
  expect_visits_subset_of_model("lr1", graph::classic_ring(4));
  expect_visits_subset_of_model("lr2", graph::parallel_arcs(3));
  expect_visits_subset_of_model("gdp2", graph::classic_ring(3));
}

/// The codec can never silently drop a distinguishing field: on every state
/// a campaign of live runs visits, the packed key and the legacy bytes must
/// induce the same equality relation, and the stored key must decode back
/// to the exact configuration (which re-encodes to the same bytes).
void expect_codec_matches_legacy_encode(const std::string& algo_name, const graph::Topology& t) {
  SCOPED_TRACE(algo_name + " on " + t.name());
  const auto algo = algos::make_algorithm(algo_name);
  const mdp::KeyCodec codec(*algo, t);

  std::map<std::vector<std::uint8_t>, mdp::PackedKey> legacy_to_packed;
  std::set<std::vector<std::uint8_t>> packed_words_seen;

  std::size_t states_total = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    // Alternate benign and adversarial scheduling so the runs reach books
    // in every phase combination, not just the fair-path states.
    sim::RandomUniform uniform;
    sim::LongestWaiting longest;
    sim::Scheduler& inner = (seed % 2 == 0) ? static_cast<sim::Scheduler&>(uniform)
                                            : static_cast<sim::Scheduler&>(longest);
    StateRecorder recorder(inner);
    rng::Rng rng(seed * 77);
    sim::EngineConfig cfg;
    cfg.max_steps = 5'000;
    (void)sim::run(*algo, t, recorder, rng, cfg);

    for (const sim::SimState& state : recorder.states()) {
      std::vector<std::uint8_t> legacy;
      state.encode(legacy);
      const mdp::PackedKey packed = codec.encode(state);

      // Same state bytes -> same packed key; new state bytes -> new key.
      const auto [it, inserted] = legacy_to_packed.emplace(legacy, packed);
      ASSERT_TRUE(it->second == packed) << "equal legacy bytes, distinct packed keys";
      if (inserted) {
        const std::vector<std::uint8_t> words(
            reinterpret_cast<const std::uint8_t*>(packed.data()),
            reinterpret_cast<const std::uint8_t*>(packed.data() + packed.words()));
        ASSERT_TRUE(packed_words_seen.insert(words).second)
            << "distinct legacy bytes collided in the packed encoding";
      }

      // decode() inverts exactly; the round-tripped state re-encodes to the
      // same legacy bytes.
      const sim::SimState decoded = codec.decode(packed);
      ASSERT_EQ(decoded, state);
      std::vector<std::uint8_t> legacy_again;
      decoded.encode(legacy_again);
      ASSERT_EQ(legacy_again, legacy);
    }
    states_total += recorder.states().size();
  }
  EXPECT_GT(states_total, 50u) << "campaign too short to exercise the codec";
}

TEST(Differential, PackedKeysMatchLegacyEncodeOnLr2Campaign) {
  expect_codec_matches_legacy_encode("lr2", graph::parallel_arcs(3));
  expect_codec_matches_legacy_encode("lr2", graph::classic_ring(4));
  expect_codec_matches_legacy_encode("lr2", graph::ring_with_chord(4));
}

TEST(Differential, PackedKeysMatchLegacyEncodeOnGdp2Campaign) {
  expect_codec_matches_legacy_encode("gdp2", graph::classic_ring(3));
  expect_codec_matches_legacy_encode("gdp2", graph::ring_with_pendant(3));
  expect_codec_matches_legacy_encode("gdp2c", graph::parallel_arcs(3));
}

TEST(Differential, PackedKeysMatchLegacyEncodeOnBaselines) {
  // The aux-word path (arbiter queue, ticket box) and the numberless
  // baselines go through the same guard.
  expect_codec_matches_legacy_encode("arbiter", graph::classic_ring(3));
  expect_codec_matches_legacy_encode("ticket", graph::classic_ring(3));
  expect_codec_matches_legacy_encode("ordered", graph::ring_with_chord(4));
}

// The paper's deadlock-freedom claim, exercised through gdp::exp: GDP and
// LR philosophers never hold-and-wait, so no campaign cell may report a
// deadlock under any adversary — benign or malicious.
TEST(Differential, NoLr2OrGdp1CampaignEverDeadlocks) {
  exp::CampaignSpec spec;
  spec.name = "deadlock-freedom";
  spec.seed = 11;
  spec.trials = 4;
  spec.topologies = {graph::classic_ring(3), graph::classic_ring(5), graph::ring_with_chord(4),
                     graph::parallel_arcs(3), graph::fig1a()};
  spec.algorithms = {"lr2", "gdp1"};
  spec.schedulers = {exp::longest_waiting(), exp::uniform(), exp::eat_avoider()};
  spec.engine.max_steps = 10'000;
  const auto result = exp::run_campaign(spec, 4);

  ASSERT_EQ(result.cells.size(), 30u);
  for (const auto& cell : result.cells) {
    EXPECT_EQ(cell.deadlocks(), 0u) << cell.label();
    // Under the benign schedulers progress is also certain (Theorem 3 for
    // GDP; LR2 needs malice to fail) — the eat-avoider cells only assert
    // deadlock-freedom, since starving LR2 there is the paper's point.
    const bool benign = cell.cell().scheduler < 2;
    if (benign) EXPECT_EQ(cell.progressed(), cell.trials()) << cell.label();
  }
}

}  // namespace
}  // namespace gdp
