// Differential testing: the sampling engine against the exact MDP.
//
// On systems small enough to explore completely, every configuration a
// Monte-Carlo run visits must be a state the model checker enumerated —
// the two executions of the same step relation (sampled vs exhaustive)
// cannot disagree on reachability. And per the paper's deadlock-freedom
// claim (GDP and LR never hold-and-wait), no lr2/gdp1 campaign may ever
// report a deadlock under any scheduler.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "gdp/exp/runner.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/mdp/par/par.hpp"
#include "gdp/rng/rng.hpp"
#include "gdp/sim/engine.hpp"
#include "gdp/sim/schedulers/basic.hpp"

namespace gdp {
namespace {

/// Scheduler decorator that encodes every configuration the engine hands it
/// (pick() sees each pre-step state; the final state is checked separately).
class StateRecorder final : public sim::Scheduler {
 public:
  explicit StateRecorder(sim::Scheduler& inner) : inner_(inner) {}

  std::string name() const override { return "recorder(" + inner_.name() + ")"; }
  void reset(const graph::Topology& t) override { inner_.reset(t); }

  PhilId pick(const graph::Topology& t, const sim::SimState& state, const sim::RunView& view,
              rng::RandomSource& rng) override {
    state.encode(key_);
    visited_.insert(key_);
    return inner_.pick(t, state, view, rng);
  }

  const std::set<std::vector<std::uint8_t>>& visited() const { return visited_; }

 private:
  sim::Scheduler& inner_;
  std::vector<std::uint8_t> key_;
  std::set<std::vector<std::uint8_t>> visited_;
};

void expect_visits_subset_of_model(const std::string& algo_name, const graph::Topology& t) {
  SCOPED_TRACE(algo_name + " on " + t.name());
  const auto algo = algos::make_algorithm(algo_name);

  // The reference model comes from the parallel explorer — the campaign's
  // sampled visits are checked against the same Model object the parallel
  // verdicts certify (bit-identical to the sequential one by contract).
  mdp::StateIndex index;
  const mdp::Model model = mdp::par::explore_indexed(*algo, t, index);
  ASSERT_FALSE(model.truncated()) << "model must be complete for the subset check";

  std::size_t visited_total = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sim::RandomUniform inner;
    StateRecorder recorder(inner);
    rng::Rng rng(seed);
    sim::EngineConfig cfg;
    cfg.max_steps = 4'000;
    const auto r = sim::run(*algo, t, recorder, rng, cfg);

    for (const auto& key : recorder.visited()) {
      ASSERT_TRUE(index.count(key))
          << "engine visited a state the exhaustive exploration never reached";
    }
    std::vector<std::uint8_t> final_key;
    r.final_state.encode(final_key);
    EXPECT_TRUE(index.count(final_key));
    visited_total += recorder.visited().size();
  }
  // Sanity: the runs actually moved through a nontrivial state set.
  EXPECT_GT(visited_total, 10u);
}

TEST(Differential, EngineVisitsAreReachableInModel) {
  expect_visits_subset_of_model("gdp1", graph::classic_ring(3));
  expect_visits_subset_of_model("gdp1", graph::parallel_arcs(3));
  expect_visits_subset_of_model("lr1", graph::classic_ring(4));
  expect_visits_subset_of_model("lr2", graph::parallel_arcs(3));
  expect_visits_subset_of_model("gdp2", graph::classic_ring(3));
}

// The paper's deadlock-freedom claim, exercised through gdp::exp: GDP and
// LR philosophers never hold-and-wait, so no campaign cell may report a
// deadlock under any adversary — benign or malicious.
TEST(Differential, NoLr2OrGdp1CampaignEverDeadlocks) {
  exp::CampaignSpec spec;
  spec.name = "deadlock-freedom";
  spec.seed = 11;
  spec.trials = 4;
  spec.topologies = {graph::classic_ring(3), graph::classic_ring(5), graph::ring_with_chord(4),
                     graph::parallel_arcs(3), graph::fig1a()};
  spec.algorithms = {"lr2", "gdp1"};
  spec.schedulers = {exp::longest_waiting(), exp::uniform(), exp::eat_avoider()};
  spec.engine.max_steps = 10'000;
  const auto result = exp::run_campaign(spec, 4);

  ASSERT_EQ(result.cells.size(), 30u);
  for (const auto& cell : result.cells) {
    EXPECT_EQ(cell.deadlocks(), 0u) << cell.label();
    // Under the benign schedulers progress is also certain (Theorem 3 for
    // GDP; LR2 needs malice to fail) — the eat-avoider cells only assert
    // deadlock-freedom, since starving LR2 there is the paper's point.
    const bool benign = cell.cell().scheduler < 2;
    if (benign) EXPECT_EQ(cell.progressed(), cell.trials()) << cell.label();
  }
}

}  // namespace
}  // namespace gdp
