// Shared test helper: a scheduler decorator that records every distinct
// configuration the engine hands it. pick() sees each pre-step state;
// callers that also care about the run's final state check it separately.
// Deduplication is on the legacy byte encoding (SimState::encode), which
// keeps the recorded set independent of the packed-key codec the recorder
// is used to test.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "gdp/sim/scheduler.hpp"
#include "gdp/sim/state.hpp"

namespace gdp::testutil {

class StateRecorder final : public sim::Scheduler {
 public:
  explicit StateRecorder(sim::Scheduler& inner) : inner_(inner) {}

  std::string name() const override { return "recorder(" + inner_.name() + ")"; }
  void reset(const graph::Topology& t) override { inner_.reset(t); }

  PhilId pick(const graph::Topology& t, const sim::SimState& state, const sim::RunView& view,
              rng::RandomSource& rng) override {
    state.encode(key_);
    if (visited_.insert(key_).second) states_.push_back(state);
    return inner_.pick(t, state, view, rng);
  }

  /// Legacy byte encodings of the distinct states seen so far.
  const std::set<std::vector<std::uint8_t>>& visited() const { return visited_; }
  /// The distinct states themselves, in first-seen order.
  const std::vector<sim::SimState>& states() const { return states_; }

 private:
  sim::Scheduler& inner_;
  std::vector<std::uint8_t> key_;
  std::set<std::vector<std::uint8_t>> visited_;
  std::vector<sim::SimState> states_;
};

}  // namespace gdp::testutil
