// RNG substrate: determinism, stream independence, distribution sanity,
// scripted forcing.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "gdp/common/check.hpp"
#include "gdp/rng/rng.hpp"
#include "gdp/rng/scripted.hpp"
#include "gdp/rng/splitmix.hpp"
#include "gdp/rng/xoshiro.hpp"

namespace gdp::rng {
namespace {

TEST(SplitMix, KnownSequenceIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next();
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro, JumpProducesDisjointPrefix) {
  Xoshiro256StarStar a(7);
  Xoshiro256StarStar b(7);
  b.jump();
  std::set<std::uint64_t> first;
  for (int i = 0; i < 1000; ++i) first.insert(a());
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(first.count(b()));
}

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, Uniform01InRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const int v = rng.uniform_int(3, 17);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 17);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, UniformIntRejectsEmptyRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(5, 4), PreconditionError);
}

TEST(Rng, UniformIntRoughlyUniform) {
  Rng rng(2026);
  std::map<int, int> counts;
  const int trials = 60000;
  for (int i = 0; i < trials; ++i) ++counts[rng.uniform_int(1, 6)];
  for (int v = 1; v <= 6; ++v) {
    EXPECT_NEAR(counts[v], trials / 6, trials / 60) << "value " << v;
  }
}

TEST(Rng, ChooseSideBias) {
  Rng rng(11);
  int lefts = 0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) lefts += rng.choose_side(0.25) == Side::kLeft;
  EXPECT_NEAR(static_cast<double>(lefts) / trials, 0.25, 0.02);
}

TEST(Rng, ChooseSideDegenerate) {
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.choose_side(1.0), Side::kLeft);
    EXPECT_EQ(rng.choose_side(0.0), Side::kRight);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) hits += rng.bernoulli(0.7);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.7, 0.02);
}

TEST(Rng, SplitStreamsDiffer) {
  Rng parent(77);
  Rng c0 = parent.split(0);
  Rng c1 = parent.split(1);
  int equal = 0;
  for (int i = 0; i < 128; ++i) equal += c0.next_u64() == c1.next_u64();
  EXPECT_EQ(equal, 0);
}

TEST(Rng, SplitIsReproducible) {
  Rng p1(77);
  Rng p2(77);
  Rng a = p1.split(5);
  Rng b = p2.split(5);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DrawCountTracksSemanticDraws) {
  Rng rng(3);
  EXPECT_EQ(rng.draw_count(), 0u);
  rng.choose_side(0.5);
  rng.uniform_int(1, 10);
  EXPECT_GE(rng.draw_count(), 2u);
}

TEST(Scripted, ForcesSidesInOrder) {
  ScriptedRng rng(1);
  rng.force_side(Side::kRight);
  rng.force_side(Side::kLeft);
  EXPECT_EQ(rng.choose_side(0.5), Side::kRight);
  EXPECT_EQ(rng.choose_side(0.5), Side::kLeft);
  EXPECT_FALSE(rng.fell_through());
}

TEST(Scripted, ForcesIntsAndChecksRange) {
  ScriptedRng rng(1);
  rng.force_int(4);
  EXPECT_EQ(rng.uniform_int(1, 6), 4);
  rng.force_int(9);
  EXPECT_THROW(rng.uniform_int(1, 6), PreconditionError);
}

TEST(Scripted, KindMismatchThrows) {
  ScriptedRng rng(1);
  rng.force_int(2);
  EXPECT_THROW(rng.choose_side(0.5), PreconditionError);
}

TEST(Scripted, FallsThroughAfterScript) {
  ScriptedRng rng(99);
  rng.force_side(Side::kLeft);
  EXPECT_EQ(rng.choose_side(0.5), Side::kLeft);
  (void)rng.choose_side(0.5);
  EXPECT_TRUE(rng.fell_through());
  EXPECT_EQ(rng.pending(), 0u);
}

TEST(Scripted, PendingCountsDownPerForcedDraw) {
  ScriptedRng rng(1);
  rng.force_side(Side::kLeft);
  rng.force_int(2);
  rng.force_side(Side::kRight);
  EXPECT_EQ(rng.pending(), 3u);
  (void)rng.choose_side(0.5);
  EXPECT_EQ(rng.pending(), 2u);
  (void)rng.uniform_int(1, 3);
  EXPECT_EQ(rng.pending(), 1u);
  (void)rng.choose_side(0.5);
  EXPECT_EQ(rng.pending(), 0u);
  EXPECT_FALSE(rng.fell_through());
}

TEST(Scripted, ExhaustedScriptMatchesFreshFallbackRng) {
  // Forced draws never touch the fallback stream, so after exhaustion the
  // scripted source continues exactly like a fresh Rng with the same seed.
  ScriptedRng scripted(4242);
  scripted.force_side(Side::kRight);
  scripted.force_int(3);
  (void)scripted.choose_side(0.5);
  (void)scripted.uniform_int(1, 6);
  EXPECT_FALSE(scripted.fell_through());

  Rng plain(4242);
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(scripted.choose_side(0.3), plain.choose_side(0.3)) << i;
    ASSERT_EQ(scripted.uniform_int(1, 10), plain.uniform_int(1, 10)) << i;
    ASSERT_EQ(scripted.bernoulli(0.6), plain.bernoulli(0.6)) << i;
    ASSERT_EQ(scripted.next_u64(), plain.next_u64()) << i;
  }
  EXPECT_TRUE(scripted.fell_through());
}

TEST(Scripted, UnscriptableDrawsBypassThePendingScript) {
  // Only choose_side/uniform_int can be forced; bernoulli and next_u64 go
  // straight to the fallback and must not consume (or trip over) the queue.
  ScriptedRng rng(7);
  rng.force_side(Side::kRight);
  (void)rng.bernoulli(0.5);
  (void)rng.next_u64();
  EXPECT_EQ(rng.pending(), 1u);
  EXPECT_TRUE(rng.fell_through());  // the bypassing draws used the fallback
  EXPECT_EQ(rng.choose_side(0.5), Side::kRight);
  EXPECT_EQ(rng.pending(), 0u);
}

}  // namespace
}  // namespace gdp::rng
