// Clean counterpart: work goes through the shared pool's parallel_for, and
// hardware_concurrency (a query, not a thread) stays allowed.
#include <cstdint>
#include <thread>
#include <vector>

namespace fixture {

void parallel_for(std::size_t n, int threads, void (*body)(std::uint32_t));

void fan_out(std::uint32_t n, std::vector<std::uint64_t>* out) {
  static std::vector<std::uint64_t>* sink = nullptr;
  sink = out;
  const int workers = static_cast<int>(std::thread::hardware_concurrency());
  parallel_for(n, workers, [](std::uint32_t i) { (*sink)[i] = i; });
}

}  // namespace fixture
