// Clean counterpart: extract keys, sort, then iterate the sorted vector —
// the canonical-order idiom the rule pushes toward. Also shows the
// order-free suppression form.
#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

std::vector<std::string> render_counts(
    const std::unordered_map<std::string, std::uint64_t>& counts) {
  std::unordered_map<std::string, std::uint64_t> local = counts;
  std::vector<std::string> names;
  // gdp-lint: allow(unordered-iteration) — key harvest only; sorted below
  for (const auto& [name, n] : local) {
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  std::vector<std::string> lines;
  for (const std::string& name : names) {
    lines.push_back(name + "=" + std::to_string(local.at(name)));
  }
  return lines;
}

}  // namespace fixture
