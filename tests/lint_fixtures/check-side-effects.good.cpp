// Clean counterpart: the mutation happens in real code; the check only
// reads — identical behaviour with assertions compiled out. Comparison
// operators (==, <=) are reads, not assignments.
#include <cstdint>

#define GDP_DCHECK(cond) ((void)0)

namespace fixture {

std::uint64_t drain(std::uint64_t* cursor, std::uint64_t end) {
  std::uint64_t sum = 0;
  while (*cursor < end) {
    ++*cursor;
    GDP_DCHECK(*cursor <= end);
    GDP_DCHECK(sum == sum);
    sum += *cursor;
  }
  return sum;
}

}  // namespace fixture
