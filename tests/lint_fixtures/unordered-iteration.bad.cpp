// Seeded violation: range-for over an unordered container feeding output —
// hash order leaks straight into what the caller sees.
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

std::vector<std::string> render_counts(
    const std::unordered_map<std::string, std::uint64_t>& counts) {
  std::unordered_map<std::string, std::uint64_t> local = counts;
  std::vector<std::string> lines;
  for (const auto& [name, n] : local) {
    lines.push_back(name + "=" + std::to_string(n));
  }
  return lines;
}

}  // namespace fixture
