// Seeded violation: ad-hoc std::jthread fan-out outside gdp/common/pool.* —
// bypasses the pool's exception funnel and park-at-index determinism.
#include <cstdint>
#include <thread>
#include <vector>

namespace fixture {

void fan_out(std::uint32_t n, std::vector<std::uint64_t>& out) {
  std::vector<std::jthread> threads;
  for (std::uint32_t i = 0; i < n; ++i) {
    threads.emplace_back([i, &out] { out[i] = i; });
  }
}

}  // namespace fixture
