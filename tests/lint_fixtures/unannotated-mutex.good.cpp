// Clean counterpart: the annotated gdp::common::Mutex with GDP_GUARDED_BY
// naming what it protects — visible to Clang's -Wthread-safety.
#include <cstdint>
#include <vector>

#define GDP_GUARDED_BY(x)
#define GDP_EXCLUDES(...)

namespace common {
class Mutex {
 public:
  void lock() {}
  void unlock() {}
};
class MutexLock {
 public:
  explicit MutexLock(Mutex& mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() { mu_.unlock(); }

 private:
  Mutex& mu_;
};
}  // namespace common

namespace fixture {

class Ledger {
 public:
  void record(std::uint64_t v) GDP_EXCLUDES(mu_) {
    common::MutexLock hold(mu_);
    entries_.push_back(v);
  }

 private:
  common::Mutex mu_;
  std::vector<std::uint64_t> entries_ GDP_GUARDED_BY(mu_);
};

}  // namespace fixture
