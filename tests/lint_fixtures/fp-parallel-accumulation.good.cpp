// Clean counterpart: each worker writes a disjoint indexed slot; the fold
// happens after the pool joins, on one thread, in index order.
#include <cstdint>
#include <vector>

namespace fixture {

void parallel_for(std::size_t n, int threads, void (*body)(std::uint32_t));

double mean(const std::vector<double>& xs, int threads) {
  std::vector<double> parked(xs.size(), 0.0);
  parallel_for(xs.size(), threads, [&](std::uint32_t i) {
    parked[i] = xs[i];
  });
  double total = 0.0;
  for (std::size_t i = 0; i < parked.size(); ++i) total += parked[i];
  return total / static_cast<double>(xs.size());
}

}  // namespace fixture
