// Seeded violation: wall-clock time feeding a result the campaign layer
// treats as reproducible. Exercised by gdp_lint.py --self-test.
#include <chrono>
#include <cstdint>

namespace fixture {

std::uint64_t trial_seed_from_clock() {
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

}  // namespace fixture
