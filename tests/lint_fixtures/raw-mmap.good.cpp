// Clean counterpart: file-backed reads go through the fingerprint-verified
// chunk store; the one low-level site carries a justified suppression.
#include <sys/mman.h>

#include <cstddef>
#include <cstdint>
#include <string>

namespace fixture {

struct ChunkedModel {
  std::uint64_t fingerprint() const { return 0; }
};

ChunkedModel load_checkpoint(const std::string& path);

std::uint64_t verified_fingerprint(const std::string& path) {
  const ChunkedModel model = load_checkpoint(path);
  return model.fingerprint();
}

void drop_mapping(void* addr, std::size_t bytes) {
  // gdp-lint: allow(raw-mmap) — fixture: paired teardown of a mapping whose
  // bytes were fingerprint-verified on load; the owner calls exactly once.
  ::munmap(addr, bytes);
}

}  // namespace fixture
