// Seeded violation corpus for the obs-outside-span rule: clock TYPE state
// held outside gdp/obs/ — a hand-rolled stopwatch whose readings bypass the
// run report's timing plane. (No ::now() call on these lines; live reads
// are the wall-clock rule's findings.)
#include <chrono>

class HomegrownStopwatch {
 public:
  void arm(std::chrono::steady_clock::time_point at) { start_ = at; }

 private:
  std::chrono::steady_clock::time_point start_;
};
