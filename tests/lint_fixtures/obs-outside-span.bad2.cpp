// Second seeded violation: a hand-rolled event buffer stamping entries with
// clock-type state outside gdp/obs/ — a private timeline whose events never
// reach the trace file and whose timestamps tempt result-side use. (No
// ::now() call on these lines; live reads are the wall-clock rule's
// findings.)
#include <chrono>
#include <vector>

struct HomegrownEvent {
  const char* name;
  std::chrono::steady_clock::time_point at;
};

class HomegrownTimeline {
 public:
  void record(HomegrownEvent e) { events_.push_back(e); }

 private:
  std::vector<HomegrownEvent> events_;
};
