// Seeded violation: a side effect inside GDP_DCHECK — the argument is
// unevaluated under NDEBUG, so debug and release runs diverge.
#include <cstdint>

#define GDP_DCHECK(cond) ((void)0)

namespace fixture {

std::uint64_t drain(std::uint64_t* cursor, std::uint64_t end) {
  std::uint64_t sum = 0;
  while (*cursor < end) {
    GDP_DCHECK(++*cursor <= end);
    sum += *cursor;
  }
  return sum;
}

}  // namespace fixture
