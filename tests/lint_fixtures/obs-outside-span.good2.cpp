// Clean counterpart to bad2: event tracing through the obs timeline plane.
// obs::TimedSpan lands the phase in both the run report and the trace;
// timeline::instant / counter_sample emit one-off events and value lanes on
// the calling thread's track — no clock type is held outside gdp/obs/.
#include "gdp/obs/obs.hpp"
#include "gdp/obs/timeline.hpp"

inline void traced_phase(std::size_t items) {
  gdp::obs::TimedSpan span("fixture.phase");
  gdp::obs::timeline::instant("fixture.milestone");
  gdp::obs::timeline::counter_sample("fixture.items", static_cast<double>(items));
}
