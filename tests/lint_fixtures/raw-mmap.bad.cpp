// Seeded violation: a raw mmap outside gdp/mdp/store/ — memory-mapped I/O
// with no fingerprint verification can hand back silently corrupt bytes.
#include <sys/mman.h>

#include <cstddef>

namespace fixture {

const void* map_table(int fd, std::size_t bytes) {
  void* addr = ::mmap(nullptr, bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  return addr == MAP_FAILED ? nullptr : addr;
}

void drop_table(void* addr, std::size_t bytes) { ::munmap(addr, bytes); }

}  // namespace fixture
