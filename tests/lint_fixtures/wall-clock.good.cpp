// Clean counterpart: seed-derived randomness plus a justified timing-only
// suppression — both forms the rule accepts.
#include <chrono>
#include <cstdint>

namespace fixture {

std::uint64_t trial_seed(std::uint64_t campaign_seed, std::uint64_t trial) {
  std::uint64_t z = campaign_seed + 0x9e3779b97f4a7c15ull * (trial + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  return z ^ (z >> 31);
}

double phase_seconds() {
  const auto t0 = std::chrono::steady_clock::now();  // gdp-lint: allow(wall-clock) — timing-only, never feeds results
  const auto t1 = std::chrono::steady_clock::now();  // gdp-lint: allow(wall-clock) — timing-only, never feeds results
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace fixture
