// Seeded violation: a mutex member with no GDP_GUARDED_BY client anywhere
// in the file — the static race analysis cannot tell what it protects.
#include <cstdint>
#include <mutex>
#include <vector>

namespace fixture {

class Ledger {
 public:
  void record(std::uint64_t v) {
    std::lock_guard<std::mutex> hold(mu_);
    entries_.push_back(v);
  }

 private:
  std::mutex mu_;
  std::vector<std::uint64_t> entries_;
};

}  // namespace fixture
