// Seeded violation: shared floating-point accumulator mutated inside a
// parallel region — FP addition is not associative, so the result depends
// on interleaving and thread count.
#include <cstdint>
#include <vector>

namespace fixture {

void parallel_for(std::size_t n, int threads, void (*body)(std::uint32_t));

double mean(const std::vector<double>& xs, int threads) {
  double total = 0.0;
  parallel_for(xs.size(), threads, [&](std::uint32_t i) {
    total += xs[i];
  });
  return total / static_cast<double>(xs.size());
}

}  // namespace fixture
