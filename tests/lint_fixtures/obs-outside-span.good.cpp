// Clean counterpart: phase timing through obs::Span (the timing plane),
// plain chrono durations for backoff tuning — neither involves a clock
// type, so no stopwatch state exists outside gdp/obs/.
#include <chrono>

#include "gdp/obs/obs.hpp"

inline double timed_phase() {
  gdp::obs::Span span("fixture.phase");
  const std::chrono::milliseconds backoff{100};
  (void)backoff;
  return span.seconds();
}
