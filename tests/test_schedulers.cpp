// Adversary behaviour: basic fair schedulers, the generic EatAvoider, and
// the §5 starvation adversary.
#include <gtest/gtest.h>

#include "gdp/algos/algorithm.hpp"
#include "gdp/common/check.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/sim/engine.hpp"
#include "gdp/sim/schedulers/basic.hpp"
#include "gdp/sim/schedulers/eat_avoider.hpp"
#include "gdp/sim/schedulers/starve_victim.hpp"

namespace gdp::sim {
namespace {

TEST(RoundRobin, CyclesInOrder) {
  RoundRobin sched;
  const auto t = graph::classic_ring(4);
  sched.reset(t);
  RunView view;
  std::vector<std::uint64_t> steps_of(4, 0), last(4, 0);
  view.steps_of = &steps_of;
  view.last_scheduled = &last;
  rng::Rng rng(1);
  SimState dummy;
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(sched.pick(t, dummy, view, rng), i % 4);
  }
}

TEST(EatAvoider, StaysFairByConstruction) {
  const auto algo = algos::make_algorithm("lr1");
  const auto t = graph::fig1a();
  EatAvoider sched(*algo);
  rng::Rng rng(1);
  EngineConfig cfg;
  cfg.max_steps = 50'000;
  const auto r = run(*algo, t, sched, rng, cfg);
  EXPECT_LE(r.max_sched_gap, 64u * 6u);
}

TEST(EatAvoider, CannotStopGdp1) {
  // Theorem 3 in adversarial practice: the avoider is forced to concede
  // meals on every topology.
  for (const auto& t : {graph::classic_ring(5), graph::fig1a(), graph::parallel_arcs(3),
                        graph::ring_with_chord(5)}) {
    const auto algo = algos::make_algorithm("gdp1");
    EatAvoider sched(*algo);
    rng::Rng rng(9);
    EngineConfig cfg;
    cfg.max_steps = 80'000;
    const auto r = run(*algo, t, sched, rng, cfg);
    EXPECT_GT(r.total_meals, 0u) << t.name();
  }
}

TEST(EatAvoider, HurtsLr1MoreOffTheRing) {
  // The avoider exploits multi-sharer refreshes: LR1's meal rate under it
  // should drop sharply from ring(6) to fig1a (same philosopher count).
  auto meals_under_avoider = [](const graph::Topology& t) {
    const auto algo = algos::make_algorithm("lr1");
    EatAvoider sched(*algo);
    rng::Rng rng(12);
    EngineConfig cfg;
    cfg.max_steps = 120'000;
    return run(*algo, t, sched, rng, cfg).total_meals;
  };
  const auto ring_meals = meals_under_avoider(graph::classic_ring(6));
  const auto fig_meals = meals_under_avoider(graph::fig1a());
  EXPECT_LT(static_cast<double>(fig_meals), 0.8 * static_cast<double>(ring_meals));
}

TEST(StarveVictim, Gdp1VictimStarvesFarLongerThanGdp2c) {
  // §5's scenario vs Theorem 4's cure, measured as max hunger of the victim.
  auto victim_hunger = [](const std::string& name, std::uint64_t seed) {
    const auto algo = algos::make_algorithm(name);
    StarveVictim sched(*algo, StarveVictim::Config{.victim = 0, .hard_cap = 0});
    rng::Rng rng(seed);
    EngineConfig cfg;
    cfg.max_steps = 120'000;
    const auto t = graph::classic_ring(3);
    const auto r = run(*algo, t, sched, rng, cfg);
    return r.max_hunger_of[0];
  };
  double gdp1_total = 0.0;
  double gdp2c_total = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    gdp1_total += static_cast<double>(victim_hunger("gdp1", seed));
    gdp2c_total += static_cast<double>(victim_hunger("gdp2c", seed));
  }
  EXPECT_GT(gdp1_total, 3.0 * gdp2c_total)
      << "gdp1=" << gdp1_total << " gdp2c=" << gdp2c_total;
}

TEST(StarveVictim, SystemStillProgresses) {
  const auto algo = algos::make_algorithm("gdp1");
  StarveVictim sched(*algo, StarveVictim::Config{.victim = 1, .hard_cap = 0});
  rng::Rng rng(2);
  EngineConfig cfg;
  cfg.max_steps = 60'000;
  const auto r = run(*algo, graph::classic_ring(4), sched, rng, cfg);
  EXPECT_GT(r.total_meals, 0u);  // progress held (Theorem 3), only P1 suffers
}

TEST(StarveVictim, RejectsBadVictim) {
  const auto algo = algos::make_algorithm("gdp1");
  StarveVictim sched(*algo, StarveVictim::Config{.victim = 9, .hard_cap = 0});
  EXPECT_THROW(sched.reset(graph::classic_ring(3)), PreconditionError);
}

}  // namespace
}  // namespace gdp::sim
