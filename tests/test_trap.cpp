// The scripted §3 adversary (TrapFig1a): exact replication of the paper's
// winning strategy, its probability bound, and its fairness.
#include <gtest/gtest.h>

#include "gdp/algos/algorithm.hpp"
#include "gdp/common/check.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/sim/engine.hpp"
#include "gdp/sim/schedulers/trap_fig1a.hpp"
#include "gdp/stats/ci.hpp"

namespace gdp::sim {
namespace {

struct TrapOutcome {
  int trials = 0;
  int trapped = 0;        // still in the trap at the end, zero meals
  std::uint64_t min_rounds = ~std::uint64_t{0};
  bool trapped_but_ate = false;  // must never happen
  std::uint64_t worst_gap = 0;
};

TrapOutcome run_trials(const std::string& algo_name, int trials, std::uint64_t steps) {
  TrapOutcome out;
  out.trials = trials;
  const auto t = graph::fig1a();
  for (int i = 0; i < trials; ++i) {
    const auto algo = algos::make_algorithm(algo_name);
    TrapFig1a trap;
    rng::Rng rng(static_cast<std::uint64_t>(9000 + i));
    EngineConfig cfg;
    cfg.max_steps = steps;
    const auto r = run(*algo, t, trap, rng, cfg);
    out.worst_gap = std::max(out.worst_gap, r.max_sched_gap);
    if (trap.trapped()) {
      if (r.total_meals != 0) {
        out.trapped_but_ate = true;
      } else {
        ++out.trapped;
        out.min_rounds = std::min(out.min_rounds, trap.rounds());
      }
    }
  }
  return out;
}

TEST(TrapFig1a, RequiresTheRightTopology) {
  TrapFig1a trap;
  EXPECT_THROW(trap.reset(graph::classic_ring(6)), PreconditionError);
  EXPECT_NO_THROW(trap.reset(graph::fig1a()));
}

TEST(TrapFig1a, NoMealEverWhileTrapped) {
  const auto out = run_trials("lr1", 120, 30'000);
  EXPECT_FALSE(out.trapped_but_ate);
  EXPECT_GT(out.trapped, 0);
}

TEST(TrapFig1a, SuccessRateBeatsThePaperQuarterBound) {
  // The paper: P(no-progress computation) >= 1/4 (before the stubbornness
  // discount). Our adaptive setup succeeds in roughly half the trials; the
  // Wilson 95% lower bound must clear 1/4.
  const auto out = run_trials("lr1", 300, 20'000);
  const auto ci = stats::wilson(static_cast<std::uint64_t>(out.trapped),
                                static_cast<std::uint64_t>(out.trials));
  EXPECT_GT(ci.low, 0.25) << "trapped " << out.trapped << "/" << out.trials;
}

TEST(TrapFig1a, TrappedRunsCycleForever) {
  const auto out = run_trials("lr1", 60, 40'000);
  ASSERT_GT(out.trapped, 0);
  EXPECT_GT(out.min_rounds, 100u);  // thousands of rotations in 40k steps
}

TEST(TrapFig1a, ScheduleIsFairWhileTrapped) {
  // Every philosopher acts at least once per rotation; gaps stay bounded by
  // a few stubbornness budgets.
  const auto t = graph::fig1a();
  const auto algo = algos::make_algorithm("lr1");
  TrapFig1a trap;
  rng::Rng rng(4242);
  EngineConfig cfg;
  cfg.max_steps = 50'000;
  const auto r = run(*algo, t, trap, rng, cfg);
  if (trap.trapped()) {
    EXPECT_EQ(r.total_meals, 0u);
    EXPECT_LT(r.max_sched_gap, 2'000u);
  }
}

TEST(TrapFig1a, DefeatsLr2Too) {
  // Nobody eats => guest books stay empty => Cond is vacuous: the same
  // schedule kills LR2 (the paper's Theorem 2 observation). fig1a satisfies
  // the Theorem 2 premise.
  const auto out = run_trials("lr2", 200, 20'000);
  EXPECT_FALSE(out.trapped_but_ate);
  const auto ci = stats::wilson(static_cast<std::uint64_t>(out.trapped),
                                static_cast<std::uint64_t>(out.trials));
  EXPECT_GT(ci.low, 0.25);
}

TEST(TrapFig1a, FallbackIsFairAndProgresses) {
  // Failed trials degrade into a fair scheduler under which LR1 progresses.
  const auto t = graph::fig1a();
  int failed_trials = 0;
  int failed_with_meals = 0;
  for (int i = 0; i < 120; ++i) {
    const auto algo = algos::make_algorithm("lr1");
    TrapFig1a trap;
    rng::Rng rng(static_cast<std::uint64_t>(100 + i));
    EngineConfig cfg;
    cfg.max_steps = 40'000;
    const auto r = run(*algo, t, trap, rng, cfg);
    if (!trap.trapped()) {
      ++failed_trials;
      failed_with_meals += r.total_meals > 0;
    }
  }
  ASSERT_GT(failed_trials, 0);
  EXPECT_EQ(failed_with_meals, failed_trials);
}

TEST(TrapFig1a, CannotTrapGdp1) {
  // Scheduling GDP1 with the LR-shaped trap makes no sense structurally —
  // the trap machine immediately fails over to the fair fallback, under
  // which GDP1 progresses (Theorem 3).
  const auto t = graph::fig1a();
  const auto algo = algos::make_algorithm("gdp1");
  TrapFig1a trap;
  rng::Rng rng(77);
  EngineConfig cfg;
  cfg.max_steps = 60'000;
  const auto r = run(*algo, t, trap, rng, cfg);
  EXPECT_GT(r.total_meals, 0u);
}

TEST(TrapFig1a, StubbornnessBudgetGrowsFairly) {
  // With a tiny base budget, setup fails more often but still never yields
  // a trapped-and-ate run.
  const auto t = graph::fig1a();
  int trapped = 0;
  for (int i = 0; i < 100; ++i) {
    const auto algo = algos::make_algorithm("lr1");
    TrapFig1a trap(TrapFig1a::Config{.stubborn_base = 2, .stubborn_inc = 1});
    rng::Rng rng(static_cast<std::uint64_t>(31 + i));
    EngineConfig cfg;
    cfg.max_steps = 20'000;
    const auto r = run(*algo, t, trap, rng, cfg);
    if (trap.trapped()) {
      EXPECT_EQ(r.total_meals, 0u);
      ++trapped;
    }
  }
  EXPECT_GT(trapped, 0);
}

}  // namespace
}  // namespace gdp::sim
