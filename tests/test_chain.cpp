// Quantitative chain analysis under the uniform fair scheduler.
#include <gtest/gtest.h>

#include "gdp/algos/algorithm.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/mdp/chain_analysis.hpp"
#include "gdp/mdp/fair_progress.hpp"

namespace gdp::mdp {
namespace {

Model explore_named(const std::string& algo, const graph::Topology& t) {
  const auto a = algos::make_algorithm(algo);
  return explore(*a, t, 2'000'000);
}

TEST(Chain, Lr1RingReachesEatingAlmostSurely) {
  const Model m = explore_named("lr1", graph::classic_ring(3));
  const auto analysis = analyze_uniform_chain(m);
  EXPECT_NEAR(analysis.p_reach, 1.0, 1e-6);
  EXPECT_TRUE(analysis.expected_converged);
  EXPECT_GT(analysis.expected_steps, 3.0);   // needs >= wake+choose+take+take
  EXPECT_LT(analysis.expected_steps, 100.0);
}

TEST(Chain, UniformSchedulerIsProbabilisticallyFairEverywhere) {
  // Even where a *crafted* fair adversary defeats LR1 (fig1a), the uniform
  // scheduler reaches E with probability 1 — adversarial failure is not
  // average-case failure.
  const Model m = explore_named("lr1", graph::parallel_arcs(3));
  EXPECT_EQ(check_fair_progress(m).verdict, Verdict::kProgressFails);
  const auto analysis = analyze_uniform_chain(m);
  EXPECT_NEAR(analysis.p_reach, 1.0, 1e-6);
}

TEST(Chain, Gdp1SlowerThanOrderedFromColdStart) {
  // GDP1 pays for symmetry breaking; the ordered baseline starts pre-broken.
  const auto ring = graph::classic_ring(3);
  const auto gdp1 = analyze_uniform_chain(explore_named("gdp1", ring));
  const auto ordered = analyze_uniform_chain(explore_named("ordered", ring));
  EXPECT_TRUE(gdp1.expected_converged);
  EXPECT_TRUE(ordered.expected_converged);
  EXPECT_GT(gdp1.expected_steps, 0.9 * ordered.expected_steps);
}

TEST(ReachCurve, MonotoneAndConvergesToPReach) {
  const Model m = explore_named("lr2", graph::classic_ring(3));
  const auto curve = reach_curve(m, 400);
  ASSERT_EQ(curve.size(), 401u);
  EXPECT_DOUBLE_EQ(curve[0], 0.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    ASSERT_GE(curve[i] + 1e-12, curve[i - 1]) << "curve must be monotone at " << i;
  }
  EXPECT_GT(curve.back(), 0.99);
}

TEST(ReachCurve, FasterForSmallerSystems) {
  const auto small = reach_curve(explore_named("lr1", graph::classic_ring(3)), 60);
  const auto large = reach_curve(explore_named("lr1", graph::classic_ring(4)), 60);
  // After 30 uniform steps the 3-ring should be at least as far along.
  EXPECT_GE(small[30], large[30] - 0.05);
}

TEST(Chain, EatingInitialShortCircuits) {
  // Degenerate guard: if the initial state were eating, results are trivial.
  const Model m = explore_named("gdp1", graph::classic_ring(3));
  EXPECT_FALSE(m.eating(m.initial()));
  const auto analysis = analyze_uniform_chain(m);
  EXPECT_GT(analysis.iterations, 0u);
}

}  // namespace
}  // namespace gdp::mdp
