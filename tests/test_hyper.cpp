// Hypergraph topologies and the GDP-H extension (§6 future work).
#include <gtest/gtest.h>

#include "gdp/algos/gdp_hyper.hpp"
#include "gdp/common/check.hpp"
#include "gdp/graph/hypergraph.hpp"

namespace gdp::algos {
namespace {

using graph::HyperTopology;
using graph::hyper_random;
using graph::hyper_ring;

TEST(HyperTopology, BuilderValidates) {
  HyperTopology::Builder b;
  b.add_forks(4);
  EXPECT_THROW(b.add_phil({2}), PreconditionError);        // arity < 2
  EXPECT_THROW(b.add_phil({1, 1}), PreconditionError);     // duplicate
  EXPECT_THROW(b.add_phil({1, 9}), PreconditionError);     // out of range
  b.add_phil({0, 1, 2});
  const HyperTopology t = std::move(b).build();
  EXPECT_EQ(t.num_phils(), 1);
  EXPECT_EQ(t.arity(0), 3);
  EXPECT_EQ(t.degree(3), 0);
}

TEST(HyperRing, Structure) {
  const HyperTopology t = hyper_ring(6, 3);
  EXPECT_EQ(t.num_forks(), 6);
  EXPECT_EQ(t.num_phils(), 6);
  for (PhilId p = 0; p < 6; ++p) EXPECT_EQ(t.arity(p), 3);
  for (ForkId f = 0; f < 6; ++f) EXPECT_EQ(t.degree(f), 3);
  EXPECT_THROW(hyper_ring(4, 4), PreconditionError);  // d <= k-1
}

TEST(HyperRandom, RespectsArity) {
  rng::Rng rng(5);
  const HyperTopology t = hyper_random(8, 10, 4, rng);
  EXPECT_EQ(t.num_phils(), 10);
  for (PhilId p = 0; p < 10; ++p) {
    EXPECT_EQ(t.arity(p), 4);
    const auto& forks = t.forks_of(p);
    for (std::size_t i = 1; i < forks.size(); ++i) EXPECT_LT(forks[i - 1], forks[i]);
  }
}

TEST(GdpHyper, DegeneratesToPairwiseCaseAtD2) {
  rng::Rng rng(1);
  HyperConfig cfg;
  cfg.max_steps = 200'000;
  const auto r = run_gdp_hyper(hyper_ring(5, 2), rng, cfg);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_GT(r.total_meals, 0u);
  EXPECT_TRUE(r.everyone_ate());
}

TEST(GdpHyper, ProgressOnThickRings) {
  for (const auto& [k, d] : std::vector<std::pair<int, int>>{{6, 3}, {8, 3}, {8, 4}, {9, 5}}) {
    rng::Rng rng(static_cast<std::uint64_t>(10 * k + d));
    HyperConfig cfg;
    cfg.max_steps = 400'000;
    const auto r = run_gdp_hyper(hyper_ring(k, d), rng, cfg);
    EXPECT_FALSE(r.deadlocked) << "k=" << k << " d=" << d;
    EXPECT_GT(r.total_meals, 0u) << "k=" << k << " d=" << d;
    EXPECT_TRUE(r.everyone_ate()) << "k=" << k << " d=" << d;
  }
}

TEST(GdpHyper, ProgressOnRandomHypergraphs) {
  rng::Rng topo_rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    const HyperTopology t = hyper_random(7, 9, 3, topo_rng);
    rng::Rng rng(static_cast<std::uint64_t>(trial));
    HyperConfig cfg;
    cfg.max_steps = 300'000;
    const auto r = run_gdp_hyper(t, rng, cfg);
    EXPECT_FALSE(r.deadlocked) << trial;
    EXPECT_GT(r.total_meals, 0u) << trial;
  }
}

TEST(GdpHyper, RoundRobinSchedulerAlsoWorks) {
  rng::Rng rng(3);
  HyperConfig cfg;
  cfg.max_steps = 300'000;
  cfg.random_scheduler = false;
  const auto r = run_gdp_hyper(hyper_ring(7, 3), rng, cfg);
  EXPECT_GT(r.total_meals, 0u);
  EXPECT_TRUE(r.everyone_ate());
}

TEST(GdpHyper, StopAfterMealsWorks) {
  rng::Rng rng(4);
  HyperConfig cfg;
  cfg.max_steps = 1'000'000;
  cfg.stop_after_meals = 50;
  const auto r = run_gdp_hyper(hyper_ring(6, 3), rng, cfg);
  EXPECT_GE(r.total_meals, 50u);
  EXPECT_LT(r.steps, cfg.max_steps);
}

TEST(GdpHyper, RejectsSmallM) {
  rng::Rng rng(5);
  HyperConfig cfg;
  cfg.m = 3;  // < k = 6
  EXPECT_THROW(run_gdp_hyper(hyper_ring(6, 3), rng, cfg), PreconditionError);
}

TEST(GdpHyper, FirstMealRecorded) {
  rng::Rng rng(6);
  HyperConfig cfg;
  cfg.max_steps = 200'000;
  const auto r = run_gdp_hyper(hyper_ring(6, 3), rng, cfg);
  ASSERT_GT(r.total_meals, 0u);
  EXPECT_LT(r.first_meal_step, r.steps);
}

}  // namespace
}  // namespace gdp::algos
