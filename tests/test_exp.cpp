// The gdp::exp campaign layer: grid enumeration, deterministic seeding, the
// work-stealing Runner's thread-count-independence contract, aggregate
// folding, probes, skip/validation and error propagation.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

#include "gdp/common/check.hpp"
#include "gdp/exp/runner.hpp"
#include "gdp/exp/seeding.hpp"
#include "gdp/graph/builders.hpp"

namespace gdp::exp {
namespace {

CampaignSpec tiny_spec() {
  CampaignSpec spec;
  spec.name = "test";
  spec.seed = 7;
  spec.trials = 5;
  spec.topologies = {graph::classic_ring(3), graph::parallel_arcs(3)};
  spec.algorithms = {"lr1", "gdp1"};
  spec.schedulers = {longest_waiting(), uniform()};
  spec.engine.max_steps = 3'000;
  return spec;
}

TEST(Seeding, ReproducibleAndSeedSensitive) {
  EXPECT_EQ(trial_seed(1, 2, 3), trial_seed(1, 2, 3));
  EXPECT_NE(trial_seed(1, 2, 3), trial_seed(2, 2, 3));
  EXPECT_NE(trial_seed(1, 2, 3), trial_seed(1, 3, 3));
  EXPECT_NE(trial_seed(1, 2, 3), trial_seed(1, 2, 4));
}

TEST(Seeding, DistinctAcrossRealisticGrid) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t campaign = 0; campaign < 4; ++campaign) {
    for (std::uint64_t cell = 0; cell < 64; ++cell) {
      for (std::uint64_t trial = 0; trial < 64; ++trial) {
        seen.insert(trial_seed(campaign, cell, trial));
      }
    }
  }
  EXPECT_EQ(seen.size(), 4u * 64u * 64u);
}

TEST(Grid, CellEnumerationIsTopologyMajorRowMajor) {
  const auto spec = tiny_spec();
  EXPECT_EQ(num_cells(spec), 8u);
  const auto grid = cells(spec);
  ASSERT_EQ(grid.size(), 8u);
  for (std::size_t i = 0; i < grid.size(); ++i) EXPECT_EQ(grid[i].index, i);
  // Innermost dimension is the scheduler here (configs collapse to 1).
  EXPECT_EQ(grid[0].scheduler, 0u);
  EXPECT_EQ(grid[1].scheduler, 1u);
  EXPECT_EQ(grid[1].algorithm, 0u);
  EXPECT_EQ(grid[2].algorithm, 1u);
  EXPECT_EQ(grid[3].topology, 0u);
  EXPECT_EQ(grid[4].topology, 1u);
}

TEST(Grid, LabelsIncludeConfigOnlyWhenSwept) {
  auto spec = tiny_spec();
  EXPECT_EQ(cell_label(spec, cells(spec)[0]), "ring(3)/lr1/longest-waiting");
  spec.configs = {algos::AlgoConfig{.m = 3}, algos::AlgoConfig{.m = 9}};
  const auto grid = cells(spec);
  EXPECT_EQ(num_cells(spec), 16u);
  EXPECT_EQ(cell_label(spec, grid[1]), "ring(3)/lr1/longest-waiting[m=9]");
}

TEST(Grid, ValidateRejectsDegenerateSpecs) {
  auto spec = tiny_spec();
  spec.trials = 0;
  EXPECT_THROW(validate(spec), PreconditionError);
  spec = tiny_spec();
  spec.algorithms.clear();
  EXPECT_THROW(validate(spec), PreconditionError);
  spec = tiny_spec();
  spec.algorithms.push_back("no-such-algorithm");
  EXPECT_THROW(validate(spec), PreconditionError);
  spec = tiny_spec();
  spec.schedulers.push_back(SchedulerSpec{"broken", nullptr, nullptr});
  EXPECT_THROW(validate(spec), PreconditionError);
  EXPECT_NO_THROW(validate(tiny_spec()));
}

// The core gdp::exp contract: aggregates are bit-identical regardless of
// thread count, including an oversubscribed pool with stealing in play.
TEST(RunnerTest, AggregateOutputIsThreadCountIndependent) {
  const auto spec = tiny_spec();
  const auto serial = run_campaign(spec, 1);
  const auto parallel = run_campaign(spec, 8);
  EXPECT_EQ(serial.csv(), parallel.csv());
  EXPECT_EQ(serial.json(), parallel.json());
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_EQ(serial.cells[i].meals().mean(), parallel.cells[i].meals().mean()) << i;
    EXPECT_EQ(serial.cells[i].max_hunger().max(), parallel.cells[i].max_hunger().max()) << i;
  }
}

TEST(RunnerTest, RerunIsReproducibleAndSeedSensitive) {
  const auto spec = tiny_spec();
  EXPECT_EQ(run_campaign(spec, 2).csv(), run_campaign(spec, 3).csv());
  auto reseeded = spec;
  reseeded.seed = spec.seed + 1;
  EXPECT_NE(run_campaign(reseeded, 2).csv(), run_campaign(spec, 2).csv());
}

TEST(RunnerTest, MoreThreadsThanTasks) {
  auto spec = tiny_spec();
  spec.trials = 1;
  spec.topologies = {graph::classic_ring(3)};
  spec.algorithms = {"gdp1"};
  spec.schedulers = {longest_waiting()};
  const auto result = Runner(RunnerOptions{64}).run(spec);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_EQ(result.at(0).trials(), 1u);
  EXPECT_GT(result.at(0).meals().mean(), 0.0);
}

TEST(RunnerTest, ProbeCountsTrapOutcomes) {
  CampaignSpec spec;
  spec.name = "trap";
  spec.seed = 3;
  spec.trials = 20;
  spec.topologies = {graph::fig1a()};
  spec.algorithms = {"lr1"};
  spec.schedulers = {trap_fig1a()};
  spec.engine.max_steps = 8'000;
  const auto result = run_campaign(spec, 4);
  const auto& cell = result.at(0);
  // The paper lower-bounds the trap's success at 1/4; with 20 trials at
  // >= 1/2 empirically, zero hits would mean the probe is not wired up.
  EXPECT_GT(cell.probe_hits(), 0u);
  EXPECT_LE(cell.probe_hits(), cell.trials());
  const auto ci = cell.probe_ci();
  EXPECT_LE(ci.low, static_cast<double>(cell.probe_hits()) / 20.0);
  EXPECT_GE(ci.high, static_cast<double>(cell.probe_hits()) / 20.0);
}

TEST(RunnerTest, SkipInvalidMarksCellInsteadOfThrowing) {
  CampaignSpec spec;
  spec.trials = 2;
  spec.topologies = {graph::classic_ring(3)};  // odd ring: colored rejects it
  spec.algorithms = {"colored", "gdp1"};
  spec.schedulers = {longest_waiting()};
  spec.engine.max_steps = 1'000;
  EXPECT_THROW(run_campaign(spec, 1), PreconditionError);
  spec.skip_invalid = true;
  const auto result = run_campaign(spec, 2);
  EXPECT_TRUE(result.at(0).skipped());
  EXPECT_EQ(result.at(0).trials(), 0u);
  EXPECT_FALSE(result.at(1).skipped());
  EXPECT_EQ(result.at(1).trials(), 2u);
  EXPECT_NE(result.csv().find(",0,1,"), std::string::npos);  // trials=0, skipped=1
  EXPECT_NE(result.json().find("\"skipped\":true"), std::string::npos);
}

TEST(RunnerTest, WorkerExceptionPropagates) {
  auto spec = tiny_spec();
  spec.schedulers = {SchedulerSpec{
      "bomb",
      [](const algos::Algorithm&) -> std::unique_ptr<sim::Scheduler> {
        throw std::runtime_error("boom");
      },
      nullptr}};
  EXPECT_THROW(run_campaign(spec, 4), std::runtime_error);
  EXPECT_THROW(run_campaign(spec, 1), std::runtime_error);
}

TEST(AggregateTest, DeadlockedCellsHaveNoFirstMealSamples) {
  CampaignSpec spec;
  spec.trials = 3;
  spec.topologies = {graph::fig1a()};  // ticket deadlocks off the ring
  spec.algorithms = {"ticket"};
  spec.schedulers = {longest_waiting()};
  spec.engine.max_steps = 5'000;
  const auto result = run_campaign(spec, 2);
  const auto& cell = result.at(0);
  EXPECT_EQ(cell.deadlocks(), cell.trials());
  EXPECT_EQ(cell.no_meal_trials(), cell.trials());
  EXPECT_EQ(cell.first_meal().count(), 0u);
  EXPECT_EQ(cell.progressed(), 0u);
  EXPECT_EQ(cell.everyone_ate(), 0u);
  EXPECT_DOUBLE_EQ(cell.everyone_ate_ci().low, 0.0);
}

TEST(AggregateTest, SummarizeReducesRunResult) {
  sim::RunResult r;
  r.steps = 100;
  r.total_meals = 7;
  r.meals_of = {3, 4};
  r.first_meal_step = 12;
  r.first_meal_of = {12, 20};
  r.max_hunger_of = {30, 8};
  r.max_sched_gap = 5;
  const TrialOutcome one = summarize(r, 1);
  EXPECT_EQ(one.meals, 7u);
  EXPECT_EQ(one.first_meal, 12u);
  EXPECT_EQ(one.max_hunger, 30u);
  EXPECT_EQ(one.tracked_meals, 4u);
  EXPECT_EQ(one.tracked_hunger, 8u);
  EXPECT_TRUE(one.everyone_ate);
  EXPECT_FALSE(one.deadlocked);
  // Out-of-range tracked philosopher clamps to the last one.
  EXPECT_EQ(summarize(r, 9).tracked_meals, 4u);
}

TEST(AggregateTest, CsvEscapesCommaBearingLabels) {
  CampaignSpec spec;
  spec.trials = 1;
  spec.topologies = {graph::fig1a()};  // name "fig1a(6ph,3f)" contains a comma
  spec.algorithms = {"gdp1"};
  spec.schedulers = {longest_waiting()};
  spec.engine.max_steps = 500;
  const auto result = run_campaign(spec, 1);
  EXPECT_NE(result.csv().find("\"fig1a(6ph,3f)/gdp1/longest-waiting\""), std::string::npos);
  const auto lines = result.csv();
  EXPECT_EQ(static_cast<int>(std::count(lines.begin(), lines.end(), '\n')), 2);
}

TEST(AggregateTest, HungerQuantilesAreExactOrderStatistics) {
  CellAggregate agg(Cell{}, "synthetic");
  for (std::uint64_t h : {30u, 10u, 40u, 20u}) {
    TrialOutcome t;
    t.max_hunger = h;
    agg.fold(t);
  }
  // Nearest-rank on the sorted samples {10, 20, 30, 40}: never a bucket
  // artifact, never outside the observed range.
  EXPECT_DOUBLE_EQ(agg.hunger_quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(agg.hunger_quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(agg.hunger_quantile(0.75), 30.0);
  EXPECT_DOUBLE_EQ(agg.hunger_quantile(0.99), 40.0);
  EXPECT_DOUBLE_EQ(agg.hunger_quantile(1.0), 40.0);
  // The render histogram spans the observed range, not the step budget.
  const auto hist = agg.hunger_histogram(4);
  EXPECT_EQ(hist.count(), 4u);
  EXPECT_DOUBLE_EQ(hist.bucket_hi(3), 41.0);

  CellAggregate empty(Cell{}, "empty");
  EXPECT_DOUBLE_EQ(empty.hunger_quantile(0.5), 0.0);
}

TEST(AggregateTest, JsonEscapesControlCharactersInNames) {
  CampaignSpec spec;
  spec.name = "camp\naign\t\"x\"\x01";
  spec.trials = 1;
  spec.topologies = {graph::classic_ring(3)};
  spec.algorithms = {"gdp1"};
  spec.schedulers = {longest_waiting()};
  spec.engine.max_steps = 100;
  const auto json = run_campaign(spec, 1).json();
  EXPECT_NE(json.find("camp\\naign\\t\\\"x\\\"\\u0001"), std::string::npos);
  EXPECT_EQ(json.find('\n'), json.size() - 1);  // only the trailing newline
}

TEST(AggregateTest, ResultAtChecksRange) {
  const auto result = run_campaign(tiny_spec(), 2);
  EXPECT_THROW(result.at(result.cells.size()), PreconditionError);
}

}  // namespace
}  // namespace gdp::exp
