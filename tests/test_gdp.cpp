// Deeper GDP behaviour: nr dynamics, symmetry breaking, the §4 probability
// bound, and the difference between GDP1 and the ordered-forks ideal it
// converges to.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "gdp/algos/algorithm.hpp"
#include "gdp/algos/gdp1.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/sim/engine.hpp"
#include "gdp/sim/schedulers/basic.hpp"

namespace gdp::algos {
namespace {

double factorial(int n) {
  double f = 1.0;
  for (int i = 2; i <= n; ++i) f *= i;
  return f;
}

/// The paper's lower bound for all-distinct random numbering:
/// m! / (m^k (m-k)!)  (§4, proof of Theorem 3).
double all_distinct_probability(int m, int k) {
  return factorial(m) / (std::pow(static_cast<double>(m), k) * factorial(m - k));
}

TEST(SymmetryBound, MatchesDirectSampling) {
  rng::Rng rng(31337);
  for (const auto& [m, k] : std::vector<std::pair<int, int>>{{3, 3}, {5, 3}, {8, 4}, {10, 5}}) {
    const int trials = 40000;
    int distinct = 0;
    std::vector<int> draw(static_cast<std::size_t>(k));
    for (int trial = 0; trial < trials; ++trial) {
      for (int i = 0; i < k; ++i) draw[static_cast<std::size_t>(i)] = rng.uniform_int(1, m);
      std::sort(draw.begin(), draw.end());
      distinct += std::adjacent_find(draw.begin(), draw.end()) == draw.end();
    }
    const double expected = all_distinct_probability(m, k);
    EXPECT_NEAR(static_cast<double>(distinct) / trials, expected, 0.015)
        << "m=" << m << " k=" << k;
  }
}

TEST(SymmetryBound, PositiveWheneverMGeqK) {
  for (int k = 2; k <= 8; ++k) {
    for (int m = k; m <= k + 4; ++m) {
      EXPECT_GT(all_distinct_probability(m, k), 0.0);
    }
  }
}

TEST(NrDynamics, ValuesStayInRange) {
  const auto gdp1 = make_algorithm("gdp1", AlgoConfig{.m = 5});
  const auto t = graph::fig1a();
  sim::RandomUniform sched;
  rng::Rng rng(99);
  sim::EngineConfig cfg;
  cfg.max_steps = 50'000;
  const auto result = sim::run(*gdp1, t, sched, rng, cfg);
  for (ForkId f = 0; f < t.num_forks(); ++f) {
    EXPECT_LE(result.final_state.fork(f).nr, 5);
  }
  EXPECT_GT(result.total_meals, 0u);
}

TEST(NrDynamics, OnlyHoldersRenumber) {
  // Every kRenumbered event must come from the philosopher holding the fork.
  const auto gdp1 = make_algorithm("gdp1");
  const auto t = graph::classic_ring(4);
  sim::RandomUniform sched;
  rng::Rng rng(7);
  sim::EngineConfig cfg;
  cfg.max_steps = 20'000;
  cfg.record_trace = true;
  const auto result = sim::run(*gdp1, t, sched, rng, cfg);
  for (const auto& entry : result.trace) {
    if (entry.event.kind == sim::EventKind::kRenumbered) {
      EXPECT_NE(entry.event.fork, kNoFork);
    }
  }
}

TEST(NrDynamics, AdjacentDistinctImpliesOrderedBehaviour) {
  // Force a fully distinct numbering; GDP1 then never renumbers, acting as
  // a hierarchical allocator (the paper's T ∩ C_h --F->_1 E argument).
  Gdp1 gdp1(AlgoConfig{.m = 10});
  const auto t = graph::classic_ring(4);
  auto s = gdp1.initial_state(t);
  for (ForkId f = 0; f < 4; ++f) s.fork(f).nr = static_cast<std::uint16_t>(f + 1);

  // Run manually from this state and count renumber events.
  sim::RandomUniform sched;
  rng::Rng rng(5);
  int renumbers = 0;
  int meals = 0;
  for (int step = 0; step < 20'000; ++step) {
    const PhilId p = rng.uniform_int(0, 3);
    const auto branches = gdp1.step(t, s, p);
    const auto& chosen = sim::sample_branch(branches, rng);
    renumbers += chosen.event.kind == sim::EventKind::kRenumbered;
    meals += chosen.event.kind == sim::EventKind::kTookSecond;
    s = chosen.next;
  }
  EXPECT_EQ(renumbers, 0);
  EXPECT_GT(meals, 0);
}

TEST(NrDynamics, LargerMBreaksSymmetryFaster) {
  // Average first-meal step should not grow when m grows (fewer collisions).
  const auto t = graph::fig1a();
  auto mean_first_meal = [&](int m) {
    double total = 0.0;
    const int trials = 40;
    for (int i = 0; i < trials; ++i) {
      const auto gdp1 = make_algorithm("gdp1", AlgoConfig{.m = m});
      sim::RandomUniform sched;
      rng::Rng rng(static_cast<std::uint64_t>(1000 * m + i));
      sim::EngineConfig cfg;
      cfg.max_steps = 100'000;
      cfg.stop_after_meals = 1;
      const auto r = sim::run(*gdp1, t, sched, rng, cfg);
      EXPECT_NE(r.first_meal_step, sim::kNever);
      total += static_cast<double>(r.first_meal_step);
    }
    return total / trials;
  };
  const double small_m = mean_first_meal(3);
  const double large_m = mean_first_meal(24);
  EXPECT_LT(large_m, small_m * 1.5);  // loose: larger m must not hurt much
}

TEST(EffectiveM, DefaultsToForkCount) {
  const auto gdp1 = make_algorithm("gdp1");
  EXPECT_EQ(gdp1->effective_m(graph::classic_ring(6)), 6);
  const auto fixed = make_algorithm("gdp1", AlgoConfig{.m = 9});
  EXPECT_EQ(fixed->effective_m(graph::classic_ring(6)), 9);
}

}  // namespace
}  // namespace gdp::algos
