// Topology container and builders: Definition 1 constraints, incidence
// structure, the Figure 1 systems' exact shapes.
#include <gtest/gtest.h>

#include "gdp/common/check.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/graph/dot.hpp"
#include "gdp/sim/state.hpp"
#include "gdp/graph/topology.hpp"
#include "gdp/rng/rng.hpp"

namespace gdp::graph {
namespace {

TEST(Builder, RejectsDegenerateSystems) {
  {
    Topology::Builder b;
    b.add_forks(1);
    EXPECT_THROW(b.add_phil(0, 0), PreconditionError);  // distinct forks
  }
  {
    Topology::Builder b;
    b.add_forks(2);
    EXPECT_THROW(b.add_phil(0, 2), PreconditionError);  // out of range
  }
  {
    Topology::Builder b;
    b.add_forks(2);
    EXPECT_THROW(std::move(b).build(), PreconditionError);  // no philosophers
  }
}

TEST(Builder, AddForksReturnsFirstId) {
  Topology::Builder b;
  EXPECT_EQ(b.add_forks(3), 0);
  EXPECT_EQ(b.add_forks(2), 3);
  EXPECT_THROW(b.add_forks(0), PreconditionError);
}

TEST(ClassicRing, Structure) {
  const Topology t = classic_ring(5);
  EXPECT_EQ(t.num_forks(), 5);
  EXPECT_EQ(t.num_phils(), 5);
  for (PhilId p = 0; p < 5; ++p) {
    EXPECT_EQ(t.left_of(p), p);
    EXPECT_EQ(t.right_of(p), (p + 1) % 5);
    EXPECT_EQ(t.degree(p), 2);
  }
  EXPECT_THROW(classic_ring(1), PreconditionError);
}

TEST(Fig1Systems, MatchThePaperCounts) {
  // "From left to right: 6 philosophers, 3 forks. 12 philosophers, 6 forks.
  //  16 philosophers, 12 forks. 10 philosophers, 9 forks."
  const Topology a = fig1a();
  EXPECT_EQ(a.num_phils(), 6);
  EXPECT_EQ(a.num_forks(), 3);
  const Topology b = fig1b();
  EXPECT_EQ(b.num_phils(), 12);
  EXPECT_EQ(b.num_forks(), 6);
  const Topology c = fig1c();
  EXPECT_EQ(c.num_phils(), 16);
  EXPECT_EQ(c.num_forks(), 12);
  const Topology d = fig1d();
  EXPECT_EQ(d.num_phils(), 10);
  EXPECT_EQ(d.num_forks(), 9);
}

TEST(Fig1a, EveryForkSharedByFour) {
  const Topology t = fig1a();
  for (ForkId f = 0; f < 3; ++f) EXPECT_EQ(t.degree(f), 4);
  // Parallel pairs: P_i and P_{i+3} share both forks.
  for (PhilId p = 0; p < 3; ++p) EXPECT_EQ(t.arc(p), t.arc(p + 3));
}

TEST(ParallelArcs, AllPhilsShareBothForks) {
  const Topology t = parallel_arcs(4);
  EXPECT_EQ(t.num_forks(), 2);
  EXPECT_EQ(t.num_phils(), 4);
  EXPECT_EQ(t.degree(0), 4);
  EXPECT_EQ(t.degree(1), 4);
  for (PhilId p = 0; p < 4; ++p) {
    for (PhilId q = 0; q < 4; ++q) {
      if (p != q) EXPECT_TRUE(t.shares_fork(p, q));
    }
  }
}

TEST(RingWithChord, Thm1Shape) {
  const Topology t = ring_with_chord(6);
  EXPECT_EQ(t.num_forks(), 6);
  EXPECT_EQ(t.num_phils(), 7);
  EXPECT_EQ(t.degree(0), 3);  // the chord endpoint
  EXPECT_EQ(t.degree(3), 3);
  EXPECT_EQ(t.degree(1), 2);
}

TEST(RingWithPendant, Thm1Shape) {
  const Topology t = ring_with_pendant(4);
  EXPECT_EQ(t.num_forks(), 5);
  EXPECT_EQ(t.num_phils(), 5);
  EXPECT_EQ(t.degree(0), 3);
  EXPECT_EQ(t.degree(4), 1);  // the outside fork g
}

TEST(Theta, PathsMeetAtHubs) {
  const Topology t = theta(2, 3, 1);
  // forks: 2 hubs + (2-1) + (3-1) + 0 interior = 5; phils: 2+3+1 = 6.
  EXPECT_EQ(t.num_forks(), 5);
  EXPECT_EQ(t.num_phils(), 6);
  EXPECT_EQ(t.degree(0), 3);
  EXPECT_EQ(t.degree(1), 3);
}

TEST(Theta, MinimalIsParallelArcs) {
  const Topology t = theta(1, 1, 1);
  EXPECT_EQ(t.num_forks(), 2);
  EXPECT_EQ(t.num_phils(), 3);
}

TEST(Star, CenterSharedByAll) {
  const Topology t = star(6);
  EXPECT_EQ(t.num_forks(), 7);
  EXPECT_EQ(t.num_phils(), 6);
  EXPECT_EQ(t.degree(0), 6);
  for (ForkId leaf = 1; leaf <= 6; ++leaf) EXPECT_EQ(t.degree(leaf), 1);
}

TEST(Grid, EdgeCount) {
  const Topology t = grid(3, 4);
  EXPECT_EQ(t.num_forks(), 12);
  EXPECT_EQ(t.num_phils(), 3 * 3 + 4 * 2);  // 3*(4-1) + 4*(3-1) = 17
}

TEST(Complete, PairsOfForks) {
  const Topology t = complete(5);
  EXPECT_EQ(t.num_phils(), 10);
  for (ForkId f = 0; f < 5; ++f) EXPECT_EQ(t.degree(f), 4);
}

TEST(Incidence, SlotsAreConsistent) {
  const Topology t = fig1a();
  for (ForkId f = 0; f < t.num_forks(); ++f) {
    const auto sharers = t.incident(f);
    EXPECT_EQ(static_cast<int>(sharers.size()), t.degree(f));
    for (int slot = 0; slot < static_cast<int>(sharers.size()); ++slot) {
      EXPECT_EQ(t.slot_of(f, sharers[slot]), slot);
    }
  }
  for (PhilId p = 0; p < t.num_phils(); ++p) {
    EXPECT_EQ(t.slot_of(t.left_of(p), p), t.slot_at(p, Side::kLeft));
    EXPECT_EQ(t.slot_of(t.right_of(p), p), t.slot_at(p, Side::kRight));
  }
}

TEST(Accessors, SideAndOtherFork) {
  const Topology t = classic_ring(4);
  EXPECT_EQ(t.side_of(1, 1), Side::kLeft);
  EXPECT_EQ(t.side_of(1, 2), Side::kRight);
  EXPECT_EQ(t.other_fork(1, 1), 2);
  EXPECT_EQ(t.other_fork(1, 2), 1);
  EXPECT_THROW(t.other_fork(1, 3), PreconditionError);
  EXPECT_EQ(other(Side::kLeft), Side::kRight);
  EXPECT_EQ(other(Side::kRight), Side::kLeft);
}

TEST(Neighbors, SharersOfEitherFork) {
  const Topology t = classic_ring(5);
  const auto n = t.neighbors(0);
  EXPECT_EQ(n, (std::vector<PhilId>{1, 4}));
  EXPECT_TRUE(t.shares_fork(0, 1));
  EXPECT_FALSE(t.shares_fork(0, 2));
}

TEST(Dot, PlainExportNamesEveryElement) {
  const Topology t = classic_ring(3);
  const std::string dot = to_dot(t);
  EXPECT_NE(dot.find("graph \"ring(3)\""), std::string::npos);
  for (const char* token : {"f0", "f1", "f2", "P0", "P1", "P2", "f0 -- f1"}) {
    EXPECT_NE(dot.find(token), std::string::npos) << token;
  }
}

TEST(Dot, AnnotatedExportShowsStateDetails) {
  const Topology t = classic_ring(3);
  sim::SimState s;
  s.forks.assign(3, sim::ForkState{});
  s.phils.assign(3, sim::PhilState{});
  s.fork(0).holder = 0;
  s.fork(0).nr = 4;
  s.phil(0).phase = sim::Phase::kEating;  // rendering only; not invariant-checked
  const std::string dot = to_dot(t, s);
  EXPECT_NE(dot.find("nr=4"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=lightgray"), std::string::npos);  // held fork
  EXPECT_NE(dot.find("forestgreen"), std::string::npos);          // eating arc
}

TEST(RandomMultigraph, ConnectedWithRequestedCounts) {
  rng::Rng rng(2001);
  for (int trial = 0; trial < 10; ++trial) {
    const Topology t = random_multigraph(6, 10, rng);
    EXPECT_EQ(t.num_forks(), 6);
    EXPECT_EQ(t.num_phils(), 10);
  }
}

struct BuilderCase {
  std::string label;
  Topology topo;
};

class AllBuilders : public ::testing::TestWithParam<int> {};

Topology builder_case(int index) {
  rng::Rng rng(42);
  switch (index) {
    case 0: return classic_ring(4);
    case 1: return parallel_arcs(3);
    case 2: return fig1a();
    case 3: return fig1b();
    case 4: return fig1c();
    case 5: return fig1d();
    case 6: return ring_with_chord(5);
    case 7: return ring_with_pendant(3);
    case 8: return theta(1, 2, 2);
    case 9: return star(5);
    case 10: return grid(2, 3);
    case 11: return complete(4);
    default: return random_multigraph(5, 8, rng);
  }
}

TEST_P(AllBuilders, SatisfyDefinitionOne) {
  const Topology t = builder_case(GetParam());
  EXPECT_GE(t.num_forks(), 2);
  EXPECT_GE(t.num_phils(), 1);
  int degree_total = 0;
  for (ForkId f = 0; f < t.num_forks(); ++f) degree_total += t.degree(f);
  EXPECT_EQ(degree_total, 2 * t.num_phils());  // every phil has two distinct forks
  for (PhilId p = 0; p < t.num_phils(); ++p) EXPECT_NE(t.left_of(p), t.right_of(p));
}

INSTANTIATE_TEST_SUITE_P(Builders, AllBuilders, ::testing::Range(0, 13));

}  // namespace
}  // namespace gdp::graph
