// Cross-module integration: simulator, adversaries, model checker and
// thread runtime must tell one consistent story about the paper's claims.
#include <gtest/gtest.h>

#include "gdp/algos/algorithm.hpp"
#include "gdp/graph/algorithms.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/mdp/fair_progress.hpp"
#include "gdp/runtime/runtime.hpp"
#include "gdp/sim/engine.hpp"
#include "gdp/sim/schedulers/basic.hpp"
#include "gdp/sim/schedulers/trap_fig1a.hpp"
#include "gdp/stats/jain.hpp"

namespace gdp {
namespace {

graph::Topology fig1_topology(int index) {
  switch (index) {
    case 0: return graph::fig1a();
    case 1: return graph::fig1b();
    case 2: return graph::fig1c();
    default: return graph::fig1d();
  }
}

class Fig1Suite : public ::testing::TestWithParam<int> {};

TEST_P(Fig1Suite, GdpAlgorithmsServeEveryFigureOneSystem) {
  const auto t = fig1_topology(GetParam());
  for (const char* name : {"gdp1", "gdp2", "gdp2c"}) {
    const auto algo = algos::make_algorithm(name);
    sim::LongestWaiting sched;
    rng::Rng rng(17);
    sim::EngineConfig cfg;
    cfg.max_steps = 200'000;
    cfg.check_invariants = true;
    const auto r = sim::run(*algo, t, sched, rng, cfg);
    EXPECT_TRUE(r.invariant_violation.empty()) << name << ": " << r.invariant_violation;
    EXPECT_GT(r.total_meals, 0u) << name << " on " << t.name();
    EXPECT_TRUE(r.everyone_ate()) << name << " on " << t.name();
  }
}

TEST_P(Fig1Suite, EveryFigureOneSystemMeetsTheTheoremPremises) {
  // All four drawn systems are "generalized": each satisfies the Theorem 1
  // premise (they are why LR1 is insufficient in the paper's setting).
  const auto t = fig1_topology(GetParam());
  EXPECT_TRUE(graph::thm1_premise(t).has_value()) << t.name();
}

INSTANTIATE_TEST_SUITE_P(AllFour, Fig1Suite, ::testing::Range(0, 4));

TEST(Consistency, TrapAndCheckerAgreeOnFig1a) {
  // The model checker certifies that a fair no-progress adversary exists
  // for LR1 on fig1a; the scripted trap constructs one. Both must agree.
  const auto verdict =
      mdp::check_fair_progress(*algos::make_algorithm("lr1"), graph::fig1a(), 1'500'000);
  EXPECT_EQ(verdict.verdict, mdp::Verdict::kProgressFails);

  int trapped = 0;
  for (int i = 0; i < 40; ++i) {
    const auto lr1 = algos::make_algorithm("lr1");
    sim::TrapFig1a trap;
    rng::Rng rng(static_cast<std::uint64_t>(5'000 + i));
    sim::EngineConfig cfg;
    cfg.max_steps = 20'000;
    const auto r = sim::run(*lr1, graph::fig1a(), trap, rng, cfg);
    trapped += trap.trapped() && r.total_meals == 0;
  }
  EXPECT_GT(trapped, 0);
}

TEST(Consistency, CheckerCertifiedAlgorithmsSurviveEveryInTreeAdversary) {
  // GDP1 is progress-certified on parallel(3); no scheduler we ship should
  // be able to stall it there.
  const auto t = graph::parallel_arcs(3);
  const auto verdict = mdp::check_fair_progress(*algos::make_algorithm("gdp1"), t, 1'000'000);
  ASSERT_EQ(verdict.verdict, mdp::Verdict::kProgressCertain);
  for (int which = 0; which < 3; ++which) {
    const auto gdp1 = algos::make_algorithm("gdp1");
    std::unique_ptr<sim::Scheduler> sched;
    if (which == 0) sched = std::make_unique<sim::RoundRobin>();
    if (which == 1) sched = std::make_unique<sim::RandomUniform>();
    if (which == 2) sched = std::make_unique<sim::LongestWaiting>();
    rng::Rng rng(static_cast<std::uint64_t>(which));
    sim::EngineConfig cfg;
    cfg.max_steps = 50'000;
    const auto r = sim::run(*gdp1, t, *sched, rng, cfg);
    EXPECT_GT(r.total_meals, 0u) << sched->name();
  }
}

TEST(Consistency, SimulationAndThreadsAgreeOnLiveness) {
  // Same algorithm, same topology: the simulator's fair run and the real
  // thread runtime must both progress.
  const auto t = graph::fig1a();
  for (const char* name : {"lr1", "gdp1", "gdp2c"}) {
    const auto algo = algos::make_algorithm(name);
    sim::RandomUniform sched;
    rng::Rng rng(11);
    sim::EngineConfig cfg;
    cfg.max_steps = 40'000;
    const auto sim_result = sim::run(*algo, t, sched, rng, cfg);
    EXPECT_GT(sim_result.total_meals, 0u) << name;

    runtime::RuntimeConfig rt;
    rt.algorithm = name;
    rt.target_meals = 500;
    rt.duration = std::chrono::milliseconds(5'000);
    const auto thread_result = runtime::run_threads(t, rt);
    EXPECT_GE(thread_result.total_meals, 500u) << name;
    EXPECT_EQ(thread_result.exclusion_violations, 0u) << name;
  }
}

TEST(Consistency, CourtesyImprovesFairnessEverywhere) {
  // Jain index of meal distribution under a biased-ish scheduler: gdp2c
  // must not be less fair than gdp1.
  const auto t = graph::fig1d();
  auto jain_of = [&](const char* name) {
    const auto algo = algos::make_algorithm(name);
    sim::RandomUniform sched;
    rng::Rng rng(31);
    sim::EngineConfig cfg;
    cfg.max_steps = 150'000;
    const auto r = sim::run(*algo, t, sched, rng, cfg);
    return stats::jain_index(r.meals_of);
  };
  EXPECT_GT(jain_of("gdp2c"), 0.8 * jain_of("gdp1"));
}

TEST(Consistency, PremiseCheckersMatchVerdictsOnFamilies) {
  // Where thm1_premise is absent and the graph is a classic ring, LR1 is
  // certified; where fig-scale graphs satisfy it and are small enough to
  // check, LR1 fails at least globally-or-wrt-H.
  for (int n : {3, 4}) {
    const auto ring = graph::classic_ring(n);
    EXPECT_FALSE(graph::thm1_premise(ring).has_value());
    const auto verdict = mdp::check_fair_progress(*algos::make_algorithm("lr1"), ring);
    EXPECT_EQ(verdict.verdict, mdp::Verdict::kProgressCertain) << n;
  }
  const auto chord = graph::ring_with_chord(4);
  EXPECT_TRUE(graph::thm1_premise(chord).has_value());
  const auto verdict = mdp::check_fair_progress(*algos::make_algorithm("lr1"), chord);
  EXPECT_EQ(verdict.verdict, mdp::Verdict::kProgressFails);
}

}  // namespace
}  // namespace gdp
