// The model checker: exploration, end components, and the machine-checked
// versions of the paper's four theorems on small instances.
#include <gtest/gtest.h>

#include "gdp/common/check.hpp"
#include "gdp/algos/algorithm.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/mdp/end_components.hpp"
#include "gdp/mdp/fair_progress.hpp"

namespace gdp::mdp {
namespace {

Model explore_named(const std::string& algo, const graph::Topology& t,
                    std::size_t cap = 2'000'000) {
  const auto a = algos::make_algorithm(algo);
  return explore(*a, t, cap);
}

TEST(Explore, RowsAreProbabilityDistributions) {
  const Model m = explore_named("lr1", graph::classic_ring(3));
  ASSERT_GT(m.num_states(), 0u);
  EXPECT_FALSE(m.truncated());
  for (StateId s = 0; s < m.num_states(); ++s) {
    for (int p = 0; p < m.num_phils(); ++p) {
      const auto [begin, end] = m.row(s, p);
      ASSERT_NE(begin, end) << "complete model has no empty rows";
      double total = 0.0;
      for (const Outcome* o = begin; o != end; ++o) {
        total += o->prob;
        ASSERT_LT(o->next, m.num_states());
      }
      ASSERT_NEAR(total, 1.0, 1e-6);
    }
  }
}

TEST(Explore, InitialStateIsThinking) {
  const Model m = explore_named("lr1", graph::classic_ring(3));
  EXPECT_FALSE(m.eating(m.initial()));
  EXPECT_EQ(m.eaters(m.initial()), 0u);
}

TEST(Explore, TruncationFlagsFrontier) {
  const Model m = explore_named("lr1", graph::fig1a(), 500);
  EXPECT_TRUE(m.truncated());
  bool has_frontier = false;
  for (StateId s = 0; s < m.num_states(); ++s) has_frontier |= m.frontier(s);
  EXPECT_TRUE(has_frontier);
}

TEST(Explore, CapAppliesAtLevelBoundaries) {
  // Level-synchronous truncation: a capped run never stops mid-level, so
  // the capped model has at least `cap` states, every expanded state has
  // full rows, and the unexpanded frontier is the contiguous id tail.
  const std::size_t cap = 500;
  const Model m = explore_named("lr1", graph::fig1a(), cap);
  ASSERT_TRUE(m.truncated());
  EXPECT_GE(m.num_states(), cap);
  StateId first_frontier = static_cast<StateId>(m.num_states());
  for (StateId s = 0; s < m.num_states(); ++s) {
    if (m.frontier(s)) {
      first_frontier = s;
      break;
    }
  }
  ASSERT_LT(first_frontier, m.num_states());
  for (StateId s = 0; s < m.num_states(); ++s) {
    EXPECT_EQ(m.frontier(s), s >= first_frontier) << "state " << s;
    for (int p = 0; p < m.num_phils(); ++p) {
      const auto [begin, end] = m.row(s, p);
      EXPECT_EQ(begin == end, s >= first_frontier) << "row (" << s << ", " << p << ")";
    }
  }
}

TEST(Explore, RefusesMoreThan64Philosophers) {
  // eater_mask/target_mask are single 64-bit words; star(65) has 65
  // philosophers (one per leaf), so exploration must refuse instead of
  // silently folding philosopher 64 onto bit 63.
  const auto algo = algos::make_algorithm("lr1");
  EXPECT_THROW(explore(*algo, graph::star(65)), PreconditionError);
}

TEST(Explore, ModelBuildRefusesMoreThan64Philosophers) {
  EXPECT_THROW(Model::build(65, std::vector<std::uint64_t>(66, 0), {}, {0}, {true}, true),
               PreconditionError);
}

TEST(Explore, RequiresHungryMode) {
  const auto algo = algos::make_algorithm(
      "lr1", algos::AlgoConfig{.think = algos::ThinkMode::kCoin, .think_coin = 0.5});
  EXPECT_THROW(explore(*algo, graph::classic_ring(3)), PreconditionError);
}

TEST(Reachability, InitialAlwaysReachable) {
  const Model m = explore_named("lr1", graph::classic_ring(3));
  const auto reached = reachable_states(m);
  EXPECT_TRUE(reached[m.initial()]);
  // BFS-built models are reachable everywhere by construction.
  for (StateId s = 0; s < m.num_states(); ++s) EXPECT_TRUE(reached[s]);
}

TEST(EndComponents, OrderedBaselineDeadlockAppearsAsFairEc) {
  // The ticket baseline's circular-wait deadlock on fig1a is an all-phil
  // self-loop state: exactly a fair end component of size >= 1.
  const Model m = explore_named("ticket", graph::fig1a());
  const auto result = check_fair_progress(m);
  EXPECT_EQ(result.verdict, Verdict::kProgressFails);
}

// --- Machine-checked theorem table (small instances). ---

TEST(Theorems, LehmannRabinCorrectOnRings) {
  for (int n : {3, 4}) {
    const auto r = check_fair_progress(explore_named("lr1", graph::classic_ring(n)));
    EXPECT_EQ(r.verdict, Verdict::kProgressCertain) << n;
  }
}

TEST(Theorems, Thm1Lr1FailsOnFig1a) {
  const auto r = check_fair_progress(explore_named("lr1", graph::fig1a()));
  EXPECT_EQ(r.verdict, Verdict::kProgressFails);
  EXPECT_GT(r.witness_size, 0u);
}

TEST(Theorems, Thm1Lr1FailsOnRingChord) {
  const auto r = check_fair_progress(explore_named("lr1", graph::ring_with_chord(4)));
  EXPECT_EQ(r.verdict, Verdict::kProgressFails);
}

TEST(Theorems, Thm1PendantStarvesTheRingOnly) {
  // On ring+pendant the pendant philosopher can always eat (global progress
  // certified) but the ring philosophers H make no progress — the exact
  // statement of Theorem 1.
  const Model m = explore_named("lr1", graph::ring_with_pendant(3));
  EXPECT_EQ(check_fair_progress(m).verdict, Verdict::kProgressCertain);
  EXPECT_EQ(check_fair_progress(m, 0b0111).verdict, Verdict::kProgressFails);  // H = P0..P2
}

TEST(Theorems, Thm1DoesNotApplyToLr2) {
  // "The negative result expressed in Theorem 1 does not hold for LR2."
  const Model m = explore_named("lr2", graph::ring_with_pendant(3));
  EXPECT_EQ(check_fair_progress(m).verdict, Verdict::kProgressCertain);
  EXPECT_EQ(check_fair_progress(m, 0b0111).verdict, Verdict::kProgressCertain);
}

TEST(Theorems, Thm2Lr2FailsOnThreeParallelArcs) {
  const auto r = check_fair_progress(explore_named("lr2", graph::parallel_arcs(3)));
  EXPECT_EQ(r.verdict, Verdict::kProgressFails);
}

TEST(Theorems, Thm3Gdp1ProgressesEverywhereChecked) {
  for (const auto& t : {graph::classic_ring(3), graph::parallel_arcs(3),
                        graph::ring_with_pendant(3)}) {
    const auto r = check_fair_progress(explore_named("gdp1", t, 3'000'000));
    EXPECT_EQ(r.verdict, Verdict::kProgressCertain) << t.name();
  }
}

TEST(Theorems, Thm4Gdp2cLockoutFreeOnSmallInstances) {
  for (const auto& t : {graph::classic_ring(3), graph::parallel_arcs(3)}) {
    const Model m = explore_named("gdp2c", t, 3'000'000);
    for (PhilId v = 0; v < t.num_phils(); ++v) {
      EXPECT_EQ(check_lockout_freedom(m, v).verdict, Verdict::kProgressCertain)
          << t.name() << " victim " << v;
    }
  }
}

TEST(Theorems, ErratumLiteralGdp2NotLockoutFreeOnRing3) {
  const Model m = explore_named("gdp2", graph::classic_ring(3));
  bool some_victim_starvable = false;
  for (PhilId v = 0; v < 3; ++v) {
    some_victim_starvable |=
        check_lockout_freedom(m, v).verdict == Verdict::kProgressFails;
  }
  EXPECT_TRUE(some_victim_starvable);
  // ... while plain progress still holds (Theorem 3 applies to GDP2 too).
  EXPECT_EQ(check_fair_progress(m).verdict, Verdict::kProgressCertain);
}

TEST(Theorems, Gdp1NotLockoutFree) {
  // §5: GDP1 guarantees progress but not lockout-freedom.
  const Model m = explore_named("gdp1", graph::classic_ring(3));
  bool some_victim_starvable = false;
  for (PhilId v = 0; v < 3; ++v) {
    some_victim_starvable |=
        check_lockout_freedom(m, v).verdict == Verdict::kProgressFails;
  }
  EXPECT_TRUE(some_victim_starvable);
}

TEST(Theorems, Lr2LockoutFreeOnRing3) {
  const Model m = explore_named("lr2", graph::classic_ring(3));
  for (PhilId v = 0; v < 3; ++v) {
    EXPECT_EQ(check_lockout_freedom(m, v).verdict, Verdict::kProgressCertain) << v;
  }
}

TEST(Verdicts, SummaryMentionsTheOutcome) {
  const auto r = check_fair_progress(explore_named("lr1", graph::parallel_arcs(3)));
  EXPECT_NE(r.summary().find("NO progress"), std::string::npos);
}

}  // namespace
}  // namespace gdp::mdp
