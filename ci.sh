#!/usr/bin/env bash
# CI entry point.
# Usage: ./ci.sh [--no-sanitize]   — full build+test matrix
#        ./ci.sh lint              — static-analysis gate only:
#                                    gdp_lint self-test + repo scan, and the
#                                    Clang -Werror=thread-safety build when a
#                                    clang++ is available (CI pins one; local
#                                    GCC-only machines skip it with a notice).
#        ./ci.sh bench-smoke       — build bench_thm2_theta, run its store
#                                    section with GDP_OBS=1 and validate the
#                                    emitted BENCH_thm2_theta.json against
#                                    the obs run-report schema; then rerun it
#                                    with the timeline plane and heartbeats on
#                                    (GDP_OBS_TIMELINE / GDP_OBS_PROGRESS) and
#                                    validate TRACE_thm2_theta.json plus the
#                                    stderr heartbeat stream.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

lint_pass() {
  echo "=== lint: gdp_lint self-test (seeded fixtures) ==="
  python3 tools/lint/gdp_lint.py --self-test tests/lint_fixtures
  echo "=== lint: gdp_lint repo scan ==="
  python3 tools/lint/gdp_lint.py src tests bench examples

  local clangxx=""
  for c in clang++ clang++-20 clang++-19 clang++-18 clang++-17 clang++-16; do
    if command -v "$c" >/dev/null 2>&1; then clangxx="$c"; break; fi
  done
  if [[ -n "${clangxx}" ]]; then
    echo "=== lint: ${clangxx} -Werror=thread-safety build ==="
    cmake -B build/thread-safety -S . -DCMAKE_BUILD_TYPE=Release \
      -DCMAKE_CXX_COMPILER="${clangxx}" -DGDP_THREAD_SAFETY=ON
    cmake --build build/thread-safety -j "${JOBS}"
  else
    echo "=== lint: no clang++ found — skipping the thread-safety build" \
         "(the static-analysis CI job runs it with a pinned clang) ==="
  fi
  echo "=== lint green ==="
}

if [[ "${1:-}" == "lint" ]]; then
  lint_pass
  exit 0
fi

# Smoke-test the observability pipeline end to end: section (d) of
# bench_thm2_theta (capped exploration into the chunked store) must emit a
# run report that validates against the versioned schema.
if [[ "${1:-}" == "bench-smoke" ]]; then
  echo "=== bench-smoke: configure + build bench_thm2_theta ==="
  cmake -B build/bench-smoke -S . -DCMAKE_BUILD_TYPE=Release -DGDP_BUILD_TESTS=OFF \
    -DGDP_BUILD_EXAMPLES=OFF
  cmake --build build/bench-smoke -j "${JOBS}" --target bench_thm2_theta
  echo "=== bench-smoke: run section (d) with GDP_OBS=1 ==="
  ( cd build/bench-smoke/bench && GDP_OBS=1 ./bench_thm2_theta 0 d )
  echo "=== bench-smoke: validate the run report against the obs schema ==="
  python3 tools/obs/validate_report.py build/bench-smoke/bench/BENCH_thm2_theta.json
  echo "=== bench-smoke: rerun with the timeline plane + 50ms heartbeats ==="
  ( cd build/bench-smoke/bench && \
    GDP_OBS=1 GDP_OBS_TIMELINE=1 GDP_OBS_PROGRESS=50 ./bench_thm2_theta 0 d \
      2> obs_heartbeats.ndjson )
  echo "=== bench-smoke: require at least one heartbeat line ==="
  grep -c '"gdp_obs_heartbeat"' build/bench-smoke/bench/obs_heartbeats.ndjson
  echo "=== bench-smoke: validate + summarize the trace ==="
  python3 tools/obs/summarize_trace.py build/bench-smoke/bench/TRACE_thm2_theta.json
  echo "=== bench-smoke green ==="
  exit 0
fi

SANITIZE=1
[[ "${1:-}" == "--no-sanitize" ]] && SANITIZE=0

run_pass() {
  local name="$1"; shift
  echo "=== ${name}: configure ==="
  cmake -B "build/${name}" -S . "$@"
  echo "=== ${name}: build ==="
  cmake --build "build/${name}" -j "${JOBS}"
  echo "=== ${name}: ctest ==="
  ctest --test-dir "build/${name}" --output-on-failure -j "${JOBS}"
}

run_pass release -DCMAKE_BUILD_TYPE=Release

# Debug pass keeps the GDP_DCHECK invariants live (NDEBUG strips them in
# Release and RelWithDebInfo).
run_pass debug -DCMAKE_BUILD_TYPE=Debug

if [[ "${SANITIZE}" == 1 ]]; then
  run_pass asan-ubsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGDP_SANITIZE=ON

  # Chunked-store pass with spill forced on: every ChunkedModel the store
  # suite builds goes file-backed (tiny chunks, mmap reads), so ASan walks
  # the mapping lifetimes and chunk-seam arithmetic.
  echo "=== asan-ubsan: forced-spill chunked-store pass (ctest -L store) ==="
  GDP_TEST_FORCE_SPILL=1 ctest --test-dir build/asan-ubsan --output-on-failure -L store

  # Same suite again under a tight residency budget (2 chunks hot, 128
  # states per chunk): the chunk-native verdict kernels now run through the
  # LRU fault/evict path constantly, so ASan sees madvise-dropped pages
  # refaulting mid-sweep — the exact out-of-core access pattern.
  echo "=== asan-ubsan: bounded-resident forced-spill pass (ctest -L store) ==="
  GDP_TEST_FORCE_SPILL=1 GDP_TEST_MAX_RESIDENT_CHUNKS=2 GDP_TEST_CHUNK_STATES=128 \
    ctest --test-dir build/asan-ubsan --output-on-failure -L store

  # TSan pass over the threaded subsystems only (the parallel model checker,
  # the campaign runner and the obs registry); ASan and TSan cannot share a
  # build tree.
  echo "=== tsan: configure ==="
  cmake -B build/tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGDP_SANITIZE_THREAD=ON \
    -DGDP_BUILD_BENCH=OFF -DGDP_BUILD_EXAMPLES=OFF
  echo "=== tsan: build ==="
  cmake --build build/tsan -j "${JOBS}" \
    --target test_mdp_par test_exp test_key test_quant test_store test_obs
  echo "=== tsan: ctest (test_mdp_par + test_exp + test_key + test_quant + test_store + test_obs) ==="
  ctest --test-dir build/tsan --output-on-failure \
    -R 'test_mdp_par|test_exp|test_key|test_quant|test_store|test_obs'
fi

echo "=== CI green ==="
