#!/usr/bin/env bash
# CI entry point: release configure+build+ctest, then an ASan/UBSan pass.
# Usage: ./ci.sh [--no-sanitize]
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
SANITIZE=1
[[ "${1:-}" == "--no-sanitize" ]] && SANITIZE=0

run_pass() {
  local name="$1"; shift
  echo "=== ${name}: configure ==="
  cmake -B "build/${name}" -S . "$@"
  echo "=== ${name}: build ==="
  cmake --build "build/${name}" -j "${JOBS}"
  echo "=== ${name}: ctest ==="
  ctest --test-dir "build/${name}" --output-on-failure -j "${JOBS}"
}

run_pass release -DCMAKE_BUILD_TYPE=Release

# Debug pass keeps the GDP_DCHECK invariants live (NDEBUG strips them in
# Release and RelWithDebInfo).
run_pass debug -DCMAKE_BUILD_TYPE=Debug

if [[ "${SANITIZE}" == 1 ]]; then
  run_pass asan-ubsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGDP_SANITIZE=ON

  # TSan pass over the threaded subsystems only (the parallel model checker
  # and the campaign runner); ASan and TSan cannot share a build tree.
  echo "=== tsan: configure ==="
  cmake -B build/tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGDP_SANITIZE_THREAD=ON \
    -DGDP_BUILD_BENCH=OFF -DGDP_BUILD_EXAMPLES=OFF
  echo "=== tsan: build ==="
  cmake --build build/tsan -j "${JOBS}" --target test_mdp_par test_exp test_key test_quant
  echo "=== tsan: ctest (test_mdp_par + test_exp + test_key + test_quant) ==="
  ctest --test-dir build/tsan --output-on-failure -R 'test_mdp_par|test_exp|test_key|test_quant'
fi

echo "=== CI green ==="
