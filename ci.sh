#!/usr/bin/env bash
# CI entry point: release configure+build+ctest, then an ASan/UBSan pass.
# Usage: ./ci.sh [--no-sanitize]
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
SANITIZE=1
[[ "${1:-}" == "--no-sanitize" ]] && SANITIZE=0

run_pass() {
  local name="$1"; shift
  echo "=== ${name}: configure ==="
  cmake -B "build/${name}" -S . "$@"
  echo "=== ${name}: build ==="
  cmake --build "build/${name}" -j "${JOBS}"
  echo "=== ${name}: ctest ==="
  ctest --test-dir "build/${name}" --output-on-failure -j "${JOBS}"
}

run_pass release -DCMAKE_BUILD_TYPE=Release

# Debug pass keeps the GDP_DCHECK invariants live (NDEBUG strips them in
# Release and RelWithDebInfo).
run_pass debug -DCMAKE_BUILD_TYPE=Debug

if [[ "${SANITIZE}" == 1 ]]; then
  run_pass asan-ubsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGDP_SANITIZE=ON
fi

echo "=== CI green ==="
