// SplitMix64 — the standard 64-bit seeding/stream-derivation mixer
// (Steele, Lea, Flood 2014). Used to expand a single user seed into
// well-distributed per-philosopher stream seeds; never used as the main
// generator.
#pragma once

#include <cstdint>

namespace gdp::rng {

class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// One-shot mix, handy for hashing ids into seeds.
constexpr std::uint64_t splitmix64_once(std::uint64_t x) {
  return SplitMix64(x).next();
}

}  // namespace gdp::rng
