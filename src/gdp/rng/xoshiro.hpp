// xoshiro256** 1.0 (Blackman & Vigna) — the workhorse generator.
// Small state, excellent statistical quality, trivially seedable from
// SplitMix64, and fully deterministic across platforms (no std::mt19937
// distribution-portability pitfalls).
#pragma once

#include <cstdint>

#include "gdp/rng/splitmix.hpp"

namespace gdp::rng {

class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state via SplitMix64 as the authors recommend.
  explicit constexpr Xoshiro256StarStar(std::uint64_t seed) : s_{} {
    SplitMix64 mixer(seed);
    for (auto& word : s_) word = mixer.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// The generator's 2^128-step jump: used to derive provably
  /// non-overlapping parallel streams for the thread runtime.
  constexpr void jump() {
    constexpr std::uint64_t kJump[] = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                       0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (std::uint64_t word : kJump) {
      for (int bit = 0; bit < 64; ++bit) {
        if (word & (std::uint64_t{1} << bit)) {
          s0 ^= s_[0];
          s1 ^= s_[1];
          s2 ^= s_[2];
          s3 ^= s_[3];
        }
        (*this)();
      }
    }
    s_[0] = s0;
    s_[1] = s1;
    s_[2] = s2;
    s_[3] = s3;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace gdp::rng
