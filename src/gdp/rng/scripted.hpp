// ScriptedRng — a RandomSource whose semantic outcomes are forced by a
// script, with a real Rng as fallback once the script is exhausted.
//
// This is how the paper's figures are replayed exactly: the §3 example, the
// Theorem 1 (Figure 2) and Theorem 2 (Figure 3) executions all require the
// adversary to "keep selecting P until he commits to the taken fork"; the
// replayer scripts both the schedule and the random draws to land in each
// depicted state, while the probability measurements use free randomness.
#pragma once

#include <deque>
#include <variant>

#include "gdp/rng/rng.hpp"

namespace gdp::rng {

/// One scripted outcome. `ForcedSide` feeds the next choose_side() call,
/// `ForcedInt` the next uniform_int() call.
struct ForcedSide {
  Side side;
};
struct ForcedInt {
  int value;
};
using ForcedDraw = std::variant<ForcedSide, ForcedInt>;

class ScriptedRng final : public RandomSource {
 public:
  /// `fallback_seed` seeds the Rng used after (or between) forced draws.
  explicit ScriptedRng(std::uint64_t fallback_seed);

  /// Appends forced outcomes, consumed in FIFO order by draw kind.
  void force_side(Side side);
  void force_int(int value);

  /// Number of forced draws not yet consumed.
  std::size_t pending() const { return script_.size(); }

  /// True if any semantic draw fell through to the fallback Rng.
  bool fell_through() const { return fell_through_; }

  std::uint64_t next_u64() override;
  Side choose_side(double p_left) override;
  int uniform_int(int lo, int hi) override;
  bool bernoulli(double p) override;

 private:
  std::deque<ForcedDraw> script_;
  Rng fallback_;
  bool fell_through_ = false;
};

}  // namespace gdp::rng
