#include "gdp/rng/scripted.hpp"

#include "gdp/common/check.hpp"

namespace gdp::rng {

ScriptedRng::ScriptedRng(std::uint64_t fallback_seed) : fallback_(fallback_seed) {}

void ScriptedRng::force_side(Side side) { script_.push_back(ForcedSide{side}); }

void ScriptedRng::force_int(int value) { script_.push_back(ForcedInt{value}); }

std::uint64_t ScriptedRng::next_u64() {
  fell_through_ = true;
  return fallback_.next_u64();
}

Side ScriptedRng::choose_side(double p_left) {
  if (!script_.empty()) {
    const ForcedDraw draw = script_.front();
    GDP_CHECK_MSG(std::holds_alternative<ForcedSide>(draw),
                  "script expected a side draw but an int draw was queued");
    script_.pop_front();
    return std::get<ForcedSide>(draw).side;
  }
  fell_through_ = true;
  return fallback_.choose_side(p_left);
}

int ScriptedRng::uniform_int(int lo, int hi) {
  if (!script_.empty()) {
    const ForcedDraw draw = script_.front();
    GDP_CHECK_MSG(std::holds_alternative<ForcedInt>(draw),
                  "script expected an int draw but a side draw was queued");
    script_.pop_front();
    const int value = std::get<ForcedInt>(draw).value;
    GDP_CHECK_MSG(value >= lo && value <= hi,
                  "scripted value " << value << " outside [" << lo << "," << hi << "]");
    return value;
  }
  fell_through_ = true;
  return fallback_.uniform_int(lo, hi);
}

bool ScriptedRng::bernoulli(double p) {
  fell_through_ = true;
  return fallback_.bernoulli(p);
}

}  // namespace gdp::rng
