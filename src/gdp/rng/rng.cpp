#include "gdp/rng/rng.hpp"

#include "gdp/common/check.hpp"
#include "gdp/rng/splitmix.hpp"
#include "gdp/rng/xoshiro.hpp"

namespace gdp::rng {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  SplitMix64 mixer(seed);
  for (auto& word : s_) word = mixer.next();
}

std::uint64_t Rng::next_u64() {
  ++draws_;
  // xoshiro256** step, inlined over the flat state array.
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

Side Rng::choose_side(double p_left) {
  GDP_DCHECK(p_left >= 0.0 && p_left <= 1.0);
  return uniform01() < p_left ? Side::kLeft : Side::kRight;
}

int Rng::uniform_int(int lo, int hi) {
  GDP_CHECK_MSG(lo <= hi, "uniform_int range [" << lo << "," << hi << "]");
  const std::uint64_t span = static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // Lemire's nearly-divisionless unbiased bounded draw.
  std::uint64_t x = next_u64();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * span;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < span) {
    const std::uint64_t threshold = (0 - span) % span;
    while (l < threshold) {
      x = next_u64();
      m = static_cast<unsigned __int128>(x) * span;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<int>(m >> 64);
}

bool Rng::bernoulli(double p) {
  GDP_DCHECK(p >= 0.0 && p <= 1.0);
  return uniform01() < p;
}

Rng Rng::split(std::uint64_t stream_index) const {
  // Mixing (seed, stream) through two SplitMix64 rounds gives streams that
  // are decorrelated from the parent and from each other.
  const std::uint64_t child_seed =
      splitmix64_once(seed_ ^ splitmix64_once(0x5851f42d4c957f2dULL + stream_index));
  return Rng(child_seed);
}

}  // namespace gdp::rng
