// Randomness interface for the whole library.
//
// Algorithms and schedulers draw through the semantic-level RandomSource
// interface (choose_side / uniform_int / bernoulli) so that:
//   * simulation uses high-quality deterministic pseudo-randomness (Rng),
//   * the trace replayer can force the exact outcomes of the paper's
//     adversarial executions (ScriptedRng, see scripted.hpp),
//   * tests can count and audit every draw.
//
// Probabilities follow the paper: the first-fork draw may be biased
// (the negative results "do not depend on this assumption", §3), and
// random[1,m] is uniform (§4).
#pragma once

#include <cstdint>

#include "gdp/common/ids.hpp"

namespace gdp::rng {

/// Semantic source of randomness. Implementations must be deterministic
/// given their construction arguments.
class RandomSource {
 public:
  virtual ~RandomSource() = default;

  /// One raw 64-bit draw.
  virtual std::uint64_t next_u64() = 0;

  /// The philosopher's coin of LR1/LR2 step "fork := random_choice(left,right)".
  /// Returns kLeft with probability `p_left`.
  virtual Side choose_side(double p_left) = 0;

  /// The GDP draw "fork.nr := random[1,m]": uniform integer in [lo, hi].
  virtual int uniform_int(int lo, int hi) = 0;

  /// True with probability `p`.
  virtual bool bernoulli(double p) = 0;
};

/// Production source: xoshiro256** behind the semantic interface.
class Rng final : public RandomSource {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64() override;
  Side choose_side(double p_left) override;
  int uniform_int(int lo, int hi) override;
  bool bernoulli(double p) override;

  /// A double in [0, 1) with 53 random bits.
  double uniform01();

  /// Derives an independent child stream. Child `i` of a given parent is
  /// reproducible and (statistically) independent of the parent and of
  /// other children; used for per-philosopher / per-trial streams.
  Rng split(std::uint64_t stream_index) const;

  /// Number of semantic draws made so far (for tests and draw audits).
  std::uint64_t draw_count() const { return draws_; }

 private:
  std::uint64_t seed_;
  std::uint64_t s_[4];
  std::uint64_t draws_ = 0;
};

}  // namespace gdp::rng
