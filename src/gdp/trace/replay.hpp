// Deterministic replay: a scripted schedule plus scripted random outcomes
// reproduces a chosen execution exactly — used to regenerate the paper's
// figure executions (the §3 States 1-6 example) step for step.
#pragma once

#include <vector>

#include "gdp/sim/scheduler.hpp"

namespace gdp::trace {

/// Plays back a fixed philosopher order; after the script is exhausted it
/// degrades to round-robin (keeping any continued run fair).
class ScriptScheduler final : public sim::Scheduler {
 public:
  explicit ScriptScheduler(std::vector<PhilId> order) : order_(std::move(order)) {}

  std::string name() const override { return "script"; }
  void reset(const graph::Topology& t) override;
  PhilId pick(const graph::Topology& t, const sim::SimState& state, const sim::RunView& view,
              rng::RandomSource& rng) override;

  bool exhausted() const { return cursor_ >= order_.size(); }
  std::size_t position() const { return cursor_; }

 private:
  std::vector<PhilId> order_;
  std::size_t cursor_ = 0;
  PhilId round_robin_ = 0;
};

}  // namespace gdp::trace
