#include "gdp/trace/replay.hpp"

#include "gdp/common/check.hpp"

namespace gdp::trace {

void ScriptScheduler::reset(const graph::Topology& /*t*/) {
  cursor_ = 0;
  round_robin_ = 0;
}

PhilId ScriptScheduler::pick(const graph::Topology& t, const sim::SimState& /*state*/,
                             const sim::RunView& /*view*/, rng::RandomSource& /*rng*/) {
  if (cursor_ < order_.size()) {
    const PhilId p = order_[cursor_++];
    GDP_CHECK_MSG(p >= 0 && p < t.num_phils(), "scripted schedule names philosopher " << p);
    return p;
  }
  const PhilId p = round_robin_;
  round_robin_ = (round_robin_ + 1) % t.num_phils();
  return p;
}

}  // namespace gdp::trace
