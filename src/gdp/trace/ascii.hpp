// Textual rendering of configurations in the style of the paper's state
// diagrams: a filled arrow is a held fork, an empty arrow a commitment.
#pragma once

#include <string>

#include "gdp/graph/topology.hpp"
#include "gdp/sim/engine.hpp"
#include "gdp/sim/state.hpp"

namespace gdp::trace {

/// Multi-line diagram: one line per fork (holder, nr, pending commitments)
/// and one line per philosopher (phase, arrows).
std::string render_state(const graph::Topology& t, const sim::SimState& state);

/// One line per trace entry: "step 12: P3 took-first f0".
std::string render_trace(const graph::Topology& t, const std::vector<sim::TraceEntry>& trace,
                         std::size_t max_entries = 200);

}  // namespace gdp::trace
