#include "gdp/trace/ascii.hpp"

#include <sstream>

#include "gdp/common/strings.hpp"

namespace gdp::trace {

std::string render_state(const graph::Topology& t, const sim::SimState& state) {
  std::ostringstream out;
  for (ForkId f = 0; f < t.num_forks(); ++f) {
    const auto& fork = state.fork(f);
    out << "  " << pad(fork_name(f), 4);
    if (fork.free()) {
      out << "(free)      ";
    } else {
      out << "<==" << pad(phil_name(fork.holder), 5) << "    ";  // filled arrow: held
    }
    if (fork.nr != 0) out << "nr=" << fork.nr << "  ";
    // Empty arrows: philosophers committed to f but not yet holding it.
    std::vector<std::string> committed;
    for (PhilId p : t.incident(f)) {
      const auto& ps = state.phil(p);
      if ((ps.phase == sim::Phase::kCommit) && t.fork_of(p, ps.committed) == f) {
        committed.push_back(phil_name(p));
      }
    }
    if (!committed.empty()) out << "<-- " << join(committed, ", ") << " (committed)";
    out << '\n';
  }
  for (PhilId p = 0; p < t.num_phils(); ++p) {
    const auto& ps = state.phil(p);
    out << "  " << pad(phil_name(p), 4) << "{" << fork_name(t.left_of(p)) << ","
        << fork_name(t.right_of(p)) << "}  " << sim::to_string(ps.phase);
    if (ps.phase == sim::Phase::kCommit || ps.phase == sim::Phase::kRenumber ||
        ps.phase == sim::Phase::kTrySecond) {
      out << " -> " << fork_name(t.fork_of(p, ps.committed));
    }
    out << '\n';
  }
  return out.str();
}

std::string render_trace(const graph::Topology& /*t*/, const std::vector<sim::TraceEntry>& trace,
                         std::size_t max_entries) {
  std::ostringstream out;
  const std::size_t shown = std::min(trace.size(), max_entries);
  for (std::size_t i = 0; i < shown; ++i) {
    const auto& e = trace[i];
    out << "  step " << e.step << ": " << phil_name(e.phil) << ' ' << e.event.to_string() << '\n';
  }
  if (shown < trace.size()) out << "  ... (" << trace.size() - shown << " more)\n";
  return out.str();
}

}  // namespace gdp::trace
