#include "gdp/graph/algorithms.hpp"

#include <algorithm>
#include <queue>

#include "gdp/common/check.hpp"

namespace gdp::graph {
namespace {

// Returns a BFS parent-arc tree from `source`, skipping arc `banned`.
// parent_arc[f] is the philosopher arc used to reach f (kNoPhil for source /
// unreached); parent_fork[f] the fork it was reached from.
struct BfsTree {
  std::vector<PhilId> parent_arc;
  std::vector<ForkId> parent_fork;
  std::vector<bool> reached;
};

BfsTree bfs_from(const Topology& t, ForkId source, PhilId banned) {
  BfsTree tree{std::vector<PhilId>(static_cast<std::size_t>(t.num_forks()), kNoPhil),
               std::vector<ForkId>(static_cast<std::size_t>(t.num_forks()), kNoFork),
               std::vector<bool>(static_cast<std::size_t>(t.num_forks()), false)};
  std::queue<ForkId> frontier;
  frontier.push(source);
  tree.reached[static_cast<std::size_t>(source)] = true;
  while (!frontier.empty()) {
    const ForkId u = frontier.front();
    frontier.pop();
    for (PhilId p : t.incident(u)) {
      if (p == banned) continue;
      const ForkId v = t.other_fork(p, u);
      if (tree.reached[static_cast<std::size_t>(v)]) continue;
      tree.reached[static_cast<std::size_t>(v)] = true;
      tree.parent_arc[static_cast<std::size_t>(v)] = p;
      tree.parent_fork[static_cast<std::size_t>(v)] = u;
      frontier.push(v);
    }
  }
  return tree;
}

}  // namespace

std::vector<int> connected_components(const Topology& t) {
  std::vector<int> component(static_cast<std::size_t>(t.num_forks()), -1);
  int next = 0;
  for (ForkId start = 0; start < t.num_forks(); ++start) {
    if (component[static_cast<std::size_t>(start)] != -1) continue;
    const int id = next++;
    std::queue<ForkId> frontier;
    frontier.push(start);
    component[static_cast<std::size_t>(start)] = id;
    while (!frontier.empty()) {
      const ForkId u = frontier.front();
      frontier.pop();
      for (PhilId p : t.incident(u)) {
        const ForkId v = t.other_fork(p, u);
        if (component[static_cast<std::size_t>(v)] == -1) {
          component[static_cast<std::size_t>(v)] = id;
          frontier.push(v);
        }
      }
    }
  }
  return component;
}

bool is_connected(const Topology& t) {
  const auto component = connected_components(t);
  return std::all_of(component.begin(), component.end(), [](int c) { return c == 0; });
}

int cyclomatic_number(const Topology& t) {
  const auto component = connected_components(t);
  const int num_components =
      component.empty() ? 0 : 1 + *std::max_element(component.begin(), component.end());
  return t.num_phils() - t.num_forks() + num_components;
}

std::optional<Cycle> find_cycle_through(const Topology& t, ForkId f) {
  // f lies on a cycle iff some incident arc (f, x) can be removed while x
  // still reaches f. The BFS tree then yields the rest of the cycle.
  for (PhilId p : t.incident(f)) {
    const ForkId x = t.other_fork(p, f);
    const BfsTree tree = bfs_from(t, f, p);
    if (!tree.reached[static_cast<std::size_t>(x)]) continue;
    Cycle cycle;
    // Walk x -> f along parents, building the path f ... x, then close with p.
    std::vector<ForkId> forks_rev;
    std::vector<PhilId> phils_rev;
    ForkId at = x;
    while (at != f) {
      forks_rev.push_back(at);
      phils_rev.push_back(tree.parent_arc[static_cast<std::size_t>(at)]);
      at = tree.parent_fork[static_cast<std::size_t>(at)];
    }
    cycle.forks.push_back(f);
    for (auto it = forks_rev.rbegin(); it != forks_rev.rend(); ++it) cycle.forks.push_back(*it);
    for (auto it = phils_rev.rbegin(); it != phils_rev.rend(); ++it) cycle.phils.push_back(*it);
    cycle.phils.push_back(p);  // closes x -- f
    return cycle;
  }
  return std::nullopt;
}

std::optional<Cycle> find_cycle(const Topology& t) {
  for (ForkId f = 0; f < t.num_forks(); ++f) {
    if (auto cycle = find_cycle_through(t, f)) return cycle;
  }
  return std::nullopt;
}

int edge_disjoint_paths(const Topology& t, ForkId u, ForkId v) {
  GDP_CHECK_MSG(u != v, "edge_disjoint_paths needs distinct forks");
  // Unit-capacity undirected max flow by BFS augmentation. `used[p]` is the
  // direction philosopher-arc p currently carries flow in (0 none, +1
  // left->right, -1 right->left); residual traversal may reverse it.
  std::vector<int> used(static_cast<std::size_t>(t.num_phils()), 0);
  int flow = 0;
  while (true) {
    std::vector<PhilId> via(static_cast<std::size_t>(t.num_forks()), kNoPhil);
    std::vector<ForkId> from(static_cast<std::size_t>(t.num_forks()), kNoFork);
    std::vector<bool> seen(static_cast<std::size_t>(t.num_forks()), false);
    std::queue<ForkId> frontier;
    frontier.push(u);
    seen[static_cast<std::size_t>(u)] = true;
    while (!frontier.empty() && !seen[static_cast<std::size_t>(v)]) {
      const ForkId a = frontier.front();
      frontier.pop();
      for (PhilId p : t.incident(a)) {
        const ForkId b = t.other_fork(p, a);
        // Traversing a->b is allowed if the arc is unused, or currently used
        // in the b->a direction (cancellation).
        const int dir = (t.left_of(p) == a) ? +1 : -1;
        const int u_p = used[static_cast<std::size_t>(p)];
        if (u_p != 0 && u_p != -dir) continue;
        if (seen[static_cast<std::size_t>(b)]) continue;
        seen[static_cast<std::size_t>(b)] = true;
        via[static_cast<std::size_t>(b)] = p;
        from[static_cast<std::size_t>(b)] = a;
        frontier.push(b);
      }
    }
    if (!seen[static_cast<std::size_t>(v)]) break;
    // Augment along the path.
    ForkId at = v;
    while (at != u) {
      const PhilId p = via[static_cast<std::size_t>(at)];
      const ForkId prev = from[static_cast<std::size_t>(at)];
      const int dir = (t.left_of(p) == prev) ? +1 : -1;
      auto& u_p = used[static_cast<std::size_t>(p)];
      u_p = (u_p == -dir) ? 0 : dir;  // cancel or claim
      at = prev;
    }
    ++flow;
  }
  return flow;
}

std::optional<Cycle> thm1_premise(const Topology& t) {
  for (ForkId f = 0; f < t.num_forks(); ++f) {
    if (t.degree(f) < 3) continue;
    if (auto cycle = find_cycle_through(t, f)) return cycle;
  }
  return std::nullopt;
}

std::optional<std::pair<ForkId, ForkId>> thm2_premise(const Topology& t) {
  // Only fork pairs of degree >= 3 can carry three edge-disjoint paths.
  for (ForkId u = 0; u < t.num_forks(); ++u) {
    if (t.degree(u) < 3) continue;
    for (ForkId v = u + 1; v < t.num_forks(); ++v) {
      if (t.degree(v) < 3) continue;
      if (edge_disjoint_paths(t, u, v) >= 3) return std::make_pair(u, v);
    }
  }
  return std::nullopt;
}

std::vector<int> degree_histogram(const Topology& t) {
  std::vector<int> histogram(static_cast<std::size_t>(t.max_degree()) + 1, 0);
  for (ForkId f = 0; f < t.num_forks(); ++f) ++histogram[static_cast<std::size_t>(t.degree(f))];
  return histogram;
}

}  // namespace gdp::graph
