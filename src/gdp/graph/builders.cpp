#include "gdp/graph/builders.hpp"

#include <string>

#include "gdp/common/check.hpp"
#include "gdp/graph/algorithms.hpp"
#include "gdp/rng/rng.hpp"

namespace gdp::graph {

Topology classic_ring(int n) {
  GDP_CHECK_MSG(n >= 2, "classic_ring needs n >= 2, got " << n);
  Topology::Builder b("ring(" + std::to_string(n) + ")");
  b.add_forks(n);
  for (int i = 0; i < n; ++i) b.add_phil(i, (i + 1) % n);
  return std::move(b).build();
}

Topology parallel_arcs(int n) {
  GDP_CHECK_MSG(n >= 2, "parallel_arcs needs n >= 2, got " << n);
  Topology::Builder b("parallel(" + std::to_string(n) + ")");
  b.add_forks(2);
  for (int i = 0; i < n; ++i) b.add_phil(0, 1);
  return std::move(b).build();
}

Topology fig1a() {
  // Triangle of forks {0,1,2}; each side doubled: 6 philosophers.
  Topology::Builder b("fig1a(6ph,3f)");
  b.add_forks(3);
  // P1..P6 of the paper map to ids 0..5, placed so consecutive philosophers
  // share a fork going around the triangle twice.
  b.add_phil(0, 1);  // P1
  b.add_phil(1, 2);  // P2
  b.add_phil(2, 0);  // P3
  b.add_phil(0, 1);  // P4
  b.add_phil(1, 2);  // P5
  b.add_phil(2, 0);  // P6
  return std::move(b).build();
}

Topology fig1b() {
  Topology::Builder b("fig1b(12ph,6f)");
  b.add_forks(6);
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 6; ++i) b.add_phil(i, (i + 1) % 6);
  }
  return std::move(b).build();
}

Topology fig1c() {
  // 12-ring plus 4 chords: 16 philosophers, 12 forks; nodes 0,3,6,9 have
  // degree 3 (reconstruction; see header comment).
  Topology::Builder b("fig1c(16ph,12f)");
  b.add_forks(12);
  for (int i = 0; i < 12; ++i) b.add_phil(i, (i + 1) % 12);
  b.add_phil(0, 6);
  b.add_phil(3, 9);
  b.add_phil(0, 3);
  b.add_phil(6, 9);
  return std::move(b).build();
}

Topology fig1d() {
  // 8-ring plus a center fork (id 8) tied to ring nodes 0 and 4:
  // 10 philosophers, 9 forks (reconstruction; see header comment).
  Topology::Builder b("fig1d(10ph,9f)");
  b.add_forks(9);
  for (int i = 0; i < 8; ++i) b.add_phil(i, (i + 1) % 8);
  b.add_phil(0, 8);
  b.add_phil(4, 8);
  return std::move(b).build();
}

Topology ring_with_chord(int k) {
  GDP_CHECK_MSG(k >= 3, "ring_with_chord needs k >= 3, got " << k);
  Topology::Builder b("ring_chord(" + std::to_string(k) + ")");
  b.add_forks(k);
  for (int i = 0; i < k; ++i) b.add_phil(i, (i + 1) % k);
  b.add_phil(0, k / 2);
  return std::move(b).build();
}

Topology ring_with_pendant(int k) {
  GDP_CHECK_MSG(k >= 3, "ring_with_pendant needs k >= 3, got " << k);
  Topology::Builder b("ring_pendant(" + std::to_string(k) + ")");
  const ForkId g = k;  // the outside fork
  b.add_forks(k + 1);
  for (int i = 0; i < k; ++i) b.add_phil(i, (i + 1) % k);
  b.add_phil(0, g);
  return std::move(b).build();
}

Topology theta(int a, int b, int c) {
  GDP_CHECK_MSG(a >= 1 && b >= 1 && c >= 1,
                "theta path lengths must be >= 1, got " << a << "," << b << "," << c);
  Topology::Builder bld("theta(" + std::to_string(a) + "," + std::to_string(b) + "," +
                        std::to_string(c) + ")");
  const ForkId u = bld.add_forks(2);  // hubs u=0, v=1
  const ForkId v = u + 1;
  auto add_path = [&](int len) {
    // len philosophers, len-1 interior forks between u and v.
    ForkId prev = u;
    for (int i = 0; i < len - 1; ++i) {
      const ForkId mid = bld.add_forks(1);
      bld.add_phil(prev, mid);
      prev = mid;
    }
    bld.add_phil(prev, v);
  };
  add_path(a);
  add_path(b);
  add_path(c);
  return std::move(bld).build();
}

Topology star(int leaves) {
  GDP_CHECK_MSG(leaves >= 2, "star needs >= 2 leaves, got " << leaves);
  Topology::Builder b("star(" + std::to_string(leaves) + ")");
  const ForkId center = b.add_forks(1 + leaves);
  for (int i = 1; i <= leaves; ++i) b.add_phil(center, center + i);
  return std::move(b).build();
}

Topology grid(int rows, int cols) {
  GDP_CHECK_MSG(rows >= 1 && cols >= 1 && rows * cols >= 2,
                "grid needs at least two forks, got " << rows << "x" << cols);
  Topology::Builder b("grid(" + std::to_string(rows) + "x" + std::to_string(cols) + ")");
  b.add_forks(rows * cols);
  auto at = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_phil(at(r, c), at(r, c + 1));
      if (r + 1 < rows) b.add_phil(at(r, c), at(r + 1, c));
    }
  }
  return std::move(b).build();
}

Topology complete(int k) {
  GDP_CHECK_MSG(k >= 2, "complete needs k >= 2 forks, got " << k);
  Topology::Builder b("complete(" + std::to_string(k) + ")");
  b.add_forks(k);
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) b.add_phil(i, j);
  }
  return std::move(b).build();
}

Topology random_multigraph(int k, int n, rng::Rng& rng) {
  GDP_CHECK_MSG(k >= 2, "random_multigraph needs k >= 2 forks, got " << k);
  GDP_CHECK_MSG(n >= k - 1, "random_multigraph needs n >= k-1 arcs for connectivity, got " << n);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    Topology::Builder b("random(k=" + std::to_string(k) + ",n=" + std::to_string(n) + ")");
    b.add_forks(k);
    for (int i = 0; i < n; ++i) {
      const ForkId u = rng.uniform_int(0, k - 1);
      ForkId v = rng.uniform_int(0, k - 2);
      if (v >= u) ++v;  // distinct endpoints, uniform over the k-1 others
      b.add_phil(u, v);
    }
    Topology t = std::move(b).build();
    if (is_connected(t)) return t;
  }
  GDP_CHECK_MSG(false, "random_multigraph: failed to sample a connected system "
                           << "(k=" << k << ", n=" << n << ")");
  __builtin_unreachable();
}

}  // namespace gdp::graph
