// Structural queries on topologies, including executable versions of the
// premises of the paper's two negative theorems:
//
//   Theorem 1 (defeats LR1): the graph contains a ring subgraph H with a node
//     of H having at least three incident arcs.
//   Theorem 2 (defeats LR2): the graph contains two nodes connected by at
//     least three (edge-disjoint) paths.
//
// The benches use these to assert that a topology family really satisfies
// the premise being exercised.
#pragma once

#include <optional>
#include <vector>

#include "gdp/common/ids.hpp"
#include "gdp/graph/topology.hpp"

namespace gdp::graph {

/// A simple cycle: forks[i] --phils[i]-- forks[(i+1) % size]. Parallel arcs
/// make 2-cycles (two philosophers sharing both forks).
struct Cycle {
  std::vector<ForkId> forks;
  std::vector<PhilId> phils;

  int length() const { return static_cast<int>(phils.size()); }
};

/// Component id (0-based, dense) for every fork.
std::vector<int> connected_components(const Topology& t);

/// True if the fork graph is connected.
bool is_connected(const Topology& t);

/// First-Betti / cyclomatic number: |arcs| - |forks| + |components|.
/// Zero iff the system is a forest (acyclic).
int cyclomatic_number(const Topology& t);

/// Any simple cycle, or nullopt if the system is a forest.
std::optional<Cycle> find_cycle(const Topology& t);

/// Some cycle passing through fork `f`, or nullopt.
std::optional<Cycle> find_cycle_through(const Topology& t, ForkId f);

/// Maximum number of edge-disjoint paths between forks u and v
/// (unit-capacity max flow; arcs are undirected).
int edge_disjoint_paths(const Topology& t, ForkId u, ForkId v);

/// Theorem 1 premise. On success returns a witness cycle through a fork of
/// degree >= 3.
std::optional<Cycle> thm1_premise(const Topology& t);

/// Theorem 2 premise. On success returns the witness hub pair {u, v} with
/// edge_disjoint_paths(u, v) >= 3.
std::optional<std::pair<ForkId, ForkId>> thm2_premise(const Topology& t);

/// histogram[d] = number of forks with degree d.
std::vector<int> degree_histogram(const Topology& t);

}  // namespace gdp::graph
