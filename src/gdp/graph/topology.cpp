#include "gdp/graph/topology.hpp"

#include <algorithm>

#include "gdp/common/check.hpp"

namespace gdp::graph {

Side Topology::side_of(PhilId p, ForkId f) const {
  const Arc& a = arc(p);
  if (a.left == f) return Side::kLeft;
  GDP_CHECK_MSG(a.right == f, "fork " << f << " is not adjacent to philosopher " << p);
  return Side::kRight;
}

ForkId Topology::other_fork(PhilId p, ForkId f) const {
  const Arc& a = arc(p);
  if (a.left == f) return a.right;
  GDP_CHECK_MSG(a.right == f, "fork " << f << " is not adjacent to philosopher " << p);
  return a.left;
}

std::span<const PhilId> Topology::incident(ForkId f) const {
  const auto begin = static_cast<std::size_t>(incident_offset_[static_cast<std::size_t>(f)]);
  const auto end = static_cast<std::size_t>(incident_offset_[static_cast<std::size_t>(f) + 1]);
  return {incident_phils_.data() + begin, end - begin};
}

int Topology::max_degree() const {
  return fork_degree_.empty() ? 0 : *std::max_element(fork_degree_.begin(), fork_degree_.end());
}

int Topology::slot_of(ForkId f, PhilId p) const {
  const Arc& a = arc(p);
  if (a.left == f) return slot_left_[static_cast<std::size_t>(p)];
  GDP_CHECK_MSG(a.right == f, "fork " << f << " is not adjacent to philosopher " << p);
  return slot_right_[static_cast<std::size_t>(p)];
}

int Topology::slot_at(PhilId p, Side s) const {
  return s == Side::kLeft ? slot_left_[static_cast<std::size_t>(p)]
                          : slot_right_[static_cast<std::size_t>(p)];
}

std::vector<PhilId> Topology::neighbors(PhilId p) const {
  std::vector<PhilId> out;
  for (ForkId f : {left_of(p), right_of(p)}) {
    for (PhilId q : incident(f)) {
      if (q != p && std::find(out.begin(), out.end(), q) == out.end()) out.push_back(q);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool Topology::shares_fork(PhilId p, PhilId q) const {
  const Arc& a = arc(p);
  const Arc& b = arc(q);
  return a.left == b.left || a.left == b.right || a.right == b.left || a.right == b.right;
}

Topology::Builder::Builder(std::string name) : name_(std::move(name)) {}

ForkId Topology::Builder::add_forks(int count) {
  GDP_CHECK_MSG(count > 0, "add_forks(" << count << ")");
  const ForkId first = num_forks_;
  num_forks_ += count;
  return first;
}

PhilId Topology::Builder::add_phil(ForkId left, ForkId right) {
  GDP_CHECK_MSG(left >= 0 && left < num_forks_, "left fork " << left << " out of range");
  GDP_CHECK_MSG(right >= 0 && right < num_forks_, "right fork " << right << " out of range");
  GDP_CHECK_MSG(left != right,
                "philosopher must have two distinct forks (got fork " << left << " twice)");
  arcs_.push_back(Arc{left, right});
  return static_cast<PhilId>(arcs_.size() - 1);
}

Topology Topology::Builder::build() && {
  GDP_CHECK_MSG(num_forks_ >= 2, "a system needs k >= 2 forks (Definition 1)");
  GDP_CHECK_MSG(!arcs_.empty(), "a system needs n >= 1 philosophers (Definition 1)");

  Topology t;
  t.name_ = std::move(name_);
  t.arcs_ = std::move(arcs_);
  t.fork_degree_.assign(static_cast<std::size_t>(num_forks_), 0);
  for (const Arc& a : t.arcs_) {
    ++t.fork_degree_[static_cast<std::size_t>(a.left)];
    ++t.fork_degree_[static_cast<std::size_t>(a.right)];
  }

  // CSR incidence lists, philosophers in id order within each fork.
  t.incident_offset_.assign(static_cast<std::size_t>(num_forks_) + 1, 0);
  for (int f = 0; f < num_forks_; ++f) {
    t.incident_offset_[static_cast<std::size_t>(f) + 1] =
        t.incident_offset_[static_cast<std::size_t>(f)] + t.fork_degree_[static_cast<std::size_t>(f)];
  }
  t.incident_phils_.assign(t.incident_offset_.back(), kNoPhil);
  std::vector<int> cursor(t.incident_offset_.begin(), t.incident_offset_.end() - 1);
  t.slot_left_.assign(t.arcs_.size(), 0);
  t.slot_right_.assign(t.arcs_.size(), 0);
  for (PhilId p = 0; p < static_cast<PhilId>(t.arcs_.size()); ++p) {
    const Arc& a = t.arcs_[static_cast<std::size_t>(p)];
    auto place = [&](ForkId f) {
      const int at = cursor[static_cast<std::size_t>(f)]++;
      t.incident_phils_[static_cast<std::size_t>(at)] = p;
      return at - t.incident_offset_[static_cast<std::size_t>(f)];
    };
    t.slot_left_[static_cast<std::size_t>(p)] = place(a.left);
    t.slot_right_[static_cast<std::size_t>(p)] = place(a.right);
  }
  return t;
}

}  // namespace gdp::graph
