// Hypergraph topologies for the paper's §6 open problem: "the even more
// general case of hypergraph-like connection structures, in which a
// philosopher may need more than two forks to eat".
//
// A philosopher is now a hyperedge over d >= 2 forks. The two-fork Topology
// embeds as the d == 2 case. Only the GDP-H algorithm (gdp/algos/gdp_hyper)
// and experiment E11 use these.
#pragma once

#include <string>
#include <vector>

#include "gdp/common/ids.hpp"

namespace gdp::rng {
class Rng;
}

namespace gdp::graph {

class HyperTopology {
 public:
  class Builder;

  int num_forks() const { return num_forks_; }
  int num_phils() const { return static_cast<int>(edges_.size()); }

  /// The forks philosopher p needs (all of them, to eat). Sorted, distinct.
  const std::vector<ForkId>& forks_of(PhilId p) const {
    return edges_[static_cast<std::size_t>(p)];
  }
  int arity(PhilId p) const { return static_cast<int>(forks_of(p).size()); }

  /// Philosophers needing fork f.
  const std::vector<PhilId>& incident(ForkId f) const {
    return incident_[static_cast<std::size_t>(f)];
  }
  int degree(ForkId f) const { return static_cast<int>(incident(f).size()); }

  const std::string& name() const { return name_; }

 private:
  HyperTopology() = default;

  int num_forks_ = 0;
  std::vector<std::vector<ForkId>> edges_;
  std::vector<std::vector<PhilId>> incident_;
  std::string name_;
};

class HyperTopology::Builder {
 public:
  explicit Builder(std::string name = "hyper");
  ForkId add_forks(int count);
  /// Adds a philosopher needing every fork in `forks` (>= 2, distinct).
  PhilId add_phil(std::vector<ForkId> forks);
  HyperTopology build() &&;

 private:
  std::string name_;
  int num_forks_ = 0;
  std::vector<std::vector<ForkId>> edges_;
};

/// Ring of k forks where philosopher i needs the d consecutive forks
/// i, i+1, ..., i+d-1 (mod k). k philosophers. Requires 2 <= d <= k - 1.
HyperTopology hyper_ring(int k, int d);

/// n philosophers, each over d uniformly-random distinct forks of k.
HyperTopology hyper_random(int k, int n, int d, rng::Rng& rng);

}  // namespace gdp::graph
