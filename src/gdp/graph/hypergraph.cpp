#include "gdp/graph/hypergraph.hpp"

#include <algorithm>

#include "gdp/common/check.hpp"
#include "gdp/rng/rng.hpp"

namespace gdp::graph {

HyperTopology::Builder::Builder(std::string name) : name_(std::move(name)) {}

ForkId HyperTopology::Builder::add_forks(int count) {
  GDP_CHECK_MSG(count > 0, "add_forks(" << count << ")");
  const ForkId first = num_forks_;
  num_forks_ += count;
  return first;
}

PhilId HyperTopology::Builder::add_phil(std::vector<ForkId> forks) {
  GDP_CHECK_MSG(forks.size() >= 2, "a hyper-philosopher needs >= 2 forks");
  std::sort(forks.begin(), forks.end());
  GDP_CHECK_MSG(std::adjacent_find(forks.begin(), forks.end()) == forks.end(),
                "a hyper-philosopher's forks must be distinct");
  GDP_CHECK_MSG(forks.front() >= 0 && forks.back() < num_forks_, "fork id out of range");
  edges_.push_back(std::move(forks));
  return static_cast<PhilId>(edges_.size() - 1);
}

HyperTopology HyperTopology::Builder::build() && {
  GDP_CHECK_MSG(num_forks_ >= 2, "a system needs k >= 2 forks");
  GDP_CHECK_MSG(!edges_.empty(), "a system needs n >= 1 philosophers");
  HyperTopology t;
  t.name_ = std::move(name_);
  t.num_forks_ = num_forks_;
  t.edges_ = std::move(edges_);
  t.incident_.assign(static_cast<std::size_t>(num_forks_), {});
  for (PhilId p = 0; p < static_cast<PhilId>(t.edges_.size()); ++p) {
    for (ForkId f : t.edges_[static_cast<std::size_t>(p)]) {
      t.incident_[static_cast<std::size_t>(f)].push_back(p);
    }
  }
  return t;
}

HyperTopology hyper_ring(int k, int d) {
  GDP_CHECK_MSG(k >= 3, "hyper_ring needs k >= 3 forks, got " << k);
  GDP_CHECK_MSG(d >= 2 && d <= k - 1, "hyper_ring needs 2 <= d <= k-1, got d=" << d);
  HyperTopology::Builder b("hyper_ring(k=" + std::to_string(k) + ",d=" + std::to_string(d) + ")");
  b.add_forks(k);
  for (int i = 0; i < k; ++i) {
    std::vector<ForkId> forks;
    forks.reserve(static_cast<std::size_t>(d));
    for (int j = 0; j < d; ++j) forks.push_back((i + j) % k);
    b.add_phil(std::move(forks));
  }
  return std::move(b).build();
}

HyperTopology hyper_random(int k, int n, int d, rng::Rng& rng) {
  GDP_CHECK_MSG(k >= 2 && d >= 2 && d <= k, "hyper_random needs 2 <= d <= k");
  HyperTopology::Builder b("hyper_random(k=" + std::to_string(k) + ",n=" + std::to_string(n) +
                           ",d=" + std::to_string(d) + ")");
  b.add_forks(k);
  for (int i = 0; i < n; ++i) {
    // Floyd's algorithm for a uniform d-subset of [0, k).
    std::vector<ForkId> picked;
    for (int j = k - d; j < k; ++j) {
      const int candidate = rng.uniform_int(0, j);
      if (std::find(picked.begin(), picked.end(), candidate) == picked.end()) {
        picked.push_back(candidate);
      } else {
        picked.push_back(j);
      }
    }
    b.add_phil(std::move(picked));
  }
  return std::move(b).build();
}

}  // namespace gdp::graph
