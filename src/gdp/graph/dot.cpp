#include "gdp/graph/dot.hpp"

#include <sstream>

#include "gdp/common/strings.hpp"
#include "gdp/sim/state.hpp"

namespace gdp::graph {

std::string to_dot(const Topology& t) {
  std::ostringstream out;
  out << "graph \"" << t.name() << "\" {\n";
  out << "  node [shape=point, width=0.15];\n";
  for (ForkId f = 0; f < t.num_forks(); ++f) {
    out << "  f" << f << " [xlabel=\"" << fork_name(f) << "\"];\n";
  }
  for (PhilId p = 0; p < t.num_phils(); ++p) {
    out << "  f" << t.left_of(p) << " -- f" << t.right_of(p) << " [label=\"" << phil_name(p)
        << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

std::string to_dot(const Topology& t, const sim::SimState& state) {
  std::ostringstream out;
  out << "graph \"" << t.name() << "\" {\n";
  out << "  node [shape=circle, width=0.3, fontsize=10];\n";
  for (ForkId f = 0; f < t.num_forks(); ++f) {
    const auto& fork = state.fork(f);
    out << "  f" << f << " [label=\"" << fork_name(f);
    if (fork.nr != 0) out << "\\nnr=" << fork.nr;
    out << "\"";
    if (!fork.free()) out << ", style=filled, fillcolor=lightgray";
    out << "];\n";
  }
  for (PhilId p = 0; p < t.num_phils(); ++p) {
    const auto& phil = state.phil(p);
    const char* color = "black";
    switch (phil.phase) {
      case sim::Phase::kEating: color = "forestgreen"; break;
      case sim::Phase::kTrySecond:
      case sim::Phase::kRenumber: color = "orange"; break;
      case sim::Phase::kCommit: color = "blue"; break;
      default: break;
    }
    out << "  f" << t.left_of(p) << " -- f" << t.right_of(p) << " [label=\"" << phil_name(p)
        << "\\n" << sim::to_string(phil.phase) << "\", color=" << color << "];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace gdp::graph
