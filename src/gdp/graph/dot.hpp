// Graphviz export, for inspecting topologies and annotated simulation states.
#pragma once

#include <string>

#include "gdp/graph/topology.hpp"

namespace gdp::sim {
struct SimState;
}

namespace gdp::graph {

/// Plain topology: forks as nodes, philosophers as labelled arcs.
std::string to_dot(const Topology& t);

/// Topology annotated with a simulation state: fork labels carry the `nr`
/// value, arcs are colored by philosopher phase, held forks show the holder.
std::string to_dot(const Topology& t, const sim::SimState& state);

}  // namespace gdp::graph
