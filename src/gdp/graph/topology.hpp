// The generalized dining-philosophers topology (paper §2, Definition 1).
//
// A system is an undirected *multigraph* whose nodes are forks and whose arcs
// are philosophers: a philosopher is an arc between its two (distinct) forks,
// a fork may be shared by arbitrarily many philosophers, and parallel arcs
// are allowed (two philosophers sharing both forks — Figure 1's leftmost
// system is a triangle of forks with every arc doubled).
//
// Each philosopher fixes a `left`/`right` designation for its endpoints at
// construction time. The designation carries no meaning beyond the paper's
// own use of the words (the random draw picks between the two).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "gdp/common/ids.hpp"

namespace gdp::graph {

/// One philosopher: an arc between two distinct forks.
struct Arc {
  ForkId left = kNoFork;
  ForkId right = kNoFork;

  ForkId fork(Side s) const { return s == Side::kLeft ? left : right; }
  bool operator==(const Arc&) const = default;
};

/// Immutable system topology. Create through Topology::Builder or the
/// builders in gdp/graph/builders.hpp.
class Topology {
 public:
  class Builder;

  int num_forks() const { return static_cast<int>(fork_degree_.size()); }
  int num_phils() const { return static_cast<int>(arcs_.size()); }

  /// The arc (fork pair) of philosopher `p`.
  const Arc& arc(PhilId p) const { return arcs_[static_cast<std::size_t>(p)]; }
  ForkId fork_of(PhilId p, Side s) const { return arc(p).fork(s); }
  ForkId left_of(PhilId p) const { return arc(p).left; }
  ForkId right_of(PhilId p) const { return arc(p).right; }

  /// Given one of p's forks, the side it sits on. Precondition: f is one of
  /// p's forks.
  Side side_of(PhilId p, ForkId f) const;

  /// Given one of p's forks, the *other* one ("other(fork)" in the paper).
  ForkId other_fork(PhilId p, ForkId f) const;

  /// Philosophers incident on fork `f`, in a fixed order. The position of a
  /// philosopher within this list is its *slot*, used to index per-fork
  /// per-sharer state (request flags, guest-book ranks).
  std::span<const PhilId> incident(ForkId f) const;

  /// Number of philosophers sharing fork `f` (the node degree).
  int degree(ForkId f) const { return fork_degree_[static_cast<std::size_t>(f)]; }
  int max_degree() const;

  /// Slot of philosopher `p` within incident(f). Precondition: p touches f.
  int slot_of(ForkId f, PhilId p) const;
  /// Slot of p within its own left/right fork's incidence list (O(1)).
  int slot_at(PhilId p, Side s) const;

  /// Philosophers (other than p) sharing at least one fork with p.
  std::vector<PhilId> neighbors(PhilId p) const;

  /// True if p and q (p != q) share at least one fork.
  bool shares_fork(PhilId p, PhilId q) const;

  /// Human-readable name, e.g. "ring(5)" or "fig1a(6ph,3f)".
  const std::string& name() const { return name_; }

  bool operator==(const Topology& rhs) const {
    return arcs_ == rhs.arcs_ && num_forks() == rhs.num_forks();
  }

 private:
  Topology() = default;

  std::vector<Arc> arcs_;
  std::vector<int> fork_degree_;
  // CSR incidence: incident(f) = incident_phils_[offset_[f] .. offset_[f+1])
  std::vector<int> incident_offset_;
  std::vector<PhilId> incident_phils_;
  // Per philosopher: slot within the left / right fork's incidence list.
  std::vector<int> slot_left_;
  std::vector<int> slot_right_;
  std::string name_;
};

/// Incremental construction with validation (Definition 1's constraints:
/// k >= 2 forks, every philosopher has two *distinct* forks).
class Topology::Builder {
 public:
  explicit Builder(std::string name = "custom");

  /// Declares `count` additional forks; returns the id of the first.
  ForkId add_forks(int count);

  /// Adds a philosopher between the two distinct forks; returns its id.
  PhilId add_phil(ForkId left, ForkId right);

  /// Validates and freezes. Throws PreconditionError on a malformed system.
  Topology build() &&;

 private:
  std::string name_;
  int num_forks_ = 0;
  std::vector<Arc> arcs_;
};

}  // namespace gdp::graph
