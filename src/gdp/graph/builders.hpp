// Ready-made topologies.
//
// Includes every system the paper draws or uses in a proof:
//   * classic_ring      — Dijkstra's table (the setting of Lehmann & Rabin)
//   * fig1a..fig1d      — the four example systems of Figure 1
//   * ring_with_chord / ring_with_pendant — the Theorem 1 premise (a ring
//                         with a node of degree >= 3)
//   * theta             — the Theorem 2 premise (two nodes joined by three
//                         paths); theta(1,1,1) == parallel_arcs(3) is the
//                         minimal LR2 counterexample
// plus families used by the benches (stars, grids, random multigraphs).
//
// Figure 1's third and fourth drawings give only the philosopher/fork counts
// (16ph/12f and 10ph/9f); fig1c/fig1d are faithful reconstructions with the
// same counts and the same qualitative features (ring subgraphs with
// high-degree nodes). DESIGN.md records this substitution.
#pragma once

#include <cstdint>

#include "gdp/graph/topology.hpp"

namespace gdp::rng {
class Rng;
}

namespace gdp::graph {

/// Dijkstra's round table: n >= 2 philosophers, n forks, alternating.
/// Philosopher i sits between fork i (left) and fork (i+1) mod n (right).
Topology classic_ring(int n);

/// Two forks joined by `n >= 2` parallel philosophers. The fork is shared by
/// all n philosophers; this is the smallest "generalized" system.
Topology parallel_arcs(int n);

/// Figure 1, leftmost: 6 philosophers, 3 forks — a triangle of forks with
/// every arc doubled. This is the system of the §3 counterexample to LR1.
Topology fig1a();

/// Figure 1, second: 12 philosophers, 6 forks — a hexagon with doubled arcs.
Topology fig1b();

/// Figure 1, third (reconstruction): 16 philosophers, 12 forks — a 12-ring
/// with 4 chords, so four ring nodes have degree 3.
Topology fig1c();

/// Figure 1, rightmost (reconstruction): 10 philosophers, 9 forks — an
/// 8-ring plus a center fork tied to two opposite ring nodes.
Topology fig1d();

/// A ring of `k >= 3` forks/philosophers plus one chord philosopher between
/// node 0 and node k/2. Node 0 has three incident arcs: Theorem 1 premise.
Topology ring_with_chord(int k);

/// A ring of `k >= 3` plus one pendant philosopher from ring node 0 to a
/// fresh outside fork g (Figure 2 allows g inside or outside H).
Topology ring_with_pendant(int k);

/// Two hub forks joined by three internally disjoint paths with a, b, c
/// philosophers (each >= 1). The union of any two paths is a ring H and the
/// third is the extra path: Theorem 2 premise. theta(1,1,1) == parallel_arcs(3).
Topology theta(int a, int b, int c);

/// One center fork, `leaves >= 2` outer forks, one philosopher per leaf.
/// The center fork is shared by all philosophers.
Topology star(int leaves);

/// Forks at the vertices of a rows x cols grid, a philosopher on every grid
/// edge. rows*cols forks, rows*(cols-1) + cols*(rows-1) philosophers.
Topology grid(int rows, int cols);

/// A philosopher for every unordered pair of `k >= 2` forks (complete graph).
Topology complete(int k);

/// `n` philosophers over `k` forks with independently uniform distinct
/// endpoints. Guaranteed connected (rejection-sampled); deterministic in rng.
Topology random_multigraph(int k, int n, rng::Rng& rng);

}  // namespace gdp::graph
