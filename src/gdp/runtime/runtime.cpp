#include "gdp/runtime/runtime.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <memory>
#include <thread>

#include "gdp/common/check.hpp"
#include "gdp/obs/obs.hpp"
#include "gdp/rng/rng.hpp"
#include "gdp/runtime/atomic_fork.hpp"
#include "gdp/runtime/shared_books.hpp"

namespace gdp::runtime {
namespace {

enum class Kind : std::uint8_t { kLr1, kLr2, kGdp1, kGdp2, kGdp2c, kOrdered, kTicket };

Kind parse_kind(const std::string& name) {
  if (name == "lr1") return Kind::kLr1;
  if (name == "lr2") return Kind::kLr2;
  if (name == "gdp1") return Kind::kGdp1;
  if (name == "gdp2") return Kind::kGdp2;
  if (name == "gdp2c") return Kind::kGdp2c;
  if (name == "ordered") return Kind::kOrdered;
  if (name == "ticket") return Kind::kTicket;
  GDP_CHECK_MSG(false, "run_threads: unsupported algorithm '" << name << "'");
  __builtin_unreachable();
}

bool uses_books(Kind kind) { return kind == Kind::kLr2 || kind == Kind::kGdp2 || kind == Kind::kGdp2c; }
bool is_gdp(Kind kind) {
  return kind == Kind::kGdp1 || kind == Kind::kGdp2 || kind == Kind::kGdp2c;
}

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

/// Calibrated-ish busy work for think/eat phases.
inline void busy_work(int iterations) {
  for (int i = 0; i < iterations; ++i) cpu_relax();
}

struct Shared {
  explicit Shared(const graph::Topology& t) : topology(t) {}
  const graph::Topology& topology;
  std::deque<AtomicFork> forks;                  // stable addresses, non-movable ok
  std::deque<std::atomic<int>> eaters_canary;    // per fork: concurrent users
  std::vector<std::unique_ptr<ForkBooks>> books;
  std::atomic<std::int32_t> tickets{0};

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> meals{0};
  std::atomic<std::uint64_t> violations{0};
  std::uint64_t target_meals = 0;

  Kind kind = Kind::kGdp1;
  int m = 0;
  double p_left = 0.5;
  int think_work = 0;
  int eat_work = 0;
};

struct WorkerOutput {
  std::uint64_t meals = 0;
  std::vector<std::uint64_t> hunger_ns;  // capped sample of hunger latencies
};

constexpr std::size_t kMaxLatencySamples = 200'000;

class Worker {
 public:
  Worker(Shared& shared, PhilId id, std::uint64_t seed, WorkerOutput& out)
      : s_(shared),
        id_(id),
        rng_(seed),
        out_(out),
        left_(shared.topology.left_of(id)),
        right_(shared.topology.right_of(id)),
        slot_left_(shared.topology.slot_at(id, Side::kLeft)),
        slot_right_(shared.topology.slot_at(id, Side::kRight)) {}

  void run() {
    while (!s_.stop.load(std::memory_order_relaxed)) {
      busy_work(s_.think_work);  // think
      // Hunger-latency episode starts here; obs::Stopwatch is the blessed
      // timing-plane clock, so no lint suppression is needed.
      const obs::Stopwatch hunger_clock;

      if (s_.kind == Kind::kTicket && !acquire_ticket()) break;
      if (uses_books(s_.kind)) {
        s_.books[static_cast<std::size_t>(left_)]->insert_request(slot_left_);
        s_.books[static_cast<std::size_t>(right_)]->insert_request(slot_right_);
      }

      if (!acquire_both()) {  // false only on stop
        cleanup_requests();
        break;
      }

      // --- eating: canary checks mutual exclusion on both forks.
      enter_canary(left_);
      enter_canary(right_);
      record_hunger(hunger_clock.elapsed_ns());
      busy_work(s_.eat_work);
      exit_canary(right_);
      exit_canary(left_);

      if (uses_books(s_.kind)) {
        s_.books[static_cast<std::size_t>(left_)]->remove_request(slot_left_);
        s_.books[static_cast<std::size_t>(right_)]->remove_request(slot_right_);
        s_.books[static_cast<std::size_t>(left_)]->mark_used(slot_left_);
        s_.books[static_cast<std::size_t>(right_)]->mark_used(slot_right_);
      }
      s_.forks[static_cast<std::size_t>(left_)].release(id_);
      s_.forks[static_cast<std::size_t>(right_)].release(id_);
      if (s_.kind == Kind::kTicket) s_.tickets.fetch_add(1, std::memory_order_release);

      ++out_.meals;
      const std::uint64_t total = s_.meals.fetch_add(1, std::memory_order_relaxed) + 1;
      if (s_.target_meals != 0 && total >= s_.target_meals) {
        s_.stop.store(true, std::memory_order_relaxed);
      }
    }
    cleanup_requests();
  }

 private:
  AtomicFork& fork(ForkId f) { return s_.forks[static_cast<std::size_t>(f)]; }
  ForkBooks& books(ForkId f) { return *s_.books[static_cast<std::size_t>(f)]; }
  int slot_of(ForkId f) const { return f == left_ ? slot_left_ : slot_right_; }

  bool stopped() const { return s_.stop.load(std::memory_order_relaxed); }

  Side choose_first() {
    switch (s_.kind) {
      case Kind::kLr1:
      case Kind::kLr2:
        return rng_.choose_side(s_.p_left);
      case Kind::kGdp1:
      case Kind::kGdp2:
      case Kind::kGdp2c:
        // Table 3 step 2: higher nr first, ties to the right.
        return fork(left_).nr() > fork(right_).nr() ? Side::kLeft : Side::kRight;
      case Kind::kOrdered:
        return left_ > right_ ? Side::kLeft : Side::kRight;
      case Kind::kTicket:
        return Side::kLeft;
    }
    return Side::kLeft;
  }

  /// Spin until the first fork is taken (test-and-set; LR2/GDP2 add Cond).
  bool take_first(ForkId f) {
    const bool courteous = uses_books(s_.kind);
    for (std::uint32_t spins = 0;; ++spins) {
      if (stopped()) return false;
      if (fork(f).is_free() && (!courteous || books(f).cond_holds(slot_of(f))) &&
          fork(f).try_take(id_)) {
        return true;
      }
      if ((spins & 0x3ff) == 0x3ff) std::this_thread::yield();
      cpu_relax();
    }
  }

  /// Single attempt on the second fork, per the release-and-retry scheme.
  bool try_second(ForkId g) {
    if (s_.kind == Kind::kGdp2c && !books(g).cond_holds(slot_of(g))) return false;
    return fork(g).try_take(id_);
  }

  /// Hold-and-wait spin for the ordered/ticket baselines.
  bool wait_second(ForkId g) {
    for (std::uint32_t spins = 0;; ++spins) {
      if (stopped()) return false;
      if (fork(g).try_take(id_)) return true;
      if ((spins & 0x3ff) == 0x3ff) std::this_thread::yield();
      cpu_relax();
    }
  }

  bool acquire_both() {
    while (true) {
      if (stopped()) return false;
      const Side side = choose_first();
      const ForkId f = side == Side::kLeft ? left_ : right_;
      const ForkId g = side == Side::kLeft ? right_ : left_;
      if (!take_first(f)) return false;

      if (is_gdp(s_.kind) && fork(f).nr() == fork(g).nr()) {
        fork(f).set_nr(id_, static_cast<std::uint16_t>(rng_.uniform_int(1, s_.m)));
      }

      if (s_.kind == Kind::kOrdered || s_.kind == Kind::kTicket) {
        if (!wait_second(g)) {
          fork(f).release(id_);
          return false;
        }
        return true;
      }
      if (try_second(g)) return true;
      fork(f).release(id_);  // release and re-choose (goto 2/3)
      cpu_relax();
    }
  }

  bool acquire_ticket() {
    while (true) {
      if (stopped()) return false;
      std::int32_t available = s_.tickets.load(std::memory_order_acquire);
      while (available > 0) {
        if (s_.tickets.compare_exchange_weak(available, available - 1,
                                             std::memory_order_acquire,
                                             std::memory_order_relaxed)) {
          return true;
        }
      }
      std::this_thread::yield();
    }
  }

  void enter_canary(ForkId f) {
    const int users = s_.eaters_canary[static_cast<std::size_t>(f)].fetch_add(
                          1, std::memory_order_acq_rel) +
                      1;
    if (users != 1 || fork(f).holder() != id_) {
      s_.violations.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void exit_canary(ForkId f) {
    s_.eaters_canary[static_cast<std::size_t>(f)].fetch_sub(1, std::memory_order_acq_rel);
  }

  /// One latency observation per hunger episode: the capped local sample
  /// keeps exact quantiles for RuntimeResult, and the obs timing-plane
  /// histogram carries the distribution into the run report (a no-op
  /// relaxed load when GDP_OBS is off).
  void record_hunger(std::uint64_t hunger_ns) {
    static obs::Histogram& hunger_hist =
        obs::Registry::global().histogram("runtime.hunger_ns", obs::Plane::kTiming);
    hunger_hist.record(hunger_ns);
    if (out_.hunger_ns.size() >= kMaxLatencySamples) return;
    out_.hunger_ns.push_back(hunger_ns);
  }

  void cleanup_requests() {
    if (!uses_books(s_.kind)) return;
    books(left_).remove_request(slot_left_);
    books(right_).remove_request(slot_right_);
  }

  Shared& s_;
  const PhilId id_;
  rng::Rng rng_;
  WorkerOutput& out_;
  const ForkId left_, right_;
  const int slot_left_, slot_right_;
};

double quantile_ns(std::vector<std::uint64_t>& all, double q) {
  if (all.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(all.size() - 1));
  std::nth_element(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(idx), all.end());
  return static_cast<double>(all[idx]);
}

}  // namespace

bool RuntimeResult::everyone_ate() const {
  return std::all_of(meals_of.begin(), meals_of.end(), [](std::uint64_t m) { return m > 0; });
}

std::vector<std::string> runtime_algorithms() {
  return {"lr1", "lr2", "gdp1", "gdp2", "gdp2c", "ordered", "ticket"};
}

RuntimeResult run_threads(const graph::Topology& t, const RuntimeConfig& config) {
  GDP_CHECK_MSG(config.duration.count() > 0 || config.target_meals > 0,
                "run_threads needs a duration or a meal target");

  Shared shared(t);
  shared.kind = parse_kind(config.algorithm);
  shared.m = config.m != 0 ? config.m : t.num_forks();
  GDP_CHECK_MSG(shared.m >= t.num_forks(), "GDP requires m >= k");
  shared.p_left = config.p_left;
  shared.think_work = config.think_work;
  shared.eat_work = config.eat_work;
  shared.target_meals = config.target_meals;
  shared.tickets.store(t.num_phils() - 1);

  for (ForkId f = 0; f < t.num_forks(); ++f) {
    shared.forks.emplace_back();
    shared.eaters_canary.emplace_back(0);
    shared.books.push_back(uses_books(shared.kind)
                               ? std::make_unique<ForkBooks>(t.degree(f))
                               : nullptr);
    if (uses_books(shared.kind)) {
      GDP_CHECK_MSG(t.degree(f) <= 64, "book-keeping runtime needs fork degree <= 64");
    }
  }

  std::vector<WorkerOutput> outputs(static_cast<std::size_t>(t.num_phils()));
  rng::Rng seeder(config.seed);

  // Duration cutoff and elapsed-seconds report run off the blessed
  // timing-plane stopwatch; meal counts are per-run observations, never
  // golden-file inputs.
  const obs::Stopwatch run_clock;
  const auto duration_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(config.duration).count());
  {
    // gdp-lint: allow(raw-thread) — the point of this harness is one OS thread
    // per philosopher contending on real atomics; the deterministic pool's
    // park-at-index idiom does not apply to a live mutual-exclusion run
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(t.num_phils()));
    for (PhilId p = 0; p < t.num_phils(); ++p) {
      const std::uint64_t seed = seeder.split(static_cast<std::uint64_t>(p)).next_u64();
      threads.emplace_back([&shared, p, seed, &outputs] {
        Worker worker(shared, p, seed, outputs[static_cast<std::size_t>(p)]);
        worker.run();
      });
    }
    if (config.duration.count() > 0) {
      while (!shared.stop.load(std::memory_order_relaxed) &&
             run_clock.elapsed_ns() < duration_ns) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      shared.stop.store(true, std::memory_order_relaxed);
    }
    // jthreads join here; meal-target runs stop themselves.
  }
  const double elapsed_seconds = run_clock.seconds();

  RuntimeResult result;
  result.meals_of.reserve(outputs.size());
  std::vector<std::uint64_t> all_latencies;
  for (const WorkerOutput& out : outputs) {
    result.meals_of.push_back(out.meals);
    result.total_meals += out.meals;
    all_latencies.insert(all_latencies.end(), out.hunger_ns.begin(), out.hunger_ns.end());
  }
  result.elapsed_seconds = elapsed_seconds;
  result.meals_per_second =
      result.elapsed_seconds > 0 ? static_cast<double>(result.total_meals) / result.elapsed_seconds
                                 : 0.0;
  result.hunger_p50_ns = quantile_ns(all_latencies, 0.50);
  result.hunger_p99_ns = quantile_ns(all_latencies, 0.99);
  if (!all_latencies.empty()) {
    result.hunger_max_ns =
        static_cast<double>(*std::max_element(all_latencies.begin(), all_latencies.end()));
  }
  result.exclusion_violations = shared.violations.load();
  return result;
}

}  // namespace gdp::runtime
