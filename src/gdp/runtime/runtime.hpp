// Real-concurrency runtime: one std::thread per philosopher, lock-free
// atomic forks, OS scheduling as the adversary. Validates that the
// algorithms are not simulation artifacts and measures throughput /
// latency / fairness at hardware speed (experiment E12).
//
// Supported algorithms: lr1, lr2, gdp1, gdp2, gdp2c, ordered, ticket.
// (colored and arbiter are simulation-only baselines.)
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "gdp/graph/topology.hpp"

namespace gdp::runtime {

struct RuntimeConfig {
  std::string algorithm = "gdp1";
  std::uint64_t seed = 1;

  /// Stop conditions: whichever hits first. A zero disables it; at least
  /// one must be set.
  std::chrono::milliseconds duration{0};
  std::uint64_t target_meals = 0;

  /// GDP numbering range (0 = k) and LR draw bias.
  int m = 0;
  double p_left = 0.5;

  /// Busy work inside think/eat (iterations of a pause loop) to shape
  /// contention; 0 = immediately hungry / instant meals.
  int think_work = 0;
  int eat_work = 0;
};

struct RuntimeResult {
  std::uint64_t total_meals = 0;
  std::vector<std::uint64_t> meals_of;
  double elapsed_seconds = 0.0;
  double meals_per_second = 0.0;

  /// Hunger (hungry -> both forks) latency stats, nanoseconds.
  double hunger_p50_ns = 0.0;
  double hunger_p99_ns = 0.0;
  double hunger_max_ns = 0.0;

  /// Mutual-exclusion violations observed by the eating canary (must be 0).
  std::uint64_t exclusion_violations = 0;

  bool everyone_ate() const;
};

/// Runs the configured algorithm on `t` with real threads. Throws
/// PreconditionError for unsupported algorithm names or configs.
RuntimeResult run_threads(const graph::Topology& t, const RuntimeConfig& config);

/// Algorithm names run_threads accepts.
std::vector<std::string> runtime_algorithms();

}  // namespace gdp::runtime
