// A fork as a lock-free shared object. The paper's atomic
// "if isFree(fork) then take(fork)" test-and-set is a single
// compare-exchange on the holder word; nr is the GDP number field (§4),
// written only by the current holder, read by anyone (relaxed is fine for
// the algorithm's correctness: nr is a heuristic priority, and the proofs
// only need that writes eventually become visible — acquire/release gives
// us that and keeps the TSan story clean).
#pragma once

#include <atomic>
#include <cstdint>

#include "gdp/common/check.hpp"
#include "gdp/common/ids.hpp"
#include "gdp/common/thread_annotations.hpp"

namespace gdp::runtime {

/// Declared a capability so data reachable only through fork ownership can
/// say so (`GDP_GUARDED_BY(lock)` on pi::Channel's offer list). take/release
/// are deliberately NOT acquire/release-annotated: the dining algorithms
/// take forks conditionally across loop iterations and hand them between
/// phases — flow the static analysis cannot follow — so the holder
/// discipline stays enforced dynamically by the GDP_DCHECKs below, and
/// functions touching fork-guarded data document themselves with
/// GDP_NO_THREAD_SAFETY_ANALYSIS plus a justification.
class GDP_CAPABILITY("fork") AtomicFork {
 public:
  AtomicFork() = default;
  AtomicFork(const AtomicFork&) = delete;
  AtomicFork& operator=(const AtomicFork&) = delete;

  /// Atomic test-and-set: true iff the fork was free and is now held by p.
  bool try_take(PhilId p) {
    PhilId expected = kNoPhil;
    return holder_.compare_exchange_strong(expected, p, std::memory_order_acquire,
                                           std::memory_order_relaxed);
  }

  /// Release by the holder. Checked in debug builds.
  void release(PhilId p) {
    GDP_DCHECK(holder_.load(std::memory_order_relaxed) == p);
    (void)p;
    holder_.store(kNoPhil, std::memory_order_release);
  }

  bool is_free() const { return holder_.load(std::memory_order_acquire) == kNoPhil; }
  PhilId holder() const { return holder_.load(std::memory_order_acquire); }

  std::uint16_t nr() const { return nr_.load(std::memory_order_acquire); }

  /// Paper rule: only the philosopher holding the fork may renumber it.
  void set_nr(PhilId p, std::uint16_t value) {
    GDP_DCHECK(holder_.load(std::memory_order_relaxed) == p);
    (void)p;
    nr_.store(value, std::memory_order_release);
  }

 private:
  std::atomic<PhilId> holder_{kNoPhil};
  std::atomic<std::uint16_t> nr_{0};
};

}  // namespace gdp::runtime
