// The request list r and guest book g of LR2/GDP2 (§3.2) as a small
// monitor: one mutex per fork guarding the per-sharer request bits and
// last-use stamps. Cond(fork) is evaluated under the same lock the inserts
// take, so the courtesy test reads a consistent snapshot (the paper assumes
// fork operations are atomic; footnote 3 stores the distinction between
// sharers inside the fork, exactly as the slot indexing does here).
//
// The lock discipline is statically checked: every book field is
// GDP_GUARDED_BY(mu_), so a future accessor that forgets the monitor lock
// fails the clang -Werror=thread-safety build instead of racing at runtime.
#pragma once

#include <cstdint>
#include <vector>

#include "gdp/common/ids.hpp"
#include "gdp/common/thread_annotations.hpp"

namespace gdp::runtime {

class ForkBooks {
 public:
  explicit ForkBooks(int degree)
      : last_use_(static_cast<std::size_t>(degree), 0) {}
  ForkBooks(const ForkBooks&) = delete;
  ForkBooks& operator=(const ForkBooks&) = delete;

  void insert_request(int slot) GDP_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    requests_ |= (std::uint64_t{1} << slot);
  }

  void remove_request(int slot) GDP_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    requests_ &= ~(std::uint64_t{1} << slot);
  }

  /// Signs the guest book: `slot` becomes the most recent user.
  void mark_used(int slot) GDP_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    last_use_[static_cast<std::size_t>(slot)] = ++clock_;
  }

  /// Cond(fork) for `slot`: every *other* requester has used the fork no
  /// earlier than `slot` did (never-used counts as earliest).
  bool cond_holds(int slot) const GDP_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    const std::uint64_t mine = last_use_[static_cast<std::size_t>(slot)];
    for (std::size_t s = 0; s < last_use_.size(); ++s) {
      if (static_cast<int>(s) == slot) continue;
      if (!((requests_ >> s) & 1u)) continue;
      if (last_use_[s] < mine) return false;
    }
    return true;
  }

 private:
  mutable common::Mutex mu_;
  std::uint64_t requests_ GDP_GUARDED_BY(mu_) = 0;
  std::vector<std::uint64_t> last_use_ GDP_GUARDED_BY(mu_);
  std::uint64_t clock_ GDP_GUARDED_BY(mu_) = 0;
};

}  // namespace gdp::runtime
