// LR1 — the first algorithm of Lehmann & Rabin (paper Table 1).
//
//   1. think;
//   2. fork := random_choice(left, right);
//   3. if isFree(fork) then take(fork) else goto 3;
//   4. if isFree(other(fork)) then take(other(fork))
//      else { release(fork); goto 2 }
//   5. eat;
//   6. release(fork); release(other(fork));
//   7. goto 1;
//
// Guarantees progress with probability 1 on the classic ring under every
// fair adversary (Lehmann & Rabin 1981); *fails* on generalized topologies
// (paper §3, Theorem 1) — see gdp/sim/schedulers/trap_lr1.hpp for the
// winning adversary.
#pragma once

#include "gdp/algos/algorithm.hpp"

namespace gdp::algos {

class Lr1 final : public Algorithm {
 public:
  explicit Lr1(AlgoConfig config = {}) : Algorithm(config) {}

  std::string name() const override { return "lr1"; }

  std::vector<sim::Branch> step(const graph::Topology& t, const sim::SimState& state,
                                PhilId p) const override;
};

}  // namespace gdp::algos
