// Baseline 4 of the paper's introduction: "There is a box with n-1 tickets,
// where n is the number of the philosophers, and each philosopher must get a
// ticket before trying to get the forks."
//
// With a ticket in hand the philosopher grabs left then right, holding and
// waiting. On the *classic ring* this is deadlock-free: a deadlock would
// need all n philosophers holding one fork each, but only n-1 may hold
// tickets. On generalized topologies the argument breaks — a deadlocked
// cycle can involve fewer than n philosophers (e.g. 3 of the 6 on Figure
// 1a's doubled triangle), all of them ticketed. Experiment E9 exhibits the
// deadlock; validate() therefore accepts any topology on purpose.
//
// aux layout: aux[0] = tickets remaining. NOT fully distributed (the box is
// shared memory).
#pragma once

#include "gdp/algos/algorithm.hpp"

namespace gdp::algos {

class Ticket final : public Algorithm {
 public:
  explicit Ticket(AlgoConfig config = {}) : Algorithm(config) {}

  std::string name() const override { return "ticket"; }
  bool fully_distributed() const override { return false; }

  std::vector<sim::Branch> step(const graph::Topology& t, const sim::SimState& state,
                                PhilId p) const override;

 protected:
  void init_aux(sim::SimState& state, const graph::Topology& t) const override;
};

}  // namespace gdp::algos
