#include "gdp/algos/gdp1.hpp"

#include "gdp/common/check.hpp"

namespace gdp::algos {

using sim::Branch;
using sim::EventKind;
using sim::Phase;
using sim::SimState;
using sim::StepEvent;

Side Gdp1::choose_first(const graph::Topology& t, const SimState& state, PhilId p) {
  const auto left_nr = state.fork(t.left_of(p)).nr;
  const auto right_nr = state.fork(t.right_of(p)).nr;
  return left_nr > right_nr ? Side::kLeft : Side::kRight;
}

std::vector<Branch> Gdp1::step(const graph::Topology& t, const SimState& state, PhilId p) const {
  const sim::PhilState& me = state.phil(p);
  std::vector<Branch> branches;

  switch (me.phase) {
    case Phase::kThinking:
      return think_step(state, p, Phase::kChoose);

    case Phase::kChoose: {
      // Step 2: deterministic — first fork is the higher-numbered one.
      const Side side = choose_first(t, state, p);
      SimState next = state;
      next.phil(p).phase = Phase::kCommit;
      next.phil(p).committed = side;
      branches.push_back(deterministic(
          std::move(next), StepEvent{EventKind::kChose, side, t.fork_of(p, side), 0}));
      return branches;
    }

    case Phase::kCommit: {
      // Step 3: test-and-set, busy-wait on failure.
      const ForkId f = t.fork_of(p, me.committed);
      SimState next = state;
      if (sim::try_take(next, f, p)) {
        next.phil(p).phase = Phase::kRenumber;
        branches.push_back(
            deterministic(std::move(next), StepEvent{EventKind::kTookFirst, me.committed, f, 0}));
      } else {
        branches.push_back(
            deterministic(state, StepEvent{EventKind::kBlockedFirst, me.committed, f, 0}));
      }
      return branches;
    }

    case Phase::kRenumber: {
      // Step 4: holding the first fork — re-randomize its nr on equality.
      const ForkId f = t.fork_of(p, me.committed);
      const ForkId g = t.other_fork(p, f);
      if (state.fork(f).nr == state.fork(g).nr) {
        const int m = effective_m(t);
        branches.reserve(static_cast<std::size_t>(m));
        for (int v = 1; v <= m; ++v) {
          SimState next = state;
          next.fork(f).nr = static_cast<std::uint16_t>(v);
          next.phil(p).phase = Phase::kTrySecond;
          branches.push_back(
              Branch{1.0 / m, StepEvent{EventKind::kRenumbered, me.committed, f, v},
                     std::move(next)});
        }
      } else {
        SimState next = state;
        next.phil(p).phase = Phase::kTrySecond;
        branches.push_back(
            deterministic(std::move(next), StepEvent{EventKind::kNrDistinct, me.committed, f, 0}));
      }
      return branches;
    }

    case Phase::kTrySecond: {
      // Step 5: try the other fork; on failure release and re-choose by nr.
      const ForkId f = t.fork_of(p, me.committed);
      const ForkId g = t.other_fork(p, f);
      SimState next = state;
      if (sim::try_take(next, g, p)) {
        next.phil(p).phase = Phase::kEating;
        branches.push_back(
            deterministic(std::move(next), StepEvent{EventKind::kTookSecond, me.committed, g, 0}));
      } else {
        sim::release(next, f, p);
        next.phil(p).phase = Phase::kChoose;
        branches.push_back(
            deterministic(std::move(next), StepEvent{EventKind::kFailedSecond, me.committed, g, 0}));
      }
      return branches;
    }

    case Phase::kEating: {
      // Steps 6-8.
      SimState next = state;
      sim::release(next, t.left_of(p), p);
      sim::release(next, t.right_of(p), p);
      next.phil(p).phase = Phase::kThinking;
      branches.push_back(deterministic(std::move(next), StepEvent{EventKind::kFinishedEating}));
      return branches;
    }

    case Phase::kRegister:
    case Phase::kWaitGrant:
      break;
  }
  GDP_CHECK_MSG(false, "GDP1: philosopher " << p << " in foreign phase");
  __builtin_unreachable();
}

}  // namespace gdp::algos
