#include "gdp/algos/central_arbiter.hpp"

#include <algorithm>

#include "gdp/common/check.hpp"

namespace gdp::algos {

using sim::Branch;
using sim::EventKind;
using sim::Phase;
using sim::SimState;
using sim::StepEvent;

void CentralArbiter::init_aux(SimState& state, const graph::Topology& t) const {
  state.aux.assign(static_cast<std::size_t>(t.num_phils()), -1);
}

namespace {

void enqueue(SimState& state, PhilId p) {
  for (auto& slot : state.aux) {
    if (slot == -1) {
      slot = p;
      return;
    }
  }
  GDP_CHECK_MSG(false, "arbiter queue overflow — philosopher enqueued twice?");
}

void dequeue(SimState& state, PhilId p) {
  auto& queue = state.aux;
  const auto it = std::find(queue.begin(), queue.end(), p);
  GDP_DCHECK(it != queue.end());
  queue.erase(it);
  queue.push_back(-1);  // keep the vector size (and the encoding) stable
}

/// Grant rule: both forks free and no earlier waiter shares a fork with p.
bool may_grant(const SimState& state, const graph::Topology& t, PhilId p) {
  const ForkId left = t.left_of(p);
  const ForkId right = t.right_of(p);
  if (!state.fork(left).free() || !state.fork(right).free()) return false;
  for (std::int32_t earlier : state.aux) {
    if (earlier == -1 || earlier == p) break;  // reached p (or open slots)
    const auto& arc = t.arc(earlier);
    if (arc.left == left || arc.left == right || arc.right == left || arc.right == right) {
      return false;  // reserved by an earlier conflicting waiter
    }
  }
  return true;
}

}  // namespace

std::vector<Branch> CentralArbiter::step(const graph::Topology& t, const SimState& state,
                                         PhilId p) const {
  const sim::PhilState& me = state.phil(p);
  std::vector<Branch> branches;

  switch (me.phase) {
    case Phase::kThinking:
      return think_step(state, p, Phase::kRegister);

    case Phase::kRegister: {
      // Ask the monitor for both forks.
      SimState next = state;
      enqueue(next, p);
      next.phil(p).phase = Phase::kWaitGrant;
      branches.push_back(deterministic(std::move(next), StepEvent{EventKind::kRegistered}));
      return branches;
    }

    case Phase::kWaitGrant: {
      if (may_grant(state, t, p)) {
        SimState next = state;
        const bool left_ok = sim::try_take(next, t.left_of(p), p);
        const bool right_ok = sim::try_take(next, t.right_of(p), p);
        GDP_DCHECK(left_ok && right_ok);
        (void)left_ok;
        (void)right_ok;
        dequeue(next, p);
        next.phil(p).phase = Phase::kEating;
        branches.push_back(deterministic(std::move(next), StepEvent{EventKind::kGranted}));
      } else {
        branches.push_back(deterministic(state, StepEvent{EventKind::kWaiting}));
      }
      return branches;
    }

    case Phase::kEating: {
      SimState next = state;
      sim::release(next, t.left_of(p), p);
      sim::release(next, t.right_of(p), p);
      next.phil(p).phase = Phase::kThinking;
      branches.push_back(deterministic(std::move(next), StepEvent{EventKind::kFinishedEating}));
      return branches;
    }

    case Phase::kChoose:
    case Phase::kCommit:
    case Phase::kRenumber:
    case Phase::kTrySecond:
      break;
  }
  GDP_CHECK_MSG(false, "arbiter: philosopher " << p << " in foreign phase");
  __builtin_unreachable();
}

}  // namespace gdp::algos
