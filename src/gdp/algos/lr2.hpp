// LR2 — the second (courteous / lockout-free) algorithm of Lehmann & Rabin,
// in the paper's generalized formulation (Table 2):
//
//   1.  think;
//   2.  insert(id, left.r); insert(id, right.r);
//   3.  fork := random_choice(left, right);
//   4.  if isFree(fork) and Cond(fork) then take(fork) else goto 4;
//   5.  if isFree(other(fork)) then take(other(fork))
//       else { release(fork); goto 3 }
//   6.  eat;
//   7.  remove(id, left.r); remove(id, right.r);
//   8.  insert(id, left.g); insert(id, right.g);
//   9.  release(fork); release(other(fork));
//   10. goto 1;
//
// Cond(fork): there are no other incoming requests for the fork, or every
// other requester has used it after this philosopher did (the courtesy that
// yields lockout-freedom on the classic ring). Lockout-free on the ring;
// *fails* on graphs with a ring + a third path between two of its nodes
// (paper §3.2, Theorem 2) — see gdp/sim/schedulers/trap_lr2.hpp.
//
// Granularity notes (documented deviations, behaviour-preserving):
//   * line 2's two inserts are one atomic step (they precede any contention);
//   * lines 7-9 (deregister, sign guest books, release both) execute in the
//     single "finish eating" step — the paper's adversary arguments only
//     inspect configurations between steps of *other* philosophers, and no
//     other philosopher can act between sub-actions of an atomic step.
#pragma once

#include "gdp/algos/algorithm.hpp"

namespace gdp::algos {

class Lr2 final : public Algorithm {
 public:
  explicit Lr2(AlgoConfig config = {}) : Algorithm(config) {}

  std::string name() const override { return "lr2"; }
  bool uses_books() const override { return true; }

  std::vector<sim::Branch> step(const graph::Topology& t, const sim::SimState& state,
                                PhilId p) const override;
};

}  // namespace gdp::algos
