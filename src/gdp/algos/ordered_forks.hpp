// Baseline 1 of the paper's introduction: "The forks are ordered and each
// philosopher tries to get first the adjacent fork which is higher in the
// ordering."
//
// The global order is the fork id. Acquiring consistently by the order lets
// a philosopher *hold and wait* for the second fork (no release/retry): a
// circular wait would need a philosopher waiting downward in the order,
// which cannot happen — the classic hierarchical resource allocation
// argument, valid on arbitrary topologies.
//
// NOT symmetric (fork ids distinguish states); deterministic; serves as the
// partial-order ideal that GDP1 randomly converges to (§4's proof reduces
// the post-convergence behaviour to exactly this algorithm).
#pragma once

#include "gdp/algos/algorithm.hpp"

namespace gdp::algos {

class OrderedForks final : public Algorithm {
 public:
  explicit OrderedForks(AlgoConfig config = {}) : Algorithm(config) {}

  std::string name() const override { return "ordered"; }
  bool symmetric() const override { return false; }

  std::vector<sim::Branch> step(const graph::Topology& t, const sim::SimState& state,
                                PhilId p) const override;
};

}  // namespace gdp::algos
