// GDP2 — the paper's lockout-free solution (§5, Table 4): GDP1's
// random-priority fork selection plus LR2's courtesy machinery (request
// lists and guest books).
//
//   1.  think;
//   2.  insert(id, left.r); insert(id, right.r);
//   3.  if left.nr > right.nr then fork := left else fork := right;
//   4.  if isFree(fork) and Cond(fork) then take(fork) else goto 4;
//   5.  if fork.nr = other(fork).nr then fork.nr := random[1, m];
//   6.  if isFree(other(fork)) then take(other(fork))
//       else { release(fork); goto 3 }
//   7.  eat;
//   8.  remove(id, left.r); remove(id, right.r);
//   9.  insert(id, left.g); insert(id, right.g);
//   10. release(fork); release(other(fork));
//   11. goto 1;
//
// Theorem 4: Ti -> Ei with probability 1 under every fair adversary — every
// hungry philosopher eventually eats. Same atomicity conventions as LR2
// (see lr2.hpp header notes).
//
// REPRODUCTION NOTE (machine-checked, see experiment E5/E7): Table 4 as
// printed guards only the FIRST take with Cond (step 4); the second take
// (step 6) tests isFree alone. Under that literal reading our model checker
// finds a reachable fair end component in which a fixed philosopher never
// eats even on the classic ring(3): a neighbour whose nr-ordering routes the
// shared fork through its *second* take re-eats forever without ever facing
// the courtesy test, violating the W_{i,s} invariant of Theorem 4's proof
// ("philosophers that have eaten cannot eat again until their neighbours
// have"). The paper's prose — "BEFORE PICKING UP A FORK, a philosopher must
// check ..." (§3.2) — applies Cond to every pick; with Cond on both takes
// the checker certifies lockout-freedom. We therefore provide:
//   * Gdp2 (literal Table 4),          factory name "gdp2"
//   * Gdp2 courteous-both variant,     factory name "gdp2c"  <- Theorem 4
// On a Cond failure at the second fork the variant releases the first and
// re-chooses (the same escape Table 4 uses for a taken second fork), which
// preserves the no-hold-and-wait discipline and hence progress.
#pragma once

#include "gdp/algos/algorithm.hpp"

namespace gdp::algos {

class Gdp2 final : public Algorithm {
 public:
  Gdp2() : Gdp2(AlgoConfig{}, false) {}
  explicit Gdp2(AlgoConfig config, bool cond_on_second_take = false)
      : Algorithm(config), cond_on_second_(cond_on_second_take) {}

  std::string name() const override { return cond_on_second_ ? "gdp2c" : "gdp2"; }
  bool uses_books() const override { return true; }
  bool uses_numbers() const override { return true; }

  /// True for the prose-faithful variant that applies Cond to both takes.
  bool cond_on_second_take() const { return cond_on_second_; }

  std::vector<sim::Branch> step(const graph::Topology& t, const sim::SimState& state,
                                PhilId p) const override;

 private:
  bool cond_on_second_;
};

}  // namespace gdp::algos
