// The Algorithm interface: a philosopher program as an atomic-step relation.
//
// Every algorithm of the paper (Tables 1-4) and every §1 baseline implements
// step(): given the topology, the current configuration and a scheduled
// philosopher, return the probability distribution over successors that one
// atomic action of that philosopher induces. Enumerated branches make the
// same code serve the sampling simulator, the exact replayer and the MDP
// model checker.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gdp/common/ids.hpp"
#include "gdp/graph/topology.hpp"
#include "gdp/sim/state.hpp"
#include "gdp/sim/step.hpp"

namespace gdp::algos {

/// How the non-terminating `think` action is modelled (see DESIGN.md §1
/// substitutions).
enum class ThinkMode : std::uint8_t {
  /// think ends at the philosopher's next scheduled step: the "all
  /// philosophers hungry" setting every proof quantifies over.
  kHungry,
  /// think ends with probability `think_coin` per scheduled step
  /// (geometric thinking; for throughput-style experiments).
  kCoin,
};

struct AlgoConfig {
  ThinkMode think = ThinkMode::kHungry;
  double think_coin = 0.5;

  /// Bias of LR1/LR2's first-fork draw: P(left). The paper notes its
  /// negative results hold for any positive bias (§3).
  double p_left = 0.5;

  /// GDP's numbering range [1, m]; the correctness proof needs m >= k
  /// (number of forks). 0 = automatic (m = k).
  int m = 0;
};

class Algorithm {
 public:
  explicit Algorithm(AlgoConfig config) : config_(config) {}
  virtual ~Algorithm() = default;

  virtual std::string name() const = 0;

  /// LR2/GDP2-style request lists + guest books in play?
  virtual bool uses_books() const { return false; }
  /// GDP-style fork numbering: does step() ever write ForkState::nr?
  /// The packed state-key layout (gdp::mdp::KeyCodec) allocates nr bits
  /// only when true.
  virtual bool uses_numbers() const { return false; }
  /// Symmetric = philosophers indistinguishable & identically programmed.
  virtual bool symmetric() const { return true; }
  /// Fully distributed = no processes/memory beyond philosophers & forks.
  virtual bool fully_distributed() const { return true; }

  /// Throws PreconditionError if this algorithm cannot run on `t`
  /// (e.g. colored needs an even ring; books need degree <= 64).
  virtual void validate(const graph::Topology& t) const;

  /// The symmetric initial configuration: everyone thinking, all forks free
  /// with nr = 0, empty books; baselines may add aux state via init_aux().
  sim::SimState initial_state(const graph::Topology& t) const;

  /// All probabilistic branches of one atomic step of philosopher `p`.
  /// Branch probabilities are positive and sum to 1. Never empty.
  virtual std::vector<sim::Branch> step(const graph::Topology& t, const sim::SimState& state,
                                        PhilId p) const = 0;

  const AlgoConfig& config() const { return config_; }

  /// Effective GDP numbering range for topology t (config.m, or k if auto).
  int effective_m(const graph::Topology& t) const;

 protected:
  /// Hook for baselines to set up aux words (arbiter queue, ticket box).
  /// Contract: the word count is fixed for the run and every value stays in
  /// [-1, num_phils - 1] (philosopher ids, -1 sentinels, small counters) —
  /// the packed state-key layout sizes its aux fields to exactly that range
  /// and refuses larger values.
  virtual void init_aux(sim::SimState&, const graph::Topology&) const {}

  /// Handles Phase::kThinking according to the think mode; on waking, the
  /// philosopher moves to `first_phase` (kChoose, kRegister, ...).
  std::vector<sim::Branch> think_step(const sim::SimState& state, PhilId p,
                                      sim::Phase first_phase) const;

  AlgoConfig config_;
};

/// Factory by name: "lr1", "lr2", "gdp1", "gdp2", "ordered", "colored",
/// "arbiter", "ticket". Throws PreconditionError for unknown names.
std::unique_ptr<Algorithm> make_algorithm(const std::string& name, AlgoConfig config = {});

/// All factory names, in presentation order.
std::vector<std::string> algorithm_names();

}  // namespace gdp::algos
