#include "gdp/algos/lr1.hpp"

#include "gdp/common/check.hpp"

namespace gdp::algos {

using sim::Branch;
using sim::EventKind;
using sim::Phase;
using sim::SimState;
using sim::StepEvent;

std::vector<Branch> Lr1::step(const graph::Topology& t, const SimState& state, PhilId p) const {
  const sim::PhilState& me = state.phil(p);
  std::vector<Branch> branches;

  switch (me.phase) {
    case Phase::kThinking:
      return think_step(state, p, Phase::kChoose);

    case Phase::kChoose: {
      // Step 2: fork := random_choice(left, right).
      for (Side side : {Side::kLeft, Side::kRight}) {
        const double prob = side == Side::kLeft ? config_.p_left : 1.0 - config_.p_left;
        if (prob <= 0.0) continue;
        SimState next = state;
        next.phil(p).phase = Phase::kCommit;
        next.phil(p).committed = side;
        branches.push_back(
            Branch{prob, StepEvent{EventKind::kChose, side, t.fork_of(p, side), 0},
                   std::move(next)});
      }
      return branches;
    }

    case Phase::kCommit: {
      // Step 3: atomic test-and-set on the committed fork; busy-wait on failure.
      const ForkId f = t.fork_of(p, me.committed);
      SimState next = state;
      if (sim::try_take(next, f, p)) {
        next.phil(p).phase = Phase::kTrySecond;
        branches.push_back(
            deterministic(std::move(next), StepEvent{EventKind::kTookFirst, me.committed, f, 0}));
      } else {
        branches.push_back(
            deterministic(state, StepEvent{EventKind::kBlockedFirst, me.committed, f, 0}));
      }
      return branches;
    }

    case Phase::kTrySecond: {
      // Step 4: try the other fork; on failure release the first and redraw.
      const ForkId f = t.fork_of(p, me.committed);
      const ForkId g = t.other_fork(p, f);
      SimState next = state;
      if (sim::try_take(next, g, p)) {
        next.phil(p).phase = Phase::kEating;
        branches.push_back(
            deterministic(std::move(next), StepEvent{EventKind::kTookSecond, me.committed, g, 0}));
      } else {
        sim::release(next, f, p);
        next.phil(p).phase = Phase::kChoose;
        branches.push_back(
            deterministic(std::move(next), StepEvent{EventKind::kFailedSecond, me.committed, g, 0}));
      }
      return branches;
    }

    case Phase::kEating: {
      // Steps 5-7: finish eating, release both, resume thinking.
      SimState next = state;
      sim::release(next, t.left_of(p), p);
      sim::release(next, t.right_of(p), p);
      next.phil(p).phase = Phase::kThinking;
      branches.push_back(deterministic(std::move(next), StepEvent{EventKind::kFinishedEating}));
      return branches;
    }

    case Phase::kRegister:
    case Phase::kRenumber:
    case Phase::kWaitGrant:
      break;
  }
  GDP_CHECK_MSG(false, "LR1: philosopher " << p << " in foreign phase");
  __builtin_unreachable();
}

}  // namespace gdp::algos
