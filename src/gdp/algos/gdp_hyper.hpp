// GDP-H — our implementation of the paper's §6 open problem: "the even more
// general case of hypergraph-like connection structures, in which a
// philosopher may need more than two forks to eat."
//
// The algorithm generalizes GDP1's random partial-order idea to d >= 2
// forks per philosopher:
//
//   1. think;
//   2. plan := own forks sorted by (nr descending, id ascending);
//   3. spin-take plan[0] (test-and-set busy-wait, like GDP1 step 3);
//   4. for i = 1 .. d-1:
//        after taking plan[i-1], if its nr equals the nr of any
//        still-untaken fork of the plan, set it to random[1, m]
//        (GDP1 step 4 generalized);
//        try plan[i]: taken by someone else -> release everything,
//        goto 2 (GDP1 step 5 generalized);
//   5. eat; release all; goto 1.
//
// For d = 2 this is exactly GDP1. The same intuition applies: once the nr
// values along every "conflict cycle" are distinct, acquisition follows a
// partial order and some philosopher can always complete; randomization
// re-draws until that happens. Experiment E11 checks progress empirically
// on hyper-rings and random hypergraphs; this module is deliberately
// self-contained (own state + built-in fair schedulers) because the
// two-fork Topology API does not carry hyperedges.
#pragma once

#include <cstdint>
#include <vector>

#include "gdp/graph/hypergraph.hpp"
#include "gdp/rng/rng.hpp"

namespace gdp::algos {

struct HyperConfig {
  /// Numbering range [1, m]; 0 = number of forks (>= k needed like GDP1).
  int m = 0;
  std::uint64_t max_steps = 1'000'000;
  /// Stop early when this many meals completed (0 = never).
  std::uint64_t stop_after_meals = 0;
  /// true = uniform random fair scheduler; false = round-robin.
  bool random_scheduler = true;
};

struct HyperResult {
  std::uint64_t steps = 0;
  std::uint64_t total_meals = 0;
  std::vector<std::uint64_t> meals_of;
  std::uint64_t first_meal_step = 0;  // ~0ull if none
  bool deadlocked = false;            // impossible by design; checked anyway

  bool everyone_ate() const;
};

/// Simulates GDP-H on `t` with one atomic step per scheduled philosopher.
HyperResult run_gdp_hyper(const graph::HyperTopology& t, rng::Rng& rng,
                          const HyperConfig& config);

}  // namespace gdp::algos
