#include "gdp/algos/lr2.hpp"

#include "gdp/common/check.hpp"

namespace gdp::algos {

using sim::Branch;
using sim::EventKind;
using sim::Phase;
using sim::SimState;
using sim::StepEvent;

namespace {

void set_request(SimState& state, const graph::Topology& t, ForkId f, PhilId p, bool on) {
  const int slot = t.slot_of(f, p);
  if (on) {
    state.fork(f).requests |= (std::uint64_t{1} << slot);
  } else {
    state.fork(f).requests &= ~(std::uint64_t{1} << slot);
  }
}

}  // namespace

std::vector<Branch> Lr2::step(const graph::Topology& t, const SimState& state, PhilId p) const {
  const sim::PhilState& me = state.phil(p);
  std::vector<Branch> branches;

  switch (me.phase) {
    case Phase::kThinking:
      return think_step(state, p, Phase::kRegister);

    case Phase::kRegister: {
      // Step 2: announce interest on both forks.
      SimState next = state;
      set_request(next, t, t.left_of(p), p, true);
      set_request(next, t, t.right_of(p), p, true);
      next.phil(p).phase = Phase::kChoose;
      branches.push_back(deterministic(std::move(next), StepEvent{EventKind::kRegistered}));
      return branches;
    }

    case Phase::kChoose: {
      // Step 3: random draw.
      for (Side side : {Side::kLeft, Side::kRight}) {
        const double prob = side == Side::kLeft ? config_.p_left : 1.0 - config_.p_left;
        if (prob <= 0.0) continue;
        SimState next = state;
        next.phil(p).phase = Phase::kCommit;
        next.phil(p).committed = side;
        branches.push_back(Branch{prob, StepEvent{EventKind::kChose, side, t.fork_of(p, side), 0},
                                  std::move(next)});
      }
      return branches;
    }

    case Phase::kCommit: {
      // Step 4: take needs the fork free *and* Cond(fork).
      const ForkId f = t.fork_of(p, me.committed);
      SimState next = state;
      if (state.fork(f).free() && sim::cond_holds(state, t, f, p) && sim::try_take(next, f, p)) {
        next.phil(p).phase = Phase::kTrySecond;
        branches.push_back(
            deterministic(std::move(next), StepEvent{EventKind::kTookFirst, me.committed, f, 0}));
      } else {
        branches.push_back(
            deterministic(state, StepEvent{EventKind::kBlockedFirst, me.committed, f, 0}));
      }
      return branches;
    }

    case Phase::kTrySecond: {
      // Step 5: the second fork needs only isFree (no Cond), per Table 2.
      const ForkId f = t.fork_of(p, me.committed);
      const ForkId g = t.other_fork(p, f);
      SimState next = state;
      if (sim::try_take(next, g, p)) {
        next.phil(p).phase = Phase::kEating;
        branches.push_back(
            deterministic(std::move(next), StepEvent{EventKind::kTookSecond, me.committed, g, 0}));
      } else {
        sim::release(next, f, p);
        next.phil(p).phase = Phase::kChoose;
        branches.push_back(
            deterministic(std::move(next), StepEvent{EventKind::kFailedSecond, me.committed, g, 0}));
      }
      return branches;
    }

    case Phase::kEating: {
      // Steps 6-10: deregister, sign both guest books, release, think.
      SimState next = state;
      set_request(next, t, t.left_of(p), p, false);
      set_request(next, t, t.right_of(p), p, false);
      sim::mark_used(next, t, t.left_of(p), p);
      sim::mark_used(next, t, t.right_of(p), p);
      sim::release(next, t.left_of(p), p);
      sim::release(next, t.right_of(p), p);
      next.phil(p).phase = Phase::kThinking;
      branches.push_back(deterministic(std::move(next), StepEvent{EventKind::kFinishedEating}));
      return branches;
    }

    case Phase::kRenumber:
    case Phase::kWaitGrant:
      break;
  }
  GDP_CHECK_MSG(false, "LR2: philosopher " << p << " in foreign phase");
  __builtin_unreachable();
}

}  // namespace gdp::algos
