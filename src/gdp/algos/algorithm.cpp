#include "gdp/algos/algorithm.hpp"

#include "gdp/common/check.hpp"

namespace gdp::algos {

using sim::Branch;
using sim::EventKind;
using sim::Phase;
using sim::SimState;
using sim::StepEvent;

void Algorithm::validate(const graph::Topology& t) const {
  if (uses_books()) {
    GDP_CHECK_MSG(t.max_degree() <= 64,
                  name() << " keeps per-sharer request bits; fork degree must be <= 64, got "
                         << t.max_degree());
  }
  if (config_.m != 0) {
    GDP_CHECK_MSG(config_.m >= t.num_forks(),
                  "GDP requires m >= k: m=" << config_.m << ", k=" << t.num_forks());
  }
}

int Algorithm::effective_m(const graph::Topology& t) const {
  const int m = config_.m != 0 ? config_.m : t.num_forks();
  GDP_CHECK_MSG(m <= 0xffff, "m=" << m << " exceeds the nr field's range");
  return m;
}

sim::SimState Algorithm::initial_state(const graph::Topology& t) const {
  validate(t);
  SimState state;
  state.forks.assign(static_cast<std::size_t>(t.num_forks()), sim::ForkState{});
  state.phils.assign(static_cast<std::size_t>(t.num_phils()), sim::PhilState{});
  if (uses_books()) {
    for (ForkId f = 0; f < t.num_forks(); ++f) {
      state.fork(f).use_rank.assign(static_cast<std::size_t>(t.degree(f)), 0);
    }
  }
  init_aux(state, t);
  return state;
}

std::vector<Branch> Algorithm::think_step(const SimState& state, PhilId p,
                                          Phase first_phase) const {
  GDP_DCHECK(state.phil(p).phase == Phase::kThinking);
  SimState awake = state;
  awake.phil(p).phase = first_phase;
  StepEvent woke{EventKind::kStartTrying, Side::kLeft, kNoFork, 0};

  if (config_.think == ThinkMode::kHungry || config_.think_coin >= 1.0) {
    std::vector<Branch> branches;
    branches.push_back(deterministic(std::move(awake), woke));
    return branches;
  }
  GDP_DCHECK(config_.think_coin > 0.0);
  // Coin mode: geometric thinking time.
  std::vector<Branch> branches;
  branches.push_back(Branch{config_.think_coin, woke, std::move(awake)});
  branches.push_back(
      Branch{1.0 - config_.think_coin, StepEvent{EventKind::kStillThinking}, state});
  return branches;
}

}  // namespace gdp::algos
