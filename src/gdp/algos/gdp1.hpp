// GDP1 — the paper's deadlock-free solution for arbitrary topologies
// (§4, Table 3):
//
//   1. think;
//   2. if left.nr > right.nr then fork := left else fork := right;
//   3. if isFree(fork) then take(fork) else goto 3;
//   4. if fork.nr = other(fork).nr then fork.nr := random[1, m];
//   5. if isFree(other(fork)) then take(other(fork))
//      else { release(fork); goto 2 }
//   6. eat;
//   7. release(fork); release(other(fork));
//   8. goto 1;
//
// Every fork carries a number nr in [0, m], m >= k, initially 0. The first
// fork is the higher-numbered one (ties go to `right`, per the else branch);
// a philosopher holding its first fork re-randomizes that fork's nr if it
// equals the other fork's. Randomization eventually makes all adjacent forks
// distinct along every cycle, after which the system behaves like a
// hierarchical (partial-order) resource allocator: progress with probability
// 1 under every fair adversary (Theorem 3). Not lockout-free (§5's
// counter-scenario; see GDP2 and the StarveGdp1 scheduler).
//
// Note the re-randomization has no retry: random[1, m] may collide again
// (probability 1/m) and the philosopher proceeds regardless — exactly as in
// Table 3; the proof only needs fresh attempts on later passes.
#pragma once

#include "gdp/algos/algorithm.hpp"

namespace gdp::algos {

class Gdp1 final : public Algorithm {
 public:
  explicit Gdp1(AlgoConfig config = {}) : Algorithm(config) {}

  std::string name() const override { return "gdp1"; }
  bool uses_numbers() const override { return true; }

  std::vector<sim::Branch> step(const graph::Topology& t, const sim::SimState& state,
                                PhilId p) const override;

  /// Table 3 step 2 as a pure function: the side of the first fork.
  static Side choose_first(const graph::Topology& t, const sim::SimState& state, PhilId p);
};

}  // namespace gdp::algos
