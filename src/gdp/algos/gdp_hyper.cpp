#include "gdp/algos/gdp_hyper.hpp"

#include <algorithm>
#include <limits>

#include "gdp/common/check.hpp"

namespace gdp::algos {
namespace {

enum class HPhase : std::uint8_t { kChoose, kAcquire, kEating };

struct HPhil {
  HPhase phase = HPhase::kChoose;
  std::vector<ForkId> plan;  // acquisition order for this attempt
  int next = 0;              // index into plan: forks [0, next) are held
};

struct HFork {
  PhilId holder = kNoPhil;
  std::uint16_t nr = 0;
};

}  // namespace

bool HyperResult::everyone_ate() const {
  return std::all_of(meals_of.begin(), meals_of.end(), [](std::uint64_t m) { return m > 0; });
}

HyperResult run_gdp_hyper(const graph::HyperTopology& t, rng::Rng& rng,
                          const HyperConfig& config) {
  const int n = t.num_phils();
  const int k = t.num_forks();
  const int m = config.m != 0 ? config.m : k;
  GDP_CHECK_MSG(m >= k, "GDP-H requires m >= k (got m=" << m << ", k=" << k << ")");

  std::vector<HPhil> phils(static_cast<std::size_t>(n));
  std::vector<HFork> forks(static_cast<std::size_t>(k));

  HyperResult result;
  result.meals_of.assign(static_cast<std::size_t>(n), 0);
  result.first_meal_step = std::numeric_limits<std::uint64_t>::max();

  auto release_all = [&](PhilId p) {
    HPhil& me = phils[static_cast<std::size_t>(p)];
    for (int i = 0; i < me.next; ++i) {
      HFork& fork = forks[static_cast<std::size_t>(me.plan[static_cast<std::size_t>(i)])];
      GDP_DCHECK(fork.holder == p);
      fork.holder = kNoPhil;
    }
    me.next = 0;
  };

  std::uint64_t stuck_streak = 0;
  for (std::uint64_t step = 0; step < config.max_steps; ++step) {
    const PhilId p = config.random_scheduler ? rng.uniform_int(0, n - 1)
                                             : static_cast<PhilId>(step % n);
    HPhil& me = phils[static_cast<std::size_t>(p)];
    bool changed = true;

    switch (me.phase) {
      case HPhase::kChoose: {
        // Step 2: sort own forks by (nr desc, id asc).
        me.plan = t.forks_of(p);
        std::sort(me.plan.begin(), me.plan.end(), [&](ForkId x, ForkId y) {
          const auto nx = forks[static_cast<std::size_t>(x)].nr;
          const auto ny = forks[static_cast<std::size_t>(y)].nr;
          return nx != ny ? nx > ny : x < y;
        });
        me.next = 0;
        me.phase = HPhase::kAcquire;
        break;
      }

      case HPhase::kAcquire: {
        const ForkId f = me.plan[static_cast<std::size_t>(me.next)];
        HFork& fork = forks[static_cast<std::size_t>(f)];
        if (fork.holder != kNoPhil) {
          if (me.next == 0) {
            changed = false;  // GDP1 step 3: busy-wait on the first fork
          } else {
            release_all(p);  // GDP1 step 5: release everything, re-choose
            me.phase = HPhase::kChoose;
          }
          break;
        }
        fork.holder = p;
        ++me.next;
        // Generalized step 4: re-randomize the just-taken fork if its nr
        // collides with any still-untaken fork of the plan.
        const bool collision =
            std::any_of(me.plan.begin() + me.next, me.plan.end(), [&](ForkId g) {
              return forks[static_cast<std::size_t>(g)].nr == fork.nr;
            });
        if (collision) fork.nr = static_cast<std::uint16_t>(rng.uniform_int(1, m));
        if (me.next == static_cast<int>(me.plan.size())) {
          me.phase = HPhase::kEating;
          ++result.total_meals;
          ++result.meals_of[static_cast<std::size_t>(p)];
          if (result.first_meal_step == std::numeric_limits<std::uint64_t>::max()) {
            result.first_meal_step = step;
          }
        }
        break;
      }

      case HPhase::kEating: {
        release_all(p);
        me.phase = HPhase::kChoose;
        break;
      }
    }

    result.steps = step + 1;
    stuck_streak = changed ? 0 : stuck_streak + 1;
    if (stuck_streak >= static_cast<std::uint64_t>(4 * n)) {
      // Everyone spinning on a held first fork with no holder progressing
      // would be a deadlock; GDP-H's release-on-conflict makes it impossible,
      // but the detector stays as a safety net for the tests.
      bool all_stuck = true;
      for (PhilId q = 0; q < n && all_stuck; ++q) {
        const HPhil& other = phils[static_cast<std::size_t>(q)];
        all_stuck = other.phase == HPhase::kAcquire && other.next == 0 &&
                    forks[static_cast<std::size_t>(other.plan[0])].holder != kNoPhil;
      }
      if (all_stuck) {
        result.deadlocked = true;
        break;
      }
      stuck_streak = 0;
    }
    if (config.stop_after_meals != 0 && result.total_meals >= config.stop_after_meals) break;
  }
  return result;
}

}  // namespace gdp::algos
