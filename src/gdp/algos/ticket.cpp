#include "gdp/algos/ticket.hpp"

#include "gdp/common/check.hpp"

namespace gdp::algos {

using sim::Branch;
using sim::EventKind;
using sim::Phase;
using sim::SimState;
using sim::StepEvent;

void Ticket::init_aux(SimState& state, const graph::Topology& t) const {
  state.aux.assign(1, t.num_phils() - 1);
}

std::vector<Branch> Ticket::step(const graph::Topology& t, const SimState& state,
                                 PhilId p) const {
  const sim::PhilState& me = state.phil(p);
  std::vector<Branch> branches;

  switch (me.phase) {
    case Phase::kThinking:
      return think_step(state, p, Phase::kWaitGrant);

    case Phase::kWaitGrant: {
      // Draw a ticket from the box (atomic decrement) or keep waiting.
      if (state.aux[0] > 0) {
        SimState next = state;
        --next.aux[0];
        next.phil(p).phase = Phase::kCommit;
        next.phil(p).committed = Side::kLeft;  // ticketed grab order: left, right
        branches.push_back(deterministic(std::move(next), StepEvent{EventKind::kGranted}));
      } else {
        branches.push_back(deterministic(state, StepEvent{EventKind::kWaiting}));
      }
      return branches;
    }

    case Phase::kCommit: {
      const ForkId f = t.left_of(p);
      SimState next = state;
      if (sim::try_take(next, f, p)) {
        next.phil(p).phase = Phase::kTrySecond;
        branches.push_back(
            deterministic(std::move(next), StepEvent{EventKind::kTookFirst, Side::kLeft, f, 0}));
      } else {
        branches.push_back(
            deterministic(state, StepEvent{EventKind::kBlockedFirst, Side::kLeft, f, 0}));
      }
      return branches;
    }

    case Phase::kTrySecond: {
      // Hold-and-wait for the right fork.
      const ForkId g = t.right_of(p);
      SimState next = state;
      if (sim::try_take(next, g, p)) {
        next.phil(p).phase = Phase::kEating;
        branches.push_back(
            deterministic(std::move(next), StepEvent{EventKind::kTookSecond, Side::kRight, g, 0}));
      } else {
        branches.push_back(
            deterministic(state, StepEvent{EventKind::kBlockedSecond, Side::kRight, g, 0}));
      }
      return branches;
    }

    case Phase::kEating: {
      SimState next = state;
      sim::release(next, t.left_of(p), p);
      sim::release(next, t.right_of(p), p);
      ++next.aux[0];  // return the ticket
      next.phil(p).phase = Phase::kThinking;
      branches.push_back(deterministic(std::move(next), StepEvent{EventKind::kFinishedEating}));
      return branches;
    }

    case Phase::kRegister:
    case Phase::kChoose:
    case Phase::kRenumber:
      break;
  }
  GDP_CHECK_MSG(false, "ticket: philosopher " << p << " in foreign phase");
  __builtin_unreachable();
}

}  // namespace gdp::algos
