#include "gdp/algos/ordered_forks.hpp"

#include "gdp/common/check.hpp"

namespace gdp::algos {

using sim::Branch;
using sim::EventKind;
using sim::Phase;
using sim::SimState;
using sim::StepEvent;

std::vector<Branch> OrderedForks::step(const graph::Topology& t, const SimState& state,
                                       PhilId p) const {
  const sim::PhilState& me = state.phil(p);
  std::vector<Branch> branches;

  switch (me.phase) {
    case Phase::kThinking:
      return think_step(state, p, Phase::kChoose);

    case Phase::kChoose: {
      // First fork = the higher id (the paper's wording).
      const Side side =
          t.left_of(p) > t.right_of(p) ? Side::kLeft : Side::kRight;
      SimState next = state;
      next.phil(p).phase = Phase::kCommit;
      next.phil(p).committed = side;
      branches.push_back(deterministic(
          std::move(next), StepEvent{EventKind::kChose, side, t.fork_of(p, side), 0}));
      return branches;
    }

    case Phase::kCommit: {
      const ForkId f = t.fork_of(p, me.committed);
      SimState next = state;
      if (sim::try_take(next, f, p)) {
        next.phil(p).phase = Phase::kTrySecond;
        branches.push_back(
            deterministic(std::move(next), StepEvent{EventKind::kTookFirst, me.committed, f, 0}));
      } else {
        branches.push_back(
            deterministic(state, StepEvent{EventKind::kBlockedFirst, me.committed, f, 0}));
      }
      return branches;
    }

    case Phase::kTrySecond: {
      // Hold-and-wait: keep the first fork and spin until the second frees.
      const ForkId f = t.fork_of(p, me.committed);
      const ForkId g = t.other_fork(p, f);
      SimState next = state;
      if (sim::try_take(next, g, p)) {
        next.phil(p).phase = Phase::kEating;
        branches.push_back(
            deterministic(std::move(next), StepEvent{EventKind::kTookSecond, me.committed, g, 0}));
      } else {
        branches.push_back(
            deterministic(state, StepEvent{EventKind::kBlockedSecond, me.committed, g, 0}));
      }
      return branches;
    }

    case Phase::kEating: {
      SimState next = state;
      sim::release(next, t.left_of(p), p);
      sim::release(next, t.right_of(p), p);
      next.phil(p).phase = Phase::kThinking;
      branches.push_back(deterministic(std::move(next), StepEvent{EventKind::kFinishedEating}));
      return branches;
    }

    case Phase::kRegister:
    case Phase::kRenumber:
    case Phase::kWaitGrant:
      break;
  }
  GDP_CHECK_MSG(false, "ordered: philosopher " << p << " in foreign phase");
  __builtin_unreachable();
}

}  // namespace gdp::algos
