// Baseline 2 of the paper's introduction: "The philosophers are colored
// yellow and blue alternately. The yellow philosophers try to get first the
// fork to their left. The blue ones try to get first the fork to their
// right."
//
// Alternation requires an even ring (the line graph must be 2-colorable with
// the alternating pattern); validate() enforces a classic even ring in
// canonical orientation (philosopher i between forks i and i+1 mod n). Even
// philosophers are yellow. With the alternation, every fork that is anyone's
// *first* fork is nobody's first-from-the-other-side, so hold-and-wait is
// deadlock-free. NOT symmetric (colors distinguish philosophers).
#pragma once

#include "gdp/algos/algorithm.hpp"

namespace gdp::algos {

class Colored final : public Algorithm {
 public:
  explicit Colored(AlgoConfig config = {}) : Algorithm(config) {}

  std::string name() const override { return "colored"; }
  bool symmetric() const override { return false; }

  void validate(const graph::Topology& t) const override;

  std::vector<sim::Branch> step(const graph::Topology& t, const sim::SimState& state,
                                PhilId p) const override;
};

}  // namespace gdp::algos
