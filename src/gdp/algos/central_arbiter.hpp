// Baseline 3 of the paper's introduction: "There is a central monitor which
// controls the assignment of the forks to the philosophers."
//
// The monitor keeps a FIFO queue of hungry philosophers. A waiting
// philosopher is granted (and atomically takes both forks) when both forks
// are free and no *earlier-queued* waiter needs either of them — FIFO with
// conflict reservations, which makes the baseline lockout-free. The monitor
// has no thread of its own: its bookkeeping is folded into the waiting
// philosophers' steps (it is a centralized baseline either way — the queue
// is shared memory, so the solution is NOT fully distributed).
//
// aux layout: aux[0..n-1] is the queue (philosopher ids in arrival order,
// -1 for empty slots), compacted on removal.
#pragma once

#include "gdp/algos/algorithm.hpp"

namespace gdp::algos {

class CentralArbiter final : public Algorithm {
 public:
  explicit CentralArbiter(AlgoConfig config = {}) : Algorithm(config) {}

  std::string name() const override { return "arbiter"; }
  bool fully_distributed() const override { return false; }

  std::vector<sim::Branch> step(const graph::Topology& t, const sim::SimState& state,
                                PhilId p) const override;

 protected:
  void init_aux(sim::SimState& state, const graph::Topology& t) const override;
};

}  // namespace gdp::algos
