// Factory implementation for Algorithm (declared in algorithm.hpp).
#include "gdp/algos/algorithm.hpp"
#include "gdp/algos/central_arbiter.hpp"
#include "gdp/algos/colored.hpp"
#include "gdp/algos/gdp1.hpp"
#include "gdp/algos/gdp2.hpp"
#include "gdp/algos/lr1.hpp"
#include "gdp/algos/lr2.hpp"
#include "gdp/algos/ordered_forks.hpp"
#include "gdp/algos/ticket.hpp"
#include "gdp/common/check.hpp"

namespace gdp::algos {

std::unique_ptr<Algorithm> make_algorithm(const std::string& name, AlgoConfig config) {
  if (name == "lr1") return std::make_unique<Lr1>(config);
  if (name == "lr2") return std::make_unique<Lr2>(config);
  if (name == "gdp1") return std::make_unique<Gdp1>(config);
  if (name == "gdp2") return std::make_unique<Gdp2>(config, /*cond_on_second_take=*/false);
  if (name == "gdp2c") return std::make_unique<Gdp2>(config, /*cond_on_second_take=*/true);
  if (name == "ordered") return std::make_unique<OrderedForks>(config);
  if (name == "colored") return std::make_unique<Colored>(config);
  if (name == "arbiter") return std::make_unique<CentralArbiter>(config);
  if (name == "ticket") return std::make_unique<Ticket>(config);
  GDP_CHECK_MSG(false, "unknown algorithm '" << name << "'");
  __builtin_unreachable();
}

std::vector<std::string> algorithm_names() {
  return {"lr1", "lr2", "gdp1", "gdp2", "gdp2c", "ordered", "colored", "arbiter", "ticket"};
}

}  // namespace gdp::algos
