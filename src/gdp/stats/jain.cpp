#include "gdp/stats/jain.hpp"

namespace gdp::stats {

double jain_index(const std::vector<std::uint64_t>& shares) {
  if (shares.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::uint64_t x : shares) {
    const double v = static_cast<double>(x);
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(shares.size()) * sum_sq);
}

}  // namespace gdp::stats
