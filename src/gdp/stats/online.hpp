// Streaming statistics (Welford) — means, variances, extremes of the
// quantities the experiments sample (meals, hunger spans, steps-to-eat).
#pragma once

#include <cstdint>
#include <limits>

namespace gdp::stats {

class OnlineStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance.
  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double stddev() const;
  /// Standard error of the mean.
  double sem() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  /// Merges another accumulator (parallel reduction).
  void merge(const OnlineStats& other);

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace gdp::stats
