#include "gdp/stats/online.hpp"

#include <cmath>

namespace gdp::stats {

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::sem() const {
  return count_ == 0 ? 0.0 : stddev() / std::sqrt(static_cast<double>(count_));
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ +
         delta * delta * static_cast<double>(count_) * static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  count_ += other.count_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

}  // namespace gdp::stats
