// Jain's fairness index over per-philosopher meal counts: 1.0 = perfectly
// even, 1/n = one philosopher got everything. The lockout experiments (E7)
// report it alongside max-hunger.
#pragma once

#include <cstdint>
#include <vector>

namespace gdp::stats {

/// (sum x)^2 / (n * sum x^2); 1.0 for an empty or all-zero vector.
double jain_index(const std::vector<std::uint64_t>& shares);

}  // namespace gdp::stats
