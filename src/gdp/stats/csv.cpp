#include "gdp/stats/csv.hpp"

#include "gdp/common/check.hpp"
#include "gdp/common/strings.hpp"

namespace gdp::stats {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  return quoted + "\"";
}

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  GDP_CHECK_MSG(out_.good(), "cannot open CSV file '" << path << "'");
  add_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  GDP_CHECK_MSG(cells.size() == columns_,
                "CSV row has " << cells.size() << " cells, expected " << columns_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::add_row(const std::vector<double>& values, int digits) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(format_double(v, digits));
  add_row(cells);
}

}  // namespace gdp::stats
