#include "gdp/stats/ci.hpp"

#include <algorithm>
#include <cmath>

namespace gdp::stats {

Interval wilson(std::uint64_t successes, std::uint64_t trials, double z) {
  if (trials == 0) return {0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double margin = (z / denom) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return {std::max(0.0, center - margin), std::min(1.0, center + margin)};
}

Interval normal(double mean, double sem, double z) {
  return {mean - z * sem, mean + z * sem};
}

}  // namespace gdp::stats
