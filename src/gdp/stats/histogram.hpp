// Fixed-bucket histogram with quantile queries; used for hunger-span and
// latency distributions in the lockout and thread-runtime experiments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gdp::stats {

class Histogram {
 public:
  /// Buckets partition [lo, hi) evenly; samples outside clamp to the edge
  /// buckets. `buckets >= 1`.
  Histogram(double lo, double hi, int buckets);

  void add(double x);
  std::uint64_t count() const { return total_; }

  /// q in [0, 1]; linear interpolation inside the bucket.
  double quantile(double q) const;

  double bucket_lo(int i) const;
  double bucket_hi(int i) const;
  std::uint64_t bucket_count(int i) const { return counts_[static_cast<std::size_t>(i)]; }
  int num_buckets() const { return static_cast<int>(counts_.size()); }

  /// Compact ASCII rendering (one line per non-empty bucket with a bar).
  std::string render(int width = 40) const;

 private:
  double lo_, hi_, bucket_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace gdp::stats
