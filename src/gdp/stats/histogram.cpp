#include "gdp/stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "gdp/common/check.hpp"
#include "gdp/common/strings.hpp"

namespace gdp::stats {

Histogram::Histogram(double lo, double hi, int buckets) : lo_(lo), hi_(hi) {
  GDP_CHECK_MSG(buckets >= 1, "histogram needs >= 1 bucket");
  GDP_CHECK_MSG(hi > lo, "histogram range [" << lo << ", " << hi << ")");
  bucket_width_ = (hi - lo) / buckets;
  counts_.assign(static_cast<std::size_t>(buckets), 0);
}

void Histogram::add(double x) {
  const int last = num_buckets() - 1;
  int bucket = static_cast<int>(std::floor((x - lo_) / bucket_width_));
  bucket = std::clamp(bucket, 0, last);
  ++counts_[static_cast<std::size_t>(bucket)];
  ++total_;
}

double Histogram::bucket_lo(int i) const { return lo_ + i * bucket_width_; }
double Histogram::bucket_hi(int i) const { return lo_ + (i + 1) * bucket_width_; }

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double seen = 0.0;
  for (int i = 0; i < num_buckets(); ++i) {
    const double c = static_cast<double>(counts_[static_cast<std::size_t>(i)]);
    if (seen + c >= target && c > 0) {
      const double frac = c == 0.0 ? 0.0 : (target - seen) / c;
      return bucket_lo(i) + frac * bucket_width_;
    }
    seen += c;
  }
  return hi_;
}

std::string Histogram::render(int width) const {
  std::uint64_t peak = 0;
  for (std::uint64_t c : counts_) peak = std::max(peak, c);
  if (peak == 0) return "(empty histogram)\n";
  std::string out;
  for (int i = 0; i < num_buckets(); ++i) {
    const std::uint64_t c = counts_[static_cast<std::size_t>(i)];
    if (c == 0) continue;
    const int bar = static_cast<int>(static_cast<double>(c) / static_cast<double>(peak) * width);
    out += pad("[" + format_double(bucket_lo(i), 1) + ", " + format_double(bucket_hi(i), 1) + ")",
               -18);
    out += ' ' + pad(std::to_string(c), -8) + ' ';
    out += std::string(static_cast<std::size_t>(std::max(bar, 1)), '#');
    out += '\n';
  }
  return out;
}

}  // namespace gdp::stats
