// Aligned ASCII tables — every bench prints its paper-expected vs measured
// rows through this.
#pragma once

#include <string>
#include <vector>

namespace gdp::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Inserts a horizontal rule before the next row.
  void add_rule();

  std::string render() const;
  /// render() to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty vector = rule
};

}  // namespace gdp::stats
