// Confidence intervals for the Bernoulli estimates the negative experiments
// report (e.g. "fraction of trials the adversary trapped LR1" vs the paper's
// 1/4 lower bound).
#pragma once

#include <cstdint>

namespace gdp::stats {

struct Interval {
  double low = 0.0;
  double high = 0.0;

  bool contains(double x) const { return low <= x && x <= high; }
};

/// Wilson score interval for `successes` out of `trials` at confidence given
/// by the normal quantile `z` (1.96 = 95%, 2.58 = 99%).
Interval wilson(std::uint64_t successes, std::uint64_t trials, double z = 1.96);

/// Normal-approximation interval mean +- z * sem.
Interval normal(double mean, double sem, double z = 1.96);

}  // namespace gdp::stats
