#include "gdp/stats/table.hpp"

#include <algorithm>
#include <cstdio>

#include "gdp/common/strings.hpp"

namespace gdp::stats {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_rule() { rows_.emplace_back(); }

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto rule = [&] {
    std::string line = "+";
    for (std::size_t w : widths) line += std::string(w + 2, '-') + "+";
    return line + "\n";
  };
  auto format_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      line += " " + pad(cell, static_cast<int>(widths[c])) + " |";
    }
    return line + "\n";
  };

  std::string out = rule() + format_row(headers_) + rule();
  for (const auto& row : rows_) {
    out += row.empty() ? rule() : format_row(row);
  }
  out += rule();
  return out;
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace gdp::stats
