// Minimal CSV writer for exporting experiment series (reach curves, sweeps)
// alongside the printed tables.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace gdp::stats {

/// RFC-4180 quoting: wraps the cell in quotes (doubling inner quotes) when
/// it contains a comma, quote or newline; returns it unchanged otherwise.
std::string csv_escape(const std::string& cell);

class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row. Throws on failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& cells);

  /// Convenience for numeric rows.
  void add_row(const std::vector<double>& values, int digits = 6);

 private:
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace gdp::stats
