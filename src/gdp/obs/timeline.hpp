// gdp::obs::timeline — the time-axis plane: per-thread event rings drained
// into a Chrome trace-event JSON (loadable in Perfetto / chrome://tracing),
// plus the GDP_OBS_PROGRESS heartbeat sampler.
//
// Where the aggregate registry (obs.hpp) answers *how much*, the timeline
// answers *when* and *on which worker*: duration slices (begin/end), instant
// markers and counter samples land in a fixed-capacity ring owned by the
// writing thread. The hot path is lock-free and allocation-free — one
// relaxed atomic load when disabled; when enabled, one clock read plus a
// plain store into the ring and a release store of the ring size. A full
// ring never reallocates and never blocks: further events are dropped and
// counted in the ring's dropped_events counter, so earlier events stay
// intact and memory stays bounded.
//
// Gating is independent of GDP_OBS: the timeline starts from the
// GDP_OBS_TIMELINE environment variable (unset/"0" = off) and can be
// flipped with timeline::set_enabled(). Timeline events never touch the
// deterministic plane — deterministic fingerprints, models and verdicts are
// bit-identical with the timeline on or off (pinned by ctest -L obs).
//
// Ring ownership: each OS thread lazily claims a ring (one mutex hop, once
// per thread lifetime — registration, not the hot path) and returns it to a
// free list on thread exit, so short-lived pool workers recycle a bounded
// set of rings. A ring therefore represents a *worker track*, not a single
// OS thread — exactly the per-worker lane the trace viewer shows.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "gdp/obs/obs.hpp"

namespace gdp::obs::timeline {

/// Events per ring. 32768 events x 32 bytes = 1 MiB per worker track; a
/// level-synchronous explore emits a handful of events per level, so this
/// covers hours of engine work before dropping.
inline constexpr std::uint32_t kRingCapacity = 1u << 15;

/// Upper bound on live worker tracks (rings are recycled through a free
/// list as threads exit, so this only binds truly concurrent threads).
/// Threads beyond it drop their events into a global counter.
inline constexpr std::size_t kMaxRings = 256;

enum class EventKind : std::uint8_t { kBegin, kEnd, kInstant, kCounter };

/// One timeline event. `name` must be a string literal (or otherwise
/// outlive the drain) — the ring stores the pointer, never a copy.
struct Event {
  const char* name = nullptr;
  std::uint64_t ts_ns = 0;  // nanoseconds since the timeline epoch
  double value = 0.0;       // kCounter samples only
  EventKind kind = EventKind::kInstant;
};

namespace detail {
extern std::atomic<bool> g_enabled;
/// Starts the GDP_OBS_PROGRESS heartbeat sampler on first call (no-op when
/// the variable is unset). Called from the registry's access paths so any
/// process that touches gdp::obs can stream progress.
void ensure_progress_sampler();
}  // namespace detail

/// True when timeline recording is on. Initialized once from
/// GDP_OBS_TIMELINE, independent of obs::enabled().
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }

/// Flips timeline recording globally (tests and bench mains; flip it
/// around runs, not during them).
void set_enabled(bool on);

/// Opens a duration slice on the calling thread's track. Pair with
/// end_slice(name) on the same thread (or use ScopedSlice / TimedSpan).
void begin_slice(const char* name);
void end_slice(const char* name);

/// A point event on the calling thread's track.
void instant(const char* name);

/// A sampled counter value on the calling thread's track (rendered as a
/// counter lane in the trace viewer).
void counter_sample(const char* name, double value);

/// RAII duration slice — timeline only (no registry aggregate). Armed at
/// construction, so a mid-scope enable/disable cannot unbalance the track.
class ScopedSlice {
 public:
  explicit ScopedSlice(const char* name) : name_(name), armed_(enabled()) {
    if (armed_) begin_slice(name_);
  }
  ~ScopedSlice() { stop(); }
  void stop() {
    if (!armed_) return;
    armed_ = false;
    end_slice(name_);
  }

  ScopedSlice(const ScopedSlice&) = delete;
  ScopedSlice& operator=(const ScopedSlice&) = delete;

 private:
  const char* name_;
  bool armed_;
};

/// Aggregate event accounting, readable while writers run.
struct Stats {
  std::uint64_t events = 0;       // recorded (sum of ring sizes)
  std::uint64_t begins = 0;
  std::uint64_t ends = 0;
  std::uint64_t instants = 0;
  std::uint64_t counters = 0;
  std::uint64_t dropped_events = 0;  // ring-full + no-ring drops
  std::uint64_t tracks = 0;          // rings ever created
};
Stats stats();

/// One track's events, copied at a consistent published size.
struct TrackEvents {
  std::uint32_t track = 0;
  std::uint64_t dropped_events = 0;
  std::vector<Event> events;
};

/// Snapshot of every track (safe against concurrent writers: only events
/// published before the snapshot are read).
std::vector<TrackEvents> snapshot_tracks();

/// Serializes every track as Chrome trace-event JSON ("traceEvents" array
/// of B/E/i/C phases, ts in microseconds, tid = track id). Loadable in
/// Perfetto and chrome://tracing; validated by tools/obs/summarize_trace.py.
std::string trace_json(const std::string& process_name = "gdp");

/// Writes trace_json to `path`. Returns false (writing nothing) on I/O
/// failure.
bool write_trace(const std::string& path, const std::string& process_name = "gdp");

/// Zeroes every ring and drop counter in place. Test-only: callers must
/// guarantee no concurrent writers.
void reset();

}  // namespace gdp::obs::timeline

namespace gdp::obs {

/// RAII span that records BOTH planes from one call site: the registry's
/// SpanValue aggregate (obs::Span, gated by GDP_OBS) and a timeline slice
/// (gated by GDP_OBS_TIMELINE). The two gates are independent — either
/// side can be off without disturbing the other.
class TimedSpan {
 public:
  explicit TimedSpan(const char* name)
      : span_(name), name_(name), slice_(timeline::enabled()) {
    if (slice_) timeline::begin_slice(name_);
  }
  ~TimedSpan() { stop(); }

  /// Ends both records early; idempotent.
  void stop() {
    if (slice_) {
      slice_ = false;
      timeline::end_slice(name_);
    }
    span_.stop();
  }

  double seconds() const { return span_.seconds(); }

  TimedSpan(const TimedSpan&) = delete;
  TimedSpan& operator=(const TimedSpan&) = delete;

 private:
  Span span_;
  const char* name_;
  bool slice_;
};

}  // namespace gdp::obs
