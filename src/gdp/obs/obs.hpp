// gdp::obs — process-wide observability with two strictly separated planes.
//
//   * Deterministic plane: counters, gauges and histograms whose values are
//     a pure function of the work performed — states per level, edges,
//     Bellman sweeps, chunks written. Increments are integer adds (which
//     commute), accumulated into cache-line-padded per-thread stripes and
//     summed in stripe-index order, so every metric is bit-identical at
//     every thread count. The deterministic plane may be fingerprinted and
//     diffed across runs.
//
//   * Timing plane: wall-clock phase spans (obs::Span) and scheduling
//     artifacts (steal counts). These are explicitly non-deterministic,
//     never enter any fingerprint, and live under a separate key space in
//     the report ("timing") so no tool can confuse the two.
//
// The whole subsystem is gated: obs::enabled() starts from the GDP_OBS
// environment variable (unset/"0" = off) and can be flipped with
// obs::set_enabled(). When off, Counter::add and Span construction are a
// single relaxed atomic load and no clock is ever read — the engine's hot
// paths pay nothing measurable.
//
// Snapshots serialize through one versioned JSON schema (kReportSchema,
// obs::report_json) that every bench and example emits as BENCH_<name>.json
// — the replacement for per-bench hand-rolled "BENCH ..." printf lines.
//
// This directory is the only place in the tree allowed to read a clock
// (tools/lint/gdp_lint.py blesses src/gdp/obs/ and rejects wall-clock reads
// and hand-rolled stopwatch state everywhere else).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace gdp::obs {

/// Version of the JSON run-report schema emitted by report_json().
/// Schema 2 (this PR's bump from 1): span aggregates carry per-call
/// "min_ns"/"max_ns" (present iff count > 0), and the timing plane gains
/// "gauges" and "histograms" tables for live scheduler-shaped values
/// (resident chunks, bracket widths, hunger latency).
inline constexpr int kReportSchema = 2;

/// Which plane a metric lives in. Deterministic metrics must be a pure
/// function of the work performed (bit-identical at every thread count);
/// timing metrics may depend on the scheduler and the clock.
enum class Plane { kDeterministic, kTiming };

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True when metric recording is on. Initialized once from GDP_OBS.
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }

/// Flips recording globally (tests and bench mains; not thread-synchronizing
/// with in-flight increments — callers flip it around, not during, runs).
void set_enabled(bool on);

/// A monotonically increasing sum, striped across cache-line-padded atomic
/// slots so concurrent increments never contend on one line. Integer adds
/// commute, so value() — the stripe sum in index order — is independent of
/// which threads incremented: a deterministic-plane counter reads the same
/// at every thread count as long as the *set* of increments is.
class Counter {
 public:
  static constexpr unsigned kStripes = 64;

  void add(std::uint64_t n) {
    if (!enabled()) return;
    slots_[stripe()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void increment() { add(1); }

  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (unsigned i = 0; i < kStripes; ++i) sum += slots_[i].v.load(std::memory_order_relaxed);
    return sum;
  }

  void reset() {
    for (unsigned i = 0; i < kStripes; ++i) slots_[i].v.store(0, std::memory_order_relaxed);
  }

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> v{0};
  };
  static unsigned stripe();
  Slot slots_[kStripes];
};

/// A last-writer-wins or running-max scalar (intern-table bytes, peak
/// resident chunks). set_max is a commutative fold, so a gauge updated only
/// through set_max stays deterministic across thread counts.
class Gauge {
 public:
  void set(std::uint64_t v) {
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void set_max(std::uint64_t v) {
    if (!enabled()) return;
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Power-of-two-bucketed distribution (bucket b counts samples with
/// bit_width(v) == b; bucket 0 counts v == 0). Counts and the running sum
/// are commutative integer adds — deterministic-plane safe.
class Histogram {
 public:
  static constexpr unsigned kBuckets = 65;  // bit_width of a uint64 is 0..64

  void record(std::uint64_t v);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(unsigned b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  void reset();

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// One metric in a snapshot.
struct MetricValue {
  std::string name;
  std::uint64_t value = 0;
};

/// One histogram in a snapshot (non-empty buckets only).
struct HistogramValue {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::vector<std::pair<unsigned, std::uint64_t>> buckets;  // (bit_width, count)
};

/// One span aggregate in a snapshot: how often the phase ran, the total
/// wall-clock nanoseconds across all runs, and the fastest/slowest single
/// run. min_ns/max_ns are meaningful only when count > 0 (the JSON report
/// omits them on empty aggregates). Timing plane only.
struct SpanValue {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
};

/// A point-in-time copy of every registered metric, keys sorted (the
/// registry is an ordered map, so JSON key order is deterministic too).
struct Snapshot {
  std::vector<MetricValue> counters;            // deterministic plane
  std::vector<MetricValue> gauges;              // deterministic plane
  std::vector<HistogramValue> histograms;       // deterministic plane
  std::vector<MetricValue> timing_counters;     // timing plane (e.g. pool.steals)
  std::vector<MetricValue> timing_gauges;       // timing plane (e.g. resident chunks)
  std::vector<HistogramValue> timing_histograms;  // timing plane (e.g. hunger ns)
  std::vector<SpanValue> spans;                 // timing plane
};

/// The process-wide metric registry. Lookup by name returns a stable
/// reference (entries are never erased; reset() zeroes values in place), so
/// hot paths resolve their Counter& once and cache it.
class Registry {
 public:
  static Registry& global();

  Counter& counter(const std::string& name, Plane plane = Plane::kDeterministic);
  Gauge& gauge(const std::string& name, Plane plane = Plane::kDeterministic);
  Histogram& histogram(const std::string& name, Plane plane = Plane::kDeterministic);

  /// Accumulates one timed phase run into the span aggregate for `name`.
  void record_span(const std::string& name, std::uint64_t elapsed_ns);

  Snapshot snapshot() const;

  /// Zeroes every registered metric in place. References handed out before
  /// reset() stay valid — tests call this between thread-count runs.
  void reset();

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

/// RAII wall-clock span around one phase. Timing plane only: the elapsed
/// time is recorded into Registry::record_span on destruction (or stop()),
/// and never participates in any fingerprint. When obs is disabled at
/// construction no clock is read at all.
class Span {
 public:
  /// `name` must outlive the span (string literals in practice).
  explicit Span(const char* name) : name_(name), armed_(enabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }
  ~Span() { stop(); }

  /// Ends the span early and records it; idempotent.
  void stop() {
    if (!armed_) return;
    armed_ = false;
    elapsed_ns_ = static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                                 std::chrono::steady_clock::now() - start_)
                                                 .count());
    Registry::global().record_span(name_, elapsed_ns_);
  }

  /// Wall-clock seconds since construction — live while running, frozen at
  /// stop(), 0.0 when obs is disabled. For bench progress lines; the
  /// recorded aggregate comes from stop().
  double seconds() const {
    if (armed_) {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
    }
    return static_cast<double>(elapsed_ns_) * 1e-9;
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  bool armed_;
  std::uint64_t elapsed_ns_ = 0;
  std::chrono::steady_clock::time_point start_;
};

/// Free-running stopwatch for harnesses whose *behavior* is time-driven —
/// duration cutoffs and latency samples in the dining-philosophers runtime,
/// not metric recording. Unlike Span it always reads the clock, independent
/// of enabled(): its readings feed live results (RuntimeResult quantiles)
/// that exist with or without obs. Living in gdp/obs keeps every clock read
/// in the tree inside the lint-blessed directory; readings must stay on the
/// timing side (reports, progress) and never reach a fingerprinted value.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void restart() { start_ = std::chrono::steady_clock::now(); }

  std::uint64_t elapsed_ns() const {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                          std::chrono::steady_clock::now() - start_)
                                          .count());
  }

  double seconds() const { return static_cast<double>(elapsed_ns()) * 1e-9; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Serializes a snapshot as the versioned run-report JSON:
///
///   {
///     "gdp_obs_schema": 2,
///     "name": "<report name>",
///     "meta": { ...caller-provided string pairs... },
///     "deterministic": {
///       "counters": {"explore.states": 123, ...},
///       "gauges": {...},
///       "histograms": {"explore.level_states": {"count": n, "sum": s,
///                      "pow2_buckets": {"4": 2, ...}}, ...}
///     },
///     "timing": {
///       "counters": {"pool.steals": 7, ...},
///       "gauges": {"store.resident_chunks": 4, ...},
///       "histograms": {"runtime.hunger_ns": {...}},
///       "spans": {"explore.run": {"count": 1, "total_ns": 123456,
///                 "min_ns": 123456, "max_ns": 123456}, ...}
///     }
///   }
///
/// Everything under "deterministic" is bit-identical at every thread count;
/// everything under "timing" is not and must never be diffed or hashed.
std::string report_json(const Snapshot& snapshot, const std::string& name,
                        const std::vector<std::pair<std::string, std::string>>& meta = {});

/// Snapshots the global registry and writes report_json to `path`.
/// Returns false (and writes nothing) on I/O failure.
bool write_report(const std::string& path, const std::string& name,
                  const std::vector<std::pair<std::string, std::string>>& meta = {});

/// FNV-1a over the deterministic plane of a snapshot (names and values;
/// timing plane excluded by construction). Two runs doing the same work
/// must produce the same fingerprint regardless of thread count.
std::uint64_t deterministic_fingerprint(const Snapshot& snapshot);

}  // namespace gdp::obs
