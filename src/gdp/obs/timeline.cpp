#include "gdp/obs/timeline.hpp"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>

#include "gdp/common/thread_annotations.hpp"

namespace gdp::obs::timeline {

namespace detail {

namespace {
bool env_timeline_enabled() {
  const char* v = std::getenv("GDP_OBS_TIMELINE");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}
}  // namespace

std::atomic<bool> g_enabled{env_timeline_enabled()};

}  // namespace detail

void set_enabled(bool on) { detail::g_enabled.store(on, std::memory_order_relaxed); }

namespace {

// ---------------------------------------------------------------------------
// Rings

struct Ring {
  std::uint32_t track = 0;
  // Published event count. The owning thread is the only writer: it stores
  // event fields plainly, then publishes with a release store of size;
  // readers acquire-load size and may touch events[0, size) only. Ring
  // handoff through the free list is ordered by the registry mutex.
  std::atomic<std::uint32_t> size{0};
  std::atomic<std::uint64_t> dropped{0};
  Event events[kRingCapacity];
};

struct RingRegistry {
  common::Mutex mu;
  std::vector<std::unique_ptr<Ring>> all GDP_GUARDED_BY(mu);
  std::vector<Ring*> free_list GDP_GUARDED_BY(mu);
};

RingRegistry& rings() {
  // Leaked: worker threads may emit events during static destruction.
  static RingRegistry* const r = new RingRegistry();
  return *r;
}

// Events from threads that arrive after kMaxRings rings are live.
std::atomic<std::uint64_t> g_unringed_dropped{0};

void release_ring(Ring* ring) {
  RingRegistry& reg = rings();
  common::MutexLock lock(reg.mu);
  reg.free_list.push_back(ring);
}

Ring* acquire_ring() {
  RingRegistry& reg = rings();
  common::MutexLock lock(reg.mu);
  if (!reg.free_list.empty()) {
    Ring* ring = reg.free_list.back();
    reg.free_list.pop_back();
    return ring;
  }
  if (reg.all.size() >= kMaxRings) return nullptr;
  auto ring = std::make_unique<Ring>();
  ring->track = static_cast<std::uint32_t>(reg.all.size());
  reg.all.push_back(std::move(ring));
  return reg.all.back().get();
}

// Thread-local ring handle: claims a ring on the thread's first event and
// returns it to the free list at thread exit, so the pool's short-lived
// workers recycle a bounded set of tracks.
struct RingHandle {
  Ring* ring = nullptr;
  bool exhausted = false;  // acquire failed once: drop without retrying
  ~RingHandle() {
    if (ring != nullptr) release_ring(ring);
  }
};

Ring* my_ring() {
  thread_local RingHandle handle;
  if (handle.ring == nullptr && !handle.exhausted) {
    handle.ring = acquire_ring();
    handle.exhausted = handle.ring == nullptr;
  }
  return handle.ring;
}

std::uint64_t now_ns() {
  // Epoch = first clock read after process start; all later readings are
  // monotonically >= it, so ts_ns never underflows.
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - epoch)
                                        .count());
}

void emit(EventKind kind, const char* name, double value) {
  Ring* ring = my_ring();
  if (ring == nullptr) {
    g_unringed_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Sole writer for this ring while it is held, so a relaxed self-read of
  // size is exact.
  const std::uint32_t i = ring->size.load(std::memory_order_relaxed);
  if (i >= kRingCapacity) {
    // Drop-on-full: earlier events stay intact, memory stays bounded.
    ring->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Event& e = ring->events[i];
  e.kind = kind;
  e.name = name;
  e.value = value;
  e.ts_ns = now_ns();
  ring->size.store(i + 1, std::memory_order_release);
}

}  // namespace

void begin_slice(const char* name) {
  if (!enabled()) return;
  emit(EventKind::kBegin, name, 0.0);
}

void end_slice(const char* name) {
  if (!enabled()) return;
  emit(EventKind::kEnd, name, 0.0);
}

void instant(const char* name) {
  if (!enabled()) return;
  emit(EventKind::kInstant, name, 0.0);
}

void counter_sample(const char* name, double value) {
  if (!enabled()) return;
  emit(EventKind::kCounter, name, value);
}

std::vector<TrackEvents> snapshot_tracks() {
  std::vector<Ring*> live;
  {
    RingRegistry& reg = rings();
    common::MutexLock lock(reg.mu);
    live.reserve(reg.all.size());
    for (const auto& ring : reg.all) live.push_back(ring.get());
  }
  std::vector<TrackEvents> out;
  out.reserve(live.size());
  for (Ring* ring : live) {
    TrackEvents te;
    te.track = ring->track;
    te.dropped_events = ring->dropped.load(std::memory_order_relaxed);
    const std::uint32_t published = ring->size.load(std::memory_order_acquire);
    te.events.assign(ring->events, ring->events + published);
    out.push_back(std::move(te));
  }
  return out;
}

Stats stats() {
  Stats st;
  const std::vector<TrackEvents> tracks = snapshot_tracks();
  st.tracks = tracks.size();
  st.dropped_events = g_unringed_dropped.load(std::memory_order_relaxed);
  for (const TrackEvents& te : tracks) {
    st.events += te.events.size();
    st.dropped_events += te.dropped_events;
    for (const Event& e : te.events) {
      switch (e.kind) {
        case EventKind::kBegin: ++st.begins; break;
        case EventKind::kEnd: ++st.ends; break;
        case EventKind::kInstant: ++st.instants; break;
        case EventKind::kCounter: ++st.counters; break;
      }
    }
  }
  return st;
}

namespace {

void append_trace_escaped(std::string& out, const char* s) {
  out += '"';
  for (; *s != '\0'; ++s) {
    const char ch = *s;
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", ch);
      out += buf;
    } else {
      out += ch;
    }
  }
  out += '"';
}

void append_event(std::string& out, std::uint32_t tid, const Event& e) {
  char buf[64];
  out += "{\"name\": ";
  append_trace_escaped(out, e.name != nullptr ? e.name : "?");
  out += ", \"ph\": \"";
  switch (e.kind) {
    case EventKind::kBegin: out += 'B'; break;
    case EventKind::kEnd: out += 'E'; break;
    case EventKind::kInstant: out += 'i'; break;
    case EventKind::kCounter: out += 'C'; break;
  }
  // Chrome trace ts is in microseconds; keep nanosecond precision as the
  // fractional part.
  std::snprintf(buf, sizeof buf, "\", \"pid\": 1, \"tid\": %" PRIu32 ", \"ts\": %" PRIu64
                                 ".%03" PRIu64,
                tid, e.ts_ns / 1000, e.ts_ns % 1000);
  out += buf;
  if (e.kind == EventKind::kInstant) {
    out += ", \"s\": \"t\"";  // thread-scoped instant
  } else if (e.kind == EventKind::kCounter) {
    std::snprintf(buf, sizeof buf, ", \"args\": {\"value\": %.17g}", e.value);
    out += buf;
  }
  out += '}';
}

}  // namespace

std::string trace_json(const std::string& process_name) {
  const std::vector<TrackEvents> tracks = snapshot_tracks();
  std::uint64_t dropped = g_unringed_dropped.load(std::memory_order_relaxed);
  for (const TrackEvents& te : tracks) dropped += te.dropped_events;

  std::string out;
  out.reserve(256 + tracks.size() * 128);
  out += "{\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {\"tool\": \"gdp::obs::timeline\", "
         "\"dropped_events\": \"";
  out += std::to_string(dropped);
  out += "\"},\n\"traceEvents\": [\n";
  out += "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"args\": "
         "{\"name\": ";
  append_trace_escaped(out, process_name.c_str());
  out += "}}";
  for (const TrackEvents& te : tracks) {
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  ",\n{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": %" PRIu32
                  ", \"args\": {\"name\": \"track-%" PRIu32 "\"}}",
                  te.track, te.track);
    out += buf;
  }
  for (const TrackEvents& te : tracks) {
    for (const Event& e : te.events) {
      out += ",\n";
      append_event(out, te.track, e);
    }
  }
  out += "\n]\n}\n";
  return out;
}

bool write_trace(const std::string& path, const std::string& process_name) {
  const std::string json = trace_json(process_name);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  const bool closed = std::fclose(f) == 0;
  return wrote && closed;
}

void reset() {
  RingRegistry& reg = rings();
  common::MutexLock lock(reg.mu);
  for (const auto& ring : reg.all) {
    ring->size.store(0, std::memory_order_release);
    ring->dropped.store(0, std::memory_order_relaxed);
  }
  g_unringed_dropped.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// GDP_OBS_PROGRESS heartbeat sampler

namespace detail {

namespace {

std::uint64_t snapshot_value(const std::vector<MetricValue>& metrics, const char* name) {
  for (const MetricValue& m : metrics) {
    if (m.name == name) return m.value;
  }
  return 0;
}

void heartbeat_loop(long interval_ms) {
  std::uint64_t seq = 0;
  const std::uint64_t start_ns = now_ns();
  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    const Snapshot snap = Registry::global().snapshot();
    const Stats st = stats();
    const std::uint64_t elapsed_ms = (now_ns() - start_ns) / 1'000'000;
    // One flat NDJSON object per line, built in one buffer so concurrent
    // stderr writers cannot split a heartbeat.
    std::string line;
    line.reserve(512);
    line += "{\"gdp_obs_heartbeat\": 1";
    line += ", \"seq\": " + std::to_string(seq++);
    line += ", \"elapsed_ms\": " + std::to_string(elapsed_ms);
    const auto field = [&line](const char* key, std::uint64_t v) {
      line += ", \"";
      line += key;
      line += "\": " + std::to_string(v);
    };
    field("explore_levels", snapshot_value(snap.counters, "explore.levels"));
    field("explore_states", snapshot_value(snap.counters, "explore.states"));
    field("explore_edges", snapshot_value(snap.counters, "explore.edges"));
    field("quant_sweeps", snapshot_value(snap.counters, "quant.sweeps"));
    field("quant_bracket_width_ppb",
          snapshot_value(snap.timing_gauges, "quant.bracket_width_ppb"));
    field("store_resident_chunks",
          snapshot_value(snap.timing_gauges, "store.resident_chunks"));
    field("store_resident_bytes",
          snapshot_value(snap.timing_gauges, "store.resident_bytes"));
    field("store_chunk_faults", snapshot_value(snap.timing_counters, "store.chunk_faults"));
    field("pool_tasks", snapshot_value(snap.timing_counters, "pool.tasks"));
    field("timeline_events", st.events);
    field("timeline_dropped", st.dropped_events);
    line += "}\n";
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
  }
}

}  // namespace

void ensure_progress_sampler() {
  static std::atomic<bool> started{false};
  if (started.load(std::memory_order_acquire)) return;
  if (started.exchange(true, std::memory_order_acq_rel)) return;
  const char* v = std::getenv("GDP_OBS_PROGRESS");
  if (v == nullptr || v[0] == '\0') return;
  char* end = nullptr;
  const long interval_ms = std::strtol(v, &end, 10);
  if (end == v || interval_ms <= 0) return;
  // gdp-lint: allow(raw-thread) — the heartbeat sampler is a detached
  // observer: it only reads registry snapshots and ring prefixes and writes
  // to stderr, so it must never join, park, or funnel into the pool — a
  // pool worker here would block engine work, which is exactly what the
  // heartbeat contract forbids.
  std::thread([interval_ms] { heartbeat_loop(interval_ms); }).detach();
}

}  // namespace detail

}  // namespace gdp::obs::timeline
