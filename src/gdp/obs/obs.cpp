#include "gdp/obs/obs.hpp"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "gdp/common/thread_annotations.hpp"
#include "gdp/obs/timeline.hpp"

namespace gdp::obs {

namespace detail {

namespace {
bool env_enabled() {
  const char* v = std::getenv("GDP_OBS");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}
}  // namespace

std::atomic<bool> g_enabled{env_enabled()};

}  // namespace detail

void set_enabled(bool on) { detail::g_enabled.store(on, std::memory_order_relaxed); }

unsigned Counter::stripe() {
  // One stripe per thread (wrapping at kStripes): ids are assigned on first
  // touch, so any bounded pool gets distinct cache lines.
  static std::atomic<unsigned> next{0};
  thread_local const unsigned id = next.fetch_add(1, std::memory_order_relaxed);
  return id % kStripes;
}

void Histogram::record(std::uint64_t v) {
  if (!enabled()) return;
  buckets_[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry

namespace {

struct SpanAgg {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;  // meaningful only when count > 0
  std::uint64_t max_ns = 0;
};

}  // namespace

/// Ordered maps keyed by metric name: lookup is rare (hot paths cache the
/// returned reference), node addresses are stable for the process lifetime,
/// and iteration order is lexicographic — which is what makes snapshot and
/// JSON key order deterministic without a sort step.
struct Registry::Impl {
  mutable common::Mutex mu;
  std::map<std::string, Counter> det_counters GDP_GUARDED_BY(mu);
  std::map<std::string, Counter> timing_counters GDP_GUARDED_BY(mu);
  std::map<std::string, Gauge> gauges GDP_GUARDED_BY(mu);
  std::map<std::string, Gauge> timing_gauges GDP_GUARDED_BY(mu);
  std::map<std::string, Histogram> histograms GDP_GUARDED_BY(mu);
  std::map<std::string, Histogram> timing_histograms GDP_GUARDED_BY(mu);
  std::map<std::string, SpanAgg> spans GDP_GUARDED_BY(mu);
};

Registry& Registry::global() {
  // Leaked singleton: metric references handed to static-duration callers
  // must outlive every destructor.
  static Registry* const instance = new Registry();
  return *instance;
}

Registry::Impl& Registry::impl() const {
  // Every registry access path funnels through here, so this is where the
  // GDP_OBS_PROGRESS heartbeat sampler latches on: any process that touches
  // gdp::obs streams progress without bench cooperation. One acquire load
  // after the first call.
  timeline::detail::ensure_progress_sampler();
  static Impl* const impl = new Impl();
  return *impl;
}

Counter& Registry::counter(const std::string& name, Plane plane) {
  Impl& im = impl();
  common::MutexLock lock(im.mu);
  auto& table = plane == Plane::kDeterministic ? im.det_counters : im.timing_counters;
  return table.try_emplace(name).first->second;
}

Gauge& Registry::gauge(const std::string& name, Plane plane) {
  Impl& im = impl();
  common::MutexLock lock(im.mu);
  auto& table = plane == Plane::kDeterministic ? im.gauges : im.timing_gauges;
  return table.try_emplace(name).first->second;
}

Histogram& Registry::histogram(const std::string& name, Plane plane) {
  Impl& im = impl();
  common::MutexLock lock(im.mu);
  auto& table = plane == Plane::kDeterministic ? im.histograms : im.timing_histograms;
  return table.try_emplace(name).first->second;
}

void Registry::record_span(const std::string& name, std::uint64_t elapsed_ns) {
  Impl& im = impl();
  common::MutexLock lock(im.mu);
  SpanAgg& agg = im.spans.try_emplace(name).first->second;
  agg.count += 1;
  agg.total_ns += elapsed_ns;
  if (agg.count == 1) {
    agg.min_ns = elapsed_ns;
    agg.max_ns = elapsed_ns;
  } else {
    if (elapsed_ns < agg.min_ns) agg.min_ns = elapsed_ns;
    if (elapsed_ns > agg.max_ns) agg.max_ns = elapsed_ns;
  }
}

Snapshot Registry::snapshot() const {
  Impl& im = impl();
  common::MutexLock lock(im.mu);
  Snapshot snap;
  const auto copy_histograms = [](const std::map<std::string, Histogram>& from,
                                  std::vector<HistogramValue>& to) {
    for (const auto& [name, h] : from) {
      HistogramValue hv;
      hv.name = name;
      hv.count = h.count();
      hv.sum = h.sum();
      for (unsigned b = 0; b < Histogram::kBuckets; ++b) {
        if (const std::uint64_t n = h.bucket(b); n != 0) hv.buckets.emplace_back(b, n);
      }
      to.push_back(std::move(hv));
    }
  };
  snap.counters.reserve(im.det_counters.size());
  for (const auto& [name, c] : im.det_counters) snap.counters.push_back({name, c.value()});
  snap.gauges.reserve(im.gauges.size());
  for (const auto& [name, g] : im.gauges) snap.gauges.push_back({name, g.value()});
  copy_histograms(im.histograms, snap.histograms);
  snap.timing_counters.reserve(im.timing_counters.size());
  for (const auto& [name, c] : im.timing_counters) {
    snap.timing_counters.push_back({name, c.value()});
  }
  snap.timing_gauges.reserve(im.timing_gauges.size());
  for (const auto& [name, g] : im.timing_gauges) snap.timing_gauges.push_back({name, g.value()});
  copy_histograms(im.timing_histograms, snap.timing_histograms);
  snap.spans.reserve(im.spans.size());
  for (const auto& [name, agg] : im.spans) {
    snap.spans.push_back({name, agg.count, agg.total_ns, agg.min_ns, agg.max_ns});
  }
  return snap;
}

void Registry::reset() {
  Impl& im = impl();
  common::MutexLock lock(im.mu);
  // Zero in place: entries are never erased, so Counter&/Gauge& references
  // cached by instrumentation sites stay valid across resets.
  for (auto& [name, c] : im.det_counters) c.reset();
  for (auto& [name, c] : im.timing_counters) c.reset();
  for (auto& [name, g] : im.gauges) g.reset();
  for (auto& [name, g] : im.timing_gauges) g.reset();
  for (auto& [name, h] : im.histograms) h.reset();
  for (auto& [name, h] : im.timing_histograms) h.reset();
  for (auto& [name, agg] : im.spans) agg = SpanAgg{};
}

// ---------------------------------------------------------------------------
// JSON report

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

void append_metric_map(std::string& out, const std::vector<MetricValue>& metrics) {
  out += '{';
  bool first = true;
  for (const MetricValue& m : metrics) {
    if (!first) out += ", ";
    first = false;
    append_escaped(out, m.name);
    out += ": ";
    out += std::to_string(m.value);
  }
  out += '}';
}

void append_histogram_map(std::string& out, const std::vector<HistogramValue>& histograms) {
  out += '{';
  bool first = true;
  for (const HistogramValue& h : histograms) {
    if (!first) out += ", ";
    first = false;
    append_escaped(out, h.name);
    out += ": {\"count\": " + std::to_string(h.count) + ", \"sum\": " + std::to_string(h.sum) +
           ", \"pow2_buckets\": {";
    bool bfirst = true;
    for (const auto& [bits, n] : h.buckets) {
      if (!bfirst) out += ", ";
      bfirst = false;
      out += '"' + std::to_string(bits) + "\": " + std::to_string(n);
    }
    out += "}}";
  }
  out += '}';
}

}  // namespace

std::string report_json(const Snapshot& snapshot, const std::string& name,
                        const std::vector<std::pair<std::string, std::string>>& meta) {
  std::string out;
  out.reserve(1024);
  out += "{\n  \"gdp_obs_schema\": ";
  out += std::to_string(kReportSchema);
  out += ",\n  \"name\": ";
  append_escaped(out, name);
  out += ",\n  \"meta\": {";
  bool first = true;
  for (const auto& [k, v] : meta) {
    if (!first) out += ", ";
    first = false;
    append_escaped(out, k);
    out += ": ";
    append_escaped(out, v);
  }
  out += "},\n  \"deterministic\": {\n    \"counters\": ";
  append_metric_map(out, snapshot.counters);
  out += ",\n    \"gauges\": ";
  append_metric_map(out, snapshot.gauges);
  out += ",\n    \"histograms\": ";
  append_histogram_map(out, snapshot.histograms);
  out += "\n  },\n  \"timing\": {\n    \"counters\": ";
  append_metric_map(out, snapshot.timing_counters);
  out += ",\n    \"gauges\": ";
  append_metric_map(out, snapshot.timing_gauges);
  out += ",\n    \"histograms\": ";
  append_histogram_map(out, snapshot.timing_histograms);
  out += ",\n    \"spans\": {";
  first = true;
  for (const SpanValue& s : snapshot.spans) {
    if (!first) out += ", ";
    first = false;
    append_escaped(out, s.name);
    out += ": {\"count\": " + std::to_string(s.count) +
           ", \"total_ns\": " + std::to_string(s.total_ns);
    // min/max are undefined on an empty aggregate (a reset span): omit them
    // so the schema has no sentinel values.
    if (s.count > 0) {
      out += ", \"min_ns\": " + std::to_string(s.min_ns) +
             ", \"max_ns\": " + std::to_string(s.max_ns);
    }
    out += "}";
  }
  out += "}\n  }\n}\n";
  return out;
}

bool write_report(const std::string& path, const std::string& name,
                  const std::vector<std::pair<std::string, std::string>>& meta) {
  const std::string json = report_json(Registry::global().snapshot(), name, meta);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  const bool closed = std::fclose(f) == 0;
  return wrote && closed;
}

std::uint64_t deterministic_fingerprint(const Snapshot& snapshot) {
  std::uint64_t h = 14695981039346656037ULL;  // FNV-1a offset basis
  auto mix_byte = [&h](unsigned char b) {
    h ^= b;
    h *= 1099511628211ULL;  // FNV prime
  };
  auto mix_str = [&](const std::string& s) {
    for (const char c : s) mix_byte(static_cast<unsigned char>(c));
    mix_byte(0);
  };
  auto mix_u64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) mix_byte(static_cast<unsigned char>(v >> (8 * i)));
  };
  for (const MetricValue& m : snapshot.counters) {
    mix_str(m.name);
    mix_u64(m.value);
  }
  for (const MetricValue& m : snapshot.gauges) {
    mix_str(m.name);
    mix_u64(m.value);
  }
  for (const HistogramValue& hv : snapshot.histograms) {
    mix_str(hv.name);
    mix_u64(hv.count);
    mix_u64(hv.sum);
    for (const auto& [bits, n] : hv.buckets) {
      mix_u64(bits);
      mix_u64(n);
    }
  }
  return h;
}

}  // namespace gdp::obs
