// Strong-ish id aliases shared by every module.
//
// The paper's system is a multigraph whose *nodes are forks* and whose *arcs
// are philosophers*; ids index into dense vectors everywhere, so they are
// plain 32-bit integers with named sentinels rather than wrapper classes.
#pragma once

#include <cstdint>

namespace gdp {

/// Index of a philosopher (an arc of the topology multigraph).
using PhilId = std::int32_t;

/// Index of a fork (a node of the topology multigraph).
using ForkId = std::int32_t;

/// "No philosopher": a free fork's holder, or a scheduler returning nothing.
inline constexpr PhilId kNoPhil = -1;

/// "No fork": an unset commitment.
inline constexpr ForkId kNoFork = -1;

/// Which of a philosopher's two forks is meant. The paper's philosophers call
/// their forks `left` and `right`; the designation is fixed per philosopher at
/// topology construction and carries no geometric meaning.
enum class Side : std::uint8_t { kLeft = 0, kRight = 1 };

/// The other side. `other(left) == right` and vice versa.
constexpr Side other(Side s) {
  return s == Side::kLeft ? Side::kRight : Side::kLeft;
}

/// Short printable name, for traces.
constexpr const char* to_string(Side s) {
  return s == Side::kLeft ? "left" : "right";
}

}  // namespace gdp
