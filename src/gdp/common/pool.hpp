// Work-stealing parallelism primitives shared by the experiment Runner
// (gdp::exp) and the parallel model checker (gdp::mdp::par).
//
// Two layers:
//
//   * StealRange — a contiguous task range packed into one 64-bit word.
//     The owner pops from the head, thieves CAS the back half off the
//     tail; a single CAS keeps both linearizable. This is the entire
//     queue machinery parallel_for needs, because the workloads using it
//     (simulation trials, state expansions) are heavyweight relative to
//     one CAS.
//
//   * run_workers / parallel_for — spawn-join helpers. parallel_for
//     executes fn(0..total-1) on a steal-half pool and rethrows the first
//     worker exception after the pool drains; with one worker it runs
//     inline on the calling thread, so a threads==1 configuration is
//     byte-for-byte the sequential execution.
//
// Nothing here imposes an ordering on task completion: callers that need
// deterministic output park results at their task index and fold them in
// index order afterwards (see gdp/exp/runner.cpp, gdp/mdp/par/explore.cpp).
//
// Concurrency discipline: everything in this header is a single atomic word
// (StealRange's packed range, Backoff's failure counter is worker-local), so
// there is no capability to annotate — the lock-protected structures built
// on top of the pool use the annotated gdp::common::Mutex from
// gdp/common/thread_annotations.hpp, which Clang's -Wthread-safety checks
// under cmake -DGDP_THREAD_SAFETY=ON.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <thread>
#include <utility>

namespace gdp::common {

/// Idle-wait backoff for workers that found nothing to pop or steal: yield
/// for the first few failures (work usually reappears immediately), then
/// sleep in short slices so spinners stop starving the workers that still
/// hold work — essential when the pool is oversubscribed on few cores.
class Backoff {
 public:
  void pause() {
    if (++failures_ <= 16) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  void reset() { failures_ = 0; }

 private:
  unsigned failures_ = 0;
};

/// A contiguous range of task ids packed as (head << 32) | tail. The owner
/// pops from the head, thieves CAS the back half off the tail.
struct alignas(64) StealRange {
  std::atomic<std::uint64_t> range{0};

  static constexpr std::uint64_t pack(std::uint32_t head, std::uint32_t tail) {
    return (static_cast<std::uint64_t>(head) << 32) | tail;
  }
  static constexpr std::uint32_t head(std::uint64_t r) {
    return static_cast<std::uint32_t>(r >> 32);
  }
  static constexpr std::uint32_t tail(std::uint64_t r) { return static_cast<std::uint32_t>(r); }

  void reset(std::uint32_t lo, std::uint32_t hi) {
    range.store(pack(lo, hi), std::memory_order_release);
  }

  std::optional<std::uint32_t> pop_front() {
    std::uint64_t r = range.load(std::memory_order_acquire);
    while (head(r) < tail(r)) {
      if (range.compare_exchange_weak(r, pack(head(r) + 1, tail(r)), std::memory_order_acq_rel)) {
        return head(r);
      }
    }
    return std::nullopt;
  }

  /// Steals the back half [tail - k, tail); returns the stolen range.
  std::optional<std::pair<std::uint32_t, std::uint32_t>> steal_half() {
    std::uint64_t r = range.load(std::memory_order_acquire);
    while (head(r) < tail(r)) {
      const std::uint32_t k = (tail(r) - head(r) + 1) / 2;
      if (range.compare_exchange_weak(r, pack(head(r), tail(r) - k), std::memory_order_acq_rel)) {
        return std::make_pair(tail(r) - k, tail(r));
      }
    }
    return std::nullopt;
  }

  std::uint32_t remaining() const {
    const std::uint64_t r = range.load(std::memory_order_relaxed);
    return tail(r) - head(r);
  }
};

/// Worker count actually used for `tasks` tasks: `requested` if positive,
/// std::thread::hardware_concurrency() if 0; always clamped to [1, tasks]
/// (with tasks == 0 treated as 1). Throws PreconditionError on negative.
unsigned effective_threads(int requested, std::size_t tasks);

/// Runs body(worker_id) on `threads` OS threads and joins them all; the
/// first exception thrown by any worker is rethrown after the join.
/// threads <= 1 calls body(0) inline on the calling thread.
void run_workers(unsigned threads, const std::function<void(unsigned)>& body);

/// Executes fn(id) for every id in [0, total) on a steal-half work-stealing
/// pool of `threads` workers (see effective_threads for the 0 convention).
/// Each worker owns a contiguous shard, pops from its front, and when empty
/// steals the back half of the fullest other shard. An exception in any
/// task aborts the remaining tasks and is rethrown after the pool drains.
/// fn must be safe to call concurrently for distinct ids. total < 2^32.
void parallel_for(std::size_t total, int threads, const std::function<void(std::uint32_t)>& fn);

/// Deterministic parallel max-reduction over contiguous index chunks:
/// partitions [0, total) into fixed chunks (boundaries depend only on
/// `total`, never on the worker count), runs body(lo, hi) per chunk on the
/// pool, and folds the per-chunk results in ascending chunk order. Because
/// IEEE max is associative and commutative and the fold order is pinned,
/// the result is bit-identical at every thread count — the reduction the
/// quantitative checker's Bellman sweeps use for residuals and interval
/// widths. Returns -inf for total == 0.
double parallel_chunk_max(std::size_t total, int threads,
                          const std::function<double(std::size_t, std::size_t)>& body);

}  // namespace gdp::common
