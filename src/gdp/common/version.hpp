// Library version, exposed for tooling and the examples' banners.
#pragma once

namespace gdp {

inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;

inline constexpr const char* kVersionString = "1.0.0";

/// The paper this library reproduces.
inline constexpr const char* kPaperCitation =
    "O. M. Herescu and C. Palamidessi, \"On the generalized dining "
    "philosophers problem\", PODC 2001 (arXiv:cs/0109003)";

}  // namespace gdp
