// Lightweight runtime checking for library-boundary validation.
//
// GDP_CHECK is used at public API boundaries (topology construction, engine
// configuration) where a violated precondition is a caller bug that should be
// reported with context rather than silently corrupting a simulation.
// GDP_DCHECK compiles away in release hot paths (per-step invariants).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace gdp {

/// Thrown when a documented precondition of the public API is violated.
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* cond, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream out;
  out << "GDP_CHECK failed: (" << cond << ") at " << file << ':' << line;
  if (!msg.empty()) out << " — " << msg;
  throw PreconditionError(out.str());
}

// Message builder that only materializes the stream when a check fails.
class CheckMessage {
 public:
  template <typename T>
  CheckMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }
  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace gdp

#define GDP_CHECK(cond)                                                       \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::gdp::detail::check_failed(#cond, __FILE__, __LINE__, std::string{});  \
    }                                                                         \
  } while (false)

#define GDP_CHECK_MSG(cond, msg_expr)                                         \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::gdp::detail::check_failed(                                            \
          #cond, __FILE__, __LINE__,                                          \
          (::gdp::detail::CheckMessage{} << msg_expr).str());                 \
    }                                                                         \
  } while (false)

#ifdef NDEBUG
// sizeof keeps variables used only in debug checks "odr-used" enough to
// silence -Wunused without evaluating the condition.
#define GDP_DCHECK(cond)           \
  do {                             \
    (void)sizeof((cond) ? 1 : 0);  \
  } while (false)
#else
#define GDP_DCHECK(cond) GDP_CHECK(cond)
#endif
