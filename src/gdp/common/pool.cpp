#include "gdp/common/pool.hpp"

#include <algorithm>
#include <exception>
#include <limits>
#include <thread>
#include <vector>

#include "gdp/common/check.hpp"
#include "gdp/common/thread_annotations.hpp"
#include "gdp/obs/obs.hpp"
#include "gdp/obs/timeline.hpp"

namespace gdp::common {

unsigned effective_threads(int requested, std::size_t tasks) {
  GDP_CHECK_MSG(requested >= 0, "thread count must be >= 0 (0 = hardware concurrency)");
  unsigned n = requested > 0 ? static_cast<unsigned>(requested)
                             : std::thread::hardware_concurrency();
  if (n < 1) n = 1;
  if (tasks < 1) tasks = 1;
  if (n > tasks) n = static_cast<unsigned>(tasks);
  return n;
}

void run_workers(unsigned threads, const std::function<void(unsigned)>& body) {
  if (threads <= 1) {
    body(0);
    return;
  }
  std::exception_ptr first_error;
  // Function-local capability: serializes the first_error capture across
  // workers; joined before the unlocked read below, so GDP_GUARDED_BY (a
  // member/global attribute) cannot express the discipline.
  Mutex error_mutex;  // gdp-lint: allow(unannotated-mutex) — guards the local first_error; see above
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) {
    pool.emplace_back([&, w] {
      try {
        body(w);
      } catch (...) {
        MutexLock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t total, int threads, const std::function<void(std::uint32_t)>& fn) {
  GDP_CHECK_MSG(total < (std::uint64_t{1} << 32), "parallel_for supports < 2^32 tasks, got "
                                                      << total);
  if (total == 0) return;
  const unsigned n = effective_threads(threads, total);

  // Timing plane, all three: steals depend on scheduling outright, and the
  // call/task totals describe how work was *executed*, not what work was
  // done — seq-vs-par dispatch (parallel_chunk_max, the MEC fallback) keys
  // on the requested thread count, so these totals are not thread-count
  // invariant. References resolved once; the registry never moves them.
  static obs::Counter& calls =
      obs::Registry::global().counter("pool.parallel_for_calls", obs::Plane::kTiming);
  static obs::Counter& tasks = obs::Registry::global().counter("pool.tasks", obs::Plane::kTiming);
  calls.increment();
  tasks.add(total);

  if (n <= 1) {
    for (std::uint32_t id = 0; id < total; ++id) fn(id);
    return;
  }

  // Contiguous initial shards; the steal protocol rebalances from there.
  std::vector<StealRange> shards(n);
  for (unsigned w = 0; w < n; ++w) {
    shards[w].reset(static_cast<std::uint32_t>(total * w / n),
                    static_cast<std::uint32_t>(total * (w + 1) / n));
  }

  std::atomic<bool> abort{false};
  static obs::Counter& steals =
      obs::Registry::global().counter("pool.steals", obs::Plane::kTiming);
  run_workers(n, [&](unsigned me) {
    // One timeline slice per worker ("pool.worker" on the worker's own
    // track), with a steal instant per successful steal and a running
    // tasks-run counter sample at each steal and at exit.
    obs::timeline::ScopedSlice worker_slice("pool.worker");
    std::uint64_t ran = 0;
    try {
      while (!abort.load(std::memory_order_relaxed)) {
        if (const auto id = shards[me].pop_front()) {
          fn(*id);
          ++ran;
          continue;
        }
        // Own shard drained: steal the back half of the fullest victim into
        // our shard (so others can steal from us in turn).
        unsigned victim = n;
        std::uint32_t best = 0;
        for (unsigned v = 0; v < n; ++v) {
          if (v == me) continue;
          const std::uint32_t r = shards[v].remaining();
          if (r > best) {
            best = r;
            victim = v;
          }
        }
        if (victim == n) break;  // everything claimed everywhere
        if (const auto stolen = shards[victim].steal_half()) {
          steals.increment();
          obs::timeline::instant("pool.steal");
          obs::timeline::counter_sample("pool.tasks_run", static_cast<double>(ran));
          shards[me].reset(stolen->first, stolen->second);
        }
      }
    } catch (...) {
      abort.store(true, std::memory_order_relaxed);
      throw;  // run_workers records and rethrows the first one
    }
    obs::timeline::counter_sample("pool.tasks_run", static_cast<double>(ran));
  });
}

double parallel_chunk_max(std::size_t total, int threads,
                          const std::function<double(std::size_t, std::size_t)>& body) {
  constexpr std::size_t kChunk = 4'096;  // boundaries depend on total only
  if (total == 0) return -std::numeric_limits<double>::infinity();
  const std::size_t chunks = (total + kChunk - 1) / kChunk;
  if (chunks == 1 || effective_threads(threads, chunks) <= 1) {
    double best = -std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < chunks; ++c) {
      best = std::max(best, body(c * kChunk, std::min(total, (c + 1) * kChunk)));
    }
    return best;
  }
  std::vector<double> partial(chunks, -std::numeric_limits<double>::infinity());
  parallel_for(chunks, threads, [&](std::uint32_t c) {
    partial[c] = body(std::size_t{c} * kChunk, std::min(total, (std::size_t{c} + 1) * kChunk));
  });
  double best = partial[0];
  for (std::size_t c = 1; c < chunks; ++c) best = std::max(best, partial[c]);
  return best;
}

}  // namespace gdp::common
