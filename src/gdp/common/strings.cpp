#include "gdp/common/strings.hpp"

#include <cmath>
#include <cstdio>

namespace gdp {

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format_double(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string pad(const std::string& text, int width) {
  const std::size_t target = static_cast<std::size_t>(width < 0 ? -width : width);
  if (text.size() >= target) return text;
  const std::string fill(target - text.size(), ' ');
  return width < 0 ? fill + text : text + fill;
}

std::string phil_name(int id) { return "P" + std::to_string(id); }

std::string fork_name(int id) { return "f" + std::to_string(id); }

std::string percent(double fraction) {
  return format_double(fraction * 100.0, 1) + "%";
}

}  // namespace gdp
