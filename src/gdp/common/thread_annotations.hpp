// Compile-time race detection: wrappers over Clang's -Wthread-safety
// attribute set (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html),
// no-ops on every other compiler.
//
// The engine's headline guarantee — models, MECs and quantitative intervals
// bit-identical at every thread count — rests on a small set of locking
// disciplines (per-worker frontiers, sharded intern tables, region queues,
// fork monitors). These macros make those disciplines *statically
// checkable*: a `GDP_GUARDED_BY(mu)` member read without `mu` held fails
// the build under `cmake -DGDP_THREAD_SAFETY=ON` (Clang only, which adds
// -Werror=thread-safety) instead of flaking as a TSan report in CI.
//
// Because libstdc++'s std::mutex carries no capability attributes, the
// analysis cannot see through std::lock_guard<std::mutex>. Lock-protected
// structures therefore use the annotated gdp::common::Mutex / MutexLock
// wrappers below — zero-overhead shims over std::mutex whose lock/unlock
// are visible to the analysis. The repo-specific linter
// (tools/lint/gdp_lint.py, rule `unannotated-mutex`) enforces that every
// mutex declared under src/ either guards something via these attributes
// or carries a justified suppression.
#pragma once

#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define GDP_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define GDP_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

/// Marks a type as a lockable capability ("mutex", "fork", ...).
#define GDP_CAPABILITY(x) GDP_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define GDP_SCOPED_CAPABILITY GDP_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Data member readable/writable only with the given capability held.
#define GDP_GUARDED_BY(x) GDP_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given capability.
#define GDP_PT_GUARDED_BY(x) GDP_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Function requires the capability (exclusively / shared) on entry.
#define GDP_REQUIRES(...) \
  GDP_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define GDP_REQUIRES_SHARED(...) \
  GDP_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// Function acquires / releases the capability.
#define GDP_ACQUIRE(...) \
  GDP_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define GDP_ACQUIRE_SHARED(...) \
  GDP_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))
#define GDP_RELEASE(...) \
  GDP_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define GDP_RELEASE_SHARED(...) \
  GDP_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define GDP_TRY_ACQUIRE(...) \
  GDP_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// Function must be called with the capability NOT held (deadlock guard).
#define GDP_EXCLUDES(...) GDP_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define GDP_RETURN_CAPABILITY(x) GDP_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment justifying why the discipline cannot be expressed
/// statically (gdp_lint's zero-silent-exemptions policy).
#define GDP_NO_THREAD_SAFETY_ANALYSIS \
  GDP_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace gdp::common {

/// std::mutex with the capability attributes the analysis needs. Same
/// layout and cost; only the annotations differ.
class GDP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GDP_ACQUIRE() { mu_.lock(); }
  void unlock() GDP_RELEASE() { mu_.unlock(); }
  bool try_lock() GDP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;  // gdp-lint: allow(unannotated-mutex) — the capability wrapper itself
};

/// Scoped lock over Mutex, visible to the analysis (std::lock_guard is
/// not: libstdc++ ships it without scoped_lockable annotations).
class GDP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GDP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() GDP_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace gdp::common
