// Small string/formatting helpers used by traces, tables and error messages.
#pragma once

#include <string>
#include <vector>

namespace gdp {

/// Joins the string forms of `parts` with `sep` ("a, b, c").
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Fixed-width decimal rendering of `value` with `digits` fractional digits.
std::string format_double(double value, int digits);

/// Right-pads (positive width) or left-pads (negative width) to |width| chars.
std::string pad(const std::string& text, int width);

/// "P3" / "f2" — canonical short names used in traces and rendered states.
std::string phil_name(int id);
std::string fork_name(int id);

/// Percentage with one decimal, e.g. 0.2503 -> "25.0%".
std::string percent(double fraction);

}  // namespace gdp
