#include "gdp/mdp/witness.hpp"

#include <algorithm>
#include <cmath>

#include "gdp/common/check.hpp"

namespace gdp::mdp {

WitnessScheduler::WitnessScheduler(const Model& model, const StateIndex& index,
                                   const EndComponent& ec)
    : model_(model), index_(index) {
  GDP_CHECK_MSG(!ec.states.empty(), "witness EC is empty");
  in_ec_.assign(model.num_states(), false);
  for (StateId s : ec.states) in_ec_[s] = true;

  // Attractor policy toward the EC. Reach *probability* is often 1 from
  // everywhere (the trap is always re-buildable), which gives a greedy
  // policy no direction — so minimize the expected number of steps to the
  // EC instead (stochastic shortest path, Gauss-Seidel from above).
  constexpr double kFar = 1e15;
  std::vector<double> dist(model.num_states(), kFar);
  toward_ec_.assign(model.num_states(), -1);
  for (StateId s : ec.states) dist[s] = 0.0;

  for (int sweep = 0; sweep < 512; ++sweep) {
    double delta = 0.0;
    for (StateId s = 0; s < model.num_states(); ++s) {
      if (in_ec_[s] || model.frontier(s)) continue;
      double best = kFar;
      int best_phil = -1;
      for (int p = 0; p < model.num_phils(); ++p) {
        const auto [begin, end] = model.row(s, p);
        if (begin == end) continue;
        double acc = 1.0;
        for (const Outcome* o = begin; o != end; ++o) {
          acc += static_cast<double>(o->prob) * std::min(dist[o->next], kFar);
        }
        if (acc < best) {
          best = acc;
          best_phil = p;
        }
      }
      if (best < dist[s]) {
        delta = std::max(delta, dist[s] >= kFar ? 1.0 : dist[s] - best);
        dist[s] = best;
        toward_ec_[s] = static_cast<std::int16_t>(best_phil);
      }
    }
    if (delta < 1e-9) break;
  }
}

void WitnessScheduler::reset(const graph::Topology& t) {
  entered_ = false;
  inside_steps_ = 0;
  last_inside_pick_.assign(static_cast<std::size_t>(t.num_phils()), 0);
}

bool WitnessScheduler::usable_inside(StateId s, int phil) const {
  const auto [begin, end] = model_.row(s, phil);
  if (begin == end) return false;
  for (const Outcome* o = begin; o != end; ++o) {
    if (!in_ec_[o->next]) return false;
  }
  return true;
}

PhilId WitnessScheduler::pick(const graph::Topology& t, const sim::SimState& state,
                              const sim::RunView& view, rng::RandomSource& rng) {
  index_.codec().encode(state, key_);
  const auto it = index_.find(key_);
  if (it == index_.end()) {
    // Outside the explored model (possible on truncated explorations):
    // behave as a benign uniform scheduler.
    return rng.uniform_int(0, t.num_phils() - 1);
  }
  const StateId s = it->second;

  if (in_component(s)) {
    entered_ = true;
    ++inside_steps_;
    // Fair rotation over the philosophers whose steps stay inside (the EC's
    // fairness property guarantees every philosopher has such actions
    // somewhere in the component; closure keeps us inside forever).
    PhilId best = kNoPhil;
    std::uint64_t best_age = 0;
    for (PhilId p = 0; p < t.num_phils(); ++p) {
      if (!usable_inside(s, p)) continue;
      const auto idx = static_cast<std::size_t>(p);
      const std::uint64_t age = view.step_index + 1 - last_inside_pick_[idx];
      if (best == kNoPhil || age > best_age) {
        best = p;
        best_age = age;
      }
    }
    GDP_DCHECK(best != kNoPhil);  // every EC state has >= 1 usable action
    if (best == kNoPhil) return rng.uniform_int(0, t.num_phils() - 1);
    last_inside_pick_[static_cast<std::size_t>(best)] = view.step_index + 1;
    return best;
  }

  // Steer toward the component with the attractor policy; if no action has
  // positive reach probability (shouldn't happen for reachable witnesses),
  // fall back to uniform.
  const std::int16_t p = toward_ec_[s];
  if (p >= 0) return p;
  return rng.uniform_int(0, t.num_phils() - 1);
}

}  // namespace gdp::mdp
