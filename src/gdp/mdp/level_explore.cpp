#include "gdp/mdp/level_explore.hpp"

#include "gdp/common/check.hpp"
#include "gdp/common/pool.hpp"
#include "gdp/obs/obs.hpp"
#include "gdp/obs/timeline.hpp"
#include "gdp/sim/state.hpp"
#include "gdp/sim/step.hpp"

namespace gdp::mdp::detail {

namespace {

/// One state's expansion, recorded by the parallel phase of a level.
/// Successor keys are flat key_words()-stride word runs, not PackedKeys, so
/// a worker's output is a handful of contiguous vectors.
struct Expansion {
  std::vector<std::uint64_t> succ_words;   // key_words() words per successor
  std::vector<std::uint64_t> succ_eaters;  // eater mask per successor
  std::vector<float> probs;                // probability per successor
  std::vector<std::uint32_t> row_ends;     // per philosopher, end in probs
};

}  // namespace

LevelExplorer::LevelExplorer(const algos::Algorithm& algo, const graph::Topology& t)
    : algo_(algo), topology_(t) {
  GDP_CHECK_MSG(algo.config().think == algos::ThinkMode::kHungry,
                "MDP exploration requires ThinkMode::kHungry");
  // eater_mask/target_mask are one 64-bit word; beyond 64 philosophers they
  // would alias onto bit 63 and verdicts would be silently wrong.
  GDP_CHECK_MSG(t.num_phils() <= 64, "exploration supports at most 64 philosophers (the "
                                     "eater/target masks are 64-bit), got "
                                         << t.num_phils());
  codec_ = KeyCodec(algo, t);
  index_.reset(codec_);
  const sim::SimState initial = algo.initial_state(t);
  intern(codec_.encode(initial), sim::eater_mask(initial));
}

StateId LevelExplorer::intern(const PackedKey& key, std::uint64_t eater_bits) {
  const auto [it, inserted] = index_.try_emplace(key, static_cast<StateId>(keys_.size()));
  if (inserted) {
    keys_.push_back(key);
    eaters_.push_back(eater_bits);
  }
  return it->second;
}

void LevelExplorer::run(std::size_t max_states, int threads) {
  const int n = topology_.num_phils();
  const std::size_t kw = codec_.key_words();
  truncated_ = false;

  // Deterministic plane: levels, states, edges and the per-level size
  // distribution are pure functions of (algorithm, topology, max_states) —
  // the level structure never depends on the thread count. The run span is
  // wall clock (timing plane).
  static obs::Counter& levels_ctr = obs::Registry::global().counter("explore.levels");
  static obs::Counter& states_ctr = obs::Registry::global().counter("explore.states");
  static obs::Counter& edges_ctr = obs::Registry::global().counter("explore.edges");
  static obs::Counter& truncations_ctr = obs::Registry::global().counter("explore.truncations");
  static obs::Histogram& level_states = obs::Registry::global().histogram("explore.level_states");
  static obs::Gauge& intern_bytes = obs::Registry::global().gauge("explore.intern_bytes_peak");
  obs::TimedSpan run_span("explore.run");

  std::vector<Expansion> level;
  PackedKey scratch;
  while (num_expanded_ < keys_.size()) {
    if (keys_.size() >= max_states) {
      // Cap reached at a level boundary: stop before the next level. Every
      // state is either fully expanded or untouched frontier, so the capped
      // model is a pure function of (algorithm, topology, max_states).
      truncated_ = true;
      truncations_ctr.increment();
      break;
    }
    const std::size_t begin = num_expanded_;
    const std::size_t count = keys_.size() - begin;
    const std::size_t level_edges_before = outcomes_.size();
    obs::TimedSpan level_span("explore.level");

    // Parallel phase: expand each state of the level into its own buffer.
    // Workers read shared immutable state and write only their task's slot.
    level.assign(count, Expansion{});
    common::parallel_for(count, threads, [&](std::uint32_t i) {
      const sim::SimState state = codec_.decode(keys_[begin + i]);
      Expansion& e = level[i];
      e.row_ends.reserve(static_cast<std::size_t>(n));
      PackedKey key;
      for (PhilId p = 0; p < n; ++p) {
        const std::vector<sim::Branch> branches = algo_.step(topology_, state, p);
        for (const sim::Branch& b : branches) {
          codec_.encode(b.next, key);
          const std::uint64_t* w = key.data();
          e.succ_words.insert(e.succ_words.end(), w, w + kw);
          e.succ_eaters.push_back(sim::eater_mask(b.next));
          e.probs.push_back(static_cast<float>(b.prob));
        }
        e.row_ends.push_back(static_cast<std::uint32_t>(e.probs.size()));
      }
    });

    // Sequential epilogue: intern successors and materialize rows in
    // (state, philosopher, branch) order — the id assignment is the FIFO
    // BFS order, unchanged from the historical sequential explorer.
    for (std::size_t i = 0; i < count; ++i) {
      const Expansion& e = level[i];
      std::size_t j = 0;
      for (std::size_t p = 0; p < e.row_ends.size(); ++p) {
        for (; j < e.row_ends[p]; ++j) {
          scratch.assign(e.succ_words.data() + j * kw, kw);
          outcomes_.push_back(Outcome{e.probs[j], intern(scratch, e.succ_eaters[j])});
        }
        row_ends_.push_back(outcomes_.size());
      }
    }
    levels_ctr.increment();
    // Per-level deltas (not one end-of-run add) so a GDP_OBS_PROGRESS
    // heartbeat sees totals grow level by level. The deltas sum to the same
    // run totals, so the deterministic plane is unchanged.
    states_ctr.add(count);
    edges_ctr.add(outcomes_.size() - level_edges_before);
    level_states.record(count);
    num_expanded_ = begin + count;
    obs::timeline::counter_sample("explore.states", static_cast<double>(num_expanded_));
    obs::timeline::counter_sample("explore.edges", static_cast<double>(outcomes_.size()));
  }

  // Interner footprint: id-ordered keys plus the hash index over them.
  intern_bytes.set_max(keys_.size() * kw * sizeof(std::uint64_t) * 2);
}

Model LevelExplorer::take_model(StateIndex* index_out, std::vector<PackedKey>* keys_out) {
  const std::size_t n = static_cast<std::size_t>(topology_.num_phils());
  const std::size_t total = keys_.size();

  Model model;
  model.num_phils_ = static_cast<int>(n);
  model.truncated_ = truncated_;
  model.eaters_ = std::move(eaters_);
  model.outcomes_ = std::move(outcomes_);
  model.frontier_.assign(total, false);
  for (std::size_t s = num_expanded_; s < total; ++s) model.frontier_[s] = true;

  std::vector<std::uint64_t> offsets;
  offsets.reserve(total * n + 1);
  offsets.push_back(0);
  for (std::size_t s = 0; s < total; ++s) {
    for (std::size_t p = 0; p < n; ++p) {
      offsets.push_back(s < num_expanded_ ? row_ends_[s * n + p] : offsets.back());
    }
  }
  model.offsets_ = std::move(offsets);

  if (index_out != nullptr) *index_out = std::move(index_);
  if (keys_out != nullptr) *keys_out = std::move(keys_);
  return model;
}

}  // namespace gdp::mdp::detail
