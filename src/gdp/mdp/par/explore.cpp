// Parallel state-space exploration.
//
// Since the level-synchronous rework this is a thin wrapper over the shared
// engine in gdp/mdp/level_explore.hpp: the per-level expansion fans out on
// the pool, the interning epilogue is a sequential in-order pass, and the
// cap applies at level boundaries — so sequential and parallel exploration
// are the SAME computation and the model (complete or capped) is
// bit-identical at every thread count by construction. The historical
// sharded-intern + provisional-renumbering engine, and with it the
// sequential truncation replay that made capped runs a single-threaded dead
// end, are gone.
#include "gdp/mdp/level_explore.hpp"
#include "gdp/mdp/par/par.hpp"

namespace gdp::mdp::par {

Model explore(const algos::Algorithm& algo, const graph::Topology& t, CheckOptions options) {
  detail::LevelExplorer explorer(algo, t);
  explorer.run(options.max_states, options.threads);
  return explorer.take_model();
}

Model explore_indexed(const algos::Algorithm& algo, const graph::Topology& t,
                      StateIndex& index_out, CheckOptions options) {
  detail::LevelExplorer explorer(algo, t);
  explorer.run(options.max_states, options.threads);
  return explorer.take_model(&index_out);
}

}  // namespace gdp::mdp::par
