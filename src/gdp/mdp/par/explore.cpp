// Parallel state-space exploration with a deterministic canonical form.
//
// Phase 1 (parallel): workers expand states off per-worker frontiers
// (steal-half balancing, as in gdp::exp). Discovered states intern into
// N hash-sharded tables keyed by the packed fixed-width exploration key
// (gdp/mdp/key.hpp) and get *provisional* ids from a global counter — an
// ordering that depends on scheduling and is different on every run.
//
// Phase 2 (the epilogue): a canonical renumbering replays the breadth-first
// discovery over the recorded expansions — no algorithm step() calls, just
// pointer chasing — assigning ids exactly the way the sequential explorer's
// FIFO interning does. The id assignment itself is a sequential prefix pass
// (each id depends on all earlier ones), but everything around it runs on
// the shared pool: the expansion-log gather, the CSR row materialization
// with its provisional->canonical id rewrites, and (in par/end_components)
// the reachable-states sweep. The assembled Model is therefore bit-identical
// to mdp::explore's for every thread count.
//
// Truncation: the sequential explorer's cap semantics depend on its exact
// BFS order, so the moment the parallel phase discovers that the cap will
// be hit (>= max_states distinct states exist) it aborts and the sequential
// explorer runs instead. Complete models — the only ones that certify the
// paper's theorems — never take that path.
#include <deque>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "gdp/common/check.hpp"
#include "gdp/common/pool.hpp"
#include "gdp/common/thread_annotations.hpp"
#include "gdp/mdp/key.hpp"
#include "gdp/mdp/par/par.hpp"
#include "gdp/sim/state.hpp"
#include "gdp/sim/step.hpp"

namespace gdp::mdp::par {

namespace {

constexpr StateId kUnset = ~StateId{0};

/// An outcome recorded against provisional state ids.
struct ProvOutcome {
  float prob = 0.0f;
  std::uint32_t next = 0;
};

/// One expanded state: its eater mask plus its rows, recorded by whichever
/// worker expanded it (each state is expanded exactly once).
struct Expansion {
  std::uint32_t prov = 0;
  std::uint64_t eaters = 0;
  std::vector<ProvOutcome> outcomes;     // all rows, concatenated
  std::vector<std::uint32_t> row_ends;   // per philosopher, end index in outcomes
};

/// A frontier entry carries the packed exploration key — a few words —
/// instead of a full SimState; the expanding worker (owner or thief)
/// re-derives the state with KeyCodec::decode. Decoding costs about as
/// much as the SimState copy it replaces, and the frontier shrinks to the
/// same fixed-width footprint the intern tables got in PR 4.
struct Item {
  std::uint32_t prov = 0;
  PackedKey key;
};

/// Per-worker frontier: a mutex-guarded deque. Owners pop oldest-first
/// (breadth-first-ish order keeps the discovery frontier compact); thieves
/// take the back half in one grab.
struct Frontier {
  common::Mutex mu;
  std::deque<Item> items GDP_GUARDED_BY(mu);
  /// Lock-free size estimate for victim selection only (never used for
  /// correctness decisions), refreshed on every mutation under `mu`.
  std::atomic<std::size_t> approx{0};

  void push(Item&& item) GDP_EXCLUDES(mu) {
    common::MutexLock lock(mu);
    items.push_back(std::move(item));
    approx.store(items.size(), std::memory_order_relaxed);
  }

  std::optional<Item> pop() GDP_EXCLUDES(mu) {
    common::MutexLock lock(mu);
    if (items.empty()) return std::nullopt;
    Item item = std::move(items.front());
    items.pop_front();
    approx.store(items.size(), std::memory_order_relaxed);
    return item;
  }

  /// Moves the back half of this frontier into `thief`. Never holds both
  /// locks at once (steals buffer through a local vector), so concurrent
  /// mutual steals cannot deadlock.
  bool steal_into(Frontier& thief) GDP_EXCLUDES(mu, thief.mu) {
    std::vector<Item> grabbed;
    {
      common::MutexLock lock(mu);
      if (items.empty()) return false;
      const std::size_t k = (items.size() + 1) / 2;
      grabbed.reserve(k);
      for (std::size_t i = 0; i < k; ++i) {
        grabbed.push_back(std::move(items.back()));
        items.pop_back();
      }
      approx.store(items.size(), std::memory_order_relaxed);
    }
    {
      common::MutexLock lock(thief.mu);
      for (auto it = grabbed.rbegin(); it != grabbed.rend(); ++it) {
        thief.items.push_back(std::move(*it));
      }
      thief.approx.store(thief.items.size(), std::memory_order_relaxed);
    }
    return true;
  }
};

/// Hash-sharded concurrent intern table: packed key -> provisional id.
/// Shard choice reuses PackedKeyHash, so contention spreads the same way
/// the buckets do.
class InternShards {
 public:
  static constexpr std::size_t kShards = 64;

  /// Interns `key`; newly seen keys get ids from the global counter.
  /// Returns (provisional id, inserted).
  std::pair<std::uint32_t, bool> intern(const PackedKey& key) {
    const std::size_t h = PackedKeyHash{}(key);
    Shard& shard = shards_[h & (kShards - 1)];
    common::MutexLock lock(shard.mu);
    const auto [it, inserted] = shard.map.try_emplace(key, 0);
    if (inserted) it->second = next_id_.fetch_add(1, std::memory_order_relaxed);
    return {it->second, inserted};
  }

  std::uint32_t count() const { return next_id_.load(std::memory_order_relaxed); }

  /// Merges all shards into `out` (whose codec the caller set), translating
  /// provisional ids through `canon`. Called after the pool joined; the
  /// per-shard locks are uncontended by then and taken only to satisfy the
  /// static discipline (64 lock round-trips total).
  void merge_into(StateIndex& out, const std::vector<StateId>& canon) const {
    out.reserve(count());
    for (const Shard& shard : shards_) {
      common::MutexLock lock(shard.mu);
      // Insertion into `out` rebuilds a hash map: its contents are a set,
      // so the shard's iteration order cannot leak into any result.
      // gdp-lint: allow(unordered-iteration) — rebuilds an unordered index; order-free
      for (const auto& [key, prov] : shard.map) out.try_emplace(key, canon[prov]);
    }
  }

  /// Provisional id of `key`, or -1 if the parallel phase never saw it.
  std::int64_t find(const PackedKey& key) const {
    const Shard& shard = shards_[PackedKeyHash{}(key) & (kShards - 1)];
    common::MutexLock lock(shard.mu);
    const auto it = shard.map.find(key);
    return it == shard.map.end() ? -1 : static_cast<std::int64_t>(it->second);
  }

  /// Visits every (key, provisional id) pair, in no particular order —
  /// callers park results at the provisional id, never fold in visit order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Shard& shard : shards_) {
      common::MutexLock lock(shard.mu);
      // gdp-lint: allow(unordered-iteration) — consumers index by prov id; order-free
      for (const auto& [key, prov] : shard.map) fn(key, prov);
    }
  }

 private:
  struct Shard {
    mutable common::Mutex mu;
    std::unordered_map<PackedKey, std::uint32_t, PackedKeyHash> map GDP_GUARDED_BY(mu);
  };
  Shard shards_[kShards];
  std::atomic<std::uint32_t> next_id_{0};
};

}  // namespace

/// Friend of Model: builds the canonical CSR arrays from the parallel
/// phase's provisional expansions plus the renumbering (complete models),
/// and replays the sequential explorer's cap semantics over the recorded
/// expansions (truncated models).
class ModelAssembler {
 public:
  /// Cap-hitting fallback: reproduces mdp::explore's truncated model bit
  /// for bit by running the sequential breadth-first loop, but serving
  /// expansions from the parallel phase's logs wherever they exist — the
  /// algorithm only steps for states the parallel phase never expanded,
  /// re-derived from their packed keys with KeyCodec::decode (the replay
  /// keeps one PackedKey per state instead of a SimState copy).
  static Model replay_truncated(const algos::Algorithm& algo, const graph::Topology& t,
                                const KeyCodec& codec, std::size_t max_states,
                                StateIndex* index_out, const InternShards& interned,
                                const std::vector<std::vector<Expansion>>& logs) {
    const int n = t.num_phils();
    const std::size_t total_prov = interned.count();

    // Provisional-world lookups. Invariant of the parallel phase: every
    // provisional state has an interned key; expanded ones also have a
    // recorded expansion (the rest decode their key on demand).
    std::vector<const Expansion*> exp_of(total_prov, nullptr);
    for (const auto& log : logs) {
      for (const Expansion& e : log) exp_of[e.prov] = &e;
    }
    std::vector<const PackedKey*> key_of(total_prov, nullptr);
    interned.for_each([&](const PackedKey& key, StateId prov) { key_of[prov] = &key; });

    Model model;
    model.num_phils_ = n;
    StateIndex index;
    index.reset(codec);
    std::vector<std::int64_t> prov_of_id;  // replay id -> provisional id (or -1)
    std::vector<PackedKey> keys;           // replay id -> key (decoded on demand)
    std::deque<StateId> frontier;

    // The sequential intern, cross-linked with the provisional world so
    // cached expansions are found again. Exactly one of `s` / `prov` is
    // known on entry.
    PackedKey scratch;
    auto intern = [&](const sim::SimState* s, std::int64_t prov) -> StateId {
      const PackedKey* key;
      if (s != nullptr) {
        codec.encode(*s, scratch);
        key = &scratch;
      } else {
        key = key_of[static_cast<std::size_t>(prov)];
      }
      const auto [it, inserted] = index.try_emplace(*key, static_cast<StateId>(keys.size()));
      if (!inserted) return it->second;
      if (prov < 0) prov = interned.find(*key);
      prov_of_id.push_back(prov);
      keys.push_back(*key);
      std::uint64_t eaters;
      if (s != nullptr) {
        eaters = sim::eater_mask(*s);
      } else {
        const Expansion* cached = exp_of[static_cast<std::size_t>(prov)];
        eaters = cached != nullptr ? cached->eaters : sim::eater_mask(codec.decode(*key));
      }
      model.eaters_.push_back(eaters);
      model.frontier_.push_back(true);
      frontier.push_back(it->second);
      return it->second;
    };

    {
      const sim::SimState initial = algo.initial_state(t);
      intern(&initial, -1);
    }

    while (!frontier.empty()) {
      const StateId id = frontier.front();
      if (keys.size() >= max_states) {
        model.truncated_ = true;
        break;
      }
      frontier.pop_front();
      model.frontier_[id] = false;

      const std::int64_t prov = prov_of_id[id];
      const Expansion* cached = prov >= 0 ? exp_of[static_cast<std::size_t>(prov)] : nullptr;
      if (cached != nullptr) {
        std::uint32_t begin = 0;
        for (const std::uint32_t end : cached->row_ends) {
          for (std::uint32_t j = begin; j < end; ++j) {
            const ProvOutcome& o = cached->outcomes[j];
            const StateId next = intern(nullptr, o.next);
            model.outcomes_.push_back(Outcome{o.prob, next});
          }
          model.offsets_.push_back(model.outcomes_.size());
          begin = end;
        }
      } else {
        const sim::SimState state = codec.decode(keys[id]);
        for (PhilId p = 0; p < n; ++p) {
          const std::vector<sim::Branch> branches = algo.step(t, state, p);
          for (const sim::Branch& b : branches) {
            const StateId next = intern(&b.next, -1);
            model.outcomes_.push_back(Outcome{static_cast<float>(b.prob), next});
          }
          model.offsets_.push_back(model.outcomes_.size());
        }
      }
    }

    // offsets_ holds row ends for expanded states only; rebuild the
    // canonical CSR with a leading zero and empty rows for frontier states
    // (mirrors the sequential explorer's epilogue exactly).
    std::vector<std::uint64_t> offsets;
    offsets.reserve(model.eaters_.size() * static_cast<std::size_t>(n) + 1);
    offsets.push_back(0);
    std::size_t row = 0;
    for (StateId s = 0; s < model.eaters_.size(); ++s) {
      for (int p = 0; p < n; ++p) {
        if (!model.frontier_[s]) {
          offsets.push_back(model.offsets_[row++]);
        } else {
          offsets.push_back(offsets.back());  // empty row
        }
      }
    }
    model.offsets_ = std::move(offsets);

    if (index_out != nullptr) *index_out = std::move(index);
    return model;
  }

  /// Complete-model assembly: rows materialize in parallel. Per-state CSR
  /// bases come from a sequential prefix sum (cheap — one add per state);
  /// the expensive parts — copying every outcome while rewriting its
  /// provisional id to the canonical one, and writing the per-row offsets —
  /// touch disjoint index ranges per state and run on the pool.
  static Model assemble(int num_phils, const std::vector<const Expansion*>& exp_of,
                        const std::vector<StateId>& canon,
                        const std::vector<std::uint32_t>& order, int threads) {
    const std::size_t total = order.size();
    Model model;
    model.num_phils_ = num_phils;
    model.eaters_.resize(total);
    model.frontier_.assign(total, false);  // complete model: every state expanded
    model.truncated_ = false;

    std::vector<std::uint64_t> base(total + 1, 0);
    for (std::size_t i = 0; i < total; ++i) {
      base[i + 1] = base[i] + exp_of[order[i]]->outcomes.size();
    }
    model.outcomes_.resize(base[total]);
    model.offsets_.resize(total * static_cast<std::size_t>(num_phils) + 1);
    model.offsets_[0] = 0;

    common::parallel_for(total, threads, [&](std::uint32_t i) {
      const Expansion* e = exp_of[order[i]];
      model.eaters_[i] = e->eaters;
      const std::uint64_t b = base[i];
      for (std::size_t j = 0; j < e->outcomes.size(); ++j) {
        const ProvOutcome& o = e->outcomes[j];
        model.outcomes_[b + j] = Outcome{o.prob, canon[o.next]};
      }
      std::uint64_t* row = model.offsets_.data() + i * static_cast<std::size_t>(num_phils) + 1;
      for (std::size_t p = 0; p < e->row_ends.size(); ++p) row[p] = b + e->row_ends[p];
    });
    return model;
  }
};

namespace {

Model detail_par_explore(const algos::Algorithm& algo, const graph::Topology& t,
                         const CheckOptions& options, StateIndex* index_out) {
  GDP_CHECK_MSG(algo.config().think == algos::ThinkMode::kHungry,
                "MDP exploration requires ThinkMode::kHungry");

  auto sequential = [&]() {
    if (index_out != nullptr) return explore_indexed(algo, t, options.max_states, *index_out);
    return mdp::explore(algo, t, options.max_states);
  };

  // A frontier per worker is the unit of parallelism here; the task count
  // is unknown up front, so clamp only against hardware.
  const unsigned n = common::effective_threads(options.threads, ~std::size_t{0});
  if (n <= 1) return sequential();

  const int num_phils = t.num_phils();
  const KeyCodec codec(algo, t);
  InternShards interned;
  std::vector<Frontier> frontiers(n);
  std::vector<std::vector<Expansion>> logs(n);
  std::atomic<std::size_t> pending{0};      // states interned but not yet expanded
  std::atomic<bool> hit_cap{false};
  std::atomic<bool> abort{false};

  // Seed: the initial state is provisional id 0 on worker 0's frontier.
  {
    const sim::SimState initial = algo.initial_state(t);
    PackedKey key;
    codec.encode(initial, key);
    const auto [prov, inserted] = interned.intern(key);
    GDP_DCHECK(inserted && prov == 0);
    if (interned.count() >= options.max_states) return sequential();
    pending.store(1, std::memory_order_relaxed);
    frontiers[0].push(Item{prov, std::move(key)});
  }

  common::run_workers(n, [&](unsigned me) {
    try {
      PackedKey key;
      common::Backoff backoff;
      while (!abort.load(std::memory_order_relaxed)) {
        std::optional<Item> item = frontiers[me].pop();
        if (!item) {
          // Steal the back half of the fullest frontier; if nothing is
          // stealable and nothing is in flight, exploration is complete.
          unsigned victim = n;
          std::size_t best = 0;
          for (unsigned v = 0; v < n; ++v) {
            if (v == me) continue;
            const std::size_t r = frontiers[v].approx.load(std::memory_order_relaxed);
            if (r > best) {
              best = r;
              victim = v;
            }
          }
          if (victim < n && frontiers[victim].steal_into(frontiers[me])) continue;
          if (pending.load(std::memory_order_acquire) == 0) break;
          backoff.pause();
          continue;
        }
        backoff.reset();

        const sim::SimState state = codec.decode(item->key);
        Expansion e;
        e.prov = item->prov;
        e.eaters = sim::eater_mask(state);
        e.row_ends.reserve(static_cast<std::size_t>(num_phils));
        for (PhilId p = 0; p < num_phils; ++p) {
          const std::vector<sim::Branch> branches = algo.step(t, state, p);
          for (const sim::Branch& b : branches) {
            codec.encode(b.next, key);
            const auto [prov, inserted] = interned.intern(key);
            if (inserted) {
              // The sequential explorer truncates exactly when >= max_states
              // distinct states exist; its cap semantics depend on its own
              // BFS order, so hand the whole job back to it.
              if (interned.count() >= options.max_states) {
                hit_cap.store(true, std::memory_order_relaxed);
                abort.store(true, std::memory_order_relaxed);
              }
              pending.fetch_add(1, std::memory_order_relaxed);
              frontiers[me].push(Item{prov, key});
            }
            e.outcomes.push_back(ProvOutcome{static_cast<float>(b.prob), prov});
          }
          e.row_ends.push_back(static_cast<std::uint32_t>(e.outcomes.size()));
        }
        logs[me].push_back(std::move(e));
        pending.fetch_sub(1, std::memory_order_release);
      }
    } catch (...) {
      abort.store(true, std::memory_order_relaxed);
      throw;  // run_workers rethrows the first worker exception
    }
  });

  if (hit_cap.load(std::memory_order_relaxed)) {
    // Truncation order is the sequential explorer's; replay it over the
    // recorded expansions instead of re-exploring from scratch.
    return ModelAssembler::replay_truncated(algo, t, codec, options.max_states, index_out,
                                            interned, logs);
  }

  // --- Epilogue: canonical renumbering + parallel assembly. ---

  // Gather the expansion logs: one task per worker log; provisional ids are
  // unique across logs, so the writes into exp_of are disjoint.
  const std::size_t total = interned.count();
  std::vector<const Expansion*> exp_of(total, nullptr);
  common::parallel_for(logs.size(), options.threads, [&](std::uint32_t w) {
    for (const Expansion& e : logs[w]) exp_of[e.prov] = &e;
  });

  // Replay the sequential explorer's FIFO discovery over the recorded
  // expansions: canonical id = breadth-first first-encounter order, rows
  // scanned philosopher-major exactly as intern() calls happen in
  // mdp::explore. order[i] is the provisional id of canonical state i.
  // Inherently a sequential prefix pass (each id depends on all earlier
  // discoveries), but it is one array read per recorded outcome — the
  // expensive row materialization around it runs on the pool.
  std::vector<StateId> canon(total, kUnset);
  std::vector<std::uint32_t> order;
  order.reserve(total);
  canon[0] = 0;
  order.push_back(0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Expansion* e = exp_of[order[i]];
    GDP_DCHECK(e != nullptr);
    for (const ProvOutcome& o : e->outcomes) {
      if (canon[o.next] == kUnset) {
        canon[o.next] = static_cast<StateId>(order.size());
        order.push_back(o.next);
      }
    }
  }
  GDP_CHECK_MSG(order.size() == total,
                "parallel explore interned " << total << " states but only " << order.size()
                                             << " are reachable from the initial state");

  if (index_out != nullptr) {
    index_out->reset(codec);
    interned.merge_into(*index_out, canon);
  }
  return ModelAssembler::assemble(num_phils, exp_of, canon, order, options.threads);
}

}  // namespace

Model explore(const algos::Algorithm& algo, const graph::Topology& t, CheckOptions options) {
  return detail_par_explore(algo, t, options, nullptr);
}

Model explore_indexed(const algos::Algorithm& algo, const graph::Topology& t,
                      StateIndex& index_out, CheckOptions options) {
  return detail_par_explore(algo, t, options, &index_out);
}

}  // namespace gdp::mdp::par
