// gdp::mdp::par — the parallel MDP model-checking engine.
//
// Parallelizes the whole pipeline behind the paper's mechanical theorem
// checks (explore -> end-component decomposition -> verdict) on the shared
// work-stealing pool (gdp/common/pool.hpp), the same substrate that
// parallelized the sampling side in gdp::exp:
//
//   * explore / explore_indexed — level-synchronous breadth-first
//     state-space construction on the shared engine
//     (gdp/mdp/level_explore.hpp): each BFS level expands in parallel into
//     per-state buffers, successors intern in a sequential in-order
//     epilogue, and the state cap applies at level boundaries. The
//     resulting Model is BIT-IDENTICAL to the sequential mdp::explore for
//     every thread count — same state numbering, same CSR offsets, same
//     outcome bytes — including capped runs, which stay fully parallel
//     (no sequential fallback) and leave their unexpanded frontier as the
//     id tail, resumable via gdp::mdp::store.
//
//   * maximal_end_components — fork/join SCC decomposition (forward-
//     backward reachability splitting, sequential Tarjan below a region
//     threshold) driving the same MEC refinement fixpoint as the
//     sequential end_components.cpp; small candidate sets fall back to the
//     sequential decomposition outright. Component sets, their order and
//     their philosopher masks are identical to the sequential results.
//
//   * check_fair_progress / check_lockout_freedom — the fair_progress
//     verdicts computed over the parallel pipeline; identical
//     FairProgressResult for every thread count.
//
// Determinism is the contract that makes the parallel engine usable for
// the paper's correctness claims: a verdict produced on 16 workers is the
// same object a single-threaded run certifies.
#pragma once

#include <cstdint>
#include <vector>

#include "gdp/mdp/end_components.hpp"
#include "gdp/mdp/fair_progress.hpp"
#include "gdp/mdp/model.hpp"
#include "gdp/mdp/witness.hpp"

namespace gdp::mdp::par {

struct CheckOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency(). 1 runs the
  /// sequential engines directly (bit-identical by construction).
  int threads = 0;

  /// Exploration state cap, as in mdp::explore: applied at BFS level
  /// boundaries, so capped models are bit-identical to the sequential
  /// explorer's at every thread count (and resumable, see gdp::mdp::store).
  std::size_t max_states = 2'000'000;

  /// Candidate sets smaller than this run the sequential MEC decomposition
  /// (thread spawn + CSR construction cost more than they save).
  std::size_t seq_mec_threshold = 16'384;

  /// SCC regions smaller than this run sequential Tarjan instead of
  /// another forward-backward split.
  std::size_t seq_scc_region = 8'192;
};

/// Parallel breadth-first exploration; bit-identical to
/// mdp::explore(algo, t, options.max_states) at every thread count.
Model explore(const algos::Algorithm& algo, const graph::Topology& t, CheckOptions options = {});

/// As explore(), also returning the encoded-state -> id map (canonical ids,
/// identical to the sequential mdp::explore_indexed map).
Model explore_indexed(const algos::Algorithm& algo, const graph::Topology& t,
                      StateIndex& index_out, CheckOptions options = {});

/// Parallel MEC decomposition of the non-`avoid_set`-eating fragment;
/// identical components (sets, order, philosopher masks) to
/// mdp::maximal_end_components at every thread count.
std::vector<EndComponent> maximal_end_components(const Model& model,
                                                 std::uint64_t avoid_set = ~std::uint64_t{0},
                                                 CheckOptions options = {});

/// Parallel reachable-from-initial sweep (level-synchronous BFS on the
/// pool); the returned set is identical to mdp::reachable_states — the set
/// does not depend on traversal order. Models below seq_mec_threshold run
/// the sequential sweep.
std::vector<bool> reachable_states(const Model& model, CheckOptions options = {});

/// Fair-progress verdict over the parallel MEC decomposition; identical
/// FairProgressResult to mdp::check_fair_progress at every thread count.
FairProgressResult check_fair_progress(const Model& model,
                                       std::uint64_t set_mask = ~std::uint64_t{0},
                                       CheckOptions options = {});

/// Lockout-freedom of `victim` over the parallel pipeline.
FairProgressResult check_lockout_freedom(const Model& model, PhilId victim,
                                         CheckOptions options = {});

/// One-call convenience: parallel explore + parallel check (the parallel
/// analogue of mdp::check_fair_progress(algo, t, max_states, set_mask)).
FairProgressResult check_fair_progress(const algos::Algorithm& algo, const graph::Topology& t,
                                       CheckOptions options = {},
                                       std::uint64_t set_mask = ~std::uint64_t{0});

}  // namespace gdp::mdp::par
