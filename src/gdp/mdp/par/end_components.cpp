// Parallel maximal-end-component decomposition — Model instantiation.
//
// The fork/join FW-BW machinery lives in par/end_components_impl.hpp as a
// template over the Model read API; this translation unit instantiates it
// for the contiguous Model. store.cpp instantiates the same definition for
// store::ChunkedModel (the chunk-native verdict path), which is what makes
// the two paths produce identical components for every thread count.
#include "gdp/mdp/par/end_components_impl.hpp"
#include "gdp/mdp/par/par.hpp"

namespace gdp::mdp::par {

std::vector<EndComponent> maximal_end_components(const Model& model, std::uint64_t avoid_set,
                                                 CheckOptions options) {
  return detail::maximal_end_components_t(model, avoid_set, options);
}

std::vector<bool> reachable_states(const Model& model, CheckOptions options) {
  return detail::reachable_states_t(model, options);
}

FairProgressResult check_fair_progress(const Model& model, std::uint64_t set_mask,
                                       CheckOptions options) {
  return detail::check_fair_progress_t(model, set_mask, options);
}

FairProgressResult check_lockout_freedom(const Model& model, PhilId victim,
                                         CheckOptions options) {
  return check_fair_progress(model, std::uint64_t{1} << victim, options);
}

FairProgressResult check_fair_progress(const algos::Algorithm& algo, const graph::Topology& t,
                                       CheckOptions options, std::uint64_t set_mask) {
  const Model model = explore(algo, t, options);
  return check_fair_progress(model, set_mask, options);
}

}  // namespace gdp::mdp::par
