// Template definitions of the parallel MEC decomposition and the parallel
// reachable-states sweep, generalized over any type exposing the Model read
// API. Instantiated for `Model` (par/end_components.cpp) and for
// `store::ChunkedModel` (store.cpp — the chunk-native verdict path, which
// must produce components and reachable sets byte-identical to the
// contiguous path without materializing one).
//
// Same refinement fixpoint as the sequential end_components_impl.hpp — split
// the candidate fragment into SCCs of the usable-action graph, drop states
// with no action staying inside their own SCC, repeat — but each round's SCC
// decomposition runs fork/join: forward-backward (FW-BW) reachability from
// a pivot splits a region into the pivot's SCC plus three independent
// sub-regions processed in parallel, and regions below a size threshold run
// the classic sequential Tarjan instead of splitting further.
//
// Determinism: SCC labels are canonical (the smallest state id of the
// component), the survival filter is two-phase (reads a snapshot, then
// applies), and the final collection scans states in ascending id exactly
// like the sequential implementation — so the returned components (sets,
// order, philosopher masks) are identical to mdp::maximal_end_components
// for every thread count. Candidate fragments below seq_mec_threshold are
// handed to the sequential decomposition outright.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

#include "gdp/common/check.hpp"
#include "gdp/common/pool.hpp"
#include "gdp/common/thread_annotations.hpp"
#include "gdp/mdp/end_components_impl.hpp"
#include "gdp/mdp/fair_progress_impl.hpp"
#include "gdp/mdp/par/par.hpp"
#include "gdp/obs/obs.hpp"
#include "gdp/obs/timeline.hpp"

namespace gdp::mdp::par::detail {

inline constexpr std::int64_t kRemoved = -1;

/// Timing-plane counters for the FW-BW machinery. Given the parallel path,
/// how each region is processed (trim, pivot = smallest-index member, split
/// or Tarjan) is a pure function of the region's states and the
/// usable-action graph — but the seq-vs-par dispatch itself keys on the
/// requested worker count, and the sequential fallback (workers <= 1 or a
/// small candidate set) performs none of this work and records zeros. The
/// totals therefore describe how the decomposition was *executed*, not what
/// was decomposed, and are not thread-count invariant: timing plane, like
/// the pool counters.
struct MecCounters {
  obs::Counter& splits =
      obs::Registry::global().counter("mec.fwbw_splits", obs::Plane::kTiming);
  obs::Counter& trimmed =
      obs::Registry::global().counter("mec.trimmed_states", obs::Plane::kTiming);
  obs::Counter& tarjan_regions =
      obs::Registry::global().counter("mec.tarjan_regions", obs::Plane::kTiming);
  obs::Counter& tarjan_escapes =
      obs::Registry::global().counter("mec.tarjan_escapes", obs::Plane::kTiming);
  obs::Counter& rounds =
      obs::Registry::global().counter("mec.refinement_rounds", obs::Plane::kTiming);
  static MecCounters& get() {
    static MecCounters instance;
    return instance;
  }
};

/// Compressed adjacency over the states of the model (off has n+1 entries).
struct Csr {
  std::vector<std::size_t> off;
  std::vector<StateId> edges;
};

/// All outcomes of actions usable at s under `component` (an action is
/// usable when every outcome stays in s's partition block), appended to out.
template <class ModelT, typename Fn>
void for_each_usable_edge(const ModelT& model, const std::vector<std::int64_t>& component,
                          StateId s, Fn&& fn) {
  for (int p = 0; p < model.num_phils(); ++p) {
    const auto [begin, end] = model.row(s, p);
    if (begin == end) continue;
    bool usable = true;
    for (const Outcome* o = begin; o != end && usable; ++o) {
      usable = component[o->next] == component[s];
    }
    if (!usable) continue;
    for (const Outcome* o = begin; o != end; ++o) fn(o->next);
  }
}

/// Forward CSR of the usable-action graph restricted to candidate states,
/// plus its reverse. Built in parallel each refinement round.
template <class ModelT>
void build_graph(const ModelT& model, const std::vector<std::int64_t>& component, int threads,
                 Csr& fwd, Csr& rev) {
  const std::size_t n = model.num_states();

  std::vector<std::size_t> count(n, 0);
  common::parallel_for(n, threads, [&](std::uint32_t s) {
    if (component[s] == kRemoved) return;
    std::size_t c = 0;
    for_each_usable_edge(model, component, s, [&](StateId) { ++c; });
    count[s] = c;
  });

  fwd.off.assign(n + 1, 0);
  for (std::size_t s = 0; s < n; ++s) fwd.off[s + 1] = fwd.off[s] + count[s];
  fwd.edges.resize(fwd.off[n]);
  common::parallel_for(n, threads, [&](std::uint32_t s) {
    if (component[s] == kRemoved) return;
    std::size_t idx = fwd.off[s];
    for_each_usable_edge(model, component, s, [&](StateId t) { fwd.edges[idx++] = t; });
  });

  // Reverse: counts and slot claims via atomic_ref (order inside a reverse
  // adjacency list is scheduling-dependent, which only perturbs traversal
  // order — reachability results and canonical labels are unaffected).
  std::vector<std::size_t> rcount(n, 0);
  common::parallel_for(n, threads, [&](std::uint32_t s) {
    for (std::size_t i = fwd.off[s]; i < fwd.off[s + 1]; ++i) {
      std::atomic_ref<std::size_t>(rcount[fwd.edges[i]]).fetch_add(1, std::memory_order_relaxed);
    }
  });
  rev.off.assign(n + 1, 0);
  for (std::size_t s = 0; s < n; ++s) rev.off[s + 1] = rev.off[s] + rcount[s];
  rev.edges.resize(rev.off[n]);
  std::vector<std::size_t> slot(rev.off.begin(), rev.off.end() - 1);
  common::parallel_for(n, threads, [&](std::uint32_t s) {
    for (std::size_t i = fwd.off[s]; i < fwd.off[s + 1]; ++i) {
      const StateId t = fwd.edges[i];
      const std::size_t at =
          std::atomic_ref<std::size_t>(slot[t]).fetch_add(1, std::memory_order_relaxed);
      rev.edges[at] = static_cast<StateId>(s);
    }
  });
}

/// A unit of fork/join SCC work: a set of states that provably contains
/// every SCC of each of its members.
struct Region {
  std::uint32_t token = 0;
  std::vector<StateId> states;
  /// Consecutive ineffective FW-BW splits above this region (a split is
  /// ineffective when a child keeps >= 3/4 of its parent). Model-checking
  /// graphs are often a long DAG of small SCCs — the known worst case for
  /// FW-BW, where every split peels one small component — so after two
  /// ineffective splits the region goes straight to Tarjan.
  int ineffective_splits = 0;
};

/// Queue items hold *batches* of regions: refined rounds produce hundreds
/// of thousands of tiny partition blocks, and one mutex round-trip per
/// block would dominate the decomposition.
using RegionBatch = std::vector<Region>;

class RegionQueue {
 public:
  void push(RegionBatch&& batch) GDP_EXCLUDES(mu_) {
    outstanding_.fetch_add(1, std::memory_order_acq_rel);
    common::MutexLock lock(mu_);
    batches_.push_back(std::move(batch));
  }

  std::optional<RegionBatch> pop() GDP_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    if (batches_.empty()) return std::nullopt;
    RegionBatch batch = std::move(batches_.back());
    batches_.pop_back();
    return batch;
  }

  /// Called by the worker once a region (and the pushes of its children)
  /// is fully processed.
  void done() { outstanding_.fetch_sub(1, std::memory_order_acq_rel); }
  bool idle() const { return outstanding_.load(std::memory_order_acquire) == 0; }

 private:
  common::Mutex mu_;
  std::vector<RegionBatch> batches_ GDP_GUARDED_BY(mu_);
  /// Regions pushed but not yet fully processed; incremented BEFORE the
  /// push is visible so idle() can never report a transient empty queue as
  /// terminated while a producer is mid-push.
  std::atomic<std::size_t> outstanding_{0};
};

/// Fork/join SCC of the usable-action graph: fills out[s] with the
/// canonical label (smallest state id) of s's SCC for every candidate s,
/// kRemoved otherwise.
template <class ModelT>
class ParallelScc {
 public:
  ParallelScc(const ModelT& model, const std::vector<std::int64_t>& component,
              const CheckOptions& options, int threads)
      : model_(model), component_(component), options_(options), threads_(threads) {}

  void run(std::vector<std::int64_t>& out) {
    const std::size_t n = model_.num_states();
    out.assign(n, kRemoved);
    out_ = &out;

    build_graph(model_, component_, threads_, fwd_, rev_);

    // Foreign states' tags are read while their owners relabel them (the
    // membership test only needs "is this my token", and tokens are never
    // reused), so the tags are relaxed atomics to keep that formally
    // race-free.
    region_of_ = std::vector<std::atomic<std::uint32_t>>(n);
    fw_mark_.assign(n, 0);
    bw_mark_.assign(n, 0);
    indeg_.assign(n, 0);
    outdeg_.assign(n, 0);
    local_of_.assign(n, 0);

    // Each partition block is an independent SCC problem (usable edges
    // never cross blocks), so seed one region per block: the first round
    // starts from one big region, refined rounds fork into many small
    // ones that go straight to the per-region Tarjan. Singleton blocks —
    // the vast majority once the partition approaches the MEC fixpoint —
    // are their own SCC by definition and resolve right here; the rest
    // are packed into ~seq_scc_region-state batches so queue traffic
    // stays proportional to work, not to block count.
    std::unordered_map<std::int64_t, std::vector<StateId>> blocks;
    blocks.reserve(n / 2 + 1);
    for (std::size_t s = 0; s < n; ++s) {
      if (component_[s] != kRemoved) blocks[component_[s]].push_back(static_cast<StateId>(s));
    }
    bool any = false;
    RegionBatch batch;
    std::size_t batch_states = 0;
    // Iteration order only picks region tokens and queue order — pure work
    // scheduling. SCC labels are canonical min-state ids and the final
    // collection scans states ascending, so no result bit depends on it.
    // gdp-lint: allow(unordered-iteration) — feeds the work queue, not any output
    for (auto& [label, states] : blocks) {
      if (states.size() == 1) {
        (*out_)[states.front()] = states.front();
        continue;
      }
      Region region;
      region.token = next_token_.fetch_add(1, std::memory_order_relaxed);
      region.states = std::move(states);
      for (const StateId s : region.states) set_region(s, region.token);
      batch_states += region.states.size();
      batch.push_back(std::move(region));
      if (batch_states >= options_.seq_scc_region) {
        queue_.push(std::move(batch));
        batch = {};
        batch_states = 0;
        any = true;
      }
    }
    if (!batch.empty()) {
      queue_.push(std::move(batch));
      any = true;
    }
    if (!any) return;

    const unsigned workers = common::effective_threads(threads_, n);
    common::run_workers(workers, [&](unsigned) {
      common::Backoff backoff;
      while (true) {
        std::optional<RegionBatch> claimed = queue_.pop();
        if (!claimed) {
          if (queue_.idle()) break;
          backoff.pause();
          continue;
        }
        backoff.reset();
        for (Region& r : *claimed) process(std::move(r));
        queue_.done();
      }
    });
  }

 private:
  /// Reachability sweep from `pivot` within region `token` over `graph`,
  /// stamping `mark[s] = token`.
  void sweep(const Csr& graph, StateId pivot, std::uint32_t token,
             std::vector<std::uint32_t>& mark) {
    std::vector<StateId> stack{pivot};
    mark[pivot] = token;
    while (!stack.empty()) {
      const StateId s = stack.back();
      stack.pop_back();
      for (std::size_t i = graph.off[s]; i < graph.off[s + 1]; ++i) {
        const StateId t = graph.edges[i];
        if (region_of(t) != token || mark[t] == token) continue;
        mark[t] = token;
        stack.push_back(t);
      }
    }
  }

  /// Peels states that cannot lie on any cycle within the region (zero
  /// in-region in-degree or out-degree — iterated, so whole DAG-shaped
  /// tails collapse in one linear pass). Each peeled state is its own SCC.
  /// Without this, graphs dominated by trivial SCCs degrade FW-BW splitting
  /// to one component per sweep (the classic FW-BW pathology).
  void trim(Region& r) {
    const std::uint32_t token = r.token;
    for (const StateId s : r.states) {
      indeg_[s] = 0;
      outdeg_[s] = 0;
    }
    for (const StateId s : r.states) {
      for (std::size_t i = fwd_.off[s]; i < fwd_.off[s + 1]; ++i) {
        const StateId t = fwd_.edges[i];
        if (region_of(t) != token) continue;
        ++outdeg_[s];
        ++indeg_[t];
      }
    }
    std::vector<StateId> worklist;
    for (const StateId s : r.states) {
      if (indeg_[s] == 0 || outdeg_[s] == 0) worklist.push_back(s);
    }
    while (!worklist.empty()) {
      const StateId s = worklist.back();
      worklist.pop_back();
      if (region_of(s) != token) continue;  // peeled via the other degree
      set_region(s, 0);
      (*out_)[s] = s;  // a peeled state is a singleton SCC
      for (std::size_t i = fwd_.off[s]; i < fwd_.off[s + 1]; ++i) {
        const StateId t = fwd_.edges[i];
        if (region_of(t) == token && --indeg_[t] == 0) worklist.push_back(t);
      }
      for (std::size_t i = rev_.off[s]; i < rev_.off[s + 1]; ++i) {
        const StateId t = rev_.edges[i];
        if (region_of(t) == token && --outdeg_[t] == 0) worklist.push_back(t);
      }
    }
    std::erase_if(r.states, [&](StateId s) { return region_of(s) != token; });
  }

  void process(Region r) {
    MecCounters& ctr = MecCounters::get();
    const std::size_t before_trim = r.states.size();
    trim(r);
    const std::size_t trimmed = before_trim - r.states.size();
    ctr.trimmed.add(trimmed);
    if (trimmed > 0) {
      obs::timeline::counter_sample("mec.trimmed_states", static_cast<double>(trimmed));
    }
    if (r.states.empty()) return;
    if (r.states.size() <= options_.seq_scc_region || r.ineffective_splits >= 2) {
      ctr.tarjan_regions.increment();
      // An escape is a region *above* the size threshold bailed to Tarjan
      // because FW-BW stopped making progress on it.
      if (r.states.size() > options_.seq_scc_region) {
        ctr.tarjan_escapes.increment();
        obs::timeline::instant("mec.tarjan_escape");
      }
      tarjan(r);
      return;
    }
    ctr.splits.increment();
    obs::timeline::instant("mec.fwbw_split");
    const std::uint32_t token = r.token;
    const StateId pivot = r.states.front();
    sweep(fwd_, pivot, token, fw_mark_);
    sweep(rev_, pivot, token, bw_mark_);

    std::vector<StateId> scc, fw_only, bw_only, rest;
    for (const StateId s : r.states) {
      const bool f = fw_mark_[s] == token;
      const bool b = bw_mark_[s] == token;
      if (f && b) {
        scc.push_back(s);
      } else if (f) {
        fw_only.push_back(s);
      } else if (b) {
        bw_only.push_back(s);
      } else {
        rest.push_back(s);
      }
    }
    const std::int64_t label = *std::min_element(scc.begin(), scc.end());
    for (const StateId s : scc) (*out_)[s] = label;

    // Every SCC lies entirely within FW∩BW, FW\BW, BW\FW or the remainder
    // (the FW-BW theorem), so the three leftovers recurse independently.
    for (std::vector<StateId>* part : {&fw_only, &bw_only, &rest}) {
      if (part->empty()) continue;
      Region child;
      child.token = next_token_.fetch_add(1, std::memory_order_relaxed);
      child.states = std::move(*part);
      child.ineffective_splits =
          child.states.size() * 4 >= r.states.size() * 3 ? r.ineffective_splits + 1 : 0;
      for (const StateId s : child.states) set_region(s, child.token);
      RegionBatch one;
      one.push_back(std::move(child));
      queue_.push(std::move(one));
    }
  }

  /// Sequential Tarjan over one region (iterative), emitting canonical
  /// min-state labels. Local dense indices keep the scratch proportional
  /// to the region, not the model.
  void tarjan(const Region& r) {
    const std::int32_t kNone = -1;
    const std::size_t m = r.states.size();
    // local_of_ is a shared scratch: regions are disjoint and each state's
    // slot is only touched by the worker owning its region.
    for (std::size_t i = 0; i < m; ++i) local_of_[r.states[i]] = static_cast<std::int32_t>(i);

    std::vector<std::int32_t> index(m, kNone), low(m, 0);
    std::vector<bool> on_stack(m, false);
    std::vector<std::int32_t> scc_stack;
    std::int32_t counter = 0;

    struct Frame {
      std::int32_t v;           // local index
      std::size_t edge;         // next edge offset in fwd_
      std::size_t edge_end;
    };
    std::vector<Frame> stack;

    auto push_state = [&](std::int32_t v) {
      index[v] = low[v] = counter++;
      scc_stack.push_back(v);
      on_stack[v] = true;
      const StateId s = r.states[static_cast<std::size_t>(v)];
      stack.push_back(Frame{v, fwd_.off[s], fwd_.off[s + 1]});
    };

    for (std::size_t root = 0; root < m; ++root) {
      if (index[root] != kNone) continue;
      push_state(static_cast<std::int32_t>(root));
      while (!stack.empty()) {
        Frame& frame = stack.back();
        if (frame.edge == frame.edge_end) {
          const std::int32_t v = frame.v;
          stack.pop_back();
          if (!stack.empty()) {
            low[stack.back().v] = std::min(low[stack.back().v], low[v]);
          }
          if (low[v] == index[v]) {
            // Pop the component; its canonical label is its smallest id.
            std::size_t first = scc_stack.size();
            while (true) {
              --first;
              if (scc_stack[first] == v) break;
            }
            std::int64_t label = std::numeric_limits<std::int64_t>::max();
            for (std::size_t i = first; i < scc_stack.size(); ++i) {
              label = std::min<std::int64_t>(label,
                                             r.states[static_cast<std::size_t>(scc_stack[i])]);
            }
            for (std::size_t i = first; i < scc_stack.size(); ++i) {
              const std::int32_t w = scc_stack[i];
              on_stack[w] = false;
              (*out_)[r.states[static_cast<std::size_t>(w)]] = label;
            }
            scc_stack.resize(first);
          }
          continue;
        }
        const StateId t = fwd_.edges[frame.edge++];
        if (region_of(t) != r.token) continue;
        const std::int32_t w = local_of_[t];
        if (index[w] == kNone) {
          push_state(w);
        } else if (on_stack[w]) {
          low[frame.v] = std::min(low[frame.v], index[w]);
        }
      }
    }
  }

  const ModelT& model_;
  const std::vector<std::int64_t>& component_;
  const CheckOptions& options_;
  int threads_;
  std::uint32_t region_of(StateId s) const {
    return region_of_[s].load(std::memory_order_relaxed);
  }
  void set_region(StateId s, std::uint32_t token) {
    region_of_[s].store(token, std::memory_order_relaxed);
  }

  Csr fwd_, rev_;
  std::vector<std::atomic<std::uint32_t>> region_of_;
  std::vector<std::uint32_t> fw_mark_, bw_mark_;
  std::vector<std::uint32_t> indeg_, outdeg_;
  std::vector<std::int32_t> local_of_;
  std::atomic<std::uint32_t> next_token_{1};
  RegionQueue queue_;
  std::vector<std::int64_t>* out_ = nullptr;
};

template <class ModelT>
std::vector<EndComponent> maximal_end_components_t(const ModelT& model, std::uint64_t avoid_set,
                                                   const CheckOptions& options) {
  const std::size_t n = model.num_states();
  GDP_CHECK_MSG(n < (std::uint64_t{1} << 31), "parallel MEC decomposition supports < 2^31 states");

  // Candidate fragment: expanded states where no avoid_set member eats.
  std::vector<std::int64_t> component(n, kRemoved);
  std::size_t candidates = 0;
  for (StateId s = 0; s < n; ++s) {
    if ((model.eaters(s) & avoid_set) == 0 && !model.frontier(s)) {
      component[s] = 0;
      ++candidates;
    }
  }

  const unsigned workers = common::effective_threads(options.threads, candidates);
  if (workers <= 1 || candidates < options.seq_mec_threshold) {
    return mdp::detail::maximal_end_components_t(model, avoid_set);
  }
  obs::TimedSpan span("mec.decompose");

  // Refinement fixpoint, as in the sequential decomposition: SCC-split the
  // partition, drop states with no action closed inside their own block,
  // repeat until stable. Canonical min-state labels make the cross-round
  // equality test meaningful.
  std::vector<std::int64_t> refined(n, kRemoved);
  std::vector<std::uint8_t> keep(n, 0);
  while (true) {
    MecCounters::get().rounds.increment();
    ParallelScc<ModelT> scc(model, component, options, options.threads);
    scc.run(refined);

    // Two-phase survival filter, cascaded to its own fixpoint: decide from
    // the refined snapshot only, then apply, then repeat — one removal can
    // strand a neighbour's last closed action. Removal order cannot
    // influence the fixpoint, and cascading here (instead of bouncing back
    // through a full SCC decomposition per removal wave, as the sequential
    // code does) keeps the expensive SCC rounds to genuine block splits.
    while (true) {
      std::atomic<bool> removed_any{false};
      common::parallel_for(n, options.threads, [&](std::uint32_t s) {
        keep[s] = 0;
        if (component[s] == kRemoved || refined[s] == kRemoved) return;
        for (int p = 0; p < model.num_phils(); ++p) {
          const auto [begin, end] = model.row(s, p);
          if (begin == end) continue;
          bool inside = true;
          for (const Outcome* o = begin; o != end && inside; ++o) {
            inside = refined[o->next] != kRemoved && refined[o->next] == refined[s];
          }
          if (inside) {
            keep[s] = 1;
            return;
          }
        }
        removed_any.store(true, std::memory_order_relaxed);
      });
      if (!removed_any.load(std::memory_order_relaxed)) break;
      common::parallel_for(n, options.threads, [&](std::uint32_t s) {
        if (component[s] != kRemoved && refined[s] != kRemoved && !keep[s]) refined[s] = kRemoved;
      });
    }

    if (std::equal(component.begin(), component.end(), refined.begin())) break;
    component.swap(refined);
  }

  // Collect surviving partitions exactly as the sequential decomposition
  // does (ascending state scan, first-state-encounter component order), so
  // the result vectors compare equal element for element.
  std::vector<std::int64_t> id_remap;
  std::vector<EndComponent> mecs;
  for (StateId s = 0; s < n; ++s) {
    if (component[s] == kRemoved) continue;
    const auto raw = static_cast<std::size_t>(component[s]);
    if (raw >= id_remap.size()) id_remap.resize(raw + 1, kRemoved);
    if (id_remap[raw] == kRemoved) {
      id_remap[raw] = static_cast<std::int64_t>(mecs.size());
      mecs.emplace_back();
    }
    EndComponent& mec = mecs[static_cast<std::size_t>(id_remap[raw])];
    mec.states.push_back(s);
    for (int p = 0; p < model.num_phils(); ++p) {
      const auto [begin, end] = model.row(s, p);
      if (begin == end) continue;
      bool inside = true;
      for (const Outcome* o = begin; o != end && inside; ++o) {
        inside = component[o->next] == component[s];
      }
      if (inside && p < 64) mec.phil_mask |= (std::uint64_t{1} << p);
    }
  }
  return mecs;
}

template <class ModelT>
std::vector<bool> reachable_states_t(const ModelT& model, const CheckOptions& options) {
  const std::size_t n = model.num_states();
  const unsigned workers = common::effective_threads(options.threads, n);
  if (workers <= 1 || n < options.seq_mec_threshold) {
    return mdp::detail::reachable_states_t(model);
  }

  // Level-synchronous BFS: each level fans its frontier out over the pool,
  // claiming discoveries through atomic flags. The claimed *set* is the
  // reachable set no matter how the claims interleave, and levels join
  // before the flags are read non-atomically again.
  std::vector<unsigned char> reached(n, 0);
  std::vector<StateId> frontier{model.initial()};
  reached[model.initial()] = 1;

  // Below this, spawn/steal overhead beats the scan.
  constexpr std::size_t kSeqLevel = 2'048;

  std::vector<StateId> next;
  while (!frontier.empty()) {
    next.clear();
    if (frontier.size() < kSeqLevel) {
      for (const StateId s : frontier) {
        for (int p = 0; p < model.num_phils(); ++p) {
          const auto [begin, end] = model.row(s, p);
          for (const Outcome* o = begin; o != end; ++o) {
            if (!reached[o->next]) {
              reached[o->next] = 1;
              next.push_back(o->next);
            }
          }
        }
      }
    } else {
      const std::size_t chunks = std::min<std::size_t>(frontier.size() / 512, workers * 4);
      std::vector<std::vector<StateId>> found(chunks);
      common::parallel_for(chunks, options.threads, [&](std::uint32_t c) {
        std::vector<StateId>& mine = found[c];
        for (std::size_t i = c; i < frontier.size(); i += chunks) {
          const StateId s = frontier[i];
          for (int p = 0; p < model.num_phils(); ++p) {
            const auto [begin, end] = model.row(s, p);
            for (const Outcome* o = begin; o != end; ++o) {
              std::atomic_ref<unsigned char> flag(reached[o->next]);
              if (flag.load(std::memory_order_relaxed) == 0 &&
                  flag.exchange(1, std::memory_order_relaxed) == 0) {
                mine.push_back(o->next);
              }
            }
          }
        }
      });
      for (const std::vector<StateId>& mine : found) {
        next.insert(next.end(), mine.begin(), mine.end());
      }
    }
    frontier.swap(next);
  }
  return std::vector<bool>(reached.begin(), reached.end());
}

template <class ModelT>
FairProgressResult check_fair_progress_t(const ModelT& model, std::uint64_t set_mask,
                                         const CheckOptions& options) {
  return mdp::detail::verdict_from_mecs_t(model, set_mask,
                                          maximal_end_components_t(model, set_mask, options),
                                          reachable_states_t(model, options));
}

}  // namespace gdp::mdp::par::detail
