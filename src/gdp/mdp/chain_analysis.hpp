// Quantitative analysis of the Markov chain induced by the *uniform fair
// scheduler* (each philosopher equally likely each step): hitting
// probabilities and expected hitting times of the eating set E, plus the
// within-N-steps reachability curve. Complements the qualitative fair-EC
// verdicts with numbers the benches report (experiments E5, E10).
#pragma once

#include <vector>

#include "gdp/mdp/model.hpp"

namespace gdp::mdp {

struct ChainAnalysis {
  /// P(reach E eventually) from the initial state under uniform scheduling.
  double p_reach = 0.0;
  /// E[steps to reach E] from the initial state; meaningful when p_reach
  /// is (numerically) 1, +inf otherwise.
  double expected_steps = 0.0;
  bool expected_converged = false;
  std::size_t iterations = 0;
};

/// Fixed-point iteration (monotone from below for p_reach; Gauss-Seidel for
/// the expected time). `epsilon` is the sup-norm stopping threshold.
ChainAnalysis analyze_uniform_chain(const Model& model, double epsilon = 1e-9,
                                    std::size_t max_iterations = 200'000);

/// P(reach E within i steps) for i = 0..horizon, from the initial state.
std::vector<double> reach_curve(const Model& model, std::size_t horizon);

}  // namespace gdp::mdp
