#include <deque>

#include "gdp/common/check.hpp"
#include "gdp/mdp/key.hpp"
#include "gdp/mdp/model.hpp"
#include "gdp/mdp/witness.hpp"
#include "gdp/sim/state.hpp"
#include "gdp/sim/step.hpp"

namespace gdp::mdp {

/// Shared implementation; `index_out` (a StateIndex*) optionally receives
/// the packed-key -> id map.
Model detail_explore(const algos::Algorithm& algo, const graph::Topology& t,
                     std::size_t max_states, void* index_out) {
  GDP_CHECK_MSG(algo.config().think == algos::ThinkMode::kHungry,
                "MDP exploration requires ThinkMode::kHungry");

  Model model;
  model.num_phils_ = t.num_phils();

  const KeyCodec codec(algo, t);
  StateIndex index;
  index.reset(codec);
  std::vector<sim::SimState> states;  // kept until exploration ends
  std::deque<StateId> frontier;

  PackedKey key;
  auto intern = [&](const sim::SimState& s) -> StateId {
    codec.encode(s, key);
    const auto [it, inserted] = index.try_emplace(key, static_cast<StateId>(states.size()));
    if (inserted) {
      states.push_back(s);
      model.eaters_.push_back(sim::eater_mask(s));
      model.frontier_.push_back(true);
      frontier.push_back(it->second);
    }
    return it->second;
  };

  intern(algo.initial_state(t));

  const int n = t.num_phils();
  while (!frontier.empty()) {
    const StateId id = frontier.front();
    if (states.size() >= max_states) {
      // Cap reached: stop expanding; remaining frontier states keep their flag.
      model.truncated_ = true;
      break;
    }
    frontier.pop_front();
    model.frontier_[id] = false;

    const sim::SimState state = states[id];  // copy: `states` may reallocate
    for (PhilId p = 0; p < n; ++p) {
      const std::vector<sim::Branch> branches = algo.step(t, state, p);
      for (const sim::Branch& b : branches) {
        const StateId next = intern(b.next);
        model.outcomes_.push_back(Outcome{static_cast<float>(b.prob), next});
      }
      model.offsets_.push_back(model.outcomes_.size());
    }
  }

  // offsets_ currently holds row *ends* for expanded states only; rebuild the
  // canonical CSR with a leading zero and empty rows for frontier states.
  std::vector<std::uint64_t> offsets;
  offsets.reserve(model.eaters_.size() * static_cast<std::size_t>(n) + 1);
  offsets.push_back(0);
  const std::size_t expanded_rows = model.offsets_.size();
  std::size_t row = 0;
  for (StateId s = 0; s < model.eaters_.size(); ++s) {
    for (int p = 0; p < n; ++p) {
      if (!model.frontier_[s]) {
        GDP_DCHECK(row < expanded_rows);
        offsets.push_back(model.offsets_[row++]);
      } else {
        offsets.push_back(offsets.back());  // empty row
      }
    }
  }
  model.offsets_ = std::move(offsets);

  if (index_out != nullptr) *static_cast<StateIndex*>(index_out) = std::move(index);
  return model;
}

Model explore(const algos::Algorithm& algo, const graph::Topology& t, std::size_t max_states) {
  return detail_explore(algo, t, max_states, nullptr);
}

Model explore_indexed(const algos::Algorithm& algo, const graph::Topology& t,
                      std::size_t max_states, StateIndex& index_out) {
  return detail_explore(algo, t, max_states, &index_out);
}

}  // namespace gdp::mdp
