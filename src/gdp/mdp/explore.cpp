#include <cmath>

#include "gdp/common/check.hpp"
#include "gdp/mdp/key.hpp"
#include "gdp/mdp/level_explore.hpp"
#include "gdp/mdp/model.hpp"
#include "gdp/mdp/witness.hpp"

namespace gdp::mdp {

Model Model::build(int num_phils, std::vector<std::uint64_t> offsets,
                   std::vector<Outcome> outcomes, std::vector<std::uint64_t> eaters,
                   std::vector<bool> frontier, bool truncated) {
  GDP_CHECK_MSG(num_phils > 0, "Model::build needs at least one philosopher");
  GDP_CHECK_MSG(num_phils <= 64,
                "Model::build: eater/target masks are 64-bit, so at most 64 philosophers are "
                "supported, got "
                    << num_phils);
  const std::size_t n = eaters.size();
  GDP_CHECK_MSG(n > 0, "Model::build needs at least one state");
  GDP_CHECK_MSG(frontier.size() == n, "Model::build: frontier/eaters size mismatch");
  GDP_CHECK_MSG(offsets.size() == n * static_cast<std::size_t>(num_phils) + 1,
                "Model::build: offsets must have num_states * num_phils + 1 entries, got "
                    << offsets.size());
  GDP_CHECK_MSG(offsets.front() == 0 && offsets.back() == outcomes.size(),
                "Model::build: offsets must start at 0 and end at outcomes.size()");
  for (std::size_t r = 0; r + 1 < offsets.size(); ++r) {
    GDP_CHECK_MSG(offsets[r] <= offsets[r + 1], "Model::build: offsets not monotone at row " << r);
  }
  for (StateId s = 0; s < n; ++s) {
    if (!frontier[s]) continue;
    const std::size_t base = static_cast<std::size_t>(s) * static_cast<std::size_t>(num_phils);
    GDP_CHECK_MSG(offsets[base] == offsets[base + static_cast<std::size_t>(num_phils)],
                  "Model::build: frontier state " << s << " must have empty rows");
  }
  for (const Outcome& o : outcomes) {
    GDP_CHECK_MSG(o.next < n, "Model::build: outcome targets unknown state " << o.next);
    GDP_CHECK_MSG(o.prob > 0.0f && o.prob <= 1.0f,
                  "Model::build: outcome probability " << o.prob << " outside (0, 1]");
  }
  // Rows must be distributions: the quantitative checker's soundness
  // arguments (clamps, OVI verification) assume (sub)stochastic rows.
  for (std::size_t r = 0; r + 1 < offsets.size(); ++r) {
    if (offsets[r] == offsets[r + 1]) continue;
    double mass = 0.0;
    for (std::size_t i = offsets[r]; i < offsets[r + 1]; ++i) {
      mass += static_cast<double>(outcomes[i].prob);
    }
    GDP_CHECK_MSG(std::abs(mass - 1.0) <= 1e-4,
                  "Model::build: row " << r << " probabilities sum to " << mass << ", expected 1");
  }

  Model model;
  model.num_phils_ = num_phils;
  model.offsets_ = std::move(offsets);
  model.outcomes_ = std::move(outcomes);
  model.eaters_ = std::move(eaters);
  model.frontier_ = std::move(frontier);
  model.truncated_ = truncated;
  return model;
}

Model explore(const algos::Algorithm& algo, const graph::Topology& t, std::size_t max_states) {
  detail::LevelExplorer explorer(algo, t);
  explorer.run(max_states, /*threads=*/1);
  return explorer.take_model();
}

Model explore_indexed(const algos::Algorithm& algo, const graph::Topology& t,
                      std::size_t max_states, StateIndex& index_out) {
  detail::LevelExplorer explorer(algo, t);
  explorer.run(max_states, /*threads=*/1);
  return explorer.take_model(&index_out);
}

}  // namespace gdp::mdp
