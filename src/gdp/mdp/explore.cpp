#include <cmath>
#include <deque>

#include "gdp/common/check.hpp"
#include "gdp/mdp/key.hpp"
#include "gdp/mdp/model.hpp"
#include "gdp/mdp/witness.hpp"
#include "gdp/sim/state.hpp"
#include "gdp/sim/step.hpp"

namespace gdp::mdp {

/// Shared implementation; `index_out` (a StateIndex*) optionally receives
/// the packed-key -> id map.
Model detail_explore(const algos::Algorithm& algo, const graph::Topology& t,
                     std::size_t max_states, void* index_out) {
  GDP_CHECK_MSG(algo.config().think == algos::ThinkMode::kHungry,
                "MDP exploration requires ThinkMode::kHungry");

  Model model;
  model.num_phils_ = t.num_phils();

  const KeyCodec codec(algo, t);
  StateIndex index;
  index.reset(codec);
  std::vector<sim::SimState> states;  // kept until exploration ends
  std::deque<StateId> frontier;

  PackedKey key;
  auto intern = [&](const sim::SimState& s) -> StateId {
    codec.encode(s, key);
    const auto [it, inserted] = index.try_emplace(key, static_cast<StateId>(states.size()));
    if (inserted) {
      states.push_back(s);
      model.eaters_.push_back(sim::eater_mask(s));
      model.frontier_.push_back(true);
      frontier.push_back(it->second);
    }
    return it->second;
  };

  intern(algo.initial_state(t));

  const int n = t.num_phils();
  while (!frontier.empty()) {
    const StateId id = frontier.front();
    if (states.size() >= max_states) {
      // Cap reached: stop expanding; remaining frontier states keep their flag.
      model.truncated_ = true;
      break;
    }
    frontier.pop_front();
    model.frontier_[id] = false;

    const sim::SimState state = states[id];  // copy: `states` may reallocate
    for (PhilId p = 0; p < n; ++p) {
      const std::vector<sim::Branch> branches = algo.step(t, state, p);
      for (const sim::Branch& b : branches) {
        const StateId next = intern(b.next);
        model.outcomes_.push_back(Outcome{static_cast<float>(b.prob), next});
      }
      model.offsets_.push_back(model.outcomes_.size());
    }
  }

  // offsets_ currently holds row *ends* for expanded states only; rebuild the
  // canonical CSR with a leading zero and empty rows for frontier states.
  std::vector<std::uint64_t> offsets;
  offsets.reserve(model.eaters_.size() * static_cast<std::size_t>(n) + 1);
  offsets.push_back(0);
  const std::size_t expanded_rows = model.offsets_.size();
  std::size_t row = 0;
  for (StateId s = 0; s < model.eaters_.size(); ++s) {
    for (int p = 0; p < n; ++p) {
      if (!model.frontier_[s]) {
        GDP_DCHECK(row < expanded_rows);
        offsets.push_back(model.offsets_[row++]);
      } else {
        offsets.push_back(offsets.back());  // empty row
      }
    }
  }
  model.offsets_ = std::move(offsets);

  if (index_out != nullptr) *static_cast<StateIndex*>(index_out) = std::move(index);
  return model;
}

Model Model::build(int num_phils, std::vector<std::uint64_t> offsets,
                   std::vector<Outcome> outcomes, std::vector<std::uint64_t> eaters,
                   std::vector<bool> frontier, bool truncated) {
  GDP_CHECK_MSG(num_phils > 0, "Model::build needs at least one philosopher");
  const std::size_t n = eaters.size();
  GDP_CHECK_MSG(n > 0, "Model::build needs at least one state");
  GDP_CHECK_MSG(frontier.size() == n, "Model::build: frontier/eaters size mismatch");
  GDP_CHECK_MSG(offsets.size() == n * static_cast<std::size_t>(num_phils) + 1,
                "Model::build: offsets must have num_states * num_phils + 1 entries, got "
                    << offsets.size());
  GDP_CHECK_MSG(offsets.front() == 0 && offsets.back() == outcomes.size(),
                "Model::build: offsets must start at 0 and end at outcomes.size()");
  for (std::size_t r = 0; r + 1 < offsets.size(); ++r) {
    GDP_CHECK_MSG(offsets[r] <= offsets[r + 1], "Model::build: offsets not monotone at row " << r);
  }
  for (StateId s = 0; s < n; ++s) {
    if (!frontier[s]) continue;
    const std::size_t base = static_cast<std::size_t>(s) * static_cast<std::size_t>(num_phils);
    GDP_CHECK_MSG(offsets[base] == offsets[base + static_cast<std::size_t>(num_phils)],
                  "Model::build: frontier state " << s << " must have empty rows");
  }
  for (const Outcome& o : outcomes) {
    GDP_CHECK_MSG(o.next < n, "Model::build: outcome targets unknown state " << o.next);
    GDP_CHECK_MSG(o.prob > 0.0f && o.prob <= 1.0f,
                  "Model::build: outcome probability " << o.prob << " outside (0, 1]");
  }
  // Rows must be distributions: the quantitative checker's soundness
  // arguments (clamps, OVI verification) assume (sub)stochastic rows.
  for (std::size_t r = 0; r + 1 < offsets.size(); ++r) {
    if (offsets[r] == offsets[r + 1]) continue;
    double mass = 0.0;
    for (std::size_t i = offsets[r]; i < offsets[r + 1]; ++i) {
      mass += static_cast<double>(outcomes[i].prob);
    }
    GDP_CHECK_MSG(std::abs(mass - 1.0) <= 1e-4,
                  "Model::build: row " << r << " probabilities sum to " << mass << ", expected 1");
  }

  Model model;
  model.num_phils_ = num_phils;
  model.offsets_ = std::move(offsets);
  model.outcomes_ = std::move(outcomes);
  model.eaters_ = std::move(eaters);
  model.frontier_ = std::move(frontier);
  model.truncated_ = truncated;
  return model;
}

Model explore(const algos::Algorithm& algo, const graph::Topology& t, std::size_t max_states) {
  return detail_explore(algo, t, max_states, nullptr);
}

Model explore_indexed(const algos::Algorithm& algo, const graph::Topology& t,
                      std::size_t max_states, StateIndex& index_out) {
  return detail_explore(algo, t, max_states, &index_out);
}

}  // namespace gdp::mdp
