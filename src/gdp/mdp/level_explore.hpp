// The shared level-synchronous breadth-first explorer behind mdp::explore
// and par::explore.
//
// Exploration proceeds in BFS levels. A level is the contiguous id range
// [num_expanded, num_states): states discovered but not yet expanded — with
// level-synchronous expansion the unexpanded frontier is always an id tail,
// so no frontier queue exists at all. Each level runs in two phases:
//
//   1. Parallel expansion: every state of the level decodes its packed key,
//      steps the algorithm for each philosopher, and records its successor
//      keys/eater masks/probabilities in a per-state buffer. Tasks share
//      nothing writable, so any schedule produces the same buffers.
//   2. Sequential epilogue: successors intern in (state, philosopher,
//      branch) order — exactly the FIFO order the historical sequential
//      explorer assigned ids in, so complete models keep their numbering —
//      and the CSR rows materialize in the same pass.
//
// The state cap applies at LEVEL granularity: before expanding a level, if
// num_states >= max_states the run stops with every state either fully
// expanded or untouched frontier. Truncation is therefore a pure function
// of (algorithm, topology, max_states) — identical for mdp::explore and
// par::explore at every thread count, with no sequential fallback. A capped
// run may finish the level in flight and overshoot max_states by one
// level's discoveries; it never stops mid-level.
//
// Because expanded states always form an id prefix and levels are complete,
// a truncated model IS a checkpoint: restore() re-seeds an explorer from
// the model + its id-ordered keys, and run() continues exactly where the
// capped run stopped — the basis of gdp::mdp::store's save/resume contract.
#pragma once

#include <cstddef>
#include <vector>

#include "gdp/algos/algorithm.hpp"
#include "gdp/common/check.hpp"
#include "gdp/graph/topology.hpp"
#include "gdp/mdp/key.hpp"
#include "gdp/mdp/model.hpp"

namespace gdp::mdp::detail {

class LevelExplorer {
 public:
  /// Seeds the exploration at algo.initial_state(t). Requires
  /// ThinkMode::kHungry (the proofs' all-hungry setting) and at most 64
  /// philosophers (the eater/target masks are one 64-bit word).
  LevelExplorer(const algos::Algorithm& algo, const graph::Topology& t);

  /// Re-seeds from a previously explored model plus its id-ordered packed
  /// keys (as returned by take_model): the frontier must be a contiguous id
  /// tail and keys[0] must encode the initial state. run() then continues
  /// the interrupted run bit-identically.
  ///
  /// Generic over the Model read API (row/eaters/frontier): restoring from
  /// a store::ChunkedModel reads rows chunk by chunk and never needs the
  /// contiguous materialized form — the basis of store::resume's
  /// no-materialize contract. Rows are copied in (state, philosopher)
  /// ascending order, which reproduces the contiguous CSR byte for byte.
  template <class ModelT>
  void restore(const ModelT& model, std::vector<PackedKey> keys) {
    GDP_CHECK_MSG(model.num_phils() == topology_.num_phils(),
                  "restore: model has " << model.num_phils() << " philosophers, topology has "
                                        << topology_.num_phils());
    GDP_CHECK_MSG(keys.size() == model.num_states(),
                  "restore: " << keys.size() << " keys for " << model.num_states() << " states");
    GDP_CHECK_MSG(!keys.empty() && keys[0] == codec_.encode(algo_.initial_state(topology_)),
                  "restore: state 0 is not this (algorithm, topology)'s initial state");

    // The level-synchronous invariant: expanded states are an id prefix,
    // frontier states the tail. Anything else is not a checkpoint this
    // explorer produced.
    std::size_t expanded = 0;
    while (expanded < keys.size() && !model.frontier(static_cast<StateId>(expanded))) ++expanded;
    for (std::size_t s = expanded; s < keys.size(); ++s) {
      GDP_CHECK_MSG(model.frontier(static_cast<StateId>(s)),
                    "restore: expanded state " << s << " follows a frontier state — the model is "
                                                  "not a level-synchronous prefix");
    }

    const std::size_t n = static_cast<std::size_t>(model.num_phils());
    keys_ = std::move(keys);
    eaters_.resize(keys_.size());
    for (std::size_t s = 0; s < keys_.size(); ++s) eaters_[s] = model.eaters(static_cast<StateId>(s));
    outcomes_.clear();
    row_ends_.clear();
    row_ends_.reserve(expanded * n);
    for (std::size_t s = 0; s < expanded; ++s) {
      for (std::size_t p = 0; p < n; ++p) {
        const auto [begin, end] = model.row(static_cast<StateId>(s), static_cast<int>(p));
        outcomes_.insert(outcomes_.end(), begin, end);
        row_ends_.push_back(outcomes_.size());
      }
    }
    num_expanded_ = expanded;
    truncated_ = false;

    index_.reset(codec_);
    index_.reserve(keys_.size());
    for (std::size_t s = 0; s < keys_.size(); ++s) {
      const auto [it, inserted] = index_.try_emplace(keys_[s], static_cast<StateId>(s));
      GDP_CHECK_MSG(inserted, "restore: duplicate key at state " << s);
    }
  }

  /// Level-synchronous BFS until the space is exhausted or num_states() >=
  /// max_states at a level boundary (the model is then truncated).
  void run(std::size_t max_states, int threads);

  const KeyCodec& codec() const { return codec_; }
  std::size_t num_states() const { return keys_.size(); }

  /// Consumes the explorer into the canonical CSR Model (leading zero
  /// offset, empty rows for frontier states). Optionally also yields the
  /// key -> id index and the id-ordered keys.
  Model take_model(StateIndex* index_out = nullptr, std::vector<PackedKey>* keys_out = nullptr);

 private:
  StateId intern(const PackedKey& key, std::uint64_t eater_bits);

  const algos::Algorithm& algo_;
  const graph::Topology& topology_;
  KeyCodec codec_;
  StateIndex index_;
  std::vector<PackedKey> keys_;          // id -> packed key
  std::vector<std::uint64_t> eaters_;    // id -> eater mask
  std::vector<std::uint64_t> row_ends_;  // (expanded id, phil) -> end in outcomes_
  std::vector<Outcome> outcomes_;
  std::size_t num_expanded_ = 0;  // expanded states are the id prefix [0, num_expanded_)
  bool truncated_ = false;
};

}  // namespace gdp::mdp::detail
