// Decision procedures for the paper's liveness notions (§2 definitions):
//
//   progress            — whenever a philosopher is hungry, eventually SOME
//                         philosopher eats           (T --F-->_1 E)
//   progress wrt S      — ... some philosopher OF S eats (Theorems 1 and 2
//                         deny this for the ring philosophers H under
//                         LR1/LR2 on generalized topologies)
//   lockout-freedom     — every hungry philosopher itself eventually eats
//                         (T_i --F-->_1 E_i; Theorem 4's property for GDP2)
//
// Each reduces to the absence of a reachable fair end component inside the
// corresponding "no relevant eating" fragment — see end_components.hpp. A
// found witness EC is the machine-checked analogue of the paper's hand-built
// adversary strategies.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gdp/mdp/end_components.hpp"
#include "gdp/mdp/model.hpp"

namespace gdp::mdp {

enum class Verdict : std::uint8_t {
  /// No reachable fair EC avoids the target eating set: the property holds
  /// with probability 1 under every fair adversary (needs a complete model).
  kProgressCertain,
  /// A reachable fair EC avoiding the target set exists: some fair adversary
  /// denies the property with positive probability (sound even on truncated
  /// models; the witness uses only fully-explored states).
  kProgressFails,
  /// Exploration was truncated and no fair EC was found in the prefix.
  kUnknownTruncated,
};

const char* to_string(Verdict verdict);

struct FairProgressResult {
  Verdict verdict = Verdict::kUnknownTruncated;
  std::uint64_t avoid_set = ~std::uint64_t{0};
  std::size_t num_states = 0;
  std::size_t num_mecs = 0;       // MECs of the restricted fragment
  std::size_t num_fair_mecs = 0;  // ... with actions of every philosopher
  std::size_t witness_size = 0;   // states in the first reachable fair EC
  std::optional<StateId> witness_state;

  bool holds() const { return verdict == Verdict::kProgressCertain; }
  std::string summary() const;
};

/// Progress wrt the philosophers in `set_mask` (default: everyone — plain
/// progress, the property of Theorem 3).
FairProgressResult check_fair_progress(const Model& model,
                                       std::uint64_t set_mask = ~std::uint64_t{0});

/// Lockout-freedom of philosopher `victim` (Theorem 4's property when it
/// holds for every victim).
FairProgressResult check_lockout_freedom(const Model& model, PhilId victim);

/// One-call conveniences: explore + check.
FairProgressResult check_fair_progress(const algos::Algorithm& algo, const graph::Topology& t,
                                       std::size_t max_states = 2'000'000,
                                       std::uint64_t set_mask = ~std::uint64_t{0});

namespace detail {
/// The verdict logic over an already-computed MEC decomposition — shared
/// between the sequential checker above and the parallel engine
/// (gdp/mdp/par), which must produce identical FairProgressResults.
FairProgressResult verdict_from_mecs(const Model& model, std::uint64_t set_mask,
                                     const std::vector<EndComponent>& mecs);

/// As above with a precomputed reachable-state set (reached[s] true iff s is
/// reachable from the initial state) — the parallel engine passes the result
/// of its pool-based sweep (par::reachable_states), which is the same set
/// the sequential reachable_states computes.
FairProgressResult verdict_from_mecs(const Model& model, std::uint64_t set_mask,
                                     const std::vector<EndComponent>& mecs,
                                     const std::vector<bool>& reached);
}  // namespace detail

}  // namespace gdp::mdp
