#include "gdp/mdp/chain_analysis.hpp"

#include <cmath>

#include "gdp/common/check.hpp"

namespace gdp::mdp {
namespace {

/// One uniform-scheduler expectation sweep: out(s) = mean over philosophers
/// of the branch-weighted value at successors. Frontier states contribute
/// `frontier_value` (conservative bounds on truncated models).
double sweep(const Model& model, std::vector<double>& value, bool expected_time,
             double frontier_value) {
  const int n = model.num_phils();
  double delta = 0.0;
  for (StateId s = 0; s < model.num_states(); ++s) {
    if (model.eating(s)) continue;
    if (model.frontier(s)) {
      value[s] = frontier_value;
      continue;
    }
    double acc = 0.0;
    for (int p = 0; p < n; ++p) {
      const auto [begin, end] = model.row(s, p);
      for (const Outcome* o = begin; o != end; ++o) {
        acc += static_cast<double>(o->prob) *
               (model.eating(o->next) ? (expected_time ? 0.0 : 1.0) : value[o->next]);
      }
    }
    const double updated = (expected_time ? 1.0 : 0.0) + acc / n;
    delta = std::max(delta, std::abs(updated - value[s]));
    value[s] = updated;
  }
  return delta;
}

}  // namespace

ChainAnalysis analyze_uniform_chain(const Model& model, double epsilon,
                                    std::size_t max_iterations) {
  ChainAnalysis out;
  const std::size_t n_states = model.num_states();

  // Reach probability: least fixed point from below.
  std::vector<double> reach(n_states, 0.0);
  std::size_t it = 0;
  for (; it < max_iterations; ++it) {
    if (sweep(model, reach, /*expected_time=*/false, /*frontier_value=*/0.0) < epsilon) break;
  }
  out.p_reach = model.eating(model.initial()) ? 1.0 : reach[model.initial()];
  out.iterations = it;

  // Expected hitting time (only meaningful when reach ~ 1 everywhere that
  // matters; we still run the sweep and report convergence).
  std::vector<double> time(n_states, 0.0);
  bool converged = false;
  for (std::size_t i = 0; i < max_iterations; ++i) {
    if (sweep(model, time, /*expected_time=*/true, /*frontier_value=*/0.0) < epsilon) {
      converged = true;
      break;
    }
    ++out.iterations;
  }
  out.expected_steps = model.eating(model.initial()) ? 0.0 : time[model.initial()];
  out.expected_converged = converged && out.p_reach > 1.0 - 1e-6;
  return out;
}

std::vector<double> reach_curve(const Model& model, std::size_t horizon) {
  // value[s] = P(reach E within i steps from s); frontier states pessimistic 0.
  std::vector<double> value(model.num_states(), 0.0);
  std::vector<double> next(model.num_states(), 0.0);
  std::vector<double> curve;
  curve.reserve(horizon + 1);
  for (StateId s = 0; s < model.num_states(); ++s) {
    if (model.eating(s)) value[s] = 1.0;
  }
  curve.push_back(value[model.initial()]);

  const int n = model.num_phils();
  for (std::size_t i = 1; i <= horizon; ++i) {
    for (StateId s = 0; s < model.num_states(); ++s) {
      if (model.eating(s)) {
        next[s] = 1.0;
        continue;
      }
      if (model.frontier(s)) {
        next[s] = 0.0;
        continue;
      }
      double acc = 0.0;
      for (int p = 0; p < n; ++p) {
        const auto [begin, end] = model.row(s, p);
        for (const Outcome* o = begin; o != end; ++o) {
          acc += static_cast<double>(o->prob) * value[o->next];
        }
      }
      next[s] = acc / n;
    }
    value.swap(next);
    curve.push_back(value[model.initial()]);
  }
  return curve;
}

}  // namespace gdp::mdp
