// gdp::mdp::quant — quantitative verdicts over the explored MDP: min/max
// probability of reaching a target eating set and best-/worst-case expected
// steps to the first target meal, with SOUND two-sided bounds from interval
// iteration instead of a heuristic fixed point.
//
// Adversary class. All quantities range over the paper's FAIR adversaries
// (every philosopher scheduled infinitely often with probability 1) — the
// class the qualitative verdicts in fair_progress.hpp quantify over. This
// matters because the raw MDP is degenerate under unrestricted adversaries:
// blocked philosophers busy-wait as genuine self-loop rows, so an unfair
// scheduler can spin any of them forever and the unrestricted Pmin(reach E)
// is 0 essentially everywhere. Fairness restores the paper's intent:
//
//   * p_max — max probability of reaching the target set. Maximization is
//     fairness-insensitive (play the optimal prefix, fall back to
//     round-robin), so this is plain max reachability.
//   * p_min — min probability over fair adversaries. Computed through the
//     fair-trap identity: a fair run that never reaches the target is
//     almost surely eventually confined in a FAIR end component of the
//     non-target fragment (de Alfaro), hence
//         p_min = 1 - Pmax[fragment](reach a fair avoiding MEC)
//     where the inner Pmax ranges over all adversaries and is restricted to
//     meal-free paths. kProgressCertain verdicts correspond exactly to
//     p_min = 1 when the trap is meal-free-reachable; see p_trap for traps
//     behind a first meal.
//   * p_trap — max probability of reaching a fair avoiding MEC at all,
//     meals allowed en route. This is the quantitative strength of a
//     kProgressFails verdict (its witness region is reached with this
//     probability); p_trap = 0 iff the verdict is kProgressCertain on a
//     complete model.
//   * e_min — best-case expected number of steps to the first target meal
//     (every step counts). Finite iff p_max = 1.
//   * e_max — worst-case expected meal time over fair adversaries, counted
//     in PRODUCTIVE steps: steps whose action stays inside an avoiding MEC
//     of the fragment are not charged. The unqualified supremum is infinite
//     the moment any avoiding end component is reachable (a fair adversary
//     may dwell there arbitrarily long before its fairness debt comes due
//     — fairness bounds probability, not delay), and busy-wait self-loops
//     make that the universal case; excluding exactly the dwell the
//     adversary can stretch at will leaves the finite, attained worst case
//     computed by max value iteration on the MEC quotient. e_max is
//     infinite iff a fair avoiding MEC is meal-free-reachable (p_min < 1).
//
// Soundness. Value iteration alone can stop at any sup-norm residual and
// still be arbitrarily far from the true value. Following
// Haddad–Monmege-style interval iteration, the checker first collapses the
// maximal end components of the relevant fragment (reusing
// maximal_end_components / par::maximal_end_components) — the quotient has
// no end components besides its terminals, so the Bellman operator has a
// unique fixed point — then iterates a lower bound up from 0 and an upper
// bound down from 1 (for probabilities) or verifies a guessed upper bound
// with a Bellman contraction check (optimistic value iteration, for
// expected times). Both bounds are clamped monotone; iteration stops when
// upper - lower <= epsilon across the whole domain, and the true value
// provably lies inside every reported interval (up to IEEE-double rounding
// of the sweeps; bounds are exact fixed-point brackets, not estimates).
// Truncated models never certify: frontier states enter the intervals as
// [0, 1] (probabilities) / [0, +inf) (times) and certainty is kTruncated.
//
// Determinism. Sweeps are Jacobi (read the previous vector, write the
// next), run as state-range parallel_for chunks on the shared
// gdp::common::pool with residuals folded by the deterministic
// parallel_chunk_max reduction, so every interval endpoint is bit-identical
// at every thread count — the same contract gdp::exp and gdp::mdp::par
// keep. Domains below seq_sweep_threshold run the sweeps inline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gdp/mdp/model.hpp"
#include "gdp/mdp/par/par.hpp"

namespace gdp::mdp::quant {

/// A certified two-sided bound: the true value lies in [lower, upper].
/// Infinite quantities carry lower = upper = +inf.
struct Interval {
  double lower = 0.0;
  double upper = 0.0;

  double width() const { return lower == upper ? 0.0 : upper - lower; }
  bool contains(double v, double slack = 0.0) const {
    return v >= lower - slack && v <= upper + slack;
  }
  bool finite() const;
  bool operator==(const Interval&) const = default;
};

enum class Certainty : std::uint8_t {
  /// Complete model and every interval converged to width <= epsilon (or a
  /// certified infinity): the numbers are two-sided certificates.
  kCertified,
  /// Exploration was truncated: bounds are sound (frontier states count as
  /// "anything") but can never certify.
  kTruncated,
  /// max_iterations elapsed before convergence; bounds are sound but wider
  /// than epsilon.
  kIterationLimit,
};

const char* to_string(Certainty certainty);

struct QuantOptions {
  /// Worker threads; 0 = hardware concurrency, 1 = fully sequential
  /// (bit-identical by construction).
  int threads = 0;

  /// Exploration state cap for the explore-and-analyze convenience.
  std::size_t max_states = 2'000'000;

  /// Certified interval width: iteration stops when upper - lower <=
  /// epsilon everywhere on the domain.
  double epsilon = 1e-6;

  /// Bellman sweep cap per iteration phase (stall detection usually stops
  /// non-converging phases long before this).
  std::size_t max_iterations = 50'000;

  /// Domains smaller than this run their sweeps inline instead of on the
  /// pool (spawn/steal costs more than it saves).
  std::size_t seq_sweep_threshold = 16'384;

  /// Forwarded to the parallel MEC decomposition (par::CheckOptions).
  std::size_t seq_mec_threshold = 16'384;
  std::size_t seq_scc_region = 8'192;

  par::CheckOptions check_options() const {
    par::CheckOptions opts;
    opts.threads = threads;
    opts.max_states = max_states;
    opts.seq_mec_threshold = seq_mec_threshold;
    opts.seq_scc_region = seq_scc_region;
    return opts;
  }
};

/// Per-phase iteration accounting for one analyze() call. Sweep counts are
/// deterministic (bit-identical at every thread count): each phase stops on
/// thresholds of residuals computed by the deterministic parallel_chunk_max
/// reduction. A "stalled" phase ran but ended without certifying — the
/// width float-locked, frontier mass kept it open, or max_iterations hit.
/// Exported through the obs registry as quant.sweeps_* / quant.stalled_phases.
struct AnalyzeStats {
  std::size_t p_max_sweeps = 0;
  std::size_t p_min_sweeps = 0;
  std::size_t e_min_sweeps = 0;
  std::size_t e_max_sweeps = 0;
  std::size_t p_trap_sweeps = 0;
  std::size_t stalled_phases = 0;
};

struct QuantResult {
  std::uint64_t target_set = ~std::uint64_t{0};
  std::size_t num_states = 0;
  /// Nodes of the non-target fragment's MEC quotient (terminals excluded).
  std::size_t num_quotient_nodes = 0;
  std::size_t num_avoid_mecs = 0;       // MECs of the non-target fragment
  std::size_t num_fair_avoid_mecs = 0;  // ... with actions of every philosopher
  /// A fair avoiding MEC is reachable without any target meal on the way
  /// (the qualitative complement of p_min = 1).
  bool fair_trap_reachable = false;

  Interval p_min;   // min P(reach target eating set), fair adversaries
  Interval p_max;   // max P(reach target eating set)
  Interval p_trap;  // max P(reach a fair avoiding MEC), meals allowed

  /// Expected steps from the initial state to the first target meal.
  /// e_min counts every step; e_max counts productive steps (dwell inside
  /// avoiding MECs excluded — see the header comment) and is +inf iff a
  /// fair trap is meal-free-reachable. upper = +inf when uncertifiable.
  Interval e_min;
  Interval e_max;

  Certainty certainty = Certainty::kIterationLimit;
  std::size_t sweeps = 0;   // Bellman sweeps across all phases (= stats total)
  AnalyzeStats stats;       // per-phase sweep/stall breakdown
  double epsilon = 1e-6;    // the width both bounds converged to

  /// Quantitative progress certificate: p_min pinned to 1 on a complete
  /// model — the interval analogue of Verdict::kProgressCertain restricted
  /// to meal-free trap reachability.
  bool progress_certain() const {
    return certainty == Certainty::kCertified && p_min.lower >= 1.0 - epsilon;
  }

  std::string summary() const;
};

/// Quantitative analysis of `model` for the target set "some philosopher of
/// `target_set` (bitmask) eats" — the same target the qualitative
/// check_fair_progress(model, set_mask) decides. Singleton masks give the
/// lockout-freedom quantities of philosopher i.
QuantResult analyze(const Model& model, std::uint64_t target_set = ~std::uint64_t{0},
                    QuantOptions options = {});

/// Multi-target analysis: one QuantResult per entry of `targets`, each
/// bit-identical to analyze(model, targets[i], options) — but the
/// target-independent sweeps are computed ONCE and shared: the reachable-
/// state BFS, the full-model MEC decomposition and the full-model quotient
/// that p_trap needs (the fragment MECs and quotients depend on the target
/// and stay per-target). Checking lockout freedom for all n philosophers
/// (targets = the n singleton masks) this way saves n-1 reachability
/// sweeps and up to n-1 full MEC decompositions over calling analyze in a
/// loop. Requires every mask to be non-empty.
std::vector<QuantResult> analyze(const Model& model, const std::vector<std::uint64_t>& targets,
                                 QuantOptions options = {});

/// One-call convenience: parallel explore (gdp::mdp::par) + analyze.
QuantResult analyze(const algos::Algorithm& algo, const graph::Topology& t,
                    QuantOptions options = {}, std::uint64_t target_set = ~std::uint64_t{0});

}  // namespace gdp::mdp::quant
