// gdp::mdp::quant — Model instantiation and presentation helpers.
//
// The analysis pipeline (quotient construction, interval iteration, OVI)
// lives in quant_impl.hpp as templates over the Model read API; this
// translation unit instantiates it for the contiguous Model. store.cpp
// instantiates the same definitions for store::ChunkedModel, which is what
// makes chunk-native intervals bit-identical to this path by construction.
#include "gdp/mdp/quant/quant.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "gdp/common/check.hpp"
#include "gdp/mdp/quant/quant_impl.hpp"

namespace gdp::mdp::quant {
namespace {

std::string format_interval(const Interval& iv, double epsilon) {
  auto one = [](std::ostream& out, double v) {
    if (v == detail::kInf) {
      out << "inf";
      return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6f", v);
    out << buf;
  };
  std::ostringstream out;
  if (iv.width() <= epsilon) {
    one(out, iv.lower == iv.upper ? iv.lower : (iv.lower + iv.upper) / 2);
  } else {
    out << '[';
    one(out, iv.lower);
    out << ", ";
    one(out, iv.upper);
    out << ']';
  }
  return out.str();
}

}  // namespace

bool Interval::finite() const { return std::isfinite(lower) && std::isfinite(upper); }

const char* to_string(Certainty certainty) {
  switch (certainty) {
    case Certainty::kCertified: return "certified";
    case Certainty::kTruncated: return "unknown (state space truncated)";
    case Certainty::kIterationLimit: return "unconverged (iteration limit)";
  }
  return "?";
}

std::string QuantResult::summary() const {
  std::ostringstream out;
  out << to_string(certainty) << " (eps=" << epsilon << "): Pmin=" << format_interval(p_min, epsilon)
      << " Pmax=" << format_interval(p_max, epsilon) << " Ptrap=" << format_interval(p_trap, epsilon)
      << " E[min steps]=" << format_interval(e_min, epsilon)
      << " E[max productive steps]=" << format_interval(e_max, epsilon) << " — " << num_states
      << " states, " << num_quotient_nodes << " quotient nodes, " << num_avoid_mecs
      << " avoiding MECs (" << num_fair_avoid_mecs << " fair)";
  return out.str();
}

QuantResult analyze(const Model& model, std::uint64_t target_set, QuantOptions options) {
  return detail::analyze_t(model, target_set, options);
}

std::vector<QuantResult> analyze(const Model& model, const std::vector<std::uint64_t>& targets,
                                 QuantOptions options) {
  GDP_CHECK_MSG(options.epsilon > 0.0, "quant::analyze needs epsilon > 0");
  GDP_CHECK_MSG(model.num_phils() <= 64,
                "quant::analyze: target masks are 64-bit, so at most 64 philosophers are "
                "supported, got "
                    << model.num_phils());
  for (const std::uint64_t target_set : targets) {
    GDP_CHECK_MSG(target_set != 0, "quant::analyze needs non-empty target sets");
  }
  detail::SharedSweeps shared = detail::make_shared_sweeps(model, options.check_options());
  std::vector<QuantResult> results;
  results.reserve(targets.size());
  // Targets run in sequence (each one's sweeps already parallelize over the
  // pool); only the SharedSweeps state crosses between them, so every entry
  // matches the single-target call bit for bit.
  for (const std::uint64_t target_set : targets) {
    results.push_back(detail::analyze_one(model, target_set, options, shared));
  }
  return results;
}

QuantResult analyze(const algos::Algorithm& algo, const graph::Topology& t, QuantOptions options,
                    std::uint64_t target_set) {
  const Model model = par::explore(algo, t, options.check_options());
  return analyze(model, target_set, options);
}

}  // namespace gdp::mdp::quant
