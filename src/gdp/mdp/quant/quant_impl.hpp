// Template definitions of the quantitative analysis pipeline, generalized
// over any type exposing the Model read API. Instantiated for `Model`
// (quant.cpp) and for `store::ChunkedModel` (store.cpp — the chunk-native
// verdict path): every interval endpoint and sweep count is bit-identical
// on both paths because the model is only read here, through one shared
// definition.
//
// Everything runs on the MEC quotient of the relevant fragment. Collapsing
// maximal end components is what makes iteration-from-above meaningful: the
// quotient graph provably has no end components besides its terminals (an EC
// spanning quotient nodes would project back to an EC of the fragment, which
// is contained in a MEC — contradiction with crossing distinct nodes), so
// the reach/time Bellman operators have unique fixed points over it, and
// upper iterates cannot stall on a spurious cyclic fixed point.
//
// Quotient layout: one node per non-terminal state class (a MEC, or a
// single state outside every MEC), node-major CSR of EXTERNAL actions (a
// member state's action is internal — and dropped — iff every outcome stays
// in the same MEC; singleton non-MEC states cannot have fully-internal
// actions, or they would be an EC themselves). Node ids, action order and
// outcome order are assigned by one ascending state scan, so the quotient
// bytes are identical for every thread count; the parallel passes only fill
// precomputed disjoint ranges. Once built, the quotient is a compact
// self-contained structure: the Bellman sweeps over it never touch the
// model again, which is what keeps the chunk-native path's working set to
// the hot chunks plus the quotient.
//
// All Bellman sweeps are Jacobi (read prev, write next) with monotone
// clamps (lower = max(old, T(old)), upper = min(old, T(old)) — both sides
// of each clamp are valid bounds, so clamping preserves soundness and
// enforces the monotonicity the property tests pin). Expected-time upper
// bounds come from optimistic value iteration: guess U = (1 + d) * L,
// accept only when T(U) <= U pointwise (which proves U >= the true value
// by monotone unrolling), then co-iterate both bounds down to epsilon.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "gdp/common/check.hpp"
#include "gdp/common/pool.hpp"
#include "gdp/mdp/par/end_components_impl.hpp"
#include "gdp/mdp/quant/quant.hpp"
#include "gdp/obs/obs.hpp"
#include "gdp/obs/timeline.hpp"

namespace gdp::mdp::quant::detail {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// Sentinels shared by node_of (state -> class) and dest (outcome target).
inline constexpr std::uint32_t kGoal = 0xFFFFFFFFu;     // target terminal
inline constexpr std::uint32_t kUnknown = 0xFFFFFFFEu;  // frontier terminal
inline constexpr std::uint32_t kAbsent = 0xFFFFFFFDu;   // unreachable state (never referenced)

inline bool is_node(std::uint32_t c) { return c < kAbsent; }

/// Runs body(lo, hi) over [0, total): inline when the domain is small or
/// threads == 1, otherwise in fixed 2048-index chunks on the pool. Chunk
/// boundaries depend only on total, and every chunk writes disjoint ranges,
/// so results are identical either way.
inline void for_range(std::size_t total, int threads, bool parallel,
                      const std::function<void(std::size_t, std::size_t)>& body) {
  constexpr std::size_t kChunk = 2'048;
  if (total == 0) return;
  if (!parallel || threads == 1 || total < 2 * kChunk) {
    body(0, total);
    return;
  }
  const std::size_t chunks = (total + kChunk - 1) / kChunk;
  common::parallel_for(chunks, threads, [&](std::uint32_t c) {
    body(std::size_t{c} * kChunk, std::min(total, (std::size_t{c} + 1) * kChunk));
  });
}

/// The MEC quotient of one fragment of the model (see file comment).
struct Quotient {
  std::uint32_t num_nodes = 0;
  std::uint32_t initial = kAbsent;  // class of model.initial()

  std::vector<std::uint32_t> node_of;  // state -> node id / kGoal / kUnknown / kAbsent
  std::vector<std::int32_t> mec_node;  // mec index -> node id (-1: no reachable member)

  // Node-major CSR of external actions.
  std::vector<std::size_t> act_off;  // num_nodes + 1
  std::vector<std::size_t> out_off;  // act_off[num_nodes] + 1
  std::vector<double> prob;
  std::vector<std::uint32_t> dest;  // node id / kGoal / kUnknown

  bool has_actions(std::uint32_t q) const { return act_off[q + 1] > act_off[q]; }

  /// Nodes reachable from `initial` along quotient edges (empty when the
  /// initial state is itself a terminal).
  std::vector<std::uint8_t> reachable_nodes() const {
    std::vector<std::uint8_t> seen(num_nodes, 0);
    if (!is_node(initial)) return seen;
    std::vector<std::uint32_t> stack{initial};
    seen[initial] = 1;
    while (!stack.empty()) {
      const std::uint32_t q = stack.back();
      stack.pop_back();
      for (std::size_t a = act_off[q]; a < act_off[q + 1]; ++a) {
        for (std::size_t o = out_off[a]; o < out_off[a + 1]; ++o) {
          const std::uint32_t d = dest[o];
          if (is_node(d) && !seen[d]) {
            seen[d] = 1;
            stack.push_back(d);
          }
        }
      }
    }
    return seen;
  }
};

/// Builds the quotient over the `reached` states. States matching
/// `target_mask` eaters become the kGoal terminal when `target_terminal`
/// (the reach-target quotients) and ordinary states otherwise (the p_trap
/// quotient, where meals are just states on the way); frontier states are
/// always the kUnknown terminal. `mecs` must be the MEC decomposition of
/// exactly this fragment (avoid_set == target_mask when target_terminal,
/// avoid_set == 0 otherwise).
template <class ModelT>
Quotient build_quotient(const ModelT& model, const std::vector<EndComponent>& mecs,
                        const std::vector<bool>& reached, std::uint64_t target_mask,
                        bool target_terminal, const QuantOptions& options) {
  const std::size_t n = model.num_states();
  const int phils = model.num_phils();
  const bool parallel = n >= options.seq_sweep_threshold;

  Quotient q;
  q.node_of.assign(n, kAbsent);
  q.mec_node.assign(mecs.size(), -1);

  // MEC membership per state (members are disjoint across MECs).
  std::vector<std::int32_t> mec_of(n, -1);
  for (std::size_t m = 0; m < mecs.size(); ++m) {
    for (const StateId s : mecs[m].states) mec_of[s] = static_cast<std::int32_t>(m);
  }

  // Class assignment: one ascending scan (deterministic node numbering).
  auto classify = [&](StateId s) -> std::uint32_t {
    if (target_terminal && (model.eaters(s) & target_mask) != 0) return kGoal;
    if (model.frontier(s)) return kUnknown;
    return kAbsent;  // a node; id assigned below
  };
  for (StateId s = 0; s < n; ++s) {
    if (!reached[s]) continue;
    const std::uint32_t c = classify(s);
    if (c != kAbsent) {
      q.node_of[s] = c;
      continue;
    }
    const std::int32_t m = mec_of[s];
    if (m >= 0) {
      if (q.mec_node[m] < 0) q.mec_node[m] = static_cast<std::int32_t>(q.num_nodes++);
      q.node_of[s] = static_cast<std::uint32_t>(q.mec_node[m]);
    } else {
      q.node_of[s] = q.num_nodes++;
    }
  }
  q.initial = reached[model.initial()] ? q.node_of[model.initial()] : kAbsent;

  // External-action and outcome counts per state (parallel; disjoint writes).
  std::vector<std::uint32_t> act_count(n, 0), out_count(n, 0);
  for_range(n, options.threads, parallel, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t s = lo; s < hi; ++s) {
      if (!is_node(q.node_of[s])) continue;
      const std::uint32_t me = q.node_of[s];
      const bool in_mec = mec_of[s] >= 0;
      std::uint32_t acts = 0, outs = 0;
      for (int p = 0; p < phils; ++p) {
        const auto [begin, end] = model.row(static_cast<StateId>(s), p);
        if (begin == end) continue;
        if (in_mec) {
          bool internal = true;
          for (const Outcome* o = begin; o != end && internal; ++o) {
            internal = q.node_of[o->next] == me;
          }
          if (internal) continue;  // dwell inside the MEC: collapsed away
        }
        ++acts;
        outs += static_cast<std::uint32_t>(end - begin);
      }
      act_count[s] = acts;
      out_count[s] = outs;
    }
  });

  // Per-node offsets and per-state write bases, in (node, member-state
  // ascending) order — one sequential prefix pass, as in par::explore.
  std::vector<std::size_t> act_base(n, 0), out_base(n, 0);
  q.act_off.assign(q.num_nodes + 1, 0);
  {
    // Members of node q in ascending state order: reconstructed from the
    // ascending scan that assigned the ids (MEC state lists are ascending).
    std::vector<std::vector<StateId>> members(q.num_nodes);
    for (StateId s = 0; s < n; ++s) {
      if (is_node(q.node_of[s])) members[q.node_of[s]].push_back(s);
    }
    std::size_t next_act = 0, next_out = 0;
    for (std::uint32_t node = 0; node < q.num_nodes; ++node) {
      for (const StateId s : members[node]) {
        act_base[s] = next_act;
        out_base[s] = next_out;
        next_act += act_count[s];
        next_out += out_count[s];
      }
      q.act_off[node + 1] = next_act;
    }
    q.out_off.assign(next_act + 1, 0);
    q.prob.resize(next_out);
    q.dest.resize(next_out);
  }

  // Fill (parallel; each state owns its precomputed ranges).
  for_range(n, options.threads, parallel, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t s = lo; s < hi; ++s) {
      if (!is_node(q.node_of[s])) continue;
      const std::uint32_t me = q.node_of[s];
      const bool in_mec = mec_of[s] >= 0;
      std::size_t a = act_base[s];
      std::size_t o_at = out_base[s];
      for (int p = 0; p < phils; ++p) {
        const auto [begin, end] = model.row(static_cast<StateId>(s), p);
        if (begin == end) continue;
        if (in_mec) {
          bool internal = true;
          for (const Outcome* o = begin; o != end && internal; ++o) {
            internal = q.node_of[o->next] == me;
          }
          if (internal) continue;
        }
        for (const Outcome* o = begin; o != end; ++o) {
          q.prob[o_at] = static_cast<double>(o->prob);
          q.dest[o_at] = q.node_of[o->next];
          ++o_at;
        }
        q.out_off[a + 1] = o_at;  // row end; globally monotone by construction
        ++a;
      }
    }
  });
  return q;
}

/// Per-iteration bookkeeping shared by the kernels.
struct Phase {
  std::size_t sweeps = 0;
  bool converged = false;
};

/// One max-Bellman evaluation of node `i` against value vector `val`.
/// `goal` / `unknown` are the terminal values, `cost` is 1 for expected
/// times and 0 for probabilities. Nodes without external actions return
/// `sink` (never reach the goal: probability 0 / time +inf).
inline double bell_max(const Quotient& q, std::uint32_t i, const std::vector<double>& val,
                       double goal, double unknown, double cost, double sink) {
  double best = -kInf;
  for (std::size_t a = q.act_off[i]; a < q.act_off[i + 1]; ++a) {
    double acc = cost;
    for (std::size_t o = q.out_off[a]; o < q.out_off[a + 1]; ++o) {
      const std::uint32_t d = q.dest[o];
      const double v = d == kGoal ? goal : d == kUnknown ? unknown : val[d];
      acc += q.prob[o] * v;
    }
    best = std::max(best, acc);
  }
  return best == -kInf ? sink : best;
}

/// Interval iteration for max reachability probability on the quotient.
/// `pinned[i]` >= 0 fixes node i at that value in both bounds (used for the
/// fair-trap goals of the p_min computation). goal_value is the value of
/// the kGoal terminal; the kUnknown terminal is 0 in the lower bound and 1
/// in the upper bound (that is what "sound on truncated models" means).
/// Returns per-node bounds in lo/hi.
inline Phase iterate_reach_max(const Quotient& q, const std::vector<double>& pinned,
                               double goal_value, const QuantOptions& options,
                               std::vector<double>& lo, std::vector<double>& hi) {
  const std::size_t n = q.num_nodes;
  const bool parallel = n >= options.seq_sweep_threshold;
  lo.assign(n, 0.0);
  hi.assign(n, 1.0);
  std::vector<double> lo2(n), hi2(n);
  std::vector<std::uint8_t> fixed(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (pinned[i] >= 0.0) {
      lo[i] = hi[i] = lo2[i] = hi2[i] = pinned[i];
      fixed[i] = 1;
    } else if (!q.has_actions(i)) {
      lo[i] = hi[i] = lo2[i] = hi2[i] = 0.0;  // no way out: the goal is never reached
      fixed[i] = 1;
    }
  }

  Phase phase;
  if (n == 0) {
    phase.converged = true;
    return phase;
  }
  // Timeline: one slice per reachability phase, with a live bracket-width
  // sample per sweep (mirrored into a timing gauge for the heartbeat
  // sampler — parts-per-billion so it fits the integer metric tables).
  obs::timeline::ScopedSlice phase_slice("quant.reach_phase");
  static obs::Gauge& width_gauge =
      obs::Registry::global().gauge("quant.bracket_width_ppb", obs::Plane::kTiming);
  while (phase.sweeps < options.max_iterations) {
    for_range(n, options.threads, parallel, [&](std::size_t a, std::size_t b) {
      for (std::size_t i = a; i < b; ++i) {
        if (fixed[i]) continue;
        const auto node = static_cast<std::uint32_t>(i);
        // The [0, 1] clamp keeps float rounding honest: outcome
        // probabilities are stored as floats and a row's mass can sum to
        // just above 1, which would otherwise push a "lower bound" past
        // the true probability ceiling.
        lo2[i] = std::min(1.0, std::max(lo[i], bell_max(q, node, lo, goal_value, 0.0, 0.0, 0.0)));
        hi2[i] = std::max(0.0, std::min(hi[i], bell_max(q, node, hi, goal_value, 1.0, 0.0, 0.0)));
      }
    });
    lo.swap(lo2);
    hi.swap(hi2);
    ++phase.sweeps;
    const double width = common::parallel_chunk_max(n, options.threads,
                                                    [&](std::size_t a, std::size_t b) {
                                                      double w = 0.0;
                                                      for (std::size_t i = a; i < b; ++i) {
                                                        w = std::max(w, hi[i] - lo[i]);
                                                      }
                                                      return w;
                                                    });
    obs::timeline::counter_sample("quant.bracket_width", width);
    width_gauge.set(static_cast<std::uint64_t>(width * 1e9));
    if (width <= options.epsilon) {
      phase.converged = true;
      break;
    }
    // Stall detection: when both bounds have (numerically) stopped moving
    // the remaining width is irreducible — frontier mass on a truncated
    // model, or a float-locked gap — and further sweeps cannot certify.
    // lo2/hi2 hold the previous sweep after the swaps above.
    const double moved = common::parallel_chunk_max(
        n, options.threads, [&](std::size_t a, std::size_t b) {
          double d = 0.0;
          for (std::size_t i = a; i < b; ++i) {
            d = std::max(d, std::max(lo[i] - lo2[i], hi2[i] - hi[i]));
          }
          return d;
        });
    if (moved <= options.epsilon * 1e-3) break;  // honest non-convergence
  }
  return phase;
}

/// Shared lower-iterate / optimistic-upper-verify driver for the two
/// expected-time kernels. `update_lower(i)` returns the clamped next lower
/// value of element i; `apply_upper(src, dst)` writes one Bellman sweep of
/// the candidate upper bound; `active(i)` selects the domain. On truncated
/// models (`complete` == false) only the lower bound is iterated — frontier
/// states forbid any finite upper certificate.
///
/// The verification step is the OVI argument: if T(U) <= U pointwise then
/// monotone unrolling gives U >= E[truncated k-step cost] for every k, so U
/// bounds the true expectation; afterwards both bounds move monotonically
/// (lower is max-clamped, T keeps the verified upper decreasing) until
/// their gap is <= epsilon on every active, finite element. An element
/// whose LOWER bound diverges to +inf is a certificate of infinity in
/// itself and is excluded from the width test ([inf, inf] has width 0).
template <typename Active, typename UpdateLower, typename ApplyUpper>
Phase drive_time_bounds(std::size_t n, bool complete, const QuantOptions& options,
                        const Active& active, const UpdateLower& update_lower,
                        const ApplyUpper& apply_upper, std::vector<double>& lo,
                        std::vector<double>& hi) {
  const bool parallel = n >= options.seq_sweep_threshold;
  lo.assign(n, 0.0);
  hi.assign(n, kInf);
  std::vector<double> lo2(lo), up(n, 0.0), up2(n, 0.0);

  obs::timeline::ScopedSlice phase_slice("quant.time_phase");
  Phase phase;
  auto sweep_lower = [&] {
    for_range(n, options.threads, parallel, [&](std::size_t a, std::size_t b) {
      for (std::size_t i = a; i < b; ++i) {
        if (active(i)) lo2[i] = std::max(lo[i], update_lower(i, lo));
      }
    });
    lo.swap(lo2);
    ++phase.sweeps;
  };
  auto residual = [&] {
    // lo2 holds the previous sweep after the swap; infinite entries are
    // converged-at-infinity and do not gate the residual.
    return common::parallel_chunk_max(n, options.threads, [&](std::size_t a, std::size_t b) {
      double r = 0.0;
      for (std::size_t i = a; i < b; ++i) {
        if (active(i) && std::isfinite(lo[i])) r = std::max(r, lo[i] - lo2[i]);
      }
      return r;
    });
  };
  auto gap = [&] {
    return common::parallel_chunk_max(n, options.threads, [&](std::size_t a, std::size_t b) {
      double w = 0.0;
      for (std::size_t i = a; i < b; ++i) {
        if (active(i) && std::isfinite(lo[i])) w = std::max(w, up[i] - lo[i]);
      }
      return w;
    });
  };

  const std::size_t budget = options.max_iterations;
  if (!complete) {
    while (phase.sweeps < budget) {
      sweep_lower();
      if (residual() <= options.epsilon / 8.0) break;
    }
    return phase;  // lower bound only; never converged in the certified sense
  }

  // Warm the lower bound until it is nearly stationary, then guess-and-
  // verify upper bounds. The guess inflates MULTIPLICATIVELY: for the
  // unit-cost Bellman operator T(x) = cost + extremum of averages,
  // T((1+d)L) = (1+d)T(L) - d exactly, so T(U) <= U reduces to the residual
  // condition T(L) - L <= d/(1+d) — reachable by plain lower iteration. An
  // ADDITIVE offset can never verify here: probabilities sum to 1, so
  // T(L+c) = T(L)+c wherever no outcome leaves for a terminal. The round
  // cap bounds the damage when no finite upper bound exists (an unnoticed
  // infinite value): each failed round grows the inflation 8x and doubles
  // the warm-up, far more than any converging instance needs.
  double inflate = std::max(options.epsilon, 1e-9);
  std::size_t warm = 64;
  for (int round = 0; round < 24 && phase.sweeps < budget; ++round) {
    for (std::size_t k = 0; k < warm && phase.sweeps < budget; ++k) {
      sweep_lower();
      if (residual() <= options.epsilon / 8.0) break;
    }

    for (std::size_t i = 0; i < n; ++i) up[i] = active(i) ? lo[i] * (1.0 + inflate) : 0.0;
    for_range(n, options.threads, parallel, [&](std::size_t a, std::size_t b) {
      for (std::size_t i = a; i < b; ++i) {
        if (active(i)) up2[i] = apply_upper(i, up);
      }
    });
    ++phase.sweeps;
    bool valid = true;
    for (std::size_t i = 0; i < n && valid; ++i) {
      if (active(i)) valid = up2[i] <= up[i];
    }
    if (!valid) {
      inflate *= 8.0;
      warm *= 2;
      continue;
    }

    // Verified: T(up) <= up, so further applications keep decreasing while
    // staying true upper bounds. Co-iterate both sides down to epsilon,
    // bailing out honestly if the gap float-locks above it.
    up.swap(up2);
    double last_gap = kInf;
    int stalls = 0;
    while (phase.sweeps < budget) {
      const double g = gap();
      if (g <= options.epsilon) {
        phase.converged = true;
        break;
      }
      if (g >= last_gap) {
        if (++stalls >= 8) break;
      } else {
        stalls = 0;
      }
      last_gap = g;
      sweep_lower();
      for_range(n, options.threads, parallel, [&](std::size_t a, std::size_t b) {
        for (std::size_t i = a; i < b; ++i) {
          if (active(i)) up2[i] = std::min(up[i], apply_upper(i, up));
        }
      });
      up.swap(up2);
    }
    if (phase.converged) {
      for (std::size_t i = 0; i < n; ++i) {
        if (active(i) && std::isfinite(lo[i])) hi[i] = up[i];
      }
    }
    break;
  }
  return phase;
}

/// Max expected steps on the quotient (each external action costs one
/// step), over the `domain` nodes (quotient-reachable from the initial
/// node; everything a domain node can reach is again in the domain). A
/// dead-end node (no external actions) in the domain gets a +inf lower
/// bound, which propagates soundly through the max.
inline Phase iterate_time_max(const Quotient& q, const std::vector<std::uint8_t>& domain,
                              bool complete, const QuantOptions& options, std::vector<double>& lo,
                              std::vector<double>& hi) {
  auto bell = [&q](std::size_t i, const std::vector<double>& val) {
    return bell_max(q, static_cast<std::uint32_t>(i), val, 0.0, 0.0, 1.0, kInf);
  };
  return drive_time_bounds(
      q.num_nodes, complete, options, [&](std::size_t i) { return domain[i] != 0; }, bell, bell,
      lo, hi);
}

/// Min expected steps over the RAW states of the meal-free-reachable
/// fragment (`domain`), every step charged. Target states are 0-cost
/// terminals; frontier states count 0 in the lower bound (sound: the
/// truncated continuation could eat immediately) and block certification
/// via `complete`. Actions with an outcome in `bad` — states whose
/// certified Pmax upper bound is below 1, where the expectation is
/// infinite — are forbidden, exactly as the true minimizer forbids them;
/// a state with no permitted action gets a +inf lower bound (a certificate
/// of infinity) that propagates soundly through the min.
template <class ModelT>
Phase iterate_time_min(const ModelT& model, std::uint64_t target_mask,
                       const std::vector<std::uint8_t>& domain,
                       const std::vector<std::uint8_t>& bad, const QuantOptions& options,
                       std::vector<double>& lo, std::vector<double>& hi) {
  const int phils = model.num_phils();
  auto bell = [&](std::size_t i, const std::vector<double>& val) {
    const auto s = static_cast<StateId>(i);
    double best = kInf;
    for (int p = 0; p < phils; ++p) {
      const auto [begin, end] = model.row(s, p);
      if (begin == end) continue;
      double acc = 1.0;
      bool ok = true;
      for (const Outcome* o = begin; o != end && ok; ++o) {
        if ((model.eaters(o->next) & target_mask) != 0) continue;  // terminal, 0 steps left
        if (bad[o->next]) {
          ok = false;
          break;
        }
        acc += static_cast<double>(o->prob) * (model.frontier(o->next) ? 0.0 : val[o->next]);
      }
      if (ok) best = std::min(best, acc);
    }
    return best;
  };
  return drive_time_bounds(
      model.num_states(), !model.truncated(), options,
      [&](std::size_t i) { return domain[i] != 0 && !bad[i]; }, bell, bell, lo, hi);
}

/// Raw states reachable from the initial state through meal-free expanded
/// states only (the state-level mirror of the quotient's reachable set,
/// needed because e_min charges MEC-internal steps the quotient drops).
template <class ModelT>
std::vector<std::uint8_t> fragment_reachable(const ModelT& model, std::uint64_t target_mask) {
  std::vector<std::uint8_t> seen(model.num_states(), 0);
  const StateId init = model.initial();
  if ((model.eaters(init) & target_mask) != 0 || model.frontier(init)) return seen;
  std::vector<StateId> stack{init};
  seen[init] = 1;
  while (!stack.empty()) {
    const StateId s = stack.back();
    stack.pop_back();
    for (int p = 0; p < model.num_phils(); ++p) {
      const auto [begin, end] = model.row(s, p);
      for (const Outcome* o = begin; o != end; ++o) {
        const StateId t = o->next;
        if (seen[t] || (model.eaters(t) & target_mask) != 0 || model.frontier(t)) continue;
        seen[t] = 1;
        stack.push_back(t);
      }
    }
  }
  return seen;
}

/// Orders the endpoints: double rounding can leave a lower iterate a few
/// ulps above the upper one once both are within epsilon of the true value.
inline Interval make_interval(double lo, double hi) {
  return lo <= hi ? Interval{lo, hi} : Interval{hi, lo};
}

/// Target-independent state shared across the targets of one multi-target
/// analyze() call: the reachable-state BFS up front, and the full-model
/// pieces p_trap needs (MECs with avoid_set = 0 and the target_terminal =
/// false quotient — build_quotient ignores the target mask there) built
/// lazily on first demand, since targets with no fair avoiding MEC on a
/// complete model never touch them.
struct SharedSweeps {
  std::vector<bool> reached;
  bool complete = false;

  bool full_built = false;
  std::vector<EndComponent> full_mecs;
  Quotient full_q;

  template <class ModelT>
  void ensure_full(const ModelT& model, const par::CheckOptions& co,
                   const QuantOptions& options) {
    if (full_built) return;
    full_mecs = par::detail::maximal_end_components_t(model, 0, co);
    full_q = build_quotient(model, full_mecs, reached, /*target_mask=*/0,
                            /*target_terminal=*/false, options);
    full_built = true;
  }
};

template <class ModelT>
SharedSweeps make_shared_sweeps(const ModelT& model, const par::CheckOptions& co) {
  SharedSweeps shared;
  shared.complete = !model.truncated();
  shared.reached = par::detail::reachable_states_t(model, co);
  return shared;
}

/// The per-target core: everything in analyze() that depends on the target
/// mask. Reads the target-independent sweeps from `shared` (building the
/// full-model pieces lazily), so n targets cost one reachability BFS and at
/// most one full MEC decomposition between them.
template <class ModelT>
QuantResult analyze_one(const ModelT& model, std::uint64_t target_set,
                        const QuantOptions& options, SharedSweeps& shared) {
  obs::TimedSpan span("quant.analyze");
  QuantResult result;
  result.target_set = target_set;
  result.num_states = model.num_states();
  result.epsilon = options.epsilon;

  const bool complete = shared.complete;
  const auto co = options.check_options();
  const std::vector<bool>& reached = shared.reached;

  // MECs of the meal-free fragment, and which of them are fair traps.
  const std::vector<EndComponent> mecs =
      par::detail::maximal_end_components_t(model, target_set, co);
  result.num_avoid_mecs = mecs.size();
  std::vector<std::uint8_t> fair_mec(mecs.size(), 0);
  for (std::size_t m = 0; m < mecs.size(); ++m) {
    fair_mec[m] = mecs[m].fair(model.num_phils()) ? 1 : 0;
    result.num_fair_avoid_mecs += fair_mec[m];
  }

  const Quotient fq =
      build_quotient(model, mecs, reached, target_set, /*target_terminal=*/true, options);
  result.num_quotient_nodes = fq.num_nodes;

  const std::vector<std::uint8_t> node_reach = fq.reachable_nodes();
  std::vector<std::uint8_t> fair_node(fq.num_nodes, 0);
  for (std::size_t m = 0; m < mecs.size(); ++m) {
    if (fair_mec[m] && fq.mec_node[m] >= 0) fair_node[fq.mec_node[m]] = 1;
  }
  for (std::uint32_t i = 0; i < fq.num_nodes; ++i) {
    if (fair_node[i] && node_reach[i]) result.fair_trap_reachable = true;
  }
  if (is_node(fq.initial) && fair_node[fq.initial]) result.fair_trap_reachable = true;

  const bool initial_target = fq.initial == kGoal;
  const bool initial_unknown = fq.initial == kUnknown || fq.initial == kAbsent;

  bool all_converged = true;
  // One phase's bookkeeping: per-phase sweep slot, the running total, and
  // the stall count (a phase that ran but ended uncertified).
  auto note = [&](std::size_t& slot, const Phase& phase) {
    slot = phase.sweeps;
    result.sweeps += phase.sweeps;
    all_converged = all_converged && phase.converged;
    if (!phase.converged) ++result.stats.stalled_phases;
  };
  std::vector<double> lo, hi;
  std::vector<double> hi_pmax;  // per-node Pmax upper bounds, kept for e_min

  // --- p_max: max P(reach the target eating set). ---
  if (initial_target) {
    result.p_max = {1.0, 1.0};
  } else if (initial_unknown) {
    result.p_max = {0.0, 1.0};
    all_converged = false;
  } else {
    const std::vector<double> no_pins(fq.num_nodes, -1.0);
    const Phase phase = iterate_reach_max(fq, no_pins, /*goal_value=*/1.0, options, lo, hi_pmax);
    note(result.stats.p_max_sweeps, phase);
    result.p_max = make_interval(lo[fq.initial], hi_pmax[fq.initial]);
  }

  // --- p_min = 1 - Pmax[fragment](reach a fair avoiding MEC). ---
  if (initial_target) {
    result.p_min = {1.0, 1.0};
  } else if (initial_unknown) {
    result.p_min = {0.0, 1.0};
    all_converged = false;
  } else if (!result.fair_trap_reachable && complete) {
    result.p_min = {1.0, 1.0};  // qualitative: no meal-free path to any fair trap
  } else {
    std::vector<double> pins(fq.num_nodes, -1.0);
    for (std::uint32_t i = 0; i < fq.num_nodes; ++i) {
      if (fair_node[i]) pins[i] = 1.0;  // the trap itself: confinement is free from here
    }
    // Reaching a meal first escapes the trap for good: kGoal counts 0.
    const Phase phase = iterate_reach_max(fq, pins, /*goal_value=*/0.0, options, lo, hi);
    note(result.stats.p_min_sweeps, phase);
    result.p_min = make_interval(1.0 - hi[fq.initial], 1.0 - lo[fq.initial]);
  }

  // --- e_min: best-case expected steps to the first meal. ---
  if (initial_target) {
    result.e_min = {0.0, 0.0};
  } else if (initial_unknown) {
    result.e_min = {0.0, kInf};
    all_converged = false;
  } else if (result.p_max.upper < 1.0) {
    // Pmax < 1 certified (the upper bound is sound even on truncated
    // models): some mass never eats, so the expectation is infinite.
    result.e_min = {kInf, kInf};
  } else {
    const std::vector<std::uint8_t> domain = fragment_reachable(model, target_set);
    // States whose certified Pmax upper bound is below 1 have infinite
    // expected time under every adversary; the minimizer never enters them.
    std::vector<std::uint8_t> bad(model.num_states(), 0);
    if (!hi_pmax.empty()) {
      for (StateId s = 0; s < model.num_states(); ++s) {
        if (is_node(fq.node_of[s]) && hi_pmax[fq.node_of[s]] < 1.0) bad[s] = 1;
      }
    }
    const Phase phase = iterate_time_min(model, target_set, domain, bad, options, lo, hi);
    note(result.stats.e_min_sweeps, phase);
    result.e_min = make_interval(lo[model.initial()], hi[model.initial()]);
  }

  // --- e_max: worst-case expected productive steps (see quant.hpp). ---
  if (initial_target) {
    result.e_max = {0.0, 0.0};
  } else if (initial_unknown) {
    result.e_max = {0.0, kInf};
    all_converged = false;
  } else if (result.fair_trap_reachable) {
    // A fair adversary parks in the trap with positive probability and the
    // first meal never comes: infinite, certified by the qualitative BFS.
    result.e_max = {kInf, kInf};
  } else {
    const Phase phase = iterate_time_max(fq, node_reach, complete, options, lo, hi);
    note(result.stats.e_max_sweeps, phase);
    result.e_max = make_interval(lo[fq.initial], hi[fq.initial]);
  }

  // --- p_trap: max P(reach a fair avoiding MEC), meals allowed en route. ---
  if (result.num_fair_avoid_mecs == 0 && complete) {
    result.p_trap = {0.0, 0.0};
  } else {
    shared.ensure_full(model, co, options);
    const Quotient& full_q = shared.full_q;
    // Goal nodes: full-model MEC classes holding a fair-trap state (from
    // anywhere in such a MEC the trap is internally reachable with
    // probability 1, so the whole class counts as reached).
    std::vector<double> pins(full_q.num_nodes, -1.0);
    for (std::size_t m = 0; m < mecs.size(); ++m) {
      if (!fair_mec[m]) continue;
      for (const StateId s : mecs[m].states) {
        if (reached[s] && is_node(full_q.node_of[s])) pins[full_q.node_of[s]] = 1.0;
      }
    }
    if (full_q.initial == kUnknown || full_q.initial == kAbsent) {
      result.p_trap = {0.0, 1.0};
      all_converged = false;
    } else {
      const Phase phase = iterate_reach_max(full_q, pins, /*goal_value=*/0.0, options, lo, hi);
      note(result.stats.p_trap_sweeps, phase);
      result.p_trap = make_interval(lo[full_q.initial], hi[full_q.initial]);
    }
  }

  result.certainty = !complete           ? Certainty::kTruncated
                     : all_converged     ? Certainty::kCertified
                                         : Certainty::kIterationLimit;

  // Deterministic plane: sweep counts stop on thresholds of bit-identical
  // parallel_chunk_max residuals, so they are thread-count invariant.
  static obs::Counter& analyses = obs::Registry::global().counter("quant.analyses");
  static obs::Counter& sweeps_ctr = obs::Registry::global().counter("quant.sweeps");
  static obs::Counter& stalls_ctr = obs::Registry::global().counter("quant.stalled_phases");
  static obs::Histogram& sweeps_hist = obs::Registry::global().histogram("quant.analysis_sweeps");
  analyses.increment();
  sweeps_ctr.add(result.sweeps);
  stalls_ctr.add(result.stats.stalled_phases);
  sweeps_hist.record(result.sweeps);
  return result;
}

/// Single-target entry with the argument checks of the public analyze();
/// the one definition both Model and ChunkedModel verdicts go through.
template <class ModelT>
QuantResult analyze_t(const ModelT& model, std::uint64_t target_set, const QuantOptions& options) {
  GDP_CHECK_MSG(options.epsilon > 0.0, "quant::analyze needs epsilon > 0");
  GDP_CHECK_MSG(target_set != 0, "quant::analyze needs a non-empty target set");
  // target_set is one 64-bit mask (bit p = philosopher p): beyond 64
  // philosophers the mask cannot address every philosopher and verdicts
  // would be silently wrong. Model construction refuses such models too;
  // this guards hand-built callers at the mask entry point.
  GDP_CHECK_MSG(model.num_phils() <= 64,
                "quant::analyze: target masks are 64-bit, so at most 64 philosophers are "
                "supported, got "
                    << model.num_phils());
  SharedSweeps shared = make_shared_sweeps(model, options.check_options());
  return analyze_one(model, target_set, options, shared);
}

}  // namespace gdp::mdp::quant::detail
