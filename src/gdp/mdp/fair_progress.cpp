#include "gdp/mdp/fair_progress.hpp"

#include <sstream>

#include "gdp/mdp/fair_progress_impl.hpp"

namespace gdp::mdp {

const char* to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::kProgressCertain: return "progress w.p. 1 (certified)";
    case Verdict::kProgressFails: return "NO progress (fair trap exists)";
    case Verdict::kUnknownTruncated: return "unknown (state space truncated)";
  }
  return "?";
}

std::string FairProgressResult::summary() const {
  std::ostringstream out;
  out << to_string(verdict) << " — " << num_states << " states, " << num_mecs
      << " restricted MECs, " << num_fair_mecs << " fair";
  if (witness_size != 0) out << ", witness EC of " << witness_size << " states";
  return out.str();
}

namespace detail {

FairProgressResult verdict_from_mecs(const Model& model, std::uint64_t set_mask,
                                     const std::vector<EndComponent>& mecs) {
  return verdict_from_mecs_t(model, set_mask, mecs, reachable_states(model));
}

FairProgressResult verdict_from_mecs(const Model& model, std::uint64_t set_mask,
                                     const std::vector<EndComponent>& mecs,
                                     const std::vector<bool>& reached) {
  return verdict_from_mecs_t(model, set_mask, mecs, reached);
}

}  // namespace detail

FairProgressResult check_fair_progress(const Model& model, std::uint64_t set_mask) {
  return detail::verdict_from_mecs(model, set_mask, maximal_end_components(model, set_mask));
}

FairProgressResult check_lockout_freedom(const Model& model, PhilId victim) {
  return check_fair_progress(model, std::uint64_t{1} << victim);
}

FairProgressResult check_fair_progress(const algos::Algorithm& algo, const graph::Topology& t,
                                       std::size_t max_states, std::uint64_t set_mask) {
  const Model model = explore(algo, t, max_states);
  return check_fair_progress(model, set_mask);
}

}  // namespace gdp::mdp
