#include "gdp/mdp/fair_progress.hpp"

#include <algorithm>
#include <sstream>

namespace gdp::mdp {

const char* to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::kProgressCertain: return "progress w.p. 1 (certified)";
    case Verdict::kProgressFails: return "NO progress (fair trap exists)";
    case Verdict::kUnknownTruncated: return "unknown (state space truncated)";
  }
  return "?";
}

std::string FairProgressResult::summary() const {
  std::ostringstream out;
  out << to_string(verdict) << " — " << num_states << " states, " << num_mecs
      << " restricted MECs, " << num_fair_mecs << " fair";
  if (witness_size != 0) out << ", witness EC of " << witness_size << " states";
  return out.str();
}

namespace detail {

FairProgressResult verdict_from_mecs(const Model& model, std::uint64_t set_mask,
                                     const std::vector<EndComponent>& mecs) {
  return verdict_from_mecs(model, set_mask, mecs, reachable_states(model));
}

FairProgressResult verdict_from_mecs(const Model& model, std::uint64_t set_mask,
                                     const std::vector<EndComponent>& mecs,
                                     const std::vector<bool>& reached) {
  FairProgressResult result;
  result.avoid_set = set_mask;
  result.num_states = model.num_states();
  result.num_mecs = mecs.size();

  for (const EndComponent& mec : mecs) {
    if (!mec.fair(model.num_phils())) continue;
    ++result.num_fair_mecs;
    const bool reachable = std::any_of(mec.states.begin(), mec.states.end(),
                                       [&](StateId s) { return reached[s]; });
    if (reachable && result.witness_size == 0) {
      result.witness_size = mec.states.size();
      result.witness_state = mec.states.front();
    }
  }

  if (result.witness_size != 0) {
    result.verdict = Verdict::kProgressFails;
  } else if (model.truncated()) {
    result.verdict = Verdict::kUnknownTruncated;
  } else {
    result.verdict = Verdict::kProgressCertain;
  }
  return result;
}

}  // namespace detail

FairProgressResult check_fair_progress(const Model& model, std::uint64_t set_mask) {
  return detail::verdict_from_mecs(model, set_mask, maximal_end_components(model, set_mask));
}

FairProgressResult check_lockout_freedom(const Model& model, PhilId victim) {
  return check_fair_progress(model, std::uint64_t{1} << victim);
}

FairProgressResult check_fair_progress(const algos::Algorithm& algo, const graph::Topology& t,
                                       std::size_t max_states, std::uint64_t set_mask) {
  const Model model = explore(algo, t, max_states);
  return check_fair_progress(model, set_mask);
}

}  // namespace gdp::mdp
