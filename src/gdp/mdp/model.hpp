// Explicit-state MDP extracted from (algorithm x topology).
//
// The paper's §2 computation model is a probabilistic automaton in the sense
// of Segala & Lynch: nondeterminism (which philosopher steps) is resolved by
// an adversary, randomness by the algorithm's draws. For finite systems in
// the all-hungry setting this is a finite MDP whose actions are philosopher
// ids: exploring it lets us *decide* the paper's progress statements
// mechanically instead of only sampling runs (see fair_progress.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "gdp/algos/algorithm.hpp"
#include "gdp/graph/topology.hpp"

namespace gdp::mdp {

namespace detail {
class LevelExplorer;
}  // namespace detail

using StateId = std::uint32_t;

struct Outcome {
  float prob = 0.0f;
  StateId next = 0;
};

/// CSR-packed MDP. Row (state s, philosopher p) holds the probabilistic
/// outcomes of scheduling p in s; every state has exactly `num_phils` rows.
///
/// Limit: at most 64 philosophers. `eaters()` and every target/avoid set
/// are single 64-bit masks (bit p = philosopher p); beyond 64 philosophers
/// the masks would silently alias, so construction refuses instead
/// (GDP_CHECK in Model::build and in the explorers). Lifting the limit
/// means widening the masks end to end — model, end components, quant.
class Model {
 public:
  int num_phils() const { return num_phils_; }
  std::size_t num_states() const { return eaters_.size(); }
  StateId initial() const { return 0; }

  bool eating(StateId s) const { return eaters_[s] != 0; }

  /// Bitmask of philosophers eating in s (bit p). The paper's E is
  /// eaters(s) != 0; E restricted to a set S is (eaters(s) & S) != 0.
  std::uint64_t eaters(StateId s) const { return eaters_[s]; }

  /// Outcomes of scheduling philosopher p in state s.
  std::pair<const Outcome*, const Outcome*> row(StateId s, int p) const {
    const std::size_t idx = static_cast<std::size_t>(s) * static_cast<std::size_t>(num_phils_) +
                            static_cast<std::size_t>(p);
    return {outcomes_.data() + offsets_[idx], outcomes_.data() + offsets_[idx + 1]};
  }

  /// True if exploration hit the state cap: the model is a prefix, and
  /// states beyond the cap appear as `frontier` states with no rows.
  bool truncated() const { return truncated_; }
  bool frontier(StateId s) const { return frontier_[s]; }

  /// Total number of (state, action) rows, for reporting.
  std::size_t num_rows() const { return num_states() * static_cast<std::size_t>(num_phils_); }

  /// Assembles a Model directly from its CSR parts — the hand-built-MDP
  /// entry point for tests and external tooling (the quantitative checker's
  /// unit tests feed 2-3-state systems with known values through this).
  /// `offsets` must have num_states * num_phils + 1 monotone entries ending
  /// at outcomes.size(); frontier states must have empty rows; every
  /// outcome's `next` must be a valid state id. Throws PreconditionError on
  /// violations.
  static Model build(int num_phils, std::vector<std::uint64_t> offsets,
                     std::vector<Outcome> outcomes, std::vector<std::uint64_t> eaters,
                     std::vector<bool> frontier, bool truncated = false);

 private:
  /// The shared level-synchronous explorer (gdp/mdp/level_explore.hpp)
  /// builds the CSR arrays in place and re-seeds from them on resume.
  friend class detail::LevelExplorer;

  int num_phils_ = 0;
  std::vector<std::uint64_t> offsets_;  // (num_states * num_phils) + 1
  std::vector<Outcome> outcomes_;
  std::vector<std::uint64_t> eaters_;
  std::vector<bool> frontier_;
  bool truncated_ = false;
};

/// Level-synchronous breadth-first exploration from the algorithm's initial
/// state (all philosophers thinking). The `max_states` cap applies at BFS
/// level boundaries: a run never stops mid-level, so a capped model is a
/// pure function of (algorithm, topology, max_states) — identical to the
/// parallel par::explore at every thread count — and its unexpanded
/// frontier states (flagged on the model) are always the id tail.
///
/// Requires ThinkMode::kHungry (the proofs' all-hungry setting) so the MDP
/// stays finite and E-avoidance is meaningful.
Model explore(const algos::Algorithm& algo, const graph::Topology& t,
              std::size_t max_states = 2'000'000);

}  // namespace gdp::mdp
