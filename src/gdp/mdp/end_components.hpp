// Maximal end-component (MEC) decomposition of the non-eating fragment.
//
// An end component is a set of states plus, per state, a non-empty set of
// actions such that (i) every probabilistic outcome of a chosen action stays
// inside the set (closure) and (ii) the induced graph is strongly connected.
// Under ANY adversary, the limit behaviour of an infinite run is a.s. an end
// component (de Alfaro); under a FAIR adversary it must moreover contain an
// action of every philosopher. Hence:
//
//   "some fair adversary avoids eating forever (with prob. 1 once inside)"
//       <=>  a reachable MEC of the non-E fragment has actions of ALL
//            philosophers ("fair EC").
//
// This is the mechanical core behind reproducing Theorems 1-4: LR1/LR2
// exhibit reachable fair ECs exactly on the paper's counterexample
// topologies; GDP1/GDP2 exhibit none (progress with probability 1).
#pragma once

#include <cstdint>
#include <vector>

#include "gdp/mdp/model.hpp"

namespace gdp::mdp {

struct EndComponent {
  std::vector<StateId> states;
  /// Philosophers with at least one usable action inside the component
  /// (bitmask; phil p set iff bit p). Fairness needs all n bits.
  std::uint64_t phil_mask = 0;

  bool fair(int num_phils) const {
    return phil_mask == (num_phils >= 64 ? ~std::uint64_t{0}
                                         : ((std::uint64_t{1} << num_phils) - 1));
  }
};

/// All MECs of the sub-MDP restricted to the fully-expanded states where no
/// philosopher of `avoid_set` (bitmask) eats. Actions whose outcomes can
/// leave that restriction are discarded, so every returned component is
/// genuinely closed even on truncated models.
///
/// avoid_set semantics (the paper's §2 definitions):
///   * all philosophers  -> progress:            T --F-->_1 E
///   * a subset S        -> progress wrt S       (Theorems 1/2 deny it for
///                          the ring philosophers H)
///   * a singleton {i}   -> lockout-freedom of i: T_i --F-->_1 E_i
std::vector<EndComponent> maximal_end_components(const Model& model,
                                                 std::uint64_t avoid_set = ~std::uint64_t{0});

/// States reachable from the initial state (any adversary, any outcomes).
std::vector<bool> reachable_states(const Model& model);

}  // namespace gdp::mdp
