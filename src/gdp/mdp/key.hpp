// Packed fixed-width state keys for the MDP explorers.
//
// SimState::encode's variable-length byte vectors (>= 13 bytes per fork plus
// guest-book ranks) are stored three times over during exploration — intern
// tables, frontier copies, renumbering logs — and are the memory ceiling for
// >10M-state models. KeyCodec replaces them with a topology/algorithm-aware
// bit layout computed once per (algorithm, topology):
//
//   per fork        holder+1            in bit_width(n) bits   (0 = free)
//                   nr                  in bit_width(m) bits   GDP only
//                   requests            in degree(f) bits      books only
//                   use_rank[slot]      in bit_width(degree(f)) bits each,
//                                       degree(f) slots        books only
//   per philosopher phase               in 3 bits
//                   committed side      in 1 bit
//   per aux word    aux+1               in bit_width(n) bits   baselines only
//
// where n = philosophers, m = the algorithm's effective GDP numbering range.
// Fields whose algorithm never writes them (nr without uses_numbers(), books
// without uses_books(), aux without init_aux()) get ZERO bits, so a classic
// lr1/ring key fits one 64-bit word where the byte encoding took 24 bytes.
//
// Every field occupies its own bit range, so the packing is injective on the
// states the engines can reach; equality and hashing are branch-free word
// compares. The codec is exactly as distinguishing as SimState::encode (the
// legacy diagnostic encoding, cross-checked by test_differential): fields the
// layout drops are provably constant for the algorithm, and fields outside a
// range the layout can represent (a scratch word, an out-of-contract aux
// value) fail a GDP_CHECK instead of silently aliasing two states.
//
// decode() reconstructs the full SimState from a key, which keeps witness
// replay and trace output byte-for-byte what it was with byte-vector keys.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "gdp/algos/algorithm.hpp"
#include "gdp/graph/topology.hpp"
#include "gdp/rng/splitmix.hpp"
#include "gdp/sim/state.hpp"

namespace gdp::mdp {

using StateId = std::uint32_t;

/// A fixed-width bit-packed state key: `words()` 64-bit words, value
/// semantics, word-wise equality. Keys up to kInlineWords live inline (no
/// heap traffic in the intern tables); wider layouts — e.g. books at high
/// degree — spill to a heap block of exactly words() words.
class PackedKey {
 public:
  static constexpr std::size_t kInlineWords = 3;

  PackedKey() = default;
  explicit PackedKey(std::size_t words) { resize(words); }

  PackedKey(const PackedKey& rhs) { copy_from(rhs); }
  PackedKey(PackedKey&& rhs) noexcept : words_(rhs.words_) {
    if (words_ > kInlineWords) {
      heap_ = rhs.heap_;
      rhs.words_ = 0;
    } else {
      for (std::size_t i = 0; i < words_; ++i) inline_[i] = rhs.inline_[i];
    }
  }
  PackedKey& operator=(const PackedKey& rhs) {
    if (this != &rhs) {
      release();
      copy_from(rhs);
    }
    return *this;
  }
  PackedKey& operator=(PackedKey&& rhs) noexcept {
    if (this != &rhs) {
      release();
      words_ = rhs.words_;
      if (words_ > kInlineWords) {
        heap_ = rhs.heap_;
        rhs.words_ = 0;
      } else {
        for (std::size_t i = 0; i < words_; ++i) inline_[i] = rhs.inline_[i];
      }
    }
    return *this;
  }
  ~PackedKey() { release(); }

  std::size_t words() const { return words_; }
  std::size_t bytes() const { return words_ * sizeof(std::uint64_t); }

  std::uint64_t* data() { return words_ <= kInlineWords ? inline_.data() : heap_; }
  const std::uint64_t* data() const { return words_ <= kInlineWords ? inline_.data() : heap_; }

  /// Overwrites this key with `words` words copied from `w` — the
  /// reconstruction path for keys stored as flat word runs (the level
  /// explorer's per-level successor buffers, the chunked store's key runs).
  void assign(const std::uint64_t* w, std::size_t words) {
    resize(words);
    std::uint64_t* d = data();
    for (std::size_t i = 0; i < words; ++i) d[i] = w[i];
  }

  /// Sets the width and zero-fills the payload (encode() overwrites it).
  void resize(std::size_t words) {
    if (words != words_) {
      release();
      words_ = static_cast<std::uint32_t>(words);
      if (words > kInlineWords) heap_ = new std::uint64_t[words];
    }
    std::uint64_t* w = data();
    for (std::size_t i = 0; i < words_; ++i) w[i] = 0;
  }

  bool operator==(const PackedKey& rhs) const {
    if (words_ != rhs.words_) return false;
    const std::uint64_t* a = data();
    const std::uint64_t* b = rhs.data();
    for (std::size_t i = 0; i < words_; ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }

 private:
  void copy_from(const PackedKey& rhs) {
    words_ = rhs.words_;
    if (words_ > kInlineWords) heap_ = new std::uint64_t[words_];
    std::uint64_t* w = data();
    const std::uint64_t* r = rhs.data();
    for (std::size_t i = 0; i < words_; ++i) w[i] = r[i];
  }
  void release() {
    if (words_ > kInlineWords) delete[] heap_;
    words_ = 0;
  }

  std::uint32_t words_ = 0;
  union {
    std::array<std::uint64_t, kInlineWords> inline_ = {};
    std::uint64_t* heap_;
  };
};

/// Word-wise splitmix fold; replaces the byte-wise FNV of the old keys.
struct PackedKeyHash {
  std::size_t operator()(const PackedKey& key) const {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL + key.words();
    const std::uint64_t* w = key.data();
    for (std::size_t i = 0; i < key.words(); ++i) h = rng::splitmix64_once(h ^ w[i]);
    return static_cast<std::size_t>(h);
  }
};

/// The layout, computed once from (algorithm, topology); encode/decode are
/// const and safe to share across exploration workers.
class KeyCodec {
 public:
  /// An invalid codec (valid() == false); reset via assignment.
  KeyCodec() = default;
  KeyCodec(const algos::Algorithm& algo, const graph::Topology& t);

  bool valid() const { return num_phils_ > 0; }

  int num_forks() const { return num_forks_; }
  int num_phils() const { return num_phils_; }
  int aux_words() const { return aux_words_; }
  bool books() const { return books_; }
  bool numbers() const { return numbers_; }

  unsigned holder_bits() const { return holder_bits_; }
  unsigned nr_bits() const { return nr_bits_; }
  unsigned aux_bits() const { return aux_bits_; }
  static constexpr unsigned phase_bits() { return 3; }
  unsigned request_bits(ForkId f) const { return books_ ? degree_[static_cast<std::size_t>(f)] : 0; }
  unsigned rank_bits(ForkId f) const;

  std::size_t key_bits() const { return bits_; }
  std::size_t key_words() const { return words_; }
  std::size_t key_bytes() const { return words_ * sizeof(std::uint64_t); }
  /// Bytes the legacy SimState::encode byte vector takes for this shape —
  /// the before/after of the packing, for memory reporting.
  std::size_t legacy_key_bytes() const;

  void encode(const sim::SimState& state, PackedKey& out) const;
  PackedKey encode(const sim::SimState& state) const {
    PackedKey key;
    encode(state, key);
    return key;
  }

  /// Exact inverse of encode() on keys it produced.
  sim::SimState decode(const PackedKey& key) const;

 private:
  int num_forks_ = 0;
  int num_phils_ = 0;
  int aux_words_ = 0;
  bool books_ = false;
  bool numbers_ = false;
  std::uint8_t holder_bits_ = 0;
  std::uint8_t nr_bits_ = 0;
  std::uint8_t aux_bits_ = 0;
  std::uint16_t nr_max_ = 0;
  std::vector<std::uint8_t> degree_;  // per fork; filled only when books_
  std::size_t bits_ = 0;
  std::size_t words_ = 0;
};

/// The encoded-state -> id map the explorers return: the packed-key hash map
/// plus the codec that produced the keys, so callers holding only the index
/// (WitnessScheduler, the differential tests) can locate live SimStates and
/// decode stored keys back into configurations.
class StateIndex {
 public:
  using Map = std::unordered_map<PackedKey, StateId, PackedKeyHash>;
  using const_iterator = Map::const_iterator;
  using value_type = Map::value_type;

  StateIndex() = default;

  /// Installs the codec and clears any previous contents.
  void reset(const KeyCodec& codec) {
    codec_ = codec;
    map_.clear();
  }

  const KeyCodec& codec() const { return codec_; }

  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void reserve(std::size_t n) { map_.reserve(n); }

  std::pair<Map::iterator, bool> try_emplace(const PackedKey& key, StateId id) {
    return map_.try_emplace(key, id);
  }
  const_iterator find(const PackedKey& key) const { return map_.find(key); }
  const_iterator find(const sim::SimState& state) const { return map_.find(codec_.encode(state)); }
  std::size_t count(const sim::SimState& state) const { return map_.count(codec_.encode(state)); }

  const_iterator begin() const { return map_.begin(); }
  const_iterator end() const { return map_.end(); }

 private:
  KeyCodec codec_;
  Map map_;
};

}  // namespace gdp::mdp
