#include "gdp/mdp/store/store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "gdp/common/check.hpp"
#include "gdp/mdp/level_explore.hpp"
#include "gdp/mdp/par/end_components_impl.hpp"
#include "gdp/mdp/quant/quant_impl.hpp"
#include "gdp/obs/obs.hpp"
#include "gdp/obs/timeline.hpp"

namespace gdp::mdp::store {

namespace {

/// Deterministic-plane store counters: chunk shape is a pure function of
/// (model, chunk_states) and spill/checkpoint traffic of the call sequence,
/// never of scheduling. I/O wall time goes to spans (timing plane).
struct StoreCounters {
  obs::Counter& chunks_written = obs::Registry::global().counter("store.chunks_written");
  obs::Counter& chunk_bytes = obs::Registry::global().counter("store.chunk_bytes");
  obs::Counter& chunks_spilled = obs::Registry::global().counter("store.chunks_spilled");
  obs::Counter& spill_bytes = obs::Registry::global().counter("store.spill_bytes");
  obs::Counter& chunks_loaded = obs::Registry::global().counter("store.chunks_loaded");
  obs::Counter& fingerprint_checks =
      obs::Registry::global().counter("store.fingerprint_verifications");
  obs::Counter& materializations = obs::Registry::global().counter("store.materializations");
  /// Timing plane: which chunk faults and which gets evicted depend on the
  /// interleaving of the parallel kernels' reads — only the verdicts they
  /// feed are deterministic, not the paging traffic.
  obs::Counter& chunk_faults =
      obs::Registry::global().counter("store.chunk_faults", obs::Plane::kTiming);
  obs::Counter& chunk_evictions =
      obs::Registry::global().counter("store.chunk_evictions", obs::Plane::kTiming);
  static StoreCounters& get() {
    static StoreCounters instance;
    return instance;
  }
};

// Chunk payloads round-trip Outcome structs through 64-bit words (bit_cast
// on write, pointer view on read); both directions need this exact shape.
static_assert(sizeof(Outcome) == sizeof(std::uint64_t) && alignof(Outcome) <= alignof(std::uint64_t) &&
                  std::is_trivially_copyable_v<Outcome>,
              "Outcome must be one trivially-copyable 64-bit word");

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
constexpr std::uint64_t kCheckpointMagic = 0x47445053544f5231ULL;  // "GDPSTOR1"
constexpr std::uint64_t kCheckpointVersion = 1;
constexpr std::size_t kCheckpointHeaderWords = 9;

/// FNV-1a over the 8 bytes of one word.
inline std::uint64_t fnv1a(std::uint64_t h, std::uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a_words(const std::uint64_t* words, std::size_t count) {
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < count; ++i) h = fnv1a(h, words[i]);
  return h;
}

/// Writes `words` 64-bit words to `path` (overwrite). Throws on I/O errors.
void write_file(const std::string& path, const std::uint64_t* words, std::size_t count) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  GDP_CHECK_MSG(f != nullptr, "store: cannot open " << path << " for writing: "
                                                    << std::strerror(errno));
  const std::size_t written = std::fwrite(words, sizeof(std::uint64_t), count, f);
  const int close_rc = std::fclose(f);
  GDP_CHECK_MSG(written == count && close_rc == 0,
                "store: short write to " << path << " (" << written << "/" << count << " words)");
}

/// Maps `path` read-only. Returns (address, bytes); address is
/// 64-bit-aligned (page-aligned). Throws on I/O errors or empty files.
std::pair<void*, std::size_t> map_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  GDP_CHECK_MSG(fd >= 0, "store: cannot open " << path << ": " << std::strerror(errno));
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0 ||
      static_cast<std::size_t>(st.st_size) % sizeof(std::uint64_t) != 0) {
    ::close(fd);
    GDP_CHECK_MSG(false, "store: " << path << " is empty or not a whole number of words");
  }
  const std::size_t bytes = static_cast<std::size_t>(st.st_size);
  // The store is the repo's one blessed mmap site: spilled chunks and
  // checkpoints reload on demand through page faults instead of heap reads.
  // gdp-lint: allow(raw-mmap) — read-only spill/checkpoint mapping, unmapped by the owning Chunk/ChunkedModel
  void* addr = ::mmap(nullptr, bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  GDP_CHECK_MSG(addr != MAP_FAILED, "store: mmap of " << path << " failed: "
                                                      << std::strerror(errno));
  return {addr, bytes};
}

void unmap(void* addr, std::size_t bytes) {
  // gdp-lint: allow(raw-mmap) — paired teardown of map_file's mapping
  if (addr != nullptr && addr != MAP_FAILED) ::munmap(addr, bytes);
}

void ensure_dir(const std::string& dir) {
  GDP_CHECK_MSG(!dir.empty(), "store: spilling needs StoreOptions::dir");
  if (::mkdir(dir.c_str(), 0755) != 0) {
    GDP_CHECK_MSG(errno == EEXIST, "store: cannot create " << dir << ": "
                                                           << std::strerror(errno));
  }
}

/// Spill files are prefixed with a process-unique per-model sequence
/// number so several models can share one spill dir without clobbering
/// each other's still-mapped chunk files (an overwrite under a live
/// MAP_PRIVATE mapping silently changes not-yet-faulted pages).
std::atomic<std::uint64_t> g_spill_seq{0};

std::string chunk_path(const std::string& dir, std::uint64_t seq, std::size_t i) {
  return dir + "/m" + std::to_string(seq) + "_chunk_" + std::to_string(i) + ".gdpstore";
}

}  // namespace

// ---------------------------------------------------------------------------
// Chunk
// ---------------------------------------------------------------------------

Chunk& Chunk::operator=(Chunk&& rhs) noexcept {
  if (this != &rhs) {
    release();
    payload_ = rhs.payload_;
    payload_words_ = rhs.payload_words_;
    owned_ = std::move(rhs.owned_);
    mapped_ = rhs.mapped_;
    mapped_bytes_ = rhs.mapped_bytes_;
    if (!owned_.empty()) payload_ = owned_.data();
    rhs.payload_ = nullptr;
    rhs.payload_words_ = 0;
    rhs.mapped_ = nullptr;
    rhs.mapped_bytes_ = 0;
  }
  return *this;
}

void Chunk::release() {
  unmap(mapped_, mapped_bytes_);
  mapped_ = nullptr;
  mapped_bytes_ = 0;
  owned_.clear();
  payload_ = nullptr;
  payload_words_ = 0;
}

Chunk Chunk::own(std::vector<std::uint64_t> payload) {
  GDP_CHECK_MSG(payload.size() >= kHeaderWords, "store: chunk payload shorter than its header");
  Chunk c;
  c.owned_ = std::move(payload);
  c.payload_ = c.owned_.data();
  c.payload_words_ = c.owned_.size();
  return c;
}

Chunk Chunk::view(const std::uint64_t* payload, std::size_t words) {
  GDP_CHECK_MSG(payload != nullptr && words >= kHeaderWords,
                "store: chunk view shorter than its header");
  Chunk c;
  c.payload_ = payload;
  c.payload_words_ = words;
  return c;
}

const Outcome* Chunk::outcomes() const {
  // The payload stores each Outcome's object representation in one word
  // (see the static_assert above); viewing the words as Outcomes is the
  // same-machine inverse of the bit_cast that wrote them.
  return reinterpret_cast<const Outcome*>(outcome_words());
}

std::uint64_t Chunk::fingerprint() const { return fnv1a_words(payload_, payload_words_); }

void Chunk::spill_to(const std::string& path) {
  if (spilled()) return;
  GDP_CHECK_MSG(!owned_.empty(), "store: cannot spill a view chunk (its checkpoint owns the bytes)");
  write_file(path, owned_.data(), owned_.size());
  const auto [addr, bytes] = map_file(path);
  if (bytes != owned_.size() * sizeof(std::uint64_t)) {
    unmap(addr, bytes);
    GDP_CHECK_MSG(false, "store: " << path << " changed size during spill");
  }
  mapped_ = addr;
  mapped_bytes_ = bytes;
  payload_ = static_cast<const std::uint64_t*>(addr);
  std::vector<std::uint64_t>().swap(owned_);  // actually free the heap copy
}

void Chunk::drop_pages() const {
  if (!file_backed()) return;
  // A view chunk sits inside a larger checkpoint mapping, so only whole
  // pages fully inside this payload may be dropped — the edge pages are
  // shared with the neighboring chunks' payloads (a spilled chunk owns its
  // whole page-aligned mapping, and the rounding below keeps it intact).
  const auto page = static_cast<std::uintptr_t>(::sysconf(_SC_PAGESIZE));
  std::uintptr_t lo = reinterpret_cast<std::uintptr_t>(payload_);
  std::uintptr_t hi = lo + payload_bytes();
  lo = (lo + page - 1) & ~(page - 1);
  hi &= ~(page - 1);
  if (lo >= hi) return;
  // On a read-only MAP_PRIVATE file mapping there are no dirty pages to
  // lose: MADV_DONTNEED just returns the page frames, and the next read
  // refaults identical bytes from the file. Racing readers stay correct.
  // gdp-lint: allow(raw-mmap) — residency eviction on map_file's read-only mapping
  ::madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_DONTNEED);
}

// ---------------------------------------------------------------------------
// detail::Residency
// ---------------------------------------------------------------------------

namespace detail {

void Residency::fault(const std::vector<Chunk>& chunks, std::size_t idx) {
  common::MutexLock lock(mu_);
  // Raced with another faulting reader: it already paid for this chunk.
  if (stamps_[idx].load(std::memory_order_relaxed) != 0) return;

  // Heap-owned chunks never page out; stamp them hot once so the fast path
  // short-circuits forever, without charging them to the budget.
  if (!chunks[idx].file_backed()) {
    stamps_[idx].store(++epoch_, std::memory_order_relaxed);
    return;
  }

  // Evict min-stamp (least-recently-faulted) victims until the newcomer
  // fits. The linear scan is fine: faults are rare by design and chunk
  // counts are thousands, not millions.
  while (hot_count_ + 1 > budget_ && hot_count_ > 0) {
    std::size_t victim = stamps_.size();
    std::uint64_t oldest = ~std::uint64_t{0};
    for (std::size_t i = 0; i < stamps_.size(); ++i) {
      if (!chunks[i].file_backed()) continue;
      const std::uint64_t stamp = stamps_[i].load(std::memory_order_relaxed);
      if (stamp != 0 && stamp < oldest) {
        oldest = stamp;
        victim = i;
      }
    }
    if (victim == stamps_.size()) break;  // accounting drift would spin forever
    stamps_[victim].store(0, std::memory_order_relaxed);
    chunks[victim].drop_pages();
    --hot_count_;
    hot_bytes_ -= chunks[victim].payload_bytes();
    StoreCounters::get().chunk_evictions.increment();
    obs::timeline::instant("store.chunk_eviction");
  }

  stamps_[idx].store(++epoch_, std::memory_order_relaxed);
  ++hot_count_;
  hot_bytes_ += chunks[idx].payload_bytes();
  if (hot_bytes_ > peak_bytes_) peak_bytes_ = hot_bytes_;
  StoreCounters::get().chunk_faults.increment();
  obs::timeline::instant("store.chunk_fault");
  // Live residency for the heartbeat sampler; timing plane (which chunks
  // fault depends on the read schedule, not on the work).
  static obs::Gauge& resident_chunks =
      obs::Registry::global().gauge("store.resident_chunks", obs::Plane::kTiming);
  static obs::Gauge& resident_bytes =
      obs::Registry::global().gauge("store.resident_bytes", obs::Plane::kTiming);
  resident_chunks.set(hot_count_);
  resident_bytes.set(hot_bytes_);
}

void Residency::reset_cold(const std::vector<Chunk>& chunks) {
  common::MutexLock lock(mu_);
  for (std::size_t i = 0; i < stamps_.size(); ++i) {
    stamps_[i].store(0, std::memory_order_relaxed);
    if (chunks[i].file_backed()) chunks[i].drop_pages();
  }
  hot_count_ = 0;
  hot_bytes_ = 0;
}

std::size_t Residency::hot_bytes() const {
  common::MutexLock lock(mu_);
  return hot_bytes_;
}

std::size_t Residency::peak_bytes() const {
  common::MutexLock lock(mu_);
  return peak_bytes_;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// ChunkedModel
// ---------------------------------------------------------------------------

ChunkedModel ChunkedModel::from_model(const Model& model, const KeyCodec& codec,
                                      const std::vector<PackedKey>& keys, StoreOptions options) {
  GDP_CHECK_MSG(options.chunk_states > 0, "store: chunk_states must be positive");
  GDP_CHECK_MSG(codec.valid() && codec.num_phils() == model.num_phils(),
                "store: codec does not match the model");
  GDP_CHECK_MSG(keys.size() == model.num_states(),
                "store: " << keys.size() << " keys for " << model.num_states() << " states");

  // The store's resume contract needs the level-synchronous invariant:
  // expanded states are an id prefix, frontier states the tail.
  std::size_t expanded = 0;
  while (expanded < model.num_states() && !model.frontier(static_cast<StateId>(expanded))) {
    ++expanded;
  }
  for (std::size_t s = expanded; s < model.num_states(); ++s) {
    GDP_CHECK_MSG(model.frontier(static_cast<StateId>(s)),
                  "store: frontier states must be the id tail (state " << s << " is expanded)");
  }

  ChunkedModel out;
  out.spill_seq_ = g_spill_seq.fetch_add(1, std::memory_order_relaxed);
  out.num_phils_ = model.num_phils();
  out.num_states_ = model.num_states();
  out.chunk_states_ = options.chunk_states;
  out.truncated_ = model.truncated();
  out.codec_ = codec;
  out.options_ = std::move(options);

  const std::size_t n = static_cast<std::size_t>(model.num_phils());
  const std::size_t kw = codec.key_words();
  const std::size_t num_chunks =
      (model.num_states() + out.chunk_states_ - 1) / out.chunk_states_;
  out.chunks_.reserve(num_chunks);

  for (std::size_t ci = 0; ci < num_chunks; ++ci) {
    const std::size_t first = ci * out.chunk_states_;
    const std::size_t count = std::min(out.chunk_states_, model.num_states() - first);

    std::size_t num_outcomes = 0;
    for (std::size_t s = first; s < first + count; ++s) {
      for (std::size_t p = 0; p < n; ++p) {
        const auto [lo, hi] = model.row(static_cast<StateId>(s), static_cast<int>(p));
        num_outcomes += static_cast<std::size_t>(hi - lo);
      }
    }

    std::vector<std::uint64_t> payload;
    payload.reserve(5 + count * n + 1 + num_outcomes + count + (count + 63) / 64 + count * kw);
    payload.push_back(first);
    payload.push_back(count);
    payload.push_back(n);
    payload.push_back(kw);
    payload.push_back(num_outcomes);

    // Chunk-local CSR offsets, then the rows (global next ids).
    std::vector<std::uint64_t> outcome_words;
    outcome_words.reserve(num_outcomes);
    payload.push_back(0);
    const std::size_t offsets_at = payload.size() - 1;
    for (std::size_t s = first; s < first + count; ++s) {
      for (std::size_t p = 0; p < n; ++p) {
        const auto [lo, hi] = model.row(static_cast<StateId>(s), static_cast<int>(p));
        for (const Outcome* o = lo; o != hi; ++o) {
          outcome_words.push_back(std::bit_cast<std::uint64_t>(*o));
        }
        payload.push_back(outcome_words.size());
      }
    }
    GDP_CHECK_MSG(payload.size() - offsets_at == count * n + 1,
                  "store: chunk " << ci << " offset table has the wrong shape");
    payload.insert(payload.end(), outcome_words.begin(), outcome_words.end());

    for (std::size_t s = first; s < first + count; ++s) {
      payload.push_back(model.eaters(static_cast<StateId>(s)));
    }

    std::vector<std::uint64_t> frontier_words((count + 63) / 64, 0);
    for (std::size_t s = first; s < first + count; ++s) {
      if (model.frontier(static_cast<StateId>(s))) {
        frontier_words[(s - first) >> 6] |= std::uint64_t{1} << ((s - first) & 63);
      }
    }
    payload.insert(payload.end(), frontier_words.begin(), frontier_words.end());

    for (std::size_t s = first; s < first + count; ++s) {
      GDP_CHECK_MSG(keys[s].words() == kw,
                    "store: key " << s << " has " << keys[s].words() << " words, layout has " << kw);
      const std::uint64_t* w = keys[s].data();
      payload.insert(payload.end(), w, w + kw);
    }

    StoreCounters::get().chunks_written.increment();
    StoreCounters::get().chunk_bytes.add(payload.size() * sizeof(std::uint64_t));
    out.chunks_.push_back(Chunk::own(std::move(payload)));
  }

  if (out.options_.max_resident_chunks > 0) {
    out.residency_ = std::make_unique<detail::Residency>(out.chunks_.size(),
                                                         out.options_.max_resident_chunks);
  }
  if (out.options_.spill) out.spill();
  return out;
}

PackedKey ChunkedModel::key(StateId s) const {
  PackedKey key;
  key.assign(chunk_of(s).key_run(local_of(s)), codec_.key_words());
  return key;
}

std::vector<PackedKey> ChunkedModel::keys() const {
  std::vector<PackedKey> out;
  out.reserve(num_states_);
  for (std::size_t s = 0; s < num_states_; ++s) out.push_back(key(static_cast<StateId>(s)));
  return out;
}

std::uint64_t ChunkedModel::fingerprint() const {
  const std::size_t kw = codec_.key_words();
  std::uint64_t h = kFnvOffset;
  h = fnv1a(h, static_cast<std::uint64_t>(num_phils_));
  h = fnv1a(h, kw);
  h = fnv1a(h, num_states_);
  h = fnv1a(h, truncated_ ? 1 : 0);
  for (const Chunk& c : chunks_) {
    const std::size_t n = static_cast<std::size_t>(c.num_phils());
    const std::uint64_t* offsets = c.offsets();
    const Outcome* rows = c.outcomes();
    for (std::size_t local = 0; local < c.count(); ++local) {
      const std::uint64_t* key_words = c.key_run(local);
      for (std::size_t i = 0; i < kw; ++i) h = fnv1a(h, key_words[i]);
      h = fnv1a(h, c.eaters()[local]);
      h = fnv1a(h, c.frontier(local) ? 1 : 0);
      for (std::size_t p = 0; p < n; ++p) {
        const std::uint64_t lo = offsets[local * n + p];
        const std::uint64_t hi = offsets[local * n + p + 1];
        h = fnv1a(h, hi - lo);
        for (std::uint64_t i = lo; i < hi; ++i) {
          h = fnv1a(h, std::bit_cast<std::uint64_t>(rows[i]));
        }
      }
    }
  }
  return h;
}

std::size_t ChunkedModel::resident_bytes() const {
  std::size_t bytes = 0;
  if (residency_ != nullptr) {
    // Budgeted: heap chunks plus whatever file-backed payload is hot.
    for (const Chunk& c : chunks_) {
      if (!c.file_backed()) bytes += c.payload_bytes();
    }
    return bytes + residency_->hot_bytes();
  }
  // Unbounded (historical accounting): everything except spilled chunks —
  // a fully spilled model reads 0.
  for (const Chunk& c : chunks_) {
    if (!c.spilled()) bytes += c.payload_bytes();
  }
  return bytes;
}

std::size_t ChunkedModel::peak_resident_bytes() const {
  if (residency_ == nullptr) return resident_bytes();
  std::size_t bytes = 0;
  for (const Chunk& c : chunks_) {
    if (!c.file_backed()) bytes += c.payload_bytes();
  }
  return bytes + residency_->peak_bytes();
}

std::size_t ChunkedModel::spilled_bytes() const {
  std::size_t bytes = 0;
  for (const Chunk& c : chunks_) {
    if (c.spilled()) bytes += c.payload_words() * sizeof(std::uint64_t);
  }
  return bytes;
}

void ChunkedModel::spill() {
  obs::TimedSpan span("store.spill");
  ensure_dir(options_.dir);
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    if (chunks_[i].spilled()) continue;
    chunks_[i].spill_to(chunk_path(options_.dir, spill_seq_, i));
    StoreCounters::get().chunks_spilled.increment();
    StoreCounters::get().spill_bytes.add(chunks_[i].payload_words() * sizeof(std::uint64_t));
    obs::timeline::instant("store.chunk_spill");
  }
  // Everything is file-backed now; start the budget from an all-cold set so
  // the first sweep's faults are what page the working set in.
  if (residency_ != nullptr) residency_->reset_cold(chunks_);
}

Model ChunkedModel::materialize() const {
  obs::TimedSpan span("store.materialize");
  StoreCounters::get().materializations.increment();
  const std::size_t n = static_cast<std::size_t>(num_phils_);
  std::vector<std::uint64_t> offsets;
  offsets.reserve(num_states_ * n + 1);
  offsets.push_back(0);
  std::vector<Outcome> outcomes;
  std::vector<std::uint64_t> eater_masks;
  eater_masks.reserve(num_states_);
  std::vector<bool> frontier_flags;
  frontier_flags.reserve(num_states_);

  for (const Chunk& c : chunks_) {
    const std::uint64_t* local_offsets = c.offsets();
    const Outcome* rows = c.outcomes();
    const std::uint64_t base = offsets.back();
    const std::size_t row_count = c.count() * n;
    for (std::size_t r = 0; r < row_count; ++r) offsets.push_back(base + local_offsets[r + 1]);
    outcomes.insert(outcomes.end(), rows, rows + c.num_outcomes());
    for (std::size_t local = 0; local < c.count(); ++local) {
      eater_masks.push_back(c.eaters()[local]);
      frontier_flags.push_back(c.frontier(local));
    }
  }
  return Model::build(num_phils_, std::move(offsets), std::move(outcomes), std::move(eater_masks),
                      std::move(frontier_flags), truncated_);
}

void ChunkedModel::save_checkpoint(const std::string& path) const {
  obs::TimedSpan span("store.checkpoint_save");
  std::vector<std::uint64_t> blob;
  std::size_t payload_total = 0;
  for (const Chunk& c : chunks_) payload_total += c.payload_words();
  blob.reserve(kCheckpointHeaderWords + 2 * chunks_.size() + payload_total);

  blob.push_back(kCheckpointMagic);
  blob.push_back(kCheckpointVersion);
  blob.push_back(static_cast<std::uint64_t>(num_phils_));
  blob.push_back(codec_.key_words());
  blob.push_back(chunk_states_);
  blob.push_back(num_states_);
  blob.push_back(truncated_ ? 1 : 0);
  blob.push_back(chunks_.size());
  blob.push_back(fingerprint());
  for (const Chunk& c : chunks_) blob.push_back(c.payload_words());
  for (const Chunk& c : chunks_) blob.push_back(c.fingerprint());
  for (const Chunk& c : chunks_) {
    blob.insert(blob.end(), c.payload(), c.payload() + c.payload_words());
  }
  write_file(path, blob.data(), blob.size());
}

ChunkedModel ChunkedModel::load_checkpoint(const algos::Algorithm& algo, const graph::Topology& t,
                                           const std::string& path, StoreOptions options) {
  obs::TimedSpan span("store.checkpoint_load");
  const auto [addr, bytes] = map_file(path);
  std::shared_ptr<const std::uint64_t> mapping(
      static_cast<const std::uint64_t*>(addr),
      [bytes = bytes](const std::uint64_t* p) { unmap(const_cast<std::uint64_t*>(p), bytes); });
  const std::uint64_t* words = mapping.get();
  const std::size_t total_words = bytes / sizeof(std::uint64_t);

  GDP_CHECK_MSG(total_words >= kCheckpointHeaderWords, "store: " << path << " is not a checkpoint");
  GDP_CHECK_MSG(words[0] == kCheckpointMagic && words[1] == kCheckpointVersion,
                "store: " << path << " has the wrong magic/version (not a v" << kCheckpointVersion
                          << " checkpoint)");

  const KeyCodec codec(algo, t);
  GDP_CHECK_MSG(words[2] == static_cast<std::uint64_t>(codec.num_phils()) &&
                    words[3] == codec.key_words(),
                "store: " << path << " was written for a different (algorithm, topology) shape");

  ChunkedModel out;
  out.spill_seq_ = g_spill_seq.fetch_add(1, std::memory_order_relaxed);
  out.num_phils_ = static_cast<int>(words[2]);
  out.chunk_states_ = words[4];
  out.num_states_ = words[5];
  out.truncated_ = words[6] != 0;
  out.codec_ = codec;
  out.file_map_ = mapping;
  GDP_CHECK_MSG(out.chunk_states_ > 0, "store: " << path << " has zero chunk_states");

  const std::size_t num_chunks = words[7];
  const std::uint64_t stored_model_fp = words[8];
  const std::uint64_t* sizes = words + kCheckpointHeaderWords;
  const std::uint64_t* fps = sizes + num_chunks;
  std::size_t cursor = kCheckpointHeaderWords + 2 * num_chunks;

  std::size_t states_seen = 0;
  out.chunks_.reserve(num_chunks);
  for (std::size_t ci = 0; ci < num_chunks; ++ci) {
    GDP_CHECK_MSG(cursor + sizes[ci] <= total_words,
                  "store: " << path << " truncated inside chunk " << ci);
    Chunk c = Chunk::view(words + cursor, sizes[ci]);
    StoreCounters::get().fingerprint_checks.increment();
    GDP_CHECK_MSG(c.fingerprint() == fps[ci],
                  "store: chunk " << ci << " of " << path << " fails its fingerprint (corrupt)");
    StoreCounters::get().chunks_loaded.increment();
    GDP_CHECK_MSG(c.first() == states_seen && c.count() > 0 &&
                      c.num_phils() == out.num_phils_ && c.key_words() == codec.key_words(),
                  "store: chunk " << ci << " of " << path << " has an inconsistent header");
    states_seen += c.count();
    cursor += sizes[ci];
    out.chunks_.push_back(std::move(c));
  }
  GDP_CHECK_MSG(cursor == total_words, "store: " << path << " has trailing bytes");
  GDP_CHECK_MSG(states_seen == out.num_states_,
                "store: " << path << " chunks cover " << states_seen << " states, header says "
                          << out.num_states_);
  StoreCounters::get().fingerprint_checks.increment();
  GDP_CHECK_MSG(out.fingerprint() == stored_model_fp,
                "store: " << path << " fails its model fingerprint (corrupt)");
  out.options_ = std::move(options);
  out.options_.chunk_states = out.chunk_states_;  // the file's layout wins
  if (out.options_.max_resident_chunks > 0) {
    out.residency_ = std::make_unique<detail::Residency>(out.chunks_.size(),
                                                         out.options_.max_resident_chunks);
    // Fingerprint verification touched every page; drop them so the model
    // starts cold and the budget governs from the first read on.
    out.residency_->reset_cold(out.chunks_);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Exploration + analysis entry points
// ---------------------------------------------------------------------------

ChunkedModel explore(const algos::Algorithm& algo, const graph::Topology& t,
                     StoreOptions store_options, par::CheckOptions options) {
  mdp::detail::LevelExplorer explorer(algo, t);
  explorer.run(options.max_states, options.threads);
  const KeyCodec codec = explorer.codec();
  std::vector<PackedKey> keys;
  const Model model = explorer.take_model(nullptr, &keys);
  return ChunkedModel::from_model(model, codec, keys, std::move(store_options));
}

ChunkedModel resume(const algos::Algorithm& algo, const graph::Topology& t,
                    const ChunkedModel& checkpoint, StoreOptions store_options,
                    par::CheckOptions options) {
  mdp::detail::LevelExplorer explorer(algo, t);
  // Chunk-native restore: the explorer re-seeds from per-chunk key runs,
  // eater masks, frontier bits, and rows through the read API — the
  // checkpoint is never materialized ("store.materializations" stays 0,
  // pinned by `ctest -L store`).
  explorer.restore(checkpoint, checkpoint.keys());
  explorer.run(options.max_states, options.threads);
  const KeyCodec codec = explorer.codec();
  std::vector<PackedKey> keys;
  const Model model = explorer.take_model(nullptr, &keys);
  return ChunkedModel::from_model(model, codec, keys, std::move(store_options));
}

// Chunk-native instantiations of the shared kernel templates (see the
// header's analysis contract): same definitions as the Model path, so
// complete models produce byte-identical verdicts at every thread count and
// truncated models keep the exact refusal semantics — without ever
// materializing the contiguous CSR.

std::vector<bool> reachable_states(const ChunkedModel& model, par::CheckOptions options) {
  return par::detail::reachable_states_t(model, options);
}

std::vector<EndComponent> maximal_end_components(const ChunkedModel& model,
                                                 std::uint64_t avoid_set,
                                                 par::CheckOptions options) {
  return par::detail::maximal_end_components_t(model, avoid_set, options);
}

FairProgressResult check_fair_progress(const ChunkedModel& model, std::uint64_t set_mask,
                                       par::CheckOptions options) {
  return par::detail::check_fair_progress_t(model, set_mask, options);
}

quant::QuantResult analyze(const ChunkedModel& model, std::uint64_t target_set,
                           quant::QuantOptions options) {
  return quant::detail::analyze_t(model, target_set, options);
}

}  // namespace gdp::mdp::store
