// gdp::mdp::store — a chunked, spillable, checkpointable model store.
//
// The explorers' Model is one contiguous CSR: fine until the paper's larger
// topologies (chord/star tiers in ROADMAP.md) outgrow one process's RAM,
// and until a capped run needs to be *worth keeping*. The store re-packs a
// model into fixed-size chunks of `chunk_states` consecutive states, each a
// self-contained flat 64-bit payload:
//
//   header   first state id, state count, num_phils, key_words, #outcomes
//   offsets  chunk-local CSR row offsets (count * num_phils + 1)
//   outcomes transition rows; `next` ids stay GLOBAL state ids
//   eaters   per-state eater masks
//   frontier per-state unexpanded-frontier bits, packed 64 per word
//   keys     the states' PackedKey runs, key_words words per state
//
// and an FNV-1a fingerprint over the payload words. Three contracts:
//
//   * Read API — ChunkedModel mirrors the Model read interface
//     (num_phils/num_states/eaters/eating/row/frontier/truncated/num_rows),
//     so the par:: and quant:: kernel templates instantiate directly over
//     it: store::reachable_states / maximal_end_components /
//     check_fair_progress / analyze and store::resume run chunk-native,
//     without materializing. materialize() still rebuilds a validated
//     contiguous Model for callers that want one.
//
//   * Spill — spill() writes each chunk payload to its own file in
//     StoreOptions::dir and remaps it read-only (mmap), dropping the heap
//     copy; reads fault pages back in on demand. Fingerprints make silent
//     on-disk corruption a refusal instead of a wrong verdict. With
//     StoreOptions::max_resident_chunks set, an LRU residency manager
//     bounds how many file-backed chunks stay paged in at once (see
//     detail::Residency).
//
//   * Cap-as-checkpoint — the level-synchronous explorers leave a capped
//     model with its unexpanded frontier as the id tail, so a capped run
//     IS a checkpoint: save_checkpoint() writes one fingerprinted file,
//     load_checkpoint() verifies and reopens it (zero-copy, mmap), and
//     resume() continues exploration bit-identically — the resumed model's
//     fingerprint equals the uncapped one-shot run's at every thread count
//     (pinned by `ctest -L store`).
//
// Checkpoint and spill files are same-machine artifacts (host endianness
// and struct layout), not a portable interchange format.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "gdp/common/thread_annotations.hpp"
#include "gdp/mdp/key.hpp"
#include "gdp/mdp/model.hpp"
#include "gdp/mdp/par/par.hpp"
#include "gdp/mdp/quant/quant.hpp"

namespace gdp::mdp::store {

struct StoreOptions {
  /// States per chunk (the last chunk may be short). Small values force
  /// many chunks — the CI spill job uses this to exercise chunk seams.
  std::size_t chunk_states = std::size_t{1} << 15;

  /// Spill chunk payloads to `dir` immediately after construction.
  bool spill = false;

  /// Directory for spilled chunk files; created if missing. Required when
  /// `spill` is set (and by any later explicit spill() call). Several
  /// models may share one dir within a process: each prefixes its files
  /// with a process-unique sequence number, so live mappings are never
  /// clobbered by a later model's spill.
  std::string dir;

  /// Residency budget over the FILE-BACKED chunks (spilled or
  /// checkpoint-loaded), in chunks; 0 means unbounded (every faulted page
  /// stays until the mapping dies — the historical behavior). With a
  /// budget, read-API access pages a cold chunk in ("store.chunk_faults")
  /// and evicts the least-recently-touched hot chunks beyond the budget
  /// ("store.chunk_evictions") by dropping their pages back to the file.
  /// Eviction never invalidates pointers: rows held across an eviction
  /// simply refault from the file, so the parallel kernels need no hooks.
  /// Heap-resident chunks are exempt (there is no file to drop to).
  std::size_t max_resident_chunks = 0;
};

/// One fixed-size chunk: a flat 64-bit payload, either heap-owned
/// (resident) or a read-only file mapping (spilled / checkpoint-loaded).
/// Move-only; the mapping is unmapped on destruction.
class Chunk {
 public:
  Chunk() = default;
  Chunk(const Chunk&) = delete;
  Chunk& operator=(const Chunk&) = delete;
  Chunk(Chunk&& rhs) noexcept { *this = std::move(rhs); }
  Chunk& operator=(Chunk&& rhs) noexcept;
  ~Chunk() { release(); }

  /// A resident chunk owning `payload` (as laid out by ChunkedModel).
  static Chunk own(std::vector<std::uint64_t> payload);
  /// A non-owning view into `words` payload words (a checkpoint mapping
  /// whose lifetime the ChunkedModel holds).
  static Chunk view(const std::uint64_t* payload, std::size_t words);

  StateId first() const { return static_cast<StateId>(payload_[0]); }
  std::size_t count() const { return payload_[1]; }
  int num_phils() const { return static_cast<int>(payload_[2]); }
  std::size_t key_words() const { return payload_[3]; }
  std::size_t num_outcomes() const { return payload_[4]; }

  /// Chunk-local CSR offsets: count * num_phils + 1 entries, starting at 0.
  const std::uint64_t* offsets() const { return payload_ + kHeaderWords; }
  /// Transition rows; `next` fields are global state ids.
  const Outcome* outcomes() const;
  const std::uint64_t* eaters() const { return outcome_words() + num_outcomes(); }
  bool frontier(std::size_t local) const {
    return ((frontier_words()[local >> 6] >> (local & 63)) & 1) != 0;
  }
  /// key_words() words per state, count() states.
  const std::uint64_t* key_run(std::size_t local) const {
    return frontier_words() + (count() + 63) / 64 + local * key_words();
  }

  /// The raw payload words (header included) — what fingerprint() hashes
  /// and save_checkpoint() serializes.
  const std::uint64_t* payload() const { return payload_; }
  std::size_t payload_words() const { return payload_words_; }
  std::size_t payload_bytes() const { return payload_words_ * sizeof(std::uint64_t); }
  std::uint64_t fingerprint() const;

  bool spilled() const { return owned_.empty() && mapped_ != nullptr; }
  /// Backed by a read-only file mapping rather than the heap: spilled, or a
  /// view into a checkpoint mapping. Only file-backed chunks participate in
  /// the StoreOptions::max_resident_chunks budget — their pages can be
  /// dropped and refaulted from the file at any time.
  bool file_backed() const { return owned_.empty() && payload_ != nullptr; }
  /// Returns the payload pages to the kernel (madvise(MADV_DONTNEED) on the
  /// page-aligned interior); the next access refaults them from the file.
  /// No-op on heap-owned chunks. The payload pointer stays valid — readers
  /// racing an eviction see identical bytes, just slower.
  void drop_pages() const;
  /// Writes the payload to `path`, remaps it read-only, drops the heap copy.
  void spill_to(const std::string& path);

 private:
  static constexpr std::size_t kHeaderWords = 5;

  const std::uint64_t* outcome_words() const {
    return offsets() + count() * static_cast<std::size_t>(num_phils()) + 1;
  }
  const std::uint64_t* frontier_words() const { return eaters() + count(); }
  void release();

  const std::uint64_t* payload_ = nullptr;  // owned_.data(), mapped_, or a view
  std::size_t payload_words_ = 0;
  std::vector<std::uint64_t> owned_;
  void* mapped_ = nullptr;  // non-null iff this chunk owns an mmap
  std::size_t mapped_bytes_ = 0;
};

namespace detail {

/// Bounded-resident chunk manager: a pseudo-LRU over the file-backed
/// chunks, keyed by an epoch stamp per chunk (0 = cold / pages dropped,
/// otherwise the epoch of the last *fault* that found it cold). The hot
/// path — touching an already-hot chunk — is two relaxed atomic ops and
/// never takes the lock; the fault path is mutex-serialized and evicts
/// min-stamp victims until the hot set fits the budget again.
///
/// The stamp is deliberately NOT refreshed on every touch: a strict-LRU
/// stamp-per-read would put a contended store on every row() call. Fault
/// order is a good-enough recency signal for the streaming sweeps the
/// verdict kernels run, and it keeps the fast path read-mostly.
///
/// The manager never owns the chunks — every call takes the chunk vector by
/// reference, so a moved-from ChunkedModel leaves no dangling pointer here.
class Residency {
 public:
  Residency(std::size_t num_chunks, std::size_t budget)
      : budget_(budget == 0 ? 1 : budget), stamps_(num_chunks) {}

  Residency(const Residency&) = delete;
  Residency& operator=(const Residency&) = delete;

  /// Marks chunk `idx` used; pages it in (and evicts) if cold.
  void touch(const std::vector<Chunk>& chunks, std::size_t idx) {
    if (stamps_[idx].load(std::memory_order_relaxed) != 0) return;
    fault(chunks, idx);
  }

  /// Drops every file-backed chunk's pages and zeroes the accounting —
  /// the post-spill / post-load starting state.
  void reset_cold(const std::vector<Chunk>& chunks);

  /// Bytes of currently-hot file-backed payloads, and the high-water mark.
  std::size_t hot_bytes() const;
  std::size_t peak_bytes() const;

 private:
  void fault(const std::vector<Chunk>& chunks, std::size_t idx);

  const std::size_t budget_;  // max hot file-backed chunks, >= 1
  /// Per-chunk last-fault epoch; 0 = cold. Relaxed: the stamp orders
  /// nothing — correctness never depends on it (an evicted chunk refaults).
  std::vector<std::atomic<std::uint64_t>> stamps_;
  mutable common::Mutex mu_;
  std::uint64_t epoch_ GDP_GUARDED_BY(mu_) = 0;
  std::size_t hot_count_ GDP_GUARDED_BY(mu_) = 0;
  std::size_t hot_bytes_ GDP_GUARDED_BY(mu_) = 0;
  std::size_t peak_bytes_ GDP_GUARDED_BY(mu_) = 0;
};

}  // namespace detail

/// A model as a sequence of chunks. Mirrors the Model read API; see the
/// header comment for the spill and checkpoint contracts. Move-only.
class ChunkedModel {
 public:
  ChunkedModel(const ChunkedModel&) = delete;
  ChunkedModel& operator=(const ChunkedModel&) = delete;
  ChunkedModel(ChunkedModel&&) = default;
  ChunkedModel& operator=(ChunkedModel&&) = default;

  /// Chunks `model`. `keys` are the model's id-ordered packed keys and
  /// `codec` the layout that produced them (both from the explorer).
  /// Frontier states must be a contiguous id tail (the level-synchronous
  /// explorers guarantee it); spills immediately when options.spill.
  static ChunkedModel from_model(const Model& model, const KeyCodec& codec,
                                 const std::vector<PackedKey>& keys, StoreOptions options = {});

  // --- the Model read API ---
  int num_phils() const { return num_phils_; }
  std::size_t num_states() const { return num_states_; }
  StateId initial() const { return 0; }
  bool eating(StateId s) const { return eaters(s) != 0; }
  std::uint64_t eaters(StateId s) const { return chunk_of(s).eaters()[local_of(s)]; }
  std::pair<const Outcome*, const Outcome*> row(StateId s, int p) const {
    const Chunk& c = chunk_of(s);
    const std::size_t base = local_of(s) * static_cast<std::size_t>(num_phils_) +
                             static_cast<std::size_t>(p);
    return {c.outcomes() + c.offsets()[base], c.outcomes() + c.offsets()[base + 1]};
  }
  bool truncated() const { return truncated_; }
  bool frontier(StateId s) const { return chunk_of(s).frontier(local_of(s)); }
  std::size_t num_rows() const { return num_states_ * static_cast<std::size_t>(num_phils_); }

  // --- store-specific surface ---
  const KeyCodec& codec() const { return codec_; }
  PackedKey key(StateId s) const;
  /// Id-ordered copies of every state key (the resume path's seed).
  std::vector<PackedKey> keys() const;

  std::size_t num_chunks() const { return chunks_.size(); }
  std::size_t chunk_states() const { return chunk_states_; }
  const Chunk& chunk(std::size_t i) const { return chunks_[i]; }

  /// Chunking-independent model fingerprint: an FNV-1a stream over every
  /// state's logical content (key words, eater mask, frontier bit, rows) in
  /// id order, prefixed with the shape. Equal fingerprints <=> equal models
  /// (up to 64-bit FNV collisions), regardless of chunk_states and of
  /// whether the model ever hit a cap along the way.
  std::uint64_t fingerprint() const;

  /// Bytes of chunk payload currently resident: heap-owned chunks plus —
  /// under a max_resident_chunks budget — the hot file-backed set; without
  /// a budget, every non-spilled payload (the historical accounting, where
  /// a fully spilled model reads 0).
  std::size_t resident_bytes() const;
  /// High-water mark of the budget-managed hot set (resident_bytes() when
  /// no budget is active) — what the `ctest -L store` residency pin reads.
  std::size_t peak_resident_bytes() const;
  std::size_t spilled_bytes() const;

  /// Spills every resident chunk to options.dir (see Chunk::spill_to).
  void spill();

  /// Rebuilds the contiguous, validated Model (Model::build re-checks the
  /// CSR invariants — a second line of defense after the fingerprints).
  Model materialize() const;

  /// One self-contained fingerprinted file: header + per-chunk fingerprint
  /// table + chunk payloads.
  void save_checkpoint(const std::string& path) const;
  /// Maps `path` read-only and verifies the header against (algo, t) and
  /// every fingerprint against the payloads; throws PreconditionError on
  /// any mismatch (corruption refusal). Chunks view the mapping zero-copy.
  /// `options.chunk_states` comes from the file; `options.dir` and
  /// `options.max_resident_chunks` apply to the loaded model (the latter
  /// starts it cold — verification pages are dropped before returning).
  static ChunkedModel load_checkpoint(const algos::Algorithm& algo, const graph::Topology& t,
                                      const std::string& path, StoreOptions options = {});

 private:
  ChunkedModel() = default;

  const Chunk& chunk_of(StateId s) const {
    const std::size_t i = s / chunk_states_;
    if (residency_ != nullptr) residency_->touch(chunks_, i);
    return chunks_[i];
  }
  std::size_t local_of(StateId s) const { return s % chunk_states_; }

  int num_phils_ = 0;
  std::size_t num_states_ = 0;
  std::size_t chunk_states_ = 0;
  bool truncated_ = false;
  KeyCodec codec_;
  std::vector<Chunk> chunks_;
  StoreOptions options_;
  /// Process-unique prefix for this model's spill files (see StoreOptions::dir).
  std::uint64_t spill_seq_ = 0;
  /// Checkpoint file mapping backing view chunks; the deleter unmaps.
  std::shared_ptr<const std::uint64_t> file_map_;
  /// Present iff options_.max_resident_chunks > 0 (see detail::Residency).
  std::unique_ptr<detail::Residency> residency_;
};

/// Level-synchronous exploration straight into a chunked store (the same
/// engine as mdp::explore / par::explore, so the underlying model is
/// bit-identical to theirs at every thread count).
ChunkedModel explore(const algos::Algorithm& algo, const graph::Topology& t,
                     StoreOptions store_options = {}, par::CheckOptions options = {});

/// Continues a capped run from `checkpoint` under a (typically larger) cap
/// `options.max_states`. The result composes bit-identically with a
/// one-shot run: resume(save(explore_to_cap)) and the uncapped explore have
/// equal fingerprints at every thread count.
ChunkedModel resume(const algos::Algorithm& algo, const graph::Topology& t,
                    const ChunkedModel& checkpoint, StoreOptions store_options = {},
                    par::CheckOptions options = {});

// --- analysis over chunked models ---
//
// Chunk-native: each call instantiates the par:: / quant:: kernel templates
// directly over the ChunkedModel read API — the model is NEVER materialized
// ("store.materializations" stays 0 across these paths). Because the
// instantiations share one definition with the contiguous path, complete
// models produce byte-identical verdicts and intervals at every thread
// count, and truncated models keep the exact refusal semantics
// (kUnknownTruncated / Certainty::kTruncated). Under a
// max_resident_chunks budget the kernels page chunks in and out as they
// sweep; verdicts are unaffected (eviction only drops clean pages).

std::vector<bool> reachable_states(const ChunkedModel& model, par::CheckOptions options = {});

std::vector<EndComponent> maximal_end_components(const ChunkedModel& model,
                                                 std::uint64_t avoid_set = ~std::uint64_t{0},
                                                 par::CheckOptions options = {});

FairProgressResult check_fair_progress(const ChunkedModel& model,
                                       std::uint64_t set_mask = ~std::uint64_t{0},
                                       par::CheckOptions options = {});

quant::QuantResult analyze(const ChunkedModel& model,
                           std::uint64_t target_set = ~std::uint64_t{0},
                           quant::QuantOptions options = {});

}  // namespace gdp::mdp::store
