#include "gdp/mdp/key.hpp"

#include <bit>

#include "gdp/common/check.hpp"

namespace gdp::mdp {

namespace {

/// Bits needed to store values in [0, max_value]; at least 1 so every field
/// occupies a nonempty range (keeps offsets trivially distinct).
unsigned width_for(unsigned max_value) {
  return max_value == 0 ? 1u : static_cast<unsigned>(std::bit_width(max_value));
}

/// Appends `width` bits of `value` at cursor `bit` (little-endian within and
/// across words). The buffer is pre-zeroed, so plain ORs suffice.
inline void put_bits(std::uint64_t* words, std::size_t& bit, std::uint64_t value, unsigned width) {
  const unsigned off = static_cast<unsigned>(bit & 63);
  words[bit >> 6] |= value << off;
  if (off + width > 64) words[(bit >> 6) + 1] |= value >> (64 - off);
  bit += width;
}

inline std::uint64_t get_bits(const std::uint64_t* words, std::size_t& bit, unsigned width) {
  const unsigned off = static_cast<unsigned>(bit & 63);
  std::uint64_t value = words[bit >> 6] >> off;
  if (off + width > 64) value |= words[(bit >> 6) + 1] << (64 - off);
  bit += width;
  if (width < 64) value &= (std::uint64_t{1} << width) - 1;
  return value;
}

}  // namespace

KeyCodec::KeyCodec(const algos::Algorithm& algo, const graph::Topology& t) {
  num_forks_ = t.num_forks();
  num_phils_ = t.num_phils();
  books_ = algo.uses_books();
  numbers_ = algo.uses_numbers();

  // holder is stored +1 (0 = free), so the field must span [0, n].
  holder_bits_ = static_cast<std::uint8_t>(width_for(static_cast<unsigned>(num_phils_)));
  if (numbers_) {
    // nr_max_ is 16-bit storage: a larger m would truncate here, shrink
    // nr_bits_, and silently intern distinct states as one key. effective_m
    // guards the same bound at its own boundary; this check keeps the codec
    // sound even for callers that bypass it.
    const int m = algo.effective_m(t);
    GDP_CHECK_MSG(m >= 0 && m <= 0xffff,
                  "KeyCodec: effective m " << m << " exceeds the 16-bit nr field; "
                                              "keys would collide");
    nr_max_ = static_cast<std::uint16_t>(m);
    nr_bits_ = static_cast<std::uint8_t>(width_for(nr_max_));
  }
  // Aux words hold philosopher ids or small counters in [-1, n-1] (the
  // documented init_aux contract), stored +1.
  aux_words_ = static_cast<int>(algo.initial_state(t).aux.size());
  if (aux_words_ > 0) aux_bits_ = static_cast<std::uint8_t>(width_for(static_cast<unsigned>(num_phils_)));

  bits_ = 0;
  if (books_) {
    degree_.reserve(static_cast<std::size_t>(num_forks_));
    for (ForkId f = 0; f < num_forks_; ++f) {
      // validate() capped book-keeping degrees at 64 (the request word).
      GDP_CHECK_MSG(t.degree(f) <= 64, "books need degree <= 64, got " << t.degree(f));
      degree_.push_back(static_cast<std::uint8_t>(t.degree(f)));
    }
  }
  for (ForkId f = 0; f < num_forks_; ++f) {
    bits_ += holder_bits_ + nr_bits_;
    if (books_) {
      const unsigned deg = degree_[static_cast<std::size_t>(f)];
      bits_ += deg + deg * width_for(deg);  // request bits + per-slot ranks
    }
  }
  bits_ += static_cast<std::size_t>(num_phils_) * (phase_bits() + 1);
  bits_ += static_cast<std::size_t>(aux_words_) * aux_bits_;
  words_ = (bits_ + 63) / 64;
}

unsigned KeyCodec::rank_bits(ForkId f) const {
  return books_ ? width_for(degree_[static_cast<std::size_t>(f)]) : 0;
}

std::size_t KeyCodec::legacy_key_bytes() const {
  // SimState::encode per fork: holder byte, 2 nr bytes, 8 request bytes,
  // rank-size byte, then the ranks; per philosopher 4 bytes; 4 per aux word.
  std::size_t bytes = static_cast<std::size_t>(num_forks_) * 12;
  if (books_) {
    for (const std::uint8_t deg : degree_) bytes += deg;
  }
  bytes += static_cast<std::size_t>(num_phils_) * 4;
  bytes += static_cast<std::size_t>(aux_words_) * 4;
  return bytes;
}

void KeyCodec::encode(const sim::SimState& state, PackedKey& out) const {
  GDP_DCHECK(valid());
  GDP_DCHECK(static_cast<int>(state.forks.size()) == num_forks_);
  GDP_DCHECK(static_cast<int>(state.phils.size()) == num_phils_);
  GDP_CHECK_MSG(static_cast<int>(state.aux.size()) == aux_words_,
                "aux resized after init_aux: " << state.aux.size() << " words, layout has "
                                               << aux_words_);

  out.resize(words_);
  std::uint64_t* w = out.data();
  std::size_t bit = 0;

  for (ForkId f = 0; f < num_forks_; ++f) {
    // Field values outside their layout range would OR past the field
    // boundary and corrupt neighbours, so the guards are hard checks (one
    // integer compare each — noise next to the step() calls around encode).
    const sim::ForkState& fork = state.fork(f);
    GDP_CHECK_MSG(fork.holder >= kNoPhil && fork.holder < num_phils_,
                  "holder " << fork.holder << " outside [-1, " << num_phils_ << ")");
    put_bits(w, bit, static_cast<std::uint64_t>(fork.holder + 1), holder_bits_);
    if (numbers_) {
      GDP_CHECK_MSG(fork.nr <= nr_max_, "nr " << fork.nr << " > m = " << nr_max_);
      put_bits(w, bit, fork.nr, nr_bits_);
    } else {
      GDP_CHECK_MSG(fork.nr == 0, "nr written by an algorithm without uses_numbers()");
    }
    if (books_) {
      const unsigned deg = degree_[static_cast<std::size_t>(f)];
      GDP_CHECK_MSG(deg == 64 || (fork.requests >> deg) == 0,
                    "request bits beyond the fork's " << deg << " sharers");
      put_bits(w, bit, fork.requests, deg);
      GDP_CHECK_MSG(fork.use_rank.size() == deg,
                    "use_rank has " << fork.use_rank.size() << " slots, degree is " << deg);
      const unsigned rank_width = width_for(deg);
      for (const std::uint8_t rank : fork.use_rank) {
        GDP_CHECK_MSG(rank <= deg, "rank " << int{rank} << " > degree " << deg);
        put_bits(w, bit, rank, rank_width);
      }
    } else {
      GDP_CHECK_MSG(fork.requests == 0 && fork.use_rank.empty(),
                    "books written by an algorithm without uses_books()");
    }
  }

  for (const sim::PhilState& phil : state.phils) {
    put_bits(w, bit, static_cast<std::uint64_t>(phil.phase), phase_bits());
    put_bits(w, bit, static_cast<std::uint64_t>(phil.committed), 1);
    // No in-tree Topology algorithm writes scratch; a zero-width field would
    // silently alias states if one ever did, so refuse loudly instead.
    GDP_CHECK_MSG(phil.scratch == 0,
                  "KeyCodec has no scratch field (got " << phil.scratch
                                                        << "); extend the layout first");
  }

  for (const std::int32_t word : state.aux) {
    GDP_CHECK_MSG(word >= -1 && word < num_phils_,
                  "aux word " << word << " outside the [-1, n-1] layout contract");
    put_bits(w, bit, static_cast<std::uint64_t>(word + 1), aux_bits_);
  }
  GDP_DCHECK(bit == bits_);
}

sim::SimState KeyCodec::decode(const PackedKey& key) const {
  GDP_CHECK_MSG(valid(), "decode on an unset KeyCodec");
  GDP_CHECK_MSG(key.words() == words_, "key width " << key.words() << " != layout " << words_);

  sim::SimState state;
  state.forks.resize(static_cast<std::size_t>(num_forks_));
  state.phils.resize(static_cast<std::size_t>(num_phils_));
  state.aux.resize(static_cast<std::size_t>(aux_words_));

  const std::uint64_t* w = key.data();
  std::size_t bit = 0;

  for (ForkId f = 0; f < num_forks_; ++f) {
    sim::ForkState& fork = state.fork(f);
    fork.holder = static_cast<PhilId>(get_bits(w, bit, holder_bits_)) - 1;
    if (numbers_) fork.nr = static_cast<std::uint16_t>(get_bits(w, bit, nr_bits_));
    if (books_) {
      const unsigned deg = degree_[static_cast<std::size_t>(f)];
      fork.requests = get_bits(w, bit, deg);
      fork.use_rank.resize(deg);
      const unsigned rank_width = width_for(deg);
      for (std::uint8_t& rank : fork.use_rank) {
        rank = static_cast<std::uint8_t>(get_bits(w, bit, rank_width));
      }
    }
  }

  for (sim::PhilState& phil : state.phils) {
    phil.phase = static_cast<sim::Phase>(get_bits(w, bit, phase_bits()));
    phil.committed = static_cast<Side>(get_bits(w, bit, 1));
  }

  for (std::int32_t& word : state.aux) {
    word = static_cast<std::int32_t>(get_bits(w, bit, aux_bits_)) - 1;
  }
  return state;
}

}  // namespace gdp::mdp
