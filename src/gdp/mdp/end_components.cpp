#include "gdp/mdp/end_components.hpp"

#include "gdp/mdp/end_components_impl.hpp"

namespace gdp::mdp {

// The algorithm lives in end_components_impl.hpp as a template over the Model
// read API; this translation unit instantiates it for the contiguous Model.
// store.cpp instantiates the same definition for store::ChunkedModel, which
// is what makes chunk-native components byte-identical by construction.

std::vector<EndComponent> maximal_end_components(const Model& model, std::uint64_t avoid_set) {
  return detail::maximal_end_components_t(model, avoid_set);
}

std::vector<bool> reachable_states(const Model& model) {
  return detail::reachable_states_t(model);
}

}  // namespace gdp::mdp
