// Template definition of the verdict logic over an already-computed MEC
// decomposition, generalized over the Model read API. Instantiated for
// `Model` (fair_progress.cpp / par) and `store::ChunkedModel` (store.cpp):
// the verdict, the witness choice and every count come out identical on
// both paths because this is the one definition.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "gdp/mdp/end_components.hpp"
#include "gdp/mdp/fair_progress.hpp"

namespace gdp::mdp::detail {

template <class ModelT>
FairProgressResult verdict_from_mecs_t(const ModelT& model, std::uint64_t set_mask,
                                       const std::vector<EndComponent>& mecs,
                                       const std::vector<bool>& reached) {
  FairProgressResult result;
  result.avoid_set = set_mask;
  result.num_states = model.num_states();
  result.num_mecs = mecs.size();

  for (const EndComponent& mec : mecs) {
    if (!mec.fair(model.num_phils())) continue;
    ++result.num_fair_mecs;
    const bool reachable = std::any_of(mec.states.begin(), mec.states.end(),
                                       [&](StateId s) { return reached[s]; });
    if (reachable && result.witness_size == 0) {
      result.witness_size = mec.states.size();
      result.witness_state = mec.states.front();
    }
  }

  if (result.witness_size != 0) {
    result.verdict = Verdict::kProgressFails;
  } else if (model.truncated()) {
    result.verdict = Verdict::kUnknownTruncated;
  } else {
    result.verdict = Verdict::kProgressCertain;
  }
  return result;
}

}  // namespace gdp::mdp::detail
