// Adversary synthesis: turn a model-checker witness (a fair end component
// avoiding the eating set) into an *executable scheduler*.
//
// The paper constructs its winning adversaries by hand (the §3 example,
// Figures 2-3). check_fair_progress finds such adversaries automatically as
// fair ECs; WitnessScheduler closes the loop by playing one back against
// the live simulator:
//
//   * outside the component it follows a max-probability attractor policy
//     toward the EC (value-iterated over the explored model);
//   * inside, it only schedules philosophers whose step distributions stay
//     within the EC (closure makes that invariant under all random
//     outcomes), rotating among them for fairness.
//
// Once the run enters the EC it never eats again — an empirical execution
// of the machine-found counterexample. Used by tests and bench E5.
#pragma once

#include <cstdint>
#include <vector>

#include "gdp/mdp/end_components.hpp"
#include "gdp/mdp/key.hpp"
#include "gdp/mdp/model.hpp"
#include "gdp/sim/scheduler.hpp"

namespace gdp::mdp {

/// explore() variant that also returns the packed-key -> id map (plus the
/// codec that produced the keys, see gdp/mdp/key.hpp), so live simulator
/// configurations can be located inside the model.
Model explore_indexed(const algos::Algorithm& algo, const graph::Topology& t,
                      std::size_t max_states, StateIndex& index_out);

class WitnessScheduler final : public sim::Scheduler {
 public:
  /// `model`/`index` from explore_indexed; `ec` a (fair) EC of that model.
  WitnessScheduler(const Model& model, const StateIndex& index, const EndComponent& ec);

  std::string name() const override { return "witness"; }
  void reset(const graph::Topology& t) override;
  PhilId pick(const graph::Topology& t, const sim::SimState& state, const sim::RunView& view,
              rng::RandomSource& rng) override;

  /// True once the run has entered the witness component (from then on no
  /// philosopher in the avoided set ever eats).
  bool entered_component() const { return entered_; }
  /// Steps spent inside the component so far.
  std::uint64_t steps_inside() const { return inside_steps_; }

 private:
  bool in_component(StateId s) const { return in_ec_[s]; }
  /// Action keeps every outcome inside the EC?
  bool usable_inside(StateId s, int phil) const;

  const Model& model_;
  const StateIndex& index_;
  std::vector<bool> in_ec_;
  /// Greedy attractor: best philosopher to schedule toward the EC.
  std::vector<std::int16_t> toward_ec_;
  bool entered_ = false;
  std::uint64_t inside_steps_ = 0;
  PackedKey key_;
  std::vector<std::uint64_t> last_inside_pick_;
};

}  // namespace gdp::mdp
