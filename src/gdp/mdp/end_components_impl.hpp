// Template definitions for the sequential MEC decomposition and the
// sequential reachability sweep, generalized over any type exposing the
// Model read API (num_states/num_phils/initial/row/eaters/frontier).
//
// Two instantiations exist on purpose: `Model` (end_components.cpp — the
// contiguous in-RAM path) and `store::ChunkedModel` (store.cpp — the
// chunk-native path, which must produce byte-identical components without
// ever materializing a contiguous model). Keeping one definition is what
// makes the bit-identity contract hold by construction.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "gdp/mdp/end_components.hpp"
#include "gdp/mdp/model.hpp"

namespace gdp::mdp::detail {

inline constexpr std::int32_t kEcRemoved = -1;

/// Iterative Tarjan SCC over the candidate sub-MDP. Edges are the outcomes
/// of currently-usable actions; `component[s]` gets a dense SCC id (or
/// kEcRemoved for states outside the candidate set).
template <class ModelT>
class SccFinderT {
 public:
  SccFinderT(const ModelT& model, const std::vector<std::int32_t>& component,
             std::vector<std::int32_t>& out)
      : model_(model), in_(component), out_(out) {}

  int run() {
    const std::size_t n = model_.num_states();
    index_.assign(n, -1);
    low_.assign(n, 0);
    on_stack_.assign(n, false);
    std::fill(out_.begin(), out_.end(), kEcRemoved);
    for (StateId s = 0; s < n; ++s) {
      if (in_[s] != kEcRemoved && index_[s] == -1) strongconnect(s);
    }
    return next_scc_;
  }

 private:
  /// Usable action: all outcomes stay in the same candidate partition as s.
  bool usable(StateId s, int p) const {
    const auto [begin, end] = model_.row(s, p);
    if (begin == end) return false;
    for (const Outcome* o = begin; o != end; ++o) {
      if (in_[o->next] != in_[s]) return false;
    }
    return true;
  }

  void strongconnect(StateId root) {
    struct Frame {
      StateId state;
      int phil;
      const Outcome* edge;
      const Outcome* edge_end;
    };
    std::vector<Frame> stack;
    auto push_state = [&](StateId s) {
      index_[s] = low_[s] = counter_++;
      tarjan_stack_.push_back(s);
      on_stack_[s] = true;
      stack.push_back(Frame{s, -1, nullptr, nullptr});
    };
    push_state(root);

    while (!stack.empty()) {
      Frame& frame = stack.back();
      // Advance to the next outgoing edge.
      if (frame.edge == frame.edge_end) {
        // Move to the next usable action row.
        ++frame.phil;
        while (frame.phil < model_.num_phils() && !usable(frame.state, frame.phil)) ++frame.phil;
        if (frame.phil < model_.num_phils()) {
          const auto [begin, end] = model_.row(frame.state, frame.phil);
          frame.edge = begin;
          frame.edge_end = end;
          continue;
        }
        // All edges done: close the frame.
        const StateId s = frame.state;
        stack.pop_back();
        if (!stack.empty()) {
          low_[stack.back().state] = std::min(low_[stack.back().state], low_[s]);
        }
        if (low_[s] == index_[s]) {
          const std::int32_t id = next_scc_++;
          while (true) {
            const StateId w = tarjan_stack_.back();
            tarjan_stack_.pop_back();
            on_stack_[w] = false;
            out_[w] = id;
            if (w == s) break;
          }
        }
        continue;
      }
      const StateId next = frame.edge->next;
      ++frame.edge;
      if (index_[next] == -1) {
        push_state(next);
      } else if (on_stack_[next]) {
        low_[frame.state] = std::min(low_[frame.state], index_[next]);
      }
    }
  }

  const ModelT& model_;
  const std::vector<std::int32_t>& in_;
  std::vector<std::int32_t>& out_;
  std::vector<std::int32_t> index_;
  std::vector<std::int32_t> low_;
  std::vector<bool> on_stack_;
  std::vector<StateId> tarjan_stack_;
  std::int32_t counter_ = 0;
  std::int32_t next_scc_ = 0;
};

template <class ModelT>
std::vector<EndComponent> maximal_end_components_t(const ModelT& model, std::uint64_t avoid_set) {
  const std::size_t n = model.num_states();
  // Partition id per state; kEcRemoved = outside the candidate set. Start with
  // one partition holding every expanded state where no avoid_set member eats.
  std::vector<std::int32_t> component(n, kEcRemoved);
  for (StateId s = 0; s < n; ++s) {
    if ((model.eaters(s) & avoid_set) == 0 && !model.frontier(s)) component[s] = 0;
  }

  std::vector<std::int32_t> refined(n, kEcRemoved);
  bool changed = true;
  while (changed) {
    changed = false;
    SccFinderT<ModelT> finder(model, component, refined);
    finder.run();

    // A state survives if at least one action keeps ALL outcomes within its
    // own (new) SCC; otherwise remove it and iterate.
    for (StateId s = 0; s < n; ++s) {
      if (component[s] == kEcRemoved) continue;
      if (refined[s] == kEcRemoved) {
        component[s] = kEcRemoved;
        changed = true;
        continue;
      }
      bool has_usable = false;
      for (int p = 0; p < model.num_phils() && !has_usable; ++p) {
        const auto [begin, end] = model.row(s, p);
        if (begin == end) continue;
        bool inside = true;
        for (const Outcome* o = begin; o != end && inside; ++o) {
          inside = refined[o->next] != kEcRemoved && refined[o->next] == refined[s];
        }
        has_usable = inside;
      }
      if (!has_usable) {
        refined[s] = kEcRemoved;
        changed = true;
      }
    }
    if (!std::equal(component.begin(), component.end(), refined.begin())) changed = true;
    component = refined;
  }

  // Collect surviving partitions as MECs with their philosopher masks.
  std::vector<std::int32_t> id_remap;
  std::vector<EndComponent> mecs;
  for (StateId s = 0; s < n; ++s) {
    if (component[s] == kEcRemoved) continue;
    const auto raw = static_cast<std::size_t>(component[s]);
    if (raw >= id_remap.size()) id_remap.resize(raw + 1, kEcRemoved);
    if (id_remap[raw] == kEcRemoved) {
      id_remap[raw] = static_cast<std::int32_t>(mecs.size());
      mecs.emplace_back();
    }
    EndComponent& mec = mecs[static_cast<std::size_t>(id_remap[raw])];
    mec.states.push_back(s);
    for (int p = 0; p < model.num_phils(); ++p) {
      const auto [begin, end] = model.row(s, p);
      if (begin == end) continue;
      bool inside = true;
      for (const Outcome* o = begin; o != end && inside; ++o) {
        inside = component[o->next] == component[s];
      }
      if (inside && p < 64) mec.phil_mask |= (std::uint64_t{1} << p);
    }
  }
  return mecs;
}

template <class ModelT>
std::vector<bool> reachable_states_t(const ModelT& model) {
  std::vector<bool> reached(model.num_states(), false);
  std::vector<StateId> stack{model.initial()};
  reached[model.initial()] = true;
  while (!stack.empty()) {
    const StateId s = stack.back();
    stack.pop_back();
    for (int p = 0; p < model.num_phils(); ++p) {
      const auto [begin, end] = model.row(s, p);
      for (const Outcome* o = begin; o != end; ++o) {
        if (!reached[o->next]) {
          reached[o->next] = true;
          stack.push_back(o->next);
        }
      }
    }
  }
  return reached;
}

}  // namespace gdp::mdp::detail
