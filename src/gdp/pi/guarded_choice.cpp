#include "gdp/pi/guarded_choice.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <mutex>
#include <thread>

#include "gdp/common/check.hpp"
#include "gdp/common/thread_annotations.hpp"
#include "gdp/rng/rng.hpp"
#include "gdp/runtime/atomic_fork.hpp"

namespace gdp::pi {
namespace {

/// An agent's claimable intent. state: 0 = open, -1 = retracted,
/// c + 1 = committed to a rendezvous on channel c.
struct Offer {
  PhilId agent = kNoPhil;
  bool is_send = false;
  std::atomic<int> state{0};
};

/// A channel: a fork-like lock (the holder may scan/mutate the offer list)
/// plus the GDP nr priority carried by the lock object.
struct Channel {
  runtime::AtomicFork lock;
  /// Raw pointers into Shared::pools — which is exactly why the pools live
  /// in Shared and not in the Agent (the PR 2 use-after-free). Had this
  /// annotation existed then, any unlocked scan would have failed the
  /// GDP_THREAD_SAFETY build instead of flaking under ASan.
  std::vector<Offer*> offers GDP_GUARDED_BY(lock);
  std::atomic<std::uint64_t> syncs{0};
};

struct Shared {
  explicit Shared(const graph::Topology& t)
      : topology(t), pools(static_cast<std::size_t>(t.num_phils())) {}
  const graph::Topology& topology;
  std::deque<Channel> channels;
  /// Per-agent offer storage. Lives here — not in the Agent — because
  /// channel offer lists keep raw pointers into it: an agent that exits
  /// early must not free offers its peers may still scan.
  std::vector<std::deque<Offer>> pools;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> rendezvous{0};
  std::atomic<std::uint64_t> violations{0};
  std::uint64_t target = 0;
  int m = 0;
};

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

class Agent {
 public:
  Agent(Shared& shared, PhilId id, std::uint64_t seed, std::uint64_t& syncs_out)
      : s_(shared),
        id_(id),
        rng_(seed),
        syncs_(syncs_out),
        left_(shared.topology.left_of(id)),
        right_(shared.topology.right_of(id)),
        pool_(shared.pools[static_cast<std::size_t>(id)]) {}

  /// Analysis opt-out, justified: `offers` is guarded by the AtomicFork
  /// spin lock of a *data-dependent* channel (channel(left_) /
  /// channel(right_)), acquired two at a time by acquire_both() with
  /// retry-and-back-off — aliasing and control flow Clang's intraprocedural
  /// capability tracking cannot express. The discipline itself is simple
  /// (touch offers only between a successful acquire_both() and
  /// release_both()) and stays enforced dynamically: AtomicFork's
  /// GDP_DCHECK holder checks plus the TSan CI job.
  void run() GDP_NO_THREAD_SAFETY_ANALYSIS {
    Offer* mine = nullptr;  // currently posted offer, if any
    while (!s_.stop.load(std::memory_order_relaxed)) {
      // If a previously posted offer got claimed, the rendezvous is ours too.
      if (mine != nullptr) {
        const int state = mine->state.load(std::memory_order_acquire);
        if (state > 0) {
          if (state - 1 != left_ && state - 1 != right_) {
            s_.violations.fetch_add(1, std::memory_order_relaxed);
          }
          ++syncs_;
          mine = nullptr;
          continue;
        }
      }

      if (!acquire_both()) break;
      // --- both channels locked: scan for a complementary open offer.
      Offer* matched = nullptr;
      ForkId matched_on = kNoFork;
      for (ForkId c : {left_, right_}) {
        auto& offers = channel(c).offers;
        std::erase_if(offers, [](Offer* o) { return o->state.load() != 0; });
        for (Offer* candidate : offers) {
          if (candidate->agent == id_) continue;
          int expected = 0;
          if (candidate->state.compare_exchange_strong(expected, c + 1,
                                                       std::memory_order_acq_rel)) {
            matched = candidate;
            matched_on = c;
            break;
          }
        }
        if (matched != nullptr) break;
      }

      if (matched != nullptr) {
        // Rendezvous committed: retract our own pending offer, if any (both
        // of its channels are locked by us, so the CAS cannot race a claim).
        if (mine != nullptr) {
          int expected = 0;
          mine->state.compare_exchange_strong(expected, -1, std::memory_order_acq_rel);
          mine = nullptr;
        }
        channel(matched_on).syncs.fetch_add(1, std::memory_order_relaxed);
        ++syncs_;
        const std::uint64_t total = s_.rendezvous.fetch_add(1, std::memory_order_relaxed) + 1;
        if (total >= s_.target) s_.stop.store(true, std::memory_order_relaxed);
      } else if (mine == nullptr) {
        // Nothing to match: publish our mixed choice on both channels.
        pool_.emplace_back();
        mine = &pool_.back();
        mine->agent = id_;
        mine->is_send = (id_ % 2 == 0);
        channel(left_).offers.push_back(mine);
        channel(right_).offers.push_back(mine);
      }
      release_both();

      // Wait a bounded while for a peer to claim our offer before retrying.
      for (int spin = 0; spin < 512 && mine != nullptr; ++spin) {
        if (mine->state.load(std::memory_order_acquire) != 0 ||
            s_.stop.load(std::memory_order_relaxed)) {
          break;
        }
        cpu_relax();
      }
    }
    // Final claim check so late rendezvous still count.
    if (mine != nullptr && mine->state.load(std::memory_order_acquire) > 0) ++syncs_;
  }

 private:
  Channel& channel(ForkId c) { return s_.channels[static_cast<std::size_t>(c)]; }

  /// GDP1-style two-channel acquisition: higher nr first (ties right),
  /// re-randomize on equality, single attempt on the second.
  bool acquire_both() {
    while (true) {
      if (s_.stop.load(std::memory_order_relaxed)) return false;
      const bool left_first = channel(left_).lock.nr() > channel(right_).lock.nr();
      const ForkId f = left_first ? left_ : right_;
      const ForkId g = left_first ? right_ : left_;
      for (std::uint32_t spins = 0; !channel(f).lock.try_take(id_); ++spins) {
        if (s_.stop.load(std::memory_order_relaxed)) return false;
        if ((spins & 0x3ff) == 0x3ff) std::this_thread::yield();
        cpu_relax();
      }
      if (channel(f).lock.nr() == channel(g).lock.nr()) {
        channel(f).lock.set_nr(id_, static_cast<std::uint16_t>(rng_.uniform_int(1, s_.m)));
      }
      if (channel(g).lock.try_take(id_)) return true;
      channel(f).lock.release(id_);
      cpu_relax();
    }
  }

  void release_both() {
    channel(left_).lock.release(id_);
    channel(right_).lock.release(id_);
  }

  Shared& s_;
  const PhilId id_;
  rng::Rng rng_;
  std::uint64_t& syncs_;
  const ForkId left_, right_;
  std::deque<Offer>& pool_;  // stable addresses in Shared; outlives every agent
};

}  // namespace

bool ChoiceResult::everyone_synced() const {
  return std::all_of(syncs_of.begin(), syncs_of.end(), [](std::uint64_t s) { return s > 0; });
}

ChoiceResult run_guarded_choice(const graph::Topology& t, const ChoiceConfig& config) {
  GDP_CHECK_MSG(config.target_syncs > 0, "run_guarded_choice needs a sync target");

  Shared shared(t);
  shared.target = config.target_syncs;
  shared.m = config.m != 0 ? config.m : t.num_forks();
  GDP_CHECK_MSG(shared.m >= t.num_forks(), "GDP requires m >= number of channels");
  for (ForkId c = 0; c < t.num_forks(); ++c) shared.channels.emplace_back();

  std::vector<std::uint64_t> syncs_of(static_cast<std::size_t>(t.num_phils()), 0);
  rng::Rng seeder(config.seed);

  // gdp-lint: allow(wall-clock) — duration cutoff for a real-concurrency harness;
  // sync counts are reported per-run, never diffed against golden files
  const auto start = std::chrono::steady_clock::now();
  {
    // gdp-lint: allow(raw-thread) — the point of this harness is one OS thread
    // per agent racing on real mutexes; the deterministic pool does not apply
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(t.num_phils()));
    for (PhilId a = 0; a < t.num_phils(); ++a) {
      const std::uint64_t seed = seeder.split(static_cast<std::uint64_t>(a)).next_u64();
      threads.emplace_back([&shared, a, seed, &syncs_of] {
        Agent agent(shared, a, seed, syncs_of[static_cast<std::size_t>(a)]);
        agent.run();
      });
    }
    const auto deadline = start + config.max_duration;
    while (!shared.stop.load(std::memory_order_relaxed) &&
           std::chrono::steady_clock::now() < deadline) {  // gdp-lint: allow(wall-clock) — deadline poll, timing-only
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    shared.stop.store(true, std::memory_order_relaxed);
  }
  const auto end = std::chrono::steady_clock::now();  // gdp-lint: allow(wall-clock) — elapsed-seconds report only

  ChoiceResult result;
  result.syncs_of = std::move(syncs_of);
  result.total_syncs = shared.rendezvous.load();
  for (ForkId c = 0; c < t.num_forks(); ++c) {
    result.syncs_on.push_back(shared.channels[static_cast<std::size_t>(c)].syncs.load());
  }
  result.elapsed_seconds = std::chrono::duration<double>(end - start).count();
  result.syncs_per_second = result.elapsed_seconds > 0
                                ? static_cast<double>(result.total_syncs) / result.elapsed_seconds
                                : 0.0;
  result.violations = shared.violations.load();
  return result;
}

}  // namespace gdp::pi
