// The paper's motivating application (§1, §6): implementing the
// pi-calculus' *mixed guarded choice* in a symmetric, fully distributed way.
//
// An agent performing  select(a!v -> P, b?x -> Q)  must atomically commit to
// exactly one of two channels it shares with other agents. Mapping channels
// to forks and choosing agents to philosophers (the reduction sketched in
// the paper: "the resources correspond to the channels"), committing a
// choice = acquiring both adjacent channels; a channel shared by many
// agents is precisely a fork shared by many philosophers, i.e. the
// *generalized* problem — which is why the paper needs GDP rather than
// Lehmann-Rabin.
//
// The runtime here is a miniature but real implementation:
//   * Channel: a fork-like lock (holder may scan/mutate the channel's offer
//     list) with a GDP nr priority field;
//   * Offer: an agent's claimable intent (send or receive) with an atomic
//     commit word — rendezvous commits by CAS, so a matched peer never
//     needs a third channel's lock;
//   * ChoiceAgent loop: acquire both channels GDP-style, match a
//     complementary pending offer (completing a rendezvous) or post its own
//     offer to both, release, and await its offer being claimed.
//
// Every synchronization pairs one sender with one receiver on one channel;
// the tests check global pairing consistency and (under the courteous
// variant) that no agent starves.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "gdp/graph/topology.hpp"

namespace gdp::pi {

struct ChoiceConfig {
  std::uint64_t seed = 1;
  /// Stop once this many rendezvous completed (split across agents).
  std::uint64_t target_syncs = 1000;
  /// Safety-net duration after which the run stops regardless.
  std::chrono::milliseconds max_duration{10'000};
  /// GDP numbering range (0 = number of channels).
  int m = 0;
};

struct ChoiceResult {
  std::uint64_t total_syncs = 0;
  /// Per agent: rendezvous completed (as either matcher or matchee).
  std::vector<std::uint64_t> syncs_of;
  /// Per channel: rendezvous carried.
  std::vector<std::uint64_t> syncs_on;
  double elapsed_seconds = 0.0;
  double syncs_per_second = 0.0;
  /// Pairing violations detected (an offer claimed twice, etc.); must be 0.
  std::uint64_t violations = 0;

  bool everyone_synced() const;
};

/// Runs one choosing agent per topology arc (channels = forks) with real
/// threads until `target_syncs` or the duration cap. Agents with even id
/// offer sends, odd id offers receives, and any agent may *match* either
/// direction — a genuine mixed choice.
ChoiceResult run_guarded_choice(const graph::Topology& t, const ChoiceConfig& config);

}  // namespace gdp::pi
