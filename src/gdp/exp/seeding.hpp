// Deterministic per-trial seed derivation for experiment campaigns.
//
// Every trial of a campaign draws its randomness from a seed that is a pure
// function of (campaign seed, cell index, trial index), derived through
// SplitMix64. Because no seed depends on which thread executes the trial or
// in what order trials complete, a campaign's aggregates are bit-identical
// for any Runner thread count — the core gdp::exp contract.
#pragma once

#include <cstdint>

#include "gdp/rng/splitmix.hpp"

namespace gdp::exp {

/// Seed of trial `trial` of grid cell `cell` in a campaign seeded with
/// `campaign_seed`. Chained SplitMix64 finalizers keep distinct coordinates
/// well separated even for adjacent campaign seeds and small indices.
constexpr std::uint64_t trial_seed(std::uint64_t campaign_seed, std::uint64_t cell,
                                   std::uint64_t trial) {
  std::uint64_t h = rng::splitmix64_once(campaign_seed);
  h = rng::splitmix64_once(h ^ (cell + 0x9e3779b97f4a7c15ULL));
  h = rng::splitmix64_once(h ^ (trial + 0xbf58476d1ce4e5b9ULL));
  return h;
}

}  // namespace gdp::exp
