// Deterministic aggregation of campaign trials.
//
// Workers reduce each RunResult to a TrialOutcome (plain numbers, O(1)
// memory) and park it at its global trial index; after the pool drains, the
// outcomes are folded into per-cell aggregates in trial order on one thread.
// Folding in index order — never in completion order — is what makes the
// CSV/JSON renderings bit-identical for any thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gdp/exp/campaign.hpp"
#include "gdp/stats/ci.hpp"
#include "gdp/stats/histogram.hpp"
#include "gdp/stats/online.hpp"

namespace gdp::exp {

/// The per-trial reduction of a RunResult.
struct TrialOutcome {
  std::uint64_t steps = 0;
  std::uint64_t meals = 0;
  std::uint64_t first_meal = sim::kNever;
  std::uint64_t max_hunger = 0;
  std::uint64_t max_sched_gap = 0;
  /// Metrics of the spec's tracked philosopher (victim analyses).
  std::uint64_t tracked_meals = 0;
  std::uint64_t tracked_hunger = 0;
  /// Jain fairness index of the per-philosopher meal counts.
  double jain = 1.0;
  bool everyone_ate = false;
  bool deadlocked = false;
  bool probe = false;
  /// True when the algorithm's validate() rejected the cell's topology
  /// (spec.skip_invalid); all other fields are meaningless then.
  bool skipped = false;
};

/// Reduces a finished run; an out-of-range `tracked` clamps to the run's
/// last philosopher.
TrialOutcome summarize(const sim::RunResult& r, PhilId tracked);

class CellAggregate {
 public:
  CellAggregate(Cell cell, std::string label);

  void fold(const TrialOutcome& t);

  const Cell& cell() const { return cell_; }
  const std::string& label() const { return label_; }
  bool skipped() const { return skipped_; }

  std::uint64_t trials() const { return trials_; }
  std::uint64_t deadlocks() const { return deadlocks_; }
  std::uint64_t everyone_ate() const { return everyone_ate_; }
  std::uint64_t progressed() const { return progressed_; }
  std::uint64_t probe_hits() const { return probe_hits_; }
  /// Trials where no meal ever happened (first_meal stats exclude them).
  std::uint64_t no_meal_trials() const { return no_meal_trials_; }

  const stats::OnlineStats& steps() const { return steps_; }
  const stats::OnlineStats& meals() const { return meals_; }
  const stats::OnlineStats& first_meal() const { return first_meal_; }
  const stats::OnlineStats& max_hunger() const { return max_hunger_; }
  const stats::OnlineStats& sched_gap() const { return sched_gap_; }
  const stats::OnlineStats& tracked_meals() const { return tracked_meals_; }
  const stats::OnlineStats& tracked_hunger() const { return tracked_hunger_; }
  const stats::OnlineStats& jain() const { return jain_; }

  /// Exact nearest-rank quantile of the per-trial max-hunger samples
  /// (q in [0, 1]; 0 with no samples). Integer-valued, so bit-stable.
  double hunger_quantile(double q) const;

  /// Hunger-span distribution for rendering, bucketed over the *observed*
  /// range [0, max sample] so resolution tracks the data, not the step
  /// budget. `buckets >= 1`.
  stats::Histogram hunger_histogram(int buckets = 32) const;

  /// Wilson intervals for the Bernoulli outcomes.
  stats::Interval everyone_ate_ci(double z = 1.96) const;
  stats::Interval probe_ci(double z = 1.96) const;
  stats::Interval deadlock_ci(double z = 1.96) const;

 private:
  Cell cell_;
  std::string label_;
  bool skipped_ = false;
  std::uint64_t trials_ = 0;
  std::uint64_t deadlocks_ = 0;
  std::uint64_t everyone_ate_ = 0;
  std::uint64_t progressed_ = 0;
  std::uint64_t probe_hits_ = 0;
  std::uint64_t no_meal_trials_ = 0;
  stats::OnlineStats steps_, meals_, first_meal_, max_hunger_, sched_gap_;
  stats::OnlineStats tracked_meals_, tracked_hunger_, jain_;
  /// One max-hunger sample per trial; lazily sorted in place on the first
  /// quantile query after a fold (quantiles are order-independent).
  mutable std::vector<std::uint64_t> hunger_samples_;
  mutable bool hunger_sorted_ = true;
};

struct CampaignResult {
  std::string name;
  std::uint64_t seed = 0;
  int trials_per_cell = 0;
  std::vector<CellAggregate> cells;

  /// Deterministic renderings: bit-identical for the same spec and seed
  /// regardless of Runner thread count. No wall-clock or host data.
  std::string csv() const;
  std::string json() const;

  void write_csv(const std::string& path) const;
  void write_json(const std::string& path) const;

  /// The aggregate for a cell index (checked).
  const CellAggregate& at(std::size_t cell_index) const;
};

}  // namespace gdp::exp
