// Parallel campaign execution.
//
// The Runner flattens the grid into cells x trials independent tasks and
// executes them on the shared work-stealing pool (gdp/common/pool.hpp, also
// backing the parallel model checker gdp::mdp::par): each worker owns a
// contiguous shard of the task range, pops from its front, and when empty
// steals the back half of the fullest shard. Trials are heavyweight
// (thousands of simulator steps), so a single packed-range CAS per claim is
// all the queue machinery the pool needs.
//
// Determinism: trial seeds depend only on (campaign seed, cell, trial)
// (seeding.hpp) and every outcome is parked at its global task index, then
// folded in index order on one thread — so the CampaignResult is
// bit-identical for any thread count, including 1.
//
// Concurrency discipline (checked by gdp_lint + GDP_THREAD_SAFETY): the
// Runner holds NO capabilities on purpose. Workers share only immutable
// state (spec, plans) and the outcomes vector, where task id = write index
// makes every write disjoint; the fold happens after the pool joins. Any
// future mutable shared state added here must be GDP_GUARDED_BY an
// annotated gdp::common::Mutex (gdp/common/thread_annotations.hpp) — not a
// bare std::mutex, which the static race analysis cannot see through.
#pragma once

#include "gdp/exp/aggregate.hpp"
#include "gdp/exp/campaign.hpp"

namespace gdp::exp {

struct RunnerOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency(). Always
  /// clamped to [1, number of tasks].
  int threads = 0;
};

class Runner {
 public:
  explicit Runner(RunnerOptions options = {});

  /// Executes the whole grid; throws PreconditionError on an invalid spec
  /// and rethrows the first worker exception (after the pool drains).
  CampaignResult run(const CampaignSpec& spec) const;

  /// The configured thread count (0 = hardware concurrency at run time).
  int threads() const { return options_.threads; }

 private:
  RunnerOptions options_;
};

/// One-call convenience.
CampaignResult run_campaign(const CampaignSpec& spec, int threads = 0);

}  // namespace gdp::exp
