#include "gdp/exp/aggregate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "gdp/common/check.hpp"
#include "gdp/common/strings.hpp"
#include "gdp/stats/csv.hpp"
#include "gdp/stats/jain.hpp"

namespace gdp::exp {

TrialOutcome summarize(const sim::RunResult& r, PhilId tracked) {
  TrialOutcome out;
  out.steps = r.steps;
  out.meals = r.total_meals;
  out.first_meal = r.first_meal_step;
  out.max_hunger = r.max_hunger();
  out.max_sched_gap = r.max_sched_gap;
  if (!r.meals_of.empty()) {
    const auto p = static_cast<std::size_t>(tracked) < r.meals_of.size()
                       ? static_cast<std::size_t>(tracked)
                       : r.meals_of.size() - 1;
    out.tracked_meals = r.meals_of[p];
    out.tracked_hunger = r.max_hunger_of[p];
  }
  out.jain = stats::jain_index(r.meals_of);
  out.everyone_ate = r.everyone_ate();
  out.deadlocked = r.deadlocked;
  return out;
}

CellAggregate::CellAggregate(Cell cell, std::string label)
    : cell_(cell), label_(std::move(label)) {}

void CellAggregate::fold(const TrialOutcome& t) {
  if (t.skipped) {
    skipped_ = true;
    return;
  }
  ++trials_;
  deadlocks_ += t.deadlocked;
  everyone_ate_ += t.everyone_ate;
  progressed_ += t.meals > 0;
  probe_hits_ += t.probe;
  steps_.add(static_cast<double>(t.steps));
  meals_.add(static_cast<double>(t.meals));
  if (t.first_meal == sim::kNever) {
    ++no_meal_trials_;
  } else {
    first_meal_.add(static_cast<double>(t.first_meal));
  }
  max_hunger_.add(static_cast<double>(t.max_hunger));
  hunger_samples_.push_back(t.max_hunger);
  hunger_sorted_ = false;
  sched_gap_.add(static_cast<double>(t.max_sched_gap));
  tracked_meals_.add(static_cast<double>(t.tracked_meals));
  tracked_hunger_.add(static_cast<double>(t.tracked_hunger));
  jain_.add(t.jain);
}

double CellAggregate::hunger_quantile(double q) const {
  if (hunger_samples_.empty()) return 0.0;
  if (!hunger_sorted_) {
    std::sort(hunger_samples_.begin(), hunger_samples_.end());
    hunger_sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the smallest sample with cumulative share >= q.
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(hunger_samples_.size())));
  return static_cast<double>(hunger_samples_[rank == 0 ? 0 : rank - 1]);
}

stats::Histogram CellAggregate::hunger_histogram(int buckets) const {
  std::uint64_t hi = 0;
  for (std::uint64_t s : hunger_samples_) hi = std::max(hi, s);
  stats::Histogram hist(0.0, static_cast<double>(hi) + 1.0, buckets);
  for (std::uint64_t s : hunger_samples_) hist.add(static_cast<double>(s));
  return hist;
}

stats::Interval CellAggregate::everyone_ate_ci(double z) const {
  return stats::wilson(everyone_ate_, trials_, z);
}
stats::Interval CellAggregate::probe_ci(double z) const {
  return stats::wilson(probe_hits_, trials_, z);
}
stats::Interval CellAggregate::deadlock_ci(double z) const {
  return stats::wilson(deadlocks_, trials_, z);
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string u64(std::uint64_t v) { return std::to_string(v); }

void write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  GDP_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  out << text;
  GDP_CHECK_MSG(out.good(), "short write to '" << path << "'");
}

}  // namespace

std::string CampaignResult::csv() const {
  std::string out =
      "campaign,cell,label,trials,skipped,steps_mean,meals_mean,meals_sem,"
      "first_meal_mean,no_meal_trials,max_hunger_mean,hunger_p50,hunger_p99,"
      "sched_gap_mean,tracked_meals_mean,tracked_hunger_mean,jain_mean,"
      "everyone_ate,everyone_ate_lo,everyone_ate_hi,deadlocks,probe_hits,"
      "probe_lo,probe_hi\n";
  for (const CellAggregate& c : cells) {
    const auto ate = c.everyone_ate_ci();
    const auto probe = c.probe_ci();
    const std::vector<std::string> row = {
        stats::csv_escape(name),
        u64(c.cell().index),
        stats::csv_escape(c.label()),
        u64(c.trials()),
        c.skipped() ? "1" : "0",
        format_double(c.steps().mean(), 3),
        format_double(c.meals().mean(), 3),
        format_double(c.meals().sem(), 3),
        format_double(c.first_meal().mean(), 3),
        u64(c.no_meal_trials()),
        format_double(c.max_hunger().mean(), 3),
        format_double(c.hunger_quantile(0.5), 3),
        format_double(c.hunger_quantile(0.99), 3),
        format_double(c.sched_gap().mean(), 3),
        format_double(c.tracked_meals().mean(), 3),
        format_double(c.tracked_hunger().mean(), 3),
        format_double(c.jain().mean(), 4),
        u64(c.everyone_ate()),
        format_double(ate.low, 4),
        format_double(ate.high, 4),
        u64(c.deadlocks()),
        u64(c.probe_hits()),
        format_double(probe.low, 4),
        format_double(probe.high, 4),
    };
    out += join(row, ",");
    out += '\n';
  }
  return out;
}

std::string CampaignResult::json() const {
  auto moments = [](const stats::OnlineStats& s) {
    return "{\"count\":" + u64(s.count()) + ",\"mean\":" + format_double(s.mean(), 6) +
           ",\"sem\":" + format_double(s.sem(), 6) + ",\"min\":" + format_double(s.min(), 3) +
           ",\"max\":" + format_double(s.max(), 3) + "}";
  };
  std::string out = "{\"campaign\":\"" + json_escape(name) + "\",\"seed\":" + u64(seed) +
                    ",\"trials_per_cell\":" + std::to_string(trials_per_cell) + ",\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellAggregate& c = cells[i];
    if (i != 0) out += ',';
    out += "{\"index\":" + u64(c.cell().index) + ",\"label\":\"" + json_escape(c.label()) + "\"";
    if (c.skipped()) {
      out += ",\"skipped\":true}";
      continue;
    }
    const auto ate = c.everyone_ate_ci();
    out += ",\"trials\":" + u64(c.trials());
    out += ",\"steps\":" + moments(c.steps());
    out += ",\"meals\":" + moments(c.meals());
    out += ",\"first_meal\":" + moments(c.first_meal());
    out += ",\"no_meal_trials\":" + u64(c.no_meal_trials());
    out += ",\"max_hunger\":" + moments(c.max_hunger());
    out += ",\"hunger_quantiles\":{\"p50\":" + format_double(c.hunger_quantile(0.5), 3) +
           ",\"p90\":" + format_double(c.hunger_quantile(0.9), 3) +
           ",\"p99\":" + format_double(c.hunger_quantile(0.99), 3) + "}";
    out += ",\"sched_gap\":" + moments(c.sched_gap());
    out += ",\"tracked_meals\":" + moments(c.tracked_meals());
    out += ",\"tracked_hunger\":" + moments(c.tracked_hunger());
    out += ",\"jain\":" + moments(c.jain());
    out += ",\"everyone_ate\":{\"count\":" + u64(c.everyone_ate()) +
           ",\"ci\":[" + format_double(ate.low, 4) + "," + format_double(ate.high, 4) + "]}";
    out += ",\"progressed\":" + u64(c.progressed());
    out += ",\"deadlocks\":" + u64(c.deadlocks());
    out += ",\"probe_hits\":" + u64(c.probe_hits());
    out += "}";
  }
  out += "]}\n";
  return out;
}

void CampaignResult::write_csv(const std::string& path) const { write_text(path, csv()); }
void CampaignResult::write_json(const std::string& path) const { write_text(path, json()); }

const CellAggregate& CampaignResult::at(std::size_t cell_index) const {
  GDP_CHECK_MSG(cell_index < cells.size(),
                "cell " << cell_index << " out of range (" << cells.size() << " cells)");
  return cells[cell_index];
}

}  // namespace gdp::exp
