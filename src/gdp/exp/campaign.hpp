// Declarative experiment campaigns.
//
// A CampaignSpec is the cross product
//
//   topologies x algorithms x schedulers x algorithm configs x trials
//
// plus one EngineConfig — everything the 13 hand-rolled bench mains used to
// reimplement (trial loop, seeding, aggregation) expressed as data. The
// Runner (runner.hpp) executes the grid in parallel with per-trial seeds
// from seeding.hpp, and the Aggregate layer (aggregate.hpp) folds the
// results deterministically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gdp/algos/algorithm.hpp"
#include "gdp/graph/topology.hpp"
#include "gdp/sim/engine.hpp"
#include "gdp/sim/scheduler.hpp"

namespace gdp::exp {

/// A named scheduler factory. Schedulers are stateful, so every trial gets a
/// fresh instance; the factory receives the trial's algorithm because the
/// malicious adversaries evaluate the step relation ("complete information
/// of the past", §2).
struct SchedulerSpec {
  std::string name;
  std::function<std::unique_ptr<sim::Scheduler>(const algos::Algorithm& algo)> make;

  /// Optional post-run probe evaluated on the scheduler and the finished
  /// run; `true` outcomes are counted per cell (e.g. "did the trap hold?").
  std::function<bool(const sim::Scheduler& sched, const sim::RunResult& r)> probe;
};

/// Ready-made specs for the in-tree schedulers.
SchedulerSpec longest_waiting();
SchedulerSpec round_robin();
SchedulerSpec uniform();
SchedulerSpec eat_avoider();
/// The §5 lockout adversary against `victim` (hard_cap 0 = scheduler default).
SchedulerSpec starve_victim(PhilId victim, std::uint64_t hard_cap = 0);
/// The §3 trap; its probe counts runs where the trap held and nobody ate.
SchedulerSpec trap_fig1a();

struct CampaignSpec {
  std::string name = "campaign";
  std::uint64_t seed = 1;
  /// Independent trials per grid cell (>= 1).
  int trials = 1;

  /// Grid dimensions. Algorithms are registry names (algos::make_algorithm);
  /// an empty `configs` means one default AlgoConfig.
  std::vector<graph::Topology> topologies;
  std::vector<std::string> algorithms;
  std::vector<SchedulerSpec> schedulers;
  std::vector<algos::AlgoConfig> configs;

  sim::EngineConfig engine;

  /// Philosopher whose per-philosopher metrics are reported (victim
  /// analyses); clamped to each topology's last philosopher if out of range.
  PhilId tracked = 0;

  /// Skip (algorithm, topology) pairs the algorithm's validate() rejects
  /// (e.g. colored off an even ring) instead of failing the campaign.
  bool skip_invalid = false;
};

/// One grid point. `index` is the row-major position with topology as the
/// outermost dimension: ((topology * A + algorithm) * S + scheduler) * C
/// + config — so results group naturally by system, as the benches print.
struct Cell {
  std::size_t index = 0;
  std::size_t topology = 0;
  std::size_t algorithm = 0;
  std::size_t scheduler = 0;
  std::size_t config = 0;
};

/// Grid size of `spec` (0 if any dimension other than configs is empty).
std::size_t num_cells(const CampaignSpec& spec);

/// All cells of the grid in index order.
std::vector<Cell> cells(const CampaignSpec& spec);

/// Number of AlgoConfig variants (1 when spec.configs is empty).
std::size_t num_configs(const CampaignSpec& spec);

/// The AlgoConfig of a cell (default-constructed when configs is empty).
algos::AlgoConfig cell_config(const CampaignSpec& spec, const Cell& cell);

/// "ring(3)/gdp1/longest-waiting[m=4]" — stable human-readable label.
std::string cell_label(const CampaignSpec& spec, const Cell& cell);

/// Validates the spec (non-empty dimensions, trials >= 1, registry names
/// resolvable). Throws PreconditionError with context on violation.
void validate(const CampaignSpec& spec);

}  // namespace gdp::exp
