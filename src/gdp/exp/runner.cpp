#include "gdp/exp/runner.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "gdp/common/check.hpp"
#include "gdp/exp/seeding.hpp"
#include "gdp/rng/rng.hpp"

namespace gdp::exp {

namespace {

/// A contiguous range of task ids packed as (head << 32) | tail. The owner
/// pops from the head, thieves CAS the back half off the tail; a single
/// 64-bit CAS keeps both linearizable.
struct alignas(64) Shard {
  std::atomic<std::uint64_t> range{0};

  static constexpr std::uint64_t pack(std::uint32_t head, std::uint32_t tail) {
    return (static_cast<std::uint64_t>(head) << 32) | tail;
  }
  static constexpr std::uint32_t head(std::uint64_t r) { return static_cast<std::uint32_t>(r >> 32); }
  static constexpr std::uint32_t tail(std::uint64_t r) { return static_cast<std::uint32_t>(r); }

  std::optional<std::uint32_t> pop_front() {
    std::uint64_t r = range.load(std::memory_order_acquire);
    while (head(r) < tail(r)) {
      if (range.compare_exchange_weak(r, pack(head(r) + 1, tail(r)), std::memory_order_acq_rel)) {
        return head(r);
      }
    }
    return std::nullopt;
  }

  /// Steals the back half [tail - k, tail); returns the stolen range.
  std::optional<std::pair<std::uint32_t, std::uint32_t>> steal_half() {
    std::uint64_t r = range.load(std::memory_order_acquire);
    while (head(r) < tail(r)) {
      const std::uint32_t k = (tail(r) - head(r) + 1) / 2;
      if (range.compare_exchange_weak(r, pack(head(r), tail(r) - k), std::memory_order_acq_rel)) {
        return std::make_pair(tail(r) - k, tail(r));
      }
    }
    return std::nullopt;
  }

  std::uint32_t remaining() const {
    const std::uint64_t r = range.load(std::memory_order_relaxed);
    return tail(r) - head(r);
  }
};

/// Immutable per-cell execution context resolved before the pool starts.
struct CellPlan {
  Cell cell;
  const graph::Topology* topology = nullptr;
  std::string algorithm;
  algos::AlgoConfig config;
  const SchedulerSpec* scheduler = nullptr;
  bool skipped = false;
};

TrialOutcome execute_trial(const CampaignSpec& spec, const CellPlan& plan, int trial) {
  if (plan.skipped) {
    TrialOutcome out;
    out.skipped = true;
    return out;
  }
  const auto algo = algos::make_algorithm(plan.algorithm, plan.config);
  const auto sched = plan.scheduler->make(*algo);
  rng::Rng rng(trial_seed(spec.seed, plan.cell.index, static_cast<std::uint64_t>(trial)));
  const sim::RunResult r = sim::run(*algo, *plan.topology, *sched, rng, spec.engine);
  TrialOutcome out = summarize(r, spec.tracked);
  if (plan.scheduler->probe) out.probe = plan.scheduler->probe(*sched, r);
  return out;
}

}  // namespace

Runner::Runner(RunnerOptions options) : options_(options) {
  GDP_CHECK_MSG(options.threads >= 0, "RunnerOptions.threads must be >= 0");
}

CampaignResult Runner::run(const CampaignSpec& spec) const {
  validate(spec);

  const std::vector<Cell> grid = cells(spec);
  const auto trials = static_cast<std::size_t>(spec.trials);
  const std::size_t total = grid.size() * trials;
  GDP_CHECK_MSG(total < (std::uint64_t{1} << 32),
                "campaign '" << spec.name << "' has " << total << " tasks (max 2^32 - 1)");

  // Resolve every cell up front: one validate() per (algorithm, topology,
  // config) instead of one per trial, and misconfigurations surface before
  // any thread is spawned.
  std::vector<CellPlan> plans;
  plans.reserve(grid.size());
  for (const Cell& cell : grid) {
    CellPlan plan;
    plan.cell = cell;
    plan.topology = &spec.topologies[cell.topology];
    plan.algorithm = spec.algorithms[cell.algorithm];
    plan.config = cell_config(spec, cell);
    plan.scheduler = &spec.schedulers[cell.scheduler];
    try {
      algos::make_algorithm(plan.algorithm, plan.config)->validate(*plan.topology);
    } catch (const PreconditionError&) {
      if (!spec.skip_invalid) throw;
      plan.skipped = true;
    }
    plans.push_back(std::move(plan));
  }

  std::vector<TrialOutcome> outcomes(total);
  auto run_task = [&](std::uint32_t id) {
    const std::size_t c = id / trials;
    const int trial = static_cast<int>(id % trials);
    outcomes[id] = execute_trial(spec, plans[c], trial);
  };

  unsigned n = options_.threads > 0 ? static_cast<unsigned>(options_.threads)
                                    : std::thread::hardware_concurrency();
  if (n < 1) n = 1;
  if (n > total) n = static_cast<unsigned>(total);

  if (n <= 1) {
    for (std::uint32_t id = 0; id < total; ++id) run_task(id);
  } else {
    // Contiguous initial shards; the steal protocol rebalances from there.
    std::vector<Shard> shards(n);
    for (unsigned w = 0; w < n; ++w) {
      const auto lo = static_cast<std::uint32_t>(total * w / n);
      const auto hi = static_cast<std::uint32_t>(total * (w + 1) / n);
      shards[w].range.store(Shard::pack(lo, hi), std::memory_order_relaxed);
    }

    std::atomic<bool> abort{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    auto worker = [&](unsigned me) {
      try {
        while (!abort.load(std::memory_order_relaxed)) {
          if (const auto id = shards[me].pop_front()) {
            run_task(*id);
            continue;
          }
          // Own shard drained: steal the back half of the fullest victim
          // into our shard (so others can steal from us in turn).
          unsigned victim = n;
          std::uint32_t best = 0;
          for (unsigned v = 0; v < n; ++v) {
            if (v == me) continue;
            const std::uint32_t r = shards[v].remaining();
            if (r > best) {
              best = r;
              victim = v;
            }
          }
          if (victim == n) break;  // everything claimed everywhere
          if (const auto stolen = shards[victim].steal_half()) {
            shards[me].range.store(Shard::pack(stolen->first, stolen->second),
                                   std::memory_order_release);
          }
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        abort.store(true, std::memory_order_relaxed);
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(n);
    for (unsigned w = 0; w < n; ++w) pool.emplace_back(worker, w);
    for (std::thread& t : pool) t.join();
    if (first_error) std::rethrow_exception(first_error);
  }

  // Single-threaded fold in global trial order: the determinism barrier.
  CampaignResult result;
  result.name = spec.name;
  result.seed = spec.seed;
  result.trials_per_cell = spec.trials;
  result.cells.reserve(grid.size());
  for (const Cell& cell : grid) {
    CellAggregate agg(cell, cell_label(spec, cell));
    for (std::size_t i = 0; i < trials; ++i) {
      agg.fold(outcomes[cell.index * trials + i]);
    }
    result.cells.push_back(std::move(agg));
  }
  return result;
}

CampaignResult run_campaign(const CampaignSpec& spec, int threads) {
  return Runner(RunnerOptions{threads}).run(spec);
}

}  // namespace gdp::exp
