#include "gdp/exp/runner.hpp"

#include <utility>

#include "gdp/common/check.hpp"
#include "gdp/common/pool.hpp"
#include "gdp/exp/seeding.hpp"
#include "gdp/obs/obs.hpp"
#include "gdp/obs/timeline.hpp"
#include "gdp/rng/rng.hpp"

namespace gdp::exp {

namespace {

/// Immutable per-cell execution context resolved before the pool starts.
struct CellPlan {
  Cell cell;
  const graph::Topology* topology = nullptr;
  std::string algorithm;
  algos::AlgoConfig config;
  const SchedulerSpec* scheduler = nullptr;
  bool skipped = false;
};

TrialOutcome execute_trial(const CampaignSpec& spec, const CellPlan& plan, int trial) {
  if (plan.skipped) {
    TrialOutcome out;
    out.skipped = true;
    return out;
  }
  const auto algo = algos::make_algorithm(plan.algorithm, plan.config);
  const auto sched = plan.scheduler->make(*algo);
  rng::Rng rng(trial_seed(spec.seed, plan.cell.index, static_cast<std::uint64_t>(trial)));
  const sim::RunResult r = sim::run(*algo, *plan.topology, *sched, rng, spec.engine);
  TrialOutcome out = summarize(r, spec.tracked);
  if (plan.scheduler->probe) out.probe = plan.scheduler->probe(*sched, r);
  return out;
}

}  // namespace

Runner::Runner(RunnerOptions options) : options_(options) {
  GDP_CHECK_MSG(options.threads >= 0, "RunnerOptions.threads must be >= 0");
}

CampaignResult Runner::run(const CampaignSpec& spec) const {
  validate(spec);
  obs::TimedSpan span("exp.campaign");

  const std::vector<Cell> grid = cells(spec);
  const auto trials = static_cast<std::size_t>(spec.trials);
  const std::size_t total = grid.size() * trials;
  GDP_CHECK_MSG(total < (std::uint64_t{1} << 32),
                "campaign '" << spec.name << "' has " << total << " tasks (max 2^32 - 1)");

  // Resolve every cell up front: one validate() per (algorithm, topology,
  // config) instead of one per trial, and misconfigurations surface before
  // any thread is spawned.
  std::vector<CellPlan> plans;
  plans.reserve(grid.size());
  for (const Cell& cell : grid) {
    CellPlan plan;
    plan.cell = cell;
    plan.topology = &spec.topologies[cell.topology];
    plan.algorithm = spec.algorithms[cell.algorithm];
    plan.config = cell_config(spec, cell);
    plan.scheduler = &spec.schedulers[cell.scheduler];
    try {
      algos::make_algorithm(plan.algorithm, plan.config)->validate(*plan.topology);
    } catch (const PreconditionError&) {
      if (!spec.skip_invalid) throw;
      plan.skipped = true;
    }
    plans.push_back(std::move(plan));
  }

  // The shared work-stealing pool (gdp/common/pool.hpp) executes the flat
  // cells x trials task range; every outcome parks at its global index —
  // the lock-free half of the runner's concurrency contract (see
  // runner.hpp): distinct ids, distinct slots, no capability needed.
  std::vector<TrialOutcome> outcomes(total);
  common::parallel_for(total, options_.threads, [&](std::uint32_t id) {
    const std::size_t c = id / trials;
    const int trial = static_cast<int>(id % trials);
    // One timeline slice per trial on the executing worker's track; a cell
    // shows up as a run of equal-length slices. The name is a literal (the
    // ring stores pointers) and the cell id rides along as a counter lane.
    obs::timeline::ScopedSlice trial_slice("exp.trial");
    obs::timeline::counter_sample("exp.cell", static_cast<double>(c));
    outcomes[id] = execute_trial(spec, plans[c], trial);
  });

  // Deterministic plane: the grid shape is a pure function of the spec.
  static obs::Counter& campaigns_ctr = obs::Registry::global().counter("exp.campaigns");
  static obs::Counter& cells_ctr = obs::Registry::global().counter("exp.cells");
  static obs::Counter& trials_ctr = obs::Registry::global().counter("exp.trials");
  campaigns_ctr.increment();
  cells_ctr.add(grid.size());
  trials_ctr.add(total);

  // Single-threaded fold in global trial order: the determinism barrier.
  CampaignResult result;
  result.name = spec.name;
  result.seed = spec.seed;
  result.trials_per_cell = spec.trials;
  result.cells.reserve(grid.size());
  for (const Cell& cell : grid) {
    CellAggregate agg(cell, cell_label(spec, cell));
    for (std::size_t i = 0; i < trials; ++i) {
      agg.fold(outcomes[cell.index * trials + i]);
    }
    result.cells.push_back(std::move(agg));
  }
  return result;
}

CampaignResult run_campaign(const CampaignSpec& spec, int threads) {
  return Runner(RunnerOptions{threads}).run(spec);
}

}  // namespace gdp::exp
