#include "gdp/exp/campaign.hpp"

#include "gdp/common/check.hpp"
#include "gdp/common/strings.hpp"
#include "gdp/sim/schedulers/basic.hpp"
#include "gdp/sim/schedulers/eat_avoider.hpp"
#include "gdp/sim/schedulers/starve_victim.hpp"
#include "gdp/sim/schedulers/trap_fig1a.hpp"

namespace gdp::exp {

SchedulerSpec longest_waiting() {
  return {"longest-waiting",
          [](const algos::Algorithm&) { return std::make_unique<sim::LongestWaiting>(); },
          nullptr};
}

SchedulerSpec round_robin() {
  return {"round-robin",
          [](const algos::Algorithm&) { return std::make_unique<sim::RoundRobin>(); }, nullptr};
}

SchedulerSpec uniform() {
  return {"uniform",
          [](const algos::Algorithm&) { return std::make_unique<sim::RandomUniform>(); }, nullptr};
}

SchedulerSpec eat_avoider() {
  return {"eat-avoider",
          [](const algos::Algorithm& algo) { return std::make_unique<sim::EatAvoider>(algo); },
          nullptr};
}

SchedulerSpec starve_victim(PhilId victim, std::uint64_t hard_cap) {
  return {"starve-victim",
          [victim, hard_cap](const algos::Algorithm& algo) {
            return std::make_unique<sim::StarveVictim>(
                algo, sim::StarveVictim::Config{.victim = victim, .hard_cap = hard_cap});
          },
          nullptr};
}

SchedulerSpec trap_fig1a() {
  SchedulerSpec spec;
  spec.name = "trap-fig1a";
  spec.make = [](const algos::Algorithm&) { return std::make_unique<sim::TrapFig1a>(); };
  spec.probe = [](const sim::Scheduler& sched, const sim::RunResult& r) {
    return static_cast<const sim::TrapFig1a&>(sched).trapped() && r.total_meals == 0;
  };
  return spec;
}

std::size_t num_configs(const CampaignSpec& spec) {
  return spec.configs.empty() ? 1 : spec.configs.size();
}

std::size_t num_cells(const CampaignSpec& spec) {
  return spec.topologies.size() * spec.algorithms.size() * spec.schedulers.size() *
         num_configs(spec);
}

std::vector<Cell> cells(const CampaignSpec& spec) {
  std::vector<Cell> out;
  out.reserve(num_cells(spec));
  std::size_t index = 0;
  for (std::size_t t = 0; t < spec.topologies.size(); ++t) {
    for (std::size_t a = 0; a < spec.algorithms.size(); ++a) {
      for (std::size_t s = 0; s < spec.schedulers.size(); ++s) {
        for (std::size_t c = 0; c < num_configs(spec); ++c) {
          out.push_back(Cell{index++, t, a, s, c});
        }
      }
    }
  }
  return out;
}

algos::AlgoConfig cell_config(const CampaignSpec& spec, const Cell& cell) {
  return spec.configs.empty() ? algos::AlgoConfig{} : spec.configs[cell.config];
}

std::string cell_label(const CampaignSpec& spec, const Cell& cell) {
  std::string label = spec.topologies[cell.topology].name() + "/" +
                      spec.algorithms[cell.algorithm] + "/" +
                      spec.schedulers[cell.scheduler].name;
  if (num_configs(spec) > 1) {
    label += "[m=" + std::to_string(cell_config(spec, cell).m) + "]";
  }
  return label;
}

void validate(const CampaignSpec& spec) {
  GDP_CHECK_MSG(spec.trials >= 1, "campaign '" << spec.name << "' needs trials >= 1");
  GDP_CHECK_MSG(!spec.topologies.empty(), "campaign '" << spec.name << "' has no topologies");
  GDP_CHECK_MSG(!spec.algorithms.empty(), "campaign '" << spec.name << "' has no algorithms");
  GDP_CHECK_MSG(!spec.schedulers.empty(), "campaign '" << spec.name << "' has no schedulers");
  for (const SchedulerSpec& s : spec.schedulers) {
    GDP_CHECK_MSG(s.make != nullptr, "scheduler spec '" << s.name << "' has no factory");
  }
  // Resolve every (algorithm, config) pair once so a typo fails the campaign
  // up front instead of inside a worker thread.
  for (const std::string& name : spec.algorithms) {
    for (std::size_t c = 0; c < num_configs(spec); ++c) {
      (void)algos::make_algorithm(
          name, spec.configs.empty() ? algos::AlgoConfig{} : spec.configs[c]);
    }
  }
}

}  // namespace gdp::exp
