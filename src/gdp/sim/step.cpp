#include "gdp/sim/step.hpp"

#include "gdp/common/strings.hpp"

namespace gdp::sim {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kStartTrying: return "start-trying";
    case EventKind::kStillThinking: return "still-thinking";
    case EventKind::kRegistered: return "registered";
    case EventKind::kChose: return "chose";
    case EventKind::kTookFirst: return "took-first";
    case EventKind::kBlockedFirst: return "blocked-first";
    case EventKind::kRenumbered: return "renumbered";
    case EventKind::kNrDistinct: return "nr-distinct";
    case EventKind::kTookSecond: return "took-second";
    case EventKind::kFailedSecond: return "failed-second";
    case EventKind::kBlockedSecond: return "blocked-second";
    case EventKind::kFinishedEating: return "finished-eating";
    case EventKind::kWaiting: return "waiting";
    case EventKind::kGranted: return "granted";
  }
  return "?";
}

std::string StepEvent::to_string() const {
  std::string out = sim::to_string(kind);
  if (kind == EventKind::kChose) {
    out += std::string("(") + gdp::to_string(side) + ")";
  }
  if (fork != kNoFork) out += " " + fork_name(fork);
  if (kind == EventKind::kRenumbered) out += " <- " + std::to_string(value);
  return out;
}

Branch deterministic(SimState next, StepEvent event) {
  return Branch{1.0, event, std::move(next)};
}

bool is_self_loop(const SimState& current, const std::vector<Branch>& branches) {
  for (const Branch& b : branches) {
    if (!(b.next == current)) return false;
  }
  return true;
}

}  // namespace gdp::sim
