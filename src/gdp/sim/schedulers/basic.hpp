// Fair schedulers: round-robin, uniform random, longest-waiting.
//
// Round-robin and longest-waiting are fair with gap bound n; the uniform
// random scheduler is fair with probability 1 (every philosopher is chosen
// infinitely often almost surely) — the standard benign adversaries the
// positive experiments run under.
#pragma once

#include "gdp/sim/scheduler.hpp"

namespace gdp::sim {

class RoundRobin final : public Scheduler {
 public:
  std::string name() const override { return "round-robin"; }
  void reset(const graph::Topology& t) override;
  PhilId pick(const graph::Topology& t, const SimState& state, const RunView& view,
              rng::RandomSource& rng) override;

 private:
  PhilId next_ = 0;
};

class RandomUniform final : public Scheduler {
 public:
  std::string name() const override { return "uniform"; }
  PhilId pick(const graph::Topology& t, const SimState& state, const RunView& view,
              rng::RandomSource& rng) override;
};

/// Always schedules the philosopher whose last step is oldest — the
/// maximally fair adversary (gap exactly n once warmed up).
class LongestWaiting final : public Scheduler {
 public:
  std::string name() const override { return "longest-waiting"; }
  PhilId pick(const graph::Topology& t, const SimState& state, const RunView& view,
              rng::RandomSource& rng) override;
};

}  // namespace gdp::sim
