#include "gdp/sim/schedulers/eat_avoider.hpp"

#include <algorithm>

#include "gdp/common/check.hpp"

namespace gdp::sim {
namespace {

/// Could this step complete a meal on some branch?
bool step_may_eat(const std::vector<Branch>& branches) {
  return std::any_of(branches.begin(), branches.end(), [](const Branch& b) {
    return b.event.kind == EventKind::kTookSecond ||
           (b.event.kind == EventKind::kGranted &&
            std::any_of(b.next.phils.begin(), b.next.phils.end(),
                        [](const PhilState& ps) { return ps.phase == Phase::kEating; }));
  });
}

}  // namespace

EatAvoider::EatAvoider(const algos::Algorithm& algo, Config config)
    : algo_(algo), config_(config) {}

void EatAvoider::reset(const graph::Topology& t) {
  const auto n = static_cast<std::uint64_t>(t.num_phils());
  soft_window_ = config_.soft_window != 0 ? config_.soft_window : 16 * n;
  hard_cap_ = config_.hard_cap != 0 ? config_.hard_cap : 64 * n;
  GDP_CHECK_MSG(soft_window_ < hard_cap_, "EatAvoider: soft_window must be < hard_cap");
  forced_unsafe_ = 0;
}

PhilId EatAvoider::pick(const graph::Topology& t, const SimState& state, const RunView& view,
                        rng::RandomSource& /*rng*/) {
  const int n = t.num_phils();

  // Evaluate every philosopher's pending step once.
  std::vector<std::vector<Branch>> steps;
  steps.reserve(static_cast<std::size_t>(n));
  for (PhilId p = 0; p < n; ++p) steps.push_back(algo_.step(t, state, p));

  auto gap_of = [&](PhilId p) {
    const auto idx = static_cast<std::size_t>(p);
    if ((*view.steps_of)[idx] == 0) return view.step_index + 1;  // never scheduled
    return view.step_index - (*view.last_scheduled)[idx];
  };

  // 1. Fairness first: a philosopher at the hard cap runs now, no matter what.
  for (PhilId p = 0; p < n; ++p) {
    if (gap_of(p) >= hard_cap_) {
      if (step_may_eat(steps[static_cast<std::size_t>(p)])) ++forced_unsafe_;
      return p;
    }
  }

  // Forks that endangered philosophers (one free fork away from a meal) need
  // taken: occupying them is the adversary's best move.
  std::uint64_t wanted_forks = 0;
  for (PhilId p = 0; p < n; ++p) {
    const PhilState& ps = state.phil(p);
    if (ps.phase == Phase::kTrySecond || ps.phase == Phase::kRenumber) {
      const ForkId second = t.other_fork(p, t.fork_of(p, ps.committed));
      if (state.fork(second).free() && second < 64) {
        wanted_forks |= (std::uint64_t{1} << second);
      }
    }
  }

  // 2. Among safe philosophers, prefer: (a) rescuers that occupy a wanted
  // fork, (b) parked self-loops past the soft window, (c) anyone else —
  // always breaking ties toward the largest gap (fairness pressure).
  PhilId best = kNoPhil;
  int best_score = -1;
  std::uint64_t best_gap = 0;
  for (PhilId p = 0; p < n; ++p) {
    const auto& branches = steps[static_cast<std::size_t>(p)];
    if (step_may_eat(branches)) continue;

    int score = 1;
    const PhilState& ps = state.phil(p);
    if (ps.phase == Phase::kCommit) {
      const ForkId f = t.fork_of(p, ps.committed);
      if (state.fork(f).free() && f < 64 && ((wanted_forks >> f) & 1u)) {
        score = 3;  // rescuer: takes a fork somebody is about to eat with
      }
    }
    if (score == 1 && is_self_loop(state, branches) && gap_of(p) >= soft_window_) {
      score = 2;  // parked busy-waiter overdue for a fairness step
    }

    const std::uint64_t gap = gap_of(p);
    if (score > best_score || (score == best_score && gap > best_gap)) {
      best = p;
      best_score = score;
      best_gap = gap;
    }
  }
  if (best != kNoPhil) return best;

  // 3. Everyone's step may eat: concede the meal where fairness needs it most.
  PhilId victim = 0;
  std::uint64_t max_gap = 0;
  for (PhilId p = 0; p < n; ++p) {
    if (gap_of(p) >= max_gap) {
      max_gap = gap_of(p);
      victim = p;
    }
  }
  ++forced_unsafe_;
  return victim;
}

}  // namespace gdp::sim
