// StarveVictim — the §5 lockout adversary against GDP1.
//
// The paper's scenario: philosophers P1, P2 share fork f whose nr is smaller
// than P1's other fork g; P1 therefore always selects g first, and the
// scheduler lets P1 attempt his second fork f only at moments when P2 holds
// it. This adversary generalizes the idea: it designates a victim and
// schedules the victim only when the victim's step cannot complete a meal
// (everyone else runs under a maximally-fair policy). A hard cap keeps the
// schedule fair: the victim is forcibly scheduled once its gap reaches the
// cap, so starvation shows up as a *huge-but-bounded hunger span* under
// GDP1, while GDP2's courtesy condition (Theorem 4) caps the victim's
// hunger regardless of the adversary.
#pragma once

#include "gdp/algos/algorithm.hpp"
#include "gdp/sim/scheduler.hpp"

namespace gdp::sim {

class StarveVictim final : public Scheduler {
 public:
  struct Config {
    PhilId victim = 0;
    /// Hard scheduling-gap cap for the victim (0 = 256 * n).
    std::uint64_t hard_cap = 0;
  };

  explicit StarveVictim(const algos::Algorithm& algo) : StarveVictim(algo, Config{}) {}
  StarveVictim(const algos::Algorithm& algo, Config config);

  std::string name() const override { return "starve-victim"; }
  void reset(const graph::Topology& t) override;
  PhilId pick(const graph::Topology& t, const SimState& state, const RunView& view,
              rng::RandomSource& rng) override;

  PhilId victim() const { return config_.victim; }

 private:
  const algos::Algorithm& algo_;
  Config config_;
  std::uint64_t hard_cap_ = 0;
};

}  // namespace gdp::sim
