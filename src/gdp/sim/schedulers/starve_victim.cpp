#include "gdp/sim/schedulers/starve_victim.hpp"

#include "gdp/common/check.hpp"

namespace gdp::sim {

StarveVictim::StarveVictim(const algos::Algorithm& algo, Config config)
    : algo_(algo), config_(config) {}

void StarveVictim::reset(const graph::Topology& t) {
  GDP_CHECK_MSG(config_.victim >= 0 && config_.victim < t.num_phils(),
                "StarveVictim: victim " << config_.victim << " out of range");
  hard_cap_ =
      config_.hard_cap != 0 ? config_.hard_cap : 256 * static_cast<std::uint64_t>(t.num_phils());
}

PhilId StarveVictim::pick(const graph::Topology& t, const SimState& state, const RunView& view,
                          rng::RandomSource& /*rng*/) {
  const PhilId victim = config_.victim;
  const auto vidx = static_cast<std::size_t>(victim);

  const std::uint64_t victim_gap = (*view.steps_of)[vidx] == 0
                                       ? view.step_index + 1
                                       : view.step_index - (*view.last_scheduled)[vidx];

  // Schedule the victim when it is harmless (cannot complete a meal this
  // step) and overdue relative to the others, or when fairness forces it.
  const auto branches = algo_.step(t, state, victim);
  const bool victim_may_eat = [&] {
    for (const Branch& b : branches) {
      if (b.event.kind == EventKind::kTookSecond) return true;
      if (b.event.kind == EventKind::kGranted && b.next.phil(victim).phase == Phase::kEating) {
        return true;
      }
    }
    return false;
  }();

  if (victim_gap >= hard_cap_) return victim;  // fairness wins; meal may happen
  if (!victim_may_eat && victim_gap >= static_cast<std::uint64_t>(2 * t.num_phils())) {
    return victim;  // harmless step: burn the victim's fairness obligation
  }

  // Everyone else: longest-waiting (maximally fair among non-victims).
  PhilId best = kNoPhil;
  std::uint64_t best_key = 0;
  for (PhilId p = 0; p < t.num_phils(); ++p) {
    if (p == victim) continue;
    const auto idx = static_cast<std::size_t>(p);
    const std::uint64_t key = (*view.steps_of)[idx] == 0
                                  ? view.step_index + 1
                                  : view.step_index - (*view.last_scheduled)[idx];
    if (best == kNoPhil || key > best_key) {
      best = p;
      best_key = key;
    }
  }
  (void)state;
  return best == kNoPhil ? victim : best;
}

}  // namespace gdp::sim
