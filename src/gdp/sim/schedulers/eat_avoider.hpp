// EatAvoider — a *generic* fair malicious adversary.
//
// It formalizes the technique behind the paper's Theorem 1/2 schedulers
// without being hand-scripted to one topology: at every step it schedules a
// philosopher whose atomic step cannot complete a meal, preferring moves
// that keep contested forks occupied ("rescues": letting a committed sharer
// take the fork an endangered philosopher is one step away from acquiring —
// the multi-sharer refresh that only generalized topologies allow, and the
// exact reason Lemma 1 of Lehmann & Rabin fails off the classic ring).
//
// Fairness is enforced by construction: any philosopher whose scheduling
// gap reaches `hard_cap` is scheduled regardless of safety, so every
// infinite run is fair (gap bounded by hard_cap). The interesting output is
// therefore *whether the adversary is ever forced to allow a meal*:
//   * LR1 on the classic ring      -> meals happen (Lehmann-Rabin correct);
//   * LR1/LR2 on Theorem-1/2 graphs -> no-progress runs with high frequency;
//   * GDP1/GDP2 anywhere           -> meals always happen (Theorems 3/4).
#pragma once

#include "gdp/algos/algorithm.hpp"
#include "gdp/sim/scheduler.hpp"

namespace gdp::sim {

class EatAvoider final : public Scheduler {
 public:
  struct Config {
    /// Soft gap after which a philosopher gets priority among safe moves.
    std::uint64_t soft_window = 0;  // 0 = 16 * n
    /// Hard gap at which the philosopher is scheduled even if it will eat.
    std::uint64_t hard_cap = 0;  // 0 = 64 * n
  };

  /// The adversary must evaluate the algorithm's step function to know which
  /// moves are safe — "complete information" in the sense of §2.
  explicit EatAvoider(const algos::Algorithm& algo) : EatAvoider(algo, Config{}) {}
  EatAvoider(const algos::Algorithm& algo, Config config);

  std::string name() const override { return "eat-avoider"; }
  void reset(const graph::Topology& t) override;
  PhilId pick(const graph::Topology& t, const SimState& state, const RunView& view,
              rng::RandomSource& rng) override;

  /// Times the hard cap forced a potentially meal-completing step.
  std::uint64_t forced_unsafe_picks() const { return forced_unsafe_; }

 private:
  const algos::Algorithm& algo_;
  Config config_;
  std::uint64_t soft_window_ = 0;
  std::uint64_t hard_cap_ = 0;
  std::uint64_t forced_unsafe_ = 0;
};

}  // namespace gdp::sim
