// TrapFig1a — the paper's §3 winning adversary against LR1 on the leftmost
// system of Figure 1 (6 philosophers, 3 forks: a triangle of forks with
// every arc doubled), executed exactly, including the fair "increasing
// stubbornness" repair and the States 1-6 role rotation.
//
// Roles (our reconstruction of the paper's States 1-6, with forks a, b, c):
//   A  = a {c,a}-philosopher holding fork a (filled arrow),
//   B  = a {a,b}-philosopher committed to b (empty arrow),
//   C  = a {b,c}-philosopher committed to c (empty arrow),
//   A2/B2/C2 = their parallel partners.
//
// One round (paper States 1 -> 6):
//   1. stubbornly redraw B2 until committed to a (held by A);
//   2. B takes b;
//   3. stubbornly redraw C2 until committed to b;
//   4. C takes c;
//   5. A fails on its second fork (c) and releases a;
//   6. stubbornly redraw A2 until committed to c;
//   7. C fails on its second fork (b) and releases c;
//   8. B2 takes a;
//   9. B fails on its second fork (a) and releases b.
// The resulting state is isomorphic to State 1 under the fork relabeling
// a'=a, b'=c, c'=b with roles (A,B,C) -> (B2,A2,C2): the adversary loops
// forever and no philosopher ever eats.
//
// Because nobody eats, every guest book stays empty and Cond(fork) is
// vacuous — the identical schedule defeats LR2 as well (the observation in
// the paper's Theorem 2 proof); fig1a satisfies the Theorem 2 premise (its
// fork pairs are joined by 4 edge-disjoint paths).
//
// Stubborn loops draw at most n_k times in round k (n_k = base + inc * k),
// exactly the paper's fairness repair: the probability that every loop of
// every round succeeds is >= prod_k (1 - p^{n_k}) > 0, and any failed run
// falls back to a maximally fair scheduler (progress resumes), so the
// adversary is fair in all cases. Setup succeeds with probability >= 1/4 —
// the bound the paper derives for reaching a state isomorphic to State 1 on
// the first attempt (the first draw is free by symmetry; the two remaining
// role draws each succeed with probability 1/2, with one retry absorbed by
// the partner).
#pragma once

#include "gdp/sim/scheduler.hpp"

namespace gdp::sim {

class TrapFig1a final : public Scheduler {
 public:
  struct Config {
    /// Stubborn draws allowed in round 0 and per-round increment (n_k).
    int stubborn_base = 16;
    int stubborn_inc = 1;
  };

  TrapFig1a() : TrapFig1a(Config{}) {}
  explicit TrapFig1a(Config config) : config_(config) {}

  std::string name() const override { return "trap-fig1a"; }
  void reset(const graph::Topology& t) override;
  PhilId pick(const graph::Topology& t, const SimState& state, const RunView& view,
              rng::RandomSource& rng) override;

  /// True while the trap is live (setup + all stubborn loops succeeded so
  /// far). Once false, the scheduler has become longest-waiting-fair.
  bool trapped() const { return mode_ != Mode::kFallback; }

  /// Completed rotation rounds (States 1 -> 6 cycles).
  std::uint64_t rounds() const { return rounds_; }

 private:
  enum class Mode : std::uint8_t {
    kWake,     // drive everyone out of think/register
    kSetupA,   // A draws (free choice by symmetry) and takes fork a
    kSetupB1,  // first {a,b}-philosopher draws
    kSetupB2,  // partner draws if the first claimed the A2 role
    kSetupC1,  // first {b,c}-philosopher draws
    kSetupC2,  // partner draws if the first claimed the C2 role
    kCycle,    // the 9-op rotation above
    kFallback  // trial failed; maximally fair from here on
  };

  void fail();
  /// The philosopher pair whose arc is {x, y}; returns the lower id.
  static PhilId pair_base(ForkId x, ForkId y);
  /// Stubborn-loop driver; returns the philosopher to schedule, or kNoPhil
  /// when `who` is committed to `target` (loop done). Calls fail() when the
  /// draw budget runs out or recycling would feed a meal.
  PhilId drive_to_commit(const graph::Topology& t, const SimState& state, PhilId who,
                         ForkId target);

  Config config_;
  Mode mode_ = Mode::kWake;

  ForkId a_ = kNoFork, b_ = kNoFork, c_ = kNoFork;
  PhilId A_ = kNoPhil, B_ = kNoPhil, C_ = kNoPhil;
  PhilId A2_ = kNoPhil, B2_ = kNoPhil, C2_ = kNoPhil;

  int cycle_pc_ = 0;
  bool loop_armed_ = false;  // stubborn budget initialized for current op
  int draws_left_ = 0;
  std::uint64_t rounds_ = 0;
};

}  // namespace gdp::sim
