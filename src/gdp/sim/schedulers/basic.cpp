#include "gdp/sim/schedulers/basic.hpp"

#include "gdp/sim/engine.hpp"

namespace gdp::sim {

void RoundRobin::reset(const graph::Topology& /*t*/) { next_ = 0; }

PhilId RoundRobin::pick(const graph::Topology& t, const SimState& /*state*/,
                        const RunView& /*view*/, rng::RandomSource& /*rng*/) {
  const PhilId p = next_;
  next_ = (next_ + 1) % t.num_phils();
  return p;
}

PhilId RandomUniform::pick(const graph::Topology& t, const SimState& /*state*/,
                           const RunView& /*view*/, rng::RandomSource& rng) {
  return rng.uniform_int(0, t.num_phils() - 1);
}

PhilId LongestWaiting::pick(const graph::Topology& t, const SimState& /*state*/,
                            const RunView& view, rng::RandomSource& /*rng*/) {
  PhilId best = 0;
  std::uint64_t best_key = kNever;
  for (PhilId p = 0; p < t.num_phils(); ++p) {
    const std::uint64_t steps = (*view.steps_of)[static_cast<std::size_t>(p)];
    // Never-scheduled philosophers first (in id order), then oldest step.
    const std::uint64_t key =
        steps == 0 ? 0 : (*view.last_scheduled)[static_cast<std::size_t>(p)] + 1;
    if (key < best_key) {
      best_key = key;
      best = p;
    }
  }
  return best;
}

}  // namespace gdp::sim
