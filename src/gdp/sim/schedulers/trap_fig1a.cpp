#include "gdp/sim/schedulers/trap_fig1a.hpp"

#include <limits>

#include "gdp/common/check.hpp"

namespace gdp::sim {
namespace {

/// Longest-waiting pick, used by the fallback mode.
PhilId fair_pick(const graph::Topology& t, const RunView& view) {
  PhilId best = 0;
  std::uint64_t best_key = std::numeric_limits<std::uint64_t>::max();
  for (PhilId p = 0; p < t.num_phils(); ++p) {
    const auto idx = static_cast<std::size_t>(p);
    const std::uint64_t key =
        (*view.steps_of)[idx] == 0 ? 0 : (*view.last_scheduled)[idx] + 1;
    if (key < best_key) {
      best_key = key;
      best = p;
    }
  }
  return best;
}

bool is_fig1a(const graph::Topology& t) {
  if (t.num_forks() != 3 || t.num_phils() != 6) return false;
  for (PhilId p = 0; p < 3; ++p) {
    const auto& first = t.arc(p);
    const auto& second = t.arc(p + 3);
    if (!(first == second)) return false;
    if (first.left != p || first.right != (p + 1) % 3) return false;
  }
  return true;
}

}  // namespace

void TrapFig1a::reset(const graph::Topology& t) {
  GDP_CHECK_MSG(is_fig1a(t), "TrapFig1a requires the fig1a() topology, got " << t.name());
  mode_ = Mode::kWake;
  a_ = b_ = c_ = kNoFork;
  A_ = B_ = C_ = A2_ = B2_ = C2_ = kNoPhil;
  cycle_pc_ = 0;
  loop_armed_ = false;
  draws_left_ = 0;
  rounds_ = 0;
}

void TrapFig1a::fail() { mode_ = Mode::kFallback; }

PhilId TrapFig1a::pair_base(ForkId x, ForkId y) {
  // fig1a arcs: P0/P3 = {0,1}, P1/P4 = {1,2}, P2/P5 = {2,0}.
  if ((x == 0 && y == 1) || (x == 1 && y == 0)) return 0;
  if ((x == 1 && y == 2) || (x == 2 && y == 1)) return 1;
  return 2;
}

PhilId TrapFig1a::drive_to_commit(const graph::Topology& t, const SimState& state, PhilId who,
                                  ForkId target) {
  const PhilState& ps = state.phil(who);
  switch (ps.phase) {
    case Phase::kChoose:
      if (draws_left_ <= 0) {
        fail();
        return kNoPhil;
      }
      --draws_left_;
      return who;  // draw
    case Phase::kCommit: {
      const ForkId committed = t.fork_of(who, ps.committed);
      if (committed == target) return kNoPhil;  // loop done
      // Wrong fork: recycle — it must be free for `who` to take and then
      // bounce off the (held) target.
      if (!state.fork(committed).free()) {
        fail();  // parked on a third fork: cannot recycle without risk
        return kNoPhil;
      }
      return who;  // takes the wrong fork
    }
    case Phase::kTrySecond: {
      const ForkId held = t.fork_of(who, ps.committed);
      const ForkId second = t.other_fork(who, held);
      if (state.fork(second).free()) {
        fail();  // scheduling would complete a meal — abort instead
        return kNoPhil;
      }
      return who;  // fails and releases: back to kChoose
    }
    default:
      fail();
      return kNoPhil;
  }
}

PhilId TrapFig1a::pick(const graph::Topology& t, const SimState& state, const RunView& view,
                       rng::RandomSource& /*rng*/) {
  // Each iteration either returns a philosopher to schedule or advances the
  // mode machine; bounded by a few transitions per call.
  for (int guard = 0; guard < 64; ++guard) {
    switch (mode_) {
      case Mode::kWake: {
        for (PhilId p = 0; p < t.num_phils(); ++p) {
          const Phase phase = state.phil(p).phase;
          if (phase == Phase::kThinking || phase == Phase::kRegister) return p;
        }
        mode_ = Mode::kSetupA;
        break;
      }

      case Mode::kSetupA: {
        // A candidate is P2 = {f2, f0}; its first draw orients the trap.
        const PhilId cand = 2;
        const PhilState& ps = state.phil(cand);
        if (ps.phase == Phase::kChoose) return cand;  // free draw
        if (ps.phase == Phase::kCommit) {
          if (a_ == kNoFork) {
            a_ = t.fork_of(cand, ps.committed);
            c_ = t.other_fork(cand, a_);
            b_ = 3 - a_ - c_;
          }
          return cand;  // takes a
        }
        if (ps.phase == Phase::kTrySecond) {
          A_ = cand;
          A2_ = cand + 3;
          mode_ = Mode::kSetupB1;
          break;
        }
        fail();
        break;
      }

      case Mode::kSetupB1: {
        const PhilId cand = pair_base(a_, b_);
        const PhilState& ps = state.phil(cand);
        if (ps.phase == Phase::kChoose) return cand;
        if (ps.phase == Phase::kCommit) {
          if (t.fork_of(cand, ps.committed) == b_) {
            B_ = cand;
            B2_ = cand + 3;
            mode_ = Mode::kSetupC1;
          } else {
            B2_ = cand;  // committed to a (held): already in the B2 role
            mode_ = Mode::kSetupB2;
          }
          break;
        }
        fail();
        break;
      }

      case Mode::kSetupB2: {
        const PhilId cand = pair_base(a_, b_) + 3;
        const PhilState& ps = state.phil(cand);
        if (ps.phase == Phase::kChoose) return cand;
        if (ps.phase == Phase::kCommit) {
          if (t.fork_of(cand, ps.committed) == b_) {
            B_ = cand;
            mode_ = Mode::kSetupC1;
          } else {
            fail();  // both {a,b}-philosophers committed to a
          }
          break;
        }
        fail();
        break;
      }

      case Mode::kSetupC1: {
        const PhilId cand = pair_base(b_, c_);
        const PhilState& ps = state.phil(cand);
        if (ps.phase == Phase::kChoose) return cand;
        if (ps.phase == Phase::kCommit) {
          if (t.fork_of(cand, ps.committed) == c_) {
            C_ = cand;
            C2_ = cand + 3;
            mode_ = Mode::kCycle;
          } else {
            C2_ = cand;  // committed to b: the C2 end-state already
            mode_ = Mode::kSetupC2;
          }
          break;
        }
        fail();
        break;
      }

      case Mode::kSetupC2: {
        const PhilId cand = pair_base(b_, c_) + 3;
        const PhilState& ps = state.phil(cand);
        if (ps.phase == Phase::kChoose) return cand;
        if (ps.phase == Phase::kCommit) {
          if (t.fork_of(cand, ps.committed) == c_) {
            C_ = cand;
            mode_ = Mode::kCycle;
          } else {
            fail();  // both {b,c}-philosophers committed to b
          }
          break;
        }
        fail();
        break;
      }

      case Mode::kCycle: {
        auto stubborn = [&](PhilId who, ForkId target) -> PhilId {
          if (!loop_armed_) {
            loop_armed_ = true;
            draws_left_ = config_.stubborn_base +
                          config_.stubborn_inc * static_cast<int>(rounds_);
          }
          const PhilId next = drive_to_commit(t, state, who, target);
          if (next == kNoPhil && mode_ == Mode::kCycle) {
            loop_armed_ = false;
            ++cycle_pc_;
          }
          return next;
        };
        auto expect_then_advance = [&](PhilId who, Phase before) -> PhilId {
          if (state.phil(who).phase == before) return who;
          ++cycle_pc_;
          return kNoPhil;
        };

        PhilId next = kNoPhil;
        switch (cycle_pc_) {
          case 0: next = stubborn(B2_, a_); break;
          case 1: next = expect_then_advance(B_, Phase::kCommit); break;     // B takes b
          case 2: next = stubborn(C2_, b_); break;
          case 3: next = expect_then_advance(C_, Phase::kCommit); break;     // C takes c
          case 4: next = expect_then_advance(A_, Phase::kTrySecond); break;  // A releases a
          case 5: next = stubborn(A2_, c_); break;
          case 6: next = expect_then_advance(C_, Phase::kTrySecond); break;  // C releases c
          case 7: next = expect_then_advance(B2_, Phase::kCommit); break;    // B2 takes a
          case 8: next = expect_then_advance(B_, Phase::kTrySecond); break;  // B releases b
          default: {
            // Round complete: relabel forks (a, c, b) and rotate roles to
            // the partners; the old principals become the new partners.
            const ForkId old_b = b_;
            b_ = c_;
            c_ = old_b;
            const PhilId oldA = A_, oldB = B_, oldC = C_;
            A_ = B2_;
            B_ = A2_;
            C_ = C2_;
            A2_ = oldB;
            B2_ = oldA;
            C2_ = oldC;
            cycle_pc_ = 0;
            ++rounds_;
            break;
          }
        }
        if (mode_ != Mode::kCycle) break;   // a stubborn loop failed
        if (next != kNoPhil) return next;
        break;  // advanced pc (or rotated) without scheduling; loop again
      }

      case Mode::kFallback:
        return fair_pick(t, view);
    }
  }
  // Mode machine failed to settle: be safe and fair.
  fail();
  return fair_pick(t, view);
}

}  // namespace gdp::sim
