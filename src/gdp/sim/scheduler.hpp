// The adversary (scheduler) interface of §2: controls the interleaving, has
// complete information of the past, cannot control random outcomes.
//
// Concrete adversaries live in gdp/sim/schedulers/ — fair ones (round-robin,
// uniform random, longest-waiting) and the paper's malicious constructions
// against LR1 (§3 / Theorem 1) and LR2 (Theorem 2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gdp/common/ids.hpp"
#include "gdp/graph/topology.hpp"
#include "gdp/rng/rng.hpp"
#include "gdp/sim/state.hpp"
#include "gdp/sim/step.hpp"

namespace gdp::sim {

/// Run statistics visible to the adversary ("complete information of the
/// past" in aggregate form; trap schedulers additionally remember what they
/// observed through observe()).
struct RunView {
  std::uint64_t step_index = 0;
  std::uint64_t total_meals = 0;
  /// Per philosopher: number of steps taken, and the index of the last step.
  const std::vector<std::uint64_t>* steps_of = nullptr;
  const std::vector<std::uint64_t>* last_scheduled = nullptr;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  /// Called once before a run.
  virtual void reset(const graph::Topology& /*t*/) {}

  /// Chooses the philosopher to execute the next atomic step.
  virtual PhilId pick(const graph::Topology& t, const SimState& state, const RunView& view,
                      rng::RandomSource& rng) = 0;

  /// Observation hook: the sampled outcome of the step just executed.
  virtual void observe(const graph::Topology& /*t*/, const SimState& /*next*/, PhilId /*p*/,
                       const StepEvent& /*event*/) {}
};

}  // namespace gdp::sim
