#include "gdp/sim/state.hpp"

#include <algorithm>

#include "gdp/common/check.hpp"
#include "gdp/common/strings.hpp"

namespace gdp::sim {

const char* to_string(Phase phase) {
  switch (phase) {
    case Phase::kThinking: return "Think";
    case Phase::kRegister: return "Register";
    case Phase::kChoose: return "Choose";
    case Phase::kCommit: return "Commit";
    case Phase::kRenumber: return "Renumber";
    case Phase::kTrySecond: return "TrySecond";
    case Phase::kEating: return "Eat";
    case Phase::kWaitGrant: return "WaitGrant";
  }
  return "?";
}

void SimState::encode(std::vector<std::uint8_t>& out) const {
  out.clear();
  for (const ForkState& f : forks) {
    out.push_back(static_cast<std::uint8_t>(f.holder + 1));  // kNoPhil -> 0
    out.push_back(static_cast<std::uint8_t>(f.nr & 0xff));
    out.push_back(static_cast<std::uint8_t>(f.nr >> 8));
    for (int shift = 0; shift < 64; shift += 8) {
      out.push_back(static_cast<std::uint8_t>((f.requests >> shift) & 0xff));
    }
    // One size byte: a rank vector beyond 255 slots would silently truncate
    // and alias distinct states. Unreachable today (books cap degree at 64),
    // but refuse instead of corrupting if that cap ever moves.
    GDP_CHECK_MSG(f.use_rank.size() <= 0xff,
                  "encode: use_rank has " << f.use_rank.size() << " slots; the size byte caps at 255");
    out.push_back(static_cast<std::uint8_t>(f.use_rank.size()));
    out.insert(out.end(), f.use_rank.begin(), f.use_rank.end());
  }
  for (const PhilState& p : phils) {
    out.push_back(static_cast<std::uint8_t>(p.phase));
    out.push_back(static_cast<std::uint8_t>(p.committed));
    out.push_back(static_cast<std::uint8_t>(p.scratch & 0xff));
    out.push_back(static_cast<std::uint8_t>((p.scratch >> 8) & 0xff));
  }
  for (std::int32_t word : aux) {
    for (int shift = 0; shift < 32; shift += 8) {
      out.push_back(static_cast<std::uint8_t>((static_cast<std::uint32_t>(word) >> shift) & 0xff));
    }
  }
}

bool try_take(SimState& state, ForkId f, PhilId p) {
  ForkState& fork = state.fork(f);
  if (!fork.free()) return false;
  fork.holder = p;
  return true;
}

void release(SimState& state, ForkId f, PhilId p) {
  ForkState& fork = state.fork(f);
  GDP_DCHECK(fork.holder == p);
  (void)p;
  fork.holder = kNoPhil;
}

void mark_used(SimState& state, const graph::Topology& t, ForkId f, PhilId p) {
  ForkState& fork = state.fork(f);
  const int degree = t.degree(f);
  if (fork.use_rank.empty()) fork.use_rank.assign(static_cast<std::size_t>(degree), 0);
  GDP_DCHECK(static_cast<int>(fork.use_rank.size()) == degree);
  const int slot = t.slot_of(f, p);

  // p becomes the most recent user, then ranks are compressed to stay dense
  // (never-used slots keep rank 0; used slots get 1..count by recency).
  std::uint8_t max_rank = 0;
  for (std::uint8_t r : fork.use_rank) max_rank = std::max(max_rank, r);
  fork.use_rank[static_cast<std::size_t>(slot)] = static_cast<std::uint8_t>(max_rank + 1);

  std::vector<std::uint8_t> distinct;
  for (std::uint8_t r : fork.use_rank) {
    if (r != 0) distinct.push_back(r);
  }
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());
  for (std::uint8_t& r : fork.use_rank) {
    if (r != 0) {
      const auto it = std::lower_bound(distinct.begin(), distinct.end(), r);
      r = static_cast<std::uint8_t>(1 + (it - distinct.begin()));
    }
  }
}

bool cond_holds(const SimState& state, const graph::Topology& t, ForkId f, PhilId p) {
  const ForkState& fork = state.fork(f);
  const int my_slot = t.slot_of(f, p);
  const std::uint8_t my_rank =
      fork.use_rank.empty() ? 0 : fork.use_rank[static_cast<std::size_t>(my_slot)];
  const auto sharers = t.incident(f);
  for (int slot = 0; slot < static_cast<int>(sharers.size()); ++slot) {
    if (slot == my_slot) continue;
    if (!fork.requested_by_slot(slot)) continue;
    const std::uint8_t their_rank =
        fork.use_rank.empty() ? 0 : fork.use_rank[static_cast<std::size_t>(slot)];
    // The other requester must have used the fork no earlier than p;
    // otherwise p yields (the courtesy of LR2, §3.2).
    if (their_rank < my_rank) return false;
  }
  return true;
}

bool someone_eating(const SimState& state) {
  return std::any_of(state.phils.begin(), state.phils.end(),
                     [](const PhilState& p) { return p.phase == Phase::kEating; });
}

std::uint64_t eater_mask(const SimState& state) {
  std::uint64_t mask = 0;
  for (std::size_t i = 0; i < state.phils.size(); ++i) {
    if (state.phils[i].phase == Phase::kEating) mask |= (std::uint64_t{1} << std::min(i, std::size_t{63}));
  }
  return mask;
}

bool is_trying(const SimState& state, PhilId p) {
  const Phase phase = state.phil(p).phase;
  return phase != Phase::kThinking && phase != Phase::kEating;
}

bool someone_trying(const SimState& state) {
  for (PhilId p = 0; p < static_cast<PhilId>(state.phils.size()); ++p) {
    if (is_trying(state, p)) return true;
  }
  return false;
}

int forks_held(const SimState& state, const graph::Topology& t, PhilId p) {
  int held = 0;
  if (state.fork(t.left_of(p)).holder == p) ++held;
  if (state.fork(t.right_of(p)).holder == p) ++held;
  return held;
}

std::string check_invariants(const SimState& state, const graph::Topology& t) {
  if (static_cast<int>(state.forks.size()) != t.num_forks()) return "fork count mismatch";
  if (static_cast<int>(state.phils.size()) != t.num_phils()) return "phil count mismatch";

  for (ForkId f = 0; f < t.num_forks(); ++f) {
    const ForkState& fork = state.fork(f);
    if (fork.holder != kNoPhil) {
      if (fork.holder < 0 || fork.holder >= t.num_phils()) {
        return "fork " + fork_name(f) + " held by out-of-range philosopher";
      }
      const auto& arc = t.arc(fork.holder);
      if (arc.left != f && arc.right != f) {
        return "fork " + fork_name(f) + " held by non-adjacent " + phil_name(fork.holder);
      }
    }
    if (!fork.use_rank.empty()) {
      if (static_cast<int>(fork.use_rank.size()) != t.degree(f)) {
        return "fork " + fork_name(f) + " rank vector size != degree";
      }
      // Ranks must be dense: the nonzero ranks are exactly {1..count}.
      std::vector<std::uint8_t> nonzero;
      for (std::uint8_t r : fork.use_rank) {
        if (r != 0) nonzero.push_back(r);
      }
      std::sort(nonzero.begin(), nonzero.end());
      for (std::size_t i = 0; i < nonzero.size(); ++i) {
        if (nonzero[i] != static_cast<std::uint8_t>(i + 1)) {
          return "fork " + fork_name(f) + " ranks not dense";
        }
      }
    }
    if (fork.requests != 0) {
      const int degree = t.degree(f);
      if (degree < 64 && (fork.requests >> degree) != 0) {
        return "fork " + fork_name(f) + " has request bits beyond its sharers";
      }
    }
  }

  for (PhilId p = 0; p < t.num_phils(); ++p) {
    const PhilState& phil = state.phil(p);
    const int held = forks_held(state, t, p);
    switch (phil.phase) {
      case Phase::kThinking:
      case Phase::kRegister:
      case Phase::kChoose:
      case Phase::kCommit:
      case Phase::kWaitGrant:
        // kWaitGrant baselines may hold forks mid-acquisition (ordered /
        // colored hold-and-wait); the fully-symmetric algorithms hold none.
        if (phil.phase != Phase::kWaitGrant && held != 0) {
          return phil_name(p) + " holds forks in phase " + to_string(phil.phase);
        }
        break;
      case Phase::kRenumber:
      case Phase::kTrySecond:
        if (held != 1) return phil_name(p) + " should hold exactly its first fork";
        break;
      case Phase::kEating:
        if (held != 2) return phil_name(p) + " eats without both forks";
        break;
    }
  }
  return {};
}

std::string to_string(const SimState& state, const graph::Topology& t) {
  std::vector<std::string> parts;
  for (ForkId f = 0; f < t.num_forks(); ++f) {
    const ForkState& fork = state.fork(f);
    std::string s = fork_name(f) + ":";
    s += fork.free() ? "-" : phil_name(fork.holder);
    if (fork.nr != 0) s += "(nr=" + std::to_string(fork.nr) + ")";
    parts.push_back(std::move(s));
  }
  std::string out = join(parts, " ");
  out += " | ";
  parts.clear();
  for (PhilId p = 0; p < t.num_phils(); ++p) {
    const PhilState& phil = state.phil(p);
    std::string s = phil_name(p) + ":";
    s += to_string(phil.phase);
    if (phil.phase == Phase::kCommit || phil.phase == Phase::kRenumber ||
        phil.phase == Phase::kTrySecond) {
      s += phil.committed == Side::kLeft ? "(L)" : "(R)";
    }
    parts.push_back(std::move(s));
  }
  out += join(parts, " ");
  return out;
}

}  // namespace gdp::sim
