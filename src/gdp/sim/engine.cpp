#include "gdp/sim/engine.hpp"

#include <algorithm>

#include "gdp/common/check.hpp"

namespace gdp::sim {

std::uint64_t RunResult::max_hunger() const {
  return max_hunger_of.empty() ? 0
                               : *std::max_element(max_hunger_of.begin(), max_hunger_of.end());
}

bool RunResult::everyone_ate() const {
  return std::all_of(meals_of.begin(), meals_of.end(), [](std::uint64_t m) { return m > 0; });
}

const Branch& sample_branch(const std::vector<Branch>& branches, rng::RandomSource& rng) {
  GDP_DCHECK(!branches.empty());
  if (branches.size() == 1) return branches.front();

  // Recognize the two semantic draw shapes so scripted replays can force
  // them: a 2-way side draw (kChose) and an m-way renumbering (kRenumbered).
  if (branches.size() == 2 && branches[0].event.kind == EventKind::kChose &&
      branches[1].event.kind == EventKind::kChose) {
    const double p_left =
        branches[0].event.side == Side::kLeft ? branches[0].prob : branches[1].prob;
    const Side drawn = rng.choose_side(p_left);
    return branches[0].event.side == drawn ? branches[0] : branches[1];
  }
  if (branches.front().event.kind == EventKind::kRenumbered) {
    // Values are 1..m in order; draw uniformly by value.
    const int lo = branches.front().event.value;
    const int hi = branches.back().event.value;
    const int v = rng.uniform_int(lo, hi);
    return branches[static_cast<std::size_t>(v - lo)];
  }

  // Generic categorical fallback (think coins, future algorithms).
  double u = static_cast<double>(rng.next_u64() >> 11) * 0x1.0p-53;
  for (const Branch& b : branches) {
    if (u < b.prob) return b;
    u -= b.prob;
  }
  return branches.back();
}

namespace {

/// True iff no philosopher can change the configuration: a real deadlock.
bool all_self_loops(const algos::Algorithm& algo, const graph::Topology& t,
                    const SimState& state) {
  for (PhilId p = 0; p < t.num_phils(); ++p) {
    if (!is_self_loop(state, algo.step(t, state, p))) return false;
  }
  return true;
}

}  // namespace

RunResult run(const algos::Algorithm& algo, const graph::Topology& t, Scheduler& sched,
              rng::RandomSource& rng, const EngineConfig& config) {
  const auto n = static_cast<std::size_t>(t.num_phils());

  RunResult result;
  result.meals_of.assign(n, 0);
  result.first_meal_of.assign(n, kNever);
  result.max_hunger_of.assign(n, 0);

  SimState state = algo.initial_state(t);
  sched.reset(t);

  std::vector<std::uint64_t> steps_of(n, 0);
  std::vector<std::uint64_t> last_scheduled(n, 0);
  std::vector<std::uint64_t> hungry_since(n, kNever);
  std::uint64_t consecutive_self_loops = 0;

  RunView view;
  view.steps_of = &steps_of;
  view.last_scheduled = &last_scheduled;

  for (std::uint64_t step = 0; step < config.max_steps; ++step) {
    view.step_index = step;
    view.total_meals = result.total_meals;

    const PhilId p = sched.pick(t, state, view, rng);
    GDP_CHECK_MSG(p >= 0 && p < t.num_phils(), sched.name() << " picked invalid philosopher " << p);

    const std::vector<Branch> branches = algo.step(t, state, p);
    const Branch& chosen = sample_branch(branches, rng);
    const bool unchanged = chosen.next == state;

    // Bookkeeping before the state moves on.
    result.max_sched_gap = std::max(result.max_sched_gap, step - last_scheduled[p]);
    last_scheduled[p] = step;
    ++steps_of[p];

    switch (chosen.event.kind) {
      case EventKind::kStartTrying:
        hungry_since[p] = step;
        break;
      case EventKind::kTookSecond: {
        ++result.total_meals;
        ++result.meals_of[p];
        if (result.first_meal_step == kNever) result.first_meal_step = step;
        if (result.first_meal_of[p] == kNever) result.first_meal_of[p] = step;
        if (hungry_since[p] != kNever) {
          result.max_hunger_of[p] = std::max(result.max_hunger_of[p], step - hungry_since[p]);
          hungry_since[p] = kNever;
        }
        break;
      }
      case EventKind::kGranted:
        // Arbiter grants both forks at once: that is the meal start.
        if (chosen.next.phil(p).phase == Phase::kEating) {
          ++result.total_meals;
          ++result.meals_of[p];
          if (result.first_meal_step == kNever) result.first_meal_step = step;
          if (result.first_meal_of[p] == kNever) result.first_meal_of[p] = step;
          if (hungry_since[p] != kNever) {
            result.max_hunger_of[p] = std::max(result.max_hunger_of[p], step - hungry_since[p]);
            hungry_since[p] = kNever;
          }
        }
        break;
      default:
        break;
    }

    if (config.record_trace) result.trace.push_back(TraceEntry{step, p, chosen.event});

    state = chosen.next;
    sched.observe(t, state, p, chosen.event);
    result.steps = step + 1;

    if (config.check_invariants) {
      result.invariant_violation = check_invariants(state, t);
      if (!result.invariant_violation.empty()) break;
    }

    // Deadlock probe: only bother once every philosopher in a row was stuck.
    consecutive_self_loops = unchanged ? consecutive_self_loops + 1 : 0;
    if (consecutive_self_loops >= static_cast<std::uint64_t>(t.num_phils()) &&
        all_self_loops(algo, t, state)) {
      result.deadlocked = true;
      break;
    }

    if (config.stop_after_meals != 0 && result.total_meals >= config.stop_after_meals) break;
    if (config.stop_when_all_ate &&
        std::all_of(result.meals_of.begin(), result.meals_of.end(),
                    [](std::uint64_t m) { return m > 0; })) {
      break;
    }
  }

  // Fold unfinished hungers into the lockout metric.
  for (std::size_t i = 0; i < n; ++i) {
    if (hungry_since[i] != kNever) {
      result.max_hunger_of[i] = std::max(result.max_hunger_of[i], result.steps - hungry_since[i]);
    }
  }
  result.final_state = std::move(state);
  return result;
}

}  // namespace gdp::sim
