// The interleaving simulator: adversary picks a philosopher, the algorithm
// yields the probabilistic branches of that philosopher's atomic step, the
// engine samples one — the operational semantics of the paper's
// probabilistic-automaton model (§2).
//
// The engine also measures everything the experiments need: meals (global
// and per philosopher), time-to-first-eat, hunger spans (lockout metrics),
// scheduling gaps (fairness), and it detects true deadlocks (every
// philosopher's next step is a pure busy-wait self-loop — possible only for
// the hold-and-wait baselines).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "gdp/algos/algorithm.hpp"
#include "gdp/graph/topology.hpp"
#include "gdp/rng/rng.hpp"
#include "gdp/sim/scheduler.hpp"
#include "gdp/sim/state.hpp"
#include "gdp/sim/step.hpp"

namespace gdp::sim {

inline constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

struct EngineConfig {
  /// Hard step bound for the run.
  std::uint64_t max_steps = 1'000'000;
  /// Stop once this many meals completed (0 = don't stop on meals).
  std::uint64_t stop_after_meals = 0;
  /// Stop once every philosopher has eaten at least once.
  bool stop_when_all_ate = false;
  /// Record the event trace (step, philosopher, event).
  bool record_trace = false;
  /// Validate structural invariants after every step (tests; slow).
  bool check_invariants = false;
};

struct TraceEntry {
  std::uint64_t step = 0;
  PhilId phil = kNoPhil;
  StepEvent event;
};

struct RunResult {
  std::uint64_t steps = 0;

  /// A "meal" is counted when a philosopher takes its second fork.
  std::uint64_t total_meals = 0;
  std::vector<std::uint64_t> meals_of;

  /// Step index of the first meal overall / per philosopher (kNever if none).
  std::uint64_t first_meal_step = kNever;
  std::vector<std::uint64_t> first_meal_of;

  /// Longest hungry span (steps between starting to try and taking the
  /// second fork), per philosopher; an unfinished hunger at run end counts.
  std::vector<std::uint64_t> max_hunger_of;

  /// Largest gap between consecutive steps of the same philosopher
  /// (a bounded gap certifies the executed prefix was fair).
  std::uint64_t max_sched_gap = 0;

  /// True if the run ended in a state where every philosopher's step is a
  /// no-op self-loop (circular hold-and-wait).
  bool deadlocked = false;

  /// Empty if invariants held (when check_invariants was on).
  std::string invariant_violation;

  SimState final_state;
  std::vector<TraceEntry> trace;

  std::uint64_t max_hunger() const;
  bool everyone_ate() const;
  bool progressed() const { return total_meals > 0; }
};

/// Runs `algo` on `t` under `sched`, sampling with `rng`. The same seed,
/// scheduler and config reproduce the identical run.
RunResult run(const algos::Algorithm& algo, const graph::Topology& t, Scheduler& sched,
              rng::RandomSource& rng, const EngineConfig& config);

/// Single-step helper shared with the replayer: samples one branch of
/// `p`'s step distribution using `rng`.
const Branch& sample_branch(const std::vector<Branch>& branches, rng::RandomSource& rng);

}  // namespace gdp::sim
