// One atomic step of one philosopher = a probability distribution over
// successor configurations (a transition of the Segala/Lynch probabilistic
// automaton, §2). Algorithms *enumerate* the branches; the simulator samples
// one, the MDP model checker keeps them all.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gdp/common/ids.hpp"
#include "gdp/sim/state.hpp"

namespace gdp::sim {

enum class EventKind : std::uint8_t {
  kStartTrying,     // think ended; entering the trying section
  kStillThinking,   // think step did not terminate (Coin mode)
  kRegistered,      // LR2/GDP2: inserted id into both request lists
  kChose,           // committed to a first fork (side in `side`)
  kTookFirst,       // test-and-set succeeded on the first fork
  kBlockedFirst,    // first fork taken; busy-wait step
  kRenumbered,      // GDP: wrote random nr (value in `value`) to held fork
  kNrDistinct,      // GDP: nr values differ; no renumbering needed
  kTookSecond,      // got both forks -> eating
  kFailedSecond,    // second fork taken; released first, back to choosing
  kBlockedSecond,   // hold-and-wait baselines: still waiting for the second
  kFinishedEating,  // released everything, back to thinking
  kWaiting,         // baselines: waiting on arbiter grant / ticket
  kGranted,         // baselines: request granted
};

const char* to_string(EventKind kind);

/// What a step did, for traces and assertions.
struct StepEvent {
  EventKind kind = EventKind::kStillThinking;
  Side side = Side::kLeft;  // for kChose
  ForkId fork = kNoFork;    // fork acted on, if any
  int value = 0;            // for kRenumbered

  std::string to_string() const;
};

/// One probabilistic branch of a step.
struct Branch {
  double prob = 1.0;
  StepEvent event;
  SimState next;
};

/// Convenience: a single deterministic branch.
Branch deterministic(SimState next, StepEvent event);

/// True if every branch leaves the configuration unchanged (a pure busy-wait
/// step). Used by the engine's deadlock detector.
bool is_self_loop(const SimState& current, const std::vector<Branch>& branches);

}  // namespace gdp::sim
