// The instantaneous configuration of a generalized dining-philosophers
// system: one ForkState per fork, one PhilState per philosopher, plus an
// algorithm-owned auxiliary word vector (used only by the non-distributed
// baselines of §1 — the arbiter's queue and the ticket box).
//
// SimState is a value type: the algorithms produce probabilistic branches by
// copying and mutating it, which serves the simulator (sample a branch), the
// MDP model checker (enumerate all branches) and the replayer identically.
//
// Paper state fields:
//   fork.holder          — who holds the fork (test-and-set target, §2)
//   fork.nr              — GDP's number field, in [0, m], initially 0 (§4)
//   fork.requests        — LR2/GDP2's request list r, one bit per sharer slot
//   fork.use_rank        — LR2/GDP2's guest book g, reduced to dense last-use
//                          ranks per sharer (0 = never used). Cond() only
//                          compares the order of last uses, so ranks carry
//                          exactly the needed information and stay bounded.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gdp/common/ids.hpp"
#include "gdp/graph/topology.hpp"

namespace gdp::sim {

/// Where a philosopher is inside its program. Phases are labels shared by
/// all algorithms; the per-phase semantics live in each algorithm's step().
enum class Phase : std::uint8_t {
  kThinking,   // step "think"
  kRegister,   // LR2/GDP2: insert id into both forks' request lists
  kChoose,     // pick the first fork (random draw, or nr comparison)
  kCommit,     // busy-wait test-and-set on the chosen first fork
  kRenumber,   // GDP1/GDP2: holding first fork, re-randomize nr on equality
  kTrySecond,  // test-and-set on the second fork
  kEating,     // holds both forks
  kWaitGrant,  // baselines: waiting on the arbiter / ticket box
};

const char* to_string(Phase phase);

struct PhilState {
  Phase phase = Phase::kThinking;
  /// Which side the philosopher committed to as *first* fork
  /// (meaningful in kCommit / kRenumber / kTrySecond).
  Side committed = Side::kLeft;
  /// Small algorithm-owned scratch (GDP-H: acquisition progress).
  std::int16_t scratch = 0;

  bool operator==(const PhilState&) const = default;
};

struct ForkState {
  /// Holder philosopher, or kNoPhil if the fork is on the table.
  PhilId holder = kNoPhil;
  /// GDP's nr field (0 initially; algorithms write values in [1, m]).
  std::uint16_t nr = 0;
  /// Request bits, indexed by sharer slot (Topology::slot_of). Only
  /// book-keeping algorithms (LR2/GDP2) set these; degree <= 64 enforced
  /// when books are in use.
  std::uint64_t requests = 0;
  /// Dense last-use ranks per sharer slot; 0 = never used, otherwise the
  /// 1-based position in the order of most-recent uses (higher = more
  /// recent). Empty when the algorithm keeps no books.
  std::vector<std::uint8_t> use_rank;

  bool free() const { return holder == kNoPhil; }
  bool requested_by_slot(int slot) const { return (requests >> slot) & 1u; }

  bool operator==(const ForkState&) const = default;
};

struct SimState {
  std::vector<ForkState> forks;
  std::vector<PhilState> phils;
  /// Algorithm-owned global words (baselines only; empty otherwise).
  std::vector<std::int32_t> aux;

  bool operator==(const SimState&) const = default;

  const ForkState& fork(ForkId f) const { return forks[static_cast<std::size_t>(f)]; }
  ForkState& fork(ForkId f) { return forks[static_cast<std::size_t>(f)]; }
  const PhilState& phil(PhilId p) const { return phils[static_cast<std::size_t>(p)]; }
  PhilState& phil(PhilId p) { return phils[static_cast<std::size_t>(p)]; }

  /// Serializes to bytes (exact, canonical). Formerly the MDP state key;
  /// the explorers now intern bit-packed fixed-width keys (gdp/mdp/key.hpp)
  /// instead. Kept as the reference encoding: test_differential cross-checks
  /// every KeyCodec key against these bytes so the packed layout can never
  /// silently drop a distinguishing field.
  void encode(std::vector<std::uint8_t>& out) const;
};

/// Fork-state mutations shared by the algorithms. -----------------------------

/// The paper's atomic "if isFree(fork) then take(fork)": returns true and
/// records `p` as holder iff the fork was free.
bool try_take(SimState& state, ForkId f, PhilId p);

/// Releases fork f (precondition: held by p).
void release(SimState& state, ForkId f, PhilId p);

/// Marks p's use of fork f in the guest book: p becomes the most recent
/// user and ranks are re-normalized to stay dense.
void mark_used(SimState& state, const graph::Topology& t, ForkId f, PhilId p);

/// LR2/GDP2's Cond(fork) for philosopher p: no *other* philosopher is
/// requesting f, or every other requester has used f no earlier than p.
bool cond_holds(const SimState& state, const graph::Topology& t, ForkId f, PhilId p);

/// Queries. -------------------------------------------------------------------

/// True iff some philosopher is eating (the paper's set E).
bool someone_eating(const SimState& state);

/// Bitmask of currently-eating philosophers (bit p set iff p eats);
/// supports the paper's "progress wrt a set" and lockout-freedom notions.
/// Philosophers beyond id 63 fold onto bit 63 (no such topology in-tree).
std::uint64_t eater_mask(const SimState& state);

/// True iff philosopher p is in its trying section (steps 2..5/6 — anything
/// that is neither thinking nor eating), or eating-pending; the paper's Ti.
bool is_trying(const SimState& state, PhilId p);

/// True iff some philosopher is trying (the paper's set T).
bool someone_trying(const SimState& state);

/// Number of forks currently held by p.
int forks_held(const SimState& state, const graph::Topology& t, PhilId p);

/// Structural invariants: holders are adjacent and in holding phases, eating
/// philosophers hold both forks, ranks are dense, request bits only on
/// sharers. Returns an empty string if fine, else a description.
std::string check_invariants(const SimState& state, const graph::Topology& t);

/// One-line rendering "f0:P3(nr=2) f1:-(nr=0) | P0:Commit(L) ..." for tests
/// and traces.
std::string to_string(const SimState& state, const graph::Topology& t);

}  // namespace gdp::sim
