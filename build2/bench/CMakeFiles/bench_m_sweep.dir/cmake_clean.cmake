file(REMOVE_RECURSE
  "CMakeFiles/bench_m_sweep.dir/bench_m_sweep.cpp.o"
  "CMakeFiles/bench_m_sweep.dir/bench_m_sweep.cpp.o.d"
  "bench_m_sweep"
  "bench_m_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_m_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
