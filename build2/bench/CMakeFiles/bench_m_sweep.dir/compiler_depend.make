# Empty compiler generated dependencies file for bench_m_sweep.
# This may be replaced when dependencies are built.
