file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_topologies.dir/bench_fig1_topologies.cpp.o"
  "CMakeFiles/bench_fig1_topologies.dir/bench_fig1_topologies.cpp.o.d"
  "bench_fig1_topologies"
  "bench_fig1_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
