# Empty compiler generated dependencies file for bench_product_bound.
# This may be replaced when dependencies are built.
