file(REMOVE_RECURSE
  "CMakeFiles/bench_product_bound.dir/bench_product_bound.cpp.o"
  "CMakeFiles/bench_product_bound.dir/bench_product_bound.cpp.o.d"
  "bench_product_bound"
  "bench_product_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_product_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
