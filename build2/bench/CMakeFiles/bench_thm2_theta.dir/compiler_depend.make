# Empty compiler generated dependencies file for bench_thm2_theta.
# This may be replaced when dependencies are built.
