file(REMOVE_RECURSE
  "CMakeFiles/bench_thm2_theta.dir/bench_thm2_theta.cpp.o"
  "CMakeFiles/bench_thm2_theta.dir/bench_thm2_theta.cpp.o.d"
  "bench_thm2_theta"
  "bench_thm2_theta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm2_theta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
