# Empty dependencies file for bench_lockout.
# This may be replaced when dependencies are built.
