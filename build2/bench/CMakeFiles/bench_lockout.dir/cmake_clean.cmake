file(REMOVE_RECURSE
  "CMakeFiles/bench_lockout.dir/bench_lockout.cpp.o"
  "CMakeFiles/bench_lockout.dir/bench_lockout.cpp.o.d"
  "bench_lockout"
  "bench_lockout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lockout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
