# Empty compiler generated dependencies file for bench_symmetry_break.
# This may be replaced when dependencies are built.
