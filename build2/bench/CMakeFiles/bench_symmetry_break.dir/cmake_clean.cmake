file(REMOVE_RECURSE
  "CMakeFiles/bench_symmetry_break.dir/bench_symmetry_break.cpp.o"
  "CMakeFiles/bench_symmetry_break.dir/bench_symmetry_break.cpp.o.d"
  "bench_symmetry_break"
  "bench_symmetry_break.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_symmetry_break.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
