# Empty compiler generated dependencies file for bench_lr1_trap.
# This may be replaced when dependencies are built.
