file(REMOVE_RECURSE
  "CMakeFiles/bench_lr1_trap.dir/bench_lr1_trap.cpp.o"
  "CMakeFiles/bench_lr1_trap.dir/bench_lr1_trap.cpp.o.d"
  "bench_lr1_trap"
  "bench_lr1_trap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lr1_trap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
