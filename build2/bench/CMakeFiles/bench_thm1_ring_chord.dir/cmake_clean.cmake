file(REMOVE_RECURSE
  "CMakeFiles/bench_thm1_ring_chord.dir/bench_thm1_ring_chord.cpp.o"
  "CMakeFiles/bench_thm1_ring_chord.dir/bench_thm1_ring_chord.cpp.o.d"
  "bench_thm1_ring_chord"
  "bench_thm1_ring_chord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm1_ring_chord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
