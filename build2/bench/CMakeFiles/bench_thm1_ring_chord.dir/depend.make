# Empty dependencies file for bench_thm1_ring_chord.
# This may be replaced when dependencies are built.
