# Empty compiler generated dependencies file for bench_mdp_verdicts.
# This may be replaced when dependencies are built.
