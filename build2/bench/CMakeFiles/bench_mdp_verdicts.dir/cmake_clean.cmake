file(REMOVE_RECURSE
  "CMakeFiles/bench_mdp_verdicts.dir/bench_mdp_verdicts.cpp.o"
  "CMakeFiles/bench_mdp_verdicts.dir/bench_mdp_verdicts.cpp.o.d"
  "bench_mdp_verdicts"
  "bench_mdp_verdicts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mdp_verdicts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
