# Empty dependencies file for bench_hypergraph.
# This may be replaced when dependencies are built.
