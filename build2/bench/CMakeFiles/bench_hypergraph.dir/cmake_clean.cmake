file(REMOVE_RECURSE
  "CMakeFiles/bench_hypergraph.dir/bench_hypergraph.cpp.o"
  "CMakeFiles/bench_hypergraph.dir/bench_hypergraph.cpp.o.d"
  "bench_hypergraph"
  "bench_hypergraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hypergraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
