file(REMOVE_RECURSE
  "libgdp.a"
)
