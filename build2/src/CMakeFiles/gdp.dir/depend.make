# Empty dependencies file for gdp.
# This may be replaced when dependencies are built.
