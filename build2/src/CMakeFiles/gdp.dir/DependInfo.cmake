
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gdp/algos/algorithm.cpp" "src/CMakeFiles/gdp.dir/gdp/algos/algorithm.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/algos/algorithm.cpp.o.d"
  "/root/repo/src/gdp/algos/central_arbiter.cpp" "src/CMakeFiles/gdp.dir/gdp/algos/central_arbiter.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/algos/central_arbiter.cpp.o.d"
  "/root/repo/src/gdp/algos/colored.cpp" "src/CMakeFiles/gdp.dir/gdp/algos/colored.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/algos/colored.cpp.o.d"
  "/root/repo/src/gdp/algos/gdp1.cpp" "src/CMakeFiles/gdp.dir/gdp/algos/gdp1.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/algos/gdp1.cpp.o.d"
  "/root/repo/src/gdp/algos/gdp2.cpp" "src/CMakeFiles/gdp.dir/gdp/algos/gdp2.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/algos/gdp2.cpp.o.d"
  "/root/repo/src/gdp/algos/gdp_hyper.cpp" "src/CMakeFiles/gdp.dir/gdp/algos/gdp_hyper.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/algos/gdp_hyper.cpp.o.d"
  "/root/repo/src/gdp/algos/lr1.cpp" "src/CMakeFiles/gdp.dir/gdp/algos/lr1.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/algos/lr1.cpp.o.d"
  "/root/repo/src/gdp/algos/lr2.cpp" "src/CMakeFiles/gdp.dir/gdp/algos/lr2.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/algos/lr2.cpp.o.d"
  "/root/repo/src/gdp/algos/ordered_forks.cpp" "src/CMakeFiles/gdp.dir/gdp/algos/ordered_forks.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/algos/ordered_forks.cpp.o.d"
  "/root/repo/src/gdp/algos/registry.cpp" "src/CMakeFiles/gdp.dir/gdp/algos/registry.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/algos/registry.cpp.o.d"
  "/root/repo/src/gdp/algos/ticket.cpp" "src/CMakeFiles/gdp.dir/gdp/algos/ticket.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/algos/ticket.cpp.o.d"
  "/root/repo/src/gdp/common/strings.cpp" "src/CMakeFiles/gdp.dir/gdp/common/strings.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/common/strings.cpp.o.d"
  "/root/repo/src/gdp/graph/algorithms.cpp" "src/CMakeFiles/gdp.dir/gdp/graph/algorithms.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/graph/algorithms.cpp.o.d"
  "/root/repo/src/gdp/graph/builders.cpp" "src/CMakeFiles/gdp.dir/gdp/graph/builders.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/graph/builders.cpp.o.d"
  "/root/repo/src/gdp/graph/dot.cpp" "src/CMakeFiles/gdp.dir/gdp/graph/dot.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/graph/dot.cpp.o.d"
  "/root/repo/src/gdp/graph/hypergraph.cpp" "src/CMakeFiles/gdp.dir/gdp/graph/hypergraph.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/graph/hypergraph.cpp.o.d"
  "/root/repo/src/gdp/graph/topology.cpp" "src/CMakeFiles/gdp.dir/gdp/graph/topology.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/graph/topology.cpp.o.d"
  "/root/repo/src/gdp/mdp/chain_analysis.cpp" "src/CMakeFiles/gdp.dir/gdp/mdp/chain_analysis.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/mdp/chain_analysis.cpp.o.d"
  "/root/repo/src/gdp/mdp/end_components.cpp" "src/CMakeFiles/gdp.dir/gdp/mdp/end_components.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/mdp/end_components.cpp.o.d"
  "/root/repo/src/gdp/mdp/explore.cpp" "src/CMakeFiles/gdp.dir/gdp/mdp/explore.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/mdp/explore.cpp.o.d"
  "/root/repo/src/gdp/mdp/fair_progress.cpp" "src/CMakeFiles/gdp.dir/gdp/mdp/fair_progress.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/mdp/fair_progress.cpp.o.d"
  "/root/repo/src/gdp/mdp/witness.cpp" "src/CMakeFiles/gdp.dir/gdp/mdp/witness.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/mdp/witness.cpp.o.d"
  "/root/repo/src/gdp/pi/guarded_choice.cpp" "src/CMakeFiles/gdp.dir/gdp/pi/guarded_choice.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/pi/guarded_choice.cpp.o.d"
  "/root/repo/src/gdp/rng/rng.cpp" "src/CMakeFiles/gdp.dir/gdp/rng/rng.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/rng/rng.cpp.o.d"
  "/root/repo/src/gdp/rng/scripted.cpp" "src/CMakeFiles/gdp.dir/gdp/rng/scripted.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/rng/scripted.cpp.o.d"
  "/root/repo/src/gdp/runtime/runtime.cpp" "src/CMakeFiles/gdp.dir/gdp/runtime/runtime.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/runtime/runtime.cpp.o.d"
  "/root/repo/src/gdp/sim/engine.cpp" "src/CMakeFiles/gdp.dir/gdp/sim/engine.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/sim/engine.cpp.o.d"
  "/root/repo/src/gdp/sim/schedulers/basic.cpp" "src/CMakeFiles/gdp.dir/gdp/sim/schedulers/basic.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/sim/schedulers/basic.cpp.o.d"
  "/root/repo/src/gdp/sim/schedulers/eat_avoider.cpp" "src/CMakeFiles/gdp.dir/gdp/sim/schedulers/eat_avoider.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/sim/schedulers/eat_avoider.cpp.o.d"
  "/root/repo/src/gdp/sim/schedulers/starve_victim.cpp" "src/CMakeFiles/gdp.dir/gdp/sim/schedulers/starve_victim.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/sim/schedulers/starve_victim.cpp.o.d"
  "/root/repo/src/gdp/sim/schedulers/trap_fig1a.cpp" "src/CMakeFiles/gdp.dir/gdp/sim/schedulers/trap_fig1a.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/sim/schedulers/trap_fig1a.cpp.o.d"
  "/root/repo/src/gdp/sim/state.cpp" "src/CMakeFiles/gdp.dir/gdp/sim/state.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/sim/state.cpp.o.d"
  "/root/repo/src/gdp/sim/step.cpp" "src/CMakeFiles/gdp.dir/gdp/sim/step.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/sim/step.cpp.o.d"
  "/root/repo/src/gdp/stats/ci.cpp" "src/CMakeFiles/gdp.dir/gdp/stats/ci.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/stats/ci.cpp.o.d"
  "/root/repo/src/gdp/stats/csv.cpp" "src/CMakeFiles/gdp.dir/gdp/stats/csv.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/stats/csv.cpp.o.d"
  "/root/repo/src/gdp/stats/histogram.cpp" "src/CMakeFiles/gdp.dir/gdp/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/stats/histogram.cpp.o.d"
  "/root/repo/src/gdp/stats/jain.cpp" "src/CMakeFiles/gdp.dir/gdp/stats/jain.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/stats/jain.cpp.o.d"
  "/root/repo/src/gdp/stats/online.cpp" "src/CMakeFiles/gdp.dir/gdp/stats/online.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/stats/online.cpp.o.d"
  "/root/repo/src/gdp/stats/table.cpp" "src/CMakeFiles/gdp.dir/gdp/stats/table.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/stats/table.cpp.o.d"
  "/root/repo/src/gdp/trace/ascii.cpp" "src/CMakeFiles/gdp.dir/gdp/trace/ascii.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/trace/ascii.cpp.o.d"
  "/root/repo/src/gdp/trace/replay.cpp" "src/CMakeFiles/gdp.dir/gdp/trace/replay.cpp.o" "gcc" "src/CMakeFiles/gdp.dir/gdp/trace/replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
