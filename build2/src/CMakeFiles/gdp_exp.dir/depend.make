# Empty dependencies file for gdp_exp.
# This may be replaced when dependencies are built.
