file(REMOVE_RECURSE
  "libgdp_exp.a"
)
