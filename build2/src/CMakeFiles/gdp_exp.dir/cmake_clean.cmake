file(REMOVE_RECURSE
  "CMakeFiles/gdp_exp.dir/gdp/exp/aggregate.cpp.o"
  "CMakeFiles/gdp_exp.dir/gdp/exp/aggregate.cpp.o.d"
  "CMakeFiles/gdp_exp.dir/gdp/exp/campaign.cpp.o"
  "CMakeFiles/gdp_exp.dir/gdp/exp/campaign.cpp.o.d"
  "CMakeFiles/gdp_exp.dir/gdp/exp/runner.cpp.o"
  "CMakeFiles/gdp_exp.dir/gdp/exp/runner.cpp.o.d"
  "libgdp_exp.a"
  "libgdp_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdp_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
