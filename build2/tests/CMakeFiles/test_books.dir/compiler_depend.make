# Empty compiler generated dependencies file for test_books.
# This may be replaced when dependencies are built.
