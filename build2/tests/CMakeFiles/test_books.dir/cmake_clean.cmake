file(REMOVE_RECURSE
  "CMakeFiles/test_books.dir/test_books.cpp.o"
  "CMakeFiles/test_books.dir/test_books.cpp.o.d"
  "test_books"
  "test_books.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_books.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
