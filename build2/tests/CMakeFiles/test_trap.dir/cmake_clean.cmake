file(REMOVE_RECURSE
  "CMakeFiles/test_trap.dir/test_trap.cpp.o"
  "CMakeFiles/test_trap.dir/test_trap.cpp.o.d"
  "test_trap"
  "test_trap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
