# Empty compiler generated dependencies file for test_trap.
# This may be replaced when dependencies are built.
