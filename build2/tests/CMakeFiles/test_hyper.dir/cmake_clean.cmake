file(REMOVE_RECURSE
  "CMakeFiles/test_hyper.dir/test_hyper.cpp.o"
  "CMakeFiles/test_hyper.dir/test_hyper.cpp.o.d"
  "test_hyper"
  "test_hyper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hyper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
