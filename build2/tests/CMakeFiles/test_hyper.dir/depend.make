# Empty dependencies file for test_hyper.
# This may be replaced when dependencies are built.
