# Empty dependencies file for test_state.
# This may be replaced when dependencies are built.
