file(REMOVE_RECURSE
  "CMakeFiles/test_state.dir/test_state.cpp.o"
  "CMakeFiles/test_state.dir/test_state.cpp.o.d"
  "test_state"
  "test_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
