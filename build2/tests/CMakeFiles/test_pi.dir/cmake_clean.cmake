file(REMOVE_RECURSE
  "CMakeFiles/test_pi.dir/test_pi.cpp.o"
  "CMakeFiles/test_pi.dir/test_pi.cpp.o.d"
  "test_pi"
  "test_pi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
