# Empty compiler generated dependencies file for test_pi.
# This may be replaced when dependencies are built.
