# Empty compiler generated dependencies file for test_gdp.
# This may be replaced when dependencies are built.
