file(REMOVE_RECURSE
  "CMakeFiles/test_gdp.dir/test_gdp.cpp.o"
  "CMakeFiles/test_gdp.dir/test_gdp.cpp.o.d"
  "test_gdp"
  "test_gdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
