file(REMOVE_RECURSE
  "CMakeFiles/guarded_choice.dir/guarded_choice.cpp.o"
  "CMakeFiles/guarded_choice.dir/guarded_choice.cpp.o.d"
  "guarded_choice"
  "guarded_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guarded_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
