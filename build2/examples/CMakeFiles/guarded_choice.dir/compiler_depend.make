# Empty compiler generated dependencies file for guarded_choice.
# This may be replaced when dependencies are built.
