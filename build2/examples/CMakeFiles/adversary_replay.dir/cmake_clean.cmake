file(REMOVE_RECURSE
  "CMakeFiles/adversary_replay.dir/adversary_replay.cpp.o"
  "CMakeFiles/adversary_replay.dir/adversary_replay.cpp.o.d"
  "adversary_replay"
  "adversary_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversary_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
