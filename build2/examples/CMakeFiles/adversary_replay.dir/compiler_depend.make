# Empty compiler generated dependencies file for adversary_replay.
# This may be replaced when dependencies are built.
