# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build2/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build2/examples/quickstart" "gdp1" "1")
set_tests_properties(example_quickstart PROPERTIES  LABELS "example" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_model_check "/root/repo/build2/examples/model_check" "lr1" "parallel3" "200000")
set_tests_properties(example_model_check PROPERTIES  LABELS "example" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_guarded_choice "/root/repo/build2/examples/guarded_choice" "fig1a" "2000")
set_tests_properties(example_guarded_choice PROPERTIES  LABELS "example" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_topology "/root/repo/build2/examples/custom_topology" "3" "0-1,1-2,2-0" "20000")
set_tests_properties(example_custom_topology PROPERTIES  LABELS "example" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adversary_replay "/root/repo/build2/examples/adversary_replay")
set_tests_properties(example_adversary_replay PROPERTIES  LABELS "example" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_campaign "/root/repo/build2/examples/campaign" "2" "4" "--json")
set_tests_properties(example_campaign PROPERTIES  LABELS "example" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_campaign_golden_t1 "/usr/bin/cmake" "-D" "EXE=/root/repo/build2/examples/campaign" "-D" "ARGS=4 1" "-D" "OUTPUT=/root/repo/build2/examples/campaign_tiny.t1.csv" "-D" "GOLDEN=/root/repo/examples/campaign_tiny.golden" "-P" "/root/repo/examples/check_golden.cmake")
set_tests_properties(example_campaign_golden_t1 PROPERTIES  LABELS "example" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_campaign_golden_t8 "/usr/bin/cmake" "-D" "EXE=/root/repo/build2/examples/campaign" "-D" "ARGS=4 8" "-D" "OUTPUT=/root/repo/build2/examples/campaign_tiny.t8.csv" "-D" "GOLDEN=/root/repo/examples/campaign_tiny.golden" "-P" "/root/repo/examples/check_golden.cmake")
set_tests_properties(example_campaign_golden_t8 PROPERTIES  LABELS "example" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
