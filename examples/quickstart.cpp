// Quickstart: build a generalized dining-philosophers system, run GDP1 in
// the simulator and with real threads, and print what happened.
//
//   $ ./quickstart [algorithm] [seed]
//
// Algorithms: lr1 lr2 gdp1 gdp2 gdp2c ordered colored arbiter ticket.
#include <cstdio>
#include <string>

#include "gdp/algos/algorithm.hpp"
#include "gdp/common/version.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/runtime/runtime.hpp"
#include "gdp/sim/engine.hpp"
#include "gdp/sim/schedulers/basic.hpp"
#include "gdp/trace/ascii.hpp"

using namespace gdp;

int main(int argc, char** argv) {
  const std::string algo_name = argc > 1 ? argv[1] : "gdp1";
  const std::uint64_t seed = argc > 2 ? std::stoull(argv[2]) : 1;

  std::printf("libgdp %s — %s\n\n", kVersionString, kPaperCitation);

  // The paper's leftmost Figure-1 system: 6 philosophers, 3 forks (every
  // fork shared by four philosophers — the generalized setting).
  const graph::Topology table = graph::fig1a();
  std::printf("System: %s (%d philosophers, %d forks)\n\n", table.name().c_str(),
              table.num_phils(), table.num_forks());

  // --- 1. Simulate under a maximally fair scheduler.
  const auto algo = algos::make_algorithm(algo_name);
  sim::LongestWaiting scheduler;
  rng::Rng rng(seed);
  sim::EngineConfig config;
  config.max_steps = 50'000;
  const sim::RunResult result = sim::run(*algo, table, scheduler, rng, config);

  std::printf("Simulation (%llu atomic steps, %s scheduler):\n",
              static_cast<unsigned long long>(result.steps), scheduler.name().c_str());
  std::printf("  total meals : %llu\n", static_cast<unsigned long long>(result.total_meals));
  std::printf("  first meal  : step %llu\n",
              static_cast<unsigned long long>(result.first_meal_step));
  for (PhilId p = 0; p < table.num_phils(); ++p) {
    std::printf("  P%d ate %llu times (max hunger %llu steps)\n", p,
                static_cast<unsigned long long>(result.meals_of[static_cast<std::size_t>(p)]),
                static_cast<unsigned long long>(result.max_hunger_of[static_cast<std::size_t>(p)]));
  }
  std::printf("\nFinal configuration:\n%s\n",
              trace::render_state(table, result.final_state).c_str());

  // --- 2. The same algorithm with real threads and atomic test-and-set forks.
  if (algo_name != "colored" && algo_name != "arbiter") {
    runtime::RuntimeConfig rt;
    rt.algorithm = algo_name;
    rt.seed = seed;
    rt.duration = std::chrono::milliseconds(200);
    const auto threads = runtime::run_threads(table, rt);
    std::printf("Thread runtime (200 ms wall clock):\n");
    std::printf("  throughput  : %.0f meals/s\n", threads.meals_per_second);
    std::printf("  p50 hunger  : %.1f us\n", threads.hunger_p50_ns / 1000.0);
    std::printf("  exclusion violations: %llu (must be 0)\n",
                static_cast<unsigned long long>(threads.exclusion_violations));
  }
  return 0;
}
