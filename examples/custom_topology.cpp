// Build your own generalized system from the command line and compare
// algorithms on it.
//
//   $ ./custom_topology k "l0-r0,l1-r1,..." [steps]
//
// Forks are 0..k-1; each "a-b" pair adds a philosopher between forks a and
// b (repeat pairs for parallel arcs). Example — the minimal Theorem 2
// system (three philosophers sharing the same two forks):
//
//   $ ./custom_topology 2 "0-1,0-1,0-1"
#include <cstdio>
#include <string>

#include "gdp/algos/algorithm.hpp"
#include "gdp/graph/algorithms.hpp"
#include "gdp/graph/dot.hpp"
#include "gdp/graph/topology.hpp"
#include "gdp/sim/engine.hpp"
#include "gdp/sim/schedulers/basic.hpp"

using namespace gdp;

namespace {

graph::Topology parse(int k, const std::string& arcs) {
  graph::Topology::Builder b("cli");
  b.add_forks(k);
  std::size_t at = 0;
  while (at < arcs.size()) {
    const std::size_t dash = arcs.find('-', at);
    std::size_t comma = arcs.find(',', at);
    if (comma == std::string::npos) comma = arcs.size();
    const int left = std::stoi(arcs.substr(at, dash - at));
    const int right = std::stoi(arcs.substr(dash + 1, comma - dash - 1));
    b.add_phil(left, right);
    at = comma + 1;
  }
  return std::move(b).build();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::printf("usage: %s <num_forks> <arcs like \"0-1,1-2,2-0\"> [steps]\n", argv[0]);
    return 1;
  }
  const graph::Topology t = parse(std::stoi(argv[1]), argv[2]);
  const std::uint64_t steps = argc > 3 ? std::stoull(argv[3]) : 100'000;

  std::printf("Your system: %d philosophers over %d forks\n", t.num_phils(), t.num_forks());
  std::printf("  connected: %s, cycles: %d, max fork degree: %d\n",
              graph::is_connected(t) ? "yes" : "no", graph::cyclomatic_number(t),
              t.max_degree());
  std::printf("  Theorem 1 premise (defeats LR1): %s\n",
              graph::thm1_premise(t) ? "yes" : "no");
  std::printf("  Theorem 2 premise (defeats LR2): %s\n",
              graph::thm2_premise(t) ? "yes" : "no");
  std::printf("\nGraphviz:\n%s\n", graph::to_dot(t).c_str());

  std::printf("Fair runs (%llu steps each):\n", static_cast<unsigned long long>(steps));
  std::printf("  %-8s %10s %14s %12s\n", "algo", "meals", "everyone ate", "deadlock");
  for (const std::string name : {"lr1", "lr2", "gdp1", "gdp2", "gdp2c", "ordered", "ticket"}) {
    const auto algo = algos::make_algorithm(name);
    sim::LongestWaiting sched;
    rng::Rng rng(1);
    sim::EngineConfig cfg;
    cfg.max_steps = steps;
    const auto r = sim::run(*algo, t, sched, rng, cfg);
    std::printf("  %-8s %10llu %14s %12s\n", name.c_str(),
                static_cast<unsigned long long>(r.total_meals),
                r.everyone_ate() ? "yes" : "no", r.deadlocked ? "DEADLOCK" : "-");
  }
  return 0;
}
