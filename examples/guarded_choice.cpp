// The paper's motivation: distributed guarded choice for the pi-calculus.
//
// Agents share channels (channels = forks, agents = philosophers); each
// repeatedly commits a mixed guarded choice between its two channels using
// GDP-style two-channel acquisition. A channel shared by many agents is
// exactly the generalized dining-philosophers setting.
//
//   $ ./guarded_choice [ring|fig1a|star|parallel] [syncs]
#include <cstdio>
#include <string>

#include "gdp/graph/builders.hpp"
#include "gdp/pi/guarded_choice.hpp"

using namespace gdp;

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "fig1a";
  const std::uint64_t syncs = argc > 2 ? std::stoull(argv[2]) : 5'000;

  graph::Topology t = which == "ring"       ? graph::classic_ring(6)
                      : which == "star"     ? graph::star(8)
                      : which == "parallel" ? graph::parallel_arcs(5)
                                            : graph::fig1a();

  std::printf("Guarded choice over channels: %s (%d agents, %d channels)\n", t.name().c_str(),
              t.num_phils(), t.num_forks());

  pi::ChoiceConfig cfg;
  cfg.target_syncs = syncs;
  const auto r = pi::run_guarded_choice(t, cfg);

  std::printf("\n%llu rendezvous in %.3f s (%.0f/s), %llu pairing violations\n",
              static_cast<unsigned long long>(r.total_syncs), r.elapsed_seconds,
              r.syncs_per_second, static_cast<unsigned long long>(r.violations));
  std::printf("\nPer agent participations:\n");
  for (PhilId a = 0; a < t.num_phils(); ++a) {
    std::printf("  agent %d (%s guards ch%d | ch%d): %llu\n", a, a % 2 == 0 ? "send" : "recv",
                t.left_of(a), t.right_of(a),
                static_cast<unsigned long long>(r.syncs_of[static_cast<std::size_t>(a)]));
  }
  std::printf("\nPer channel rendezvous:\n");
  for (ForkId c = 0; c < t.num_forks(); ++c) {
    std::printf("  ch%d: %llu\n", c,
                static_cast<unsigned long long>(r.syncs_on[static_cast<std::size_t>(c)]));
  }
  std::printf("\nEvery agent synchronized: %s\n", r.everyone_synced() ? "yes" : "no");
  return 0;
}
