# ctest helper: run EXE with ARGS, capture stdout, diff against GOLDEN.
# The campaign example's aggregate output must be a pure function of the
# spec — any drift (thread-count dependence, wall-clock leakage, format
# change) fails this test. Regenerate with:
#   ./build/examples/campaign 4 1 > examples/campaign_tiny.golden
separate_arguments(ARGS)
execute_process(
  COMMAND ${EXE} ${ARGS}
  OUTPUT_FILE ${OUTPUT}
  RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "${EXE} ${ARGS} exited with ${status}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUTPUT} ${GOLDEN}
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
    "campaign output ${OUTPUT} differs from golden ${GOLDEN} — the "
    "gdp::exp determinism contract broke (or the format changed; regenerate "
    "the golden with: campaign 4 1 > examples/campaign_tiny.golden)")
endif()
