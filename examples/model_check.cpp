// Model-check an algorithm on a small topology: decides the paper's
// progress and lockout-freedom properties under every fair adversary.
// Runs on the parallel engine (gdp::mdp::par) — results are bit-identical
// to the sequential checker at every thread count.
//
//   $ ./model_check [algorithm] [topology] [max_states] [threads]
//
// Topologies: ring3 ring4 parallel3 parallel4 fig1a pendant3 chord4 theta112
#include <cstdio>
#include <string>

#include "gdp/algos/algorithm.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/mdp/chain_analysis.hpp"
#include "gdp/mdp/par/par.hpp"
#include "gdp/mdp/quant/quant.hpp"
#include "gdp/obs/obs.hpp"
#include "gdp/obs/timeline.hpp"
#include "gdp/sim/engine.hpp"

using namespace gdp;

namespace {

graph::Topology by_name(const std::string& name) {
  if (name == "ring3") return graph::classic_ring(3);
  if (name == "ring4") return graph::classic_ring(4);
  if (name == "parallel3") return graph::parallel_arcs(3);
  if (name == "parallel4") return graph::parallel_arcs(4);
  if (name == "pendant3") return graph::ring_with_pendant(3);
  if (name == "chord4") return graph::ring_with_chord(4);
  if (name == "theta112") return graph::theta(1, 1, 2);
  return graph::fig1a();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string algo_name = argc > 1 ? argv[1] : "lr1";
  const std::string topo_name = argc > 2 ? argv[2] : "parallel3";

  mdp::par::CheckOptions opts;
  std::size_t max_states = 2'000'000;
  try {
    if (argc > 3) max_states = std::stoull(argv[3]);
    if (argc > 4) opts.threads = std::stoi(argv[4]);
  } catch (const std::exception&) {
    opts.threads = -1;  // fall through to the usage check
  }
  if (opts.threads < 0) {
    std::fprintf(stderr, "usage: %s [algo] [topo] [max_states] [threads >= 0, 0 = hardware]\n",
                 argv[0]);
    return 1;
  }
  opts.max_states = max_states;

  const auto t = by_name(topo_name);
  const auto algo = algos::make_algorithm(algo_name);

  std::printf("Model checking %s on %s (state cap %zu, threads %d [0=hw])...\n\n",
              algo_name.c_str(), t.name().c_str(), max_states, opts.threads);
  mdp::StateIndex index;
  const auto model = mdp::par::explore_indexed(*algo, t, index, opts);
  std::printf("explored %zu states (%zu state-action rows)%s\n", model.num_states(),
              model.num_rows(), model.truncated() ? " [TRUNCATED]" : "");

  const auto progress = mdp::par::check_fair_progress(model, ~std::uint64_t{0}, opts);
  std::printf("\nProgress (T --fair-->_1 E):\n  %s\n", progress.summary().c_str());

  std::printf("\nLockout-freedom (T_i --fair-->_1 E_i):\n");
  for (PhilId v = 0; v < t.num_phils(); ++v) {
    const auto lf = mdp::par::check_lockout_freedom(model, v, opts);
    std::printf("  P%d: %s\n", v, lf.summary().c_str());
  }

  // Certified two-sided bounds over every fair adversary (interval
  // iteration on the MEC quotient; see gdp/mdp/quant/quant.hpp).
  mdp::quant::QuantOptions qopts;
  qopts.threads = opts.threads;
  qopts.max_states = max_states;
  const auto quant = mdp::quant::analyze(model, ~std::uint64_t{0}, qopts);
  auto interval = [](const mdp::quant::Interval& iv) -> std::string {
    char buf[64];
    if (iv.lower == iv.upper && !iv.finite()) return "inf (certified)";
    if (!iv.finite()) {
      std::snprintf(buf, sizeof buf, "[%.6f, inf)", iv.lower);
      return buf;
    }
    std::snprintf(buf, sizeof buf, "[%.6f, %.6f]", iv.lower, iv.upper);
    return buf;
  };
  std::printf("\nQuantitative bounds (all fair adversaries, gdp::mdp::quant):\n");
  std::printf("  certainty                   = %s\n", mdp::quant::to_string(quant.certainty));
  std::printf("  Pmin(reach eating)          = %s\n", interval(quant.p_min).c_str());
  std::printf("  Pmax(reach eating)          = %s\n", interval(quant.p_max).c_str());
  std::printf("  Pmax(reach fair trap)       = %s\n", interval(quant.p_trap).c_str());
  std::printf("  E[steps to meal, best]      = %s\n", interval(quant.e_min).c_str());
  std::printf("  E[productive steps, worst]  = %s\n", interval(quant.e_max).c_str());

  const auto chain = mdp::analyze_uniform_chain(model);
  std::printf("\nUniform fair scheduler (quantitative):\n");
  std::printf("  P(reach eating)        = %.6f\n", chain.p_reach);
  std::printf("  E[steps to first meal] = %s\n",
              chain.expected_converged ? std::to_string(chain.expected_steps).c_str() : "n/a");

  const auto curve = mdp::reach_curve(model, 60);
  std::printf("  P(meal within N):");
  for (std::size_t i = 10; i < curve.size(); i += 10) {
    std::printf("  N=%zu: %.3f", i, curve[i]);
  }
  std::printf("\n");

  // If the checker found a fair no-progress trap, execute it.
  if (progress.verdict == mdp::Verdict::kProgressFails) {
    std::printf("\nSynthesizing the witness adversary and running it live...\n");
    const auto mecs = mdp::par::maximal_end_components(model, ~std::uint64_t{0}, opts);
    const auto reached = mdp::reachable_states(model);
    for (const auto& mec : mecs) {
      if (!mec.fair(model.num_phils())) continue;
      bool reachable = false;
      for (mdp::StateId s : mec.states) reachable = reachable || reached[s];
      if (!reachable) continue;
      mdp::WitnessScheduler sched(model, index, mec);
      rng::Rng rng(7);
      sim::EngineConfig cfg;
      cfg.max_steps = 30'000;
      const auto r = sim::run(*algo, t, sched, rng, cfg);
      std::printf("  entered the trap: %s; steps inside: %llu; meals before/inside: %llu\n",
                  sched.entered_component() ? "yes" : "no (unlucky draws — rerun)",
                  static_cast<unsigned long long>(sched.steps_inside()),
                  static_cast<unsigned long long>(r.total_meals));
      break;
    }
  }

  // GDP_OBS=1 in the environment adds a run report and GDP_OBS_TIMELINE=1 a
  // Chrome trace-event timeline; with both off (the default, and what the
  // golden-output CI diff runs) stdout is unchanged.
  if (obs::enabled()) {
    const std::string path = "BENCH_model_check.json";
    if (obs::write_report(path, "model_check",
                          {{"algorithm", algo_name}, {"topology", topo_name}})) {
      std::printf("\nreport: %s (gdp_obs_schema %d)\n", path.c_str(), obs::kReportSchema);
    } else {
      std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
    }
  }
  if (obs::timeline::enabled()) {
    const std::string trace_path = "TRACE_model_check.json";
    if (obs::timeline::write_trace(trace_path, "model_check")) {
      std::printf("\ntrace: %s (chrome trace-event json)\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "warning: could not write %s\n", trace_path.c_str());
    }
  }
  return 0;
}
