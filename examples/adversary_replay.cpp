// Replays the paper's §3 counterexample against LR1 exactly — the six
// states of the inline example — rendering each configuration like the
// paper's diagrams (filled arrow = held fork, "committed" = empty arrow),
// then lets the TrapFig1a adversary run the cycle thousands of rounds to
// show nobody ever eats.
#include <cstdio>

#include "gdp/algos/algorithm.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/rng/scripted.hpp"
#include "gdp/sim/engine.hpp"
#include "gdp/sim/schedulers/trap_fig1a.hpp"
#include "gdp/trace/ascii.hpp"
#include "gdp/trace/replay.hpp"

using namespace gdp;

int main() {
  const auto t = graph::fig1a();
  const auto lr1 = algos::make_algorithm("lr1");

  std::printf("The paper's Section 3 example: a fair adversary defeats LR1 on the\n"
              "6-philosopher / 3-fork system (Figure 1, leftmost).\n\n");

  // Scripted schedule + scripted draws reproduce States 1-6 exactly.
  const std::vector<PhilId> order{0, 1, 2, 3, 4, 5, 2, 2, 0, 1, 3, 0, 4, 1, 2, 5, 1, 3, 0};
  rng::ScriptedRng rng(1);
  for (Side side : {Side::kRight, Side::kRight, Side::kRight, Side::kLeft, Side::kLeft,
                    Side::kLeft}) {
    rng.force_side(side);
  }

  struct Checkpoint {
    std::size_t after_step;
    const char* label;
  };
  const Checkpoint checkpoints[] = {
      {10, "State 1: P2 holds f0; P0 -> f1, P1 -> f2 committed"},
      {11, "State 2: P3 committed to the fork taken by P2"},
      {13, "State 3: P0 took f1; P4 committed to it"},
      {14, "State 4: P1 took f2"},
      {16, "State 5: P2 released f0; P5 committed to f2"},
      {19, "State 6: isomorphic to State 1 (roles on P3, P4, P5)"},
  };

  auto s = lr1->initial_state(t);
  std::size_t at = 0;
  for (const auto& cp : checkpoints) {
    for (; at < cp.after_step; ++at) {
      s = sim::sample_branch(lr1->step(t, s, order[at]), rng).next;
    }
    std::printf("--- %s\n%s\n", cp.label, trace::render_state(t, s).c_str());
  }

  std::printf("State 6 differs from State 1 only by philosopher names: the adversary\n"
              "repeats the cycle forever and no philosopher in the system ever eats.\n\n");

  // Now the full adversary with growing stubbornness budgets (fair).
  std::printf("Running the TrapFig1a adversary for 100k steps...\n");
  const auto fresh = algos::make_algorithm("lr1");
  sim::TrapFig1a trap;
  rng::Rng free_rng(2026);
  sim::EngineConfig cfg;
  cfg.max_steps = 100'000;
  const auto r = sim::run(*fresh, t, trap, free_rng, cfg);
  if (trap.trapped()) {
    std::printf("  trapped: %llu rotation rounds, %llu meals (scheduling gap <= %llu => fair)\n",
                static_cast<unsigned long long>(trap.rounds()),
                static_cast<unsigned long long>(r.total_meals),
                static_cast<unsigned long long>(r.max_sched_gap));
  } else {
    std::printf("  this seed's random draws escaped the setup (prob ~1/2); meals: %llu.\n"
                "  The paper's bound only claims positive probability (>= 1/4) — rerun!\n",
                static_cast<unsigned long long>(r.total_meals));
  }
  return 0;
}
