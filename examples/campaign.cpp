// campaign — declare a grid of experiments, run it on the parallel Runner,
// print the deterministic aggregate.
//
//   campaign [trials] [threads] [--json]
//
// The output is a pure function of the spec and the campaign seed — never of
// the thread count or the host — so CI diffs it against a checked-in golden
// file (examples/campaign_tiny.golden) to pin the gdp::exp contract.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "gdp/exp/runner.hpp"
#include "gdp/graph/builders.hpp"

using namespace gdp;

int main(int argc, char** argv) {
  bool json = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else {
      positional.push_back(arg);
    }
  }
  const int trials = positional.empty() ? 4 : std::atoi(positional[0].c_str());
  const int threads = positional.size() < 2 ? 0 : std::atoi(positional[1].c_str());
  if (trials < 1 || threads < 0 || positional.size() > 2) {
    std::fprintf(stderr, "usage: campaign [trials >= 1] [threads >= 0] [--json]\n");
    return 2;
  }

  exp::CampaignSpec spec;
  spec.name = "tiny";
  spec.seed = 42;
  spec.trials = trials;
  spec.topologies = {graph::classic_ring(3), graph::parallel_arcs(3)};
  spec.algorithms = {"lr1", "gdp1", "gdp2c"};
  spec.schedulers = {exp::longest_waiting(), exp::uniform()};
  spec.engine.max_steps = 20'000;

  const auto result = exp::run_campaign(spec, threads);
  std::fputs((json ? result.json() : result.csv()).c_str(), stdout);
  return 0;
}
