// E2 — the §3 counterexample: a fair adversary defeats LR1 (and LR2) on the
// leftmost Figure-1 system, with probability >= 1/4.
//
// Paper: "the probability of a computation of this kind is 1/4 ... the
// scheduler can eventually induce a cycle like the above one with
// probability 1" and the fairness repair with budgets n_k and success
// probability (1/4)·prod(1 - p^k) >= 1/16.
//
// We run the scripted TrapFig1a adversary many times and report the
// no-progress frequency with a Wilson 95% interval, sweeping the
// stubbornness budget. Expected shape: the trapped fraction clears 1/4 for
// reasonable budgets (our setup is adaptive: first draw free by symmetry),
// degrades as budgets shrink, and the same adversary defeats LR2.
#include "bench_util.hpp"

#include "gdp/common/strings.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/sim/schedulers/trap_fig1a.hpp"
#include "gdp/stats/ci.hpp"

using namespace gdp;

namespace {

struct TrapStats {
  int trials = 0;
  int trapped = 0;
  std::uint64_t total_rounds = 0;
};

TrapStats measure(const std::string& algo_name, int trials, int stubborn_base,
                  std::uint64_t steps) {
  TrapStats out;
  out.trials = trials;
  const auto t = graph::fig1a();
  for (int i = 0; i < trials; ++i) {
    const auto algo = algos::make_algorithm(algo_name);
    sim::TrapFig1a trap(sim::TrapFig1a::Config{.stubborn_base = stubborn_base, .stubborn_inc = 1});
    rng::Rng rng(static_cast<std::uint64_t>(40'000 + 977 * i));
    sim::EngineConfig cfg;
    cfg.max_steps = steps;
    const auto r = sim::run(*algo, t, trap, rng, cfg);
    if (trap.trapped() && r.total_meals == 0) {
      ++out.trapped;
      out.total_rounds += trap.rounds();
    }
  }
  return out;
}

}  // namespace

int main() {
  bench::banner("E2: the LR1 trap on fig1a (States 1-6)",
                "section 3 inline example + the 1/4 probability bound",
                "P(no-progress) >= 1/4; trapped runs rotate forever; LR2 equally trapped");

  constexpr int kTrials = 400;
  constexpr std::uint64_t kSteps = 25'000;

  stats::Table table({"algorithm", "stubborn n_0", "trapped", "fraction", "wilson 95%",
                      "mean rounds", "beats 1/4?"});
  for (const std::string algo : {"lr1", "lr2"}) {
    for (int base : {4, 8, 16, 32}) {
      const auto s = measure(algo, kTrials, base, kSteps);
      const auto ci = stats::wilson(static_cast<std::uint64_t>(s.trapped),
                                    static_cast<std::uint64_t>(s.trials));
      const double fraction = static_cast<double>(s.trapped) / s.trials;
      const double mean_rounds =
          s.trapped == 0 ? 0.0 : static_cast<double>(s.total_rounds) / s.trapped;
      table.add_row({algo, std::to_string(base),
                     std::to_string(s.trapped) + "/" + std::to_string(s.trials),
                     format_double(fraction, 3),
                     "[" + format_double(ci.low, 3) + ", " + format_double(ci.high, 3) + "]",
                     format_double(mean_rounds, 0), ci.low > 0.25 ? "yes" : "no"});
    }
    table.add_rule();
  }
  table.print();

  std::printf("\nControl: GDP1 under the same adversary object (falls back fair):\n");
  {
    const auto t = graph::fig1a();
    const auto gdp1 = algos::make_algorithm("gdp1");
    sim::TrapFig1a trap;
    rng::Rng rng(7);
    sim::EngineConfig cfg;
    cfg.max_steps = 50'000;
    const auto r = sim::run(*gdp1, t, trap, rng, cfg);
    std::printf("  gdp1 meals in 50k steps: %llu (Theorem 3: progress cannot be stopped)\n",
                static_cast<unsigned long long>(r.total_meals));
  }
  return 0;
}
