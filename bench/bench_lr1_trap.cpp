// E2 — the §3 counterexample: a fair adversary defeats LR1 (and LR2) on the
// leftmost Figure-1 system, with probability >= 1/4.
//
// Paper: "the probability of a computation of this kind is 1/4 ... the
// scheduler can eventually induce a cycle like the above one with
// probability 1" and the fairness repair with budgets n_k and success
// probability (1/4)·prod(1 - p^k) >= 1/16.
//
// The whole algorithm x stubbornness-budget grid runs as one gdp::exp
// campaign: each budget is a scheduler variant whose probe counts the runs
// that ended trapped with zero meals, reported with a Wilson 95% interval.
// Expected shape: the trapped fraction clears 1/4 for reasonable budgets
// (our setup is adaptive: first draw free by symmetry), degrades as budgets
// shrink, and the same adversary defeats LR2.
#include "bench_util.hpp"

#include "gdp/common/strings.hpp"
#include "gdp/exp/runner.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/sim/schedulers/trap_fig1a.hpp"
#include "gdp/stats/ci.hpp"

using namespace gdp;

namespace {

/// The fig1a trap with an explicit stubbornness budget; the probe counts
/// "trapped and nobody ever ate".
exp::SchedulerSpec trap_with_budget(int stubborn_base) {
  exp::SchedulerSpec spec;
  spec.name = "trap-fig1a[n0=" + std::to_string(stubborn_base) + "]";
  spec.make = [stubborn_base](const algos::Algorithm&) {
    return std::make_unique<sim::TrapFig1a>(
        sim::TrapFig1a::Config{.stubborn_base = stubborn_base, .stubborn_inc = 1});
  };
  spec.probe = [](const sim::Scheduler& sched, const sim::RunResult& r) {
    return static_cast<const sim::TrapFig1a&>(sched).trapped() && r.total_meals == 0;
  };
  return spec;
}

}  // namespace

int main() {
  bench::enable_obs();
  bench::banner("E2: the LR1 trap on fig1a (States 1-6)",
                "section 3 inline example + the 1/4 probability bound",
                "P(no-progress) >= 1/4; trapped runs rotate forever; LR2 equally trapped");

  constexpr int kTrials = 400;
  const std::vector<int> budgets = {4, 8, 16, 32};

  exp::CampaignSpec spec;
  spec.name = "lr1-trap";
  spec.seed = 40'000;
  spec.trials = kTrials;
  spec.topologies = {graph::fig1a()};
  spec.algorithms = {"lr1", "lr2"};
  for (const int base : budgets) spec.schedulers.push_back(trap_with_budget(base));
  spec.engine.max_steps = 25'000;
  const auto result = exp::run_campaign(spec);

  stats::Table table({"algorithm", "stubborn n_0", "trapped", "fraction", "wilson 95%",
                      "beats 1/4?"});
  for (std::size_t a = 0; a < spec.algorithms.size(); ++a) {
    for (std::size_t b = 0; b < budgets.size(); ++b) {
      const auto& cell = result.at(a * budgets.size() + b);
      const auto trapped = cell.probe_hits();
      const auto ci = cell.probe_ci();
      const double fraction = static_cast<double>(trapped) / kTrials;
      table.add_row({spec.algorithms[a], std::to_string(budgets[b]),
                     std::to_string(trapped) + "/" + std::to_string(kTrials),
                     format_double(fraction, 3),
                     "[" + format_double(ci.low, 3) + ", " + format_double(ci.high, 3) + "]",
                     ci.low > 0.25 ? "yes" : "no"});
    }
    table.add_rule();
  }
  table.print();

  std::printf("\nControl: GDP1 under the same adversary object (falls back fair):\n");
  {
    const auto t = graph::fig1a();
    const auto gdp1 = algos::make_algorithm("gdp1");
    sim::TrapFig1a trap;
    rng::Rng rng(7);
    sim::EngineConfig cfg;
    cfg.max_steps = 50'000;
    const auto r = sim::run(*gdp1, t, trap, rng, cfg);
    std::printf("  gdp1 meals in 50k steps: %llu (Theorem 3: progress cannot be stopped)\n",
                static_cast<unsigned long long>(r.total_meals));
  }
  bench::write_bench_report("lr1_trap");
  return 0;
}
