// E1 — Figure 1: the four example generalized systems.
//
// Paper: "From left to right: 6 philosophers, 3 forks. 12 philosophers,
// 6 forks. 16 philosophers, 12 forks. 10 philosophers, 9 forks."
//
// We run every algorithm on every Figure-1 system under a maximally fair
// scheduler and report meals, time-to-first-meal, whether everyone ate, and
// deadlocks. Expected shape: GDP1/GDP2 serve all four systems; the ticket
// baseline deadlocks off the ring; LR1/LR2 also progress under *benign*
// scheduling (their failure needs a malicious adversary — see E2-E5).
#include "bench_util.hpp"

#include "gdp/common/strings.hpp"
#include "gdp/graph/algorithms.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/stats/jain.hpp"

using namespace gdp;

int main() {
  bench::banner("E1: Figure 1 topologies",
                "Figure 1 (four example generalized dining-philosopher systems)",
                "GDP1/GDP2 make progress and feed everyone on all four systems");

  const graph::Topology systems[] = {graph::fig1a(), graph::fig1b(), graph::fig1c(),
                                     graph::fig1d()};

  stats::Table shape({"system", "phils", "forks", "max fork degree", "cyclomatic", "thm1 premise"});
  for (const auto& t : systems) {
    shape.add_row({t.name(), std::to_string(t.num_phils()), std::to_string(t.num_forks()),
                   std::to_string(t.max_degree()), std::to_string(graph::cyclomatic_number(t)),
                   graph::thm1_premise(t) ? "yes" : "no"});
  }
  shape.print();
  std::printf("\n");

  constexpr std::uint64_t kSteps = 150'000;
  stats::Table table(
      {"system", "algorithm", "meals", "first meal @", "everyone ate", "jain", "deadlock"});
  for (const auto& t : systems) {
    for (const std::string name : {"lr1", "lr2", "gdp1", "gdp2", "gdp2c", "ordered", "ticket"}) {
      const auto r = bench::fair_run(name, t, /*seed=*/1, kSteps);
      table.add_row({t.name(), name, bench::fmt_u64(r.total_meals),
                     r.first_meal_step == sim::kNever ? "never"
                                                      : bench::fmt_u64(r.first_meal_step),
                     r.everyone_ate() ? "yes" : "NO", format_double(stats::jain_index(r.meals_of), 3),
                     r.deadlocked ? "DEADLOCK" : "-"});
    }
    table.add_rule();
  }
  table.print();
  std::printf("\nNote: LR1/LR2 progress here because the scheduler is benign; their\n"
              "generalized-topology failures require the adversaries of E2-E5.\n");
  return 0;
}
