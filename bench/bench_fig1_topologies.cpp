// E1 — Figure 1: the four example generalized systems.
//
// Paper: "From left to right: 6 philosophers, 3 forks. 12 philosophers,
// 6 forks. 16 philosophers, 12 forks. 10 philosophers, 9 forks."
//
// We run every algorithm on every Figure-1 system under a maximally fair
// scheduler (one gdp::exp campaign over the 4 x 7 grid) and report meals,
// time-to-first-meal, whether everyone ate, and deadlocks. Expected shape:
// GDP1/GDP2 serve all four systems; the ticket baseline deadlocks off the
// ring; LR1/LR2 also progress under *benign* scheduling (their failure
// needs a malicious adversary — see E2-E5).
#include "bench_util.hpp"

#include "gdp/common/strings.hpp"
#include "gdp/exp/runner.hpp"
#include "gdp/graph/algorithms.hpp"
#include "gdp/graph/builders.hpp"

using namespace gdp;

int main() {
  bench::enable_obs();
  bench::banner("E1: Figure 1 topologies",
                "Figure 1 (four example generalized dining-philosopher systems)",
                "GDP1/GDP2 make progress and feed everyone on all four systems");

  exp::CampaignSpec spec;
  spec.name = "fig1";
  spec.seed = 1;
  spec.trials = 1;
  spec.topologies = {graph::fig1a(), graph::fig1b(), graph::fig1c(), graph::fig1d()};
  spec.algorithms = {"lr1", "lr2", "gdp1", "gdp2", "gdp2c", "ordered", "ticket"};
  spec.schedulers = {exp::longest_waiting()};
  spec.engine.max_steps = 150'000;

  stats::Table shape({"system", "phils", "forks", "max fork degree", "cyclomatic", "thm1 premise"});
  for (const auto& t : spec.topologies) {
    shape.add_row({t.name(), std::to_string(t.num_phils()), std::to_string(t.num_forks()),
                   std::to_string(t.max_degree()), std::to_string(graph::cyclomatic_number(t)),
                   graph::thm1_premise(t) ? "yes" : "no"});
  }
  shape.print();
  std::printf("\n");

  const auto result = exp::run_campaign(spec);

  stats::Table table(
      {"system", "algorithm", "meals", "first meal @", "everyone ate", "jain", "deadlock"});
  for (const auto& c : result.cells) {
    table.add_row({spec.topologies[c.cell().topology].name(),
                   spec.algorithms[c.cell().algorithm],
                   format_double(c.meals().mean(), 0),
                   c.first_meal().count() == 0 ? "never" : format_double(c.first_meal().mean(), 0),
                   c.everyone_ate() == c.trials() ? "yes" : "NO",
                   format_double(c.jain().mean(), 3),
                   c.deadlocks() > 0 ? "DEADLOCK" : "-"});
    if (c.cell().algorithm + 1 == spec.algorithms.size()) table.add_rule();
  }
  table.print();
  std::printf("\nNote: LR1/LR2 progress here because the scheduler is benign; their\n"
              "generalized-topology failures require the adversaries of E2-E5.\n");
  bench::write_bench_report("fig1_topologies");
  return 0;
}
