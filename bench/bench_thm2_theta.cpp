// E4 — Theorem 2: two nodes joined by three paths defeat LR2 as well.
//
// Paper (Theorem 2 + Figure 3): with a ring H plus a third path P between
// two of its nodes, a fair scheduler keeps the philosophers of H and P from
// progressing with positive probability; the guest books stay empty so
// Cond never fires ("fork.g remains forever empty").
//
// Instruments: the model checker on theta instances (the minimal one is
// three parallel arcs) and the TrapFig1a adversary on fig1a (which
// satisfies the Theorem 2 premise) run against LR2. Expected shape: LR2
// fails exactly on the premise graphs, survives the Theorem-1-only graph
// (ring+pendant), and GDP2 is certified everywhere small.
#include "bench_util.hpp"

#include <cstdlib>

#include "gdp/common/pool.hpp"
#include "gdp/common/strings.hpp"
#include "gdp/exp/runner.hpp"
#include "gdp/graph/algorithms.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/mdp/par/par.hpp"

using namespace gdp;

int main(int argc, char** argv) {
  // Model-checker worker threads (0 = hardware concurrency); lets the
  // speedup of the parallel engine be measured: ./bench_thm2_theta 1 vs N.
  const int threads = argc > 1 ? std::atoi(argv[1]) : 0;
  if (threads < 0) {
    std::fprintf(stderr, "usage: %s [threads >= 0, 0 = hardware]\n", argv[0]);
    return 1;
  }

  bench::banner("E4: Theorem 2 (theta graphs vs LR2)",
                "Theorem 2 and Figure 3",
                "LR2 fails on (and only on) graphs with two nodes joined by >= 3 paths");
  mdp::par::CheckOptions opts;
  opts.threads = threads;
  opts.max_states = 3'000'000;

  std::printf("(a) model-checked verdicts (gdp::mdp::par, threads=%d [0=hw]):\n", threads);
  stats::Table verdicts({"topology", "thm2 premise", "lr2 verdict", "gdp2 verdict"});
  const graph::Topology cases[] = {graph::classic_ring(3), graph::ring_with_pendant(3),
                                   graph::parallel_arcs(3), graph::parallel_arcs(4),
                                   graph::theta(1, 1, 2)};
  const bench::Stopwatch model_check_clock;
  for (const auto& t : cases) {
    const bool premise = graph::thm2_premise(t).has_value();
    const auto lr2 = mdp::par::check_fair_progress(*algos::make_algorithm("lr2"), t, opts);
    const auto gdp2 = mdp::par::check_fair_progress(*algos::make_algorithm("gdp2"), t, opts);
    auto verdict_str = [](const mdp::FairProgressResult& r) {
      if (r.verdict == mdp::Verdict::kUnknownTruncated) return std::string("unknown");
      return std::string(r.holds() ? "progress" : "FAILS");
    };
    verdicts.add_row({t.name(), premise ? "yes" : "no", verdict_str(lr2), verdict_str(gdp2)});
  }
  verdicts.print();
  std::printf("  model-check phase wall time: %.2fs\n", model_check_clock.seconds());

  std::printf("\n(b) packed state keys (gdp::mdp::KeyCodec): intern-table memory:\n");
  stats::Table keys({"model", "states", "B/state packed", "B/state legacy", "ratio",
                     "peak intern key bytes"});
  struct KeyCase {
    const char* algo;
    graph::Topology t;
  };
  const KeyCase key_cases[] = {{"lr2", graph::parallel_arcs(4)},
                               {"gdp2", graph::classic_ring(3)},
                               {"lr2", graph::parallel_arcs(3)}};
  // On the multi-threaded indexed path every key transiently exists twice
  // (the intern shards are still live while merge_into fills the returned
  // StateIndex), so the honest peak doubles the per-state footprint there.
  const bool parallel_path = common::effective_threads(opts.threads, ~std::size_t{0}) > 1;
  for (const KeyCase& kc : key_cases) {
    mdp::StateIndex index;
    const auto model = mdp::par::explore_indexed(*algos::make_algorithm(kc.algo), kc.t, index, opts);
    const auto& codec = index.codec();
    const std::size_t packed = codec.key_bytes();
    const std::size_t legacy = codec.legacy_key_bytes();
    const std::size_t copies = parallel_path ? 2 : 1;
    const std::size_t peak_packed = index.size() * packed * copies;
    const std::size_t peak_legacy = index.size() * legacy * copies;
    char ratio[32];
    std::snprintf(ratio, sizeof ratio, "%.1fx", static_cast<double>(legacy) / packed);
    keys.add_row({std::string(kc.algo) + "/" + kc.t.name(), std::to_string(model.num_states()),
                  std::to_string(packed), std::to_string(legacy), ratio,
                  std::to_string(peak_packed) + " (was " + std::to_string(peak_legacy) + ")"});
    // Machine-readable line for BENCH json tracking of the memory win.
    std::printf("  BENCH key_bytes model=%s/%s states=%zu packed_bytes_per_state=%zu "
                "legacy_bytes_per_state=%zu peak_intern_key_bytes=%zu "
                "final_intern_key_bytes=%zu\n",
                kc.algo, kc.t.name().c_str(), model.num_states(), packed, legacy, peak_packed,
                index.size() * packed);
  }
  keys.print();

  std::printf("\n(c) the fig1a trap (nobody eats => Cond vacuous) against LR2:\n");
  constexpr int kTrials = 300;
  exp::CampaignSpec spec;
  spec.name = "thm2-fig1a-trap";
  spec.seed = 60'000;
  spec.trials = kTrials;
  spec.topologies = {graph::fig1a()};
  spec.algorithms = {"lr2"};
  spec.schedulers = {exp::trap_fig1a()};  // probe: trapped and zero meals
  spec.engine.max_steps = 25'000;
  const auto result = exp::run_campaign(spec);
  const auto& trap = result.at(0);
  const auto trapped = trap.probe_hits();
  const auto ci = trap.probe_ci();
  std::printf("  fig1a satisfies the premise (4 edge-disjoint paths between fork pairs)\n");
  std::printf("  LR2 trapped: %llu/%d (%.3f), Wilson 95%% [%.3f, %.3f] — paper bound: positive\n",
              static_cast<unsigned long long>(trapped), kTrials,
              static_cast<double>(trapped) / kTrials, ci.low, ci.high);
  return 0;
}
