// E4 — Theorem 2: two nodes joined by three paths defeat LR2 as well.
//
// Paper (Theorem 2 + Figure 3): with a ring H plus a third path P between
// two of its nodes, a fair scheduler keeps the philosophers of H and P from
// progressing with positive probability; the guest books stay empty so
// Cond never fires ("fork.g remains forever empty").
//
// Instruments: the model checker on theta instances (the minimal one is
// three parallel arcs) and the TrapFig1a adversary on fig1a (which
// satisfies the Theorem 2 premise) run against LR2. Expected shape: LR2
// fails exactly on the premise graphs, survives the Theorem-1-only graph
// (ring+pendant), and GDP2 is certified everywhere small.
#include "bench_util.hpp"

#include <sys/resource.h>

#include <cstdlib>
#include <filesystem>

#include "gdp/common/strings.hpp"
#include "gdp/exp/runner.hpp"
#include "gdp/graph/algorithms.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/mdp/par/par.hpp"
#include "gdp/mdp/quant/quant.hpp"
#include "gdp/mdp/store/store.hpp"
#include "gdp/sim/state.hpp"

using namespace gdp;

int main(int argc, char** argv) {
  // Model-checker worker threads (0 = hardware concurrency); lets the
  // speedup of the parallel engine be measured: ./bench_thm2_theta 1 vs N.
  // The optional second argument picks sections, e.g. "d" runs only the
  // store-spill exploration (what `ci.sh bench-smoke` exercises).
  const int threads = argc > 1 ? std::atoi(argv[1]) : 0;
  const std::string sections = argc > 2 ? argv[2] : "abcd";
  if (threads < 0 || sections.find_first_not_of("abcd") != std::string::npos) {
    std::fprintf(stderr, "usage: %s [threads >= 0, 0 = hardware] [sections from {a,b,c,d}]\n",
                 argv[0]);
    return 1;
  }
  const auto want = [&](char s) { return sections.find(s) != std::string::npos; };
  bench::enable_obs();

  bench::banner("E4: Theorem 2 (theta graphs vs LR2)",
                "Theorem 2 and Figure 3",
                "LR2 fails on (and only on) graphs with two nodes joined by >= 3 paths");
  mdp::par::CheckOptions opts;
  opts.threads = threads;
  opts.max_states = 3'000'000;

  if (want('a')) {
  std::printf("(a) model-checked verdicts + quantitative bounds (gdp::mdp::par + gdp::mdp::quant,\n"
              "    threads=%d [0=hw]):\n", threads);
  stats::Table verdicts({"topology", "thm2 premise", "lr2 verdict", "lr2 Pmin", "lr2 E[max]",
                         "gdp2 verdict", "gdp2 Pmin", "gdp2 E[max]"});
  const graph::Topology cases[] = {graph::classic_ring(3), graph::ring_with_pendant(3),
                                   graph::parallel_arcs(3), graph::parallel_arcs(4),
                                   graph::theta(1, 1, 2)};
  obs::Span model_check_span("bench.thm2_verdicts");
  for (const auto& t : cases) {
    const bool premise = graph::thm2_premise(t).has_value();
    auto verdict_str = [](const mdp::FairProgressResult& r) {
      if (r.verdict == mdp::Verdict::kUnknownTruncated) return std::string("unknown");
      return std::string(r.holds() ? "progress" : "FAILS");
    };
    auto prob_str = [](const mdp::quant::Interval& iv) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.4f", (iv.lower + iv.upper) / 2);
      return std::string(buf);
    };
    auto time_str = [](const mdp::quant::Interval& iv) {
      if (!iv.finite()) return std::string("inf");
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.1f", (iv.lower + iv.upper) / 2);
      return std::string(buf);
    };
    std::vector<std::string> row{t.name(), premise ? "yes" : "no"};
    for (const char* name : {"lr2", "gdp2"}) {
      const auto algo = algos::make_algorithm(name);
      const auto model = mdp::par::explore(*algo, t, opts);
      const auto verdict = mdp::par::check_fair_progress(model, ~std::uint64_t{0}, opts);
      mdp::quant::QuantOptions qopts;
      qopts.threads = opts.threads;
      qopts.max_states = opts.max_states;
      const auto q = mdp::quant::analyze(model, ~std::uint64_t{0}, qopts);
      row.push_back(verdict_str(verdict));
      row.push_back(model.truncated() ? "unknown" : prob_str(q.p_min));
      row.push_back(model.truncated() ? "unknown" : time_str(q.e_max));
      // Machine-readable quantitative verdicts live in BENCH_thm2_theta.json
      // (quant.* counters in the registry report); the deprecated printf
      // "BENCH quant" lines are gone after their one-release grace period.
    }
    verdicts.add_row(row);
  }
  verdicts.print();
  model_check_span.stop();
  std::printf("  model-check + quant phase wall time: %.2fs\n", model_check_span.seconds());
  }

  if (want('b')) {
  std::printf("\n(b) packed state keys (gdp::mdp::KeyCodec): intern-table + frontier memory:\n");
  stats::Table keys({"model", "states", "B/state packed", "B/state legacy", "ratio",
                     "peak intern key bytes", "frontier B/item", "was (SimState)"});
  struct KeyCase {
    const char* algo;
    graph::Topology t;
  };
  const KeyCase key_cases[] = {{"lr2", graph::parallel_arcs(4)},
                               {"gdp2", graph::classic_ring(3)},
                               {"lr2", graph::parallel_arcs(3)}};
  // Heap footprint of one SimState of this shape — what every frontier item
  // and replay slot carried by value before the explorers switched to
  // decode-on-demand packed keys.
  auto sim_state_bytes = [](const sim::SimState& s) {
    std::size_t b = sizeof(sim::SimState);
    b += s.forks.capacity() * sizeof(sim::ForkState);
    for (const auto& f : s.forks) b += f.use_rank.capacity() * sizeof(std::uint8_t);
    b += s.phils.capacity() * sizeof(sim::PhilState);
    b += s.aux.capacity() * sizeof(std::int32_t);
    return b;
  };
  // The level-synchronous explorer keeps every key twice for the whole run
  // — once in the intern index and once in the id-ordered key array behind
  // take_model and the chunked store — so the honest peak doubles the
  // per-state footprint at every thread count.
  const std::size_t copies = 2;
  for (const KeyCase& kc : key_cases) {
    const auto algo = algos::make_algorithm(kc.algo);
    mdp::StateIndex index;
    const auto model = mdp::par::explore_indexed(*algo, kc.t, index, opts);
    const auto& codec = index.codec();
    const std::size_t packed = codec.key_bytes();
    const std::size_t legacy = codec.legacy_key_bytes();
    const std::size_t peak_packed = index.size() * packed * copies;
    const std::size_t peak_legacy = index.size() * legacy * copies;
    // A frontier item is one provisional id plus the packed key (wide
    // layouts spill to a heap block of exactly key_bytes()).
    const std::size_t frontier_item =
        sizeof(std::uint32_t) + sizeof(mdp::PackedKey) +
        (codec.key_words() > mdp::PackedKey::kInlineWords ? codec.key_bytes() : 0);
    const std::size_t frontier_was =
        sizeof(std::uint32_t) + sim_state_bytes(algo->initial_state(kc.t));
    char ratio[32];
    std::snprintf(ratio, sizeof ratio, "%.1fx", static_cast<double>(legacy) / packed);
    keys.add_row({std::string(kc.algo) + "/" + kc.t.name(), std::to_string(model.num_states()),
                  std::to_string(packed), std::to_string(legacy), ratio,
                  std::to_string(peak_packed) + " (was " + std::to_string(peak_legacy) + ")",
                  std::to_string(frontier_item), std::to_string(frontier_was)});
    // Machine-readable line for BENCH json tracking of the memory win.
    std::printf("  BENCH key_bytes model=%s/%s states=%zu packed_bytes_per_state=%zu "
                "legacy_bytes_per_state=%zu peak_intern_key_bytes=%zu "
                "final_intern_key_bytes=%zu frontier_item_bytes=%zu "
                "frontier_item_bytes_legacy=%zu\n",
                kc.algo, kc.t.name().c_str(), model.num_states(), packed, legacy, peak_packed,
                index.size() * packed, frontier_item, frontier_was);
  }
  keys.print();
  }

  if (want('c')) {
  std::printf("\n(c) the fig1a trap (nobody eats => Cond vacuous) against LR2:\n");
  constexpr int kTrials = 300;
  exp::CampaignSpec spec;
  spec.name = "thm2-fig1a-trap";
  spec.seed = 60'000;
  spec.trials = kTrials;
  spec.topologies = {graph::fig1a()};
  spec.algorithms = {"lr2"};
  spec.schedulers = {exp::trap_fig1a()};  // probe: trapped and zero meals
  spec.engine.max_steps = 25'000;
  const auto result = exp::run_campaign(spec);
  const auto& trap = result.at(0);
  const auto trapped = trap.probe_hits();
  const auto ci = trap.probe_ci();
  std::printf("  fig1a satisfies the premise (4 edge-disjoint paths between fork pairs)\n");
  std::printf("  LR2 trapped: %llu/%d (%.3f), Wilson 95%% [%.3f, %.3f] — paper bound: positive\n",
              static_cast<unsigned long long>(trapped), kTrials,
              static_cast<double>(trapped) / kTrials, ci.low, ci.high);
  }

  // (d) Capped level-synchronous exploration straight into the chunked
  // store, spill on: a Theorem-2-premise instance far past the in-RAM
  // comfort zone (gdp2 on ring_with_chord(4) runs to ~6M states uncapped)
  // explored to checkpoint-sized caps, then a chunk-native verdict over the
  // spilled chunks under a bounded residency budget. The machine-readable
  // copy is the registry report (BENCH_thm2_theta.json: explore.* / store.*
  // counters — including store.chunk_faults / store.chunk_evictions — and
  // the bench.explore_store span); the deprecated printf "BENCH
  // explore_store" lines are gone after their one-release grace period.
  std::vector<std::pair<std::string, std::string>> meta = {
      {"threads", std::to_string(threads)}, {"sections", sections}};
  if (want('d')) {
    std::printf("\n(d) capped exploration into gdp::mdp::store, spill on (gdp2 on %s):\n",
                graph::ring_with_chord(4).name().c_str());
    const auto algo = algos::make_algorithm("gdp2");
    const auto t = graph::ring_with_chord(4);
    const std::string spill_dir = "bench_thm2_spill";
    stats::Table table({"cap", "states", "states/s", "peak RSS MB", "spill MB"});
    const std::size_t caps[] = {100'000, 1'000'000};
    for (std::size_t i = 0; i < std::size(caps); ++i) {
      mdp::par::CheckOptions copts;
      copts.threads = threads;
      copts.max_states = caps[i];
      mdp::store::StoreOptions sopts;
      sopts.spill = true;
      sopts.dir = spill_dir;
      obs::Span run_span("bench.explore_store");
      const auto chunked = mdp::store::explore(*algo, t, sopts, copts);
      run_span.stop();
      const double seconds = run_span.seconds();
      // ru_maxrss is KiB on Linux and a process-wide high-water mark
      // (monotone across the caps), not a per-run delta.
      struct rusage usage {};
      ::getrusage(RUSAGE_SELF, &usage);
      const std::size_t peak_rss = static_cast<std::size_t>(usage.ru_maxrss) * 1024;
      const double rate =
          seconds > 0.0 ? static_cast<double>(chunked.num_states()) / seconds : 0.0;
      char rate_s[32], rss_s[32], spill_s[32];
      std::snprintf(rate_s, sizeof rate_s, "%.0f", rate);
      std::snprintf(rss_s, sizeof rss_s, "%.1f", peak_rss / (1024.0 * 1024.0));
      std::snprintf(spill_s, sizeof spill_s, "%.1f",
                    chunked.spilled_bytes() / (1024.0 * 1024.0));
      table.add_row({std::to_string(caps[i]), std::to_string(chunked.num_states()), rate_s,
                     rss_s, spill_s});
      const std::string cap_tag = "cap_" + std::to_string(caps[i]);
      meta.emplace_back(cap_tag + "_states", std::to_string(chunked.num_states()));
      meta.emplace_back(cap_tag + "_spill_bytes", std::to_string(chunked.spilled_bytes()));
      meta.emplace_back(cap_tag + "_peak_rss_bytes", std::to_string(peak_rss));
    }
    table.print();

    // Chunk-native fair-progress verdict over the spilled model under a
    // tight residency budget: the kernels page chunks through an LRU window
    // instead of materializing (store.materializations stays 0 here), which
    // is the whole point of analyzing out-of-core models in place.
    {
      mdp::par::CheckOptions copts;
      copts.threads = threads;
      copts.max_states = 100'000;
      mdp::store::StoreOptions sopts;
      sopts.spill = true;
      sopts.dir = spill_dir;
      sopts.chunk_states = std::size_t{1} << 13;  // ~14 chunks at this cap
      sopts.max_resident_chunks = 4;              // so the 4-chunk window pages
      const auto bounded = mdp::store::explore(*algo, t, sopts, copts);
      obs::Span verdict_span("bench.store_verdict");
      const auto verdict = mdp::store::check_fair_progress(bounded, ~std::uint64_t{0}, copts);
      verdict_span.stop();
      std::printf("  chunk-native verdict (budget 4 of %zu chunks): %s in %.2fs, "
                  "peak resident %.1f MB of %.1f MB spilled\n",
                  bounded.num_chunks(), mdp::to_string(verdict.verdict), verdict_span.seconds(),
                  bounded.peak_resident_bytes() / (1024.0 * 1024.0),
                  bounded.spilled_bytes() / (1024.0 * 1024.0));
      meta.emplace_back("store_verdict", mdp::to_string(verdict.verdict));
      meta.emplace_back("store_verdict_peak_resident_bytes",
                        std::to_string(bounded.peak_resident_bytes()));
    }
    std::error_code ec;
    std::filesystem::remove_all(spill_dir, ec);  // the spilled chunks served their purpose
  }

  bench::write_bench_report("thm2_theta", meta);
  return 0;
}
