// E4 — Theorem 2: two nodes joined by three paths defeat LR2 as well.
//
// Paper (Theorem 2 + Figure 3): with a ring H plus a third path P between
// two of its nodes, a fair scheduler keeps the philosophers of H and P from
// progressing with positive probability; the guest books stay empty so
// Cond never fires ("fork.g remains forever empty").
//
// Instruments: the model checker on theta instances (the minimal one is
// three parallel arcs) and the TrapFig1a adversary on fig1a (which
// satisfies the Theorem 2 premise) run against LR2. Expected shape: LR2
// fails exactly on the premise graphs, survives the Theorem-1-only graph
// (ring+pendant), and GDP2 is certified everywhere small.
#include "bench_util.hpp"

#include <cstdlib>

#include "gdp/common/strings.hpp"
#include "gdp/exp/runner.hpp"
#include "gdp/graph/algorithms.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/mdp/par/par.hpp"

using namespace gdp;

int main(int argc, char** argv) {
  // Model-checker worker threads (0 = hardware concurrency); lets the
  // speedup of the parallel engine be measured: ./bench_thm2_theta 1 vs N.
  const int threads = argc > 1 ? std::atoi(argv[1]) : 0;
  if (threads < 0) {
    std::fprintf(stderr, "usage: %s [threads >= 0, 0 = hardware]\n", argv[0]);
    return 1;
  }

  bench::banner("E4: Theorem 2 (theta graphs vs LR2)",
                "Theorem 2 and Figure 3",
                "LR2 fails on (and only on) graphs with two nodes joined by >= 3 paths");
  mdp::par::CheckOptions opts;
  opts.threads = threads;
  opts.max_states = 3'000'000;

  std::printf("(a) model-checked verdicts (gdp::mdp::par, threads=%d [0=hw]):\n", threads);
  stats::Table verdicts({"topology", "thm2 premise", "lr2 verdict", "gdp2 verdict"});
  const graph::Topology cases[] = {graph::classic_ring(3), graph::ring_with_pendant(3),
                                   graph::parallel_arcs(3), graph::parallel_arcs(4),
                                   graph::theta(1, 1, 2)};
  const bench::Stopwatch model_check_clock;
  for (const auto& t : cases) {
    const bool premise = graph::thm2_premise(t).has_value();
    const auto lr2 = mdp::par::check_fair_progress(*algos::make_algorithm("lr2"), t, opts);
    const auto gdp2 = mdp::par::check_fair_progress(*algos::make_algorithm("gdp2"), t, opts);
    auto verdict_str = [](const mdp::FairProgressResult& r) {
      if (r.verdict == mdp::Verdict::kUnknownTruncated) return std::string("unknown");
      return std::string(r.holds() ? "progress" : "FAILS");
    };
    verdicts.add_row({t.name(), premise ? "yes" : "no", verdict_str(lr2), verdict_str(gdp2)});
  }
  verdicts.print();
  std::printf("  model-check phase wall time: %.2fs\n", model_check_clock.seconds());

  std::printf("\n(b) the fig1a trap (nobody eats => Cond vacuous) against LR2:\n");
  constexpr int kTrials = 300;
  exp::CampaignSpec spec;
  spec.name = "thm2-fig1a-trap";
  spec.seed = 60'000;
  spec.trials = kTrials;
  spec.topologies = {graph::fig1a()};
  spec.algorithms = {"lr2"};
  spec.schedulers = {exp::trap_fig1a()};  // probe: trapped and zero meals
  spec.engine.max_steps = 25'000;
  const auto result = exp::run_campaign(spec);
  const auto& trap = result.at(0);
  const auto trapped = trap.probe_hits();
  const auto ci = trap.probe_ci();
  std::printf("  fig1a satisfies the premise (4 edge-disjoint paths between fork pairs)\n");
  std::printf("  LR2 trapped: %llu/%d (%.3f), Wilson 95%% [%.3f, %.3f] — paper bound: positive\n",
              static_cast<unsigned long long>(trapped), kTrials,
              static_cast<double>(trapped) / kTrials, ci.low, ci.high);
  return 0;
}
