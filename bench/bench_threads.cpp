// E12 — real-concurrency validation: std::thread philosophers, lock-free
// CAS forks, the OS as the adversary.
//
// Not a paper figure: the substitution study showing the algorithms are not
// simulation artifacts. Expected shape: zero mutual-exclusion violations
// for every algorithm; throughput ordering gdp1 ~ lr1 ~ ordered > gdp2 >
// gdp2c (courtesy costs); courteous variants keep everyone fed; latency
// percentiles finite and ordered.
#include "bench_util.hpp"

#include "gdp/common/strings.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/runtime/runtime.hpp"
#include "gdp/stats/jain.hpp"

using namespace gdp;

int main() {
  bench::enable_obs();
  bench::banner("E12: thread runtime",
                "substitution study (real concurrency; OS scheduling as adversary)",
                "0 exclusion violations; courtesy trades throughput for fairness");

  const graph::Topology systems[] = {graph::classic_ring(4), graph::classic_ring(8),
                                     graph::fig1a(), graph::fig1b(), graph::parallel_arcs(6)};

  stats::Table table({"system", "algorithm", "meals/s", "p50 hunger (us)", "p99 hunger (us)",
                      "jain", "everyone ate", "violations"});
  for (const auto& t : systems) {
    for (const std::string name : runtime::runtime_algorithms()) {
      runtime::RuntimeConfig cfg;
      cfg.algorithm = name;
      cfg.seed = 99;
      cfg.duration = std::chrono::milliseconds(300);
      const auto r = runtime::run_threads(t, cfg);
      table.add_row({t.name(), name, format_double(r.meals_per_second, 0),
                     format_double(r.hunger_p50_ns / 1000.0, 1),
                     format_double(r.hunger_p99_ns / 1000.0, 1),
                     format_double(stats::jain_index(r.meals_of), 3),
                     r.everyone_ate() ? "yes" : "no",
                     bench::fmt_u64(r.exclusion_violations)});
    }
    table.add_rule();
  }
  table.print();

  std::printf("\nContended workload (eat_work=500) on parallel(6):\n");
  stats::Table hot({"algorithm", "meals/s", "jain", "violations"});
  for (const std::string name : {"lr1", "gdp1", "gdp2c"}) {
    runtime::RuntimeConfig cfg;
    cfg.algorithm = name;
    cfg.duration = std::chrono::milliseconds(300);
    cfg.eat_work = 500;
    const auto r = runtime::run_threads(graph::parallel_arcs(6), cfg);
    hot.add_row({name, format_double(r.meals_per_second, 0),
                 format_double(stats::jain_index(r.meals_of), 3),
                 bench::fmt_u64(r.exclusion_violations)});
  }
  hot.print();
  bench::write_bench_report("threads");
  return 0;
}
