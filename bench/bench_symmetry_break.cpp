// E6 — the §4 symmetry-breaking probability: p >= m! / (m^k (m-k)!).
//
// Paper (proof of Theorem 3): the probability that k forks randomly
// numbered from [1, m] become pairwise distinct is m!/(m^k (m-k)!), positive
// whenever m >= k. We verify the closed form against direct sampling and
// against full GDP1 runs (steps until every ring fork pair is distinct).
// Expected shape: measured ≈ closed form within CI; larger m converges
// faster; probability positive for all m >= k.
#include "bench_util.hpp"

#include <cmath>

#include "gdp/common/strings.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/stats/ci.hpp"
#include "gdp/stats/online.hpp"

using namespace gdp;

namespace {

double closed_form(int m, int k) {
  double p = 1.0;
  for (int i = 0; i < k; ++i) p *= static_cast<double>(m - i) / m;
  return p;
}

/// Steps a fair GDP1 run needs until all adjacent-on-a-ring fork pairs have
/// distinct nr values (the C_1 event of Theorem 3's proof).
std::uint64_t steps_to_distinct(int ring, int m, std::uint64_t seed) {
  const auto t = graph::classic_ring(ring);
  const auto algo = algos::make_algorithm("gdp1", algos::AlgoConfig{.m = m});
  sim::RandomUniform sched;
  rng::Rng rng(seed);
  auto s = algo->initial_state(t);
  for (std::uint64_t step = 0; step < 200'000; ++step) {
    bool all_distinct = true;
    for (PhilId p = 0; p < t.num_phils() && all_distinct; ++p) {
      all_distinct = s.fork(t.left_of(p)).nr != s.fork(t.right_of(p)).nr;
    }
    if (all_distinct) return step;
    sim::RunView view;  // unused by RandomUniform
    const PhilId p = sched.pick(t, s, view, rng);
    s = sim::sample_branch(algo->step(t, s, p), rng).next;
  }
  return 200'000;
}

}  // namespace

int main() {
  bench::banner("E6: symmetry-breaking probability",
                "Theorem 3's bound p >= m!/(m^k (m-k)!)",
                "sampled all-distinct frequency matches the closed form; positive for m >= k");

  stats::Table table({"m", "k", "closed form", "sampled", "wilson 95%", "match"});
  rng::Rng rng(20'260'613);
  constexpr int kTrials = 60'000;
  for (const auto& [m, k] : std::vector<std::pair<int, int>>{
           {3, 3}, {4, 3}, {6, 3}, {4, 4}, {6, 4}, {8, 4}, {6, 6}, {10, 6}, {12, 8}}) {
    int distinct = 0;
    std::vector<int> draw(static_cast<std::size_t>(k));
    for (int trial = 0; trial < kTrials; ++trial) {
      bool ok = true;
      for (int i = 0; i < k && ok; ++i) {
        draw[static_cast<std::size_t>(i)] = rng.uniform_int(1, m);
        for (int j = 0; j < i && ok; ++j) ok = draw[static_cast<std::size_t>(j)] != draw[static_cast<std::size_t>(i)];
      }
      distinct += ok;
    }
    const double expected = closed_form(m, k);
    const auto ci = stats::wilson(static_cast<std::uint64_t>(distinct),
                                  static_cast<std::uint64_t>(kTrials));
    table.add_row({std::to_string(m), std::to_string(k), format_double(expected, 4),
                   format_double(static_cast<double>(distinct) / kTrials, 4),
                   "[" + format_double(ci.low, 4) + ", " + format_double(ci.high, 4) + "]",
                   ci.contains(expected) ? "yes" : "NO"});
  }
  table.print();

  std::printf("\nGDP1 end-to-end: fair-run steps until all ring-adjacent nrs distinct:\n");
  stats::Table conv({"ring k", "m", "mean steps", "sem"});
  for (const auto& [ring, m] : std::vector<std::pair<int, int>>{
           {4, 4}, {4, 8}, {4, 16}, {6, 6}, {6, 12}, {6, 24}}) {
    stats::OnlineStats st;
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
      st.add(static_cast<double>(steps_to_distinct(ring, m, 100 * seed + 1)));
    }
    conv.add_row({std::to_string(ring), std::to_string(m), format_double(st.mean(), 1),
                  format_double(st.sem(), 1)});
  }
  conv.print();
  std::printf("\nExpected: larger m (fewer collisions) never slows convergence.\n");
  return 0;
}
