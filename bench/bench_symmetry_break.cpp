// E6 — the §4 symmetry-breaking probability: p >= m! / (m^k (m-k)!).
//
// Paper (proof of Theorem 3): the probability that k forks randomly
// numbered from [1, m] become pairwise distinct is m!/(m^k (m-k)!), positive
// whenever m >= k. We verify the closed form against direct sampling and
// against full GDP1 runs (steps until every ring fork pair is distinct).
// Both trial loops run on the shared work-stealing pool with deterministic
// gdp::exp trial seeding (results parked at their task index, folded in
// order — thread-count-independent output). Expected shape: measured ≈
// closed form within CI; larger m converges faster; probability positive
// for all m >= k.
#include "bench_util.hpp"

#include <cmath>

#include "gdp/common/pool.hpp"
#include "gdp/common/strings.hpp"
#include "gdp/exp/seeding.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/stats/ci.hpp"
#include "gdp/stats/online.hpp"

using namespace gdp;

namespace {

constexpr std::uint64_t kCampaignSeed = 20'260'613;

double closed_form(int m, int k) {
  double p = 1.0;
  for (int i = 0; i < k; ++i) p *= static_cast<double>(m - i) / m;
  return p;
}

/// Steps a fair GDP1 run needs until all adjacent-on-a-ring fork pairs have
/// distinct nr values (the C_1 event of Theorem 3's proof).
std::uint64_t steps_to_distinct(int ring, int m, std::uint64_t seed) {
  const auto t = graph::classic_ring(ring);
  const auto algo = algos::make_algorithm("gdp1", algos::AlgoConfig{.m = m});
  sim::RandomUniform sched;
  rng::Rng rng(seed);
  auto s = algo->initial_state(t);
  for (std::uint64_t step = 0; step < 200'000; ++step) {
    bool all_distinct = true;
    for (PhilId p = 0; p < t.num_phils() && all_distinct; ++p) {
      all_distinct = s.fork(t.left_of(p)).nr != s.fork(t.right_of(p)).nr;
    }
    if (all_distinct) return step;
    sim::RunView view;  // unused by RandomUniform
    const PhilId p = sched.pick(t, s, view, rng);
    s = sim::sample_branch(algo->step(t, s, p), rng).next;
  }
  return 200'000;
}

}  // namespace

int main() {
  bench::enable_obs();
  bench::banner("E6: symmetry-breaking probability",
                "Theorem 3's bound p >= m!/(m^k (m-k)!)",
                "sampled all-distinct frequency matches the closed form; positive for m >= k");

  constexpr int kTrials = 60'000;
  const std::vector<std::pair<int, int>> mk_rows = {
      {3, 3}, {4, 3}, {6, 3}, {4, 4}, {6, 4}, {8, 4}, {6, 6}, {10, 6}, {12, 8}};

  // One task per (m, k) row; each row samples with its own derived seed, so
  // the table is identical for any worker count.
  std::vector<int> distinct_of(mk_rows.size(), 0);
  common::parallel_for(mk_rows.size(), /*threads=*/0, [&](std::uint32_t row) {
    const auto [m, k] = mk_rows[row];
    rng::Rng rng(exp::trial_seed(kCampaignSeed, row, 0));
    int distinct = 0;
    std::vector<int> draw(static_cast<std::size_t>(k));
    for (int trial = 0; trial < kTrials; ++trial) {
      bool ok = true;
      for (int i = 0; i < k && ok; ++i) {
        draw[static_cast<std::size_t>(i)] = rng.uniform_int(1, m);
        for (int j = 0; j < i && ok; ++j)
          ok = draw[static_cast<std::size_t>(j)] != draw[static_cast<std::size_t>(i)];
      }
      distinct += ok;
    }
    distinct_of[row] = distinct;
  });

  stats::Table table({"m", "k", "closed form", "sampled", "wilson 95%", "match"});
  for (std::size_t row = 0; row < mk_rows.size(); ++row) {
    const auto [m, k] = mk_rows[row];
    const int distinct = distinct_of[row];
    const double expected = closed_form(m, k);
    const auto ci = stats::wilson(static_cast<std::uint64_t>(distinct),
                                  static_cast<std::uint64_t>(kTrials));
    table.add_row({std::to_string(m), std::to_string(k), format_double(expected, 4),
                   format_double(static_cast<double>(distinct) / kTrials, 4),
                   "[" + format_double(ci.low, 4) + ", " + format_double(ci.high, 4) + "]",
                   ci.contains(expected) ? "yes" : "NO"});
  }
  table.print();

  std::printf("\nGDP1 end-to-end: fair-run steps until all ring-adjacent nrs distinct:\n");
  const std::vector<std::pair<int, int>> ring_rows = {{4, 4},  {4, 8},  {4, 16},
                                                      {6, 6}, {6, 12}, {6, 24}};
  constexpr std::size_t kConvTrials = 30;
  // ring_rows x trials tasks on the pool; per-task results fold in index
  // order afterwards, so mean/sem are thread-count-independent too.
  std::vector<std::uint64_t> steps_of(ring_rows.size() * kConvTrials, 0);
  common::parallel_for(steps_of.size(), /*threads=*/0, [&](std::uint32_t id) {
    const std::size_t row = id / kConvTrials;
    const std::size_t trial = id % kConvTrials;
    const auto [ring, m] = ring_rows[row];
    steps_of[id] = steps_to_distinct(ring, m, exp::trial_seed(kCampaignSeed + 1, row, trial));
  });

  stats::Table conv({"ring k", "m", "mean steps", "sem"});
  for (std::size_t row = 0; row < ring_rows.size(); ++row) {
    stats::OnlineStats st;
    for (std::size_t trial = 0; trial < kConvTrials; ++trial) {
      st.add(static_cast<double>(steps_of[row * kConvTrials + trial]));
    }
    conv.add_row({std::to_string(ring_rows[row].first), std::to_string(ring_rows[row].second),
                  format_double(st.mean(), 1), format_double(st.sem(), 1)});
  }
  conv.print();
  std::printf("\nExpected: larger m (fewer collisions) never slows convergence.\n");
  bench::write_bench_report("symmetry_break");
  return 0;
}
