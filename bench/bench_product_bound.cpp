// E8 — the §3 fairness repair: numerical verification of the bounds
//
//   prod_{k=1..m} (1 - p^k) >= 1 - p - p^2 + p^{m+1}   (induction step)
//   prod_{k=1..inf} (1 - p^k) >= 1 - p - p^2            (limit)
//   and for p <= 1/2:  1 - p - p^2 >= 1/4.
//
// These justify that the stubbornness-capped adversary stays fair while
// keeping the no-progress probability >= (1/4) * prod(1 - p^k) >= 1/16.
// Expected shape: every inequality holds for all sampled p and m, with the
// bound tight as p -> 1/2.
#include "bench_util.hpp"

#include <cmath>

#include "gdp/common/pool.hpp"
#include "gdp/common/strings.hpp"

using namespace gdp;

namespace {

double finite_product(double p, int m) {
  double prod = 1.0;
  double pk = p;
  for (int k = 1; k <= m; ++k) {
    prod *= (1.0 - pk);
    pk *= p;
  }
  return prod;
}

}  // namespace

int main() {
  bench::enable_obs();
  bench::banner("E8: the product bound of the fairness repair",
                "section 3: prod(1 - p^k) >= 1 - p - p^2 (and >= 1/4 for p <= 1/2)",
                "all inequalities hold numerically; bound tightens as p -> 1/2");

  stats::Table table({"p", "m", "prod(1-p^k)", "1-p-p^2+p^(m+1)", "1-p-p^2", "induction ok",
                      "limit ok"});
  const std::vector<double> ps = {0.05, 0.1, 0.2, 0.3, 0.4, 0.5};
  const std::vector<int> ms = {1, 2, 5, 10, 100, 10'000, 1'000'000};

  // The (p, m) grid is embarrassingly parallel (the m = 10^6 products
  // dominate); evaluate it on the shared pool, render in index order.
  struct Row {
    double prod = 0.0, induction_rhs = 0.0, limit_rhs = 0.0;
    bool induction_ok = false, limit_ok = false;
  };
  std::vector<Row> rows(ps.size() * ms.size());
  common::parallel_for(rows.size(), /*threads=*/0, [&](std::uint32_t id) {
    const double p = ps[id / ms.size()];
    const int m = ms[id % ms.size()];
    Row& row = rows[id];
    row.prod = finite_product(p, m);
    row.induction_rhs = 1.0 - p - p * p + std::pow(p, m + 1);
    row.limit_rhs = 1.0 - p - p * p;
    row.induction_ok = row.prod + 1e-12 >= row.induction_rhs;
    row.limit_ok = row.prod + 1e-12 >= row.limit_rhs;
  });

  bool all_hold = true;
  for (std::size_t pi = 0; pi < ps.size(); ++pi) {
    for (std::size_t mi = 0; mi < ms.size(); ++mi) {
      const Row& row = rows[pi * ms.size() + mi];
      const int m = ms[mi];
      all_hold = all_hold && row.induction_ok && row.limit_ok;
      if (m == 1 || m == 10 || m == 1'000'000) {
        table.add_row({format_double(ps[pi], 2), std::to_string(m), format_double(row.prod, 6),
                       format_double(row.induction_rhs, 6), format_double(row.limit_rhs, 6),
                       row.induction_ok ? "yes" : "NO", row.limit_ok ? "yes" : "NO"});
      }
    }
    table.add_rule();
  }
  table.print();

  std::printf("\nAll inequalities hold: %s\n", all_hold ? "yes" : "NO");
  std::printf("For p = 1/2: 1 - p - p^2 = %.4f >= 1/4: %s\n", 1.0 - 0.5 - 0.25,
              (1.0 - 0.5 - 0.25 >= 0.25 - 1e-12) ? "yes" : "NO");
  std::printf("Overall adversary success bound (1/4)*prod >= %.4f (paper: >= 1/16)\n",
              0.25 * finite_product(0.5, 1'000'000));
  bench::write_bench_report("product_bound");
  return 0;
}
