// E8 — the §3 fairness repair: numerical verification of the bounds
//
//   prod_{k=1..m} (1 - p^k) >= 1 - p - p^2 + p^{m+1}   (induction step)
//   prod_{k=1..inf} (1 - p^k) >= 1 - p - p^2            (limit)
//   and for p <= 1/2:  1 - p - p^2 >= 1/4.
//
// These justify that the stubbornness-capped adversary stays fair while
// keeping the no-progress probability >= (1/4) * prod(1 - p^k) >= 1/16.
// Expected shape: every inequality holds for all sampled p and m, with the
// bound tight as p -> 1/2.
#include "bench_util.hpp"

#include <cmath>

#include "gdp/common/strings.hpp"

using namespace gdp;

namespace {

double finite_product(double p, int m) {
  double prod = 1.0;
  double pk = p;
  for (int k = 1; k <= m; ++k) {
    prod *= (1.0 - pk);
    pk *= p;
  }
  return prod;
}

}  // namespace

int main() {
  bench::banner("E8: the product bound of the fairness repair",
                "section 3: prod(1 - p^k) >= 1 - p - p^2 (and >= 1/4 for p <= 1/2)",
                "all inequalities hold numerically; bound tightens as p -> 1/2");

  stats::Table table({"p", "m", "prod(1-p^k)", "1-p-p^2+p^(m+1)", "1-p-p^2", "induction ok",
                      "limit ok"});
  bool all_hold = true;
  for (double p : {0.05, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    for (int m : {1, 2, 5, 10, 100, 10'000, 1'000'000}) {
      const double prod = finite_product(p, m);
      const double induction_rhs = 1.0 - p - p * p + std::pow(p, m + 1);
      const double limit_rhs = 1.0 - p - p * p;
      const bool induction_ok = prod + 1e-12 >= induction_rhs;
      const bool limit_ok = prod + 1e-12 >= limit_rhs;
      all_hold = all_hold && induction_ok && limit_ok;
      if (m == 1 || m == 10 || m == 1'000'000) {
        table.add_row({format_double(p, 2), std::to_string(m), format_double(prod, 6),
                       format_double(induction_rhs, 6), format_double(limit_rhs, 6),
                       induction_ok ? "yes" : "NO", limit_ok ? "yes" : "NO"});
      }
    }
    table.add_rule();
  }
  table.print();

  std::printf("\nAll inequalities hold: %s\n", all_hold ? "yes" : "NO");
  std::printf("For p = 1/2: 1 - p - p^2 = %.4f >= 1/4: %s\n", 1.0 - 0.5 - 0.25,
              (1.0 - 0.5 - 0.25 >= 0.25 - 1e-12) ? "yes" : "NO");
  std::printf("Overall adversary success bound (1/4)*prod >= %.4f (paper: >= 1/16)\n",
              0.25 * finite_product(0.5, 1'000'000));
  return 0;
}
