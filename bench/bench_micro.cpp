// Microbenchmarks (google-benchmark) over the library's hot paths: RNG,
// a single algorithm step, whole-engine simulation throughput, MDP
// exploration rate and the π guarded-choice layer.
#include <benchmark/benchmark.h>

#include "gdp/algos/algorithm.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/mdp/fair_progress.hpp"
#include "gdp/pi/guarded_choice.hpp"
#include "gdp/rng/rng.hpp"
#include "gdp/sim/engine.hpp"
#include "gdp/sim/schedulers/basic.hpp"

namespace {

using namespace gdp;

void BM_RngNextU64(benchmark::State& state) {
  rng::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}
BENCHMARK(BM_RngNextU64);

void BM_RngUniformInt(benchmark::State& state) {
  rng::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.uniform_int(1, 97));
}
BENCHMARK(BM_RngUniformInt);

void BM_AlgorithmStep(benchmark::State& state) {
  const auto algo = algos::make_algorithm(state.range(0) == 0 ? "lr1" : "gdp1");
  const auto t = graph::fig1a();
  const auto s = algo->initial_state(t);
  PhilId p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo->step(t, s, p));
    p = (p + 1) % t.num_phils();
  }
}
BENCHMARK(BM_AlgorithmStep)->Arg(0)->Arg(1);

void BM_EngineSteps(benchmark::State& state) {
  const auto algo = algos::make_algorithm("gdp1");
  const auto t = graph::classic_ring(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    sim::RandomUniform sched;
    rng::Rng rng(7);
    sim::EngineConfig cfg;
    cfg.max_steps = 10'000;
    benchmark::DoNotOptimize(sim::run(*algo, t, sched, rng, cfg));
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EngineSteps)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_MdpExplore(benchmark::State& state) {
  const auto algo = algos::make_algorithm("lr1");
  const auto t = graph::classic_ring(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const auto model = mdp::explore(*algo, t, 2'000'000);
    benchmark::DoNotOptimize(model.num_states());
    state.counters["states"] = static_cast<double>(model.num_states());
  }
  state.SetLabel("complete exploration");
}
BENCHMARK(BM_MdpExplore)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_FairProgressCheck(benchmark::State& state) {
  const auto algo = algos::make_algorithm("lr1");
  const auto t = graph::parallel_arcs(3);
  const auto model = mdp::explore(*algo, t, 1'000'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mdp::check_fair_progress(model));
  }
}
BENCHMARK(BM_FairProgressCheck)->Unit(benchmark::kMicrosecond);

void BM_GuardedChoice(benchmark::State& state) {
  const auto t = graph::classic_ring(4);
  for (auto _ : state) {
    pi::ChoiceConfig cfg;
    cfg.target_syncs = 500;
    cfg.max_duration = std::chrono::milliseconds(10'000);
    benchmark::DoNotOptimize(pi::run_guarded_choice(t, cfg));
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_GuardedChoice)->Unit(benchmark::kMillisecond);

}  // namespace
