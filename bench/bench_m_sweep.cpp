// E10 — the efficiency question the paper leaves open (§6: "we have not
// addressed any efficiency issue").
//
// We quantify GDP's costs in the simulator: effect of the numbering range m
// on time-to-first-meal and steady-state throughput, GDP2's courtesy
// overhead over GDP1, and scaling with topology size. Expected shape:
// m ≈ k is already enough (larger m helps convergence slightly); the
// courteous variants trade throughput for bounded hunger; steady-state
// throughput scales with the number of non-conflicting philosopher pairs.
//
// All three sweeps run as gdp::exp campaigns on the parallel Runner.
#include "bench_util.hpp"

#include "gdp/common/strings.hpp"
#include "gdp/exp/runner.hpp"
#include "gdp/graph/builders.hpp"

using namespace gdp;

namespace {

constexpr std::uint64_t kSteps = 60'000;

exp::CampaignSpec base_spec(std::string name, int trials) {
  exp::CampaignSpec spec;
  spec.name = std::move(name);
  spec.seed = 10;
  spec.trials = trials;
  spec.schedulers = {exp::uniform()};
  spec.engine.max_steps = kSteps;
  return spec;
}

std::string first_meal_cell(const exp::CellAggregate& c) {
  return c.first_meal().count() == 0 ? "never" : format_double(c.first_meal().mean(), 1);
}

}  // namespace

int main() {
  bench::enable_obs();
  bench::banner("E10: efficiency (the paper's open question)",
                "section 6 ('evaluation of the complexity ... open topics')",
                "m ~ k suffices; courtesy costs throughput but bounds hunger");

  constexpr int kTrials = 15;

  std::printf("(a) numbering range m on fig1a (k = 3):\n");
  auto range = base_spec("m-range", kTrials);
  range.topologies = {graph::fig1a()};
  range.algorithms = {"gdp1"};
  for (int m : {3, 4, 6, 12, 24, 96}) range.configs.push_back(algos::AlgoConfig{.m = m});
  const auto range_result = exp::run_campaign(range);
  stats::Table ms({"m", "first meal (mean steps)", "meals / 60k steps", "max hunger"});
  for (const auto& c : range_result.cells) {
    ms.add_row({std::to_string(range.configs[c.cell().config].m), first_meal_cell(c),
                format_double(c.meals().mean(), 0), format_double(c.max_hunger().mean(), 0)});
  }
  ms.print();

  std::printf("\n(b) courtesy overhead (m = k), fig1b (12 philosophers):\n");
  auto overhead = base_spec("courtesy-overhead", kTrials);
  overhead.topologies = {graph::fig1b()};
  overhead.algorithms = {"gdp1", "gdp2", "gdp2c", "lr1", "lr2"};
  const auto overhead_result = exp::run_campaign(overhead);
  stats::Table ov({"algorithm", "meals / 60k steps", "max hunger", "relative throughput"});
  const double base = overhead_result.at(0).meals().mean();  // gdp1 is cell 0
  for (const auto& c : overhead_result.cells) {
    ov.add_row({overhead.algorithms[c.cell().algorithm], format_double(c.meals().mean(), 0),
                format_double(c.max_hunger().mean(), 0),
                format_double(base > 0 ? c.meals().mean() / base : 0.0, 2)});
  }
  ov.print();

  std::printf("\n(c) scaling with ring size (gdp1, m = k):\n");
  auto scaling = base_spec("ring-scaling", 8);
  scaling.algorithms = {"gdp1"};
  for (int n : {4, 8, 16, 32, 64}) scaling.topologies.push_back(graph::classic_ring(n));
  const auto scaling_result = exp::run_campaign(scaling);
  stats::Table sc({"ring n", "meals / 60k steps", "meals per phil", "first meal"});
  for (const auto& c : scaling_result.cells) {
    const int n = scaling.topologies[c.cell().topology].num_phils();
    sc.add_row({std::to_string(n), format_double(c.meals().mean(), 0),
                format_double(c.meals().mean() / n, 1), first_meal_cell(c)});
  }
  sc.print();
  bench::write_bench_report("m_sweep");
  return 0;
}
