// E10 — the efficiency question the paper leaves open (§6: "we have not
// addressed any efficiency issue").
//
// We quantify GDP's costs in the simulator: effect of the numbering range m
// on time-to-first-meal and steady-state throughput, GDP2's courtesy
// overhead over GDP1, and scaling with topology size. Expected shape:
// m ≈ k is already enough (larger m helps convergence slightly); the
// courteous variants trade throughput for bounded hunger; steady-state
// throughput scales with the number of non-conflicting philosopher pairs.
#include "bench_util.hpp"

#include "gdp/common/strings.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/stats/online.hpp"

using namespace gdp;

namespace {

struct Sweep {
  stats::OnlineStats first_meal;
  stats::OnlineStats meals;
  stats::OnlineStats max_hunger;
};

Sweep sweep(const std::string& name, const graph::Topology& t, int m, int trials,
            std::uint64_t steps) {
  Sweep out;
  for (int i = 0; i < trials; ++i) {
    const auto algo = algos::make_algorithm(name, algos::AlgoConfig{.m = m});
    sim::RandomUniform sched;
    rng::Rng rng(static_cast<std::uint64_t>(31 * i + 7));
    sim::EngineConfig cfg;
    cfg.max_steps = steps;
    const auto r = sim::run(*algo, t, sched, rng, cfg);
    if (r.first_meal_step != sim::kNever) out.first_meal.add(static_cast<double>(r.first_meal_step));
    out.meals.add(static_cast<double>(r.total_meals));
    out.max_hunger.add(static_cast<double>(r.max_hunger()));
  }
  return out;
}

}  // namespace

int main() {
  bench::banner("E10: efficiency (the paper's open question)",
                "section 6 ('evaluation of the complexity ... open topics')",
                "m ~ k suffices; courtesy costs throughput but bounds hunger");

  constexpr int kTrials = 15;
  constexpr std::uint64_t kSteps = 60'000;

  std::printf("(a) numbering range m on fig1a (k = 3):\n");
  stats::Table ms({"m", "first meal (mean steps)", "meals / 60k steps", "max hunger"});
  for (int m : {3, 4, 6, 12, 24, 96}) {
    const auto s = sweep("gdp1", graph::fig1a(), m, kTrials, kSteps);
    ms.add_row({std::to_string(m), format_double(s.first_meal.mean(), 1),
                format_double(s.meals.mean(), 0), format_double(s.max_hunger.mean(), 0)});
  }
  ms.print();

  std::printf("\n(b) courtesy overhead (m = k), fig1b (12 philosophers):\n");
  stats::Table ov({"algorithm", "meals / 60k steps", "max hunger", "relative throughput"});
  double base = 0.0;
  for (const std::string name : {"gdp1", "gdp2", "gdp2c", "lr1", "lr2"}) {
    const auto s = sweep(name, graph::fig1b(), 0, kTrials, kSteps);
    if (name == "gdp1") base = s.meals.mean();
    ov.add_row({name, format_double(s.meals.mean(), 0), format_double(s.max_hunger.mean(), 0),
                format_double(base > 0 ? s.meals.mean() / base : 0.0, 2)});
  }
  ov.print();

  std::printf("\n(c) scaling with ring size (gdp1, m = k):\n");
  stats::Table sc({"ring n", "meals / 60k steps", "meals per phil", "first meal"});
  for (int n : {4, 8, 16, 32, 64}) {
    const auto s = sweep("gdp1", graph::classic_ring(n), 0, 8, kSteps);
    sc.add_row({std::to_string(n), format_double(s.meals.mean(), 0),
                format_double(s.meals.mean() / n, 1), format_double(s.first_meal.mean(), 1)});
  }
  sc.print();
  return 0;
}
