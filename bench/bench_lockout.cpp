// E7 — lockout-freedom: GDP1 starves under the §5 adversary; GDP2
// (courteous, Theorem 4) does not.
//
// Paper (§5): "consider two adjacent philosophers P1, P2 sharing fork f
// whose nr is smaller than P1's other fork g. P1 keeps selecting g as first
// fork, and the scheduler schedules P1's second-fork attempt only when f is
// held by P2" — GDP1 is not lockout-free; GDP2 adds LR2's machinery and is
// (Theorem 4). The StarveVictim adversary implements the scenario; the
// whole topology x algorithm grid runs as one gdp::exp campaign with P0 as
// the tracked (victim) philosopher.
//
// Expected shape: the victim's max hunger under GDP1 exceeds GDP2c's by
// orders of magnitude; GDP2c's per-philosopher meal distribution stays
// balanced (Jain close to 1) even under attack; total progress holds for
// both (Theorem 3).
#include "bench_util.hpp"

#include "gdp/common/strings.hpp"
#include "gdp/exp/runner.hpp"
#include "gdp/graph/builders.hpp"

using namespace gdp;

int main() {
  bench::enable_obs();
  bench::banner("E7: lockout-freedom under the §5 adversary",
                "section 5 (GDP1 not lockout-free) + Theorem 4 (GDP2 is)",
                "victim hunger: gdp1 >> gdp2c; both keep global progress");

  exp::CampaignSpec spec;
  spec.name = "lockout";
  spec.seed = 777;
  spec.trials = 12;
  spec.topologies = {graph::classic_ring(3), graph::classic_ring(5), graph::fig1a()};
  spec.algorithms = {"lr1", "lr2", "gdp1", "gdp2", "gdp2c"};
  spec.schedulers = {exp::starve_victim(/*victim=*/0)};
  spec.engine.max_steps = 150'000;
  spec.tracked = 0;  // the victim
  const auto result = exp::run_campaign(spec);

  // Cells arrive topology-major, algorithm-minor: one table per topology.
  auto cell = result.cells.begin();
  for (const auto& t : spec.topologies) {
    std::printf("topology %s (victim = P0):\n", t.name().c_str());
    stats::Table table({"algorithm", "victim max hunger (mean)", "victim meals (mean)",
                        "total meals (mean)", "jain (mean)"});
    for (const std::string& name : spec.algorithms) {
      table.add_row({name, format_double(cell->tracked_hunger().mean(), 0),
                     format_double(cell->tracked_meals().mean(), 1),
                     format_double(cell->meals().mean(), 0),
                     format_double(cell->jain().mean(), 3)});
      ++cell;
    }
    table.print();
    std::printf("\n");
  }

  std::printf("Expected reading: gdp1's victim hunger approaches the full run length\n"
              "(starved); gdp2c bounds it via Cond on every take. The literal gdp2 sits\n"
              "in between (the Table 4 erratum: courtesy only on the first take).\n");
  bench::write_bench_report("lockout");
  return 0;
}
