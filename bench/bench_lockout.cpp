// E7 — lockout-freedom: GDP1 starves under the §5 adversary; GDP2
// (courteous, Theorem 4) does not.
//
// Paper (§5): "consider two adjacent philosophers P1, P2 sharing fork f
// whose nr is smaller than P1's other fork g. P1 keeps selecting g as first
// fork, and the scheduler schedules P1's second-fork attempt only when f is
// held by P2" — GDP1 is not lockout-free; GDP2 adds LR2's machinery and is
// (Theorem 4). The StarveVictim adversary implements the scenario.
//
// Expected shape: the victim's max hunger under GDP1 exceeds GDP2c's by
// orders of magnitude; GDP2c's per-philosopher meal distribution stays
// balanced (Jain close to 1) even under attack; total progress holds for
// both (Theorem 3).
#include "bench_util.hpp"

#include "gdp/common/strings.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/sim/schedulers/starve_victim.hpp"
#include "gdp/stats/jain.hpp"
#include "gdp/stats/online.hpp"

using namespace gdp;

namespace {

struct LockoutRow {
  stats::OnlineStats victim_hunger;
  stats::OnlineStats victim_meals;
  stats::OnlineStats total_meals;
  stats::OnlineStats jain;
};

LockoutRow measure(const std::string& name, const graph::Topology& t, int trials,
                   std::uint64_t steps) {
  LockoutRow row;
  for (int i = 0; i < trials; ++i) {
    const auto algo = algos::make_algorithm(name);
    sim::StarveVictim sched(*algo, sim::StarveVictim::Config{.victim = 0, .hard_cap = 0});
    rng::Rng rng(static_cast<std::uint64_t>(777 * i + 5));
    sim::EngineConfig cfg;
    cfg.max_steps = steps;
    const auto r = sim::run(*algo, t, sched, rng, cfg);
    row.victim_hunger.add(static_cast<double>(r.max_hunger_of[0]));
    row.victim_meals.add(static_cast<double>(r.meals_of[0]));
    row.total_meals.add(static_cast<double>(r.total_meals));
    row.jain.add(stats::jain_index(r.meals_of));
  }
  return row;
}

}  // namespace

int main() {
  bench::banner("E7: lockout-freedom under the §5 adversary",
                "section 5 (GDP1 not lockout-free) + Theorem 4 (GDP2 is)",
                "victim hunger: gdp1 >> gdp2c; both keep global progress");

  constexpr int kTrials = 12;
  constexpr std::uint64_t kSteps = 150'000;

  for (const auto& t : {graph::classic_ring(3), graph::classic_ring(5), graph::fig1a()}) {
    std::printf("topology %s (victim = P0):\n", t.name().c_str());
    stats::Table table({"algorithm", "victim max hunger (mean)", "victim meals (mean)",
                        "total meals (mean)", "jain (mean)"});
    for (const std::string name : {"lr1", "lr2", "gdp1", "gdp2", "gdp2c"}) {
      const auto row = measure(name, t, kTrials, kSteps);
      table.add_row({name, format_double(row.victim_hunger.mean(), 0),
                     format_double(row.victim_meals.mean(), 1),
                     format_double(row.total_meals.mean(), 0),
                     format_double(row.jain.mean(), 3)});
    }
    table.print();
    std::printf("\n");
  }

  std::printf("Expected reading: gdp1's victim hunger approaches the full run length\n"
              "(starved); gdp2c bounds it via Cond on every take. The literal gdp2 sits\n"
              "in between (the Table 4 erratum: courtesy only on the first take).\n");
  return 0;
}
