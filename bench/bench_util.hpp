// Shared helpers for the experiment harnesses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "gdp/algos/algorithm.hpp"
#include "gdp/graph/topology.hpp"
#include "gdp/obs/obs.hpp"
#include "gdp/obs/timeline.hpp"
#include "gdp/rng/rng.hpp"
#include "gdp/sim/engine.hpp"
#include "gdp/sim/schedulers/basic.hpp"
#include "gdp/stats/table.hpp"

namespace gdp::bench {

inline void banner(const std::string& experiment, const std::string& paper_artifact,
                   const std::string& expectation) {
  std::printf("=== %s ===\n", experiment.c_str());
  std::printf("Paper artifact : %s\n", paper_artifact.c_str());
  std::printf("Expected shape : %s\n\n", expectation.c_str());
}

/// One fair simulation run with default instrumentation.
inline sim::RunResult fair_run(const std::string& algo_name, const graph::Topology& t,
                               std::uint64_t seed, std::uint64_t steps,
                               algos::AlgoConfig config = {}) {
  const auto algo = algos::make_algorithm(algo_name, config);
  sim::LongestWaiting sched;
  rng::Rng rng(seed);
  sim::EngineConfig cfg;
  cfg.max_steps = steps;
  return sim::run(*algo, t, sched, rng, cfg);
}

inline std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }

/// Benches record metrics by default: recording costs nothing measurable
/// against bench workloads and the run report replaces the hand-rolled
/// BENCH lines. GDP_OBS=0 in the environment still opts out.
inline void enable_obs() {
  const char* v = std::getenv("GDP_OBS");
  if (v != nullptr && v[0] == '0' && v[1] == '\0') return;
  obs::set_enabled(true);
}

/// Snapshots the obs registry into BENCH_<name>.json (the versioned
/// obs::report_json schema) in the working directory and announces the
/// path; when the timeline plane is on (GDP_OBS_TIMELINE), also drains the
/// event rings into TRACE_<name>.json (Chrome trace-event format, loadable
/// in Perfetto — validated by tools/obs/summarize_trace.py). Every bench
/// main calls this once on exit. The two planes gate independently: either
/// file is written iff its plane is enabled.
inline void write_bench_report(const std::string& name,
                               std::vector<std::pair<std::string, std::string>> meta = {}) {
  if (obs::enabled()) {
    const std::string path = "BENCH_" + name + ".json";
    if (obs::write_report(path, name, meta)) {
      std::printf("report: %s (gdp_obs_schema %d)\n", path.c_str(), obs::kReportSchema);
    } else {
      std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
    }
  }
  if (obs::timeline::enabled()) {
    const std::string trace_path = "TRACE_" + name + ".json";
    if (obs::timeline::write_trace(trace_path, name)) {
      std::printf("trace: %s (chrome trace-event json)\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "warning: could not write %s\n", trace_path.c_str());
    }
  }
}

}  // namespace gdp::bench
