// Shared helpers for the experiment harnesses.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

#include "gdp/algos/algorithm.hpp"
#include "gdp/graph/topology.hpp"
#include "gdp/rng/rng.hpp"
#include "gdp/sim/engine.hpp"
#include "gdp/sim/schedulers/basic.hpp"
#include "gdp/stats/table.hpp"

namespace gdp::bench {

inline void banner(const std::string& experiment, const std::string& paper_artifact,
                   const std::string& expectation) {
  std::printf("=== %s ===\n", experiment.c_str());
  std::printf("Paper artifact : %s\n", paper_artifact.c_str());
  std::printf("Expected shape : %s\n\n", expectation.c_str());
}

/// One fair simulation run with default instrumentation.
inline sim::RunResult fair_run(const std::string& algo_name, const graph::Topology& t,
                               std::uint64_t seed, std::uint64_t steps,
                               algos::AlgoConfig config = {}) {
  const auto algo = algos::make_algorithm(algo_name, config);
  sim::LongestWaiting sched;
  rng::Rng rng(seed);
  sim::EngineConfig cfg;
  cfg.max_steps = steps;
  return sim::run(*algo, t, sched, rng, cfg);
}

inline std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }

/// Wall-clock stopwatch for phase timings (speedup reporting).
class Stopwatch {
 public:
  // gdp-lint: allow(wall-clock) — timing-only; feeds speedup reports, never results
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    // gdp-lint: allow(wall-clock) — timing-only; feeds speedup reports, never results
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace gdp::bench
