// E9 — the §1 baselines on classic vs generalized topologies.
//
// Paper (§1): four standard escapes exist when symmetry or full distribution
// is dropped — fork ordering, colored alternation, a central monitor, and
// the n-1 ticket box. We measure all four against GDP on the classic ring
// and on generalized systems. Expected shape:
//   ordered    : works everywhere (it is the partial order GDP converges to)
//                but is not symmetric;
//   colored    : only applicable to even rings (validation rejects the rest);
//   arbiter    : works everywhere but is centralized (not distributed);
//   ticket     : safe on the ring, DEADLOCKS on generalized systems — the
//                n-1 argument needs the full-ring circular wait;
//   gdp1/gdp2c : symmetric, fully distributed, work everywhere.
#include "bench_util.hpp"

#include "gdp/common/check.hpp"
#include "gdp/common/strings.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/stats/jain.hpp"

using namespace gdp;

int main() {
  bench::banner("E9: the introduction's baselines",
                "section 1's four non-symmetric / non-distributed solutions",
                "ticket deadlocks off the ring; colored only fits even rings; GDP everywhere");

  const graph::Topology systems[] = {graph::classic_ring(6), graph::fig1a(),
                                     graph::parallel_arcs(4), graph::ring_with_chord(6),
                                     graph::star(6)};
  constexpr std::uint64_t kSteps = 120'000;

  stats::Table table({"system", "algorithm", "symmetric", "distributed", "result", "meals",
                      "jain"});
  for (const auto& t : systems) {
    for (const std::string name : {"ordered", "colored", "arbiter", "ticket", "gdp1", "gdp2c"}) {
      const auto algo = algos::make_algorithm(name);
      std::string result;
      std::string meals = "-";
      std::string jain = "-";
      try {
        algo->validate(t);
        // Deadlock probability for ticket depends on scheduling luck; run a
        // few seeds and report the worst outcome.
        bool deadlocked = false;
        sim::RunResult last;
        for (std::uint64_t seed = 0; seed < 5 && !deadlocked; ++seed) {
          last = bench::fair_run(name, t, seed, kSteps);
          deadlocked = last.deadlocked;
          // LongestWaiting is deterministic; vary with uniform for ticket.
          if (name == "ticket" && !deadlocked) {
            const auto a2 = algos::make_algorithm(name);
            sim::RandomUniform sched;
            rng::Rng rng(seed);
            sim::EngineConfig cfg;
            cfg.max_steps = kSteps;
            last = sim::run(*a2, t, sched, rng, cfg);
            deadlocked = last.deadlocked;
          }
        }
        result = deadlocked ? "DEADLOCK" : "ok";
        meals = bench::fmt_u64(last.total_meals);
        jain = format_double(stats::jain_index(last.meals_of), 3);
      } catch (const PreconditionError&) {
        result = "not applicable";
      }
      table.add_row({t.name(), name, algo->symmetric() ? "yes" : "no",
                     algo->fully_distributed() ? "yes" : "no", result, meals, jain});
    }
    table.add_rule();
  }
  table.print();
  return 0;
}
