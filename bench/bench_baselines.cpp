// E9 — the §1 baselines on classic vs generalized topologies.
//
// Paper (§1): four standard escapes exist when symmetry or full distribution
// is dropped — fork ordering, colored alternation, a central monitor, and
// the n-1 ticket box. We measure all four against GDP on the classic ring
// and on generalized systems, as one gdp::exp campaign (skip_invalid marks
// the cells an algorithm's validate() rejects, e.g. colored off an even
// ring). Deadlock probability depends on scheduling luck, so every cell
// runs several seeds under both the deterministic longest-waiting scheduler
// and the uniform random one, and reports the worst outcome. Expected
// shape:
//   ordered    : works everywhere (it is the partial order GDP converges
//                to) but is not symmetric;
//   colored    : only applicable to even rings (validation rejects the rest);
//   arbiter    : works everywhere but is centralized (not distributed);
//   ticket     : safe on the ring, DEADLOCKS on generalized systems — the
//                n-1 argument needs the full-ring circular wait;
//   gdp1/gdp2c : symmetric, fully distributed, work everywhere.
#include "bench_util.hpp"

#include "gdp/common/strings.hpp"
#include "gdp/exp/runner.hpp"
#include "gdp/graph/builders.hpp"

using namespace gdp;

int main() {
  bench::enable_obs();
  bench::banner("E9: the introduction's baselines",
                "section 1's four non-symmetric / non-distributed solutions",
                "ticket deadlocks off the ring; colored only fits even rings; GDP everywhere");

  exp::CampaignSpec spec;
  spec.name = "baselines";
  spec.seed = 90'000;
  spec.trials = 5;
  spec.topologies = {graph::classic_ring(6), graph::fig1a(), graph::parallel_arcs(4),
                     graph::ring_with_chord(6), graph::star(6)};
  spec.algorithms = {"ordered", "colored", "arbiter", "ticket", "gdp1", "gdp2c"};
  spec.schedulers = {exp::longest_waiting(), exp::uniform()};
  spec.engine.max_steps = 120'000;
  spec.skip_invalid = true;
  const auto result = exp::run_campaign(spec);

  const std::size_t schedulers = spec.schedulers.size();
  stats::Table table({"system", "algorithm", "symmetric", "distributed", "result", "meals",
                      "jain"});
  for (std::size_t ti = 0; ti < spec.topologies.size(); ++ti) {
    for (std::size_t a = 0; a < spec.algorithms.size(); ++a) {
      const auto algo = algos::make_algorithm(spec.algorithms[a]);
      // Cells are topology-major, scheduler innermost.
      const std::size_t base = (ti * spec.algorithms.size() + a) * schedulers;
      const auto& lw = result.at(base);       // longest-waiting cell
      const auto& uni = result.at(base + 1);  // uniform cell
      std::string verdict;
      std::string meals = "-";
      std::string jain = "-";
      if (lw.skipped()) {
        verdict = "not applicable";
      } else {
        const bool deadlocked = lw.deadlocks() + uni.deadlocks() > 0;
        verdict = deadlocked ? "DEADLOCK" : "ok";
        meals = bench::fmt_u64(static_cast<std::uint64_t>(lw.meals().mean()));
        jain = format_double(lw.jain().mean(), 3);
      }
      table.add_row({spec.topologies[ti].name(), spec.algorithms[a],
                     algo->symmetric() ? "yes" : "no",
                     algo->fully_distributed() ? "yes" : "no", verdict, meals, jain});
    }
    table.add_rule();
  }
  table.print();
  bench::write_bench_report("baselines");
  return 0;
}
