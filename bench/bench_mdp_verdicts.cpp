// E5 — the machine-checked theorem table (Theorems 1-4 on small instances).
//
// For every (algorithm x topology) pair small enough to explore exhaustively
// we report: progress under every fair adversary (Theorem 3's property),
// lockout-freedom for every philosopher (Theorem 4's property), state
// counts, and the expected steps-to-first-meal under the uniform fair
// scheduler. Expected shape:
//   lr1: progress on rings only; never lockout-free;
//   lr2: progress except on Theorem-2 graphs; lockout-free on rings;
//   gdp1: progress everywhere; not lockout-free (§5);
//   gdp2 (Table 4 literal): progress everywhere; NOT lockout-free on the
//        ring — the reproduction erratum (Cond skipped on the second take);
//   gdp2c (prose-faithful): progress + lockout-freedom everywhere checked.
#include "bench_util.hpp"

#include "gdp/common/strings.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/mdp/chain_analysis.hpp"
#include "gdp/mdp/fair_progress.hpp"

using namespace gdp;

int main() {
  bench::banner("E5: model-checked verdicts (Theorems 1-4)",
                "Theorems 1, 2, 3, 4 (+ the Table 4 erratum)",
                "see header comment of this file");

  const graph::Topology topologies[] = {graph::classic_ring(3), graph::parallel_arcs(3),
                                        graph::ring_with_pendant(3)};
  const std::string algorithms[] = {"lr1", "lr2", "gdp1", "gdp2", "gdp2c"};

  stats::Table table({"algorithm", "topology", "states", "progress", "lockout-free",
                      "E[steps to 1st meal] (uniform)"});
  for (const std::string& name : algorithms) {
    for (const auto& t : topologies) {
      const auto algo = algos::make_algorithm(name);
      // The book-keeping algorithms explode on ring+pendant (> 4M states);
      // a tighter cap keeps the run short and the rows honestly "unknown".
      const std::size_t cap = (name == "gdp2" || name == "gdp2c") ? 1'000'000 : 4'000'000;
      const auto model = mdp::explore(*algo, t, cap);
      const auto progress = mdp::check_fair_progress(model);

      bool lockout_free = true;
      bool lockout_known = true;
      for (PhilId v = 0; v < t.num_phils(); ++v) {
        const auto lf = mdp::check_lockout_freedom(model, v);
        if (lf.verdict == mdp::Verdict::kUnknownTruncated) lockout_known = false;
        if (lf.verdict == mdp::Verdict::kProgressFails) lockout_free = false;
      }

      mdp::ChainAnalysis chain;
      if (!model.truncated()) chain = mdp::analyze_uniform_chain(model);
      auto verdict_str = [](mdp::Verdict v) {
        switch (v) {
          case mdp::Verdict::kProgressCertain: return "yes (certified)";
          case mdp::Verdict::kProgressFails: return "NO (trap found)";
          default: return "unknown";
        }
      };
      table.add_row({name, t.name(), std::to_string(model.num_states()),
                     verdict_str(progress.verdict),
                     !lockout_known ? "unknown" : (lockout_free ? "yes (certified)" : "NO"),
                     chain.expected_converged ? format_double(chain.expected_steps, 1) : "n/a"});
    }
    table.add_rule();
  }
  table.print();

  std::printf("\nReading guide: 'NO (trap found)' = a reachable fair end component avoiding\n"
              "the eating set exists — a fair adversary region realizing the paper's\n"
              "hand-built strategies. gdp2 vs gdp2c isolates the Table 4 erratum.\n");
  return 0;
}
