// E5 — the machine-checked theorem table (Theorems 1-4 on small instances).
//
// For every (algorithm x topology) pair small enough to explore exhaustively
// we report: progress under every fair adversary (Theorem 3's property),
// lockout-freedom for every philosopher (Theorem 4's property), state
// counts, the expected steps-to-first-meal under the uniform fair scheduler
// (exact, from the chain analysis), and the same quantity sampled through a
// gdp::exp campaign as a cross-check of the exact value. Expected shape:
//   lr1: progress on rings only; never lockout-free;
//   lr2: progress except on Theorem-2 graphs; lockout-free on rings;
//   gdp1: progress everywhere; not lockout-free (§5);
//   gdp2 (Table 4 literal): progress everywhere; NOT lockout-free on the
//        ring — the reproduction erratum (Cond skipped on the second take);
//   gdp2c (prose-faithful): progress + lockout-freedom everywhere checked;
//   sampled E[steps to first meal] ≈ exact (within sampling noise).
//
// Verdicts run on the parallel model checker (gdp::mdp::par); the sampling
// cross-check runs as one campaign on the shared work-stealing pool.
#include "bench_util.hpp"

#include <thread>

#include "gdp/common/strings.hpp"
#include "gdp/exp/runner.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/mdp/chain_analysis.hpp"
#include "gdp/mdp/par/par.hpp"
#include "gdp/mdp/quant/quant.hpp"

using namespace gdp;

int main() {
  bench::enable_obs();
  bench::banner("E5: model-checked verdicts (Theorems 1-4)",
                "Theorems 1, 2, 3, 4 (+ the Table 4 erratum)",
                "see header comment of this file");

  const std::vector<graph::Topology> topologies = {
      graph::classic_ring(3), graph::parallel_arcs(3), graph::ring_with_pendant(3)};
  const std::vector<std::string> algorithms = {"lr1", "lr2", "gdp1", "gdp2", "gdp2c"};

  // The sampling side, ported onto the campaign Runner: every
  // (algorithm x topology) cell runs uniform-scheduler trials in parallel
  // with deterministic per-trial seeds; mean first-meal step approximates
  // the chain analysis' exact expectation.
  exp::CampaignSpec sampling;
  sampling.name = "mdp-verdicts-sampling";
  sampling.seed = 50'000;
  sampling.trials = 48;
  sampling.topologies = topologies;
  sampling.algorithms = algorithms;
  sampling.schedulers = {exp::uniform()};
  sampling.engine.max_steps = 40'000;
  const auto sampled = exp::run_campaign(sampling);
  auto sampled_cell = [&](std::size_t algo, std::size_t topo) -> const exp::CellAggregate& {
    // Cells are topology-major (topology x algorithm x scheduler).
    return sampled.at(topo * algorithms.size() + algo);
  };

  // Quantitative columns run at one and at hardware_concurrency workers so
  // the thread-invariance of the certified intervals keeps getting
  // exercised even though only the last run feeds the table.
  const int hw = std::max(1, static_cast<int>(std::thread::hardware_concurrency()));

  stats::Table table({"algorithm", "topology", "states", "progress", "lockout-free", "Pmin",
                      "E[worst]", "E[1st meal] exact", "E[1st meal] sampled"});
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    const std::string& name = algorithms[a];
    for (std::size_t ti = 0; ti < topologies.size(); ++ti) {
      const auto& t = topologies[ti];
      const auto algo = algos::make_algorithm(name);
      // The book-keeping algorithms explode on ring+pendant (> 4M states);
      // a tighter cap keeps the run short and the rows honestly "unknown".
      mdp::par::CheckOptions opts;
      opts.max_states = (name == "gdp2" || name == "gdp2c") ? 1'000'000 : 4'000'000;
      const auto model = mdp::par::explore(*algo, t, opts);
      const auto progress = mdp::par::check_fair_progress(model, ~std::uint64_t{0}, opts);

      bool lockout_free = true;
      bool lockout_known = true;
      for (PhilId v = 0; v < t.num_phils(); ++v) {
        const auto lf = mdp::par::check_lockout_freedom(model, v, opts);
        if (lf.verdict == mdp::Verdict::kUnknownTruncated) lockout_known = false;
        if (lf.verdict == mdp::Verdict::kProgressFails) lockout_free = false;
      }

      // Certified fair-adversary bounds (Pmin of the first meal, worst-case
      // expected productive steps) at both ends of the thread range — the
      // run itself keeps pinning thread-invariance. The machine-readable
      // copy is BENCH_mdp_verdicts.json (quant.* counters in the registry
      // report); the deprecated printf "BENCH quant" lines are gone after
      // their one-release grace period.
      mdp::quant::QuantResult quant;
      std::vector<int> thread_counts{1};
      if (hw > 1) thread_counts.push_back(hw);
      for (const int threads : thread_counts) {
        mdp::quant::QuantOptions qopts;
        qopts.threads = threads;
        qopts.max_states = opts.max_states;
        quant = mdp::quant::analyze(model, ~std::uint64_t{0}, qopts);
      }

      mdp::ChainAnalysis chain;
      if (!model.truncated()) chain = mdp::analyze_uniform_chain(model);
      auto verdict_str = [](mdp::Verdict v) {
        switch (v) {
          case mdp::Verdict::kProgressCertain: return "yes (certified)";
          case mdp::Verdict::kProgressFails: return "NO (trap found)";
          default: return "unknown";
        }
      };
      const auto& cell = sampled_cell(a, ti);
      const bool cell_sampled = cell.first_meal().count() > 0;
      const bool certified = quant.certainty == mdp::quant::Certainty::kCertified;
      table.add_row({name, t.name(), std::to_string(model.num_states()),
                     verdict_str(progress.verdict),
                     !lockout_known ? "unknown" : (lockout_free ? "yes (certified)" : "NO"),
                     certified ? format_double((quant.p_min.lower + quant.p_min.upper) / 2, 4)
                               : "unknown",
                     !certified            ? "unknown"
                     : quant.e_max.finite() ? format_double((quant.e_max.lower + quant.e_max.upper) / 2, 1)
                                            : "inf",
                     chain.expected_converged ? format_double(chain.expected_steps, 1) : "n/a",
                     cell_sampled ? format_double(cell.first_meal().mean(), 1) : "n/a"});
    }
    table.add_rule();
  }
  table.print();

  std::printf("\nReading guide: 'NO (trap found)' = a reachable fair end component avoiding\n"
              "the eating set exists — a fair adversary region realizing the paper's\n"
              "hand-built strategies. gdp2 vs gdp2c isolates the Table 4 erratum. Pmin and\n"
              "E[worst] are gdp::mdp::quant's certified fair-adversary bounds (midpoints of\n"
              "intervals of width <= 1e-6): the minimum first-meal probability and the\n"
              "worst-case expected productive steps to a meal (inf exactly when a fair trap\n"
              "is reachable without a meal). The sampled column is %d uniform-scheduler\n"
              "trials per cell on the campaign runner; it should bracket the exact\n"
              "expectation.\n",
              sampling.trials);
  bench::write_bench_report("mdp_verdicts");
  return 0;
}
