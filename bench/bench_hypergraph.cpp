// E11 — the hypergraph open problem (§6): philosophers needing d >= 2 forks.
//
// Paper: "Another open problem ... the even more general case of
// hypergraph-like connection structures, in which a philosopher may need
// more than two forks to eat." GDP-H extends GDP1's random partial-order
// idea to d forks (see gdp/algos/gdp_hyper.hpp). Expected shape: progress
// and (empirically) no starvation on thick rings and random hypergraphs;
// throughput falls as d grows (longer conflict chains); d = 2 matches GDP1.
#include "bench_util.hpp"

#include "gdp/algos/gdp_hyper.hpp"
#include "gdp/common/strings.hpp"
#include "gdp/graph/hypergraph.hpp"
#include "gdp/stats/online.hpp"

using namespace gdp;

int main() {
  bench::banner("E11: hypergraph extension (GDP-H)",
                "section 6 future work (d-fork philosophers)",
                "progress everywhere; throughput decreases with arity d");

  constexpr std::uint64_t kSteps = 300'000;
  constexpr int kTrials = 8;

  std::printf("(a) thick rings: philosopher i needs forks i..i+d-1 (mod k):\n");
  stats::Table rings({"k", "d", "meals (mean)", "everyone ate", "first meal", "deadlocks"});
  for (const auto& [k, d] : std::vector<std::pair<int, int>>{
           {8, 2}, {8, 3}, {8, 4}, {8, 5}, {12, 3}, {12, 6}, {16, 4}}) {
    stats::OnlineStats meals, first;
    bool everyone = true;
    bool deadlock = false;
    for (int i = 0; i < kTrials; ++i) {
      rng::Rng rng(static_cast<std::uint64_t>(1000 * k + 10 * d + i));
      algos::HyperConfig cfg;
      cfg.max_steps = kSteps;
      const auto r = algos::run_gdp_hyper(graph::hyper_ring(k, d), rng, cfg);
      meals.add(static_cast<double>(r.total_meals));
      if (r.first_meal_step != ~std::uint64_t{0}) first.add(static_cast<double>(r.first_meal_step));
      everyone = everyone && r.everyone_ate();
      deadlock = deadlock || r.deadlocked;
    }
    rings.add_row({std::to_string(k), std::to_string(d), format_double(meals.mean(), 0),
                   everyone ? "yes" : "NO", format_double(first.mean(), 1),
                   deadlock ? "DEADLOCK" : "none"});
  }
  rings.print();

  std::printf("\n(b) random hypergraphs (k forks, n philosophers, arity d):\n");
  stats::Table rand_table({"k", "n", "d", "meals (mean)", "everyone ate", "deadlocks"});
  rng::Rng topo_rng(42);
  for (const auto& [k, n, d] : std::vector<std::tuple<int, int, int>>{
           {8, 10, 3}, {10, 14, 3}, {10, 10, 4}, {12, 16, 5}}) {
    stats::OnlineStats meals;
    bool everyone = true;
    bool deadlock = false;
    for (int i = 0; i < kTrials; ++i) {
      const auto t = graph::hyper_random(k, n, d, topo_rng);
      rng::Rng rng(static_cast<std::uint64_t>(77 * i + 3));
      algos::HyperConfig cfg;
      cfg.max_steps = kSteps;
      const auto r = algos::run_gdp_hyper(t, rng, cfg);
      meals.add(static_cast<double>(r.total_meals));
      everyone = everyone && r.everyone_ate();
      deadlock = deadlock || r.deadlocked;
    }
    rand_table.add_row({std::to_string(k), std::to_string(n), std::to_string(d),
                        format_double(meals.mean(), 0), everyone ? "yes" : "NO",
                        deadlock ? "DEADLOCK" : "none"});
  }
  rand_table.print();
  return 0;
}
