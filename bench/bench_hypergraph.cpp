// E11 — the hypergraph open problem (§6): philosophers needing d >= 2 forks.
//
// Paper: "Another open problem ... the even more general case of
// hypergraph-like connection structures, in which a philosopher may need
// more than two forks to eat." GDP-H extends GDP1's random partial-order
// idea to d forks (see gdp/algos/gdp_hyper.hpp). The GDP-H runner has its
// own engine, so the trial grids run on the shared work-stealing pool
// directly (per-trial gdp::exp seeds, index-ordered fold — output identical
// for any worker count). Expected shape: progress and (empirically) no
// starvation on thick rings and random hypergraphs; throughput falls as d
// grows (longer conflict chains); d = 2 matches GDP1.
#include "bench_util.hpp"

#include "gdp/algos/gdp_hyper.hpp"
#include "gdp/common/pool.hpp"
#include "gdp/common/strings.hpp"
#include "gdp/exp/seeding.hpp"
#include "gdp/graph/hypergraph.hpp"
#include "gdp/stats/online.hpp"

using namespace gdp;

namespace {

constexpr std::uint64_t kSteps = 300'000;
constexpr std::size_t kTrials = 8;
constexpr std::uint64_t kCampaignSeed = 110'000;

/// Folds one row's parked trial results in index order.
struct RowFold {
  stats::OnlineStats meals, first;
  bool everyone = true;
  bool deadlock = false;

  void fold(const algos::HyperResult& r) {
    meals.add(static_cast<double>(r.total_meals));
    if (r.first_meal_step != ~std::uint64_t{0}) first.add(static_cast<double>(r.first_meal_step));
    everyone = everyone && r.everyone_ate();
    deadlock = deadlock || r.deadlocked;
  }
};

/// Runs rows x kTrials GDP-H trials on the pool. `topology_of(row, trial)`
/// lets the random rows sample a fresh hypergraph per trial (built up
/// front, sequentially, so the grid is identical for any worker count).
template <typename TopologyOf>
std::vector<RowFold> run_grid(std::size_t rows, const TopologyOf& topology_of,
                              std::uint64_t seed_lane) {
  std::vector<algos::HyperResult> results(rows * kTrials);
  common::parallel_for(results.size(), /*threads=*/0, [&](std::uint32_t id) {
    const std::size_t row = id / kTrials;
    const std::size_t trial = id % kTrials;
    rng::Rng rng(exp::trial_seed(kCampaignSeed + seed_lane, row, trial));
    algos::HyperConfig cfg;
    cfg.max_steps = kSteps;
    results[id] = algos::run_gdp_hyper(topology_of(row, trial), rng, cfg);
  });
  std::vector<RowFold> folds(rows);
  for (std::size_t row = 0; row < rows; ++row) {
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      folds[row].fold(results[row * kTrials + trial]);
    }
  }
  return folds;
}

}  // namespace

int main() {
  bench::enable_obs();
  bench::banner("E11: hypergraph extension (GDP-H)",
                "section 6 future work (d-fork philosophers)",
                "progress everywhere; throughput decreases with arity d");

  std::printf("(a) thick rings: philosopher i needs forks i..i+d-1 (mod k):\n");
  const std::vector<std::pair<int, int>> ring_rows = {{8, 2},  {8, 3},  {8, 4}, {8, 5},
                                                      {12, 3}, {12, 6}, {16, 4}};
  std::vector<graph::HyperTopology> ring_topologies;
  for (const auto& [k, d] : ring_rows) ring_topologies.push_back(graph::hyper_ring(k, d));
  const auto ring_folds = run_grid(
      ring_rows.size(),
      [&](std::size_t row, std::size_t) -> const graph::HyperTopology& {
        return ring_topologies[row];
      },
      0);

  stats::Table rings({"k", "d", "meals (mean)", "everyone ate", "first meal", "deadlocks"});
  for (std::size_t row = 0; row < ring_rows.size(); ++row) {
    const auto& f = ring_folds[row];
    rings.add_row({std::to_string(ring_rows[row].first), std::to_string(ring_rows[row].second),
                   format_double(f.meals.mean(), 0), f.everyone ? "yes" : "NO",
                   format_double(f.first.mean(), 1), f.deadlock ? "DEADLOCK" : "none"});
  }
  rings.print();

  std::printf("\n(b) random hypergraphs (k forks, n philosophers, arity d):\n");
  const std::vector<std::tuple<int, int, int>> rand_rows = {
      {8, 10, 3}, {10, 14, 3}, {10, 10, 4}, {12, 16, 5}};
  // A fresh random hypergraph per (row, trial) — deadlock hunting wants
  // shape diversity, not 8 repeats of one draw.
  rng::Rng topo_rng(42);
  std::vector<graph::HyperTopology> rand_topologies;
  for (const auto& [k, n, d] : rand_rows) {
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      rand_topologies.push_back(graph::hyper_random(k, n, d, topo_rng));
    }
  }
  const auto rand_folds = run_grid(
      rand_rows.size(),
      [&](std::size_t row, std::size_t trial) -> const graph::HyperTopology& {
        return rand_topologies[row * kTrials + trial];
      },
      1);

  stats::Table rand_table({"k", "n", "d", "meals (mean)", "everyone ate", "deadlocks"});
  for (std::size_t row = 0; row < rand_rows.size(); ++row) {
    const auto& [k, n, d] = rand_rows[row];
    const auto& f = rand_folds[row];
    rand_table.add_row({std::to_string(k), std::to_string(n), std::to_string(d),
                        format_double(f.meals.mean(), 0), f.everyone ? "yes" : "NO",
                        f.deadlock ? "DEADLOCK" : "none"});
  }
  rand_table.print();
  bench::write_bench_report("hypergraph");
  return 0;
}
