// E3 — Theorem 1: a ring with one extra arc on a ring node defeats LR1.
//
// Paper (Theorem 1 + Figure 2): "Consider a graph G containing a ring
// subgraph H, such that one of the nodes of H has at least three incident
// arcs. Then a fair scheduler for LR1 exists such that the philosophers in
// H make no progress with strictly positive probability."
//
// Two instruments:
//  (a) the model checker decides the statement exactly on small instances
//      (progress *wrt the ring philosophers H*);
//  (b) the generic EatAvoider adversary measures how much a fair greedy
//      adversary can suppress LR1's meal rate on the family vs the plain
//      ring, and cannot suppress GDP1 at all.
// Expected shape: (a) LR1 fails wrt H on every ring+chord/pendant instance
// while GDP1 is certified; (b) LR1's adversarial meal rate collapses off
// the plain ring, GDP1's does not.
#include "bench_util.hpp"

#include "gdp/common/strings.hpp"
#include "gdp/exp/runner.hpp"
#include "gdp/graph/algorithms.hpp"
#include "gdp/graph/builders.hpp"
#include "gdp/mdp/par/par.hpp"

using namespace gdp;

namespace {

std::uint64_t ring_mask(int k) { return (std::uint64_t{1} << k) - 1; }

}  // namespace

int main() {
  bench::enable_obs();
  bench::banner("E3: Theorem 1 (ring + extra arc vs LR1)",
                "Theorem 1 and Figure 2",
                "LR1 loses progress wrt H exactly when the premise holds; GDP1 keeps global progress");

  std::printf("(a) model-checked verdicts (progress wrt the ring philosophers H):\n");
  stats::Table verdicts({"topology", "premise", "lr1 global", "lr1 wrt H", "gdp1 global"});
  struct Case {
    graph::Topology topo;
    int ring_size;
  };
  const Case cases[] = {{graph::classic_ring(3), 3},
                        {graph::classic_ring(4), 4},
                        {graph::ring_with_pendant(3), 3},
                        {graph::ring_with_chord(3), 3},
                        {graph::ring_with_chord(4), 4}};
  for (const auto& c : cases) {
    const bool premise = graph::thm1_premise(c.topo).has_value();
    mdp::par::CheckOptions opts;
    const auto lr1_model = mdp::par::explore(*algos::make_algorithm("lr1"), c.topo, opts);
    const auto lr1_global = mdp::par::check_fair_progress(lr1_model);
    const auto lr1_ring = mdp::par::check_fair_progress(lr1_model, ring_mask(c.ring_size));
    // GDP1's guarantee (Theorem 3) is *global* progress; subset progress is
    // not promised (GDP1 is not lockout-free, §5), so we report the global
    // verdict for it.
    mdp::par::CheckOptions gdp1_opts;
    gdp1_opts.max_states = 3'000'000;
    const auto gdp1_ring = mdp::par::check_fair_progress(*algos::make_algorithm("gdp1"),
                                                         c.topo, gdp1_opts);
    verdicts.add_row({c.topo.name(), premise ? "yes" : "no",
                      lr1_global.holds() ? "progress" : "FAILS",
                      lr1_ring.holds() ? "progress" : "FAILS",
                      gdp1_ring.verdict == mdp::Verdict::kUnknownTruncated
                          ? "unknown"
                          : (gdp1_ring.holds() ? "progress" : "FAILS")});
  }
  verdicts.print();

  std::printf("\n(b) meals conceded to a fair greedy adversary in 120k steps\n"
              "    (one gdp::exp campaign over the topology x algorithm grid):\n");
  exp::CampaignSpec spec;
  spec.name = "thm1-eat-avoider";
  spec.seed = 11;
  spec.trials = 1;
  spec.topologies = {graph::classic_ring(6), graph::ring_with_pendant(5),
                     graph::ring_with_chord(6), graph::fig1a()};
  spec.algorithms = {"lr1", "gdp1"};
  spec.schedulers = {exp::eat_avoider()};
  spec.engine.max_steps = 120'000;
  const auto result = exp::run_campaign(spec);

  stats::Table meals({"topology", "lr1 meals", "gdp1 meals", "lr1 suppressed?"});
  for (std::size_t ti = 0; ti < spec.topologies.size(); ++ti) {
    // Cells are topology-major with algorithm next: lr1 first, then gdp1.
    const auto lr1 = static_cast<std::uint64_t>(result.at(ti * 2).meals().mean());
    const auto gdp1 = static_cast<std::uint64_t>(result.at(ti * 2 + 1).meals().mean());
    meals.add_row({spec.topologies[ti].name(), bench::fmt_u64(lr1), bench::fmt_u64(gdp1),
                   lr1 * 2 < gdp1 ? "strongly" : (lr1 < gdp1 ? "somewhat" : "no")});
  }
  meals.print();
  bench::write_bench_report("thm1_ring_chord");
  return 0;
}
