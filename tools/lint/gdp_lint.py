#!/usr/bin/env python3
"""gdp-lint — the repo-specific determinism and locking-discipline linter.

The engine's contract is that models, MEC decompositions, quantitative
intervals and campaign aggregates are bit-identical at every thread count.
Most ways to silently break that contract are invisible to the compiler and
only probabilistically visible to TSan or the differential tests. This
linter makes the repo's invariants *rules*, checked on every file of
src/ tests/ bench/ examples/ by the `static-analysis` CI job and
`./ci.sh lint`:

  wall-clock          No std::random_device / rand() / srand() / time() /
                      *_clock::now() in result-producing code. All trial
                      randomness derives from exp/seeding.hpp (the one
                      exempt file) so results are a pure function of the
                      campaign seed. src/gdp/obs/ is the one blessed clock
                      site: obs::Span / obs::Stopwatch implement the run
                      report's timing plane and timeline.* the per-worker
                      event rings, and every other wall-clock read is
                      either routed through them or suppressed with a
                      justification.
  obs-outside-span    No chrono clock TYPES (steady_clock / system_clock /
                      high_resolution_clock member state) outside
                      src/gdp/obs/ — hand-rolled stopwatches and event
                      buffers bypass the obs timing plane, so their
                      readings never reach the run report or the timeline
                      trace and tempt result-side use. Hold an obs::Span /
                      obs::TimedSpan, use obs::Stopwatch for time-driven
                      harness behavior, or emit timeline::instant /
                      counter_sample slices instead. Lines that call
                      ::now() are the wall-clock rule's findings, not this
                      rule's.
  unordered-iteration No range-for over an unordered_map/unordered_set
                      (or StateIndex, which wraps one) — hash iteration
                      order is libstdc++-version- and pointer-dependent,
                      the classic silent killer of the index-ordered fold
                      contract. Sort into a canonical order first, or
                      suppress with a justification that no result bit can
                      depend on the order.
  raw-thread          No std::thread / std::jthread outside
                      gdp/common/pool.* — ad-hoc threads bypass the pool's
                      exception funnel and the park-at-index determinism
                      idiom. (std::thread::hardware_concurrency() is fine.)
  fp-parallel-accumulation
                      No compound assignment (+=, -=, *=, /=) to a
                      float/double declared OUTSIDE a parallel region
                      (parallel_for / run_workers / for_range /
                      parallel_chunk_max bodies) — cross-thread float
                      accumulation is both a data race and, even when
                      atomic, order-dependent in the last ulp. Park partial
                      results at task indices and fold them in index order,
                      or use common::parallel_chunk_max.
  unannotated-mutex   Every mutex declared under src/ (std::mutex,
                      std::shared_mutex, common::Mutex) must be referenced
                      by a GDP_GUARDED_BY / GDP_PT_GUARDED_BY /
                      GDP_REQUIRES / GDP_ACQUIRE / GDP_RELEASE /
                      GDP_EXCLUDES annotation in the same file, so Clang's
                      -Wthread-safety (cmake -DGDP_THREAD_SAFETY=ON) has
                      something to check. A mutex that guards nothing
                      statically expressible needs a suppression saying
                      what it guards and why the attribute cannot.
  check-side-effects  GDP_CHECK / GDP_DCHECK / GDP_CHECK_MSG conditions
                      must be side-effect-free (no ++/--/assignment):
                      GDP_DCHECK compiles to an unevaluated sizeof in
                      release builds, so a side effect in the condition
                      makes debug and release behave differently.
  raw-mmap            No raw mmap/munmap/mremap/msync/madvise calls. Memory
                      mapping is I/O with failure modes (SIGBUS on a
                      truncated file, silent partial syncs) that bypass the
                      repo's refusal-over-wrong-answer contract unless the
                      mapping is fingerprint-verified. gdp/mdp/store/ is the
                      one blessed I/O site: its call sites are expected and
                      carry allow() suppressions stating the ownership story;
                      anywhere else, go through gdp::mdp::store instead.

Suppressions are per-rule and inline:

    code();  // gdp-lint: allow(rule-name) — justification
    // gdp-lint: allow(rule-name[, other-rule]) — justification
    next_line_is_covered();

A suppression comment covers its own line; when the line holds nothing but
the comment, it also covers the rest of the comment block plus the first
code line after it. There are no file- or directory-level
baselines: every violation in the tree is either fixed or carries a visible
justification at the site. The only paths skipped wholesale are build
trees and tests/lint_fixtures/ (this linter's own seeded-violation test
corpus, exercised by `ctest -L lint` via --self-test).

Exit status: 0 clean, 1 findings, 2 usage/self-test harness error.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from dataclasses import dataclass

EXTS = {".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h", ".inl"}
SKIP_DIR_NAMES = {"lint_fixtures"}
SKIP_DIR_PREFIXES = ("build",)

# The one rule-level file exemption, part of the wall-clock rule's spec:
# all randomness must derive from here, so it is the definition, not a user.
WALL_CLOCK_EXEMPT = ("src/gdp/exp/seeding.hpp",)

# The one blessed clock directory: gdp::obs implements the timing plane
# (Span, the run report), so both clock rules skip it wholesale.
OBS_BLESSED = "gdp/obs/"

RULES = (
    "wall-clock",
    "obs-outside-span",
    "unordered-iteration",
    "raw-thread",
    "fp-parallel-accumulation",
    "unannotated-mutex",
    "check-side-effects",
    "raw-mmap",
)


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------------------
# Source model: raw text for suppressions, code text (comments and string
# literals blanked, newlines kept) for every rule match.
# ---------------------------------------------------------------------------


def strip_comments_and_strings(text: str) -> str:
    """Returns text with comments, string and char literals replaced by
    spaces. Line structure is preserved exactly so offsets map 1:1."""
    out = []
    i, n = 0, len(text)
    mode = "code"  # code | line_comment | block_comment | string | char | raw
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block_comment"
                out.append("  ")
                i += 2
                continue
            m = re.match(r'R"([^(\s\\]{0,16})\(', text[i:]) if c == "R" else None
            if m:
                mode = "raw"
                raw_delim = ")" + m.group(1) + '"'
                out.append(" " * m.end())
                i += m.end()
                continue
            if c == '"':
                mode = "string"
                out.append(" ")
                i += 1
                continue
            # Char literal: require it to close within a few chars so we do
            # not mistake digit separators (1'000'000) for one.
            if c == "'" and re.match(r"'(\\.|[^'\\])'", text[i:]):
                m2 = re.match(r"'(\\.|[^'\\])'", text[i:])
                out.append(" " * m2.end())
                i += m2.end()
                continue
            out.append(c)
            i += 1
        elif mode == "line_comment":
            if c == "\n":
                mode = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif mode == "block_comment":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif mode == "string":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == '"':
                mode = "code"
                out.append(" ")
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif mode == "raw":
            if text.startswith(raw_delim, i):
                mode = "code"
                out.append(" " * len(raw_delim))
                i += len(raw_delim)
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


SUPPRESS_RE = re.compile(r"gdp-lint:\s*allow\(([^)]*)\)")


def suppressions(raw_lines: list[str], code_lines: list[str]) -> dict[int, set[str]]:
    """line (1-based) -> set of rule names suppressed there."""
    by_line: dict[int, set[str]] = {}
    for idx, raw in enumerate(raw_lines, start=1):
        m = SUPPRESS_RE.search(raw)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        unknown = rules - set(RULES)
        if unknown:
            # An allow() for a rule that does not exist is itself a finding:
            # it silently rots when rules are renamed.
            by_line.setdefault(-idx, set()).update(unknown)  # negative: error marker
            rules -= unknown
        by_line.setdefault(idx, set()).update(rules)
        # A suppression inside a comment block covers every remaining line of
        # the block and the first code line after it — so a justification can
        # span several comment lines without repeating the allow().
        if code_lines[idx - 1].strip() == "":
            j = idx + 1
            while j <= len(raw_lines):
                by_line.setdefault(j, set()).update(rules)
                if code_lines[j - 1].strip() != "":
                    break
                j += 1
    return by_line


def match_paren(text: str, open_idx: int) -> int:
    """Index just past the ')' matching text[open_idx] == '('; -1 if none."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def match_angle(text: str, open_idx: int) -> int:
    """Index just past the '>' matching text[open_idx] == '<'; -1 if none."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "<":
            depth += 1
        elif text[i] == ">":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

WALL_CLOCK_RE = re.compile(
    r"std::random_device|\brandom_device\b|\bsrand\s*\(|\brand\s*\(\s*\)"
    r"|::now\s*\(\s*\)|\bstd::time\s*\(|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"
)


def rule_wall_clock(path: str, code_lines: list[str]) -> list[Finding]:
    norm = path.replace("\\", "/")
    if any(norm.endswith(x) for x in WALL_CLOCK_EXEMPT) or OBS_BLESSED in norm:
        return []
    found = []
    for idx, line in enumerate(code_lines, start=1):
        if WALL_CLOCK_RE.search(line):
            found.append(Finding(
                path, idx, "wall-clock",
                "nondeterministic time/randomness source; results must be a pure "
                "function of the seed (derive randomness via exp/seeding.hpp, "
                "time phases through obs::Span, or suppress with a justification "
                "that this is timing-only)"))
    return found


CLOCK_TYPE_RE = re.compile(r"\bchrono\s*::\s*(?:steady|system|high_resolution)_clock\b")


def rule_obs_outside_span(path: str, code_lines: list[str]) -> list[Finding]:
    norm = path.replace("\\", "/")
    if OBS_BLESSED in norm:
        return []
    found = []
    for idx, line in enumerate(code_lines, start=1):
        if "::now" in line:
            continue  # a live clock read is the wall-clock rule's finding
        if CLOCK_TYPE_RE.search(line):
            found.append(Finding(
                path, idx, "obs-outside-span",
                "hand-rolled stopwatch state (a chrono clock type) outside "
                "gdp/obs/: phase timing goes through obs::Span / "
                "obs::TimedSpan (run report + timeline trace) and "
                "time-driven behavior through obs::Stopwatch, so clock "
                "reads never leak into results — use those, or suppress "
                "with a justification"))
    return found


UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")
ALIAS_RE = re.compile(
    r"\b(?:using\s+(\w+)\s*=\s*[\w:]*unordered_(?:map|set|multimap|multiset)\s*<"
    r"|typedef\s+[\w:]*unordered_(?:map|set|multimap|multiset)\s*<)")
# Repo-known unordered wrapper types (expose unordered begin()/end()).
KNOWN_UNORDERED_TYPES = {"StateIndex"}
RANGE_FOR_RE = re.compile(r"\bfor\s*\(")


def unordered_names(code: str) -> set[str]:
    """Identifiers declared in this file with an unordered container type."""
    names: set[str] = set()
    alias_types = set(KNOWN_UNORDERED_TYPES)
    for m in ALIAS_RE.finditer(code):
        if m.group(1):
            alias_types.add(m.group(1))
    for m in UNORDERED_DECL_RE.finditer(code):
        end = match_angle(code, m.end() - 1)
        if end < 0:
            continue
        dm = re.match(r"\s*&?\s*(\w+)\s*[;,={)\[]", code[end:])
        if dm:
            names.add(dm.group(1))
    for t in alias_types:
        for m in re.finditer(rf"\b{t}\b\s*&?\s+(\w+)\s*[;,={{)]", code):
            names.add(m.group(1))
    return names


def rule_unordered_iteration(path: str, code: str) -> list[Finding]:
    names = unordered_names(code)
    found = []
    for m in RANGE_FOR_RE.finditer(code):
        end = match_paren(code, code.index("(", m.start()))
        if end < 0:
            continue
        header = code[m.start():end]
        if ":" not in header:
            continue  # classic for loop
        range_expr = header.rsplit(":", 1)[1].strip(" )\n")
        # The identifier actually iterated: last member-access component.
        leaf = re.split(r"\.|->", range_expr)[-1].strip(" *&()")
        leaf = leaf.split("[")[0]
        if leaf in names or range_expr.strip(" *&") in names:
            found.append(Finding(
                path, line_of(code, m.start()), "unordered-iteration",
                f"range-for over unordered container '{range_expr}': hash order is "
                "not canonical and silently breaks the index-ordered fold / output "
                "contract — sort first, or suppress with a justification that no "
                "result bit depends on the order"))
    return found


RAW_THREAD_RE = re.compile(r"\bstd::j?thread\b(?!\s*::)")
RAW_THREAD_EXEMPT = ("gdp/common/pool.cpp", "gdp/common/pool.hpp")


def rule_raw_thread(path: str, code_lines: list[str]) -> list[Finding]:
    norm = path.replace("\\", "/")
    if any(norm.endswith(x) for x in RAW_THREAD_EXEMPT):
        return []
    found = []
    for idx, line in enumerate(code_lines, start=1):
        if RAW_THREAD_RE.search(line):
            found.append(Finding(
                path, idx, "raw-thread",
                "raw std::thread/std::jthread outside gdp/common/pool.*: ad-hoc "
                "threads bypass the pool's exception funnel and the park-at-index "
                "determinism idiom (use run_workers/parallel_for, or suppress with "
                "a justification)"))
    return found


PARALLEL_ENTRY_RE = re.compile(
    r"\b(?:common::)?(?:parallel_for|run_workers|for_range|parallel_chunk_max)\s*\(")
COMPOUND_ASSIGN_RE = re.compile(r"([A-Za-z_]\w*(?:(?:\.|->)\w+)*)\s*(\+=|-=|\*=|/=)")
FP_EXEMPT = ("gdp/common/pool.cpp",)  # implements the blessed reductions


def rule_fp_parallel_accumulation(path: str, code: str) -> list[Finding]:
    norm = path.replace("\\", "/")
    if any(norm.endswith(x) for x in FP_EXEMPT):
        return []
    found = []
    for m in PARALLEL_ENTRY_RE.finditer(code):
        open_idx = code.index("(", m.start())
        end = match_paren(code, open_idx)
        if end < 0:
            continue
        region = code[open_idx:end]
        region_base = open_idx
        for am in COMPOUND_ASSIGN_RE.finditer(region):
            lhs = am.group(1)
            # Indexed writes (x[i] += ...) park at an index; the disjointness
            # of indices is the caller's stated contract, not this rule's.
            after = region[am.end(1):am.end(1) + 1]
            if after == "[":
                continue
            leaf = re.split(r"\.|->", lhs)[-1]
            # Declared inside the region: a per-task local accumulator.
            if re.search(rf"\b(?:double|float|auto)\s*&?\s*{re.escape(leaf)}\b", region):
                continue
            # Only flag identifiers the file declares as float/double.
            if not re.search(rf"\b(?:double|float)\b[^;()\n]*\b{re.escape(leaf)}\b", code):
                continue
            found.append(Finding(
                path, line_of(code, region_base + am.start()), "fp-parallel-accumulation",
                f"floating-point accumulation into '{lhs}' captured by a parallel "
                "region: cross-thread float folds are order-dependent in the last "
                "ulp (and usually racy) — park per-task partials at their index "
                "and fold in index order, or use common::parallel_chunk_max"))
    return found


MUTEX_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:gdp::)?(?:common::)?"
    r"(?:std::)?(Mutex|SharedMutex|mutex|shared_mutex)\s+(\w+)\s*[;{]", re.M)
ANNOTATION_REF_RE = (
    "GDP_GUARDED_BY", "GDP_PT_GUARDED_BY", "GDP_REQUIRES", "GDP_REQUIRES_SHARED",
    "GDP_ACQUIRE", "GDP_ACQUIRE_SHARED", "GDP_RELEASE", "GDP_RELEASE_SHARED",
    "GDP_TRY_ACQUIRE", "GDP_EXCLUDES", "GDP_RETURN_CAPABILITY")


def rule_unannotated_mutex(path: str, code: str, in_src: bool) -> list[Finding]:
    if not in_src:
        return []
    found = []
    for m in MUTEX_DECL_RE.finditer(code):
        name = m.group(2)
        referenced = any(
            re.search(rf"\b{macro}\s*\([^)]*\b{re.escape(name)}\b", code)
            for macro in ANNOTATION_REF_RE)
        if not referenced:
            found.append(Finding(
                path, line_of(code, m.start(1)), "unannotated-mutex",
                f"mutex '{name}' has no GDP_GUARDED_BY/GDP_REQUIRES/... client in "
                "this file, so clang -Wthread-safety checks nothing about it — "
                "annotate what it guards (gdp/common/thread_annotations.hpp), or "
                "suppress stating what it protects and why that is inexpressible"))
    return found


CHECK_CALL_RE = re.compile(r"\bGDP_D?CHECK(_MSG)?\s*\(")


def rule_check_side_effects(path: str, code: str) -> list[Finding]:
    found = []
    for m in CHECK_CALL_RE.finditer(code):
        open_idx = code.index("(", m.start())
        end = match_paren(code, open_idx)
        if end < 0:
            continue
        args = code[open_idx + 1:end - 1]
        if m.group(1):  # _MSG: only the condition (first top-level arg)
            depth = 0
            for i, c in enumerate(args):
                if c in "(<[{":
                    depth += 1
                elif c in ")>]}":
                    depth -= 1
                elif c == "," and depth == 0:
                    args = args[:i]
                    break
        cond = args
        effect = None
        if re.search(r"\+\+|--", cond):
            effect = "increment/decrement"
        else:
            scrubbed = re.sub(r"==|!=|<=|>=|<=>|\[\s*=\s*\]|\[\s*&\s*\]", "", cond)
            if re.search(r"[^=<>!+\-*/%&|^]=(?!=)", scrubbed) or re.search(
                    r"(\+|-|\*|/|%|&|\||\^|<<|>>)=", scrubbed):
                effect = "assignment"
        if effect:
            found.append(Finding(
                path, line_of(code, m.start()), "check-side-effects",
                f"{effect} inside a GDP_CHECK/GDP_DCHECK condition: GDP_DCHECK is "
                "an unevaluated sizeof in release builds, so the side effect "
                "happens in debug and vanishes in release — hoist it out"))
    return found


RAW_MMAP_RE = re.compile(r"(?:\B::\s*|\b)(?:mmap|munmap|mremap|msync|madvise)\s*\(")
# The blessed I/O site: raw-mmap findings here are expected and must carry
# an inline allow() justifying the mapping's ownership/teardown story.
MMAP_BLESSED = "gdp/mdp/store/"


def rule_raw_mmap(path: str, code_lines: list[str]) -> list[Finding]:
    norm = path.replace("\\", "/")
    blessed = MMAP_BLESSED in norm
    found = []
    for idx, line in enumerate(code_lines, start=1):
        if RAW_MMAP_RE.search(line):
            if blessed:
                msg = ("mmap-family call in the store (the blessed I/O site): still "
                       "suppress with a justification stating who owns the mapping "
                       "and how it is verified/unmapped")
            else:
                msg = ("raw mmap-family call outside gdp/mdp/store/: memory-mapped "
                       "I/O without fingerprint verification can return silently "
                       "corrupt bytes — go through gdp::mdp::store, or suppress "
                       "with a justification")
            found.append(Finding(path, idx, "raw-mmap", msg))
    return found


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def lint_file(path: pathlib.Path, in_src: bool | None = None) -> list[Finding]:
    raw = path.read_text(encoding="utf-8", errors="replace")
    code = strip_comments_and_strings(raw)
    raw_lines = raw.splitlines()
    code_lines = code.splitlines()
    norm = str(path).replace("\\", "/")
    if in_src is None:
        in_src = "/src/" in norm or norm.startswith("src/")

    findings: list[Finding] = []
    findings += rule_wall_clock(str(path), code_lines)
    findings += rule_obs_outside_span(str(path), code_lines)
    findings += rule_unordered_iteration(str(path), code)
    findings += rule_raw_thread(str(path), code_lines)
    findings += rule_fp_parallel_accumulation(str(path), code)
    findings += rule_unannotated_mutex(str(path), code, in_src)
    findings += rule_check_side_effects(str(path), code)
    findings += rule_raw_mmap(str(path), code_lines)

    allowed = suppressions(raw_lines, code_lines)
    bad_suppressions = [
        Finding(str(path), -k, "suppression",
                f"gdp-lint: allow() names unknown rule(s) {sorted(v)}")
        for k, v in allowed.items() if k < 0]
    findings = [f for f in findings if f.rule not in allowed.get(f.line, set())]
    return findings + bad_suppressions


def collect(paths: list[pathlib.Path]) -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    for p in paths:
        if p.is_file():
            if p.suffix in EXTS:
                files.append(p)
            continue
        for f in sorted(p.rglob("*")):
            if f.suffix not in EXTS or not f.is_file():
                continue
            parts = f.relative_to(p).parts
            if any(d in SKIP_DIR_NAMES or d.startswith(SKIP_DIR_PREFIXES)
                   for d in parts[:-1]):
                continue
            files.append(f)
    return files


def self_test(fixtures: pathlib.Path) -> int:
    """Every <rule>.bad*.cpp must be flagged with exactly that rule; every
    <rule>.good*.cpp must be clean. Fixture files are linted as if under
    src/ so the src-scoped rules are exercised too."""
    failures = 0
    cases = sorted(fixtures.glob("*.cpp"))
    if not cases:
        print(f"self-test: no fixtures found under {fixtures}", file=sys.stderr)
        return 2
    seen_rules: set[str] = set()
    for case in cases:
        m = re.match(r"(?P<rule>[\w-]+)\.(?P<kind>bad|good)", case.name)
        if not m:
            print(f"self-test: unrecognized fixture name {case.name} "
                  "(want <rule>.bad*.cpp / <rule>.good*.cpp)", file=sys.stderr)
            failures += 1
            continue
        rule, kind = m.group("rule"), m.group("kind")
        if rule not in RULES:
            print(f"self-test: {case.name} names unknown rule '{rule}'", file=sys.stderr)
            failures += 1
            continue
        seen_rules.add(rule)
        findings = lint_file(case, in_src=True)
        if kind == "bad":
            hit = [f for f in findings if f.rule == rule]
            stray = [f for f in findings if f.rule != rule]
            if not hit:
                print(f"self-test FAIL: {case.name} produced no '{rule}' finding")
                failures += 1
            if stray:
                print(f"self-test FAIL: {case.name} produced stray findings:")
                for f in stray:
                    print(f"  {f.render()}")
                failures += 1
        else:
            if findings:
                print(f"self-test FAIL: {case.name} should be clean but produced:")
                for f in findings:
                    print(f"  {f.render()}")
                failures += 1
    missing = set(RULES) - seen_rules
    if missing:
        print(f"self-test FAIL: no fixtures for rule(s): {sorted(missing)}")
        failures += 1
    total = len(cases)
    if failures == 0:
        print(f"self-test OK: {total} fixtures, all {len(RULES)} rules covered")
        return 0
    print(f"self-test: {failures} failure(s) across {total} fixtures")
    return 2


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="gdp-lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*", type=pathlib.Path,
                    help="files or directories to lint")
    ap.add_argument("--self-test", type=pathlib.Path, metavar="FIXTURES_DIR",
                    help="run the fixture corpus instead of linting paths")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test(args.self_test)
    if not args.paths:
        ap.error("nothing to lint: pass paths or --self-test")

    files = collect(args.paths)
    findings: list[Finding] = []
    for f in files:
        findings.extend(lint_file(f))
    for f in sorted(findings, key=lambda x: (x.path, x.line)):
        print(f.render())
    print(f"gdp-lint: {len(files)} files, {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
