#!/usr/bin/env python3
"""Validate and summarize gdp::obs::timeline traces (TRACE_<name>.json).

The timeline plane drains its per-thread event rings into Chrome
trace-event JSON (loadable in Perfetto / chrome://tracing). This tool is
the CI gate for that format. For each file given on the command line it
checks:

  * top level: object with a "traceEvents" list and an "otherData" object
    whose "dropped_events" is a decimal string (the rings drop on full,
    they never block or reallocate — the drop count must be surfaced);
  * every event: string "name", "ph" in {B, E, i, C, M}, pid == 1 and an
    integer "tid";
  * every non-metadata event: a non-negative numeric "ts" (microseconds,
    nanosecond precision in the fractional part), monotone per track —
    each ring has one writer reading one steady clock, so out-of-order
    timestamps within a track mean the emitter or the ring is broken;
  * instants ("i") are thread-scoped ("s": "t"); counters ("C") carry a
    numeric args.value;
  * per-track B/E nesting balances: an "E" must close an open "B" of the
    same name. Unclosed "B"s are fine (a snapshot can land mid-slice, and
    an "E" can be dropped on ring overflow); a stray "E" is only tolerated
    when the trace reports dropped events.

When a file validates it prints per-track utilization (top-level busy
time over the track's extent) and the top slices by total duration.

Exit status: 0 when every file validates, 1 otherwise. Stdlib only — this
runs in the bench-smoke CI step with no third-party packages.
"""

from __future__ import annotations

import json
import sys
from collections import defaultdict

PHASES = frozenset({"B", "E", "i", "C", "M"})
TOP_SLICES = 10


def _fail(errors: list[str], where: str, message: str) -> None:
    errors.append(f"{where}: {message}")


def _is_num(v: object) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


class Summary:
    def __init__(self) -> None:
        self.events = 0
        self.dropped = 0
        # tid -> [first_ts, last_ts, busy_us, slice_count]
        self.tracks: dict[int, list[float]] = {}
        self.track_names: dict[int, str] = {}
        # slice name -> [count, total_us]
        self.slices: dict[str, list[float]] = defaultdict(lambda: [0, 0.0])
        self.instants: dict[str, int] = defaultdict(int)
        self.counters: dict[str, int] = defaultdict(int)


def validate(trace: object, summary: Summary) -> list[str]:
    errors: list[str] = []
    if not isinstance(trace, dict):
        return ["top level must be an object"]
    other = trace.get("otherData")
    if not isinstance(other, dict) or not isinstance(other.get("dropped_events"), str) \
            or not other["dropped_events"].isdigit():
        _fail(errors, "otherData.dropped_events", "must be a decimal string")
    else:
        summary.dropped = int(other["dropped_events"])
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        _fail(errors, "traceEvents", "must be a list")
        return errors

    last_ts: dict[int, float] = {}
    # tid -> stack of (name, begin_ts, depth-at-begin)
    stacks: dict[int, list[tuple[str, float]]] = defaultdict(list)
    for i, e in enumerate(events):
        here = f"traceEvents[{i}]"
        if not isinstance(e, dict):
            _fail(errors, here, "must be an object")
            continue
        name, ph, tid = e.get("name"), e.get("ph"), e.get("tid")
        if not isinstance(name, str):
            _fail(errors, here, 'needs string "name"')
            name = "?"
        if ph not in PHASES:
            _fail(errors, here, f'"ph" must be one of B/E/i/C/M, got {ph!r}')
            continue
        if e.get("pid") != 1:
            _fail(errors, here, f'"pid" must be 1, got {e.get("pid")!r}')
        if not isinstance(tid, int) or isinstance(tid, bool):
            _fail(errors, here, 'needs integer "tid"')
            continue
        if ph == "M":
            if name == "thread_name":
                args = e.get("args")
                if isinstance(args, dict) and isinstance(args.get("name"), str):
                    summary.track_names[tid] = args["name"]
            continue

        ts = e.get("ts")
        if not _is_num(ts) or ts < 0:
            _fail(errors, here, f'needs non-negative numeric "ts", got {ts!r}')
            continue
        if ts < last_ts.get(tid, 0.0):
            _fail(errors, here,
                  f"ts {ts} goes backwards on tid {tid} (prev {last_ts[tid]})")
        last_ts[tid] = ts
        summary.events += 1
        track = summary.tracks.setdefault(tid, [ts, ts, 0.0, 0])
        track[1] = ts

        if ph == "B":
            stacks[tid].append((name, ts))
        elif ph == "E":
            if not stacks[tid]:
                if summary.dropped == 0:
                    _fail(errors, here,
                          f'"E" {name!r} on tid {tid} closes nothing '
                          "and the trace reports no dropped events")
                continue
            open_name, begin_ts = stacks[tid].pop()
            if open_name != name:
                _fail(errors, here,
                      f'"E" {name!r} on tid {tid} closes open slice {open_name!r}')
            dur = ts - begin_ts
            agg = summary.slices[open_name]
            agg[0] += 1
            agg[1] += dur
            track[3] += 1
            if not stacks[tid]:  # top-level slice: counts toward busy time
                track[2] += dur
        elif ph == "i":
            if e.get("s") != "t":
                _fail(errors, here, 'instant must be thread-scoped ("s": "t")')
            summary.instants[name] += 1
        elif ph == "C":
            args = e.get("args")
            if not isinstance(args, dict) or not _is_num(args.get("value")):
                _fail(errors, here, 'counter needs numeric "args.value"')
            summary.counters[name] += 1
    return errors


def _fmt_us(us: float) -> str:
    if us >= 1e6:
        return f"{us / 1e6:.2f}s"
    if us >= 1e3:
        return f"{us / 1e3:.2f}ms"
    return f"{us:.1f}us"


def report(path: str, s: Summary) -> None:
    print(f"{path}: ok — {s.events} events across {len(s.tracks)} tracks, "
          f"{s.dropped} dropped")
    for tid in sorted(s.tracks):
        first, last, busy, n = s.tracks[tid]
        span = last - first
        util = f"{100.0 * busy / span:5.1f}%" if span > 0 else "  n/a "
        label = s.track_names.get(tid, f"tid-{tid}")
        print(f"  {label}: util {util} (busy {_fmt_us(busy)} / "
              f"span {_fmt_us(span)}), {int(n)} slices")
    top = sorted(s.slices.items(), key=lambda kv: -kv[1][1])[:TOP_SLICES]
    if top:
        print("  top slices by total time:")
        for name, (count, total) in top:
            mean = total / count if count else 0.0
            print(f"    {name}: count={int(count)} total={_fmt_us(total)} "
                  f"mean={_fmt_us(mean)}")
    if s.instants:
        inst = ", ".join(f"{k}={v}" for k, v in sorted(s.instants.items()))
        print(f"  instants: {inst}")
    if s.counters:
        ctr = ", ".join(f"{k}={v}" for k, v in sorted(s.counters.items()))
        print(f"  counter samples: {ctr}")


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(f"usage: {argv[0]} TRACE.json [TRACE.json ...]", file=sys.stderr)
        return 1
    status = 0
    for path in argv[1:]:
        try:
            with open(path, encoding="utf-8") as f:
                trace = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"{path}: cannot load: {err}", file=sys.stderr)
            status = 1
            continue
        summary = Summary()
        errors = validate(trace, summary)
        if errors:
            status = 1
            for e in errors:
                print(f"{path}: {e}", file=sys.stderr)
        else:
            report(path, summary)
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
