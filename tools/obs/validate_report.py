#!/usr/bin/env python3
"""Validate gdp::obs run reports (BENCH_<name>.json) against the schema.

Checks, for each file given on the command line:

  * top level: gdp_obs_schema == 2, string "name", object "meta" of
    string -> string, and exactly the two plane objects "deterministic"
    (counters / gauges / histograms) and "timing" (counters / gauges /
    histograms / spans);
  * counters and gauges map metric names to non-negative integers;
  * histograms carry integer "count" / "sum" and a "pow2_buckets" object
    whose keys are bit-widths 0..64 and whose bucket counts sum to "count";
  * spans carry integer "count" / "total_ns"; when count > 0 they must
    also carry integer "min_ns" / "max_ns" with min_ns <= max_ns <=
    total_ns, and when count == 0 min_ns/max_ns must be absent (an empty
    aggregate has no extrema — schema 2 has no sentinel values);
  * known timing-plane gauges (store residency, quant bracket width) never
    appear on the deterministic plane;
  * every metric table is emitted in sorted key order (the registry is an
    ordered map — out-of-order keys mean the emitter changed and diffs of
    the deterministic plane would churn);
  * known store.* counters sit on their contracted plane: the paging
    traffic (store.chunk_faults / store.chunk_evictions) is scheduling-
    dependent and must stay on the timing plane, while the chunk-shape and
    spill/checkpoint counters are pure functions of the call sequence and
    must stay deterministic — a counter drifting planes would silently
    break the deterministic fingerprint's run-to-run stability.

Exit status: 0 when every file validates, 1 otherwise. Stdlib only — this
runs in the bench-smoke CI step with no third-party packages.
"""

from __future__ import annotations

import json
import sys

SCHEMA_VERSION = 2

# Contracted plane placement for the store's counters (store.cpp's
# StoreCounters). Paging traffic depends on the interleaving of the
# parallel kernels' reads; everything else is deterministic.
TIMING_ONLY_COUNTERS = frozenset({
    "store.chunk_faults",
    "store.chunk_evictions",
})
DETERMINISTIC_ONLY_COUNTERS = frozenset({
    "store.chunks_written",
    "store.chunk_bytes",
    "store.chunks_spilled",
    "store.spill_bytes",
    "store.chunks_loaded",
    "store.fingerprint_verifications",
    "store.materializations",
})
# Live-progress gauges sampled by the heartbeat thread: residency follows
# the LRU's fault order and bracket width the sweep schedule — both are
# scheduling-shaped and must never enter the fingerprinted plane.
TIMING_ONLY_GAUGES = frozenset({
    "store.resident_chunks",
    "store.resident_bytes",
    "quant.bracket_width_ppb",
})


def _fail(errors: list[str], where: str, message: str) -> None:
    errors.append(f"{where}: {message}")


def _check_metric_table(errors: list[str], where: str, table: object) -> None:
    if not isinstance(table, dict):
        _fail(errors, where, "must be an object")
        return
    for name, value in table.items():
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            _fail(errors, f"{where}.{name}", "must be a non-negative integer")
    keys = list(table.keys())
    if keys != sorted(keys):
        _fail(errors, where, "keys must be in sorted order")


def _check_histograms(errors: list[str], where: str, table: object) -> None:
    if not isinstance(table, dict):
        _fail(errors, where, "must be an object")
        return
    for name, hist in table.items():
        here = f"{where}.{name}"
        if not isinstance(hist, dict):
            _fail(errors, here, "must be an object")
            continue
        for field in ("count", "sum"):
            if not isinstance(hist.get(field), int) or isinstance(hist.get(field), bool):
                _fail(errors, here, f'needs integer "{field}"')
        buckets = hist.get("pow2_buckets")
        if not isinstance(buckets, dict):
            _fail(errors, here, 'needs object "pow2_buckets"')
            continue
        total = 0
        for width, count in buckets.items():
            if not (width.isdigit() and 0 <= int(width) <= 64):
                _fail(errors, here, f'bucket key "{width}" is not a bit-width 0..64')
            if not isinstance(count, int) or isinstance(count, bool) or count < 0:
                _fail(errors, here, f'bucket "{width}" count must be a non-negative integer')
            else:
                total += count
        if isinstance(hist.get("count"), int) and total != hist["count"]:
            _fail(errors, here, f'bucket counts sum to {total}, "count" says {hist["count"]}')


def _check_spans(errors: list[str], where: str, table: object) -> None:
    if not isinstance(table, dict):
        _fail(errors, where, "must be an object")
        return
    for name, span in table.items():
        here = f"{where}.{name}"
        if not isinstance(span, dict):
            _fail(errors, here, "must be an object")
            continue
        for field in ("count", "total_ns"):
            if not isinstance(span.get(field), int) or isinstance(span.get(field), bool):
                _fail(errors, here, f'needs integer "{field}"')
        count = span.get("count")
        if isinstance(count, int) and not isinstance(count, bool) and count > 0:
            for field in ("min_ns", "max_ns"):
                if not isinstance(span.get(field), int) or isinstance(span.get(field), bool):
                    _fail(errors, here, f'needs integer "{field}" when count > 0')
            mn, mx, total = span.get("min_ns"), span.get("max_ns"), span.get("total_ns")
            if isinstance(mn, int) and isinstance(mx, int) and mn > mx:
                _fail(errors, here, f"min_ns {mn} > max_ns {mx}")
            if isinstance(mx, int) and isinstance(total, int) and mx > total:
                _fail(errors, here, f"max_ns {mx} > total_ns {total}")
        elif count == 0:
            for field in ("min_ns", "max_ns"):
                if field in span:
                    _fail(errors, here,
                          f'"{field}" present on an empty aggregate (count == 0)')
    keys = list(table.keys())
    if keys != sorted(keys):
        _fail(errors, where, "keys must be in sorted order")


def validate(report: object) -> list[str]:
    errors: list[str] = []
    if not isinstance(report, dict):
        return ["top level must be an object"]
    if report.get("gdp_obs_schema") != SCHEMA_VERSION:
        _fail(errors, "gdp_obs_schema",
              f"must be {SCHEMA_VERSION}, got {report.get('gdp_obs_schema')!r}")
    if not isinstance(report.get("name"), str):
        _fail(errors, "name", "must be a string")
    meta = report.get("meta")
    if not isinstance(meta, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in meta.items()
    ):
        _fail(errors, "meta", "must be an object of string -> string")

    det = report.get("deterministic")
    if not isinstance(det, dict):
        _fail(errors, "deterministic", "must be an object")
    else:
        _check_metric_table(errors, "deterministic.counters", det.get("counters"))
        _check_metric_table(errors, "deterministic.gauges", det.get("gauges"))
        _check_histograms(errors, "deterministic.histograms", det.get("histograms"))

    timing = report.get("timing")
    if not isinstance(timing, dict):
        _fail(errors, "timing", "must be an object")
    else:
        _check_metric_table(errors, "timing.counters", timing.get("counters"))
        _check_metric_table(errors, "timing.gauges", timing.get("gauges"))
        _check_histograms(errors, "timing.histograms", timing.get("histograms"))
        _check_spans(errors, "timing.spans", timing.get("spans"))

    det_counters = det.get("counters") if isinstance(det, dict) else None
    timing_counters = timing.get("counters") if isinstance(timing, dict) else None
    det_gauges = det.get("gauges") if isinstance(det, dict) else None
    if isinstance(det_counters, dict):
        for name in sorted(TIMING_ONLY_COUNTERS & det_counters.keys()):
            _fail(errors, f"deterministic.counters.{name}",
                  "is scheduling-dependent and belongs on the timing plane")
    if isinstance(timing_counters, dict):
        for name in sorted(DETERMINISTIC_ONLY_COUNTERS & timing_counters.keys()):
            _fail(errors, f"timing.counters.{name}",
                  "is deterministic and must not sit on the timing plane")
    if isinstance(det_gauges, dict):
        for name in sorted(TIMING_ONLY_GAUGES & det_gauges.keys()):
            _fail(errors, f"deterministic.gauges.{name}",
                  "is scheduling-dependent and belongs on the timing plane")
    return errors


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(f"usage: {argv[0]} REPORT.json [REPORT.json ...]", file=sys.stderr)
        return 1
    status = 0
    for path in argv[1:]:
        try:
            with open(path, encoding="utf-8") as f:
                report = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"{path}: cannot load: {err}", file=sys.stderr)
            status = 1
            continue
        errors = validate(report)
        if errors:
            status = 1
            for e in errors:
                print(f"{path}: {e}", file=sys.stderr)
        else:
            print(f"{path}: ok (gdp_obs_schema {SCHEMA_VERSION})")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
